package wfsort

import (
	"cmp"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/pool"
	"wfsort/internal/sizeclass"
)

// PoolStats re-exports the pool's cumulative counters: Gets/Hits,
// Builds (full arena constructions — flat in steady state), Oversize,
// Puts and Trims.
type PoolStats = pool.Stats

// Pool owns reusable sort contexts and resident worker teams, so
// steady-state sorts build no arenas and spawn no goroutines. Contexts
// come in power-of-two size classes (sizeclass.MinClass up to
// sizeclass.MaxClass); a request for n elements borrows the smallest
// class that fits, pads the tail with virtual greatest elements, sorts
// at class capacity, and returns the context reset for the next
// borrower. Workers live in resident teams whose goroutines survive
// even the fault plane's kills: only the sort program unwinds, so a
// team battered by WithChurn or WithCrashes is back at full strength
// for its next job.
//
// The sort configuration (workers, variant, layout, seed, faults) is
// fixed per pool — contexts are only interchangeable because every
// sort uses the same arena layout. All methods are safe for concurrent
// use; concurrent sorts each borrow their own context and team.
type Pool struct {
	c    config
	ctxs *pool.Pool
	seq  atomic.Uint64

	mu     sync.Mutex
	teams  []*native.Team
	closed bool

	// Pipeline state (WithPipeline only): one resident phase-pipelined
	// crew shared by every sort on the pool, built lazily on first use.
	// pipeBusy counts sorts in flight on it so Close can defer the crew
	// teardown until the last one returns.
	pipe     *native.Pipeline
	pipeBusy int
}

// NewPool builds a context pool for the given sort configuration.
// WithObserver, WithSchedule and WithPool are rejected: observers are
// single-run, schedules are simulator-only, and pools do not nest.
func NewPool(opts ...Option) (*Pool, error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if c.explicit&(setObserver|setSchedule|setPool) != 0 {
		return nil, fmt.Errorf("wfsort: WithObserver, WithSchedule and WithPool do not apply to NewPool")
	}
	if err := validateQueuePolicy(c); err != nil {
		return nil, err
	}
	p := &Pool{c: c}
	p.ctxs, err = pool.New(pool.Config{
		// Every class must host the pool's full worker set (P <= N).
		MinCapacity:  c.workers,
		PerClassIdle: 4,
		Shards:       min(c.workers, 4),
		Build: func(capacity int) (pool.Runner, model.Allocator, error) {
			a, tun := nativeArena(capacity, c)
			r, err := newRunner(a, capacity, c, tun)
			if err != nil {
				return nil, nil, err
			}
			return r.asPoolRunner(), a, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// WithPool makes NewSorter borrow contexts and teams from a shared
// pool instead of owning one. The sorter inherits the pool's entire
// configuration; combining WithPool with any other option is an error
// (the pool's contexts were laid out for its configuration, so a
// different variant or worker count cannot be honored).
func WithPool(p *Pool) Option {
	return func(c *config) { c.pool = p; c.explicit |= setPool }
}

// Stats snapshots the pool's context counters.
func (p *Pool) Stats() PoolStats { return p.ctxs.Stats() }

// Trim drops every idle context and parks no more idle teams than
// sorts in flight, returning memory and goroutines during quiet
// periods. The pipelined crew, when one exists, stays resident: its
// lifetime is the pool's, because rebuilding it mid-stream would drop
// the cross-job progress words the admission gate relies on.
func (p *Pool) Trim() {
	p.ctxs.Trim()
	p.mu.Lock()
	teams := p.teams
	p.teams = nil
	p.mu.Unlock()
	for _, t := range teams {
		t.Close()
	}
}

// Close releases idle teams and contexts. Sorts in flight finish
// normally; their teams and contexts are dropped on return.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	teams := p.teams
	p.teams = nil
	var pl *native.Pipeline
	if p.pipeBusy == 0 {
		pl = p.pipe
		p.pipe = nil
	}
	p.mu.Unlock()
	for _, t := range teams {
		t.Close()
	}
	if pl != nil {
		pl.Close()
	}
	p.ctxs.Trim()
}

// borrowPipeline returns the pool's resident pipelined crew (building
// it on first use) and registers one in-flight sort on it, or nil when
// pipelining is off or the pool has closed — callers then fall back to
// a serial team. Unlike teams, the crew is shared, not checked out:
// overlapping sorts on it is the point.
func (p *Pool) borrowPipeline() *native.Pipeline {
	if p.c.pipeDepth == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if p.pipe == nil {
		p.pipe = native.NewPipelinePolicy(p.c.workers, p.c.pipeDepth, false, p.c.queuePolicy)
	}
	p.pipeBusy++
	return p.pipe
}

// releasePipeline retires one in-flight sort; the last one out closes
// the crew if the pool shut down meanwhile.
func (p *Pool) releasePipeline() {
	p.mu.Lock()
	p.pipeBusy--
	var toClose *native.Pipeline
	if p.closed && p.pipeBusy == 0 {
		toClose = p.pipe
		p.pipe = nil
	}
	p.mu.Unlock()
	if toClose != nil {
		toClose.Close()
	}
}

// getTeam pops an idle resident team or starts one.
func (p *Pool) getTeam() *native.Team {
	p.mu.Lock()
	if n := len(p.teams); n > 0 {
		t := p.teams[n-1]
		p.teams = p.teams[:n-1]
		p.mu.Unlock()
		return t
	}
	p.mu.Unlock()
	return native.NewTeam(p.c.workers, false)
}

// putTeam parks a team for reuse, or closes it when the pool is done.
func (p *Pool) putTeam(t *native.Team) {
	p.mu.Lock()
	if !p.closed {
		p.teams = append(p.teams, t)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	t.Close()
}

// putCtx returns a context unless the pool has been closed.
func (p *Pool) putCtx(c *pool.Ctx) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if !closed {
		p.ctxs.Put(c)
	}
}

// Sorter is a reusable sorter: steady-state Sort calls reuse pooled
// arenas and resident workers, so they build nothing and spawn
// nothing. Create one with NewSorter or NewSorterFunc; a Sorter is
// safe for concurrent use (concurrent sorts borrow separate contexts).
type Sorter[E any] struct {
	p     *Pool
	owned bool
	less  func(a, b E) bool
	bufs  sync.Pool // *[]E input copies
}

// NewSorter returns a reusable sorter over the natural order.
func NewSorter[E cmp.Ordered](opts ...Option) (*Sorter[E], error) {
	return NewSorterFunc[E](func(a, b E) bool { return a < b }, opts...)
}

// NewSorterFunc returns a reusable sorter over a strict weak ordering;
// less is called concurrently and must be safe for concurrent use on
// immutable data. Without WithPool the sorter owns a private pool
// configured by opts (and Close releases it); with WithPool it borrows
// from the shared pool and no other option may be given.
func NewSorterFunc[E any](less func(a, b E) bool, opts ...Option) (*Sorter[E], error) {
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if c.pool != nil {
		if c.explicit&^setPool != 0 {
			return nil, fmt.Errorf("wfsort: WithPool conflicts with every other option; the pool fixes the configuration")
		}
		return &Sorter[E]{p: c.pool, less: less}, nil
	}
	p, err := NewPool(opts...)
	if err != nil {
		return nil, err
	}
	return &Sorter[E]{p: p, owned: true, less: less}, nil
}

// Close releases the sorter's pool when it owns one; a sorter sharing
// a pool via WithPool leaves it untouched.
func (s *Sorter[E]) Close() {
	if s.owned {
		s.p.Close()
	}
}

// Stats snapshots the backing pool's context counters.
func (s *Sorter[E]) Stats() PoolStats { return s.p.Stats() }

// Sort sorts data in place, stably, reusing the pooled machinery.
func (s *Sorter[E]) Sort(data []E) error {
	return s.SortContext(context.Background(), data)
}

// SortContext is Sort with cancellation: when ctx is canceled
// mid-sort, every worker is killed — always safe, wait-freedom is
// exactly the license to kill mid-flight — the borrowed context is
// reset for the next borrower, data is left unchanged (the sort works
// on a copy until the final scatter), and ctx.Err() is returned.
func (s *Sorter[E]) SortContext(ctx context.Context, data []E) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(data)
	if n < 2 {
		return nil
	}
	if n <= sizeclass.FreshCutoff {
		// Padding a tiny sort to the smallest class costs more than
		// building a right-sized arena; take the one-shot path.
		c := s.p.c
		if c.workers > n {
			c.workers = n
		}
		return sortOnce(data, s.less, c)
	}

	pc, err := s.p.ctxs.Get(n)
	if err != nil {
		return err
	}
	defer s.p.putCtx(pc)

	buf := s.getBuf(n)
	defer s.bufs.Put(buf)
	input := (*buf)[:n]
	copy(input, data)

	// Virtual padding: elements n+1..Capacity compare greater than every
	// real element (ties by index), so the class-capacity sort ranks the
	// real elements exactly 1..n and the pads n+1..Capacity. When the
	// request fills its class exactly there are no pads, and the
	// pad-check branch is too expensive to pay on every comparison.
	less := s.less
	var idxLess func(i, j int) bool
	if n == pc.Capacity {
		idxLess = func(i, j int) bool {
			a, b := input[i-1], input[j-1]
			if less(a, b) {
				return true
			}
			if less(b, a) {
				return false
			}
			return i < j
		}
	} else {
		idxLess = func(i, j int) bool {
			pi, pj := i > n, j > n
			switch {
			case pi && pj:
				return i < j
			case pi:
				return false
			case pj:
				return true
			}
			a, b := input[i-1], input[j-1]
			if less(a, b) {
				return true
			}
			if less(b, a) {
				return false
			}
			return i < j
		}
	}

	if err := s.p.runPooled(ctx, pc, n, idxLess); err != nil {
		return err
	}
	applyPermutation(data, input, pc.Places[:n], s.p.c.workers)
	return nil
}

// runPooled executes one sort job on the pool's machinery — pipelined
// crew when configured, serial team otherwise — with the QoS envelope
// and trace sink drawn from ctx, an abort watcher on ctx cancellation,
// and rank validation. On success pc.Places[:n] holds each element's
// 1-based rank. It is the shared core under Sorter (payload-copying,
// comparator-ordered) and KeyedSorter (zero-copy, key-ordered): both
// reduce their ordering to an idxLess over 1-based arena indices and
// diverge only in how the permutation is applied afterwards.
func (p *Pool) runPooled(ctx context.Context, pc *pool.Ctx, n int, idxLess func(i, j int) bool) error {
	seq := p.seq.Add(1)
	c := p.c
	sink := sortTraceFrom(ctx)
	var run sortRun
	var pipeRun *native.PipeRun
	var teamStart time.Time
	if pl := p.borrowPipeline(); pl != nil {
		defer p.releasePipeline()
		// The request's QoS envelope rides the context; the queue policy
		// schedules by it. EstCost defaults to the borrowed class
		// capacity — the size the sort actually runs at.
		q, _ := jobQoSFrom(ctx)
		if q.EstCost == 0 {
			q.EstCost = int64(pc.Capacity)
		}
		pipeRun = pl.Submit(native.PipeJob{
			Graph:     pc.Runner.Graph(),
			Mem:       pc.Mem,
			Less:      idxLess,
			Seed:      c.seed + seq,
			Adversary: c.adversary(seq),
			QoS:       q,
			Traced:    sink != nil,
		})
		run = pipeRun
	} else {
		team := p.getTeam()
		defer p.putTeam(team)
		teamStart = time.Now()
		run = team.Start(native.TeamJob{
			Prog:      pc.Runner.Program(),
			Mem:       pc.Mem,
			Less:      idxLess,
			Seed:      c.seed + seq,
			Adversary: c.adversary(seq),
		})
	}
	var watcherDone chan struct{}
	if ctx.Done() != nil {
		watcherDone = make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				run.Abort()
			case <-watcherDone:
			}
		}()
	}
	_, runErr := run.Wait()
	if watcherDone != nil {
		close(watcherDone)
	}
	if sink != nil {
		// Fill the caller's trace sink even on error paths: a shed or
		// aborted sort still reports its queue wait.
		if pipeRun != nil {
			t := pipeRun.Timing()
			sink.QueueWaitNs = t.QueueWaitNs
			sink.RunNs = t.RunNs
			sink.Phases = t.Phases
		} else {
			sink.RunNs = time.Since(teamStart).Nanoseconds()
		}
	}
	if runErr != nil {
		return runErr
	}
	if run.Aborted() {
		return ctx.Err()
	}

	places := pc.Places[:n]
	pc.Runner.PlacesInto(pc.Mem, places)
	for i, r := range places {
		if r < 1 || r > n {
			// Unreachable under the built-in fault planes (worker 0 is
			// never a target), but a custom future adversary that kills
			// everyone must surface as an error, not silent garbage.
			return fmt.Errorf("wfsort: sort incomplete (element %d unranked)", i+1)
		}
	}
	return nil
}

// sortRun is the common handle over a serial team job (*native.TeamRun)
// and a pipelined job (*native.PipeRun), so SortContext's wait, cancel
// and certification logic exists once.
type sortRun interface {
	Wait() (*model.Metrics, error)
	Abort()
	Aborted() bool
}

// getBuf borrows an input-copy buffer with capacity >= n.
func (s *Sorter[E]) getBuf(n int) *[]E {
	if v := s.bufs.Get(); v != nil {
		b := v.(*[]E)
		if cap(*b) >= n {
			return b
		}
	}
	b := make([]E, n)
	return &b
}
