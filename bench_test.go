// Benchmarks regenerating the shape of every experiment in
// EXPERIMENTS.md, one Benchmark per table (E1–E17). Simulator-based
// benches report exact machine metrics (steps, max per-variable
// contention) through b.ReportMetric alongside wall time; the paper's
// claims are about those metrics, not about nanoseconds.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package wfsort_test

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"wfsort"
	"wfsort/internal/baseline"
	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/pram"
	"wfsort/internal/wat"
	"wfsort/internal/writeall"
	"wfsort/internal/xrand"
)

func benchKeys(n int, seed uint64) []int {
	rng := xrand.New(seed)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(4 * n)
	}
	return keys
}

func lessFor(keys []int) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
}

// BenchmarkE1WATNextElement measures the worst-case next_element call
// on a 4096-leaf tree: climb out of the completed left half, descend
// the untouched right half (Lemma 2.1: O(log N) operations).
func BenchmarkE1WATNextElement(b *testing.B) {
	const n = 4096
	var ops int64
	for i := 0; i < b.N; i++ {
		var a model.Arena
		w := wat.New(&a, n)
		m := pram.New(pram.Config{P: 1, Mem: a.Size()})
		w.Seed(m.Memory())
		for j := 0; j < n/2-1; j++ {
			m.Memory()[w.NodeAddr(w.LeafNode(j))] = model.Done
		}
		for node := w.Leaves() - 1; node >= 1; node-- {
			if m.Memory()[w.NodeAddr(2*node)] == model.Done &&
				m.Memory()[w.NodeAddr(2*node+1)] == model.Done {
				m.Memory()[w.NodeAddr(node)] = model.Done
			}
		}
		met, err := m.Run(func(p model.Proc) {
			w.NextElement(p, w.LeafNode(n/2-1))
		})
		if err != nil {
			b.Fatal(err)
		}
		ops = met.Ops
	}
	b.ReportMetric(float64(ops), "simops/call")
}

// BenchmarkE2WriteAll runs write-all with P = N = 1024 per strategy
// (Lemma 2.3 / Lemma 3.1).
func BenchmarkE2WriteAll(b *testing.B) {
	for _, v := range []writeall.Variant{writeall.WAT, writeall.LCWAT, writeall.Static} {
		b.Run(v.String(), func(b *testing.B) {
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := writeall.Run(writeall.Config{Variant: v, N: 1024, P: 1024, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Complete {
					b.Fatal("incomplete")
				}
				steps = res.Metrics.Steps
			}
			b.ReportMetric(float64(steps), "simsteps")
		})
	}
}

// BenchmarkE3BuildTree measures phase 1 alone at P = N = 1024
// (Lemmas 2.4/2.5).
func BenchmarkE3BuildTree(b *testing.B) {
	keys := benchKeys(1024, 3)
	var steps int64
	for i := 0; i < b.N; i++ {
		var a model.Arena
		s := core.NewSorter(&a, 1024, core.AllocWAT)
		m := pram.New(pram.Config{P: 1024, Mem: a.Size(), Seed: uint64(i), Less: lessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(func(p model.Proc) { s.BuildPhase(p) })
		if err != nil {
			b.Fatal(err)
		}
		steps = met.Steps
	}
	b.ReportMetric(float64(steps), "simsteps")
}

// BenchmarkE4Phases23 measures the full sort so phases 2–3 are
// exercised with realistic trees (Lemma 2.6); phase ops are reported.
func BenchmarkE4Phases23(b *testing.B) {
	keys := benchKeys(1024, 4)
	var sum, place int64
	for i := 0; i < b.N; i++ {
		res, err := wfsort.Simulate(keys, wfsort.WithWorkers(1024),
			wfsort.WithVariant(wfsort.Deterministic), wfsort.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sum = res.Metrics.ByPhase["2:sum"].Ops
		place = res.Metrics.ByPhase["3:place"].Ops
	}
	b.ReportMetric(float64(sum), "sumops")
	b.ReportMetric(float64(place), "placeops")
}

// BenchmarkE5SortSteps measures the full deterministic sort at P = N
// for the step-count claim of Lemmas 2.7/2.8.
func BenchmarkE5SortSteps(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(sizeName(n), func(b *testing.B) {
			keys := benchKeys(n, uint64(n))
			var steps int64
			for i := 0; i < b.N; i++ {
				res, err := wfsort.Simulate(keys, wfsort.WithWorkers(n),
					wfsort.WithVariant(wfsort.Deterministic), wfsort.WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				steps = res.Metrics.Steps
			}
			b.ReportMetric(float64(steps), "simsteps")
		})
	}
}

// BenchmarkE6Contention measures max per-variable contention of both
// variants at P = N = 1024 — the §3 headline.
func BenchmarkE6Contention(b *testing.B) {
	keys := benchKeys(1024, 6)
	for _, v := range []wfsort.Variant{wfsort.Deterministic, wfsort.LowContention} {
		b.Run(v.String(), func(b *testing.B) {
			var cont int
			for i := 0; i < b.N; i++ {
				res, err := wfsort.Simulate(keys, wfsort.WithWorkers(1024),
					wfsort.WithVariant(v), wfsort.WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				cont = res.Metrics.MaxContention
			}
			b.ReportMetric(float64(cont), "maxcontention")
		})
	}
}

// BenchmarkE7LCWAT isolates the LC-WAT (Lemma 3.1) at P = N = 4096.
func BenchmarkE7LCWAT(b *testing.B) {
	var steps int64
	var cont int
	for i := 0; i < b.N; i++ {
		res, err := writeall.Run(writeall.Config{Variant: writeall.LCWAT, N: 4096, P: 4096, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		steps, cont = res.Metrics.Steps, res.Metrics.MaxContention
	}
	b.ReportMetric(float64(steps), "simsteps")
	b.ReportMetric(float64(cont), "maxcontention")
}

// BenchmarkE8Winner and BenchmarkE9WriteMost run the low-contention
// sort at P = N = 1024 and report the phase-B and phase-C metrics
// (Lemma 3.2 and the §3.2 write-most fill).
func BenchmarkE8Winner(b *testing.B) {
	benchLowcontPhase(b, "B:winner")
}

// BenchmarkE9WriteMost reports the fat-tree fill phase (§3.2).
func BenchmarkE9WriteMost(b *testing.B) {
	benchLowcontPhase(b, "C:fill")
}

func benchLowcontPhase(b *testing.B, phase string) {
	keys := benchKeys(1024, 8)
	var steps int64
	var cont int
	for i := 0; i < b.N; i++ {
		res, err := wfsort.Simulate(keys, wfsort.WithWorkers(1024),
			wfsort.WithVariant(wfsort.LowContention), wfsort.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		pm := res.Metrics.ByPhase[phase]
		if pm == nil {
			b.Fatalf("phase %q missing", phase)
		}
		steps, cont = pm.Steps, pm.MaxContention
	}
	b.ReportMetric(float64(steps), "phasesteps")
	b.ReportMetric(float64(cont), "phasemaxcont")
}

// BenchmarkE10Failures sorts with half the processors crashing — the
// wait-freedom demonstration.
func BenchmarkE10Failures(b *testing.B) {
	keys := benchKeys(512, 10)
	var steps int64
	for i := 0; i < b.N; i++ {
		crashes := pram.RandomCrashes(64, 0.5, 300, uint64(i))
		kept := crashes[:0]
		for _, c := range crashes {
			if c.PID != 0 {
				kept = append(kept, c)
			}
		}
		res, err := wfsort.Simulate(keys, wfsort.WithWorkers(64), wfsort.WithSeed(uint64(i)),
			wfsort.WithSchedule(pram.WithCrashes(pram.Synchronous(), kept)))
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Metrics.Steps
	}
	b.ReportMetric(float64(steps), "simsteps")
}

// BenchmarkE11VsSimulation runs the §1.1 transformation baseline
// (bitonic + per-round certified write-all) at P = N = 1024 so its
// step count can be compared with BenchmarkE5SortSteps/n1024.
func BenchmarkE11VsSimulation(b *testing.B) {
	keys := benchKeys(1024, 11)
	var steps int64
	for i := 0; i < b.N; i++ {
		var a model.Arena
		s := baseline.NewBitonicRobust(&a, 1024)
		m := pram.New(pram.Config{P: 1024, Mem: a.Size(), Seed: uint64(i), Less: lessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			b.Fatal(err)
		}
		steps = met.Steps
	}
	b.ReportMetric(float64(steps), "simsteps")
}

// BenchmarkE12TreeDepth builds the pivot tree from sorted input with
// randomized allocation (§2.3) and reports the resulting depth.
func BenchmarkE12TreeDepth(b *testing.B) {
	n := 1024
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	var depth int
	for i := 0; i < b.N; i++ {
		res, err := wfsort.Simulate(keys, wfsort.WithWorkers(n),
			wfsort.WithVariant(wfsort.Randomized), wfsort.WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		depth = res.TreeDepth
	}
	b.ReportMetric(float64(depth), "treedepth")
}

// BenchmarkE13Native measures the real-goroutine sort against the
// standard library at several worker counts.
func BenchmarkE13Native(b *testing.B) {
	const n = 100_000
	base := benchKeys(n, 13)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(sizeName(workers)+"workers", func(b *testing.B) {
			data := make([]int, n)
			for i := 0; i < b.N; i++ {
				copy(data, base)
				if err := wfsort.Sort(data, wfsort.WithWorkers(workers)); err != nil {
					b.Fatal(err)
				}
			}
			if !sort.IntsAreSorted(data) {
				b.Fatal("not sorted")
			}
		})
	}
	b.Run("stdlib", func(b *testing.B) {
		data := make([]int, n)
		for i := 0; i < b.N; i++ {
			copy(data, base)
			sort.Ints(data)
		}
	})
}

// BenchmarkE14Universal runs the Herlihy-style universal-construction
// sorting object at P = N = 128 (Θ(N²) serialization, §1.1).
func BenchmarkE14Universal(b *testing.B) {
	keys := benchKeys(128, 14)
	var steps int64
	for i := 0; i < b.N; i++ {
		var a model.Arena
		u := baseline.NewUniversal(&a, 128, 128)
		m := pram.New(pram.Config{P: 128, Mem: a.Size(), Seed: uint64(i), Less: lessFor(keys)})
		met, err := m.Run(u.Program())
		if err != nil {
			b.Fatal(err)
		}
		steps = met.Steps
	}
	b.ReportMetric(float64(steps), "simsteps")
}

// BenchmarkE15Adversary runs the §3 sort against the algorithm-aware
// HoldAddress adversary at P = N = 256; contention must reach P.
func BenchmarkE15Adversary(b *testing.B) {
	keys := benchKeys(256, 15)
	var cont int
	for i := 0; i < b.N; i++ {
		var a model.Arena
		s := lowcont.New(&a, 256, 256)
		m := pram.New(pram.Config{
			P: 256, Mem: a.Size(), Seed: uint64(i), Less: lessFor(keys),
			Sched: pram.HoldAddress(s.WinnerRootAddr()),
		})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			b.Fatal(err)
		}
		cont = met.MaxContention
	}
	b.ReportMetric(float64(cont), "maxcontention")
}

// BenchmarkE16AsyncWork measures total work under a serialized
// schedule (the paper's §4 open question) at N=512, P=64.
func BenchmarkE16AsyncWork(b *testing.B) {
	keys := benchKeys(512, 16)
	var ops int64
	for i := 0; i < b.N; i++ {
		res, err := wfsort.Simulate(keys, wfsort.WithWorkers(64),
			wfsort.WithVariant(wfsort.Deterministic), wfsort.WithSeed(uint64(i)),
			wfsort.WithSchedule(pram.RoundRobin(1)))
		if err != nil {
			b.Fatal(err)
		}
		ops = res.Metrics.Ops
	}
	b.ReportMetric(float64(ops), "simops")
}

// BenchmarkE17QRQW reports both variants' QRQW-clock time at
// P = N = 1024 (the contention-charging cost model of [22]).
func BenchmarkE17QRQW(b *testing.B) {
	keys := benchKeys(1024, 17)
	for _, v := range []wfsort.Variant{wfsort.Deterministic, wfsort.LowContention} {
		b.Run(v.String(), func(b *testing.B) {
			var qrqw int64
			for i := 0; i < b.N; i++ {
				res, err := wfsort.Simulate(keys, wfsort.WithWorkers(1024),
					wfsort.WithVariant(v), wfsort.WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				qrqw = res.Metrics.QRQWTime
			}
			b.ReportMetric(float64(qrqw), "qrqwtime")
		})
	}
}

// BenchmarkNativeArena is the layout × workers matrix behind
// cmd/benchgate: every native arena layout at P ∈ {1, 4, 8,
// GOMAXPROCS} and N ∈ {64k, 256k}. The acceptance ratio for the
// contention-sharded fast path is read off the p8/256k rows:
// sharded must beat flat by ≥ 1.3×.
//
//	go test -bench 'NativeArena' -benchmem .
func BenchmarkNativeArena(b *testing.B) {
	workerSet := []int{1, 4, 8}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 && g != 8 {
		workerSet = append(workerSet, g)
	}
	for _, layout := range wfsort.Layouts() {
		b.Run(layout.String(), func(b *testing.B) {
			for _, p := range workerSet {
				for _, n := range []int{65_536, 262_144} {
					b.Run("p"+itoa(p)+"/"+sizeName(n), func(b *testing.B) {
						base := benchKeys(n, uint64(n)+uint64(p))
						data := make([]int, n)
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							copy(data, base)
							if err := wfsort.Sort(data,
								wfsort.WithWorkers(p), wfsort.WithLayout(layout)); err != nil {
								b.Fatal(err)
							}
						}
						b.StopTimer()
						if !sort.IntsAreSorted(data) {
							b.Fatal("not sorted")
						}
						b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
					})
				}
			}
		})
	}
}

// BenchmarkNativeObserved measures the cost of the wait-free
// observability plane on the default sharded sort: "off" is the
// nil-observer baseline (one pointer compare per op), "on" installs a
// full Observer (event rings, phase spans, snapshots). cmd/benchgate
// gates the off/on ratio so the hook can never silently grow a real
// hot-path cost.
//
//	go test -bench 'NativeObserved' -benchmem .
func BenchmarkNativeObserved(b *testing.B) {
	const n = 262_144
	const p = 8
	base := benchKeys(n, 19)
	for _, observed := range []bool{false, true} {
		name := "off"
		if observed {
			name = "on"
		}
		b.Run(name+"/p"+itoa(p)+"/"+sizeName(n), func(b *testing.B) {
			data := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(data, base)
				opts := []wfsort.Option{wfsort.WithWorkers(p)}
				if observed {
					opts = append(opts, wfsort.WithObserver(wfsort.NewObserver()))
				}
				if err := wfsort.Sort(data, opts...); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if !sort.IntsAreSorted(data) {
				b.Fatal("not sorted")
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
		})
	}
}

// BenchmarkNativeSortSizes tracks the native sort's wall-time scaling
// with input size at GOMAXPROCS workers.
func BenchmarkNativeSortSizes(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		b.Run(sizeName(n), func(b *testing.B) {
			base := rand.New(rand.NewSource(int64(n))).Perm(n)
			data := make([]int, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(data, base)
				if err := wfsort.Sort(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return itoa(n/1_000_000) + "M"
	case n >= 1_000 && n%1_000 == 0:
		return itoa(n/1_000) + "k"
	default:
		return "n" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkE18NativeCAS measures the native sort's CAS failure rate —
// the hardware contention proxy — at GOMAXPROCS workers.
func BenchmarkE18NativeCAS(b *testing.B) {
	const n = 50_000
	keys := benchKeys(n, 18)
	less := lessFor(keys)
	var failPct float64
	for i := 0; i < b.N; i++ {
		var a model.Arena
		s := core.NewSorter(&a, n, core.AllocRandomized)
		rt := native.New(native.Config{
			P: 4, Mem: a.Size(), Seed: uint64(i), Less: less, CountOps: true,
		})
		s.Seed(rt.Memory())
		met, err := rt.Run(s.Program())
		if err != nil {
			b.Fatal(err)
		}
		if met.CASes > 0 {
			failPct = 100 * float64(met.CASFailures) / float64(met.CASes)
		}
	}
	b.ReportMetric(failPct, "casfail%")
}
