module wfsort

go 1.22
