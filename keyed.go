package wfsort

// The keyed zero-copy sort path. SortFunc and Sorter order elements by
// calling a comparator on payload copies: the input is duplicated into
// a scratch slice so the final scatter can read it while writing the
// caller's slice. That is the right contract for arbitrary orderings,
// but production traffic is overwhelmingly "sort these records by this
// integer field" — and for that shape copying the payloads is pure
// waste. The keyed path extracts one uint64 key per element into a
// pooled key buffer, sorts the KEYS through the same wait-free arenas,
// teams, pipeline, QoS and fault planes as every other sort (the
// shared core is Pool.runPooled), and then reorders the caller's slice
// in place by walking the permutation's swap cycles. Element payloads
// are never copied anywhere: memory traffic per element is 8 bytes of
// key plus the O(1) swaps of the cycle walk, independent of payload
// size. Keys must embed the desired order in uint64 ascending order;
// Int64Key converts a signed key order-preservingly. Ties are broken
// by original position, so keyed sorts are stable like every other
// wfsort sort. For orderings a uint64 cannot encode, SortFunc and
// NewSorterFunc remain the comparator fallback.

import (
	"context"
	"fmt"
	"sync"

	"wfsort/internal/native"
	"wfsort/internal/sizeclass"
)

// Int64Key maps an int64 to a uint64 preserving order: flip the sign
// bit and negative keys sort below positive ones. It is the key
// function for "sort these int64s" workloads (the serving tier's hot
// path) and the model for packing signed fields in general.
func Int64Key(k int64) uint64 { return uint64(k) ^ (1 << 63) }

// SortKeyed sorts data in place, stably, by key ascending, without
// copying element payloads: only the extracted uint64 keys enter the
// sort arena, and a permutation cycle-walk reorders data afterwards.
// key is called once per element before sorting begins and must be
// pure. All one-shot options (variant, layout, seed, fault planes)
// apply as in SortFunc.
func SortKeyed[T any](data []T, key func(T) uint64, opts ...Option) error {
	n := len(data)
	if key == nil {
		return fmt.Errorf("wfsort: SortKeyed requires a key function")
	}
	if n < 2 {
		return nil
	}
	c, err := buildConfig(n, opts)
	if err != nil {
		return err
	}
	return sortOnceKeyed(data, key, c, make([]uint64, n))
}

// sortOnceKeyed is the one-shot keyed sort: fresh arena, fresh
// goroutines, keys in, in-place permutation out. keyBuf must have
// length >= n; the pooled KeyedSorter hands in its recycled buffer.
func sortOnceKeyed[T any](data []T, key func(T) uint64, c config, keyBuf []uint64) error {
	n := len(data)
	keys := keyBuf[:n]
	for i := range data {
		keys[i] = key(data[i])
	}
	idxLess := func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		return a < b || (a == b && i < j)
	}
	a, tun := nativeArena(n, c)
	runner, err := newRunner(a, n, c, tun)
	if err != nil {
		return err
	}
	rt := native.New(native.Config{
		P: c.workers, Mem: a.Size(), Seed: c.seed, Less: idxLess,
		Observer: c.observer, Adversary: c.adversary(0),
	})
	runner.seed(rt.Memory())
	if _, err := rt.Run(runner.program()); err != nil {
		return err
	}
	return permuteInPlace(data, runner.places(rt.Memory()))
}

// permuteInPlace moves data[i] to position places[i]-1 by walking the
// permutation's swap cycles: each swap lands one element in its final
// slot, so the walk is O(n) swaps with no scratch slice. places is
// consumed as the visited map and left as the identity. The swap
// budget turns a corrupted rank vector (out-of-range or duplicated
// ranks — unreachable under the built-in fault planes, which never
// target worker 0) into an error instead of an infinite loop, and the
// data slice is only ever permuted, never partially overwritten.
func permuteInPlace[T any](data []T, places []int) error {
	n := len(data)
	swaps := 0
	for i := range data {
		for {
			d := places[i] - 1
			if d == i {
				break
			}
			if d < 0 || d >= n || swaps >= n {
				return fmt.Errorf("wfsort: sort incomplete (element %d unranked)", i+1)
			}
			data[i], data[d] = data[d], data[i]
			places[i], places[d] = places[d], places[i]
			swaps++
		}
	}
	return nil
}

// KeyedSorter is the reusable form of SortKeyed: pooled arenas,
// resident teams or a pipelined crew, QoS and tracing via context —
// exactly Sorter's machinery — with the keyed path's zero payload
// copies. Create one with NewKeyedSorter; it is safe for concurrent
// use (concurrent sorts borrow separate contexts and key buffers).
type KeyedSorter[T any] struct {
	p     *Pool
	owned bool
	key   func(T) uint64
	keys  sync.Pool // *[]uint64 extracted-key buffers
}

// NewKeyedSorter returns a reusable keyed sorter. key is called once
// per element per sort and must be pure. Without WithPool the sorter
// owns a private pool configured by opts (Close releases it); with
// WithPool it borrows from the shared pool — sharing one pool between
// keyed and comparator sorters is fine, contexts are key-agnostic —
// and no other option may be given.
func NewKeyedSorter[T any](key func(T) uint64, opts ...Option) (*KeyedSorter[T], error) {
	if key == nil {
		return nil, fmt.Errorf("wfsort: NewKeyedSorter requires a key function")
	}
	c, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if c.pool != nil {
		if c.explicit&^setPool != 0 {
			return nil, fmt.Errorf("wfsort: WithPool conflicts with every other option; the pool fixes the configuration")
		}
		return &KeyedSorter[T]{p: c.pool, key: key}, nil
	}
	p, err := NewPool(opts...)
	if err != nil {
		return nil, err
	}
	return &KeyedSorter[T]{p: p, owned: true, key: key}, nil
}

// Close releases the sorter's pool when it owns one.
func (s *KeyedSorter[T]) Close() {
	if s.owned {
		s.p.Close()
	}
}

// Stats snapshots the backing pool's context counters.
func (s *KeyedSorter[T]) Stats() PoolStats { return s.p.Stats() }

// Sort sorts data in place, stably, by extracted key ascending.
func (s *KeyedSorter[T]) Sort(data []T) error {
	return s.SortContext(context.Background(), data)
}

// SortContext is Sort with cancellation: a canceled ctx kills the
// workers mid-sort and returns ctx.Err() with data unchanged — the
// keyed path touches data only in the final in-place permutation,
// which runs solely on success.
func (s *KeyedSorter[T]) SortContext(ctx context.Context, data []T) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := len(data)
	if n < 2 {
		return nil
	}
	kb := s.getKeys(n)
	defer s.keys.Put(kb)
	if n <= sizeclass.FreshCutoff {
		c := s.p.c
		if c.workers > n {
			c.workers = n
		}
		return sortOnceKeyed(data, s.key, c, *kb)
	}

	pc, err := s.p.ctxs.Get(n)
	if err != nil {
		return err
	}
	defer s.p.putCtx(pc)

	keys := (*kb)[:n]
	for i := range data {
		keys[i] = s.key(data[i])
	}
	// Virtual padding, as in Sorter.SortContext: pad indices beyond n
	// compare greater than every real element so the class-capacity
	// sort ranks the real ones 1..n; the exact-fit class skips the
	// pad branch entirely.
	var idxLess func(i, j int) bool
	if n == pc.Capacity {
		idxLess = func(i, j int) bool {
			a, b := keys[i-1], keys[j-1]
			return a < b || (a == b && i < j)
		}
	} else {
		idxLess = func(i, j int) bool {
			pi, pj := i > n, j > n
			switch {
			case pi && pj:
				return i < j
			case pi:
				return false
			case pj:
				return true
			}
			a, b := keys[i-1], keys[j-1]
			return a < b || (a == b && i < j)
		}
	}
	if err := s.p.runPooled(ctx, pc, n, idxLess); err != nil {
		return err
	}
	return permuteInPlace(data, pc.Places[:n])
}

// getKeys borrows a key buffer with length >= n.
func (s *KeyedSorter[T]) getKeys(n int) *[]uint64 {
	if v := s.keys.Get(); v != nil {
		b := v.(*[]uint64)
		if cap(*b) >= n {
			*b = (*b)[:cap(*b)]
			return b
		}
	}
	b := make([]uint64, n)
	return &b
}
