// PRAM lab: dissect the algorithm on the deterministic CRCW simulator.
//
// This example reproduces, in miniature, the measurements behind
// EXPERIMENTS.md: exact step counts, per-phase operation counts and
// per-variable memory contention for both algorithm variants, under a
// faultless schedule, an adversarially serialized schedule, and a
// schedule that crashes half the processors.
//
// Run with:
//
//	go run ./examples/pramlab
package main

import (
	"fmt"
	"log"

	"wfsort"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

func main() {
	const n = 512
	rng := xrand.New(42)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(4 * n)
	}

	fmt.Println("== variants under the faultless synchronous schedule (P = N) ==")
	for _, v := range []wfsort.Variant{wfsort.Deterministic, wfsort.Randomized, wfsort.LowContention} {
		res, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(n), wfsort.WithVariant(v), wfsort.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s steps=%-6d ops=%-8d maxcontention=%-5d treedepth=%d\n",
			v, res.Metrics.Steps, res.Metrics.Ops, res.Metrics.MaxContention, res.TreeDepth)
	}

	fmt.Println("\n== phase anatomy of the randomized variant ==")
	res, err := wfsort.Simulate(keys,
		wfsort.WithWorkers(n), wfsort.WithVariant(wfsort.Randomized), wfsort.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range res.Metrics.PhaseNames() {
		pm := res.Metrics.ByPhase[name]
		fmt.Printf("%-12s ops=%-8d steps=%-6d maxcontention=%d\n",
			name, pm.Ops, pm.Steps, pm.MaxContention)
	}

	fmt.Println("\n== hostile schedules (wait-freedom in action) ==")
	schedules := []struct {
		name  string
		sched pram.Scheduler
	}{
		{"serialized (one op per step)", pram.RoundRobin(1)},
		{"random 30% subset", pram.RandomSubset(0.3)},
		{"crash half at random times", pram.WithCrashes(pram.Synchronous(),
			crashHalf(64, 200))},
	}
	small := keys[:128]
	for _, s := range schedules {
		res, err := wfsort.Simulate(small,
			wfsort.WithWorkers(64), wfsort.WithSeed(2), wfsort.WithSchedule(s.sched))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s steps=%-8d killed=%-3d ranks correct=%v\n",
			s.name, res.Metrics.Steps, res.Metrics.Killed, correct(res.Ranks, small))
	}
}

// crashHalf kills every odd processor at a random step in the window.
func crashHalf(p int, window int64) []pram.Crash {
	rng := xrand.New(7)
	var crashes []pram.Crash
	for pid := 1; pid < p; pid += 2 {
		crashes = append(crashes, pram.Crash{PID: pid, Step: rng.Int63() % window})
	}
	return crashes
}

func correct(ranks []int, keys []int) bool {
	out := make([]int, len(keys))
	for i, r := range ranks {
		out[r-1] = keys[i]
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] > out[i] {
			return false
		}
	}
	return true
}
