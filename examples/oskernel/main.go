// OS-kernel scenario: the paper's §1 motivation, on real goroutines.
//
// "Consider the case of sorting a large data set in the background of
// other ongoing computations. [...] If during the execution a processor
// is needed elsewhere, one can reap the thread associated with it
// without fear of leaving the program's internal data structures in an
// inconsistent state. [...] if other processors become free, one can
// spawn more threads to speed up the sorting process."
//
// This example starts a background sort on several workers, reaps half
// of them mid-run (simulating the OS reclaiming processors for other
// work), later respawns one (a processor freed up again), and shows the
// sort still finishes correctly — no locks, no coordination with the
// "kernel".
//
// Run with:
//
//	go run ./examples/oskernel
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/xrand"
)

func main() {
	const n = 300_000
	workers := max(runtime.NumCPU(), 4)

	// Build the input and the sorter layout.
	rng := xrand.New(1)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(10 * n)
	}
	less := func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
	var arena model.Arena
	sorter := core.NewSorter(&arena, n, core.AllocRandomized)
	rt := native.New(native.Config{P: workers, Mem: arena.Size(), Less: less})
	sorter.Seed(rt.Memory())

	// The "kernel": while the sort runs in the background, reclaim half
	// the processors, then hand one back.
	go func() {
		time.Sleep(2 * time.Millisecond)
		for pid := workers / 2; pid < workers; pid++ {
			rt.Kill(pid)
		}
		fmt.Printf("kernel: reaped workers %d..%d mid-sort\n", workers/2, workers-1)

		time.Sleep(2 * time.Millisecond)
		if err := rt.Respawn(workers / 2); err == nil {
			fmt.Printf("kernel: processor freed up — respawned worker %d\n", workers/2)
		} else {
			// The survivors may already have finished; that is success,
			// not failure.
			fmt.Printf("kernel: respawn unnecessary (%v)\n", err)
		}
	}()

	fmt.Printf("sorting %d elements in the background on %d workers...\n", n, workers)
	start := time.Now()
	met, err := rt.Run(sorter.Program())
	if err != nil {
		log.Fatal(err)
	}

	// Verify: ranks must be a correct sort despite the reaping.
	ranks := sorter.Places(rt.Memory())
	out := make([]int, n)
	for i, r := range ranks {
		out[r-1] = keys[i]
	}
	fmt.Printf("finished in %s; %d workers were reaped during the run\n",
		time.Since(start).Round(time.Millisecond), met.Killed)
	fmt.Printf("output sorted: %v\n", sort.IntsAreSorted(out))
}
