// Quickstart: sort slices with the public wfsort API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"wfsort"
)

func main() {
	// Plain ordered types: one call, workers default to GOMAXPROCS.
	nums := []int{42, 7, 19, 3, 88, 7, 0, -5}
	if err := wfsort.Sort(nums); err != nil {
		log.Fatal(err)
	}
	fmt.Println("ints:   ", nums)

	words := []string{"pear", "apple", "fig", "banana"}
	if err := wfsort.Sort(words); err != nil {
		log.Fatal(err)
	}
	fmt.Println("strings:", words)

	// Custom orderings via SortFunc. The sort is stable: equal keys
	// keep their input order.
	type user struct {
		Name string
		Age  int
	}
	users := []user{{"carol", 31}, {"alice", 24}, {"bob", 31}, {"dave", 24}}
	err := wfsort.SortFunc(users, func(a, b user) bool { return a.Age < b.Age })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("users:  ", users)

	// Options: worker count, algorithm variant, deterministic seed.
	big := rand.New(rand.NewSource(1)).Perm(100_000)
	err = wfsort.Sort(big,
		wfsort.WithWorkers(8),
		wfsort.WithVariant(wfsort.LowContention),
		wfsort.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("100k elements sorted, first five:", big[:5])
}
