package wfsort_test

import (
	"bytes"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"testing"

	"wfsort"
)

// TestGoldenDeterminism verifies the simulator's end-to-end
// determinism: two runs with equal seed, input and configuration must
// agree on every metric and every rank. It also logs the exact costs,
// so CI diffs surface behavioural changes that slip past the bounds
// checks.
func TestGoldenDeterminism(t *testing.T) {
	keys := make([]int, 128)
	// A fixed linear-congruential input, independent of any library RNG.
	x := uint32(12345)
	for i := range keys {
		x = x*1664525 + 1013904223
		keys[i] = int(x % 1000)
	}

	cases := []struct {
		variant wfsort.Variant
		workers int
	}{
		{wfsort.Deterministic, 128},
		{wfsort.Randomized, 128},
		{wfsort.LowContention, 128},
		{wfsort.Deterministic, 8},
	}
	// Two runs per case must agree exactly — the golden property is
	// run-to-run determinism. The values are logged so intentional
	// changes can be eyeballed in CI diffs.
	for ci, c := range cases {
		first, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(c.workers), wfsort.WithVariant(c.variant), wfsort.WithSeed(7))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		second, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(c.workers), wfsort.WithVariant(c.variant), wfsort.WithSeed(7))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if first.Metrics.Steps != second.Metrics.Steps ||
			first.Metrics.Ops != second.Metrics.Ops ||
			first.Metrics.MaxContention != second.Metrics.MaxContention ||
			first.TreeDepth != second.TreeDepth {
			t.Errorf("case %d: same seed diverged: %v vs %v", ci, first.Metrics, second.Metrics)
		}
		for i := range first.Ranks {
			if first.Ranks[i] != second.Ranks[i] {
				t.Fatalf("case %d: ranks diverged at %d", ci, i)
			}
		}
		t.Logf("variant=%v workers=%d: steps=%d ops=%d maxcont=%d depth=%d",
			c.variant, c.workers, first.Metrics.Steps, first.Metrics.Ops,
			first.Metrics.MaxContention, first.TreeDepth)
	}
}

// TestSeedChangesExecution makes sure the seed actually matters for the
// randomized variants (a constant-stream RNG regression would silently
// void every w.h.p. claim).
func TestSeedChangesExecution(t *testing.T) {
	keys := make([]int, 200)
	for i := range keys {
		keys[i] = (i * 37) % 199
	}
	a, err := wfsort.Simulate(keys, wfsort.WithWorkers(50),
		wfsort.WithVariant(wfsort.Randomized), wfsort.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := wfsort.Simulate(keys, wfsort.WithWorkers(50),
		wfsort.WithVariant(wfsort.Randomized), wfsort.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Ops == b.Metrics.Ops && a.TreeDepth == b.TreeDepth {
		t.Error("different seeds produced identical executions — RNG plumbing broken?")
	}
	// Ranks must be identical regardless of seed: randomness affects
	// cost, never the answer.
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("ranks differ across seeds at %d", i)
		}
	}
}

// goldenInputs enumerates the degenerate and adversarial input shapes
// every variant and layout must handle: empty, singleton, all-equal
// (one giant tie group), pre-sorted, reverse-sorted, and a fixed
// pseudo-random permutation. The generator is a hand-rolled LCG so the
// goldens cannot shift under a library RNG change.
func goldenInputs(n int) map[string][]int {
	if n == 0 {
		return map[string][]int{"empty": {}}
	}
	if n == 1 {
		return map[string][]int{"single": {42}}
	}
	random := make([]int, n)
	x := uint32(12345)
	for i := range random {
		x = x*1664525 + 1013904223
		random[i] = int(x % 1000)
	}
	equal := make([]int, n)
	for i := range equal {
		equal[i] = 7
	}
	sorted := make([]int, n)
	for i := range sorted {
		sorted[i] = i
	}
	reverse := make([]int, n)
	for i := range reverse {
		reverse[i] = n - i
	}
	return map[string][]int{
		"random": random, "equal": equal, "sorted": sorted, "reverse": reverse,
	}
}

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens from current behavior")

// TestGoldenMatrix locks the simulator's exact behavior — every metric
// and every rank — across the Variant x input-shape x N matrix into a
// byte-identical golden file. Any intentional behavior change reruns
// with -update and reviews the diff; anything else is a regression.
func TestGoldenMatrix(t *testing.T) {
	variants := []struct {
		name string
		v    wfsort.Variant
	}{
		{"deterministic", wfsort.Deterministic},
		{"randomized", wfsort.Randomized},
		{"lowcontention", wfsort.LowContention},
	}
	var buf bytes.Buffer
	for _, n := range []int{0, 1, 16, 128} {
		inputs := goldenInputs(n)
		names := make([]string, 0, len(inputs))
		for name := range inputs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, v := range variants {
				res, err := wfsort.Simulate(inputs[name],
					wfsort.WithVariant(v.v), wfsort.WithWorkers(8), wfsort.WithSeed(7))
				if err != nil {
					t.Fatalf("%s/%s/n%d: %v", v.name, name, n, err)
				}
				h := fnv.New64a()
				for _, r := range res.Ranks {
					fmt.Fprintf(h, "%d,", r)
				}
				m := res.Metrics
				fmt.Fprintf(&buf,
					"v=%s in=%s n=%d steps=%d ops=%d reads=%d writes=%d cas=%d casfail=%d maxcont=%d stalls=%d depth=%d ranks=%016x\n",
					v.name, name, n, m.Steps, m.Ops, m.Reads, m.Writes, m.CASes,
					m.CASFailures, m.MaxContention, m.Stalls, res.TreeDepth, h.Sum64())
				checkRanks(t, inputs[name], res.Ranks)
			}
		}
	}

	const path = "testdata/golden_sim.txt"
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("simulator behavior diverged from %s.\ngot:\n%s\nwant:\n%s\n(rerun with -update only if the change is intentional)",
			path, buf.Bytes(), want)
	}
}

// checkRanks verifies ranks are a permutation of 1..n consistent with
// a stable sort of keys.
func checkRanks(t *testing.T, keys []int, ranks []int) {
	t.Helper()
	n := len(keys)
	if len(ranks) != n {
		t.Fatalf("got %d ranks for %d keys", len(ranks), n)
	}
	byRank := make([]int, n) // byRank[r-1] = element index i (0-based)
	seen := make([]bool, n)
	for i, r := range ranks {
		if r < 1 || r > n || seen[r-1] {
			t.Fatalf("bad rank %d for element %d", r, i)
		}
		seen[r-1] = true
		byRank[r-1] = i
	}
	for r := 1; r < n; r++ {
		a, b := byRank[r-1], byRank[r]
		if keys[a] > keys[b] || (keys[a] == keys[b] && a > b) {
			t.Fatalf("rank order broken at rank %d: keys[%d]=%d before keys[%d]=%d",
				r, a, keys[a], b, keys[b])
		}
	}
}

// TestSimulateLayoutInvariant pins the contract that WithLayout tunes
// the native arena only: the simulator's execution — cost metrics and
// ranks — must be bit-identical whatever layout is requested.
func TestSimulateLayoutInvariant(t *testing.T) {
	keys := goldenInputs(128)["random"]
	base, err := wfsort.Simulate(keys, wfsort.WithWorkers(16), wfsort.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []wfsort.Layout{wfsort.LayoutSharded, wfsort.LayoutPadded, wfsort.LayoutFlat} {
		got, err := wfsort.Simulate(keys, wfsort.WithWorkers(16), wfsort.WithSeed(3), wfsort.WithLayout(l))
		if err != nil {
			t.Fatalf("layout %v: %v", l, err)
		}
		g, b := got.Metrics, base.Metrics
		if g.Steps != b.Steps || g.Ops != b.Ops || g.Reads != b.Reads ||
			g.Writes != b.Writes || g.CASes != b.CASes || g.CASFailures != b.CASFailures ||
			g.MaxContention != b.MaxContention || got.TreeDepth != base.TreeDepth {
			t.Errorf("layout %v changed simulation: %+v vs %+v", l, g, b)
		}
		for i := range base.Ranks {
			if got.Ranks[i] != base.Ranks[i] {
				t.Fatalf("layout %v changed ranks at %d", l, i)
			}
		}
	}
}

// TestNativeMatrix runs the native runtime over the full Variant x
// Layout x input-shape matrix and verifies sorted, stable output. The
// native runtime races real goroutines, so there is no golden — the
// invariants are the contract.
func TestNativeMatrix(t *testing.T) {
	type rec struct{ key, pos int }
	variants := []wfsort.Variant{wfsort.Deterministic, wfsort.Randomized, wfsort.LowContention}
	layouts := []wfsort.Layout{wfsort.LayoutSharded, wfsort.LayoutPadded, wfsort.LayoutFlat}
	for _, n := range []int{0, 1, 16, 128} {
		for name, keys := range goldenInputs(n) {
			for _, v := range variants {
				for _, l := range layouts {
					data := make([]rec, n)
					for i, k := range keys {
						data[i] = rec{key: k, pos: i}
					}
					err := wfsort.SortFunc(data, func(a, b rec) bool { return a.key < b.key },
						wfsort.WithVariant(v), wfsort.WithLayout(l), wfsort.WithWorkers(4))
					if err != nil {
						t.Fatalf("%v/%v/%s/n%d: %v", v, l, name, n, err)
					}
					for i := 1; i < n; i++ {
						if data[i-1].key > data[i].key {
							t.Fatalf("%v/%v/%s/n%d: unsorted at %d", v, l, name, n, i)
						}
						if data[i-1].key == data[i].key && data[i-1].pos > data[i].pos {
							t.Fatalf("%v/%v/%s/n%d: unstable at %d", v, l, name, n, i)
						}
					}
				}
			}
		}
	}
}
