package wfsort_test

import (
	"testing"

	"wfsort"
)

// TestGoldenDeterminism verifies the simulator's end-to-end
// determinism: two runs with equal seed, input and configuration must
// agree on every metric and every rank. It also logs the exact costs,
// so CI diffs surface behavioural changes that slip past the bounds
// checks.
func TestGoldenDeterminism(t *testing.T) {
	keys := make([]int, 128)
	// A fixed linear-congruential input, independent of any library RNG.
	x := uint32(12345)
	for i := range keys {
		x = x*1664525 + 1013904223
		keys[i] = int(x % 1000)
	}

	cases := []struct {
		variant wfsort.Variant
		workers int
	}{
		{wfsort.Deterministic, 128},
		{wfsort.Randomized, 128},
		{wfsort.LowContention, 128},
		{wfsort.Deterministic, 8},
	}
	// Two runs per case must agree exactly — the golden property is
	// run-to-run determinism. The values are logged so intentional
	// changes can be eyeballed in CI diffs.
	for ci, c := range cases {
		first, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(c.workers), wfsort.WithVariant(c.variant), wfsort.WithSeed(7))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		second, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(c.workers), wfsort.WithVariant(c.variant), wfsort.WithSeed(7))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		if first.Metrics.Steps != second.Metrics.Steps ||
			first.Metrics.Ops != second.Metrics.Ops ||
			first.Metrics.MaxContention != second.Metrics.MaxContention ||
			first.TreeDepth != second.TreeDepth {
			t.Errorf("case %d: same seed diverged: %v vs %v", ci, first.Metrics, second.Metrics)
		}
		for i := range first.Ranks {
			if first.Ranks[i] != second.Ranks[i] {
				t.Fatalf("case %d: ranks diverged at %d", ci, i)
			}
		}
		t.Logf("variant=%v workers=%d: steps=%d ops=%d maxcont=%d depth=%d",
			c.variant, c.workers, first.Metrics.Steps, first.Metrics.Ops,
			first.Metrics.MaxContention, first.TreeDepth)
	}
}

// TestSeedChangesExecution makes sure the seed actually matters for the
// randomized variants (a constant-stream RNG regression would silently
// void every w.h.p. claim).
func TestSeedChangesExecution(t *testing.T) {
	keys := make([]int, 200)
	for i := range keys {
		keys[i] = (i * 37) % 199
	}
	a, err := wfsort.Simulate(keys, wfsort.WithWorkers(50),
		wfsort.WithVariant(wfsort.Randomized), wfsort.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := wfsort.Simulate(keys, wfsort.WithWorkers(50),
		wfsort.WithVariant(wfsort.Randomized), wfsort.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics.Ops == b.Metrics.Ops && a.TreeDepth == b.TreeDepth {
		t.Error("different seeds produced identical executions — RNG plumbing broken?")
	}
	// Ranks must be identical regardless of seed: randomness affects
	// cost, never the answer.
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			t.Fatalf("ranks differ across seeds at %d", i)
		}
	}
}
