package wfsort

// The streaming external sort: sort N ≫ memory by pipelining pooled
// size-class chunks through the resident crew and k-way merging the
// sorted runs. SortStream reads keys from a KeyReader in chunks of
// ChunkKeys, sorts each chunk as one pooled job (so chunks overlap at
// phase granularity on a WithPipeline pool — the PR 5 admission gate
// is what makes "external sort" and "serving pipeline" the same
// machine), spills sorted chunks as wire.KindChunk blocks in one
// temporary file, and finally streams a k-way merge (internal/merge)
// of the spilled runs into the KeyWriter. Peak memory is
// O(Depth·ChunkKeys + fan-in·MergeBufKeys), independent of N; the
// single-chunk case skips the spill entirely. Each chunk job carries
// the caller's context — deadline, QoS class and trace sink propagate
// per chunk exactly as they do per request on the serving path — and
// every spilled block's ledger plus the final output ledger are
// verified against the fold of what was read, so a lost, duplicated
// or corrupted key anywhere in the chunk/spill/merge pipeline surfaces
// as an error instead of silently wrong output.

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"

	"wfsort/internal/merge"
	"wfsort/internal/sizeclass"
	"wfsort/internal/wire"
)

// KeyReader delivers a key stream: ReadKeys fills buf with the next
// keys and returns how many, with io.EOF after the last key (alone or
// alongside the final batch). wire.Reader satisfies it.
type KeyReader interface {
	ReadKeys(buf []int64) (n int, err error)
}

// KeyWriter receives the sorted output in order, in bounded frames.
type KeyWriter interface {
	WriteKeys(keys []int64) error
}

// SliceReader adapts an in-memory slice to KeyReader.
type SliceReader struct {
	Keys []int64
	pos  int
}

func (r *SliceReader) ReadKeys(buf []int64) (int, error) {
	if r.pos >= len(r.Keys) {
		return 0, io.EOF
	}
	n := copy(buf, r.Keys[r.pos:])
	r.pos += n
	if r.pos == len(r.Keys) {
		return n, io.EOF
	}
	return n, nil
}

// SliceWriter collects the sorted output into Keys.
type SliceWriter struct {
	Keys []int64
}

func (w *SliceWriter) WriteKeys(keys []int64) error {
	w.Keys = append(w.Keys, keys...)
	return nil
}

// StreamConfig shapes one streaming sort; zero values take defaults.
type StreamConfig struct {
	// ChunkKeys is the in-memory sort unit (default 1<<16, clamped to
	// [sizeclass.MinClass, sizeclass.MaxClass] so every chunk fits a
	// pooled context). It is the memory knob: peak usage scales with
	// ChunkKeys, never with the input.
	ChunkKeys int
	// Depth bounds chunk sorts in flight (default 4). On a pipelined
	// pool this is how many chunks overlap on the crew.
	Depth int
	// MergeBufKeys is the per-run frame size of the final merge
	// (default 4096).
	MergeBufKeys int
	// SpillDir is where the spill file lives (default os.TempDir()).
	SpillDir string
	// Pool supplies the sorting machinery. nil builds a private
	// pipelined pool from Options for the duration of the call;
	// non-nil reuses a shared pool (its configuration wins) and
	// Options must be empty.
	Pool *Pool
	// Options configures the private pool when Pool is nil — same
	// options as NewPool; WithPipeline(Depth) is implied when absent.
	Options []Option
}

func (c *StreamConfig) fill() error {
	if c.ChunkKeys == 0 {
		c.ChunkKeys = 1 << 16
	}
	if c.ChunkKeys < sizeclass.MinClass {
		c.ChunkKeys = sizeclass.MinClass
	}
	if c.ChunkKeys > sizeclass.MaxClass {
		c.ChunkKeys = sizeclass.MaxClass
	}
	if c.Depth == 0 {
		c.Depth = 4
	}
	if c.Depth < 1 {
		c.Depth = 1
	}
	if c.MergeBufKeys < 1 {
		c.MergeBufKeys = 4096
	}
	if c.Pool != nil && len(c.Options) > 0 {
		return fmt.Errorf("wfsort: StreamConfig.Pool conflicts with Options; the pool fixes the configuration")
	}
	return nil
}

// StreamStats reports one streaming sort.
type StreamStats struct {
	// Keys is the total sorted.
	Keys int64
	// Chunks is how many sorted runs the input split into.
	Chunks int
	// Spilled is true when runs went through the spill file (false for
	// the single-chunk fast path).
	Spilled bool
	// Sum and Xor are the output ledger, verified against the input
	// fold before SortStream returns — callers can chain the check
	// against their own upstream ledger.
	Sum, Xor int64
}

// spillRun records one sorted chunk's block inside the spill file.
type spillRun struct {
	off  int64
	keys int
}

// SortStream sorts the src key stream into dst with memory bounded by
// the chunk size (see StreamConfig). The sort is not stable across
// equal keys from different chunks — int64 keys carry no identity, so
// the output bytes are deterministic regardless. On error dst may have
// received a prefix; nothing else leaks (the spill file is always
// removed). Cancelling ctx aborts in-flight chunk sorts and returns
// ctx.Err().
func SortStream(ctx context.Context, dst KeyWriter, src KeyReader, cfg StreamConfig) (StreamStats, error) {
	var st StreamStats
	if err := cfg.fill(); err != nil {
		return st, err
	}
	p := cfg.Pool
	if p == nil {
		opts := cfg.Options
		if !hasPipelineOpt(opts) {
			opts = append(append([]Option(nil), opts...), WithPipeline(cfg.Depth))
		}
		var err error
		p, err = NewPool(opts...)
		if err != nil {
			return st, err
		}
		defer p.Close()
	}
	sorter, err := NewKeyedSorter(Int64Key, WithPool(p))
	if err != nil {
		return st, err
	}

	// Stage 1: read chunks and sort them concurrently, Depth in flight.
	// Chunk buffers are recycled through a pool sized by the in-flight
	// bound, so stage-1 memory is Depth+1 chunks no matter how many
	// chunks the input yields. Sorted chunks spill in completion order;
	// the runs index keeps enough to merge them back deterministically.
	type sortedChunk struct {
		buf *[]int64
		n   int
		err error
	}
	bufPool := sync.Pool{New: func() any {
		b := make([]int64, cfg.ChunkKeys)
		return &b
	}}
	var (
		inSum, inXor int64
		runs         []spillRun
		spill        *os.File
		spillOff     int64
		sem          = make(chan struct{}, cfg.Depth)
		results      = make(chan *sortedChunk, cfg.Depth)
		pending      int
		readErr      error
	)
	defer func() {
		if spill != nil {
			name := spill.Name()
			spill.Close()
			os.Remove(name)
		}
	}()

	// drain collects one finished chunk and spills it. Runs on the
	// caller's goroutine so file writes are single-threaded.
	drain := func() error {
		sc := <-results
		pending--
		defer bufPool.Put(sc.buf)
		if sc.err != nil {
			return sc.err
		}
		sorted := (*sc.buf)[:sc.n]
		if spill == nil {
			f, err := os.CreateTemp(cfg.SpillDir, "wfsort-spill-*")
			if err != nil {
				return err
			}
			spill = f
		}
		if err := wire.WriteBlock(spill, wire.KindChunk, sorted); err != nil {
			return err
		}
		runs = append(runs, spillRun{off: spillOff, keys: sc.n})
		spillOff += int64(wire.BlockLen(sc.n))
		return nil
	}

	submit := func(buf *[]int64, n int) {
		pending++
		go func() {
			chunk := (*buf)[:n]
			err := sorter.SortContext(ctx, chunk)
			results <- &sortedChunk{buf: buf, n: n, err: err}
			<-sem
		}()
	}

	// fail waits out the remaining in-flight chunks before returning
	// the first error, so no goroutine outlives the call still holding
	// a chunk buffer or the spill file.
	fail := func(err error) error {
		for pending > 0 {
			<-results
			pending--
		}
		return err
	}

	// Read loop: fill a chunk, hand it to a sort slot, drain results
	// whenever all slots are busy.
	for {
		buf := bufPool.Get().(*[]int64)
		chunk := (*buf)[:cfg.ChunkKeys]
		filled := 0
		for filled < len(chunk) && readErr == nil {
			var n int
			n, readErr = src.ReadKeys(chunk[filled:])
			filled += n
			if readErr != nil && readErr != io.EOF {
				bufPool.Put(buf)
				return st, fmt.Errorf("wfsort: stream read: %w", readErr)
			}
		}
		if filled == 0 {
			bufPool.Put(buf)
			break
		}
		s, x := wire.Fold(chunk[:filled])
		inSum += s
		inXor ^= x
		st.Keys += int64(filled)
		st.Chunks++

		if st.Chunks == 1 && readErr == io.EOF {
			// Single-chunk fast path: sort and write directly, no spill.
			sorted := (*buf)[:filled]
			if err := sorter.SortContext(ctx, sorted); err != nil {
				return st, err
			}
			if err := writeFrames(dst, sorted, cfg.MergeBufKeys); err != nil {
				return st, err
			}
			bufPool.Put(buf)
			st.Sum, st.Xor = inSum, inXor
			return st, nil
		}

		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			bufPool.Put(buf)
			// Let in-flight chunk sorts unwind before the spill file defer
			// removes their destination.
			return st, fail(ctx.Err())
		}
		submit(buf, filled)
		// Opportunistically drain without blocking the reader.
		for len(results) > 0 {
			if err := drain(); err != nil {
				return st, fail(err)
			}
		}
		if readErr == io.EOF {
			break
		}
	}
	for pending > 0 {
		if err := drain(); err != nil {
			return st, fail(err)
		}
	}
	st.Sum, st.Xor = inSum, inXor
	if st.Keys == 0 {
		return st, nil
	}
	st.Spilled = true

	// Stage 2: k-way merge the spilled runs. Each run reads through its
	// own SectionReader + wire.Reader, which re-verifies that block's
	// ledger as it streams; the output fold is the final cross-check
	// against everything stage 1 read.
	srcs := make([]merge.Source, len(runs))
	for i, r := range runs {
		srcs[i] = &spillSource{
			d:   wire.NewReader(io.NewSectionReader(spill, r.off, int64(wire.BlockLen(r.keys)))),
			max: r.keys,
		}
	}
	var outSum, outXor int64
	var outKeys int64
	err = merge.Streams(func(keys []int64) error {
		s, x := wire.Fold(keys)
		outSum += s
		outXor ^= x
		outKeys += int64(len(keys))
		return dst.WriteKeys(keys)
	}, srcs, cfg.MergeBufKeys)
	if err != nil {
		return st, fmt.Errorf("wfsort: stream merge: %w", err)
	}
	if outKeys != st.Keys || outSum != inSum || outXor != inXor {
		return st, fmt.Errorf("wfsort: stream ledger mismatch: read %d keys (sum=%d xor=%d), merged %d (sum=%d xor=%d)",
			st.Keys, inSum, inXor, outKeys, outSum, outXor)
	}
	return st, nil
}

// spillSource adapts one spilled block to merge.Source, reading its
// header lazily on first use.
type spillSource struct {
	d      *wire.Reader
	max    int
	headed bool
}

func (s *spillSource) ReadKeys(buf []int64) (int, error) {
	if !s.headed {
		h, err := s.d.Header(s.max)
		if err != nil {
			return 0, err
		}
		if h.Kind != wire.KindChunk || h.N != s.max {
			return 0, fmt.Errorf("wfsort: spill block corrupted: kind=%d n=%d want n=%d", h.Kind, h.N, s.max)
		}
		s.headed = true
	}
	return s.d.ReadKeys(buf)
}

// writeFrames delivers keys to dst in frames of at most frameKeys, so
// the fast path honors the same bounded-frame contract as the merge.
func writeFrames(dst KeyWriter, keys []int64, frameKeys int) error {
	for off := 0; off < len(keys); off += frameKeys {
		end := off + frameKeys
		if end > len(keys) {
			end = len(keys)
		}
		if err := dst.WriteKeys(keys[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// hasPipelineOpt reports whether opts already sets WithPipeline, so
// SortStream's private pool only defaults the depth when the caller
// didn't choose one.
func hasPipelineOpt(opts []Option) bool {
	var c config
	for _, o := range opts {
		o(&c)
	}
	return c.explicit&setPipeline != 0
}
