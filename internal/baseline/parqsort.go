package baseline

import (
	"wfsort/internal/core"
	"wfsort/internal/model"
)

// BarrierQuicksort is the non-wait-free cousin of the paper's
// algorithm, in the spirit of Chlebus–Vrťo [17]: the same pivot tree,
// subtree sums and rank computation, but with static work assignment
// (each processor inserts a fixed stripe of elements) and barriers
// between phases instead of work-assignment trees. Fault-free it is the
// fastest configuration — no completion-tracking overhead — but a
// single crash either hangs the barrier forever or silently loses the
// crashed processor's elements. The experiments use it for both the
// fault-free performance comparison and the failure demonstration.
type BarrierQuicksort struct {
	n       int
	table   *core.Sorter
	barrier *Barrier
	p       int
}

// NewBarrierQuicksort lays out the sorter for n elements and p
// processors.
func NewBarrierQuicksort(a *model.Arena, n, p int) *BarrierQuicksort {
	if n < 1 {
		panic("baseline: quicksort needs n >= 1")
	}
	return &BarrierQuicksort{
		n:       n,
		table:   core.NewTable(a, n),
		barrier: NewBarrier(a, p),
		p:       p,
	}
}

// Program returns the sort: insert stripe, barrier, sum, barrier,
// place, barrier, shuffle stripe.
func (s *BarrierQuicksort) Program() model.Program {
	return func(p model.Proc) {
		var w Waiter
		p.Phase("1:build")
		for i := 2 + p.ID(); i <= s.n; i += s.p {
			s.table.BuildTree(p, i)
		}
		s.barrier.Wait(p, &w)
		p.Phase("2:sum")
		s.table.TreeSumFrom(p, 1)
		s.barrier.Wait(p, &w)
		p.Phase("3:place")
		s.table.FindPlaceFrom(p, 1, 0)
		s.barrier.Wait(p, &w)
		p.Phase("4:shuffle")
		for i := 1 + p.ID(); i <= s.n; i += s.p {
			r := p.Read(s.table.PlaceAddr(i))
			p.Write(s.table.OutAddr(int(r)-1), Word(i))
		}
	}
}

// Places extracts every element's 1-based rank after a run.
func (s *BarrierQuicksort) Places(mem []Word) []int { return s.table.Places(mem) }

// Output extracts element ids in sorted order after a run.
func (s *BarrierQuicksort) Output(mem []Word) []int { return s.table.Output(mem) }
