package baseline

import (
	"math/bits"

	"wfsort/internal/model"
	"wfsort/internal/wat"
)

// bitonicRound is one (k, j) stage of Batcher's network over width
// cells: every index i with partner l = i XOR j, l > i, is a
// compare-exchange, ascending iff i&k == 0.
type bitonicRound struct {
	k, j int
}

// bitonicRounds enumerates the network's rounds for a power-of-two
// width: log w · (log w + 1) / 2 of them.
func bitonicRounds(width int) []bitonicRound {
	var rounds []bitonicRound
	for k := 2; k <= width; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			rounds = append(rounds, bitonicRound{k: k, j: j})
		}
	}
	return rounds
}

// bitonicNet holds the shared cells of a bitonic network run. Cells
// hold element ids (1..n); Empty (0) is the +infinity padding that
// fills the width up to a power of two and sinks to the high end.
type bitonicNet struct {
	n     int
	width int
	cells model.Region
}

func newBitonicNet(a *model.Arena, n int) bitonicNet {
	if n < 1 {
		panic("baseline: bitonic needs n >= 1")
	}
	width := ceilPow2(n)
	return bitonicNet{n: n, width: width, cells: a.Named("cells", width)}
}

// seed loads the identity arrangement: cell i holds element i+1, pads
// hold Empty (+infinity).
func (b bitonicNet) seed(mem []Word) {
	for i := 0; i < b.n; i++ {
		mem[b.cells.At(i)] = Word(i + 1)
	}
}

// greater orders cell contents: Empty is +infinity, everything else by
// the input order with index tie-breaks.
func greater(p model.Proc, a, b Word) bool {
	if a == model.Empty {
		return b != model.Empty
	}
	if b == model.Empty {
		return false
	}
	return p.Less(int(b), int(a))
}

// compareExchange applies one comparator in place: after it, cell lo <=
// cell hi when asc (and the reverse otherwise). In-place update is the
// classic synchronous-network formulation; it is NOT safe against a
// crash between the two writes, which is why the robust variant uses
// compareExchangeInto over double-buffered generations instead.
func (b bitonicNet) compareExchange(p model.Proc, lo, hi int, asc bool) {
	x := p.Read(b.cells.At(lo))
	y := p.Read(b.cells.At(hi))
	if asc == greater(p, x, y) && x != y {
		p.Write(b.cells.At(lo), y)
		p.Write(b.cells.At(hi), x)
	}
}

// compareExchangeInto applies one comparator reading from src and
// writing both outputs into dst. Because src is immutable during the
// round, the job is idempotent under re-execution and harmless under a
// crash between the writes — the property the Kanellakis–Shvartsman
// simulation needs from each simulated PRAM step.
func compareExchangeInto(p model.Proc, src, dst model.Region, lo, hi int, asc bool) {
	x := p.Read(src.At(lo))
	y := p.Read(src.At(hi))
	if asc == greater(p, x, y) {
		x, y = y, x
	}
	p.Write(dst.At(lo), x)
	p.Write(dst.At(hi), y)
}

// comparator returns the c-th comparator of a round: the pair (i, i^j)
// and its direction. Comparators are indexed 0..width/2-1.
func (r bitonicRound) comparator(c int) (lo, hi int, asc bool) {
	// Enumerate the i with i&j == 0 bit pattern: insert a zero bit at
	// position log2(j) into c.
	jb := bits.TrailingZeros(uint(r.j))
	low := c & (r.j - 1)
	i := (c>>jb)<<(jb+1) | low
	return i, i | r.j, i&r.k == 0
}

// Output reads the sorted element ids from the cells after a run.
func (b bitonicNet) output(mem []Word) []int {
	ids := make([]int, 0, b.n)
	for i := 0; i < b.width; i++ {
		if v := mem[b.cells.At(i)]; v != model.Empty {
			ids = append(ids, int(v))
		}
	}
	return ids
}

// BitonicBarrier is the classic synchronous-PRAM bitonic sort: static
// comparator assignment per round, a barrier between rounds. It is not
// wait-free — a single crash hangs the barrier and loses comparators.
type BitonicBarrier struct {
	net     bitonicNet
	rounds  []bitonicRound
	barrier *Barrier
	p       int
}

// NewBitonicBarrier lays out the network for n elements and p
// processors.
func NewBitonicBarrier(a *model.Arena, n, p int) *BitonicBarrier {
	net := newBitonicNet(a, n)
	return &BitonicBarrier{
		net:     net,
		rounds:  bitonicRounds(net.width),
		barrier: NewBarrier(a, p),
		p:       p,
	}
}

// Seed loads the input arrangement; call before running.
func (s *BitonicBarrier) Seed(mem []Word) { s.net.seed(mem) }

// Program returns the sort. Every processor handles a static stripe of
// comparators each round and then waits at the barrier.
func (s *BitonicBarrier) Program() model.Program {
	return func(p model.Proc) {
		var w Waiter
		half := s.net.width / 2
		for _, r := range s.rounds {
			for c := p.ID(); c < half; c += s.p {
				lo, hi, asc := r.comparator(c)
				s.net.compareExchange(p, lo, hi, asc)
			}
			s.barrier.Wait(p, &w)
		}
	}
}

// Output reads the sorted element ids after a run.
func (s *BitonicBarrier) Output(mem []Word) []int { return s.net.output(mem) }

// Rounds returns the number of network rounds (O(log^2 N)).
func (s *BitonicBarrier) Rounds() int { return len(s.rounds) }

// BitonicRobust is the transformation-based fault-tolerant sort of
// §1.1: every network round is executed as a certified write-all over
// its comparators, using a fresh Work Assignment Tree per round. A
// processor advances to round r+1 only when round r's WAT root is DONE,
// which certifies every comparator of round r has executed — the
// fail-stop PRAM simulation of Kanellakis–Shvartsman [32,33]. Total
// cost is O(log^2 N) rounds x O(log N) write-all overhead =
// O(log^3 N), against O(log N) for the paper's algorithm.
//
// Like its sources, this simulation is correct in the synchronous
// fail-stop model: a processor that crashes simply stops. Under
// arbitrary asynchrony a delayed processor could re-execute a round-r
// comparator after round r+1 has begun, which is exactly why the fully
// asynchronous transformations of Anderson–Woll and Buss et al. [6,16]
// need extra machinery (and an extra log factor) — the point the
// paper's related-work section makes. The experiments exercise it only
// under synchronous schedules with crash injection.
type BitonicRobust struct {
	net    bitonicNet
	gen    [2]model.Region // double-buffered cell generations
	rounds []bitonicRound
	wats   []*wat.WAT
}

// NewBitonicRobust lays out the network, the second cell generation and
// one WAT per round.
func NewBitonicRobust(a *model.Arena, n int) *BitonicRobust {
	net := newBitonicNet(a, n)
	rounds := bitonicRounds(net.width)
	wats := make([]*wat.WAT, len(rounds))
	for i := range wats {
		wats[i] = wat.New(a, max(net.width/2, 1))
	}
	return &BitonicRobust{
		net:    net,
		gen:    [2]model.Region{net.cells, a.Named("cells.gen1", net.width)},
		rounds: rounds,
		wats:   wats,
	}
}

// Seed loads the input arrangement and WAT padding; call before running.
func (s *BitonicRobust) Seed(mem []Word) {
	s.net.seed(mem)
	for _, w := range s.wats {
		w.Seed(mem)
	}
}

// Program returns the simulated-robust sort. Round r reads generation
// r mod 2 and writes generation (r+1) mod 2; a processor enters round
// r+1 only when round r's WAT certifies every comparator executed.
func (s *BitonicRobust) Program() model.Program {
	return func(p model.Proc) {
		for ri, r := range s.rounds {
			src, dst := s.gen[ri%2], s.gen[(ri+1)%2]
			s.wats[ri].Run(p, func(c int) {
				lo, hi, asc := r.comparator(c)
				compareExchangeInto(p, src, dst, lo, hi, asc)
			})
		}
	}
}

// Output reads the sorted element ids after a run.
func (s *BitonicRobust) Output(mem []Word) []int {
	final := bitonicNet{n: s.net.n, width: s.net.width, cells: s.gen[len(s.rounds)%2]}
	return final.output(mem)
}

// Rounds returns the number of network rounds.
func (s *BitonicRobust) Rounds() int { return len(s.rounds) }

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
