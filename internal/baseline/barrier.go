// Package baseline implements the comparison systems the paper measures
// itself against, all on the same machine model as the wait-free sort:
//
//   - Barrier: a tournament PRAM barrier — the synchronization
//     primitive classic PRAM algorithms assume and the precise thing a
//     wait-free algorithm must do without. Any crash strands every
//     other processor in a spin loop.
//   - BitonicBarrier: Batcher's bitonic sorting network [11] run round
//     by round with barriers. O(log^2 N) rounds, not wait-free.
//   - BitonicRobust: the same network with every round executed through
//     a certified write-all (a fresh Work Assignment Tree per round)
//     and generation double-buffering — the Kanellakis–Shvartsman-style
//     simulation of a reliable PRAM on a fail-stop one [32,33,16]. This
//     is the paper's §1.1 strawman: sorting made fault-tolerant by
//     general transformation, at O(log^2 N · log N) = O(log^3 N) cost
//     instead of O(log N).
//   - BarrierQuicksort: the pivot-tree sort with static work assignment
//     and barriers instead of work-assignment trees — the fastest
//     fault-free configuration (Chlebus–Vrťo-style [17]) and the
//     clearest demonstration of what crashes do to a non-wait-free
//     algorithm.
package baseline

import (
	"math/bits"

	"wfsort/internal/model"
)

// Word aliases the shared-memory word type.
type Word = model.Word

// Barrier is a sense-reversing tournament barrier in PRAM shared
// memory: processors pair up level by level, losers post their arrival
// and spin on the release word, winners wait for their partner's flag
// and climb. Arrival takes O(log P) steps on a synchronous machine.
//
// Wait spins, so the barrier is deliberately NOT wait-free: if any
// participant crashes, every other participant spins forever (in the
// simulator, until MaxSteps aborts the run — which is exactly the
// behaviour the failure experiments demonstrate).
type Barrier struct {
	flags   model.Region // flags[level*parties + pid] holds the arrival sense
	release int          // flips to the current sense when all arrived
	levels  int
	parties int
}

// NewBarrier lays out a barrier for the given number of participants.
func NewBarrier(a *model.Arena, parties int) *Barrier {
	if parties < 1 {
		panic("baseline: barrier needs at least one party")
	}
	levels := bits.Len(uint(parties - 1))
	return &Barrier{
		flags:   a.Named("barrier.flags", max(levels, 1)*parties),
		release: a.NamedWord("barrier.release"),
		levels:  levels,
		parties: parties,
	}
}

// Waiter tracks one processor's local barrier sense. The zero value is
// ready for the first Wait. Senses alternate 1, 2, 1, 2, … so the
// zero-initialized flag memory never reads as "arrived".
type Waiter struct {
	sense Word
}

// Wait blocks until all parties have arrived.
func (b *Barrier) Wait(p model.Proc, w *Waiter) {
	if w.sense == 2 {
		w.sense = 1
	} else {
		w.sense = 2
	}
	pid := p.ID() % b.parties
	for lvl := 0; lvl < b.levels; lvl++ {
		bit := 1 << lvl
		if pid&bit != 0 {
			// Loser: post arrival (cumulative for the subtree below)
			// and spin on release.
			p.Write(b.flags.At(lvl*b.parties+pid), w.sense)
			for p.Read(b.release) != w.sense {
			}
			return
		}
		partner := pid | bit
		if partner < b.parties {
			// Winner: wait for the partner's subtree to arrive.
			for p.Read(b.flags.At(lvl*b.parties+partner)) != w.sense {
			}
		}
	}
	// Processor 0 wins every level: release everyone.
	p.Write(b.release, w.sense)
}
