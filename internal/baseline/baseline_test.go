package baseline

import (
	"errors"
	"sort"
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

func lessFor(keys []int) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
}

func randKeys(n int, seed uint64) []int {
	rng := xrand.New(seed)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(3 * n)
	}
	return keys
}

func wantOrder(keys []int) []int {
	ids := make([]int, len(keys))
	for i := range ids {
		ids[i] = i + 1
	}
	less := lessFor(keys)
	sort.Slice(ids, func(a, b int) bool { return less(ids[a], ids[b]) })
	return ids
}

func checkOrder(t *testing.T, got, want []int, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: output has %d elements, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: position %d holds element %d, want %d", label, i, got[i], want[i])
		}
	}
}

func TestBarrierReleasesAllParties(t *testing.T) {
	const p, rounds = 8, 5
	var a model.Arena
	b := NewBarrier(&a, p)
	counters := a.Array(p)
	m := pram.New(pram.Config{P: p, Mem: a.Size()})
	_, err := m.Run(func(pr model.Proc) {
		var w Waiter
		for r := 0; r < rounds; r++ {
			pr.Write(counters.At(pr.ID()), Word(r+1))
			b.Wait(pr, &w)
			// After the barrier, every processor must have written r+1.
			for q := 0; q < p; q++ {
				if v := pr.Read(counters.At(q)); v < Word(r+1) {
					t.Errorf("round %d: processor %d saw counter[%d]=%d", r, pr.ID(), q, v)
				}
			}
			b.Wait(pr, &w)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestBarrierHangsOnCrash(t *testing.T) {
	var a model.Arena
	b := NewBarrier(&a, 4)
	m := pram.New(pram.Config{
		P: 4, Mem: a.Size(), MaxSteps: 20000,
		Sched: pram.WithCrashes(pram.Synchronous(), []pram.Crash{{Step: 1, PID: 0}}),
	})
	_, err := m.Run(func(pr model.Proc) {
		var w Waiter
		pr.Idle()
		pr.Idle()
		b.Wait(pr, &w)
	})
	if !errors.Is(err, pram.ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps (barrier must hang when a party crashes)", err)
	}
}

func TestBitonicBarrierSorts(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{1, 1}, {2, 2}, {7, 3}, {16, 4}, {33, 8}, {64, 64}, {100, 16}, {256, 32},
	} {
		keys := randKeys(tc.n, uint64(tc.n*5+tc.p))
		var a model.Arena
		s := NewBitonicBarrier(&a, tc.n, tc.p)
		m := pram.New(pram.Config{P: tc.p, Mem: a.Size(), Less: lessFor(keys)})
		s.Seed(m.Memory())
		if _, err := m.Run(s.Program()); err != nil {
			t.Fatalf("bitonic(n=%d p=%d): %v", tc.n, tc.p, err)
		}
		checkOrder(t, s.Output(m.Memory()), wantOrder(keys), "bitonic-barrier")
	}
}

func TestBitonicBarrierHangsUnderCrash(t *testing.T) {
	keys := randKeys(32, 1)
	var a model.Arena
	s := NewBitonicBarrier(&a, 32, 8)
	m := pram.New(pram.Config{
		P: 8, Mem: a.Size(), Less: lessFor(keys), MaxSteps: 100000,
		Sched: pram.WithCrashes(pram.Synchronous(), []pram.Crash{{Step: 10, PID: 3}}),
	})
	s.Seed(m.Memory())
	_, err := m.Run(s.Program())
	if !errors.Is(err, pram.ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps: the barrier network must not survive a crash", err)
	}
}

func TestBitonicRobustSorts(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{1, 1}, {4, 4}, {16, 16}, {33, 8}, {64, 64}, {128, 16},
	} {
		keys := randKeys(tc.n, uint64(tc.n*9+tc.p))
		var a model.Arena
		s := NewBitonicRobust(&a, tc.n)
		m := pram.New(pram.Config{P: tc.p, Mem: a.Size(), Less: lessFor(keys)})
		s.Seed(m.Memory())
		if _, err := m.Run(s.Program()); err != nil {
			t.Fatalf("robust(n=%d p=%d): %v", tc.n, tc.p, err)
		}
		checkOrder(t, s.Output(m.Memory()), wantOrder(keys), "bitonic-robust")
	}
}

func TestBitonicRobustSurvivesCrashes(t *testing.T) {
	for trial := uint64(0); trial < 4; trial++ {
		const n, p = 64, 16
		keys := randKeys(n, trial)
		crashes := pram.RandomCrashes(p, 0.6, 500, 40+trial)
		kept := crashes[:0]
		for _, c := range crashes {
			if c.PID != 0 {
				kept = append(kept, c)
			}
		}
		var a model.Arena
		s := NewBitonicRobust(&a, n)
		m := pram.New(pram.Config{
			P: p, Mem: a.Size(), Less: lessFor(keys), Seed: trial,
			Sched: pram.WithCrashes(pram.Synchronous(), kept),
		})
		s.Seed(m.Memory())
		if _, err := m.Run(s.Program()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkOrder(t, s.Output(m.Memory()), wantOrder(keys), "bitonic-robust-crash")
	}
}

func TestBitonicRobustCostsLogCubed(t *testing.T) {
	// The §1.1 claim: per-step certified write-all multiplies the
	// O(log^2 N) network rounds by an O(log N) overhead, for O(log^3 N)
	// total. Check the shape: steps per round must be Θ(log N) with
	// P = N (so steps ≈ rounds · log N, i.e. log^3), not O(1).
	for _, n := range []int{64, 256, 1024} {
		keys := randKeys(n, uint64(n))
		var a model.Arena
		r := NewBitonicRobust(&a, n)
		m := pram.New(pram.Config{P: n, Mem: a.Size(), Less: lessFor(keys)})
		r.Seed(m.Memory())
		met, err := m.Run(r.Program())
		if err != nil {
			t.Fatal(err)
		}
		logN := int64(0)
		for v := n; v > 1; v >>= 1 {
			logN++
		}
		rounds := int64(r.Rounds())
		perRound := met.Steps / rounds
		t.Logf("n=%d: steps=%d rounds=%d per-round=%d logN=%d", n, met.Steps, rounds, perRound, logN)
		if perRound < logN {
			t.Errorf("n=%d: %d steps per round, want >= log N = %d (write-all overhead)", n, perRound, logN)
		}
		if perRound > 20*logN {
			t.Errorf("n=%d: %d steps per round, want O(log N) ≈ %d", n, perRound, logN)
		}
	}
}

func TestBarrierQuicksortSorts(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{1, 1}, {2, 2}, {16, 4}, {63, 9}, {128, 128}, {200, 25},
	} {
		keys := randKeys(tc.n, uint64(tc.n*11+tc.p))
		var a model.Arena
		s := NewBarrierQuicksort(&a, tc.n, tc.p)
		m := pram.New(pram.Config{P: tc.p, Mem: a.Size(), Less: lessFor(keys)})
		if _, err := m.Run(s.Program()); err != nil {
			t.Fatalf("parqsort(n=%d p=%d): %v", tc.n, tc.p, err)
		}
		checkOrder(t, s.Output(m.Memory()), wantOrder(keys), "barrier-quicksort")
	}
}

func TestBarrierQuicksortHangsUnderCrash(t *testing.T) {
	keys := randKeys(64, 2)
	var a model.Arena
	s := NewBarrierQuicksort(&a, 64, 8)
	m := pram.New(pram.Config{
		P: 8, Mem: a.Size(), Less: lessFor(keys), MaxSteps: 200000,
		Sched: pram.WithCrashes(pram.Synchronous(), []pram.Crash{{Step: 4, PID: 5}}),
	})
	_, err := m.Run(s.Program())
	if !errors.Is(err, pram.ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestComparatorEnumeration(t *testing.T) {
	for _, width := range []int{2, 4, 8, 32, 128} {
		for _, r := range bitonicRounds(width) {
			seen := make(map[int]bool, width)
			for c := 0; c < width/2; c++ {
				lo, hi, _ := r.comparator(c)
				if lo >= hi || hi != lo|r.j || lo&r.j != 0 {
					t.Fatalf("width=%d round=%+v c=%d: bad pair (%d,%d)", width, r, c, lo, hi)
				}
				if seen[lo] || seen[hi] {
					t.Fatalf("width=%d round=%+v: index reused", width, r)
				}
				seen[lo], seen[hi] = true, true
			}
			if len(seen) != width {
				t.Fatalf("width=%d round=%+v: covered %d indices", width, r, len(seen))
			}
		}
	}
}

func TestBitonicRoundCount(t *testing.T) {
	// log w (log w + 1) / 2 rounds.
	for w, want := range map[int]int{2: 1, 4: 3, 8: 6, 16: 10, 1024: 55} {
		if got := len(bitonicRounds(w)); got != want {
			t.Errorf("width %d: %d rounds, want %d", w, got, want)
		}
	}
}
