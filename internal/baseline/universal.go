package baseline

import (
	"wfsort/internal/model"
)

// Universal sorts through a Herlihy-style universal construction — the
// §1.1 strawman that motivates the paper. The sorted sequence is a
// wait-free object: its state lives in a versioned buffer, and an
// operation ("insert element x") is performed by copying the entire
// current state, applying the insertion locally into a private spare
// buffer, and compare-and-swapping the version word at the new buffer.
// Losers retry against the new state. Helping is by construction: any
// processor can apply any pending element, and membership checks make
// re-application harmless, so the object is wait-free and
// crash-tolerant.
//
// As in Herlihy's small-object protocol, the version word carries a
// sequence number (to defeat ABA on buffer reuse) and readers validate
// the version after copying (a copy raced by the buffer's owner is
// discarded). Each processor owns two buffers and alternates between
// them, so the buffer named by the current version is never being
// written.
//
// It is also exactly as slow as the paper says generic constructions
// are: every successful insertion copies O(N) words and only one
// insertion can win per copy period, so the whole sort costs Θ(N²)
// time regardless of P — "only one process performs all pending work"
// (§1.1). Experiment E14 measures this against the paper's
// O(N log N / P) algorithm.
type Universal struct {
	n       int
	version int            // packed seq*(2P+1) + slot; slot 0 = empty state
	applied model.Region   // applied[i] = 1 once element i is known inserted
	bufs    []model.Region // slots 1..2P: [count, sorted ids...]
	out     model.Region   // final sorted ids, written by finishers
	p       int
}

// NewUniversal lays out the object for n elements and p processors.
func NewUniversal(a *model.Arena, n, p int) *Universal {
	if n < 1 || p < 1 {
		panic("baseline: universal needs n, p >= 1")
	}
	u := &Universal{
		n:       n,
		version: a.NamedWord("version"),
		applied: a.Named("applied", n+1),
		out:     a.Named("out", n),
		p:       p,
	}
	u.bufs = make([]model.Region, 2*p)
	for i := range u.bufs {
		u.bufs[i] = a.Named("universal.buf", n+1)
	}
	return u
}

func (u *Universal) pack(seq int64, slot int) model.Word {
	return model.Word(seq)*model.Word(2*u.p+1) + model.Word(slot)
}

func (u *Universal) unpack(v model.Word) (seq int64, slot int) {
	m := model.Word(2*u.p + 1)
	return int64(v / m), int(v % m)
}

// Program returns the universal-construction sort.
func (u *Universal) Program() model.Program {
	return func(p model.Proc) {
		u.sort(p)
	}
}

func (u *Universal) sort(p model.Proc) {
	pid := p.ID() % u.p
	parity := 0
	cursor := 1                  // elements below this are known applied
	state := make([]int, 0, u.n) // validated copy of the current state
	for {
		// Herlihy's read-copy-validate: copy the state named by the
		// version word, then re-read the version; a change means the
		// copy may be torn, so retry.
		ver := p.Read(u.version)
		_, slot := u.unpack(ver)
		state = u.copyState(p, slot, state)
		if p.Read(u.version) != ver {
			continue
		}
		if len(state) == u.n {
			break
		}
		// Choose an element to apply: scan the applied flags, verify
		// against the copied state (a crashed winner may have left its
		// flag unset), healing stale flags as we go.
		x := u.chooseElement(p, state, &cursor)
		if x == 0 {
			// Everything is applied or in flight; re-read and retry.
			continue
		}
		// Apply locally into our spare buffer. The spare is never the
		// buffer named by the current version (we alternate only after
		// a win), so no reader validating against ver can see these
		// writes as current state.
		mySlot := 1 + 2*pid + parity
		buf := u.bufs[mySlot-1]
		next := insertSorted(p, state, x)
		p.Write(buf.At(0), model.Word(len(next)))
		for i, v := range next {
			p.Write(buf.At(i+1), model.Word(v))
		}
		// Try to publish with a fresh sequence number (no ABA).
		seq, _ := u.unpack(ver)
		if p.CAS(u.version, ver, u.pack(seq+1, mySlot)) {
			p.Write(u.applied.At(x), 1)
			parity = 1 - parity
			state = next
			if len(state) == u.n {
				break
			}
		}
	}
	// Publish the final order (idempotent writes by every finisher).
	for i, v := range state {
		p.Write(u.out.At(i), model.Word(v))
	}
}

// copyState reads the state buffer in the given slot into dst; slot 0
// is the initial empty state.
func (u *Universal) copyState(p model.Proc, slot int, dst []int) []int {
	dst = dst[:0]
	if slot == 0 {
		return dst
	}
	buf := u.bufs[slot-1]
	count := int(p.Read(buf.At(0)))
	if count > u.n {
		// Torn read of a buffer being rewritten; validation will
		// discard the copy, just keep the read in range.
		count = u.n
	}
	for i := 1; i <= count; i++ {
		dst = append(dst, int(p.Read(buf.At(i))))
	}
	return dst
}

// chooseElement returns an element not present in state whose applied
// flag is unset, fixing up stale flags (elements present in the state
// but not yet flagged) along the way. The caller's cursor advances
// monotonically past known-applied elements (flags never clear), so a
// processor's total scanning cost over the whole run is O(N) plus its
// number of rounds. Returns 0 when nothing is available.
func (u *Universal) chooseElement(p model.Proc, state []int, cursor *int) int {
	for x := *cursor; x <= u.n; x++ {
		if p.Read(u.applied.At(x)) != model.Empty {
			if x == *cursor {
				*cursor = x + 1
			}
			continue
		}
		if containsElem(p, state, x) {
			// A winner crashed between publishing and flagging; heal.
			p.Write(u.applied.At(x), 1)
			if x == *cursor {
				*cursor = x + 1
			}
			continue
		}
		return x
	}
	return 0
}

// containsElem reports whether element x is in the sorted state (local
// binary search; comparisons are free in the machine model).
func containsElem(p model.Proc, state []int, x int) bool {
	lo, hi := 0, len(state)
	for lo < hi {
		mid := (lo + hi) / 2
		if state[mid] == x {
			return true
		}
		if p.Less(state[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return false
}

// insertSorted returns state with x inserted at its ordered position.
func insertSorted(p model.Proc, state []int, x int) []int {
	lo, hi := 0, len(state)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.Less(state[mid], x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	out := make([]int, 0, len(state)+1)
	out = append(out, state[:lo]...)
	out = append(out, x)
	return append(out, state[lo:]...)
}

// Output reads the sorted element ids after a run.
func (u *Universal) Output(mem []Word) []int {
	ids := make([]int, u.n)
	for i := range ids {
		ids[i] = int(mem[u.out.At(i)])
	}
	return ids
}
