package baseline

import (
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

func runUniversal(t *testing.T, keys []int, p int, seed uint64, sched pram.Scheduler) (*Universal, *pram.Machine, *model.Metrics) {
	t.Helper()
	var a model.Arena
	u := NewUniversal(&a, len(keys), p)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: seed, Sched: sched, Less: lessFor(keys)})
	met, err := m.Run(u.Program())
	if err != nil {
		t.Fatalf("universal(n=%d p=%d): %v", len(keys), p, err)
	}
	checkOrder(t, u.Output(m.Memory()), wantOrder(keys), "universal")
	return u, m, met
}

func TestUniversalSorts(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{1, 1}, {2, 2}, {8, 4}, {16, 16}, {40, 8}, {64, 3},
	} {
		runUniversal(t, randKeys(tc.n, uint64(tc.n*13+tc.p)), tc.p, uint64(tc.p), nil)
	}
}

func TestUniversalUnderSerializedSchedule(t *testing.T) {
	runUniversal(t, randKeys(24, 1), 6, 2, pram.RoundRobin(1))
}

func TestUniversalUnderRandomSchedule(t *testing.T) {
	runUniversal(t, randKeys(32, 2), 8, 3, pram.RandomSubset(0.3))
}

func TestUniversalSurvivesCrashes(t *testing.T) {
	for trial := uint64(0); trial < 4; trial++ {
		crashes := pram.RandomCrashes(8, 0.6, 2000, 77+trial)
		kept := crashes[:0]
		for _, c := range crashes {
			if c.PID != 0 {
				kept = append(kept, c)
			}
		}
		runUniversal(t, randKeys(32, trial), 8, trial,
			pram.WithCrashes(pram.Synchronous(), kept))
	}
}

// TestUniversalIsQuadratic verifies the §1.1 complaint: the universal
// construction's running time grows quadratically in N no matter how
// many processors participate — adding processors does not help,
// because one winner per copy period performs all pending work.
func TestUniversalIsQuadratic(t *testing.T) {
	steps := map[int]int64{}
	for _, n := range []int{16, 32, 64} {
		keys := randKeys(n, uint64(n))
		_, _, met := runUniversal(t, keys, n, uint64(n), nil)
		steps[n] = met.Steps
	}
	// Doubling N should roughly quadruple the steps (allow slack).
	if r := float64(steps[64]) / float64(steps[32]); r < 2.5 {
		t.Errorf("steps grew only %.1fx from N=32 to N=64; expected near-quadratic growth (%v)", r, steps)
	}
	// And more processors should NOT make it much faster.
	keys := randKeys(64, 9)
	_, _, met4 := runUniversal(t, keys, 4, 1, nil)
	_, _, met64 := runUniversal(t, keys, 64, 1, nil)
	if met64.Steps*3 < met4.Steps {
		t.Errorf("64 processors (%d steps) much faster than 4 (%d steps): the serialization bottleneck disappeared?",
			met64.Steps, met4.Steps)
	}
}

// TestUniversalVersionPacking checks the seq/slot packing round-trips.
func TestUniversalVersionPacking(t *testing.T) {
	var a model.Arena
	u := NewUniversal(&a, 4, 5)
	for _, tc := range []struct {
		seq  int64
		slot int
	}{{0, 0}, {1, 3}, {7, 10}, {123456, 1}} {
		seq, slot := u.unpack(u.pack(tc.seq, tc.slot))
		if seq != tc.seq || slot != tc.slot {
			t.Errorf("pack/unpack(%d,%d) = (%d,%d)", tc.seq, tc.slot, seq, slot)
		}
	}
}
