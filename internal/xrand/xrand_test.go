package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from equal seeds diverged at %d", i)
		}
	}
}

func TestForkDecorrelates(t *testing.T) {
	root := New(1)
	a, b := root.Fork(0), root.Fork(1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Errorf("forked streams collided %d/64 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(0).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	const n, draws = 8, 80000
	r := New(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestGeometricDistribution(t *testing.T) {
	const draws = 40000
	r := New(11)
	counts := make(map[int]int)
	for i := 0; i < draws; i++ {
		g := r.Geometric(30)
		if g < 0 || g > 30 {
			t.Fatalf("Geometric out of range: %d", g)
		}
		counts[g]++
	}
	// P(G = k) = 2^-(k+1); check the first few buckets loosely.
	for k := 0; k <= 3; k++ {
		want := float64(draws) / math.Pow(2, float64(k+1))
		got := float64(counts[k])
		if math.Abs(got-want) > 6*math.Sqrt(want) {
			t.Errorf("Geometric(%d) count %v, want about %v", k, got, want)
		}
	}
}

func TestGeometricCap(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if g := r.Geometric(3); g > 3 {
			t.Fatalf("cap violated: %d", g)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	out := make([]int, 40)
	for trial := 0; trial < 20; trial++ {
		r.Perm(out)
		seen := make([]bool, len(out))
		for _, v := range out {
			if v < 0 || v >= len(out) || seen[v] {
				t.Fatalf("not a permutation: %v", out)
			}
			seen[v] = true
		}
	}
}

func TestBoolIsFair(t *testing.T) {
	r := New(13)
	heads := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)-draws/2) > 4*math.Sqrt(draws/4) {
		t.Errorf("heads = %d of %d, badly unfair", heads, draws)
	}
}
