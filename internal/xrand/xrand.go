// Package xrand provides a small, fast, deterministic pseudo-random number
// generator suitable for per-processor use in simulated and native PRAM
// executions.
//
// The generator is splitmix64 (Steele, Lea, Flood; public domain
// reference implementation). It is not cryptographically secure. Its
// virtues here are determinism from a seed, a 64-bit state that is cheap
// to fork per processor, and statistical quality far beyond what the
// randomized constructions in the paper require (uniform node picks,
// geometric coin runs).
//
// math/rand is deliberately not used: every processor needs an
// independent stream derived deterministically from (run seed, processor
// id) so that simulator runs are exactly reproducible, and math/rand's
// seeding and locking behaviour make that awkward.
package xrand

import "math/bits"

// Rand is a deterministic 64-bit PRNG. The zero value is a valid
// generator seeded with 0; prefer New to decorrelate streams.
type Rand struct {
	state uint64
}

// New returns a generator whose stream is determined by seed.
func New(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent generator for the given stream id (for
// example a processor id). Streams from distinct ids are decorrelated by
// an extra mixing round.
func (r *Rand) Fork(id uint64) *Rand {
	// Mix the id through one splitmix64 round before combining so that
	// consecutive ids do not yield consecutive internal states.
	return &Rand{state: mix(r.state ^ mix(id))}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and divisionless
	// in the common case.
	un := uint64(n)
	threshold := (-un) % un
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Geometric returns the number of consecutive heads before the first
// tail, capped at max: the length of the paper's coin-toss wait loop in
// select_winner (Fig. 9). The result is in [0, max].
func (r *Rand) Geometric(max int) int {
	n := 0
	for n < max && r.Bool() {
		n++
	}
	return n
}

// Perm fills out with a uniform permutation of [0, len(out)).
func (r *Rand) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
