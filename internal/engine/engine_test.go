package engine_test

import (
	"sync"
	"testing"

	"wfsort/internal/engine"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

// fakeProc is a minimal single-processor model.Proc over a private
// memory image, for engine mechanics that need no machine semantics.
type fakeProc struct {
	mem    []model.Word
	phases []string
	rng    *xrand.Rand
}

func (f *fakeProc) ID() int               { return 0 }
func (f *fakeProc) NumProcs() int         { return 1 }
func (f *fakeProc) Read(a int) model.Word { return f.mem[a] }
func (f *fakeProc) Write(a int, v model.Word) {
	f.mem[a] = v
}
func (f *fakeProc) CAS(a int, old, new model.Word) bool {
	if f.mem[a] != old {
		return false
	}
	f.mem[a] = new
	return true
}
func (f *fakeProc) Idle()              {}
func (f *fakeProc) Less(i, j int) bool { return i < j }
func (f *fakeProc) Rand() *model.Rng   { return f.rng }
func (f *fakeProc) Phase(name string)  { f.phases = append(f.phases, name) }

func newFake(mem int) *fakeProc {
	return &fakeProc{mem: make([]model.Word, mem), rng: xrand.New(1)}
}

// TestRunOrderAndLabels pins the execution contract: worker phases run
// in declaration order, each preceded by exactly one Phase label unless
// Quiet, and host-only phases (nil Body) are skipped entirely.
func TestRunOrderAndLabels(t *testing.T) {
	var order []string
	g := engine.New("t").
		Add(engine.Phase{Name: "a", Body: func(p model.Proc, _ any) { order = append(order, "a") }}).
		Add(engine.Phase{Name: "host", Epilogue: func(mem []model.Word) { mem[0] = 42 }}).
		Add(engine.Phase{Name: "b", Quiet: true, Body: func(p model.Proc, _ any) { order = append(order, "b") }}).
		Add(engine.Phase{Name: "c", Body: func(p model.Proc, _ any) { order = append(order, "c") }})

	if got := g.NumWorkerPhases(); got != 3 {
		t.Fatalf("NumWorkerPhases = %d, want 3", got)
	}
	f := newFake(4)
	g.Run(f)
	if want := []string{"a", "b", "c"}; !equal(order, want) {
		t.Fatalf("bodies ran %v, want %v", order, want)
	}
	// Quiet phase b and host phase emit no label.
	if want := []string{"a", "c"}; !equal(f.phases, want) {
		t.Fatalf("labels %v, want %v", f.phases, want)
	}
	if f.mem[0] != 0 {
		t.Fatal("epilogue ran during Run; it is host-side only")
	}
	g.Epilogues(f.mem)
	if f.mem[0] != 42 {
		t.Fatal("Epilogues did not run the host phase")
	}
}

// TestNotifyIndices pins RunNotify's contract: indices count worker
// phases from 0 in order, skipping host-only phases.
func TestNotifyIndices(t *testing.T) {
	g := engine.New("t").
		Add(engine.Phase{Name: "a", Body: func(model.Proc, any) {}}).
		Add(engine.Phase{Name: "host"}).
		Add(engine.Phase{Name: "b", Body: func(model.Proc, any) {}})
	var ks []int
	g.RunNotify(newFake(1), func(k int) { ks = append(ks, k) })
	if len(ks) != 2 || ks[0] != 0 || ks[1] != 1 {
		t.Fatalf("notify indices %v, want [0 1]", ks)
	}
}

// TestStateCarriesAcrossPhases verifies the per-execution state value:
// each execution gets a fresh one, and it threads through every phase.
func TestStateCarriesAcrossPhases(t *testing.T) {
	type locals struct{ v int }
	g := engine.New("t").
		WithState(func() any { return &locals{} }).
		Add(engine.Phase{Name: "set", Body: func(p model.Proc, st any) { st.(*locals).v = p.ID() + 7 }}).
		Add(engine.Phase{Name: "use", Body: func(p model.Proc, st any) {
			p.Write(p.ID(), model.Word(st.(*locals).v))
		}})

	m := pram.New(pram.Config{P: 4, Mem: 8, Seed: 1})
	if _, err := m.Run(g.Program()); err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		if got := m.Memory()[pid]; got != model.Word(pid+7) {
			t.Fatalf("pid %d carried %d, want %d", pid, got, pid+7)
		}
	}
}

// TestDoneAndFirstUndone exercises the host-side completion
// predicates.
func TestDoneAndFirstUndone(t *testing.T) {
	g := engine.New("t").
		Add(engine.Phase{Name: "one", Body: func(model.Proc, any) {}, Done: func(mem []model.Word) bool { return mem[0] != 0 }}).
		Add(engine.Phase{Name: "two", Body: func(model.Proc, any) {}, Done: func(mem []model.Word) bool { return mem[1] != 0 }})
	mem := make([]model.Word, 2)
	if g.Done(mem) {
		t.Fatal("Done on empty memory")
	}
	if got := g.FirstUndone(mem); got != "one" {
		t.Fatalf("FirstUndone = %q, want %q", got, "one")
	}
	mem[0] = 1
	if got := g.FirstUndone(mem); got != "two" {
		t.Fatalf("FirstUndone = %q, want %q", got, "two")
	}
	mem[1] = 1
	if !g.Done(mem) || g.FirstUndone(mem) != "" {
		t.Fatal("predicates should all pass")
	}
}

// TestEmbedRunsSubgraphUnderSubProc verifies the §3-style embedding: an
// outer Quiet phase runs an inner graph through a prefixing SubProc, so
// the simulator attributes the inner ops to the prefixed labels and the
// outer phase itself adds no label — exactly the seed behavior of
// lowcont's phase A.
func TestEmbedRunsSubgraphUnderSubProc(t *testing.T) {
	inner := engine.New("inner").
		Add(engine.Phase{Name: "1:work", Body: func(p model.Proc, _ any) { p.Write(p.ID(), 1) }})
	outer := engine.New("outer").
		Add(engine.Phase{Name: "A:inner", Quiet: true, Body: engine.Embed(func(p model.Proc) (*engine.Graph, model.Proc) {
			return inner, model.NewSubProc(p, p.ID(), p.NumProcs(), 0, "A:")
		})}).
		Add(engine.Phase{Name: "B:after", Body: func(p model.Proc, _ any) { p.Idle() }})

	m := pram.New(pram.Config{P: 2, Mem: 4, Seed: 1})
	met, err := m.Run(outer.Program())
	if err != nil {
		t.Fatal(err)
	}
	names := met.PhaseNames()
	if want := []string{"A:1:work", "B:after"}; !equal(names, want) {
		t.Fatalf("phase labels %v, want %v", names, want)
	}
}

// TestGraphIsStatelessAcrossConcurrentRuns runs one graph from many
// goroutines at once; per-execution state must not bleed.
func TestGraphIsStatelessAcrossConcurrentRuns(t *testing.T) {
	type locals struct{ v int }
	g := engine.New("t").
		WithState(func() any { return &locals{} }).
		Add(engine.Phase{Name: "set", Body: func(p model.Proc, st any) { st.(*locals).v = int(p.Read(0)) }}).
		Add(engine.Phase{Name: "check", Body: func(p model.Proc, st any) { p.Write(1, model.Word(st.(*locals).v)) }})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := newFake(2)
			f.mem[0] = model.Word(i)
			g.Run(f)
			if f.mem[1] != model.Word(i) {
				t.Errorf("run %d saw state %d", i, f.mem[1])
			}
		}(i)
	}
	wg.Wait()
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
