// Package engine is the phase-graph orchestration layer shared by every
// sort in this repository. The paper's skeleton algorithm (Fig. 2) is a
// sequence of individually gated phases: a processor leaves build_tree
// only when the whole pivot tree is built, leaves tree_sum only having
// verified the root's size, and so on — the gates live *inside* each
// phase, which is exactly why no barriers are needed and why the sort
// is wait-free. Until this package existed that structure was encoded
// twice as inline straight-line code (core.Sorter.Sort phases 1–4,
// lowcont.Sorter.Sort phases A–G); here it becomes a first-class object
// — a Graph of typed Phase descriptors — that one scheduler executes on
// either runtime (the deterministic PRAM simulator or the native
// goroutine runtime).
//
// Making the structure data instead of control flow buys three things:
//
//   - one orchestration copy: the sorters *declare* their phase
//     sequences; the engine runs them, emitting the per-phase labels
//     that drive the simulator's phase attribution and the obs plane's
//     spans and latency histograms (Proc.Phase is free on both
//     runtimes, so engine-driven runs are byte-identical to the seed's
//     inline loops — the simulator goldens pin this down);
//   - host-side introspection: each phase can carry a completion
//     predicate over the arena (what "this phase's global work is
//     done" means in memory) and a host-side epilogue (work a driver
//     runs after the workers, like HostShuffle's scatter);
//   - phase-level pipelining: a runtime that wants to overlap queued
//     jobs can run a graph with a completion notification per phase
//     (RunNotify) and admit the next job as soon as every worker has
//     advanced past the first phase of the current one — see
//     native.Pipeline.
//
// A Graph is immutable after construction and stateless between runs:
// all mutable sort state lives in the runtime's shared memory, and any
// per-processor locals a graph's phases share travel in a State value
// created per execution (per incarnation — a respawned worker re-enters
// the graph from the top and rebuilds its locals from shared memory,
// which is the restartability the completion marks already guarantee).
package engine

import "wfsort/internal/model"

// Body is one phase's per-processor work. st is the graph's
// per-execution carried state (see Graph.WithState); graphs that do not
// declare state receive nil.
type Body func(p model.Proc, st any)

// Phase is one gated stage of a wait-free program.
type Phase struct {
	// Name labels the phase for metrics attribution, obs spans and
	// latency histograms ("1:build", "G:shuffle", ...).
	Name string
	// Body is the per-processor work. The body must be self-gating: it
	// returns only when the phase's *global* work is complete (or the
	// processor has proof someone else will complete it), never relying
	// on other processors making progress — that is the wait-freedom
	// contract every phase in this repository honors. A nil Body marks
	// a host-only phase (see Epilogue): the engine skips it entirely on
	// workers.
	Body Body
	// Done, when non-nil, is the host-side completion predicate: it
	// inspects a run's memory and reports whether this phase's global
	// work is complete. It is diagnostic — the certification harness
	// and tests call it after runs; the phases gate themselves — and
	// must only be used on quiescent memory (plain reads).
	Done func(mem []model.Word) bool
	// Epilogue, when non-nil, is host-side work that replaces or
	// augments the phase after all workers are done — e.g. the
	// HostShuffle scatter, which materializes the output array from the
	// rank table without the shared-memory write-all pass. Drivers opt
	// in via Graph.Epilogues; the workers never run it.
	Epilogue func(mem []model.Word)
	// Quiet suppresses the engine's Proc.Phase(Name) label, for phases
	// whose bodies emit their own finer-grained labels — the
	// low-contention sort's inner phase runs a whole subgraph through a
	// prefixing model.SubProc, so an outer label would manufacture an
	// empty attribution bucket that the seed behavior never had.
	Quiet bool
}

// Graph is an ordered sequence of phases plus an optional per-execution
// state factory. Build one with New/Add at layout time; it is immutable
// afterwards and safe for concurrent executions.
type Graph struct {
	name     string
	newState func() any
	phases   []Phase
	workers  int // phases with a worker body
}

// New starts an empty graph. The name labels it in diagnostics.
func New(name string) *Graph { return &Graph{name: name} }

// WithState declares a per-execution state factory: each Run calls it
// once and threads the value through every phase body, so phases can
// carry per-processor locals (the low-contention sort's elected winner
// and learned root) without the graph itself holding any mutable state.
func (g *Graph) WithState(f func() any) *Graph {
	g.newState = f
	return g
}

// Add appends a phase and returns the graph for chaining.
func (g *Graph) Add(ph Phase) *Graph {
	g.phases = append(g.phases, ph)
	if ph.Body != nil {
		g.workers++
	}
	return g
}

// Name returns the graph's diagnostic label.
func (g *Graph) Name() string { return g.name }

// Phases returns the phase sequence. Callers must not mutate it.
func (g *Graph) Phases() []Phase { return g.phases }

// NumWorkerPhases returns how many phases have worker bodies — the
// count RunNotify's completion indices range over.
func (g *Graph) NumWorkerPhases() int { return g.workers }

// WorkerPhaseNames returns the worker phases' labels in RunNotify
// index order — the names a runtime attaches to per-phase timings it
// collects through the notification hook. The slice is freshly
// allocated; callers may keep it.
func (g *Graph) WorkerPhaseNames() []string {
	out := make([]string, 0, g.workers)
	for i := range g.phases {
		if g.phases[i].Body != nil {
			out = append(out, g.phases[i].Name)
		}
	}
	return out
}

// Run executes every worker phase in order on the calling processor.
func (g *Graph) Run(p model.Proc) { g.RunNotify(p, nil) }

// RunNotify is Run with a phase-completion hook: notify(k) fires after
// the k-th worker phase's body returns (k counts worker phases from 0,
// skipping host-only ones). The hook is what lets native.Pipeline keep
// per-phase epoch counters without the sorters knowing pipelining
// exists. A killed processor unwinds out of the body without the
// notification; its next incarnation re-enters from phase 0, so within
// one incarnation the notified indices are strictly increasing from 0 —
// the invariant the pipeline's monotone progress words rely on.
func (g *Graph) RunNotify(p model.Proc, notify func(k int)) {
	var st any
	if g.newState != nil {
		st = g.newState()
	}
	k := 0
	for i := range g.phases {
		ph := &g.phases[i]
		if ph.Body == nil {
			continue
		}
		if !ph.Quiet {
			p.Phase(ph.Name)
		}
		ph.Body(p, st)
		if notify != nil {
			notify(k)
		}
		k++
	}
}

// Program adapts the graph to the runtimes' entry-point type.
func (g *Graph) Program() model.Program {
	return func(p model.Proc) { g.Run(p) }
}

// Epilogues runs every phase's host-side epilogue, in phase order, on a
// quiescent run's memory. Drivers that skip shared-memory phases
// (HostShuffle) call this to materialize their results host-side.
func (g *Graph) Epilogues(mem []model.Word) {
	for i := range g.phases {
		if ep := g.phases[i].Epilogue; ep != nil {
			ep(mem)
		}
	}
}

// Done reports whether every phase with a completion predicate is
// complete in mem — the host-side certification that a run's memory
// really holds a finished sort. Quiescent memory only.
func (g *Graph) Done(mem []model.Word) bool {
	for i := range g.phases {
		if d := g.phases[i].Done; d != nil && !d(mem) {
			return false
		}
	}
	return true
}

// FirstUndone returns the name of the first phase whose completion
// predicate fails, or "" when all pass — the certifier's one-line
// diagnosis of how far a doomed run got.
func (g *Graph) FirstUndone(mem []model.Word) string {
	for i := range g.phases {
		if d := g.phases[i].Done; d != nil && !d(mem) {
			return g.phases[i].Name
		}
	}
	return ""
}

// Embed builds a phase body that runs an inner graph through a remapped
// processor view: choose picks, per processor, the subgraph and the
// model.Proc it executes under — typically a model.SubProc that renames
// the processor into the subgroup's dense pid space and prefixes its
// phase labels. This is how the §3 sort's per-group inner sorts embed
// as subgraphs (phase "A:"), with the inner graph's own labels carried
// through the prefix.
func Embed(choose func(p model.Proc) (sub *Graph, view model.Proc)) Body {
	return func(p model.Proc, _ any) {
		sub, view := choose(p)
		sub.Run(view)
	}
}
