package native

import (
	"sync/atomic"
	"testing"
	"time"

	"wfsort/internal/model"
)

func TestAllProcessorsRun(t *testing.T) {
	const p = 8
	rt := New(Config{P: p, Mem: p})
	_, err := rt.Run(func(pr model.Proc) {
		pr.Write(pr.ID(), model.Word(pr.ID()+1))
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 0; i < p; i++ {
		if rt.Memory()[i] != model.Word(i+1) {
			t.Errorf("mem[%d] = %d, want %d", i, rt.Memory()[i], i+1)
		}
	}
}

func TestCASExactlyOneWinner(t *testing.T) {
	const p = 16
	rt := New(Config{P: p, Mem: 1 + p})
	_, err := rt.Run(func(pr model.Proc) {
		if pr.CAS(0, model.Empty, model.Word(pr.ID()+1)) {
			pr.Write(1+pr.ID(), 1)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	winners := 0
	for i := 0; i < p; i++ {
		if rt.Memory()[1+i] == 1 {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("CAS winners = %d, want 1", winners)
	}
}

func TestKillUnwindsProcessor(t *testing.T) {
	const p = 4
	rt := New(Config{P: p, Mem: p})
	var entered atomic.Int64
	done := make(chan struct{})
	go func() {
		// Reap processor 0 once it has started working.
		for entered.Load() == 0 {
			time.Sleep(time.Microsecond)
		}
		rt.Kill(0)
		close(done)
	}()
	met, err := rt.Run(func(pr model.Proc) {
		if pr.ID() == 0 {
			entered.Add(1)
			<-done
			for {
				pr.Idle() // kill flag is checked here; must unwind
			}
		}
		pr.Write(pr.ID(), 1)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 1 {
		t.Errorf("killed = %d, want 1", met.Killed)
	}
	for i := 1; i < p; i++ {
		if rt.Memory()[i] != 1 {
			t.Errorf("survivor %d did not finish", i)
		}
	}
}

func TestOpCounting(t *testing.T) {
	rt := New(Config{P: 3, Mem: 1, CountOps: true})
	met, err := rt.Run(func(pr model.Proc) {
		for i := 0; i < 5; i++ {
			pr.Read(0)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Ops != 15 {
		t.Errorf("ops = %d, want 15", met.Ops)
	}
}

func TestPanicPropagates(t *testing.T) {
	rt := New(Config{P: 2, Mem: 1})
	_, err := rt.Run(func(pr model.Proc) {
		if pr.ID() == 1 {
			panic("kaboom")
		}
	})
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

func TestRunTwiceRejected(t *testing.T) {
	rt := New(Config{P: 1, Mem: 1})
	if _, err := rt.Run(func(model.Proc) {}); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := rt.Run(func(model.Proc) {}); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestLessTieBreak(t *testing.T) {
	rt := New(Config{P: 1, Mem: 1, Less: func(i, j int) bool { return false }})
	_, err := rt.Run(func(pr model.Proc) {
		if pr.Less(3, 3) {
			t.Error("Less(i,i) must be false")
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}
