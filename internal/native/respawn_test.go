package native

import (
	"sync/atomic"
	"testing"
	"time"

	"wfsort/internal/model"
)

// TestRespawnHelpsFinish kills a worker mid-run and respawns it; the
// respawned worker must participate (its ops count) and the run must
// complete.
func TestRespawnHelpsFinish(t *testing.T) {
	const p = 4
	rt := New(Config{P: p, Mem: 1, CountOps: true})
	var restarted atomic.Int64
	started := make(chan struct{})   // worker 0's first incarnation is up
	respawned := make(chan struct{}) // controller finished kill+respawn
	go func() {
		defer close(respawned)
		<-started
		rt.Kill(0)
		// Wait until the kill lands (worker 0 unwinds) before reviving.
		for {
			rt.mu.Lock()
			live := rt.live
			rt.mu.Unlock()
			if live == p-1 {
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
		if err := rt.Respawn(0); err != nil {
			t.Errorf("Respawn: %v", err)
		}
	}()
	met, err := rt.Run(func(pr model.Proc) {
		if pr.ID() == 0 {
			if restarted.Add(1) == 1 {
				// First incarnation: signal the controller and spin
				// until killed.
				close(started)
				for {
					pr.Idle()
				}
			}
			// Second incarnation: do one op and finish.
			pr.Write(0, 1)
			return
		}
		// Other workers block until the controller has respawned worker
		// 0, then wait for its write.
		<-respawned
		for pr.Read(0) != 1 {
		}
	})
	<-respawned
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 1 {
		t.Errorf("killed = %d, want 1", met.Killed)
	}
	if restarted.Load() != 2 {
		t.Errorf("worker 0 ran %d times, want 2", restarted.Load())
	}
}

func TestRespawnAfterRunRejected(t *testing.T) {
	rt := New(Config{P: 2, Mem: 1})
	if _, err := rt.Run(func(model.Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Respawn(0); err == nil {
		t.Error("respawn after completion accepted")
	}
}

func TestRespawnBadPID(t *testing.T) {
	rt := New(Config{P: 2, Mem: 1})
	if err := rt.Respawn(7); err == nil {
		t.Error("out-of-range pid accepted")
	}
}
