package native

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/model"
)

// TestRespawnHelpsFinish kills a worker mid-run and respawns it; the
// respawned worker must participate (its ops count) and the run must
// complete.
func TestRespawnHelpsFinish(t *testing.T) {
	const p = 4
	rt := New(Config{P: p, Mem: 1, CountOps: true})
	var restarted atomic.Int64
	started := make(chan struct{})   // worker 0's first incarnation is up
	respawned := make(chan struct{}) // controller finished kill+respawn
	go func() {
		defer close(respawned)
		<-started
		rt.Kill(0)
		// Wait until the kill lands (worker 0 unwinds) before reviving.
		for {
			rt.mu.Lock()
			live := rt.live
			rt.mu.Unlock()
			if live == p-1 {
				break
			}
			time.Sleep(10 * time.Microsecond)
		}
		if err := rt.Respawn(0); err != nil {
			t.Errorf("Respawn: %v", err)
		}
	}()
	met, err := rt.Run(func(pr model.Proc) {
		if pr.ID() == 0 {
			if restarted.Add(1) == 1 {
				// First incarnation: signal the controller and spin
				// until killed.
				close(started)
				for {
					pr.Idle()
				}
			}
			// Second incarnation: do one op and finish.
			pr.Write(0, 1)
			return
		}
		// Other workers block until the controller has respawned worker
		// 0, then wait for its write.
		<-respawned
		for pr.Read(0) != 1 {
		}
	})
	<-respawned
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 1 {
		t.Errorf("killed = %d, want 1", met.Killed)
	}
	if restarted.Load() != 2 {
		t.Errorf("worker 0 ran %d times, want 2", restarted.Load())
	}
}

// layoutCase is one native arena layout with its tuning, replicating
// the root package's WithLayout mapping (wfsort.nativeArena, mirrored
// by chaos.arenaFor) so in-package tests cover the same configurations.
type layoutCase struct {
	name  string
	alloc model.Allocator
	tun   core.Tuning
}

func layoutCases(n, workers int) []layoutCase {
	batch := n / (4 * workers)
	if batch > 128 {
		batch = 128
	}
	if batch < 1 {
		batch = 1
	}
	return []layoutCase{
		{"sharded", NewArena(Padded), core.Tuning{
			Batch: batch, SkipKeyRead: true, Shards: min(workers, 8), HostShuffle: true,
		}},
		{"padded", NewArena(Padded), core.Tuning{}},
		{"flat", &model.Arena{}, core.Tuning{}},
	}
}

// certBound mirrors chaos.Bound (which this package cannot import —
// chaos imports native): the certified per-processor op ceiling, the
// paper's O(N log N / P) bound at the wait-free worst case P = 1 times
// the measured constant 12.
func certBound(n int) int64 {
	return 12 * (int64(n)*int64(bits.Len(uint(n))) + int64(n) + 256)
}

// hostRanks computes each element's expected 1-based rank host-side,
// ties broken by index.
func hostRanks(keys []int) []int {
	ids := make([]int, len(keys))
	for i := range ids {
		ids[i] = i + 1
	}
	sort.SliceStable(ids, func(a, b int) bool { return keys[ids[a]-1] < keys[ids[b]-1] })
	ranks := make([]int, len(keys))
	for pos, id := range ids {
		ranks[id-1] = pos + 1
	}
	return ranks
}

func testKeys(n int, seed int64) []int {
	keys := make([]int, n)
	v := uint64(seed)*2654435761 + 1
	for i := range keys {
		v = v*6364136223846793005 + 1442695040888963407
		keys[i] = int(v % uint64(4*n))
	}
	return keys
}

// phase3Adversary kills its victim at the victim's first shared-memory
// operation inside phase 3 (armed by the phase tap below, from the
// victim's own goroutine) and grants it one respawn. killed needs no
// atomicity — it is only touched under the pid == victim short-circuit,
// i.e. from the victim's serialized incarnations.
type phase3Adversary struct {
	victim int
	armed  atomic.Bool
	killed bool
}

func (a *phase3Adversary) Strike(pid int, op int64) model.Fault {
	if pid == a.victim && !a.killed && a.armed.Load() {
		a.killed = true
		return model.Fault{Action: model.FaultKill}
	}
	return model.Fault{}
}

func (a *phase3Adversary) Respawn(pid, deaths int) bool { return deaths <= 1 }

// phaseTap forwards model.Proc and arms the adversary when the victim
// announces a phase.
type phaseTap struct {
	model.Proc
	adv   *phase3Adversary
	phase string
}

func (t phaseTap) Phase(name string) {
	t.Proc.Phase(name)
	if name == t.phase && t.Proc.ID() == t.adv.victim {
		t.adv.armed.Store(true)
	}
}

// TestRespawnDuringPhase3AllLayouts kills a worker at its first
// operation inside find_place — after the pivot tree is built, the
// phase whose completion marks the respawned incarnation must re-walk —
// and lets the adversary revive it, on every arena layout. The sort
// must finish correctly with the death and respawn accounted, and every
// processor must stay under the certified op ceiling.
func TestRespawnDuringPhase3AllLayouts(t *testing.T) {
	const n, p = 512, 4
	keys := testKeys(n, 3)
	want := hostRanks(keys)
	for _, lc := range layoutCases(n, p) {
		t.Run(lc.name, func(t *testing.T) {
			s := core.NewSorterTuned(lc.alloc, n, core.AllocRandomized, lc.tun)
			adv := &phase3Adversary{victim: 1}
			rt := New(Config{
				P: p, Mem: lc.alloc.Size(), Seed: 7, CountOps: true,
				Less: func(i, j int) bool {
					a, b := keys[i-1], keys[j-1]
					if a != b {
						return a < b
					}
					return i < j
				},
				Adversary: adv,
			})
			s.Seed(rt.Memory())
			prog := s.Program()
			met, err := rt.Run(func(pr model.Proc) {
				prog(phaseTap{Proc: pr, adv: adv, phase: "3:place"})
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if met.Killed != 1 || met.Respawns != 1 {
				t.Errorf("killed=%d respawns=%d, want 1/1", met.Killed, met.Respawns)
			}
			for i, r := range s.Places(rt.Memory()) {
				if r != want[i] {
					t.Fatalf("element %d placed %d, want %d", i+1, r, want[i])
				}
			}
			bound := certBound(n)
			for pid, ops := range rt.OpsPerProc() {
				if ops > bound {
					t.Errorf("pid %d executed %d ops, over the ceiling %d", pid, ops, bound)
				}
			}
		})
	}
}

// TestKillAllButOneEveryLayout schedules the harshest permitted quorum
// — every processor except 0 dies at a staggered early ordinal — on
// every arena layout. The lone mandated survivor must finish the sort
// alone, each victim must stop at exactly its scheduled ordinal, and
// the survivor must stay under the certified per-processor op ceiling.
func TestKillAllButOneEveryLayout(t *testing.T) {
	const n, p = 512, 4
	keys := testKeys(n, 5)
	want := hostRanks(keys)
	for _, lc := range layoutCases(n, p) {
		t.Run(lc.name, func(t *testing.T) {
			s := core.NewSorterTuned(lc.alloc, n, core.AllocRandomized, lc.tun)
			plan := NewPlan()
			for pid := 1; pid < p; pid++ {
				plan.KillAt(pid, int64(20*pid+5))
			}
			rt := New(Config{
				P: p, Mem: lc.alloc.Size(), Seed: 11, CountOps: true,
				Less: func(i, j int) bool {
					a, b := keys[i-1], keys[j-1]
					if a != b {
						return a < b
					}
					return i < j
				},
				Adversary: plan,
			})
			s.Seed(rt.Memory())
			met, err := rt.Run(s.Program())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if met.Killed != p-1 {
				t.Fatalf("killed = %d, want %d", met.Killed, p-1)
			}
			for i, r := range s.Places(rt.Memory()) {
				if r != want[i] {
					t.Fatalf("element %d placed %d, want %d", i+1, r, want[i])
				}
			}
			ops := rt.OpsPerProc()
			for pid := 1; pid < p; pid++ {
				if wantOps := int64(20*pid + 4); ops[pid] != wantOps {
					t.Errorf("victim %d executed %d ops, want exactly %d", pid, ops[pid], wantOps)
				}
			}
			if bound := certBound(n); ops[0] > bound {
				t.Errorf("survivor executed %d ops, over the ceiling %d", ops[0], bound)
			}
		})
	}
}

func TestRespawnAfterRunRejected(t *testing.T) {
	rt := New(Config{P: 2, Mem: 1})
	if _, err := rt.Run(func(model.Proc) {}); err != nil {
		t.Fatal(err)
	}
	if err := rt.Respawn(0); err == nil {
		t.Error("respawn after completion accepted")
	}
}

func TestRespawnBadPID(t *testing.T) {
	rt := New(Config{P: 2, Mem: 1})
	if err := rt.Respawn(7); err == nil {
		t.Error("out-of-range pid accepted")
	}
}
