package native

import (
	"testing"
)

// TestPipelineRunTiming: a traced job's Timing() decomposes its life
// into queue wait and a run window whose per-phase crew completions
// are consistent — every phase named in graph order, no negative
// durations, and the phase sum bounded by the run wall.
func TestPipelineRunTiming(t *testing.T) {
	pl := NewPipeline(4, 2, true)
	defer pl.Close()

	keys := make([]int, 400)
	for i := range keys {
		keys[i] = (i * 2654435761) % 701
	}
	job, s, mem := pipeSortJob(keys, 1)
	job.Traced = true
	run := pl.Submit(job)
	if _, err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	tm := run.Timing()
	if tm.Shed {
		t.Fatal("faultless job reported shed")
	}
	if tm.RunNs <= 0 {
		t.Fatalf("RunNs = %d, want > 0", tm.RunNs)
	}
	if tm.QueueWaitNs < 0 {
		t.Fatalf("QueueWaitNs = %d, want >= 0", tm.QueueWaitNs)
	}
	names := job.Graph.WorkerPhaseNames()
	if len(names) == 0 {
		t.Fatal("graph reports no worker phases")
	}
	if len(tm.Phases) != len(names) {
		t.Fatalf("phases = %d, want %d (%v)", len(tm.Phases), len(names), tm.Phases)
	}
	var sum int64
	anyPositive := false
	for i, p := range tm.Phases {
		if p.Name != names[i] {
			t.Fatalf("phase %d named %q, want %q", i, p.Name, names[i])
		}
		if p.DurNs < 0 {
			t.Fatalf("phase %q duration %d < 0", p.Name, p.DurNs)
		}
		if p.DurNs > 0 {
			anyPositive = true
		}
		sum += p.DurNs
	}
	if !anyPositive {
		t.Fatalf("no phase recorded any time: %+v", tm.Phases)
	}
	// Phase completions are stamped inside the dispatch->end window,
	// so their telescoping sum cannot exceed the run wall.
	if sum > tm.RunNs {
		t.Fatalf("phase sum %dns exceeds run wall %dns", sum, tm.RunNs)
	}
	checkRanks(t, keys, s, mem)
}

// TestPipelineRunTimingUntraced: an untraced job pays nothing and
// reports nothing — the zero JobTiming, no phase slots allocated.
func TestPipelineRunTimingUntraced(t *testing.T) {
	pl := NewPipeline(2, 1, false)
	defer pl.Close()

	keys := []int{5, 3, 9, 1, 7, 2}
	job, _, _ := pipeSortJob(keys, 2)
	run := pl.Submit(job)
	if _, err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	tm := run.Timing()
	if tm.RunNs != 0 || tm.QueueWaitNs != 0 || len(tm.Phases) != 0 || tm.Shed {
		t.Fatalf("untraced Timing() = %+v, want zero value", tm)
	}
}
