package native

import (
	"testing"

	"wfsort/internal/model"
)

// reader returns a program in which every processor performs `ops`
// reads of word 0 and returns.
func reader(ops int) model.Program {
	return func(pr model.Proc) {
		for i := 0; i < ops; i++ {
			pr.Read(0)
		}
	}
}

// TestPlanKillsAtExactOpCount pins the plan's clock: a kill at ordinal
// k replaces the k-th operation, so the victim executes exactly k-1.
func TestPlanKillsAtExactOpCount(t *testing.T) {
	plan := NewPlan().KillAt(0, 5)
	rt := New(Config{P: 2, Mem: 1, CountOps: true, Adversary: plan})
	met, err := rt.Run(reader(10))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 1 {
		t.Fatalf("killed = %d, want 1", met.Killed)
	}
	ops := rt.OpsPerProc()
	if ops[0] != 4 {
		t.Errorf("victim executed %d ops, want 4 (killed in place of op 5)", ops[0])
	}
	if ops[1] != 10 {
		t.Errorf("survivor executed %d ops, want 10", ops[1])
	}
}

// TestPlanCrashSpecMapping checks the shared Crash vocabulary: Step 0
// kills at the first operation, exactly as pram's "first step >= Step".
func TestPlanCrashSpecMapping(t *testing.T) {
	plan := PlanCrashes([]model.Crash{{Step: 0, PID: 1}, {Step: 3, PID: 2}})
	rt := New(Config{P: 3, Mem: 1, CountOps: true, Adversary: plan})
	met, err := rt.Run(reader(8))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 2 {
		t.Fatalf("killed = %d, want 2", met.Killed)
	}
	ops := rt.OpsPerProc()
	if ops[1] != 0 {
		t.Errorf("pid 1 executed %d ops, want 0 (Step 0 kills at the first op)", ops[1])
	}
	if ops[2] != 2 {
		t.Errorf("pid 2 executed %d ops, want 2 (killed in place of op 3)", ops[2])
	}
	if ops[0] != 8 {
		t.Errorf("survivor executed %d ops, want 8", ops[0])
	}
}

// TestPlanStallCountsAndCompletes verifies stalls are injected, counted
// and harmless to completion.
func TestPlanStallCountsAndCompletes(t *testing.T) {
	plan := NewPlan().StallAt(0, 2, 4).StallAt(1, 3, 1)
	rt := New(Config{P: 2, Mem: 1, CountOps: true, Adversary: plan})
	met, err := rt.Run(reader(6))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.InjectedStalls != 2 {
		t.Errorf("injected stalls = %d, want 2", met.InjectedStalls)
	}
	if met.Killed != 0 {
		t.Errorf("killed = %d, want 0", met.Killed)
	}
	ops := rt.OpsPerProc()
	for pid, n := range ops {
		if n != 6 {
			t.Errorf("pid %d executed %d ops, want 6 (stalls cost no ops)", pid, n)
		}
	}
}

// TestPlanReviveContinuesOpOrdinals kills a worker twice with revival:
// each incarnation reruns the program, and the adversary clock carries
// across incarnations so the second kill targets the cumulative count.
func TestPlanReviveContinuesOpOrdinals(t *testing.T) {
	plan := NewPlan().KillAt(0, 3).KillAt(0, 8).Revive(0, 2)
	rt := New(Config{P: 2, Mem: 1, CountOps: true, Adversary: plan})
	met, err := rt.Run(reader(10))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 2 {
		t.Errorf("killed = %d, want 2", met.Killed)
	}
	if met.Respawns != 2 {
		t.Errorf("respawns = %d, want 2", met.Respawns)
	}
	// Incarnation 1 executes ordinals 1-2 (killed at 3); incarnation 2
	// executes 4-7 (killed at 8); incarnation 3 runs the full program,
	// ordinals 9-18. Executed ops: 2 + 4 + 10.
	if ops := rt.OpsPerProc(); ops[0] != 16 {
		t.Errorf("pid 0 executed %d ops across incarnations, want 16", ops[0])
	}
}

// TestPlanDeterministicOpCounts runs the same plan twice: per-processor
// executed-op counts are anchored to each processor's own clock, so
// they must be identical run to run regardless of OS scheduling.
func TestPlanDeterministicOpCounts(t *testing.T) {
	run := func() []int64 {
		plan := NewPlan().KillAt(1, 7).KillAt(2, 1).StallAt(0, 5, 2)
		rt := New(Config{P: 4, Mem: 1, CountOps: true, Adversary: plan})
		if _, err := rt.Run(reader(20)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return rt.OpsPerProc()
	}
	a, b := run(), run()
	for pid := range a {
		if a[pid] != b[pid] {
			t.Errorf("pid %d: op counts diverged across runs: %d vs %d", pid, a[pid], b[pid])
		}
	}
}
