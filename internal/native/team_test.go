package native

import (
	"sort"
	"sync"
	"testing"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/obs"
)

// teamSortJob lays out a fresh sorter for keys and returns the job and
// the sorter (for reading places back).
func teamSortJob(keys []int, seed uint64) (TeamJob, *core.Sorter, []Word) {
	var a model.Arena
	s := core.NewSorter(&a, len(keys), core.AllocRandomized)
	mem := make([]Word, a.Size())
	s.Seed(mem)
	less := func(i, j int) bool {
		ki, kj := keys[i-1], keys[j-1]
		if ki != kj {
			return ki < kj
		}
		return i < j
	}
	return TeamJob{Prog: s.Program(), Mem: mem, Less: less, Seed: seed}, s, mem
}

func checkRanks(t *testing.T, keys []int, s *core.Sorter, mem []Word) {
	t.Helper()
	places := s.Places(mem)
	out := make([]int, len(keys))
	for i, r := range places {
		if r < 1 || r > len(keys) {
			t.Fatalf("element %d: rank %d out of range", i+1, r)
		}
		out[r-1] = keys[i]
	}
	if !sort.IntsAreSorted(out) {
		t.Fatalf("output not sorted: %v", out)
	}
}

// TestTeamReuse runs many successive sorts on one team and verifies
// each one — the resident-worker contract the pool depends on.
func TestTeamReuse(t *testing.T) {
	tm := NewTeam(4, true)
	defer tm.Close()
	for run := 0; run < 10; run++ {
		n := 64 + run*37
		keys := make([]int, n)
		for i := range keys {
			keys[i] = (i * 131) % 97
		}
		job, s, mem := teamSortJob(keys, uint64(run))
		met, err := tm.Run(job)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if met.Ops == 0 {
			t.Fatalf("run %d: no ops counted", run)
		}
		checkRanks(t, keys, s, mem)
	}
}

// TestTeamFaults drives a job with a kill/revive plan and verifies the
// sort still completes with the deaths and respawns accounted.
func TestTeamFaults(t *testing.T) {
	tm := NewTeam(4, true)
	defer tm.Close()
	keys := make([]int, 400)
	for i := range keys {
		keys[i] = (i * 7919) % 211
	}
	plan := NewPlan()
	for pid := 1; pid < 4; pid++ {
		// Low ordinals: on one CPU a late worker may find all work done
		// and finish in few ops, so a high ordinal would never land.
		plan.KillAt(pid, int64(3*pid)).Revive(pid, 1)
	}
	job, s, mem := teamSortJob(keys, 3)
	job.Adversary = plan
	met, err := tm.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if met.Killed != 3 || met.Respawns != 3 {
		t.Fatalf("killed=%d respawns=%d, want 3 and 3", met.Killed, met.Respawns)
	}
	checkRanks(t, keys, s, mem)

	// The team must be back at full strength for the next, faultless job.
	keys2 := []int{9, 1, 8, 2, 7, 3, 6, 4, 5}
	job2, s2, mem2 := teamSortJob(keys2, 4)
	if _, err := tm.Run(job2); err != nil {
		t.Fatal(err)
	}
	checkRanks(t, keys2, s2, mem2)
}

// TestTeamCrashHalfNoRevive kills half the workers permanently within
// one job: survivors must finish, and the dead workers come back for
// the next job because only the program unwound, not the goroutine.
func TestTeamCrashHalfNoRevive(t *testing.T) {
	tm := NewTeam(6, true)
	defer tm.Close()
	keys := make([]int, 300)
	for i := range keys {
		keys[i] = (i * 31) % 59
	}
	plan := NewPlan()
	for pid := 3; pid < 6; pid++ {
		plan.KillAt(pid, int64(2+pid))
	}
	job, s, mem := teamSortJob(keys, 5)
	job.Adversary = plan
	met, err := tm.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if met.Killed != 3 || met.Respawns != 0 {
		t.Fatalf("killed=%d respawns=%d, want 3 and 0", met.Killed, met.Respawns)
	}
	checkRanks(t, keys, s, mem)

	job2, s2, mem2 := teamSortJob(keys, 6)
	if _, err := tm.Run(job2); err != nil {
		t.Fatal(err)
	}
	checkRanks(t, keys, s2, mem2)
}

// TestTeamAbort aborts a job mid-flight: Wait must return promptly and
// the team must serve the next job normally.
func TestTeamAbort(t *testing.T) {
	tm := NewTeam(2, false)
	defer tm.Close()
	keys := make([]int, 5000)
	for i := range keys {
		keys[i] = (i * 48271) % 65537
	}
	job, _, _ := teamSortJob(keys, 7)
	run := tm.Start(job)
	run.Abort()
	if _, err := run.Wait(); err != nil {
		t.Fatalf("aborted wait: %v", err)
	}
	if !run.Aborted() {
		t.Fatal("run not marked aborted")
	}

	keys2 := []int{3, 1, 2}
	job2, s2, mem2 := teamSortJob(keys2, 8)
	if _, err := tm.Run(job2); err != nil {
		t.Fatal(err)
	}
	checkRanks(t, keys2, s2, mem2)
}

// TestTeamObserver installs an observer on a team job and checks the
// phase spans arrive, then reuses the team unobserved.
func TestTeamObserver(t *testing.T) {
	tm := NewTeam(3, false)
	defer tm.Close()
	keys := make([]int, 200)
	for i := range keys {
		keys[i] = 199 - i
	}
	ob := obs.New(obs.Config{})
	job, s, mem := teamSortJob(keys, 9)
	job.Observer = ob
	met, err := tm.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(met.ByPhase) == 0 {
		t.Fatal("observer produced no phase metrics")
	}
	if len(ob.Incarnations()) != 3 {
		t.Fatalf("incarnations = %d, want 3", len(ob.Incarnations()))
	}
	checkRanks(t, keys, s, mem)

	job2, s2, mem2 := teamSortJob(keys, 10)
	if _, err := tm.Run(job2); err != nil {
		t.Fatal(err)
	}
	checkRanks(t, keys, s2, mem2)
}

// TestTeamSerializesConcurrentUse hammers one team from many
// goroutines through an external mutex (the pooling layer's contract)
// to shake out races between job swaps under the race detector.
func TestTeamSerializesConcurrentUse(t *testing.T) {
	tm := NewTeam(2, true)
	defer tm.Close()
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				keys := make([]int, 100+10*g+i)
				for k := range keys {
					keys[k] = (k * 997) % 83
				}
				job, s, mem := teamSortJob(keys, uint64(g*100+i))
				mu.Lock()
				_, err := tm.Run(job)
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
				checkRanks(t, keys, s, mem)
			}
		}(g)
	}
	wg.Wait()
}
