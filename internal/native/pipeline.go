package native

import (
	"sync"
	"sync/atomic"
	"time"

	"wfsort/internal/engine"
	"wfsort/internal/model"
	"wfsort/internal/obs"
	"wfsort/internal/xrand"
)

// Pipeline is a resident crew of P worker goroutines that overlaps a
// bounded queue of independent sort jobs at phase granularity. The
// serial Team forces a full barrier between jobs: the driver must Wait
// for job k before Start(job k+1), so at every job boundary the whole
// crew idles behind its slowest worker. The Pipeline removes that
// barrier. Each job is an engine phase graph; a worker that finishes
// job k moves straight on to job k+1, gated only by the admission rule:
//
//	job k+1 may enter phase 1 once every worker has advanced past
//	phase 1 of job k.
//
// Jobs have disjoint memories, so overlapping them is always safe — the
// gate is a throughput policy (it keeps the crew's cache working set to
// roughly two adjacent jobs and preserves rough job ordering), not a
// correctness requirement.
//
// # Done-skip
//
// Because jobs are declarative phase graphs rather than opaque
// programs, the pipeline knows when a job is globally finished: the
// first worker to run the whole graph to normal completion has, by the
// engine's own gating, observed every phase's completion predicate
// hold, so the output is final and any worker arriving afterwards
// would only re-verify no-ops. Such workers skip the sweep (publishing
// their phase-1 passage directly, which is trivially true of a done
// job). The serial Team cannot do this — its barrier wakes all workers
// into the job simultaneously and its Program is opaque — which is
// precisely the throughput edge the -pipeline benchmark gate measures.
// Kills never set the latch — a worker that dies without revival, or a
// job that panics, leaves done unset — and jobs carrying an Adversary
// never skip at all, so deterministic fault plans land every scheduled
// kill and the chaos certifier always measures the unskipped path.
//
// # Progress tracking
//
// Progress is a per-worker monotone word prog[pid] = epoch·stride + k,
// where epoch is the job's submission index and k counts completed
// worker phases. The gate only ever compares against enc(epoch-1, 1),
// so a worker publishes exactly the two words the gate can read —
// enc(epoch, 0) at pickup and enc(epoch, 1) when its graph notifies
// completion of the first worker phase — and swallows the later
// notifications. Three rules make the admission gate deadlock-free
// under arbitrary kills:
//
//   - pickup publishes: a worker publishes enc(epoch, 0) the moment it
//     picks a job up, before its own admission wait, so a worker killed
//     without revival in job k still unblocks job k+1's gate when it
//     picks job k+1 up (enc(k+1, 0) > enc(k, 1));
//   - publish is max: a respawned worker re-enters its graph from phase
//     0 and re-notifies from index 0; taking the max keeps the public
//     word monotone while, within one incarnation, notified indices are
//     strictly increasing from 0 (the property tests pin this down);
//   - FIFO per worker: submission sends every job to every worker's
//     queue under one lock, so all workers see jobs in epoch order and
//     the lowest unadmitted epoch only ever waits on workers that are
//     actively running (or already past) the previous job.
//
// Fault semantics within a job match the Team exactly — same
// incarnation loop (jobCore), kills unwind the graph, respawns carry op
// ordinals across — but each job gets its own runState (kill flags,
// counters), because two jobs are concurrently in flight.
//
// # Ordered queue and the dispatcher
//
// Submitted jobs land in a bounded pending queue drained by a single
// dispatcher goroutine. A pluggable QueuePolicy decides, at each
// dispatch, which pending job goes next and which pending jobs to shed
// (ErrDeadlineShed, before they consume a crew slot); a nil policy is
// strict FIFO with no shedding. Epochs — the admission gate's ordering
// — are assigned at dispatch, not submission, so reordering the queue
// never perturbs the gate's invariants: from the workers' point of
// view the dispatcher is just a submitter that happens to choose the
// order. Only the dispatcher sends on the worker channels, so all
// workers still see jobs in identical epoch order (the FIFO rule
// below). Worker channels hold two jobs each: the phase-overlap window
// is at most two adjacent jobs anyway (the admission rule), so deeper
// per-worker buffers would only move jobs out of the scheduler's reach
// earlier for no throughput gain.
type Pipeline struct {
	p        int
	depth    int
	countOps bool
	policy   QueuePolicy
	wall     time.Time // clock base for JobView instants
	jobs     []chan *pipeJob
	workers  sync.WaitGroup
	dispDone chan struct{}

	// qmu guards the pending queue; qcond wakes the dispatcher (queue
	// became non-empty, or closed) and blocked Submits (a slot freed).
	qmu     sync.Mutex
	qcond   *sync.Cond
	pending []*pipeJob
	seq     uint64
	closed  bool

	// epochs is owned by the dispatcher goroutine alone.
	epochs int

	// prog[pid] is worker pid's monotone progress word, written only by
	// that worker (single-writer, so plain atomic stores suffice) and
	// padded so neighbors don't share cache lines. progMu/cond exist
	// only for blocked admissions; waiters is the Dekker flag that tells
	// publishers whether anyone needs a wakeup (publish stores prog and
	// then loads waiters, admit raises waiters and then rereads prog —
	// both sequentially consistent, so one side always sees the other).
	prog    []progWord
	waiters atomic.Int32
	progMu  sync.Mutex
	cond    *sync.Cond
	// minNeed (under progMu) is the smallest progress word any blocked
	// admission is waiting for, maxInt64 when none. allAtLeast is
	// monotone in its argument, so if the smallest need is unsatisfied
	// every larger one is too — publishers skip the broadcast entirely
	// unless the lowest waiter can actually proceed, instead of
	// thundering every blocked worker awake on every publication.
	minNeed int64
}

// progWord pads each worker's progress word to its own cache line.
type progWord struct {
	v atomic.Int64
	_ [7]int64
}

// progStride separates epochs in the progress encoding; any graph has
// far fewer worker phases.
const progStride = 1 << 20

// enc encodes (epoch, completed-phases) as one monotone progress word.
func enc(epoch, k int) int64 { return int64(epoch)*progStride + int64(k) }

// PipeJob describes one phase-graph execution on a pipeline.
type PipeJob struct {
	// Graph is the phase graph every worker runs (core/lowcont sorters
	// expose theirs via Graph()).
	Graph *engine.Graph
	// Mem is the job's shared memory. Concurrent jobs MUST have disjoint
	// memories; the pooling layer's per-job contexts guarantee this.
	Mem []Word
	// Less is the input order consulted by Proc.Less; nil compares
	// element indices.
	Less func(i, j int) bool
	// Seed determines per-worker RNG streams for this job.
	Seed uint64
	// Adversary, when non-nil, is the per-job fault plane; if it also
	// implements Respawner, killed workers re-enter the graph with fresh
	// incarnations.
	Adversary model.Adversary
	// Observer, when non-nil, records this job (one Observer per job).
	Observer *obs.Observer
	// QoS is the job's scheduling envelope, consulted by the pipeline's
	// QueuePolicy. The zero value is "best tier, no deadline".
	QoS JobQoS
	// Traced opts the job into stage-timing capture: the pipeline
	// records its dispatch instant and per-phase completion times
	// (PipeRun.Timing). Recording is wait-free — each worker stores
	// phase-end timestamps into its own slots — and untraced jobs pay
	// nothing beyond this flag test.
	Traced bool
}

// pipeJob is a PipeJob in flight.
type pipeJob struct {
	PipeJob
	jobCore
	epoch int
	// seq, queuedNs and deadlineNs are the scheduler-visible identity
	// (JobView); shedded is set by the dispatcher before it releases the
	// job's WaitGroup, so Wait (which runs after wg.Wait) reads it with
	// a happens-before edge and no atomics.
	seq        uint64
	queuedNs   int64
	deadlineNs int64
	shedded    bool
	// dispatchNs is set by the dispatcher just before it sends the job
	// to the workers (happens-before via the channel sends); endNs is
	// set once by the first Wait to return. Both stay zero on untraced
	// jobs.
	dispatchNs int64
	endNs      int64
	// phaseEnd, on traced jobs, holds per-(worker, phase) completion
	// timestamps: slot pid*numPhases+k is written only by worker pid
	// (single-writer, so a plain atomic store suffices — no CAS loop on
	// the notify path). A respawned incarnation re-notifies from phase
	// 0 and overwrites with later instants, which is exactly the
	// last-completion semantics Timing wants. nil when untraced.
	phaseEnd []atomic.Int64
	st       runState // per-job: overlapping jobs must not share kill flags or counters
	stalls   atomic.Int64
	// done latches once any worker runs the whole graph to normal
	// completion. Every phase's completion predicate held on that
	// worker's way out, so the job's output is final and a worker that
	// picks the job up afterwards may skip its sweep entirely — see the
	// done-skip note in the type comment.
	done atomic.Bool
}

// PipeRun is a submitted job, returned by Submit.
type PipeRun struct {
	pl *Pipeline
	jb *pipeJob

	start time.Time
	// Elapsed is the job's wall-clock duration from submission, valid
	// after Wait. It includes any time spent queued behind earlier jobs.
	Elapsed time.Duration
}

// NewPipeline starts a resident pipelined crew of p workers with the
// default FIFO queue. depth bounds the pending job queue: Submit
// blocks once depth jobs are queued beyond those already committed to
// workers. countOps enables per-job per-worker operation counters.
// Close releases the workers.
func NewPipeline(p, depth int, countOps bool) *Pipeline {
	return NewPipelinePolicy(p, depth, countOps, nil)
}

// NewPipelinePolicy is NewPipeline with a pluggable ordered queue:
// policy decides dispatch order and deadline shedding over the pending
// jobs (nil means strict FIFO, no shedding).
func NewPipelinePolicy(p, depth int, countOps bool, policy QueuePolicy) *Pipeline {
	if p < 1 {
		panic("native: NewPipeline needs p >= 1")
	}
	if depth < 1 {
		depth = 1
	}
	pl := &Pipeline{
		p:        p,
		depth:    depth,
		countOps: countOps,
		policy:   policy,
		wall:     time.Now(),
		jobs:     make([]chan *pipeJob, p),
		prog:     make([]progWord, p),
		dispDone: make(chan struct{}),
	}
	pl.cond = sync.NewCond(&pl.progMu)
	pl.qcond = sync.NewCond(&pl.qmu)
	pl.minNeed = maxInt64
	for pid := range pl.prog {
		pl.prog[pid].v.Store(-1)
	}
	for pid := 0; pid < p; pid++ {
		ch := make(chan *pipeJob, 2)
		pl.jobs[pid] = ch
		pl.workers.Add(1)
		go pl.worker(pid, ch)
	}
	go pl.dispatch()
	return pl
}

// now is the pipeline's monotonic clock: nanoseconds since creation.
func (pl *Pipeline) now() int64 { return time.Since(pl.wall).Nanoseconds() }

// P returns the crew's worker count.
func (pl *Pipeline) P() int { return pl.p }

// Depth returns the per-worker job-queue bound.
func (pl *Pipeline) Depth() int { return pl.depth }

// Submit enqueues a job on the pending queue and returns its handle.
// Submit blocks while the queue is full (depth jobs pending beyond
// those committed to workers) and panics after Close. With the default
// FIFO policy jobs complete in bounded, roughly-submission order; a
// QueuePolicy may reorder or shed them. Call Wait on the returned run
// to collect its metrics.
func (pl *Pipeline) Submit(job PipeJob) *PipeRun {
	if job.Graph == nil {
		panic("native: PipeJob.Graph must be set")
	}
	if job.Less == nil {
		job.Less = func(i, j int) bool { return i < j }
	}
	jb := &pipeJob{PipeJob: job}
	jb.root = xrand.New(job.Seed)
	if job.Traced {
		jb.phaseEnd = make([]atomic.Int64, pl.p*job.Graph.NumWorkerPhases())
	}
	jb.wg.Add(pl.p)
	jb.st = runState{
		mem:       job.Mem,
		kill:      make([]atomic.Bool, pl.p),
		ops:       make([]paddedCounter, pl.p),
		p:         pl.p,
		less:      job.Less,
		countOps:  pl.countOps,
		adversary: job.Adversary,
		stalls:    &jb.stalls,
	}

	pl.qmu.Lock()
	for len(pl.pending) >= pl.depth && !pl.closed {
		pl.qcond.Wait()
	}
	if pl.closed {
		pl.qmu.Unlock()
		panic("native: Pipeline.Submit after Close")
	}
	jb.seq = pl.seq
	pl.seq++
	jb.queuedNs = pl.now()
	if dl := job.QoS.Deadline; !dl.IsZero() {
		jb.deadlineNs = dl.Sub(pl.wall).Nanoseconds()
	}
	if ob := job.Observer; ob != nil {
		ob.RunStart(pl.p)
	}
	run := &PipeRun{pl: pl, jb: jb, start: time.Now()}
	pl.pending = append(pl.pending, jb)
	pl.qcond.Broadcast()
	pl.qmu.Unlock()
	return run
}

// view snapshots the job's scheduler-visible metadata.
func (jb *pipeJob) view() JobView {
	return JobView{
		Seq:        jb.seq,
		Class:      jb.QoS.Class,
		Priority:   jb.QoS.Priority,
		EstCost:    jb.QoS.EstCost,
		DeadlineNs: jb.deadlineNs,
		QueuedNs:   jb.queuedNs,
	}
}

// dispatch is the queue-draining goroutine: shed what the policy says
// cannot meet its deadline, pick the next job, assign its epoch, and
// send it to every worker. Being the only sender on the worker
// channels, it preserves the gate's FIFO-per-worker assumption no
// matter how the policy reorders the pending queue.
func (pl *Pipeline) dispatch() {
	var views []JobView
	var shed []*pipeJob
	for {
		pl.qmu.Lock()
		for len(pl.pending) == 0 && !pl.closed {
			pl.qcond.Wait()
		}
		if len(pl.pending) == 0 {
			pl.qmu.Unlock()
			break // closed and drained
		}
		now := pl.now()
		shed = shed[:0]
		if pl.policy != nil {
			// Shed pass first: a doomed job must never reach Pick, let
			// alone a crew slot. Aborted jobs are dispatched regardless —
			// workers skip them at pickup and release their WaitGroup.
			kept := pl.pending[:0]
			for _, jb := range pl.pending {
				if !jb.aborted.Load() && pl.policy.Shed(now, jb.view()) {
					shed = append(shed, jb)
				} else {
					kept = append(kept, jb)
				}
			}
			for i := len(kept); i < len(pl.pending); i++ {
				pl.pending[i] = nil
			}
			pl.pending = kept
		}
		var jb *pipeJob
		if n := len(pl.pending); n > 0 {
			pick := 0
			if pl.policy != nil {
				// Consulted even for a single pending job: Pick doubles as
				// the policy's dispatch notification (queue-wait accounting
				// rides on it), so skipping it would blind the observer
				// exactly when the queue is shallow.
				views = views[:0]
				for _, j := range pl.pending {
					views = append(views, j.view())
				}
				pick = pl.policy.Pick(now, views)
				if pick < 0 || pick >= n {
					pick = 0
				}
			}
			jb = pl.pending[pick]
			copy(pl.pending[pick:], pl.pending[pick+1:])
			pl.pending[n-1] = nil
			pl.pending = pl.pending[:n-1]
		}
		pl.qcond.Broadcast() // slots freed: wake blocked Submits
		pl.qmu.Unlock()

		for _, s := range shed {
			// The job never reached a worker: release its Wait directly.
			// shedded is written before the final Done, so Wait observes
			// it through the WaitGroup's happens-before edge.
			s.shedded = true
			s.wg.Add(-pl.p)
		}
		if jb == nil {
			continue
		}
		jb.epoch = pl.epochs
		pl.epochs++
		if jb.Traced {
			jb.dispatchNs = pl.now()
		}
		for pid := 0; pid < pl.p; pid++ {
			pl.jobs[pid] <- jb
		}
	}
	for _, ch := range pl.jobs {
		close(ch)
	}
	close(pl.dispDone)
}

// Run is Submit followed by Wait — the drop-in serial usage.
func (pl *Pipeline) Run(job PipeJob) (*model.Metrics, error) {
	return pl.Submit(job).Wait()
}

// Close releases the crew's workers after draining every queued job.
// Concurrent Submits must have returned; Waits on submitted jobs remain
// valid (the dispatcher dispatches all pending work — a QueuePolicy may
// still shed doomed jobs during the drain — and workers finish it
// before exiting). Idempotent.
func (pl *Pipeline) Close() {
	pl.qmu.Lock()
	if pl.closed {
		pl.qmu.Unlock()
		return
	}
	pl.closed = true
	pl.qcond.Broadcast()
	pl.qmu.Unlock()
	<-pl.dispDone
	pl.workers.Wait()
}

// worker is one resident goroutine: pick up each job in epoch order,
// publish pickup progress, wait for admission, run the graph through
// the shared incarnation loop with per-phase progress notifications.
func (pl *Pipeline) worker(pid int, ch <-chan *pipeJob) {
	defer pl.workers.Done()
	for jb := range ch {
		// Pickup publishes before the admission wait: even if this worker
		// then dies permanently inside the job, the next pickup's
		// publication unblocks later epochs' gates.
		pl.publish(pid, enc(jb.epoch, 0))
		pl.admit(jb.epoch)
		switch {
		case jb.Adversary == nil && jb.done.Load():
			// A peer already ran the whole graph to completion: every
			// phase's completion predicate held, the output is final, and
			// this worker's sweep would be all no-ops. Skip it, but still
			// publish phase-1 passage — trivially true of a finished job —
			// so the next epoch's gate sees this worker advance.
			pl.publish(pid, enc(jb.epoch, 1))
		case !jb.aborted.Load():
			epoch := jb.epoch
			graph := jb.Graph
			nphase := graph.NumWorkerPhases()
			completed := jb.runIncarnations(&jb.st, pid, func(p model.Proc) {
				graph.RunNotify(p, func(k int) {
					// The gate only reads enc(epoch, 1); later phase
					// completions would be dead publications.
					if k == 0 {
						pl.publish(pid, enc(epoch, 1))
					}
					if jb.phaseEnd != nil {
						jb.phaseEnd[pid*nphase+k].Store(pl.now())
					}
				})
			}, jb.Adversary, jb.Observer)
			if completed {
				jb.done.Store(true)
			}
		}
		jb.wg.Done()
	}
}

// publish raises worker pid's progress word to v (monotone max — a
// respawned incarnation re-notifies from phase 0) and wakes admission
// waiters, if any are blocked. Only worker pid writes prog[pid], so
// the max and the store need no lock; the mutex is taken solely to
// order the broadcast against a waiter parking on the condvar.
func (pl *Pipeline) publish(pid int, v int64) {
	if v <= pl.prog[pid].v.Load() {
		return
	}
	pl.prog[pid].v.Store(v)
	if pl.waiters.Load() > 0 {
		pl.progMu.Lock()
		if pl.allAtLeast(pl.minNeed) {
			// Waiters past this need proceed; any that remain blocked
			// re-register their needs before re-parking.
			pl.minNeed = maxInt64
			pl.cond.Broadcast()
		}
		pl.progMu.Unlock()
	}
}

const maxInt64 = 1<<63 - 1

// admit blocks until every worker has advanced past phase 1 of the
// previous epoch: prog[q] >= enc(epoch-1, 1) for all q. A worker's own
// pickup publication already satisfies this (enc(epoch, 0) > enc(epoch-1, 1)),
// so it only ever waits on its peers.
func (pl *Pipeline) admit(epoch int) {
	if epoch == 0 {
		return
	}
	need := enc(epoch-1, 1)
	if pl.allAtLeast(need) { // lock-free fast path: gate already open
		return
	}
	pl.progMu.Lock()
	pl.waiters.Add(1)
	// Recheck after raising the waiter flag: a publish that lands
	// between the check and the Wait either sees the flag (and queues a
	// broadcast behind our mutex hold) or happened before the flag was
	// raised, in which case this reread observes it.
	for !pl.allAtLeast(need) {
		if need < pl.minNeed {
			pl.minNeed = need
		}
		pl.cond.Wait()
	}
	pl.waiters.Add(-1)
	pl.progMu.Unlock()
}

func (pl *Pipeline) allAtLeast(need int64) bool {
	for i := range pl.prog {
		if pl.prog[i].v.Load() < need {
			return false
		}
	}
	return true
}

// Wait blocks until every worker has finished (or permanently died in)
// the job and returns its metrics, exactly as TeamRun.Wait does for the
// serial team.
func (r *PipeRun) Wait() (*model.Metrics, error) {
	r.jb.wg.Wait()
	r.Elapsed = time.Since(r.start)
	if r.jb.Traced && r.jb.endNs == 0 {
		r.jb.endNs = r.pl.now()
	}
	if ob := r.jb.Observer; ob != nil {
		ob.RunEnd()
	}
	if r.jb.shedded {
		// The queue policy dropped the job before dispatch: no worker
		// ran, no ops were executed, the metrics are structurally zero.
		return &model.Metrics{P: r.pl.p}, ErrDeadlineShed
	}
	met := &model.Metrics{
		P:              r.pl.p,
		Killed:         int(r.jb.killed.Load()),
		Respawns:       int(r.jb.respawns.Load()),
		InjectedStalls: r.jb.stalls.Load(),
	}
	if r.pl.countOps {
		for i := range r.jb.st.ops {
			met.Ops += atomic.LoadInt64(&r.jb.st.ops[i].n)
			met.CASes += atomic.LoadInt64(&r.jb.st.ops[i].cas)
			met.CASFailures += atomic.LoadInt64(&r.jb.st.ops[i].casFails)
		}
	}
	if ob := r.jb.Observer; ob != nil {
		ob.MergeInto(met)
	}
	r.jb.panicMu.Lock()
	defer r.jb.panicMu.Unlock()
	return met, r.jb.panicked
}

// Abort kills every worker of this job and suppresses revival, so Wait
// returns promptly with the sort abandoned. The job's kill flags are
// its own, so aborting one job never touches the jobs pipelined around
// it; a job aborted while still queued is skipped at pickup. The job's
// memory is left mid-flight garbage — the pooling layer resets contexts
// before reuse. Abort after Wait is a no-op.
func (r *PipeRun) Abort() {
	r.jb.aborted.Store(true)
	// Aborted must be visible before the kills land (see the respawn
	// race note in jobCore.runIncarnations).
	for pid := range r.jb.st.kill {
		r.jb.st.kill[pid].Store(true)
	}
}

// Aborted reports whether Abort was called on this run.
func (r *PipeRun) Aborted() bool { return r.jb.aborted.Load() }

// PhaseDur is one worker phase's crew-wide duration in a JobTiming.
type PhaseDur struct {
	Name  string
	DurNs int64
}

// JobTiming is a traced job's stage attribution, valid after Wait.
type JobTiming struct {
	// QueueWaitNs is submission → dispatch: time spent in the pending
	// queue behind earlier jobs and the scheduler's choices.
	QueueWaitNs int64
	// RunNs is dispatch → last worker done: the crew-execution wall.
	RunNs int64
	// Phases attributes RunNs across the graph's worker phases: each
	// entry's duration is the gap between successive crew-wide phase
	// completions (max across workers), so the entries sum to roughly
	// RunNs minus the final workers' unwind.
	Phases []PhaseDur
	// Shed marks a job dropped by the queue policy before dispatch;
	// only QueueWaitNs is meaningful.
	Shed bool
}

// Timing returns the job's stage attribution. Valid after Wait, on
// jobs submitted with Traced set; untraced jobs return a zero value.
func (r *PipeRun) Timing() JobTiming {
	jb := r.jb
	if !jb.Traced {
		return JobTiming{}
	}
	if jb.shedded {
		return JobTiming{QueueWaitNs: r.pl.now() - jb.queuedNs, Shed: true}
	}
	t := JobTiming{
		QueueWaitNs: jb.dispatchNs - jb.queuedNs,
		RunNs:       jb.endNs - jb.dispatchNs,
	}
	names := jb.Graph.WorkerPhaseNames()
	nphase := len(names)
	prev := jb.dispatchNs
	for k := 0; k < nphase; k++ {
		// Crew-wide completion of phase k: the latest worker's stamp.
		// Workers that skipped the job (done-skip) left their slots
		// zero; a phase nobody stamped reports zero duration.
		var end int64
		for pid := 0; pid < r.pl.p; pid++ {
			if v := jb.phaseEnd[pid*nphase+k].Load(); v > end {
				end = v
			}
		}
		dur := int64(0)
		if end > prev {
			dur = end - prev
			prev = end
		}
		t.Phases = append(t.Phases, PhaseDur{Name: names[k], DurNs: dur})
	}
	return t
}

// OpsPerProc returns, after Wait on a counting pipeline, the number of
// shared-memory operations each worker executed on this job, summed
// across incarnations — the per-processor quantity the chaos certifier
// checks against its wait-freedom op ceiling.
func (r *PipeRun) OpsPerProc() []int64 {
	out := make([]int64, r.pl.p)
	for i := range out {
		out[i] = atomic.LoadInt64(&r.jb.st.ops[i].n)
	}
	return out
}
