package native

import (
	"errors"
	"time"
)

// ErrDeadlineShed is returned by PipeRun.Wait for a job the pipeline's
// queue policy dropped before dispatch: its deadline provably could not
// be met, so it never consumed a crew slot and no worker executed a
// single operation on its behalf. The serving layer maps it to a 504
// issued from the queue, never from a worker.
var ErrDeadlineShed = errors.New("native: job shed from the queue (deadline unmeetable)")

// JobQoS is the quality-of-service envelope a submitter may attach to
// a PipeJob. The zero value means "no class, best priority tier, no
// deadline" — exactly the pre-QoS behavior.
type JobQoS struct {
	// Class names the traffic class for per-class accounting.
	Class string
	// Priority is the strict-priority tier: 0 is most urgent, larger
	// is later. Ordering between tiers is the queue policy's business.
	Priority int
	// EstCost is a service-cost estimate used for shortest-job-first
	// tie-breaks within a tier (the serving layer passes the sizeclass
	// capacity the sort will actually run at). 0 means unknown.
	EstCost int64
	// Deadline, when non-zero, is the instant after which completing
	// the job is worthless; the queue policy may shed the job once the
	// deadline provably cannot be met.
	Deadline time.Time
}

// JobView is the scheduler-visible snapshot of one queued job. All
// instants are nanoseconds on the pipeline's own monotonic clock
// (0 = pipeline creation), so policies are pure functions of integers
// and stay byte-for-byte deterministic under replay.
type JobView struct {
	// Seq is the job's submission ordinal, unique and increasing.
	Seq uint64
	// Class, Priority and EstCost copy the job's JobQoS.
	Class    string
	Priority int
	EstCost  int64
	// DeadlineNs is the job's deadline on the pipeline clock, 0 when
	// the job has none.
	DeadlineNs int64
	// QueuedNs is the instant the job entered the queue.
	QueuedNs int64
}

// QueuePolicy orders a Pipeline's pending job queue. The dispatcher
// consults it under the queue lock from a single goroutine, so
// implementations need no internal synchronization for the decision
// itself (counters they export may still be read concurrently).
//
// A nil policy is strict FIFO with no shedding — the pre-QoS pipeline.
type QueuePolicy interface {
	// Shed reports whether the queued job should be dropped unserved:
	// its Wait returns ErrDeadlineShed and no worker ever touches it.
	// Called for every pending job before each dispatch decision, so a
	// shed job is dropped before it can consume a crew slot.
	Shed(now int64, j JobView) bool
	// Pick returns the index into pending of the job to dispatch next.
	// pending is non-empty and in submission order. An out-of-range
	// return is treated as 0 (FIFO) rather than crashing the crew.
	Pick(now int64, pending []JobView) int
}
