package native

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wfsort/internal/model"
	"wfsort/internal/obs"
	"wfsort/internal/xrand"
)

// Team is a resident crew of P worker goroutines that executes
// successive programs without respawning its workers: the serving
// layer's counterpart to the single-use Runtime. Each job brings its
// own memory, ordering and (optionally) adversary/observer; between
// jobs the workers are parked on their job channels, so steady-state
// sorts pay no goroutine spawns and reuse the team's kill flags and
// counters.
//
// A Team runs one job at a time; Start panics if a job is already in
// flight (the pooling layer above serializes access to each team).
// Within a job the fault semantics match the Runtime exactly: a killed
// worker unwinds the program, may be revived by a Respawner adversary
// with its op ordinal carried across incarnations, and — because the
// goroutine itself survives the unwind — is back at full strength for
// the next job regardless of how the previous one treated it.
type Team struct {
	p        int
	countOps bool
	st       runState
	stalls   atomic.Int64
	jobs     []chan *teamJob
	workers  sync.WaitGroup

	mu     sync.Mutex
	cur    *teamJob
	closed bool
}

// TeamJob describes one program execution on a team.
type TeamJob struct {
	// Prog is the program every worker runs.
	Prog model.Program
	// Mem is the job's shared memory (the pooled context's arena).
	Mem []Word
	// Less is the input order consulted by Proc.Less; nil compares
	// element indices.
	Less func(i, j int) bool
	// Seed determines per-worker RNG streams for this job.
	Seed uint64
	// Adversary, when non-nil, is the per-job fault plane (see
	// Config.Adversary). If it also implements Respawner, killed
	// workers re-enter the program with fresh incarnations.
	Adversary model.Adversary
	// Observer, when non-nil, records this job (one Observer per job).
	Observer *obs.Observer
}

// teamJob is a TeamJob in flight.
type teamJob struct {
	TeamJob
	jobCore
}

// TeamRun is a job in flight, returned by Start.
type TeamRun struct {
	t  *Team
	jb *teamJob

	start time.Time
	// Elapsed is the job's wall-clock duration, valid after Wait.
	Elapsed time.Duration
}

// NewTeam starts a resident team of p worker goroutines. countOps
// enables per-worker operation counters on every job (small cost).
// Close releases the workers.
func NewTeam(p int, countOps bool) *Team {
	if p < 1 {
		panic("native: NewTeam needs p >= 1")
	}
	t := &Team{
		p:        p,
		countOps: countOps,
		jobs:     make([]chan *teamJob, p),
	}
	t.st = runState{
		kill:     make([]atomic.Bool, p),
		ops:      make([]paddedCounter, p),
		p:        p,
		countOps: countOps,
		stalls:   &t.stalls,
	}
	for pid := 0; pid < p; pid++ {
		ch := make(chan *teamJob, 1)
		t.jobs[pid] = ch
		t.workers.Add(1)
		go t.worker(pid, ch)
	}
	return t
}

// P returns the team's worker count.
func (t *Team) P() int { return t.p }

// Start launches a job on the team's workers and returns its handle.
// The caller must serialize jobs: Start panics if one is already in
// flight or the team is closed.
func (t *Team) Start(job TeamJob) *TeamRun {
	if job.Less == nil {
		job.Less = func(i, j int) bool { return i < j }
	}
	jb := &teamJob{TeamJob: job}
	jb.root = xrand.New(job.Seed)
	jb.wg.Add(t.p)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		panic("native: Team.Start after Close")
	}
	if t.cur != nil {
		t.mu.Unlock()
		panic("native: Team.Start while a job is in flight")
	}
	// Workers are all parked (no job in flight), so the per-job state
	// can be swapped with plain writes; the job-channel sends below
	// publish it.
	for pid := 0; pid < t.p; pid++ {
		t.st.kill[pid].Store(false)
		t.st.ops[pid] = paddedCounter{}
	}
	t.stalls.Store(0)
	t.st.mem = job.Mem
	t.st.less = job.Less
	t.st.adversary = job.Adversary
	t.cur = jb
	t.mu.Unlock()

	if ob := job.Observer; ob != nil {
		ob.RunStart(t.p)
	}
	run := &TeamRun{t: t, jb: jb, start: time.Now()}
	for pid := 0; pid < t.p; pid++ {
		t.jobs[pid] <- jb
	}
	return run
}

// Run is Start followed by Wait.
func (t *Team) Run(job TeamJob) (*model.Metrics, error) {
	return t.Start(job).Wait()
}

// Wait blocks until every worker has finished (or been killed without
// revival) and returns the job's metrics: kill/respawn/stall counts,
// op counts when the team counts ops, and the observer's per-phase
// breakdown when one was installed.
func (r *TeamRun) Wait() (*model.Metrics, error) {
	r.jb.wg.Wait()
	r.Elapsed = time.Since(r.start)
	if ob := r.jb.Observer; ob != nil {
		ob.RunEnd()
	}

	t := r.t
	t.mu.Lock()
	if t.cur == r.jb {
		t.cur = nil
	}
	t.mu.Unlock()

	met := &model.Metrics{
		P:              t.p,
		Killed:         int(r.jb.killed.Load()),
		Respawns:       int(r.jb.respawns.Load()),
		InjectedStalls: t.stalls.Load(),
	}
	if t.countOps {
		for i := range t.st.ops {
			met.Ops += atomic.LoadInt64(&t.st.ops[i].n)
			met.CASes += atomic.LoadInt64(&t.st.ops[i].cas)
			met.CASFailures += atomic.LoadInt64(&t.st.ops[i].casFails)
		}
	}
	if ob := r.jb.Observer; ob != nil {
		ob.MergeInto(met)
	}
	r.jb.panicMu.Lock()
	defer r.jb.panicMu.Unlock()
	return met, r.jb.panicked
}

// Abort kills every worker of the job and suppresses revival, so Wait
// returns promptly with the sort abandoned. Killing mid-sort is always
// safe — tolerating it is the algorithm's defining property — but the
// job's memory is left mid-flight garbage; the pooling layer resets
// contexts before reuse. Abort after Wait is a no-op.
func (r *TeamRun) Abort() {
	r.jb.aborted.Store(true)
	t := r.t
	t.mu.Lock()
	if t.cur == r.jb {
		for pid := 0; pid < t.p; pid++ {
			t.st.kill[pid].Store(true)
		}
	}
	t.mu.Unlock()
}

// Aborted reports whether Abort was called on this run.
func (r *TeamRun) Aborted() bool { return r.jb.aborted.Load() }

// Kill marks worker pid of the current job for termination, exactly as
// Runtime.Kill does mid-run.
func (t *Team) Kill(pid int) { t.st.kill[pid].Store(true) }

// Close releases the team's workers. The caller must not have a job in
// flight. Close is idempotent.
func (t *Team) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	if t.cur != nil {
		t.mu.Unlock()
		panic("native: Team.Close with a job in flight")
	}
	t.closed = true
	for _, ch := range t.jobs {
		close(ch)
	}
	t.mu.Unlock()
	t.workers.Wait()
}

// worker is one resident goroutine: park on the job channel, run each
// job to completion (including any revival loop), repeat.
func (t *Team) worker(pid int, ch <-chan *teamJob) {
	defer t.workers.Done()
	for jb := range ch {
		t.runJob(pid, jb)
		jb.wg.Done()
	}
}

// runJob executes one job on worker pid through the shared incarnation
// loop, against the team's (job-swapped) run state.
func (t *Team) runJob(pid int, jb *teamJob) {
	jb.runIncarnations(&t.st, pid, jb.Prog, jb.Adversary, jb.Observer)
}

// jobCore is the per-job fault and incarnation machinery shared by the
// serial Team and the pipelined crew (pipeline.go): the job's RNG root,
// completion group, abort latch, fault counters and first-panic record.
type jobCore struct {
	root     *xrand.Rand
	wg       sync.WaitGroup
	aborted  atomic.Bool
	killed   atomic.Int64
	respawns atomic.Int64

	panicMu  sync.Mutex
	panicked error
}

// runIncarnations executes prog for worker pid against st, re-entering
// the program after each landed kill the adversary revives, with the
// pid's op ordinal carried across incarnations. The worker's own
// goroutine manages its pid's deaths, so no lock is needed:
// incarnations of a pid are serialized by construction. It reports
// whether the worker ran the program to normal completion — false when
// it died without revival or panicked — which is the fact the
// pipelined crew uses to mark a job globally done.
func (jc *jobCore) runIncarnations(st *runState, pid int, prog model.Program, adversary model.Adversary, ob *obs.Observer) bool {
	var startOps int64
	deaths := 0
	for {
		pr := proc{
			st:  st,
			id:  pid,
			rng: jc.root.Fork(uint64(pid) | uint64(deaths)<<32),
			n:   startOps,
		}
		if ob != nil {
			pr.ob = ob.StartIncarnation(pid, startOps)
		}
		rec := runProg(&pr, prog)
		if pr.ob != nil {
			pr.ob.End(pr.n)
		}
		if rec == nil {
			return true
		}
		if _, wasKill := rec.(model.Killed); !wasKill {
			jc.panicMu.Lock()
			if jc.panicked == nil {
				jc.panicked = fmt.Errorf("native: processor %d panicked: %v", pid, rec)
			}
			jc.panicMu.Unlock()
			return false
		}
		jc.killed.Add(1)
		deaths++
		rs, ok := adversary.(Respawner)
		if !ok || !rs.Respawn(pid, deaths) {
			return false
		}
		st.kill[pid].Store(false)
		// An Abort between the kill landing and the flag clearing above
		// must still win: its aborted store precedes its kill stores, so
		// either our clear lost the race (the next op dies and the check
		// below ends the loop then) or we observe aborted here.
		if jc.aborted.Load() {
			return false
		}
		jc.respawns.Add(1)
		startOps = pr.n
	}
}

// runProg runs the program to completion and returns the recovered
// panic value, if any (model.Killed for a landed kill).
func runProg(pr *proc, prog model.Program) (rec any) {
	defer func() { rec = recover() }()
	prog(pr)
	return nil
}
