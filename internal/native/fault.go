package native

import (
	"sort"

	"wfsort/internal/model"
)

// Respawner is an optional model.Adversary extension for the native
// runtime. After a killed processor's goroutine has fully unwound, the
// runtime asks Respawn(pid, deaths) — deaths counts that processor's
// landed kills this run, starting at 1 — whether to start a fresh
// incarnation. A revived processor reruns the Program from the
// beginning (the wait-free algorithms are restartable: completed work
// is skipped through completion marks) with its op ordinal continuing
// where the dead incarnation stopped, so later strikes keep targeting
// cumulative per-processor op counts.
//
// Respawn is always called with the runtime's internal lock held and
// never concurrently; implementations must not call back into the
// Runtime.
type Respawner interface {
	Respawn(pid, deaths int) bool
}

// planEvent is one scheduled strike against a processor.
type planEvent struct {
	op     int64 // fire at the first op ordinal >= op
	action model.FaultAction
	stall  int
}

// pidPlan is one processor's event stream plus its cursor. The cursor
// is only ever advanced from that processor's own goroutine (the
// runtime serializes incarnations of a pid), so it needs no locking.
type pidPlan struct {
	events []planEvent
	next   int
}

// Plan is the deterministic fault-injection policy for one native run:
// kill or stall specific processors at exact per-processor operation
// ordinals, and optionally revive them once their death has landed. It
// implements model.Adversary and Respawner; pass it as Config.Adversary.
//
// Determinism: the native runtime has no global clock, so a Plan's
// strikes are anchored to each processor's own operation count — the
// quantity the paper's wait-freedom lemmas bound. Where each strike
// lands in a processor's execution is therefore exactly reproducible,
// even though the interleaving between processors remains whatever the
// Go scheduler does. The same model.Crash specs drive simulator crash
// schedules (pram.WithCrashes) and native plans (AddCrashes).
//
// Build the Plan completely before the run starts; it drives at most
// one run (per-processor cursors advance as events fire).
type Plan struct {
	procs   map[int]*pidPlan
	revives map[int]int
}

var (
	_ model.Adversary = (*Plan)(nil)
	_ Respawner       = (*Plan)(nil)
)

// NewPlan returns an empty plan (a no-op adversary).
func NewPlan() *Plan {
	return &Plan{procs: make(map[int]*pidPlan), revives: make(map[int]int)}
}

func (pl *Plan) add(pid int, ev planEvent) *Plan {
	pp := pl.procs[pid]
	if pp == nil {
		pp = &pidPlan{}
		pl.procs[pid] = pp
	}
	pp.events = append(pp.events, ev)
	sort.SliceStable(pp.events, func(i, j int) bool { return pp.events[i].op < pp.events[j].op })
	return pl
}

// KillAt schedules pid's fail-stop in place of its op-th shared-memory
// operation (ordinals count from 1; op <= 1 kills at the first
// operation). A pid killed and revived can be killed again at a later
// ordinal.
func (pl *Plan) KillAt(pid int, op int64) *Plan {
	return pl.add(pid, planEvent{op: op, action: model.FaultKill})
}

// StallAt schedules a stall of `yields` scheduler yields immediately
// before pid's op-th operation.
func (pl *Plan) StallAt(pid int, op int64, yields int) *Plan {
	return pl.add(pid, planEvent{op: op, action: model.FaultStall, stall: yields})
}

// BlockAt schedules a permanent stall in place of pid's op-th
// operation: the processor stops advancing but stays live until killed
// (Runtime.Kill), the limit case of the fail/delay adversary. The other
// workers must finish the sort without it — and the obs watchdog must
// flag it — but note Run itself only returns once the blocked
// processor is killed.
func (pl *Plan) BlockAt(pid int, op int64) *Plan {
	return pl.add(pid, planEvent{op: op, action: model.FaultBlock})
}

// Revive allows pid to be respawned up to times times: each time one of
// its kills lands, the runtime starts a fresh incarnation.
func (pl *Plan) Revive(pid, times int) *Plan {
	pl.revives[pid] = times
	return pl
}

// AddCrashes maps simulator crash specs onto the plan: each Crash kills
// its processor at the first op ordinal >= Crash.Step (the native
// reading of the shared spec vocabulary — see model.Crash).
func (pl *Plan) AddCrashes(crashes []model.Crash) *Plan {
	for _, c := range crashes {
		pl.KillAt(c.PID, c.Step)
	}
	return pl
}

// PlanCrashes builds a plan from simulator crash specs alone.
func PlanCrashes(crashes []model.Crash) *Plan {
	return NewPlan().AddCrashes(crashes)
}

// Strike implements model.Adversary. At most one event fires per
// operation; events whose ordinal has passed fire at the next
// opportunity (matching pram.WithCrashes' "first step >= Step"
// semantics).
func (pl *Plan) Strike(pid int, op int64) model.Fault {
	pp := pl.procs[pid]
	if pp == nil || pp.next >= len(pp.events) {
		return model.Fault{}
	}
	ev := pp.events[pp.next]
	if ev.op > op {
		return model.Fault{}
	}
	pp.next++
	switch ev.action {
	case model.FaultKill:
		return model.Fault{Action: model.FaultKill}
	case model.FaultStall:
		return model.Fault{Action: model.FaultStall, StallOps: ev.stall}
	case model.FaultBlock:
		return model.Fault{Action: model.FaultBlock}
	}
	return model.Fault{}
}

// Respawn implements Respawner: a pid is revived while its landed-death
// count stays within its Revive allowance.
func (pl *Plan) Respawn(pid, deaths int) bool {
	return deaths <= pl.revives[pid]
}
