package native

import (
	"errors"
	"sync"
	"testing"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/model"
)

// pipeSortJob lays out a fresh sorter for keys and returns the job and
// the sorter (for reading places back).
func pipeSortJob(keys []int, seed uint64) (PipeJob, *core.Sorter, []Word) {
	var a model.Arena
	s := core.NewSorter(&a, len(keys), core.AllocRandomized)
	mem := make([]Word, a.Size())
	s.Seed(mem)
	less := func(i, j int) bool {
		ki, kj := keys[i-1], keys[j-1]
		if ki != kj {
			return ki < kj
		}
		return i < j
	}
	return PipeJob{Graph: s.Graph(), Mem: mem, Less: less, Seed: seed}, s, mem
}

// TestPipelineOverlap submits a stream of jobs without waiting between
// them — the whole point of the pipeline — and verifies every sort.
func TestPipelineOverlap(t *testing.T) {
	pl := NewPipeline(4, 2, true)
	defer pl.Close()

	const jobs = 8
	type inflight struct {
		run  *PipeRun
		s    *core.Sorter
		mem  []Word
		keys []int
	}
	var flights []inflight
	for j := 0; j < jobs; j++ {
		n := 48 + j*61
		keys := make([]int, n)
		for i := range keys {
			keys[i] = (i*2654435761 + j*97) % 509
		}
		job, s, mem := pipeSortJob(keys, uint64(j))
		flights = append(flights, inflight{run: pl.Submit(job), s: s, mem: mem, keys: keys})
	}
	for j, f := range flights {
		met, err := f.run.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
		if met.Ops == 0 {
			t.Fatalf("job %d: no ops counted", j)
		}
		checkRanks(t, f.keys, f.s, f.mem)
	}
	// Graph-level certification: every job's memory must satisfy all
	// phase completion predicates.
	for j, f := range flights {
		if name := f.s.Graph().FirstUndone(f.mem); name != "" {
			t.Fatalf("job %d: phase %q not complete", j, name)
		}
	}
}

// TestPipelineFaults overlaps jobs while one of them is driven by a
// kill/revive plan; the faulted job must complete with deaths and
// respawns accounted, and its neighbours must be untouched.
func TestPipelineFaults(t *testing.T) {
	pl := NewPipeline(4, 2, true)
	defer pl.Close()

	keysA := make([]int, 350)
	for i := range keysA {
		keysA[i] = (i * 7919) % 223
	}
	keysB := make([]int, 280)
	for i := range keysB {
		keysB[i] = (i * 131) % 97
	}

	plan := NewPlan()
	for pid := 1; pid < 4; pid++ {
		plan.KillAt(pid, int64(3*pid)).Revive(pid, 1)
	}
	jobA, sA, memA := pipeSortJob(keysA, 11)
	jobA.Adversary = plan
	jobB, sB, memB := pipeSortJob(keysB, 12)

	runA := pl.Submit(jobA)
	runB := pl.Submit(jobB)
	metA, err := runA.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if metA.Killed != 3 || metA.Respawns != 3 {
		t.Fatalf("killed=%d respawns=%d, want 3 and 3", metA.Killed, metA.Respawns)
	}
	metB, err := runB.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if metB.Killed != 0 || metB.Respawns != 0 {
		t.Fatalf("faultless neighbour saw killed=%d respawns=%d", metB.Killed, metB.Respawns)
	}
	checkRanks(t, keysA, sA, memA)
	checkRanks(t, keysB, sB, memB)
}

// TestPipelineCrashHalfNoRevive kills half the crew permanently inside
// one job of a pipelined stream: survivors must finish that job, and —
// because only the graph unwound, not the goroutines — the following
// jobs run at full strength and the admission gate never deadlocks on
// the dead workers.
func TestPipelineCrashHalfNoRevive(t *testing.T) {
	pl := NewPipeline(6, 2, true)
	defer pl.Close()

	mk := func(n, stride, mod int) []int {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = (i * stride) % mod
		}
		return keys
	}
	keys := [][]int{mk(300, 31, 59), mk(260, 17, 83), mk(340, 13, 71)}

	plan := NewPlan()
	for pid := 3; pid < 6; pid++ {
		plan.KillAt(pid, int64(2+pid))
	}
	var runs []*PipeRun
	var sorters []*core.Sorter
	var mems [][]Word
	for j, k := range keys {
		job, s, mem := pipeSortJob(k, uint64(20+j))
		if j == 0 {
			job.Adversary = plan
		}
		runs = append(runs, pl.Submit(job))
		sorters = append(sorters, s)
		mems = append(mems, mem)
	}
	for j, run := range runs {
		met, err := run.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
		if j == 0 && met.Killed != 3 {
			t.Fatalf("job 0: killed=%d, want 3", met.Killed)
		}
		if j > 0 && met.Killed != 0 {
			t.Fatalf("job %d: killed=%d, want 0", j, met.Killed)
		}
		checkRanks(t, keys[j], sorters[j], mems[j])
	}
}

// TestPipelineAbort aborts one job of a stream; its Wait must return
// promptly with Aborted set and the surrounding jobs must come out
// sorted.
func TestPipelineAbort(t *testing.T) {
	pl := NewPipeline(4, 2, true)
	defer pl.Close()

	mk := func(n int) []int {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = (i * 2654435761) % 1009
		}
		return keys
	}
	keysA, keysB, keysC := mk(400), mk(4096), mk(380)

	jobA, sA, memA := pipeSortJob(keysA, 31)
	jobB, _, _ := pipeSortJob(keysB, 32)
	jobC, sC, memC := pipeSortJob(keysC, 33)

	runA := pl.Submit(jobA)
	runB := pl.Submit(jobB)
	runC := pl.Submit(jobC)
	runB.Abort()
	if _, err := runB.Wait(); err != nil {
		t.Fatal(err)
	}
	if !runB.Aborted() {
		t.Fatal("runB.Aborted() = false after Abort")
	}
	if _, err := runA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := runC.Wait(); err != nil {
		t.Fatal(err)
	}
	checkRanks(t, keysA, sA, memA)
	checkRanks(t, keysC, sC, memC)
}

// TestPipelineNotifyMonotonePerIncarnation is the phase-epoch property
// test: under deterministic kill/respawn schedules, the sequence of
// phase-completion indices a worker notifies is, within each
// incarnation, strictly increasing from 0 — a killed worker's next
// incarnation re-enters the graph from the top. The recorded stream per
// worker must therefore parse as at most 1+respawns(pid) strictly
// increasing runs, each starting at 0, and the never-killed worker's
// final run must reach the last phase.
func TestPipelineNotifyMonotonePerIncarnation(t *testing.T) {
	for _, tc := range []struct {
		seed  uint64
		kills map[int]int64 // pid -> kill ordinal (revived once)
	}{
		{seed: 1, kills: map[int]int64{1: 5, 2: 900, 3: 40}},
		{seed: 2, kills: map[int]int64{1: 2, 3: 3000}},
		{seed: 3, kills: map[int]int64{2: 77, 3: 78, 1: 400}},
	} {
		keys := make([]int, 500)
		for i := range keys {
			keys[i] = (i*48271 + int(tc.seed)) % 337
		}
		var a model.Arena
		s := core.NewSorter(&a, len(keys), core.AllocRandomized)
		less := func(i, j int) bool {
			ki, kj := keys[i-1], keys[j-1]
			if ki != kj {
				return ki < kj
			}
			return i < j
		}
		plan := NewPlan()
		for pid, op := range tc.kills {
			plan.KillAt(pid, op).Revive(pid, 1)
		}
		var mu sync.Mutex
		notified := make([][]int, 4)
		rt := New(Config{P: 4, Mem: a.Size(), Seed: tc.seed, Less: less, Adversary: plan})
		s.Seed(rt.Memory())
		met, err := rt.Run(func(p model.Proc) {
			pid := p.ID()
			s.Graph().RunNotify(p, func(k int) {
				mu.Lock()
				notified[pid] = append(notified[pid], k)
				mu.Unlock()
			})
		})
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		last := s.Graph().NumWorkerPhases() - 1
		for pid := 0; pid < 4; pid++ {
			runs := 0
			prev := -1
			for _, k := range notified[pid] {
				if k == 0 && prev != -1 {
					runs++
					prev = 0
					continue
				}
				if k != prev+1 {
					t.Fatalf("seed %d pid %d: notify sequence %v not strictly increasing runs from 0",
						tc.seed, pid, notified[pid])
				}
				prev = k
			}
			if len(notified[pid]) > 0 {
				runs++
			}
			maxRuns := 1
			if _, killed := tc.kills[pid]; killed {
				maxRuns = 2 // one revival per kill in these schedules
			}
			if runs > maxRuns {
				t.Fatalf("seed %d pid %d: %d incarnation runs (max %d): %v",
					tc.seed, pid, runs, maxRuns, notified[pid])
			}
		}
		// pid 0 is never struck: it must have walked the whole graph.
		n0 := notified[0]
		if len(n0) == 0 || n0[len(n0)-1] != last {
			t.Fatalf("seed %d: unkilled pid 0 ended at %v, want final phase %d", tc.seed, n0, last)
		}
		if met.Respawns == 0 {
			t.Fatalf("seed %d: expected respawns", tc.seed)
		}
	}
}

// TestPipelinePanics pins the constructor and submission guard rails.
func TestPipelinePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("p<1", func() { NewPipeline(0, 1, false) })
	pl := NewPipeline(2, 1, false)
	expectPanic("nil graph", func() { pl.Submit(PipeJob{Mem: make([]Word, 8)}) })
	pl.Close()
	pl.Close() // idempotent
	expectPanic("submit after close", func() {
		job, _, _ := pipeSortJob([]int{3, 1, 2}, 1)
		pl.Submit(job)
	})
}

// testPolicy is a minimal QueuePolicy for seam tests: lowest Priority
// tier first (Seq tie-break), shedding any job whose deadline already
// passed.
type testPolicy struct{}

func (testPolicy) Shed(now int64, j JobView) bool {
	return j.DeadlineNs != 0 && j.DeadlineNs <= now
}

func (testPolicy) Pick(now int64, pending []JobView) int {
	best := 0
	for i, j := range pending {
		b := pending[best]
		if j.Priority < b.Priority || (j.Priority == b.Priority && j.Seq < b.Seq) {
			best = i
		}
	}
	return best
}

// TestPipelinePolicyReorders proves the policy reorders the pending
// queue. A blocker job parks the single worker inside its comparator,
// bounding the committed window at exactly four jobs (one running, two
// in the worker channel, one in the dispatcher's hand) no matter how
// the goroutines interleave. Five low-priority jobs and one
// high-priority job are then queued; when the blocker releases, at
// least two low-priority jobs are still pending alongside the
// high-priority one, so the policy must dispatch — and with P=1,
// complete — the high-priority job before them: "hi" cannot be last.
func TestPipelinePolicyReorders(t *testing.T) {
	pl := NewPipelinePolicy(1, 16, false, testPolicy{})
	defer pl.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	blocker, _, _ := pipeSortJob(mkN(96), 7)
	innerLess := blocker.Less
	blocker.Less = func(i, j int) bool {
		once.Do(func() { close(started) })
		<-release
		return innerLess(i, j)
	}

	const slow = 5
	jobs := make([]PipeJob, 0, slow+1)
	for j := 0; j < slow; j++ {
		job, _, _ := pipeSortJob(mkN(300), uint64(j))
		job.QoS = JobQoS{Class: "lo", Priority: 5}
		jobs = append(jobs, job)
	}
	hiJob, s, mem := pipeSortJob(mkN(120), 99)
	hiJob.QoS = JobQoS{Class: "hi", Priority: 0}
	jobs = append(jobs, hiJob)

	blockRun := pl.Submit(blocker)
	<-started // the worker is parked inside the blocker's comparator
	runs := make([]*PipeRun, 0, len(jobs))
	for _, job := range jobs {
		runs = append(runs, pl.Submit(job))
	}
	close(release)
	if _, err := blockRun.Wait(); err != nil {
		t.Fatalf("blocker: %v", err)
	}
	// Dispatch order is the epoch order (assigned by the dispatcher, not
	// perturbed by Wait-wakeup scheduling): the high-priority job must
	// have been dispatched before at least one low-priority job.
	hiEpoch, maxLoEpoch := -1, -1
	for i, run := range runs {
		if _, err := run.Wait(); err != nil {
			t.Fatalf("%s: %v", jobs[i].QoS.Class, err)
		}
		if jobs[i].QoS.Class == "hi" {
			hiEpoch = run.jb.epoch
		} else if run.jb.epoch > maxLoEpoch {
			maxLoEpoch = run.jb.epoch
		}
	}
	if hiEpoch < 0 || maxLoEpoch < 0 {
		t.Fatalf("missing epochs: hi=%d maxLo=%d", hiEpoch, maxLoEpoch)
	}
	if hiEpoch > maxLoEpoch {
		t.Fatalf("high-priority job dispatched last (epoch %d) despite pending low-priority jobs (max epoch %d)",
			hiEpoch, maxLoEpoch)
	}
	checkRanks(t, mkN(120), s, mem)
}

func mkN(n int) []int {
	keys := make([]int, n)
	for i := range keys {
		keys[i] = (i * 48271) % 7919
	}
	return keys
}

// TestPipelineShedNeverTouchesCrew queues a job with an already-expired
// deadline behind a running job: its Wait must return ErrDeadlineShed,
// its op counters must be exactly zero (no worker ever picked it up),
// and the jobs around it must complete sorted.
func TestPipelineShedNeverTouchesCrew(t *testing.T) {
	pl := NewPipelinePolicy(2, 8, true, testPolicy{})
	defer pl.Close()

	keysA := mkN(4000)
	jobA, sA, memA := pipeSortJob(keysA, 41)
	runA := pl.Submit(jobA)

	doomed, _, _ := pipeSortJob(mkN(300), 42)
	doomed.QoS = JobQoS{Class: "doomed", Deadline: time.Now().Add(-time.Second)}
	runDoomed := pl.Submit(doomed)

	keysC := mkN(350)
	jobC, sC, memC := pipeSortJob(keysC, 43)
	runC := pl.Submit(jobC)

	met, err := runDoomed.Wait()
	if !errors.Is(err, ErrDeadlineShed) {
		t.Fatalf("doomed job: err = %v, want ErrDeadlineShed", err)
	}
	if met.Ops != 0 || met.Killed != 0 || met.Respawns != 0 {
		t.Fatalf("shed job has non-zero metrics: %+v", met)
	}
	for pid, ops := range runDoomed.OpsPerProc() {
		if ops != 0 {
			t.Fatalf("shed job executed %d ops on worker %d", ops, pid)
		}
	}
	if _, err := runA.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := runC.Wait(); err != nil {
		t.Fatal(err)
	}
	checkRanks(t, keysA, sA, memA)
	checkRanks(t, keysC, sC, memC)
}

// TestPipelineMeetableDeadlineNotShed submits jobs whose deadlines are
// comfortably in the future: none may be shed, all must sort.
func TestPipelineMeetableDeadlineNotShed(t *testing.T) {
	pl := NewPipelinePolicy(2, 8, false, testPolicy{})
	defer pl.Close()
	for j := 0; j < 6; j++ {
		keys := mkN(200 + j*37)
		job, s, mem := pipeSortJob(keys, uint64(50+j))
		job.QoS = JobQoS{Deadline: time.Now().Add(time.Minute)}
		if _, err := pl.Submit(job).Wait(); err != nil {
			t.Fatalf("job %d: %v", j, err)
		}
		checkRanks(t, keys, s, mem)
	}
}
