// Package native runs model.Programs on real goroutines with
// sync/atomic shared memory — the "operating systems" realization the
// paper's introduction motivates: sorting threads can be reaped at any
// moment (kill flags) and the wait-free algorithms still complete on the
// surviving goroutines.
//
// Unlike internal/pram there is no global clock: Read/Write/CAS map
// directly onto atomic loads, stores and compare-and-swaps, so a run is
// as fast as the hardware allows and scheduling is whatever the Go
// runtime does. Step counts and exact contention are simulator-only;
// native metrics carry operation counts, CAS-failure counts and wall
// time, and — with an internal/obs Observer installed — per-phase op
// and wall-clock latency breakdowns recorded through wait-free
// per-incarnation event rings.
package native

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"wfsort/internal/model"
	"wfsort/internal/obs"
	"wfsort/internal/xrand"
)

// Word aliases the shared-memory word type.
type Word = model.Word

// Config describes a native run.
type Config struct {
	// P is the number of worker goroutines (>= 1).
	P int
	// Mem is the shared-memory size in words.
	Mem int
	// Seed determines per-processor RNG streams.
	Seed uint64
	// Less is the input order consulted by Proc.Less; nil compares
	// element indices.
	Less func(i, j int) bool
	// CountOps enables per-processor operation counters (small cost).
	CountOps bool
	// Adversary, when non-nil, is the fault-injection plane: it is
	// consulted before every shared-memory operation with the
	// processor's cumulative op ordinal and may kill or stall it at
	// exact points in its execution (see model.Adversary and Plan). If
	// the adversary also implements Respawner, killed processors may be
	// revived with fresh incarnations once their death has landed.
	Adversary model.Adversary
	// Observer, when non-nil, is the observability plane: each
	// incarnation records phase transitions, CAS failures, faults and
	// periodic op-ordinal snapshots into its own wait-free event ring
	// (see internal/obs), and per-phase latency histograms are merged
	// into the run's Metrics. When nil — the default — the hot path
	// pays a single pointer nil-check per operation (gated by
	// cmd/benchgate). An Observer drives at most one run.
	Observer *obs.Observer
}

// runState is the execution state proc methods touch on every
// shared-memory operation. It is factored out of Runtime so the two
// drivers — the single-use Runtime below and the resident Team in
// team.go — share one proc implementation: the Team swaps the
// per-job fields (mem, less, adversary) between jobs while all its
// workers are quiescent, then reuses the same kill flags and counters.
type runState struct {
	mem       []Word
	kill      []atomic.Bool
	ops       []paddedCounter
	p         int
	less      func(i, j int) bool
	countOps  bool
	adversary model.Adversary
	stalls    *atomic.Int64
}

// Runtime executes one Program on P goroutines. Create with New; a
// Runtime is single-use.
type Runtime struct {
	cfg   Config
	st    runState
	ran   bool
	start time.Time

	mu      sync.Mutex
	live    int
	prog    model.Program
	wg      sync.WaitGroup
	root    *xrand.Rand
	respawn int
	deaths  []int   // kills landed per pid (mu)
	opsAt   []int64 // op ordinal each pid's last incarnation died at (mu)
	stalls  atomic.Int64
	onPanic func(pid int, rec any)

	// Elapsed is the wall-clock duration of Run, valid after Run.
	Elapsed time.Duration
}

// paddedCounter avoids false sharing between per-processor counters.
type paddedCounter struct {
	n        int64
	cas      int64
	casFails int64
	_        [5]int64
}

// New builds a runtime.
func New(cfg Config) *Runtime {
	if cfg.P < 1 {
		panic("native: Config.P must be >= 1")
	}
	if cfg.Less == nil {
		cfg.Less = func(i, j int) bool { return i < j }
	}
	r := &Runtime{
		cfg:    cfg,
		deaths: make([]int, cfg.P),
		opsAt:  make([]int64, cfg.P),
	}
	r.st = runState{
		mem:       make([]Word, cfg.Mem),
		kill:      make([]atomic.Bool, cfg.P),
		ops:       make([]paddedCounter, cfg.P),
		p:         cfg.P,
		less:      cfg.Less,
		countOps:  cfg.CountOps,
		adversary: cfg.Adversary,
		stalls:    &r.stalls,
	}
	return r
}

// Memory returns the shared memory. Reading it is only safe before Run
// starts and after Run returns.
func (r *Runtime) Memory() []Word { return r.st.mem }

// Kill marks processor pid for termination: its next shared-memory
// operation unwinds the Program. Safe to call concurrently with Run —
// that is its purpose (reaping a sorting thread mid-run, §1 of the
// paper).
func (r *Runtime) Kill(pid int) { r.st.kill[pid].Store(true) }

// Run executes prog on P goroutines and blocks until all have returned
// or been killed. The returned metrics carry op counts (if enabled),
// kill counts and wall time.
func (r *Runtime) Run(prog model.Program) (*model.Metrics, error) {
	if r.ran {
		return nil, errors.New("native: Runtime.Run called twice")
	}
	r.ran = true
	r.prog = prog
	r.root = xrand.New(r.cfg.Seed)

	var (
		panicMu  sync.Mutex
		panicked error
		killed   atomic.Int64
	)
	r.onPanic = func(pid int, rec any) {
		if _, ok := rec.(model.Killed); ok {
			killed.Add(1)
			return
		}
		panicMu.Lock()
		if panicked == nil {
			panicked = fmt.Errorf("native: processor %d panicked: %v", pid, rec)
		}
		panicMu.Unlock()
	}
	if ob := r.cfg.Observer; ob != nil {
		ob.RunStart(r.cfg.P)
	}
	r.start = time.Now()
	r.mu.Lock()
	for pid := 0; pid < r.cfg.P; pid++ {
		r.spawnLocked(pid, 0)
	}
	r.mu.Unlock()
	r.wg.Wait()
	r.Elapsed = time.Since(r.start)
	if ob := r.cfg.Observer; ob != nil {
		ob.RunEnd()
	}

	met := &model.Metrics{
		P:              r.cfg.P,
		Killed:         int(killed.Load()),
		Respawns:       r.respawn,
		InjectedStalls: r.stalls.Load(),
	}
	if r.cfg.CountOps {
		for i := range r.st.ops {
			met.Ops += atomic.LoadInt64(&r.st.ops[i].n)
			met.CASes += atomic.LoadInt64(&r.st.ops[i].cas)
			met.CASFailures += atomic.LoadInt64(&r.st.ops[i].casFails)
		}
	}
	if ob := r.cfg.Observer; ob != nil {
		ob.MergeInto(met)
	}
	panicMu.Lock()
	defer panicMu.Unlock()
	return met, panicked
}

// spawnLocked starts a goroutine for pid; r.mu must be held. startOps
// is the op ordinal the incarnation resumes counting from — 0 for the
// initial fleet, the predecessor's death ordinal for respawns, so
// adversary strikes target cumulative per-processor op counts.
func (r *Runtime) spawnLocked(pid int, startOps int64) {
	r.live++
	r.wg.Add(1)
	rng := r.root.Fork(uint64(pid) | uint64(r.respawn)<<32)
	pr := &proc{st: &r.st, id: pid, rng: rng, n: startOps}
	if ob := r.cfg.Observer; ob != nil {
		pr.ob = ob.StartIncarnation(pid, startOps)
	}
	go func() {
		defer func() {
			rec := recover()
			if pr.ob != nil {
				pr.ob.End(pr.n)
			}
			r.mu.Lock()
			r.live--
			r.opsAt[pid] = pr.n
			if _, wasKill := rec.(model.Killed); wasKill {
				r.deaths[pid]++
				if rs, ok := r.cfg.Adversary.(Respawner); ok && rs.Respawn(pid, r.deaths[pid]) {
					r.st.kill[pid].Store(false)
					r.respawn++
					r.spawnLocked(pid, pr.n)
				}
			}
			r.mu.Unlock()
			if rec != nil {
				r.onPanic(pid, rec)
			}
			r.wg.Done()
		}()
		r.prog(pr)
	}()
}

// Respawn restarts a previously killed processor id with a fresh
// goroutine running the program from the beginning — the paper's §1
// scenario of spawning a new sorting thread when a processor frees up.
// The wait-free algorithms in this repository are restartable: work
// already completed is skipped through completion marks, so a
// restarted processor simply helps finish what remains.
//
// Respawn is only valid while Run is in flight with at least one live
// worker; it returns an error once the run has completed (there is
// nothing left to help with).
func (r *Runtime) Respawn(pid int) error {
	if pid < 0 || pid >= r.cfg.P {
		return fmt.Errorf("native: respawn pid %d out of range [0,%d)", pid, r.cfg.P)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.ran || r.live == 0 {
		return errors.New("native: respawn needs a run in flight with live workers")
	}
	r.st.kill[pid].Store(false)
	r.respawn++
	r.spawnLocked(pid, r.opsAt[pid])
	return nil
}

// OpsPerProc returns, after a Run with CountOps enabled, the number of
// shared-memory operations each processor executed, summed across
// incarnations — the per-processor quantity the paper's wait-freedom
// lemmas bound, and what the chaos certifier checks against its op
// ceiling.
func (r *Runtime) OpsPerProc() []int64 {
	out := make([]int64, r.cfg.P)
	for i := range out {
		out[i] = atomic.LoadInt64(&r.st.ops[i].n)
	}
	return out
}

// proc implements model.Proc over atomic operations. It is backed by a
// runState, which either a single-use Runtime or a resident Team owns.
type proc struct {
	st  *runState
	id  int
	rng *xrand.Rand
	n   int64        // cumulative op ordinal, the adversary's per-processor clock
	ob  *obs.ProcObs // this incarnation's event recorder; nil when unobserved
}

var _ model.Proc = (*proc)(nil)

func (p *proc) ID() int       { return p.id }
func (p *proc) NumProcs() int { return p.st.p }

func (p *proc) pre() {
	if p.st.kill[p.id].Load() {
		p.die()
	}
	p.n++
	if ad := p.st.adversary; ad != nil {
		f := ad.Strike(p.id, p.n)
		switch f.Action {
		case model.FaultKill:
			// Die in place of this operation, exactly as a simulator
			// crash replaces the victim's pending op.
			p.die()
		case model.FaultStall:
			p.st.stalls.Add(1)
			if p.ob != nil {
				p.ob.Stall(p.n, f.StallOps)
			}
			for i := 0; i < f.StallOps; i++ {
				runtime.Gosched()
			}
		case model.FaultBlock:
			// The limit case of a stall: stop advancing but stay live
			// until killed — the fault the obs watchdog exists to
			// catch. Poll the kill flag (never spin-starve a core).
			p.st.stalls.Add(1)
			if p.ob != nil {
				p.ob.Stall(p.n, -1)
			}
			for !p.st.kill[p.id].Load() {
				time.Sleep(200 * time.Microsecond)
			}
			p.die()
		}
	}
	if p.st.countOps {
		atomic.AddInt64(&p.st.ops[p.id].n, 1)
	}
	if p.ob != nil {
		p.ob.Op(p.n)
	}
}

// die records the death (when observed) and unwinds the Program.
func (p *proc) die() {
	if p.ob != nil {
		p.ob.Kill(p.n)
	}
	panic(model.Killed{PID: p.id})
}

func (p *proc) Read(a int) Word {
	p.pre()
	return atomic.LoadInt64(&p.st.mem[a])
}

func (p *proc) Write(a int, v Word) {
	p.pre()
	atomic.StoreInt64(&p.st.mem[a], v)
}

func (p *proc) CAS(a int, old, new Word) bool {
	p.pre()
	ok := atomic.CompareAndSwapInt64(&p.st.mem[a], old, new)
	if p.st.countOps {
		atomic.AddInt64(&p.st.ops[p.id].cas, 1)
		if !ok {
			atomic.AddInt64(&p.st.ops[p.id].casFails, 1)
		}
	}
	if !ok && p.ob != nil {
		p.ob.CASFail(p.n, a)
	}
	return ok
}

func (p *proc) Idle() {
	p.pre()
}

func (p *proc) Less(i, j int) bool {
	if i == j {
		return false
	}
	return p.st.less(i, j)
}

func (p *proc) Rand() *model.Rng { return p.rng }

func (p *proc) Phase(name string) {
	if p.ob != nil {
		p.ob.Phase(name, p.n)
	}
}
