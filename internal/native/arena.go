package native

import (
	"strings"

	"wfsort/internal/model"
)

// Layout selects how a native Arena places logical words in physical
// memory. The simulator never uses these: internal/pram always runs on
// the dense model.Arena, so simulated step counts and contention are
// layout-independent by construction.
type Layout int

const (
	// Flat reproduces the simulator's dense layout word for word — the
	// seed behavior, kept as the benchmark-gate baseline.
	Flat Layout = iota
	// Padded aligns every named structure to a cache-line boundary and
	// gives contention hot spots (work-assignment-tree tops, tree roots,
	// counter shards) a padded prefix so each hot word owns its line.
	// False sharing between a WAT root and its neighbours — or between
	// two counter shards — disappears; dense bulk arrays stay dense so
	// the cache footprint grows by only O(hot words).
	Padded
)

// String returns the layout's mnemonic.
func (l Layout) String() string {
	switch l {
	case Flat:
		return "flat"
	case Padded:
		return "padded"
	default:
		return "layout(?)"
	}
}

// hotPrefix decides how many leading words of a named region deserve
// their own cache line under the Padded layout. The rules are driven by
// the region-naming conventions already used for contention profiling:
//
//   - "ctr." regions are sharded counters: every shard is written by a
//     different worker, so every slot is padded.
//   - work-assignment trees ("wat.", "lcwat", "glue", "shuffle") and the
//     winner-selection tree are 1-indexed heaps whose top levels carry
//     the Θ(P) root traffic the paper's §3 is about; the top 64 nodes
//     (six levels) get their own lines.
//   - element tables ("key", "size", "place", "child.*", …) are indexed
//     by element id with id 1 the pivot-tree root, by far the hottest
//     element; slots 0 (unused) and 1 are padded, the bulk stays dense
//     because which other elements become hot is input-dependent.
func hotPrefix(name string, n int) int {
	hot := 0
	switch {
	case strings.Contains(name, "ctr."):
		hot = n
	case strings.Contains(name, "wat"),
		strings.HasSuffix(name, "glue"),
		strings.HasSuffix(name, "shuffle"),
		strings.HasSuffix(name, "winner"),
		strings.HasSuffix(name, "fat"):
		hot = 64
	case strings.Contains(name, "key"),
		strings.Contains(name, "size"),
		strings.Contains(name, "place"),
		strings.Contains(name, "child."),
		strings.Contains(name, "sumdone"):
		hot = 2
	}
	if hot > n {
		hot = n
	}
	return hot
}

// Arena is a hardware-aware model.Allocator: it hands out the same
// logical structures as model.Arena but may place them physically so
// that contended words do not share cache lines. Build the program
// against an Arena, then size the runtime with Size — exactly the
// model.Arena workflow.
type Arena struct {
	layout Layout
	next   int
	named  []model.NamedRegion
}

var _ model.Allocator = (*Arena)(nil)

// NewArena returns an arena using the given layout. NewArena(Flat)
// behaves exactly like a zero model.Arena.
func NewArena(layout Layout) *Arena {
	return &Arena{layout: layout}
}

// Layout returns the arena's layout policy.
func (a *Arena) Layout() Layout { return a.layout }

// Array reserves n contiguous words and returns the region.
func (a *Arena) Array(n int) Region {
	if n < 0 {
		panic("native: negative array size")
	}
	r := Region{Base: a.next, Len: n}
	a.next += n
	return r
}

// Named reserves n words under a label, applying the layout's alignment
// and hot-prefix rules.
func (a *Arena) Named(name string, n int) Region {
	if n < 0 {
		panic("native: negative array size")
	}
	r := Region{Base: a.next, Len: n}
	if a.layout == Padded {
		if rem := a.next % model.LineWords; rem != 0 {
			r.Base = a.next + model.LineWords - rem
		}
		r.Hot = hotPrefix(name, n)
	}
	a.next = r.Base + r.Extent()
	a.named = append(a.named, model.NamedRegion{Name: name, Region: r})
	return r
}

// Word reserves a single word and returns its address.
func (a *Arena) Word() int {
	addr := a.next
	a.next++
	return addr
}

// NamedWord reserves a single labelled word and returns its address.
func (a *Arena) NamedWord(name string) int {
	return a.Named(name, 1).Base
}

// Regions returns every labelled region, in allocation order. The
// returned slice is shared; callers must not modify it.
func (a *Arena) Regions() []model.NamedRegion { return a.named }

// Size returns the number of physical words reserved so far.
func (a *Arena) Size() int { return a.next }

// Region aliases the shared region type.
type Region = model.Region
