package lcwat

import (
	"math"
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

func runLCWriteAll(t *testing.T, jobs, p int, seed uint64, sched pram.Scheduler) *model.Metrics {
	t.Helper()
	var a model.Arena
	tr := New(&a, jobs)
	out := a.Array(jobs)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: seed, Sched: sched})
	tr.Seed(m.Memory())
	met, err := m.Run(func(pr model.Proc) {
		tr.Run(pr, func(j int) {
			pr.Write(out.At(j), 1)
		})
	})
	if err != nil {
		t.Fatalf("Run(jobs=%d P=%d): %v", jobs, p, err)
	}
	for j := 0; j < jobs; j++ {
		if m.Memory()[out.At(j)] != 1 {
			t.Fatalf("jobs=%d P=%d: cell %d not written", jobs, p, j)
		}
	}
	return met
}

func TestLCWriteAllShapes(t *testing.T) {
	for _, tc := range []struct{ jobs, p int }{
		{1, 1}, {1, 4}, {2, 2}, {5, 3}, {8, 8}, {16, 16},
		{31, 8}, {64, 64}, {100, 100}, {128, 32},
	} {
		runLCWriteAll(t, tc.jobs, tc.p, uint64(tc.jobs*31+tc.p), nil)
	}
}

func TestLCWriteAllSerializedSchedule(t *testing.T) {
	runLCWriteAll(t, 16, 4, 5, pram.RoundRobin(1))
}

func TestLCWriteAllRandomSchedule(t *testing.T) {
	runLCWriteAll(t, 32, 8, 6, pram.RandomSubset(0.3))
}

func TestLCWriteAllSurvivesCrashes(t *testing.T) {
	const jobs, p = 32, 16
	crashes := pram.RandomCrashes(p, 0.5, 40, 7)
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	runLCWriteAll(t, jobs, p, 8, pram.WithCrashes(pram.Synchronous(), kept))
}

func TestLemma31TimeLogarithmic(t *testing.T) {
	// Under synchronous execution with P = n, LC-WAT should finish in
	// O(log P) steps w.h.p. Allow a generous constant; the point is
	// that growth is logarithmic, not linear.
	for _, n := range []int{16, 64, 256, 1024} {
		met := runLCWriteAll(t, n, n, uint64(n)*7, nil)
		logN := math.Log2(float64(n))
		if float64(met.Steps) > 40*logN {
			t.Errorf("P=n=%d: steps = %d, want O(log P) ≈ %.0f", n, met.Steps, logN)
		}
	}
}

func TestLemma31ContentionSublinear(t *testing.T) {
	// The whole point of LC-WAT: contention must not scale with P.
	// (The deterministic WAT suffers O(P) at the root.) Lemma 3.1 says
	// O(log P / log log P); assert it stays under c·log P.
	for _, n := range []int{64, 256, 1024, 4096} {
		met := runLCWriteAll(t, n, n, uint64(n)*13, nil)
		logN := math.Log2(float64(n))
		if float64(met.MaxContention) > 4*logN {
			t.Errorf("P=n=%d: max contention = %d, want O(log P) ≈ %.0f", n, met.MaxContention, logN)
		}
	}
}

func TestSweepFallbackAloneCompletesEverything(t *testing.T) {
	// Force the fallback immediately: with fallbackAfter = 0 a single
	// processor must still complete all jobs deterministically.
	var a model.Arena
	tr := New(&a, 21)
	tr.fallbackAfter = 0
	out := a.Array(21)
	m := pram.New(pram.Config{P: 1, Mem: a.Size()})
	tr.Seed(m.Memory())
	_, err := m.Run(func(pr model.Proc) {
		tr.Run(pr, func(j int) { pr.Write(out.At(j), 1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 21; j++ {
		if m.Memory()[out.At(j)] != 1 {
			t.Errorf("cell %d not written by sweep", j)
		}
	}
	// Root must be ALLDONE afterwards so other processors terminate.
	if m.Memory()[tr.tree.At(1)] != model.AllDone {
		t.Error("root not ALLDONE after sweep")
	}
}

func TestPerProcessorWorkIsBounded(t *testing.T) {
	// Wait-freedom: every processor's op count must be bounded even
	// under a hostile schedule. The fallback guarantees O(n) ops per
	// processor; check an explicit numeric bound.
	const jobs, p = 64, 8
	var a model.Arena
	tr := New(&a, jobs)
	out := a.Array(jobs)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: 3, Sched: pram.RoundRobin(1)})
	tr.Seed(m.Memory())
	if _, err := m.Run(func(pr model.Proc) {
		tr.Run(pr, func(j int) { pr.Write(out.At(j), 1) })
	}); err != nil {
		t.Fatal(err)
	}
	bound := int64(20*tr.Nodes() + 100)
	for pid, ops := range m.OpsPerProc() {
		if ops > bound {
			t.Errorf("proc %d used %d ops, want <= %d", pid, ops, bound)
		}
	}
}

func TestAllDoneReachesWholeTreeEventually(t *testing.T) {
	// After a synchronous run every processor has terminated, which
	// means each one saw an ALLDONE node; the root must be ALLDONE.
	var a model.Arena
	tr := New(&a, 32)
	out := a.Array(32)
	m := pram.New(pram.Config{P: 32, Mem: a.Size(), Seed: 11})
	tr.Seed(m.Memory())
	if _, err := m.Run(func(pr model.Proc) {
		tr.Run(pr, func(j int) { pr.Write(out.At(j), 1) })
	}); err != nil {
		t.Fatal(err)
	}
	if m.Memory()[tr.tree.At(1)] != model.AllDone {
		t.Error("root not ALLDONE at termination")
	}
}

func TestAccessors(t *testing.T) {
	var a model.Arena
	tr := New(&a, 6)
	if tr.Jobs() != 6 {
		t.Errorf("Jobs = %d", tr.Jobs())
	}
	if tr.Nodes() != 15 {
		t.Errorf("Nodes = %d, want 2*8-1", tr.Nodes())
	}
}

func TestNewRejectsZeroJobs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("jobs=0 accepted")
		}
	}()
	var a model.Arena
	New(&a, 0)
}
