// Package lcwat implements the Low-Contention Work Assignment Tree of
// the paper's Figure 8 (§3.1). Processors repeatedly probe uniformly
// random tree nodes and perform whatever bounded action the node's state
// calls for:
//
//   - an EMPTY leaf: do the leaf's job and mark it DONE;
//   - an EMPTY inner node whose children are both DONE: mark it DONE
//     (ALLDONE if it is the root);
//   - an ALLDONE inner node: copy ALLDONE to both children and quit;
//   - anything else: probe again.
//
// Because probes are spread uniformly over ~2P locations, no node
// attracts more than O(log P / log log P) concurrent accesses w.h.p.
// (Lemma 3.1), unlike the deterministic WAT whose root suffers O(P)
// contention. The price is an additive O(log P): the ALLDONE mark must
// percolate back down before processors notice completion.
//
// The paper's routine terminates w.h.p. under synchronous execution but
// a single unlucky processor has no deterministic bound. To keep the
// implementation strictly wait-free under any schedule, a processor
// that has probed fruitlessly for Θ(log n) consecutive rounds falls
// back to one deterministic sweep of the tree (O(n) bounded work, the
// same bound as the paper's build_tree phase); under the paper's
// synchronous assumptions the fallback fires with negligible
// probability and experiment E7 verifies the O(log P) behaviour.
package lcwat

import (
	"math/bits"

	"wfsort/internal/model"
)

// Tree is a low-contention work-assignment tree over a fixed number of
// jobs, stored exactly like wat.WAT: a 1-indexed heap with leaves at
// [leaves, 2·leaves).
type Tree struct {
	tree   model.Region
	leaves int
	jobs   int
	// fallbackAfter is the number of consecutive unproductive probes
	// after which a processor performs the deterministic sweep.
	fallbackAfter int
}

// New lays out an LC-WAT for jobs (>= 1) in the arena. Call Seed on the
// runtime's memory before use. As with wat.New, the allocator decides
// physical placement (dense for the simulator, cache-line padded tops
// on the native arenas).
func New(a model.Allocator, jobs int) *Tree {
	return NewNamed(a, "lcwat", jobs)
}

// NewNamed is New with a region label for contention profiles.
func NewNamed(a model.Allocator, name string, jobs int) *Tree {
	if jobs < 1 {
		panic("lcwat: jobs must be >= 1")
	}
	leaves := ceilPow2(jobs)
	depth := bits.TrailingZeros(uint(leaves))
	return &Tree{
		tree:          a.Named(name, 2*leaves),
		leaves:        leaves,
		jobs:          jobs,
		fallbackAfter: 16 * (depth + 2),
	}
}

// Jobs returns the number of real jobs.
func (t *Tree) Jobs() int { return t.jobs }

// RootAddr returns the shared-memory address of the tree's root mark.
// The root reads as a doneish value exactly when every job is complete,
// which is what the phase graphs' host-side completion predicates
// check.
func (t *Tree) RootAddr() int { return t.tree.At(1) }

// Nodes returns the number of tree nodes (2·leaves − 1).
func (t *Tree) Nodes() int { return 2*t.leaves - 1 }

// Seed pre-marks padding leaves and padding-only inner nodes DONE.
func (t *Tree) Seed(mem []model.Word) {
	if t.jobs == t.leaves {
		return
	}
	for n := 2*t.leaves - 1; n >= 1; n-- {
		if n >= t.leaves {
			if n-t.leaves >= t.jobs {
				mem[t.tree.At(n)] = model.Done
			}
		} else if mem[t.tree.At(2*n)] == model.Done && mem[t.tree.At(2*n+1)] == model.Done {
			mem[t.tree.At(n)] = model.Done
		}
	}
}

// Run executes the Figure 8 loop for one processor. job may run more
// than once per index (two processors can pick the same EMPTY leaf) and
// must be idempotent.
func (t *Tree) Run(p model.Proc, job func(j int)) {
	rng := p.Rand()
	unproductive := 0
	for {
		i := 1 + rng.Intn(t.Nodes())
		switch v := p.Read(t.tree.At(i)); {
		case v == model.Empty && t.isLeaf(i):
			if j := i - t.leaves; j < t.jobs {
				job(j)
			}
			if i == 1 {
				// Degenerate single-node tree: the leaf is the root, so
				// completing it completes everything.
				p.Write(t.tree.At(1), model.AllDone)
				return
			}
			p.Write(t.tree.At(i), model.Done)
			unproductive = 0

		case v == model.Empty: // inner node
			if p.Read(t.tree.At(2*i)) == model.Done && p.Read(t.tree.At(2*i+1)) == model.Done {
				if i == 1 {
					p.Write(t.tree.At(1), model.AllDone)
				} else {
					p.Write(t.tree.At(i), model.Done)
				}
				unproductive = 0
			} else {
				unproductive++
			}

		case v == model.AllDone:
			if !t.isLeaf(i) {
				p.Write(t.tree.At(2*i), model.AllDone)
				p.Write(t.tree.At(2*i+1), model.AllDone)
			}
			return

		default: // DONE
			unproductive++
		}

		if unproductive >= t.fallbackAfter {
			t.sweep(p, job)
			return
		}
	}
}

// sweep is the bounded deterministic escape: complete every leaf and
// mark the whole tree bottom-up, then flood ALLDONE from the root. It
// costs O(n) operations and leaves the tree in a state from which every
// other processor (random prober or fellow sweeper) terminates.
func (t *Tree) sweep(p model.Proc, job func(j int)) {
	for n := 2*t.leaves - 1; n >= 1; n-- {
		a := t.tree.At(n)
		v := p.Read(a)
		if v != model.Empty {
			continue
		}
		if t.isLeaf(n) {
			if j := n - t.leaves; j < t.jobs {
				job(j)
			}
			p.Write(a, model.Done)
			continue
		}
		// Children were already handled by this sweep (higher indices),
		// so they are DONE (or ALLDONE, which implies done).
		if n == 1 {
			p.Write(a, model.AllDone)
		} else {
			p.Write(a, model.Done)
		}
	}
	// Flood ALLDONE so random probers terminate quickly.
	for n := 1; n < t.leaves; n++ {
		if p.Read(t.tree.At(n)) == model.AllDone {
			p.Write(t.tree.At(2*n), model.AllDone)
			p.Write(t.tree.At(2*n+1), model.AllDone)
		}
	}
}

func (t *Tree) isLeaf(n int) bool { return n >= t.leaves }

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
