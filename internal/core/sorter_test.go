package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

// lessFor builds the strict total order over 1-based element ids for a
// key slice, with ties broken by index (the paper's §2.2 assumption).
func lessFor(keys []int) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
}

// wantRanks computes each element's expected 1-based rank host-side.
func wantRanks(keys []int) []int {
	n := len(keys)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	less := lessFor(keys)
	sort.Slice(ids, func(a, b int) bool { return less(ids[a], ids[b]) })
	ranks := make([]int, n)
	for pos, id := range ids {
		ranks[id-1] = pos + 1
	}
	return ranks
}

// runSort sorts keys on the simulator and validates ranks and output.
func runSort(t *testing.T, keys []int, p int, alloc Alloc, seed uint64, sched pram.Scheduler) (*Sorter, *pram.Machine, *model.Metrics) {
	t.Helper()
	var a model.Arena
	s := NewSorter(&a, len(keys), alloc)
	m := pram.New(pram.Config{
		P: p, Mem: a.Size(), Seed: seed, Sched: sched, Less: lessFor(keys),
	})
	s.Seed(m.Memory())
	met, err := m.Run(s.Program())
	if err != nil {
		t.Fatalf("sort(n=%d P=%d alloc=%d): %v", len(keys), p, alloc, err)
	}
	want := wantRanks(keys)
	got := s.Places(m.Memory())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sort(n=%d P=%d): element %d placed %d, want %d", len(keys), p, i+1, got[i], want[i])
		}
	}
	out := s.Output(m.Memory())
	for r := 0; r < len(keys); r++ {
		if want[out[r]-1] != r+1 {
			t.Fatalf("shuffle: position %d holds element %d with rank %d", r, out[r], want[out[r]-1])
		}
	}
	return s, m, met
}

func randKeys(n int, seed uint64) []int {
	rng := xrand.New(seed)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(4 * n)
	}
	return keys
}

func TestSortSingleElement(t *testing.T) {
	runSort(t, []int{7}, 1, AllocWAT, 0, nil)
	runSort(t, []int{7}, 4, AllocWAT, 0, nil)
}

func TestSortTinyInputs(t *testing.T) {
	for n := 2; n <= 9; n++ {
		for p := 1; p <= n; p += 2 {
			runSort(t, randKeys(n, uint64(n*p)), p, AllocWAT, uint64(n+p), nil)
		}
	}
}

func TestSortRandomInputsManyShapes(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{16, 1}, {16, 16}, {64, 8}, {100, 7}, {128, 128},
		{255, 32}, {256, 256}, {500, 100}, {1024, 64},
	} {
		runSort(t, randKeys(tc.n, uint64(tc.n*3+tc.p)), tc.p, AllocWAT, uint64(tc.p), nil)
	}
}

func TestSortDuplicateKeys(t *testing.T) {
	keys := make([]int, 100)
	for i := range keys {
		keys[i] = i % 5
	}
	runSort(t, keys, 10, AllocWAT, 1, nil)
}

func TestSortAllEqualKeys(t *testing.T) {
	keys := make([]int, 64)
	runSort(t, keys, 16, AllocWAT, 2, nil)
}

func TestSortSortedAndReversedInputs(t *testing.T) {
	n := 128
	asc := make([]int, n)
	desc := make([]int, n)
	for i := 0; i < n; i++ {
		asc[i] = i
		desc[i] = n - i
	}
	// Deterministic allocation on pre-sorted input degenerates to a
	// path-shaped tree but must still be correct.
	runSort(t, asc, 8, AllocWAT, 3, nil)
	runSort(t, desc, 8, AllocWAT, 3, nil)
	// Randomized allocation handles the same inputs (and keeps the tree
	// shallow; see TestRandomizedAllocationKeepsTreeShallow).
	runSort(t, asc, 8, AllocRandomized, 4, nil)
	runSort(t, desc, 8, AllocRandomized, 4, nil)
}

func TestSortRandomizedAllocation(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{16, 4}, {64, 64}, {256, 32}, {500, 500},
	} {
		runSort(t, randKeys(tc.n, uint64(tc.n+tc.p)), tc.p, AllocRandomized, uint64(tc.n), nil)
	}
}

func TestSortUnderSerializedSchedule(t *testing.T) {
	runSort(t, randKeys(48, 9), 6, AllocWAT, 5, pram.RoundRobin(1))
}

func TestSortUnderRandomSchedule(t *testing.T) {
	runSort(t, randKeys(64, 10), 16, AllocWAT, 6, pram.RandomSubset(0.3))
	runSort(t, randKeys(64, 11), 16, AllocRandomized, 7, pram.RandomSubset(0.3))
}

func TestSortSurvivesCrashes(t *testing.T) {
	// The headline wait-freedom property: kill most processors at
	// random times; survivors finish the sort correctly.
	for _, alloc := range []Alloc{AllocWAT, AllocRandomized} {
		for trial := uint64(0); trial < 5; trial++ {
			const n, p = 96, 16
			crashes := pram.RandomCrashes(p, 0.7, 200, 100+trial)
			kept := crashes[:0]
			for _, c := range crashes {
				if c.PID != 0 { // keep one processor alive
					kept = append(kept, c)
				}
			}
			runSort(t, randKeys(n, trial), p, alloc,
				trial, pram.WithCrashes(pram.Synchronous(), kept))
		}
	}
}

func TestSortDegenerateInputsBothAllocators(t *testing.T) {
	// Degenerate shapes exercised under BOTH allocation strategies: the
	// all-equal input collapses every comparison to the index tie-break,
	// and the constant-run shapes stress the subtree-size accounting.
	n := 48
	allEqual := make([]int, n)
	twoVals := make([]int, n)
	runs := make([]int, n)
	for i := range twoVals {
		twoVals[i] = i & 1
		runs[i] = i / 8
	}
	for _, alloc := range []Alloc{AllocWAT, AllocRandomized} {
		for name, keys := range map[string][]int{
			"allequal": allEqual, "twovalues": twoVals, "runs": runs,
		} {
			t.Run(name, func(t *testing.T) {
				runSort(t, keys, 8, alloc, uint64(len(name)), nil)
			})
		}
	}
}

func TestProgressCountsCompletedRun(t *testing.T) {
	// Progress reports (sized, placed) marks — the certifier's view of
	// how far a run got. A completed run must report full marks, and a
	// never-started memory image zero.
	keys := randKeys(64, 21)
	s, m, _ := runSort(t, keys, 8, AllocRandomized, 21, nil)
	sized, placed := s.Progress(m.Memory())
	if sized != len(keys) || placed != len(keys) {
		t.Errorf("completed run: sized=%d placed=%d, want %d/%d", sized, placed, len(keys), len(keys))
	}
	var a model.Arena
	fresh := NewSorter(&a, len(keys), AllocRandomized)
	mem := make([]model.Word, a.Size())
	fresh.Seed(mem)
	if sized, placed := fresh.Progress(mem); sized != 0 || placed != 0 {
		t.Errorf("fresh memory: sized=%d placed=%d, want 0/0", sized, placed)
	}
}

func TestBSTInvariant(t *testing.T) {
	keys := randKeys(200, 42)
	s, m, _ := runSort(t, keys, 20, AllocWAT, 8, nil)
	mem := m.Memory()
	less := lessFor(keys)
	// In-order traversal of the pivot tree must enumerate elements in
	// increasing key order and visit every element exactly once.
	var walk func(i int, visit func(int))
	walk = func(i int, visit func(int)) {
		if i == 0 {
			return
		}
		walk(int(mem[s.child[Small].At(i)]), visit)
		visit(i)
		walk(int(mem[s.child[Big].At(i)]), visit)
	}
	var order []int
	walk(1, func(i int) { order = append(order, i) })
	if len(order) != len(keys) {
		t.Fatalf("in-order visited %d elements, want %d", len(order), len(keys))
	}
	for k := 1; k < len(order); k++ {
		if !less(order[k-1], order[k]) {
			t.Fatalf("BST violation between %d and %d", order[k-1], order[k])
		}
	}
}

func TestSubtreeSizesExact(t *testing.T) {
	keys := randKeys(150, 17)
	s, m, _ := runSort(t, keys, 15, AllocWAT, 9, nil)
	mem := m.Memory()
	var check func(i int) int
	check = func(i int) int {
		if i == 0 {
			return 0
		}
		n := 1 + check(int(mem[s.child[Small].At(i)])) + check(int(mem[s.child[Big].At(i)]))
		if int(mem[s.size.At(i)]) != n {
			t.Fatalf("size[%d] = %d, want %d", i, mem[s.size.At(i)], n)
		}
		return n
	}
	if total := check(1); total != len(keys) {
		t.Fatalf("tree holds %d elements, want %d", total, len(keys))
	}
}

func TestLemma24BuildTreeOpsBounded(t *testing.T) {
	// Each build_tree call loops at most N−1 times, and each loop
	// iteration costs O(1) operations; with the WAT overhead a
	// processor's total phase-1 work is O(N log N) worst case, but for
	// a single insertion the bound is a few ops per tree level. Probe
	// the degenerate case: sorted input, one processor, deterministic
	// allocation — the tree is a path, so inserting element N costs
	// ~2(N−1) loop iterations and must not exceed c·N ops.
	n := 64
	keys := make([]int, n)
	for i := range keys {
		keys[i] = i
	}
	var a model.Arena
	s := NewSorter(&a, n, AllocWAT)
	m := pram.New(pram.Config{P: 1, Mem: a.Size(), Less: lessFor(keys)})
	s.Seed(m.Memory())
	met, err := m.Run(func(p model.Proc) {
		p.Phase("build-only")
		s.buildPhaseWAT(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Path tree: total insert work is ~sum over i of 4i = 2n^2; the
	// WAT adds O(n log n). Assert the quadratic ceiling.
	bound := int64(4*n*n + 64*n)
	if met.Ops > bound {
		t.Errorf("ops = %d, want <= %d", met.Ops, bound)
	}
}

func TestLemma27StepsScaling(t *testing.T) {
	// With P = N on random input, steps should be O(log^2 N)-ish (tree
	// depth O(log N), each level O(log N) WAT/descent cost) — crucially
	// far below N. Guard against accidental serialization.
	for _, n := range []int{64, 256, 1024} {
		_, _, met := runSort(t, randKeys(n, uint64(n)), n, AllocWAT, uint64(n), nil)
		logN := math.Log2(float64(n))
		if float64(met.Steps) > 30*logN*logN {
			t.Errorf("N=P=%d: steps = %d, want O(log^2 N) ≈ %.0f", n, met.Steps, logN*logN)
		}
	}
}

func TestSpeedupWithMoreProcessors(t *testing.T) {
	n := 512
	keys := randKeys(n, 5)
	_, _, met1 := runSort(t, keys, 1, AllocWAT, 1, nil)
	_, _, met16 := runSort(t, keys, 16, AllocWAT, 1, nil)
	if met16.Steps*4 > met1.Steps {
		t.Errorf("16 processors gave steps %d vs %d on one: less than 4x speedup", met16.Steps, met1.Steps)
	}
}

func TestRandomizedAllocationKeepsTreeShallow(t *testing.T) {
	// Lemma 2.8 + §2.3: randomized element choice keeps the pivot tree
	// O(log N) deep w.h.p. even on sorted input, where deterministic
	// order builds a path.
	n := 512
	asc := make([]int, n)
	for i := range asc {
		asc[i] = i
	}
	sDet, mDet, _ := runSort(t, asc, n, AllocWAT, 1, nil)
	sRnd, mRnd, _ := runSort(t, asc, n, AllocRandomized, 1, nil)
	dDet := sDet.Depth(mDet.Memory())
	dRnd := sRnd.Depth(mRnd.Memory())
	logN := math.Log2(float64(n))
	if float64(dRnd) > 6*logN {
		t.Errorf("randomized tree depth %d, want O(log N) ≈ %.0f", dRnd, logN)
	}
	if dDet < 8*dRnd {
		// The deterministic tree on sorted input is a path of depth
		// ~n/P... with P=n each processor inserts one element, but
		// insertion order still makes a deep tree; just check it is
		// much deeper than the randomized one.
		t.Logf("deterministic depth %d vs randomized %d", dDet, dRnd)
	}
}

func TestPlacePermutationProperty(t *testing.T) {
	f := func(seed uint64, n8 uint8, p8 uint8) bool {
		n := int(n8)%120 + 1
		p := int(p8)%n + 1
		keys := randKeys(n, seed)
		var a model.Arena
		s := NewSorter(&a, n, AllocWAT)
		m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: seed, Less: lessFor(keys)})
		s.Seed(m.Memory())
		if _, err := m.Run(s.Program()); err != nil {
			return false
		}
		seen := make([]bool, n+1)
		for _, r := range s.Places(m.Memory()) {
			if r < 1 || r > n || seen[r] {
				return false
			}
			seen[r] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	keys := randKeys(100, 3)
	_, m1, met1 := runSort(t, keys, 10, AllocRandomized, 77, nil)
	_, m2, met2 := runSort(t, keys, 10, AllocRandomized, 77, nil)
	if met1.Ops != met2.Ops || met1.Steps != met2.Steps {
		t.Errorf("same seed, different cost: %d/%d vs %d/%d", met1.Ops, met1.Steps, met2.Ops, met2.Steps)
	}
	for i, v := range m1.Memory() {
		if m2.Memory()[i] != v {
			t.Fatalf("memory diverged at %d", i)
		}
	}
}
