package core

import (
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

func TestShardedCounterZeroValueIsDisabled(t *testing.T) {
	var c ShardedCounter
	if c.Enabled() {
		t.Fatal("zero value must be disabled")
	}
	m := pram.New(pram.Config{P: 1, Mem: 1})
	met, err := m.Run(func(p model.Proc) {
		c.Add(p, 5)
		if c.Sum(p) != 0 {
			panic("disabled Sum must be 0")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Ops != 0 {
		t.Fatalf("disabled counter cost %d shared ops, want 0", met.Ops)
	}
}

func TestShardedCounterAddAndSum(t *testing.T) {
	const shards, p = 4, 8
	var a model.Arena
	c := NewShardedCounter(&a, "test", shards)
	if !c.Enabled() {
		t.Fatal("allocated counter must be enabled")
	}
	m := pram.New(pram.Config{P: p, Mem: a.Size()})
	_, err := m.Run(func(pr model.Proc) {
		c.Add(pr, model.Word(pr.ID()+1))
	})
	if err != nil {
		t.Fatal(err)
	}
	// With p > shards the adds race read-modify-write within a shard,
	// but under the synchronous schedule each pid runs its two-op pair
	// in distinct steps deterministically; the host sum must equal the
	// aggregate of whatever survived, and here nothing is lost because
	// no two pids share a step on the same shard word at the same time.
	want := c.HostSum(m.Memory())
	var total model.Word
	for i := 0; i < shards; i++ {
		total += m.Memory()[c.slots.At(i)]
	}
	if want != total {
		t.Fatalf("HostSum = %d, shard total = %d", want, total)
	}
	if want == 0 {
		t.Fatal("all increments lost")
	}
}

// TestTunedSorterCounterTotals runs the fully tuned fast path and
// checks the CAS-install accounting: with shards >= P every shard is
// single-writer, so a completed run must have counted exactly one
// phase-2 install and one phase-3 install per element. (With fewer
// shards the totals may undercount — the lossy mode the counter's doc
// comment allows — which is why this test pins the exact regime.)
func TestTunedSorterCounterTotals(t *testing.T) {
	const n, p = 600, 8
	rng := xrand.New(99)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(n / 2)
	}
	for _, alloc := range []Alloc{AllocWAT, AllocRandomized} {
		arena := native.NewArena(native.Padded)
		s := NewSorterTuned(arena, n, alloc, Tuning{
			Batch: 8, SkipKeyRead: true, Shards: p, HostShuffle: true,
		})
		m := pram.New(pram.Config{P: p, Mem: arena.Size(), Seed: 7, Less: lessFor(keys)})
		s.Seed(m.Memory())
		if _, err := m.Run(s.Program()); err != nil {
			t.Fatalf("alloc=%v: %v", alloc, err)
		}
		got := s.Places(m.Memory())
		for i, want := range wantRanks(keys) {
			if got[i] != want {
				t.Fatalf("alloc=%v: element %d rank %d, want %d", alloc, i+1, got[i], want)
			}
		}
		_, sum, place := s.CounterTotals(m.Memory())
		if sum != n || place != n {
			t.Fatalf("alloc=%v: counter totals sum=%d place=%d, want %d each", alloc, sum, place, n)
		}
	}
}

// TestTunedMatchesUntunedResults pins that tuning changes costs, never
// results: same input, same ranks, for a spread of batch sizes.
func TestTunedMatchesUntunedResults(t *testing.T) {
	const n, p = 500, 6
	rng := xrand.New(4)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(50)
	}
	want := wantRanks(keys)
	for _, batch := range []int{1, 3, 16, 128} {
		var a model.Arena
		s := NewSorterTuned(&a, n, AllocRandomized, Tuning{Batch: batch, HostShuffle: true})
		m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: 11, Less: lessFor(keys)})
		s.Seed(m.Memory())
		if _, err := m.Run(s.Program()); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		got := s.Places(m.Memory())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: element %d rank %d, want %d", batch, i+1, got[i], want[i])
			}
		}
	}
}
