package core

import (
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

// TestTableWithCustomRoot drives a bare table the way the §3 sort does:
// insertions from a custom root, then TreeSumFrom / FindPlaceFrom.
func TestTableWithCustomRoot(t *testing.T) {
	keys := []int{50, 10, 90, 30, 70, 20, 80, 60, 40, 5}
	n := len(keys)
	const root = 4 // element 4 (key 30) is the designated root
	var a model.Arena
	tbl := NewTable(&a, n)
	m := pram.New(pram.Config{P: 4, Mem: a.Size(), Seed: 1, Less: lessFor(keys)})
	_, err := m.Run(func(p model.Proc) {
		p.Phase("build")
		for e := 1 + p.ID(); e <= n; e += p.NumProcs() {
			if e != root {
				tbl.BuildTreeFrom(p, e, root)
			}
		}
		// Static striping gives no completion gate, so re-insert every
		// element before proceeding: BuildTreeFrom returns only once
		// the element is installed, and duplicates are harmless, so
		// after this loop the whole tree is built.
		for e := 1; e <= n; e++ {
			if e != root {
				tbl.BuildTreeFrom(p, e, root)
			}
		}
		p.Phase("sum")
		if got := tbl.TreeSumFrom(p, root); got != model.Word(n) {
			t.Errorf("root size = %d, want %d", got, n)
		}
		p.Phase("place")
		tbl.FindPlaceFrom(p, root, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := wantRanks(keys)
	got := tbl.Places(m.Memory())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d placed %d, want %d", i+1, got[i], want[i])
		}
	}
	if !tbl.TreeIsSortedBSTFrom(m.Memory(), root, lessFor(keys)) {
		t.Error("tree not a sorted BST")
	}
	if d := tbl.DepthFrom(m.Memory(), root); d < 2 || d > n {
		t.Errorf("depth = %d", d)
	}
}

func TestTableSortPanicsWithoutWATs(t *testing.T) {
	var a model.Arena
	tbl := NewTable(&a, 4)
	m := pram.New(pram.Config{P: 1, Mem: a.Size()})
	_, err := m.Run(func(p model.Proc) { tbl.Sort(p) })
	if err == nil {
		t.Fatal("Sort on a bare table should fail loudly")
	}
}

func TestTreeIsSortedBSTNegatives(t *testing.T) {
	keys := []int{3, 1, 2}
	less := lessFor(keys)
	var a model.Arena
	tbl := NewTable(&a, 3)
	mem := make([]model.Word, a.Size())

	// Empty tree: element 1 alone, others missing.
	if tbl.TreeIsSortedBST(mem, less) {
		t.Error("incomplete tree accepted")
	}
	// Correct tree: 1(key 3) with small-child 2(key 1), 2's big child 3.
	mem[tbl.ChildAddr(Small, 1)] = 2
	mem[tbl.ChildAddr(Big, 2)] = 3
	if !tbl.TreeIsSortedBST(mem, less) {
		t.Error("correct tree rejected")
	}
	// Order violation: swap the semantics by pointing 1's BIG child at 2.
	mem[tbl.ChildAddr(Small, 1)] = 0
	mem[tbl.ChildAddr(Big, 1)] = 2
	if tbl.TreeIsSortedBST(mem, less) {
		t.Error("order-violating tree accepted")
	}
	// Cycle: 1 -> 2 -> 1 must not hang or be accepted.
	mem[tbl.ChildAddr(Big, 1)] = 0
	mem[tbl.ChildAddr(Small, 1)] = 2
	mem[tbl.ChildAddr(Big, 2)] = 1
	if tbl.TreeIsSortedBST(mem, less) {
		t.Error("cyclic tree accepted")
	}
	// Out-of-range pointer.
	mem[tbl.ChildAddr(Big, 2)] = 99
	if tbl.TreeIsSortedBST(mem, less) {
		t.Error("out-of-range pointer accepted")
	}
}

func TestAddrAccessorsDisjoint(t *testing.T) {
	var a model.Arena
	tbl := NewTable(&a, 5)
	seen := map[int]string{}
	record := func(name string, addr int) {
		if prev, ok := seen[addr]; ok {
			t.Fatalf("address %d shared by %s and %s", addr, prev, name)
		}
		seen[addr] = name
	}
	for i := 0; i <= 5; i++ {
		record("key", tbl.KeyAddr(i))
		record("size", tbl.SizeAddr(i))
		record("place", tbl.PlaceAddr(i))
		record("placedone", tbl.PlaceDoneAddr(i))
		record("child.small", tbl.ChildAddr(Small, i))
		record("child.big", tbl.ChildAddr(Big, i))
	}
	for r := 0; r < 5; r++ {
		record("out", tbl.OutAddr(r))
	}
	for addr := range seen {
		if addr < 0 || addr >= a.Size() {
			t.Fatalf("address %d outside arena of %d", addr, a.Size())
		}
	}
}

func TestSorterN(t *testing.T) {
	var a model.Arena
	if got := NewSorter(&a, 7, AllocWAT).N(); got != 7 {
		t.Errorf("N = %d", got)
	}
}

func TestNewSorterRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 accepted")
		}
	}()
	var a model.Arena
	NewTable(&a, 0)
}

func TestNamedRegionsRegistered(t *testing.T) {
	var a model.Arena
	NewSorterNamed(&a, 4, AllocWAT, "pfx.")
	names := map[string]bool{}
	for _, r := range a.Regions() {
		names[r.Name] = true
	}
	for _, want := range []string{"pfx.key", "pfx.child.big", "pfx.child.small",
		"pfx.size", "pfx.place", "pfx.placedone", "pfx.out",
		"pfx.wat.build", "pfx.wat.shuffle"} {
		if !names[want] {
			t.Errorf("region %q not registered (have %v)", want, names)
		}
	}
}

// TestSpaceIsLinear checks the Section 2 layout is O(N) words.
func TestSpaceIsLinear(t *testing.T) {
	ratio := func(n int) float64 {
		var a model.Arena
		NewSorter(&a, n, AllocWAT)
		return float64(a.Size()) / float64(n)
	}
	small, large := ratio(1024), ratio(1<<20)
	if large > small*1.5 || large > 20 {
		t.Errorf("space ratio grew from %.1f to %.1f words/element — not O(N)", small, large)
	}
}
