package core

import "wfsort/internal/model"

// ShardedCounter is a contention-free monotonic counter for the native
// fast path: each worker adds to its own shard (a plain read-modify-
// write on a word no other worker updates) and the total is aggregated
// on read by summing all shards. On a padded arena every shard lives on
// its own cache line (the "ctr." naming rule in internal/native), so
// increments never bounce lines between cores.
//
// Shards are single-writer as long as shards >= P; with fewer shards
// two workers may race the read-modify-write and lose increments. Every
// use in this repository is a heuristic early-exit signal where a lost
// increment merely delays the exit, never breaks correctness: Sum is a
// lower bound on the true count, and the surrounding algorithms remain
// wait-free without the counter firing at all.
//
// The zero value is disabled: Add and Sum are no-ops costing zero
// shared-memory operations, so untuned (simulator) programs are
// byte-identical with or without counter plumbing.
type ShardedCounter struct {
	slots model.Region
	n     int
}

// NewShardedCounter reserves shards slots under the "ctr."-prefixed
// label that padded arenas recognize.
func NewShardedCounter(a model.Allocator, name string, shards int) ShardedCounter {
	if shards < 1 {
		panic("core: sharded counter needs >= 1 shard")
	}
	return ShardedCounter{slots: a.Named("ctr."+name, shards), n: shards}
}

// Enabled reports whether the counter was actually allocated.
func (c ShardedCounter) Enabled() bool { return c.n > 0 }

// Add adds delta to the calling worker's shard. With shards >= P the
// shard is single-writer and the plain read+write pair is exact.
func (c ShardedCounter) Add(p model.Proc, delta model.Word) {
	if c.n == 0 {
		return
	}
	a := c.slots.At(p.ID() % c.n)
	p.Write(a, p.Read(a)+delta)
}

// Sum aggregates the counter by reading every shard. The result is a
// lower bound on the number of Add-deltas issued before the call.
func (c ShardedCounter) Sum(p model.Proc) model.Word {
	var total model.Word
	for i := 0; i < c.n; i++ {
		total += p.Read(c.slots.At(i))
	}
	return total
}

// HostSum aggregates the counter host-side after a run (no Proc ops).
func (c ShardedCounter) HostSum(mem []model.Word) model.Word {
	var total model.Word
	for i := 0; i < c.n; i++ {
		total += mem[c.slots.At(i)]
	}
	return total
}
