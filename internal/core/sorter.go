// Package core implements the paper's primary contribution: the
// wait-free sorting algorithm of Section 2. Sorting an input of N
// elements with P <= N processors proceeds in three phases (plus the
// output shuffle), each individually wait-free:
//
//	phase 1 — build_tree (Fig. 4): every element is installed into a
//	          Quicksort pivot tree by compare-and-swap; work is handed
//	          out by a Work Assignment Tree (Fig. 1/2) or by the
//	          randomized allocation of §2.3.
//	phase 2 — tree_sum (Fig. 5): subtree sizes, computed by all
//	          processors descending from the root, spread by the bits
//	          of their processor ids, pruning at nodes whose size is
//	          already known (bottom-up completion, so pruning is safe
//	          even if the computing processor crashed).
//	phase 3 — find_place (Fig. 6): each node's rank is derived from its
//	          parent's rank and its small-subtree size.
//	shuffle — the ranks are a permutation; a write-all pass moves
//	          element ids to their final positions.
//
// On a faultless synchronous PRAM the whole sort takes
// O(N log N / P) time w.h.p. for random inputs (Lemmas 2.7, 2.8), and
// it completes correctly under arbitrary processor crashes and delays.
//
// # Deviation from Figure 6 (crash safety)
//
// As literally written, find_place returns immediately when it sees
// place > 0. The place field is set top-down *before* the setter
// recurses into the children, so a processor that crashes between the
// write and the recursion would strand its subtree: every later visitor
// prunes at the node and nobody places the children. (Figure 5 does not
// have this problem — size is written bottom-up, after the subtree is
// complete.) We therefore give phase 3 the same bottom-up structure: a
// placeDone flag written after both children's subtrees are placed, and
// pruning happens on placeDone rather than on place. Work, time and
// contention bounds are unchanged (one extra word and O(1) extra
// operations per node); the low-contention phase 3 of §3.3 uses
// bottom-up DONE marks in exactly this way, so this is the paper's own
// repair applied to the deterministic variant.
package core

import (
	"math/bits"
	"sync/atomic"

	"wfsort/internal/engine"
	"wfsort/internal/model"
	"wfsort/internal/wat"
)

// Word aliases the shared-memory word type.
type Word = model.Word

// Side constants follow Figure 3: BIG = 0, SMALL = 1.
const (
	Big   = 0
	Small = 1
)

// Tuning configures the native fast path. The zero value is the
// paper-faithful configuration the simulator runs: per-element work
// claims, the Fig. 4 key-accounting read, no counters, and the phase-4
// shuffle — byte-identical operation sequences to the seed
// implementation, which is what every golden-metric test pins down.
//
// Non-zero tunings trade simulator-faithful accounting for hardware
// throughput; they preserve every correctness property (wait-freedom,
// crash tolerance, stability of the derived ranks) but not the paper's
// operation counts, so they are only ever used by the real-goroutine
// runtime in internal/native.
type Tuning struct {
	// Batch is the number of elements claimed per work-assignment-tree
	// leaf (0 or 1 = one element per leaf). Larger batches amortize the
	// Θ(log N) next_element traffic — and the root/top-level cache-line
	// traffic it causes — over Batch elements.
	Batch int
	// SkipKeyRead omits the Fig. 4 line 8 key read. The cell only
	// exists so simulated operation counts and contention match the
	// paper's accounting (keys never enter shared memory); on hardware
	// it is one wasted atomic load per descent level.
	SkipKeyRead bool
	// Shards > 0 enables sharded counters with that many slots: the
	// randomized allocation's miss counter and the phase-2/3 completion
	// counters, each aggregated on read.
	Shards int
	// HostShuffle skips phase 4 (the output shuffle). The native driver
	// already scatters elements from the rank table host-side, so the
	// shared-memory write-all pass is redundant work there.
	HostShuffle bool
}

// enabled reports whether any fast-path deviation is active.
func (t Tuning) enabled() bool {
	return t.Batch > 1 || t.SkipKeyRead || t.Shards > 0 || t.HostShuffle
}

// Alloc selects the phase-1 work-allocation strategy.
type Alloc int

// Work allocation strategies for phase 1.
const (
	// AllocWAT assigns elements via next_element from evenly spaced
	// leaves (Fig. 2). With inputs in random order the pivot tree is
	// O(log N) deep w.h.p. (Lemma 2.8).
	AllocWAT Alloc = iota
	// AllocRandomized first inserts uniformly random elements until it
	// sees log N consecutive already-done picks, then falls back to
	// next_element (§2.3 end). This makes the O(log N) tree depth hold
	// w.h.p. for *any* input order, including sorted inputs.
	AllocRandomized
)

// Sorter lays out and runs the wait-free sort for n elements. Element
// ids are 1..n; id 1 is the tree root (the first pivot, Fig. 4 line 5).
// The input keys never enter shared memory: ordering is consulted via
// Proc.Less.
type Sorter struct {
	n     int
	alloc Alloc
	tun   Tuning

	// missCtr aggregates randomized-allocation misses across workers;
	// sumCtr and placeCtr count distinct phase-2 size installs and
	// phase-3 place installs (see Tuning.Shards). All are zero-valued
	// (free) unless the sorter was built with NewSorterTuned.
	missCtr  ShardedCounter
	sumCtr   ShardedCounter
	placeCtr ShardedCounter

	// key.At(i) stands in for element i's key field: build_tree reads
	// it (one shared-memory operation, as in Fig. 4 line 8) before
	// comparing via Less. Keys themselves stay host-side; the cell read
	// exists so operation counts and — crucially — memory contention
	// match the paper's accounting, where all processors reading the
	// root pivot's key contend on one word.
	key model.Region
	// child[side].At(i) is element i's BIG/SMALL child pointer (Fig. 3).
	child [2]model.Region
	// size.At(i) is the size of the subtree rooted at i (phase 2).
	size model.Region
	// place.At(i) is element i's final 1-based rank (phase 3).
	place model.Region
	// placeDone.At(i) marks that i's whole subtree has been placed.
	placeDone model.Region
	// out.At(r) receives the element id of rank r+1 (shuffle).
	out model.Region

	// build assigns phase-1 insertions (elements 2..n → jobs 0..n-2).
	build *wat.WAT
	// shuffle assigns output writes (elements 1..n → jobs 0..n-1).
	shuffle *wat.WAT

	// graph is the declared phase sequence (1:build → 2:sum → 3:place →
	// 4:shuffle) that Sort executes through the engine scheduler. Nil for
	// bare tables (NewTable), which carry no work-assignment machinery.
	graph *engine.Graph
}

// NewSorter reserves the sort's shared state for n >= 1 elements in the
// arena. Call Seed on the runtime's memory before running.
func NewSorter(a model.Allocator, n int, alloc Alloc) *Sorter {
	return NewSorterNamed(a, n, alloc, "")
}

// NewSorterNamed is NewSorter with a label prefix for contention
// profiles (the §3 sort distinguishes group tables from the global
// one this way).
func NewSorterNamed(a model.Allocator, n int, alloc Alloc, prefix string) *Sorter {
	s := NewTableNamed(a, n, prefix)
	s.alloc = alloc
	s.shuffle = wat.NewNamed(a, prefix+"wat.shuffle", n)
	if n > 1 {
		s.build = wat.NewNamed(a, prefix+"wat.build", n-1)
	}
	s.buildGraph()
	return s
}

// NewSorterTuned reserves a sorter configured for the native fast path.
// A zero Tuning reproduces NewSorter exactly; see Tuning for what each
// knob trades away. The work-assignment trees cover ceil(jobs/Batch)
// leaves, so with Batch > 1 workers claim blocks of elements and touch
// the trees' contended top levels Batch times less often.
func NewSorterTuned(a model.Allocator, n int, alloc Alloc, tun Tuning) *Sorter {
	if tun.Batch < 1 {
		tun.Batch = 1
	}
	s := NewTableNamed(a, n, "")
	s.alloc = alloc
	s.tun = tun
	if !tun.HostShuffle {
		s.shuffle = wat.NewNamed(a, "wat.shuffle", ceilDiv(n, tun.Batch))
	}
	if n > 1 {
		s.build = wat.NewNamed(a, "wat.build", ceilDiv(n-1, tun.Batch))
	}
	if tun.Shards > 0 {
		s.missCtr = NewShardedCounter(a, "miss", tun.Shards)
		s.sumCtr = NewShardedCounter(a, "sum", tun.Shards)
		s.placeCtr = NewShardedCounter(a, "place", tun.Shards)
	}
	s.buildGraph()
	return s
}

// NewTable reserves only the element table (keys, children, sizes,
// places, output) without the work-assignment trees. The low-contention
// sort of §3 drives the table with its own allocation machinery; tables
// support BuildTreeFrom, TreeSumFrom and FindPlaceFrom but not Sort.
func NewTable(a model.Allocator, n int) *Sorter {
	return NewTableNamed(a, n, "")
}

// NewTableNamed is NewTable with a label prefix for contention
// profiles.
func NewTableNamed(a model.Allocator, n int, prefix string) *Sorter {
	if n < 1 {
		panic("core: sorter needs n >= 1")
	}
	s := &Sorter{
		n:         n,
		key:       a.Named(prefix+"key", n+1),
		size:      a.Named(prefix+"size", n+1),
		place:     a.Named(prefix+"place", n+1),
		placeDone: a.Named(prefix+"placedone", n+1),
		out:       a.Named(prefix+"out", n),
	}
	s.child[Big] = a.Named(prefix+"child.big", n+1)
	s.child[Small] = a.Named(prefix+"child.small", n+1)
	return s
}

// N returns the input size.
func (s *Sorter) N() int { return s.n }

// Seed initializes work-assignment padding in the runtime's memory.
func (s *Sorter) Seed(mem []Word) {
	if s.build != nil {
		s.build.Seed(mem)
	}
	if s.shuffle != nil {
		s.shuffle.Seed(mem)
	}
}

// Program returns the full wait-free sort as a model.Program. Every
// processor runs all phases; phase transitions are individually gated
// (a processor leaves phase 1 only when the whole pivot tree is built,
// leaves phase 2 only having verified the root's size, and so on), so
// no barriers and no fault-free assumptions are needed.
func (s *Sorter) Program() model.Program {
	return func(p model.Proc) {
		s.Sort(p)
	}
}

// Sort runs all phases on the calling processor by executing the
// declared phase graph.
func (s *Sorter) Sort(p model.Proc) {
	if s.graph == nil {
		panic("core: Sort requires a sorter from NewSorter, not NewTable")
	}
	s.graph.Run(p)
}

// Graph returns the sorter's declared phase graph, or nil for bare
// tables. Runtimes that schedule at phase granularity (native.Pipeline)
// and the certification harness introspect it.
func (s *Sorter) Graph() *engine.Graph { return s.graph }

// buildGraph declares the §2 sort as an engine phase graph. The phase
// sequence, labels and bodies reproduce the seed's inline orchestration
// operation-for-operation (the simulator goldens pin this down); the
// graph additionally carries host-side completion predicates for the
// certifier and, under Tuning.HostShuffle, the scatter epilogue that
// replaces the shared-memory write-all pass.
func (s *Sorter) buildGraph() {
	g := engine.New("core")
	if s.n > 1 {
		g.Add(engine.Phase{
			Name: "1:build",
			Body: func(p model.Proc, _ any) { s.BuildPhase(p) },
			// The deterministic completion sweep drives next_element to
			// NoWork, which requires the build WAT's root mark — so a
			// doneish root certifies every insertion, even when the
			// randomized allocation bailed out early on its miss counter.
			Done: func(mem []Word) bool { return model.Doneish(mem[leafAddr(s.build, 1)]) },
		})
		g.Add(engine.Phase{
			Name: "2:sum",
			Body: func(p model.Proc, _ any) { s.treeSum(p, 1, 0) },
			Done: func(mem []Word) bool { sized, _ := s.Progress(mem); return sized == s.n },
		})
		g.Add(engine.Phase{
			Name: "3:place",
			Body: func(p model.Proc, _ any) {
				var st *descentState
				if s.placeCtr.Enabled() {
					st = &descentState{}
				}
				s.findPlace(p, 1, 0, 0, st)
			},
			// The root's placeDone mark can legitimately be skipped under
			// the tuned early exit, so completion is judged on the ranks
			// themselves.
			Done: func(mem []Word) bool { _, placed := s.Progress(mem); return placed == s.n },
		})
	} else {
		g.Add(engine.Phase{
			Name: "2:sum",
			Body: func(p model.Proc, _ any) { p.Write(s.size.At(1), 1) },
			Done: func(mem []Word) bool { sized, _ := s.Progress(mem); return sized == s.n },
		})
		g.Add(engine.Phase{
			Name: "3:place",
			Body: func(p model.Proc, _ any) { p.Write(s.place.At(1), 1) },
			Done: func(mem []Word) bool { _, placed := s.Progress(mem); return placed == s.n },
		})
	}
	if s.tun.HostShuffle {
		// Host-only phase: the native driver scatters from the rank table
		// itself; by the time any worker returns from phase 3 every place
		// word is final (places are installed before the bottom-up
		// placeDone marks that gate pruning), so the workers have nothing
		// left to publish and the engine skips the phase entirely. Drivers
		// that nevertheless want the out region materialized (Output) run
		// the epilogue via Graph.Epilogues.
		g.Add(engine.Phase{
			Name:     "4:shuffle",
			Epilogue: s.scatterHost,
		})
	} else {
		g.Add(engine.Phase{
			Name: "4:shuffle",
			Body: func(p model.Proc, _ any) {
				batch := s.batch()
				s.shuffle.Run(p, func(j int) {
					lo := j*batch + 1
					hi := min(lo+batch-1, s.n)
					for elem := lo; elem <= hi; elem++ {
						r := p.Read(s.place.At(elem))
						p.Write(s.out.At(int(r)-1), Word(elem))
					}
				})
			},
			Done: func(mem []Word) bool {
				for r := 0; r < s.n; r++ {
					if mem[s.out.At(r)] == model.Empty {
						return false
					}
				}
				return true
			},
		})
	}
	s.graph = g
}

// scatterHost fills the out region from the rank table host-side — the
// same permutation the shared-memory shuffle publishes, computed on
// quiescent memory without the write-all pass.
func (s *Sorter) scatterHost(mem []Word) {
	for i := 1; i <= s.n; i++ {
		mem[s.out.At(int(mem[s.place.At(i)])-1)] = Word(i)
	}
}

// batch returns the work-claim granularity (>= 1).
func (s *Sorter) batch() int {
	if s.tun.Batch < 1 {
		return 1
	}
	return s.tun.Batch
}

// BuildPhase runs only phase 1 (tree construction) under the sorter's
// configured allocation — exposed so experiments can measure the phase
// in isolation.
func (s *Sorter) BuildPhase(p model.Proc) {
	if s.n <= 1 {
		return
	}
	switch s.alloc {
	case AllocRandomized:
		s.buildPhaseRandomized(p)
	default:
		s.buildPhaseWAT(p)
	}
}

// TreeIsSortedBST verifies, host-side after a run, that the pivot tree
// rooted at element 1 contains all n elements exactly once and that an
// in-order traversal enumerates them in increasing key order
// (Lemma 2.5).
func (s *Sorter) TreeIsSortedBST(mem []Word, less func(i, j int) bool) bool {
	return s.TreeIsSortedBSTFrom(mem, 1, less)
}

// TreeIsSortedBSTFrom is TreeIsSortedBST for a tree rooted at an
// arbitrary element (the §3 sort's root is a winner sample).
func (s *Sorter) TreeIsSortedBSTFrom(mem []Word, root int, less func(i, j int) bool) bool {
	order := make([]int, 0, s.n)
	var walk func(i int) bool
	walk = func(i int) bool {
		if i == 0 {
			return true
		}
		if i < 0 || i > s.n || len(order) > s.n {
			return false
		}
		if !walk(int(mem[s.child[Small].At(i)])) {
			return false
		}
		order = append(order, i)
		return walk(int(mem[s.child[Big].At(i)]))
	}
	if !walk(root) || len(order) != s.n {
		return false
	}
	for k := 1; k < len(order); k++ {
		if !less(order[k-1], order[k]) {
			return false
		}
	}
	return true
}

// buildSpan returns the element range [lo, hi] covered by build job j
// (elements 2..n are inserted; element 1 is the root and needs no
// insertion). With Batch == 1 job j covers exactly element j+2, the
// seed mapping.
func (s *Sorter) buildSpan(j int) (lo, hi int) {
	b := s.batch()
	lo = j*b + 2
	hi = min(lo+b-1, s.n)
	return lo, hi
}

// buildJob inserts every element of build job j in ascending order.
func (s *Sorter) buildJob(p model.Proc, j int) {
	lo, hi := s.buildSpan(j)
	for e := lo; e <= hi; e++ {
		s.BuildTree(p, e)
	}
}

// buildJobShuffled inserts build job j's elements in a random order
// drawn from the worker's private stream. With Batch > 1 a job may span
// a run of consecutive input positions; inserting the run in input
// order would grow pivot-tree chains of up to Batch nodes on sorted
// inputs, so the within-block order is shuffled to keep the randomized
// allocation's O(log N)-depth argument intact. scratch is worker-local
// scrap reused across jobs.
func (s *Sorter) buildJobShuffled(p model.Proc, j int, rng *model.Rng, scratch []int) []int {
	lo, hi := s.buildSpan(j)
	if lo == hi {
		s.BuildTree(p, lo)
		return scratch
	}
	scratch = scratch[:0]
	for e := lo; e <= hi; e++ {
		scratch = append(scratch, e)
	}
	for i := len(scratch) - 1; i > 0; i-- {
		k := rng.Intn(i + 1)
		scratch[i], scratch[k] = scratch[k], scratch[i]
	}
	for _, e := range scratch {
		s.BuildTree(p, e)
	}
	return scratch
}

// buildPhaseWAT is phase 1 under deterministic WAT allocation (Fig. 2
// with build_tree as func).
func (s *Sorter) buildPhaseWAT(p model.Proc) {
	s.build.Run(p, func(j int) {
		s.buildJob(p, j)
	})
}

// buildPhaseRandomized is phase 1 under the randomized allocation of
// §2.3: pick uniform random jobs and insert them, marking progress
// up the WAT, until log N consecutive picks were already done; then
// switch to next_element. When the sharded miss counter is enabled
// (native fast path), workers also aggregate their misses and bail out
// to the deterministic completion sweep once the whole fleet's miss
// count shows the tree is saturated — the sweep is the correctness
// backstop either way, so any early-exit policy is safe.
func (s *Sorter) buildPhaseRandomized(p model.Proc) {
	jobs := s.build.Jobs()
	logN := bits.Len(uint(jobs)) + 1
	rng := p.Rand()
	var scratch []int
	misses := 0
	last := s.build.LeafNode(rng.Intn(jobs))
	for misses < logN {
		j := rng.Intn(jobs)
		leaf := s.build.LeafNode(j)
		last = leaf
		if p.Read(leafAddr(s.build, leaf)) == model.Done {
			misses++
			if s.missCtr.Enabled() {
				s.missCtr.Add(p, 1)
				if misses&3 == 0 && s.missCtr.Sum(p) >= Word(4*logN) {
					break
				}
			}
			continue
		}
		misses = 0
		scratch = s.buildJobShuffled(p, j, rng, scratch)
		s.markClimb(p, leaf)
	}
	// Deterministic completion from the last (done) leaf.
	i := last
	for i != wat.NoWork {
		if j := s.build.JobOf(i); j >= 0 {
			s.buildJob(p, j)
		}
		i = s.build.NextElement(p, i)
	}
}

// markClimb performs lines 3–12 of next_element (Fig. 1): mark the leaf
// DONE and propagate DONE upward while sibling subtrees are complete,
// without claiming new work.
func (s *Sorter) markClimb(p model.Proc, i int) {
	p.Write(leafAddr(s.build, i), model.Done)
	for i != 1 {
		sib := i ^ 1
		if p.Read(leafAddr(s.build, sib)) != model.Done {
			return
		}
		i /= 2
		p.Write(leafAddr(s.build, i), model.Done)
	}
}

// BuildTree is build_tree of Figure 4: install element i into the pivot
// tree rooted at element 1. It is wait-free and loops at most N−1 times
// (Lemma 2.4); concurrent calls with the same i follow the same path
// and are harmless.
func (s *Sorter) BuildTree(p model.Proc, i int) {
	if i == 1 {
		return
	}
	s.BuildTreeFrom(p, i, 1)
}

// BuildTreeFrom runs the build_tree descent loop starting from an
// arbitrary ancestor already known to subsume element i (the §3.2 glue
// phase enters here after descending the fat tree).
//
// One optimization over the literal Figure 4: the child pointer is
// read before attempting the compare-and-swap ("test-then-CAS"), so a
// CAS is issued only when the slot was just observed EMPTY. The
// paper's facts 1–6 are untouched (the read in the descent still never
// observes EMPTY after a failed install, and insertion attempts still
// follow the unique path for i), per-level cost is still O(1), and on
// real hardware a failed CAS now *means* a lost race — which is what
// experiment E18 measures as the native contention signal.
func (s *Sorter) BuildTreeFrom(p model.Proc, i, parent int) {
	for {
		if !s.tun.SkipKeyRead {
			// Fig. 4 line 8: read the parent's key, then compare. The
			// cell exists purely so simulated op counts and contention
			// match the paper's accounting; the native fast path skips
			// the load (see Tuning.SkipKeyRead).
			p.Read(s.key.At(parent))
		}
		side := Big
		if p.Less(i, parent) {
			side = Small
		}
		a := s.child[side].At(parent)
		v := p.Read(a)
		if v == model.Empty {
			if p.CAS(a, model.Empty, Word(i)) {
				return
			}
			v = p.Read(a)
		}
		if v == Word(i) {
			// Another processor installed our element (same path,
			// Fig. 4 facts 1–6).
			return
		}
		parent = int(v)
	}
}

// TreeSumFrom runs phase 2 from an arbitrary root element (used by the
// §3 variant and its deterministic fallback) and returns its subtree
// size.
func (s *Sorter) TreeSumFrom(p model.Proc, root int) Word {
	return s.treeSum(p, root, 0)
}

// FindPlaceFrom runs phase 3 from an arbitrary root element whose
// subtree spans ranks sub+1..sub+size.
func (s *Sorter) FindPlaceFrom(p model.Proc, root int, sub Word) {
	s.findPlace(p, root, sub, 0, nil)
}

// treeSum is tree_sum of Figure 5: return the size of the subtree
// rooted at element i, computing and caching it if unknown. Processors
// spread over the tree by their id bits. Pruning on size > 0 is crash
// safe because size is written only after the whole subtree is summed.
func (s *Sorter) treeSum(p model.Proc, i, d int) Word {
	if i == 0 {
		return 0
	}
	if sz := p.Read(s.size.At(i)); sz > 0 {
		return sz
	}
	first, second := Small, Big
	if pidBit(p.ID(), d) == Big {
		first, second = Big, Small
	}
	sum := s.treeSum(p, int(p.Read(s.child[first].At(i))), d+1)
	sum += s.treeSum(p, int(p.Read(s.child[second].At(i))), d+1)
	if s.sumCtr.Enabled() {
		// Native fast path: install via CAS so exactly one worker counts
		// each node, and accumulate the install into this worker's shard.
		// The aggregate — readable by summing the shards — is the number
		// of distinct subtree sizes known so far; phase 3 uses its sister
		// counter to short-circuit, and tests read it host-side to check
		// that tree_sum accounted for every node exactly once. A lost
		// race rewrites nothing (the CAS fails on the identical value
		// already installed).
		if p.CAS(s.size.At(i), model.Empty, sum+1) {
			s.sumCtr.Add(p, 1)
		}
	} else {
		p.Write(s.size.At(i), sum+1)
	}
	return sum + 1
}

// descentState carries a worker's phase-3 early-exit bookkeeping: a
// visit budget between polls of the sharded place counter, and the
// latched "phase globally complete" verdict.
type descentState struct {
	visits int
	done   bool
}

// findPlace is find_place of Figure 6 with the bottom-up placeDone
// completion marker (see the package comment). sub is the number of
// elements smaller than i's entire subtree.
//
// st is nil outside the native fast path. When set, the worker installs
// places by CAS and counts distinct installs in a sharded counter;
// every 64 visits it aggregates the counter, and once all n places are
// installed it abandons the rest of its traversal. Pruning on placeDone
// alone cannot do this: the bottom-up marks appear long after the place
// values they summarize, so late workers redundantly re-walk subtrees
// whose output is already complete.
func (s *Sorter) findPlace(p model.Proc, i int, sub Word, d int, st *descentState) {
	if i == 0 || (st != nil && st.done) {
		return
	}
	if p.Read(s.placeDone.At(i)) != model.Empty {
		return
	}
	if st != nil {
		st.visits++
		if st.visits&63 == 0 && s.placeCtr.Sum(p) >= Word(s.n) {
			st.done = true
			return
		}
	}
	small := int(p.Read(s.child[Small].At(i)))
	big := int(p.Read(s.child[Big].At(i)))
	sm := model.SmallSubtreeSize(p, Word(small), s.size.At)
	if st != nil {
		if p.CAS(s.place.At(i), model.Empty, sm+sub+1) {
			s.placeCtr.Add(p, 1)
		}
	} else {
		p.Write(s.place.At(i), sm+sub+1)
	}
	if pidBit(p.ID(), d) == Small {
		s.findPlace(p, small, sub, d+1, st)
		s.findPlace(p, big, sub+sm+1, d+1, st)
	} else {
		s.findPlace(p, big, sub+sm+1, d+1, st)
		s.findPlace(p, small, sub, d+1, st)
	}
	if st != nil && st.done {
		// Every place word is installed (that is what done means), so
		// the bottom-up marks only exist to prune other workers — who
		// short-circuit through their own counter polls anyway. Skip
		// the write and unwind.
		return
	}
	p.Write(s.placeDone.At(i), model.Done)
}

// Places extracts the 1-based rank of every element after a run:
// Places(mem)[i-1] is element i's position in sorted order.
func (s *Sorter) Places(mem []Word) []int {
	ranks := make([]int, s.n)
	s.PlacesInto(mem, ranks)
	return ranks
}

// PlacesInto is Places without the allocation: it fills dst[i-1] with
// element i's rank for the first min(n, len(dst)) elements. The pooled
// serving layer (internal/pool) calls it with a context-owned scratch
// slice so steady-state sorts never allocate rank tables.
func (s *Sorter) PlacesInto(mem []Word, dst []int) {
	n := min(s.n, len(dst))
	for i := 1; i <= n; i++ {
		dst[i-1] = int(mem[s.place.At(i)])
	}
}

// Progress reports, host-side, how far a run got through phases 2 and
// 3: the number of elements whose subtree size is installed and the
// number whose rank is installed. After any completed run — faultless
// or not — both equal N; a partial count is the forensic trail of a run
// that lost every worker, which is what the chaos certifier reports
// when a fault schedule proves too aggressive.
func (s *Sorter) Progress(mem []Word) (sized, placed int) {
	return s.progressScan(mem, plainLoad)
}

// LiveProgress is Progress for a run still in flight: the same counts
// read with atomic loads, so the observability plane's /metrics
// endpoint can poll it from the host while workers write concurrently
// without a data race. The counts are momentary — phases 2 and 3
// install sizes and places monotonically, so successive polls are
// nondecreasing.
func (s *Sorter) LiveProgress(mem []Word) (sized, placed int) {
	return s.progressScan(mem, atomicLoad)
}

// progressScan is the one phase-2/3 progress loop, parameterized by
// load discipline: plain loads on quiescent memory (Progress), atomic
// loads while workers are in flight (LiveProgress).
func (s *Sorter) progressScan(mem []Word, load func(*Word) Word) (sized, placed int) {
	for i := 1; i <= s.n; i++ {
		if load(&mem[s.size.At(i)]) != model.Empty {
			sized++
		}
		if load(&mem[s.place.At(i)]) != model.Empty {
			placed++
		}
	}
	return sized, placed
}

func plainLoad(w *Word) Word  { return *w }
func atomicLoad(w *Word) Word { return atomic.LoadInt64(w) }

// Output extracts the shuffled result: Output(mem)[r] is the element id
// with rank r+1.
func (s *Sorter) Output(mem []Word) []int {
	ids := make([]int, s.n)
	for r := 0; r < s.n; r++ {
		ids[r] = int(mem[s.out.At(r)])
	}
	return ids
}

// Depth returns the depth of the built pivot tree (root = depth 1),
// measured host-side after a run; 0 for an empty tree. Experiment E12
// uses it to validate the O(log N) w.h.p. claim of Lemma 2.8.
func (s *Sorter) Depth(mem []Word) int {
	return s.depthFrom(mem, 1)
}

// DepthFrom returns the depth of the subtree rooted at element i,
// measured host-side after a run (the §3 sorter's root is a sample
// element rather than element 1).
func (s *Sorter) DepthFrom(mem []Word, i int) int {
	return s.depthFrom(mem, i)
}

func (s *Sorter) depthFrom(mem []Word, i int) int {
	if i == 0 {
		return 0
	}
	dS := s.depthFrom(mem, int(mem[s.child[Small].At(i)]))
	dB := s.depthFrom(mem, int(mem[s.child[Big].At(i)]))
	return 1 + max(dS, dB)
}

// Shared-memory address accessors, used by the §3 low-contention sort
// to drive the same element table with its own machinery.

// ChildAddr returns the address of element i's child pointer for side
// (Small or Big).
func (s *Sorter) ChildAddr(side, i int) int { return s.child[side].At(i) }

// KeyAddr returns the address of element i's key stand-in cell.
func (s *Sorter) KeyAddr(i int) int { return s.key.At(i) }

// SizeAddr returns the address of element i's subtree-size word.
func (s *Sorter) SizeAddr(i int) int { return s.size.At(i) }

// PlaceAddr returns the address of element i's rank word.
func (s *Sorter) PlaceAddr(i int) int { return s.place.At(i) }

// PlaceDoneAddr returns the address of element i's phase-3 completion
// mark.
func (s *Sorter) PlaceDoneAddr(i int) int { return s.placeDone.At(i) }

// PlaceDoneRegion returns the phase-3 completion-mark region itself.
// Callers that index the marks as a region (the §3.3 probing phases)
// must use this rather than reconstruct a region from PlaceDoneAddr(0):
// on padded arenas the region is not contiguous, so a synthesized dense
// region would disagree with the addresses the sorter itself uses.
func (s *Sorter) PlaceDoneRegion() model.Region { return s.placeDone }

// OutAddr returns the address of the rank-(r+1) output slot.
func (s *Sorter) OutAddr(r int) int { return s.out.At(r) }

// pidBit returns the bit that routes processor pid at depth d of the
// tree-sum / find-place traversals (Fig. 5/6 use "the d-th bit of
// PID"). For d < log2(P) this is the literal pid bit, exactly as the
// paper writes. Beyond that the pid runs out of bits — the paper
// assumes processors are alone by then, which holds for complete trees
// but not for the imbalanced subtrees of a random pivot tree, where
// whole groups of processors would then follow identical routes and
// duplicate each other's work (measured as Θ(N²) aggregate work at
// P = N). We therefore extend the bit sequence pseudo-randomly, mixing
// pid and d, so equal-prefix processors keep dividing the remaining
// work at every level. This only *extends* the paper's spreading idea
// to depths its analysis assumed unreachable.
func pidBit(pid, d int) int {
	if d < 62 && (pid>>uint(d)) != 0 {
		return (pid >> uint(d)) & 1
	}
	x := uint64(pid)*0x9e3779b97f4a7c15 + uint64(d)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	return int(x & 1)
}

// leafAddr returns the shared-memory address of a WAT node.
func leafAddr(w *wat.WAT, node int) int { return w.NodeAddr(node) }

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// CounterTotals reports the sharded counters' host-side aggregates
// after a run: randomized-allocation misses, distinct phase-2 size
// installs and distinct phase-3 place installs. All zero unless the
// sorter was built with Tuning.Shards > 0. After a completed tuned run
// the install counters must both equal N — the invariant the fast-path
// tests pin down.
func (s *Sorter) CounterTotals(mem []Word) (miss, sum, place Word) {
	return s.missCtr.HostSum(mem), s.sumCtr.HostSum(mem), s.placeCtr.HostSum(mem)
}

// Tuning returns the sorter's fast-path configuration.
func (s *Sorter) Tuning() Tuning { return s.tun }
