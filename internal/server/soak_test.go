package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsort"
)

// TestSoak hammers the full serving path — admission, batching, pooled
// contexts, resident teams — from concurrent clients while the fault
// plane kills and respawns workers inside every sort. Every 200 must
// carry a correctly sorted body (429/503/504 are legitimate
// backpressure), and when the clients stop, the server must drain
// cleanly.
//
// Short mode runs a few hundred requests; the full run goes for longer
// wall-clock and larger sizes. The test is run under -race in CI.
func TestSoak(t *testing.T) {
	duration := 10 * time.Second
	clients := 8
	maxN := 20_000
	if testing.Short() {
		duration = 1500 * time.Millisecond
		clients = 4
		maxN = 4_000
	}

	s, err := New(Config{
		Workers:     4,
		MaxInFlight: 32,
		BatchWindow: 2 * time.Millisecond,
		// Two kill+revive faults per worker per sort: the soak's point
		// is that this is invisible in the responses.
		Options: []wfsort.Option{wfsort.WithChurn(2), wfsort.WithSeed(42)},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ok, rejected, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			client := &http.Client{Timeout: 30 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Mix tiny (batched), medium (pooled) and large requests.
				var n int
				switch rng.Intn(4) {
				case 0:
					n = rng.Intn(64)
				case 1, 2:
					n = 100 + rng.Intn(2000)
				default:
					n = maxN/2 + rng.Intn(maxN/2)
				}
				keys := make([]int64, n)
				for i := range keys {
					keys[i] = int64(rng.Intn(500))
				}
				body, _ := json.Marshal(sortRequest{Keys: keys})
				resp, err := client.Post(ts.URL+"/sort", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
					var out sortResponse
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						failed.Add(1)
						t.Errorf("client %d: decode: %v", c, err)
						resp.Body.Close()
						return
					}
					resp.Body.Close()
					if len(out.Sorted) != n {
						failed.Add(1)
						t.Errorf("client %d: %d keys back for %d sent", c, len(out.Sorted), n)
						return
					}
					// Sorted and a permutation: count-compare both ways.
					counts := map[int64]int{}
					for _, k := range keys {
						counts[k]++
					}
					for i, k := range out.Sorted {
						if i > 0 && out.Sorted[i-1] > k {
							failed.Add(1)
							t.Errorf("client %d: unsorted at %d", c, i)
							return
						}
						counts[k]--
					}
					for k, cnt := range counts {
						if cnt != 0 {
							failed.Add(1)
							t.Errorf("client %d: key %d multiplicity off by %d", c, k, cnt)
							return
						}
					}
					ok.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusGatewayTimeout:
					// All three are documented backpressure. 504 in
					// particular is the cancellation path working: under
					// the race detector on a small host, 32 admitted
					// requests sharing the CPU can push a large sort past
					// its deadline, and the server must abort it cleanly
					// rather than wedge — which is exactly what a 504 is.
					resp.Body.Close()
					rejected.Add(1)
				default:
					resp.Body.Close()
					failed.Add(1)
					t.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("soak produced no successful sorts")
	}
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed", failed.Load())
	}

	// Drain must complete with the fleet quiet.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	st := s.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in_flight = %d after drain", st.InFlight)
	}
	t.Logf("soak: %d ok, %d backpressured, pool %+v", ok.Load(), rejected.Load(), s.PoolStats())
}
