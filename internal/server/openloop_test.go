package server

import (
	"context"
	"testing"
	"time"

	"wfsort"
	"wfsort/internal/loadgen"
)

// TestOpenLoopSoak drives the full serving path with the open-loop
// workload engine — mixed traffic classes, a mid-run burst, worker
// churn inside every sort — entirely in-process, so the whole run is
// race-detector-clean. The engine verifies every 200 body (sorted +
// same multiset); the test then asserts zero corrupt responses, a
// bounded shed rate, and that the server's per-class counters agree
// exactly with the client-side ledger — the two sides observed the
// same requests, classified the same way.
func TestOpenLoopSoak(t *testing.T) {
	horizon := 5000.0
	if testing.Short() {
		horizon = 1200
	}
	spec := &loadgen.Spec{
		Seed:      99,
		HorizonMs: horizon,
		Classes: []loadgen.ClassSpec{
			{
				Name:     "small",
				Arrival:  loadgen.ArrivalSpec{Dist: loadgen.DistPoisson, Rate: 60},
				Size:     loadgen.SizeSpec{Dist: loadgen.SizeFixed, N: 64},
				KeySpace: 16, // heavy duplicates: the stability/batching regime
				Clients:  4,
			},
			{
				Name:    "bulk",
				Arrival: loadgen.ArrivalSpec{Dist: loadgen.DistGamma, Rate: 10, Shape: 0.5},
				Size:    loadgen.SizeSpec{Dist: loadgen.SizeUniform, Min: 512, Max: 4096},
				Clients: 2,
			},
		},
		// A 2x burst through the middle fifth: admission control must
		// shed, not corrupt.
		Bursts: []loadgen.BurstSpec{{StartMs: horizon / 2, DurMs: horizon / 5, Mult: 2}},
	}
	tr, err := loadgen.BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{
		Workers:     4,
		MaxInFlight: 64,
		BatchWindow: 2 * time.Millisecond,
		Options:     []wfsort.Option{wfsort.WithChurn(2), wfsort.WithSeed(7)},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep := loadgen.BuildReport(loadgen.Run(context.Background(),
		tr, &loadgen.HandlerTarget{Handler: s.Handler()}))

	if rep.Totals.Unsorted != 0 {
		t.Fatalf("%d corrupt (unsorted/wrong-multiset) responses", rep.Totals.Unsorted)
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("%d hard errors: %+v", rep.Totals.Errors, rep.Totals)
	}
	if rep.Totals.OK == 0 {
		t.Fatal("soak produced no successful sorts")
	}
	// Backpressure (429/503/504) is legitimate under the burst, but the
	// server must still do most of the work at these rates.
	sheds := rep.Totals.Shed + rep.Totals.Deadline
	if frac := float64(sheds) / float64(rep.Totals.Requests); frac > 0.5 {
		t.Fatalf("shed+deadline fraction %.2f exceeds 0.5 (%d of %d)",
			frac, sheds, rep.Totals.Requests)
	}

	// The serving-side per-class counters must match the client-side
	// ledger request for request: same totals, same outcome split. This
	// is the instrumentation seam the capacity gate trusts.
	snap := s.Classes().Snapshot()
	for _, c := range rep.Classes {
		got, ok := snap[c.Name]
		if !ok {
			t.Fatalf("server counters missing class %q (have %v)", c.Name, snap)
		}
		if got.Requests != int64(c.Requests) || got.OK != int64(c.OK) ||
			got.Shed != int64(c.Shed) || got.Canceled != int64(c.Deadline) ||
			got.Errors != int64(c.Errors) {
			t.Fatalf("class %q: server counters %+v disagree with client ledger %+v",
				c.Name, got, c)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	t.Logf("open-loop soak: %s", rep.Table())
}
