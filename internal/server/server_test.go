package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"wfsort"
	"wfsort/internal/obs"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postSort(t *testing.T, url string, keys []int64) (*http.Response, sortResponse) {
	t.Helper()
	body, _ := json.Marshal(sortRequest{Keys: keys})
	resp, err := http.Post(url+"/sort", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out sortResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func checkSortedKeys(t *testing.T, got, sent []int64) {
	t.Helper()
	want := append([]int64(nil), sent...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("response has %d keys, sent %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("key %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func randKeys(rng *rand.Rand, n int) []int64 {
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
	}
	return keys
}

// TestServerSort covers the direct (large) and batched (small) sort
// paths end to end over HTTP.
func TestServerSort(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(1))

	large := randKeys(rng, 5000)
	resp, out := postSort(t, ts.URL, large)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("large sort: status %d", resp.StatusCode)
	}
	if out.Batched {
		t.Fatal("large request should not be batched")
	}
	checkSortedKeys(t, out.Sorted, large)

	small := randKeys(rng, 20)
	resp, out = postSort(t, ts.URL, small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small sort: status %d", resp.StatusCode)
	}
	if !out.Batched {
		t.Fatal("small request should ride the batcher")
	}
	checkSortedKeys(t, out.Sorted, small)

	// Degenerate bodies the service must absorb.
	for _, keys := range [][]int64{nil, {}, {42}, {5, 5, 5, 5}} {
		resp, out := postSort(t, ts.URL, keys)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keys=%v: status %d", keys, resp.StatusCode)
		}
		checkSortedKeys(t, out.Sorted, keys)
	}
}

// TestServerPipelined serves concurrent traffic through the
// phase-pipelined crew (Config.PipelineDepth) and checks every
// response — the serving path the pipeline was built for.
func TestServerPipelined(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, PipelineDepth: 2})
	rng := rand.New(rand.NewSource(17))

	inputs := make([][]int64, 12)
	for i := range inputs {
		inputs[i] = randKeys(rng, 300+400*i)
	}
	var wg sync.WaitGroup
	fails := make([]string, len(inputs))
	for i, keys := range inputs {
		wg.Add(1)
		go func(i int, keys []int64) {
			defer wg.Done()
			resp, out := postSort(t, ts.URL, keys)
			if resp.StatusCode != http.StatusOK {
				fails[i] = fmt.Sprintf("status %d", resp.StatusCode)
				return
			}
			want := append([]int64(nil), keys...)
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			for j := range out.Sorted {
				if out.Sorted[j] != want[j] {
					fails[i] = fmt.Sprintf("key %d: got %d want %d", j, out.Sorted[j], want[j])
					return
				}
			}
		}(i, keys)
	}
	wg.Wait()
	for i, f := range fails {
		if f != "" {
			t.Fatalf("request %d (n=%d): %s", i, len(inputs[i]), f)
		}
	}
}

// TestServerBatchCoalescing fires a burst of small requests and checks
// they were merged into fewer sorts than requests.
func TestServerBatchCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchWindow: 5 * time.Millisecond})
	rng := rand.New(rand.NewSource(2))
	const clients = 16
	var wg sync.WaitGroup
	sent := make([][]int64, clients)
	got := make([][]int64, clients)
	for i := 0; i < clients; i++ {
		sent[i] = randKeys(rng, 10+rng.Intn(50))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postSort(t, ts.URL, sent[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			got[i] = out.Sorted
		}(i)
	}
	wg.Wait()
	for i := range sent {
		checkSortedKeys(t, got[i], sent[i])
	}
	st := s.Stats()
	if st.Batches >= st.Batched {
		t.Fatalf("batches=%d for %d batched requests — nothing coalesced", st.Batches, st.Batched)
	}
}

// TestServerAdmission: with every token held, /sort answers 429.
func TestServerAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, _ := postSort(t, ts.URL, []int64{3, 1, 2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	<-s.sem
	<-s.sem
	if resp, _ := postSort(t, ts.URL, []int64{3, 1, 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d", resp.StatusCode)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", s.Stats().Rejected)
	}
}

// TestServerTooLarge: requests beyond MaxKeys answer 413.
func TestServerTooLarge(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxKeys: 100})
	resp, _ := postSort(t, ts.URL, make([]int64, 101))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if s.Stats().TooLarge != 1 {
		t.Fatalf("too_large = %d, want 1", s.Stats().TooLarge)
	}
}

// TestServerBadJSON: malformed bodies answer 400 without touching the
// sort machinery.
func TestServerBadJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{"", "{", `{"keys": "zap"}`, `[1,2,3`} {
		resp, err := http.Post(ts.URL+"/sort", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServerDeadline: a request whose deadline passes while queued
// answers 504 and counts as canceled.
func TestServerDeadline(t *testing.T) {
	// Batching disabled and a timeout so small nothing finishes in it.
	s, _ := newTestServer(t, Config{Timeout: time.Nanosecond, BatchMaxKeys: -1})
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(sortRequest{Keys: randKeys(rand.New(rand.NewSource(3)), 5000)})
	req := httptest.NewRequest(http.MethodPost, "/sort", bytes.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if s.Stats().Canceled != 1 {
		t.Fatalf("canceled = %d, want 1", s.Stats().Canceled)
	}
}

// TestServerObservability exercises /healthz, /metrics and /requests.
func TestServerObservability(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3; i++ {
		if resp, _ := postSort(t, ts.URL, randKeys(rng, 2000)); resp.StatusCode != http.StatusOK {
			t.Fatalf("sort %d failed", i)
		}
	}

	_ = s.Spans() // accessor compiles and is non-nil for sortd
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz: status %d body %v", resp.StatusCode, health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Server Stats            `json:"server"`
		Pool   wfsort.PoolStats `json:"pool"`
	}
	json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if metrics.Server.Requests != 3 {
		t.Fatalf("metrics requests = %d, want 3", metrics.Server.Requests)
	}
	if metrics.Pool.Gets == 0 {
		t.Fatal("metrics show no pool traffic")
	}

	resp, err = http.Get(ts.URL + "/requests?n=2")
	if err != nil {
		t.Fatal(err)
	}
	var spans []obs.Span
	json.NewDecoder(resp.Body).Decode(&spans)
	resp.Body.Close()
	if len(spans) != 2 {
		t.Fatalf("/requests returned %d spans, want 2", len(spans))
	}
	if spans[0].Outcome != "ok" || spans[0].N == 0 {
		t.Fatalf("span looks wrong: %+v", spans[0])
	}

	resp, err = http.Get(ts.URL + "/obs/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/obs/debug/vars: status %d", resp.StatusCode)
	}
}

// TestServerDrain: Shutdown answers later requests 503, completes with
// nothing in flight, and health reports draining.
func TestServerDrain(t *testing.T) {
	cfg := Config{Workers: 2}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, _ := postSort(t, ts.URL, []int64{2, 1, 3}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain sort: status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, _ := postSort(t, ts.URL, []int64{2, 1, 3})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain: status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain healthz: status %d, want 503", resp.StatusCode)
	}
}

// TestServerFaultOptions runs the service over a churn-injected pool:
// every sort survives kills and respawns invisibly.
func TestServerFaultOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 4,
		Options: []wfsort.Option{wfsort.WithChurn(1)},
	})
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		keys := randKeys(rng, 1000)
		resp, out := postSort(t, ts.URL, keys)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("churned sort %d: status %d", i, resp.StatusCode)
		}
		checkSortedKeys(t, out.Sorted, keys)
	}
}

// TestServerStability: equal keys from distinct batched requests come
// back to their own requests (the stability demux property stated on
// the kv type).
func TestServerStability(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchWindow: 5 * time.Millisecond})
	var wg sync.WaitGroup
	const clients = 8
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Every client sends the same keys; each must get exactly
			// its own multiset back, sorted.
			keys := []int64{5, 3, 5, 1, 3, 5}
			resp, out := postSort(t, ts.URL, keys)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			want := []int64{1, 3, 3, 5, 5, 5}
			for j := range want {
				if out.Sorted[j] != want[j] {
					errs[i] = fmt.Errorf("got %v", out.Sorted)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}
