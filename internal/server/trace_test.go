package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wfsort/internal/obs"
	"wfsort/internal/qos"
)

// postSortTraced posts keys with an X-Trace-Id (and optional class)
// and returns the response plus the echoed trace ID.
func postSortTraced(t *testing.T, url, traceID, class string, keys []int64) (*http.Response, string) {
	t.Helper()
	body, _ := json.Marshal(sortRequest{Keys: keys})
	req, err := http.NewRequest(http.MethodPost, url+"/sort", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	if class != "" {
		req.Header.Set("X-Sort-Class", class)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp, resp.Header.Get("X-Trace-Id")
}

// getTrace fetches /trace/{id} and decodes the span.
func getTrace(t *testing.T, url, id string) (obs.Span, int) {
	t.Helper()
	resp, err := http.Get(url + "/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sp obs.Span
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sp); err != nil {
			t.Fatal(err)
		}
	}
	return sp, resp.StatusCode
}

func getRequests(t *testing.T, url, query string) []obs.Span {
	t.Helper()
	resp, err := http.Get(url + "/requests" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []obs.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	return spans
}

// checkStagePartition asserts the span's stages sum to its wall
// duration within 5% — the property that makes the attribution a
// partition rather than a collection of overlapping timers.
func checkStagePartition(t *testing.T, sp obs.Span) {
	t.Helper()
	if len(sp.Stages) == 0 {
		t.Fatalf("span %q has no stages", sp.Trace)
	}
	var sum int64
	for _, st := range sp.Stages {
		if st.DurNs < 0 {
			t.Fatalf("stage %s has negative duration %d", st.Name, st.DurNs)
		}
		sum += st.DurNs
	}
	wall := sp.Duration.Nanoseconds()
	diff := wall - sum
	if diff < 0 {
		diff = -diff
	}
	if wall > 0 && float64(diff)/float64(wall) > 0.05 {
		t.Fatalf("stage sum %dns vs wall %dns: off by %.1f%% (stages %+v)",
			sum, wall, 100*float64(diff)/float64(wall), sp.Stages)
	}
}

// TestTraceEchoAndStagePartition: a client-supplied trace ID is echoed
// and resolvable at /trace/{id}, and the span's stages partition its
// wall time on both the direct and batched paths.
func TestTraceEchoAndStagePartition(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(5))

	large := randKeys(rng, 20000)
	resp, echoed := postSortTraced(t, ts.URL, "cli-abc.1", "", large)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if echoed != "cli-abc.1" {
		t.Fatalf("echoed trace %q, want cli-abc.1", echoed)
	}
	sp, code := getTrace(t, ts.URL, "cli-abc.1")
	if code != http.StatusOK {
		t.Fatalf("/trace: status %d", code)
	}
	if sp.Trace != "cli-abc.1" || sp.Outcome != "ok" || sp.N != 20000 {
		t.Fatalf("span = %+v", sp)
	}
	checkStagePartition(t, sp)
	for _, want := range []string{"admit", "sem", "decode", "queue", "sort", "encode"} {
		found := false
		for _, st := range sp.Stages {
			if st.Name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("direct span missing stage %q: %+v", want, sp.Stages)
		}
	}
	if sp.StageDur("sort") <= 0 {
		t.Fatalf("sort stage empty: %+v", sp.Stages)
	}

	small := randKeys(rng, 30)
	resp, _ = postSortTraced(t, ts.URL, "cli-batched", "", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batched: status %d", resp.StatusCode)
	}
	bsp, code := getTrace(t, ts.URL, "cli-batched")
	if code != http.StatusOK {
		t.Fatalf("/trace batched: status %d", code)
	}
	if bsp.Batched != 1 {
		t.Fatalf("batched span = %+v", bsp)
	}
	checkStagePartition(t, bsp)
	if bsp.StageDur("batch") == 0 && bsp.StageDur("queue") == 0 && bsp.StageDur("sort") == 0 {
		t.Fatalf("batched span has no batch/queue/sort attribution: %+v", bsp.Stages)
	}

	// The slowest request must have landed in the class's exemplars
	// with its stages intact.
	ex := s.Classes().Get("default").Exemplars.Snapshot()
	if len(ex) == 0 {
		t.Fatal("no exemplars retained")
	}
	checkStagePartition(t, ex[0])
}

// TestTraceMinted: without (or with an invalid) client header the
// server mints a syntactically valid ID and the round trip still works.
func TestTraceMinted(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, minted := postSortTraced(t, ts.URL, "", "", []int64{3, 1, 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if minted == "" {
		t.Fatal("no X-Trace-Id echoed on a header-less request")
	}
	if sp, code := getTrace(t, ts.URL, minted); code != http.StatusOK || sp.Trace != minted {
		t.Fatalf("/trace/%s: code %d span %+v", minted, code, sp)
	}

	// A hostile ID (embedded space) is replaced, not echoed.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/sort", strings.NewReader(`{"keys":[2,1]}`))
	req.Header.Set("X-Trace-Id", "bad id")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Trace-Id"); got == "bad id" || got == "" {
		t.Fatalf("invalid trace ID handling: echoed %q", got)
	}

	if _, code := getTrace(t, ts.URL, "never-seen"); code != http.StatusNotFound {
		t.Fatalf("/trace on unknown ID: status %d, want 404", code)
	}
}

// TestRejectionSpansAndRequestFilters: both 429 families — semaphore
// and QoS bucket — record shed spans with their stage prefix, and the
// /requests class/outcome filters carve the log correctly.
func TestRejectionSpansAndRequestFilters(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 2})
	keys := []int64{5, 2, 9}
	if resp, _ := postSortTraced(t, ts.URL, "", "gold", keys); resp.StatusCode != http.StatusOK {
		t.Fatalf("gold request: status %d", resp.StatusCode)
	}
	if resp, _ := postSortTraced(t, ts.URL, "", "dirt", keys); resp.StatusCode != http.StatusOK {
		t.Fatalf("dirt request: status %d", resp.StatusCode)
	}
	// Saturate the semaphore so the next request sheds.
	s.sem <- struct{}{}
	s.sem <- struct{}{}
	resp, _ := postSortTraced(t, ts.URL, "sem-shed-1", "gold", keys)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated: status %d, want 429", resp.StatusCode)
	}
	<-s.sem
	<-s.sem

	shed := getRequests(t, ts.URL, "?outcome=shed")
	if len(shed) != 1 || shed[0].Trace != "sem-shed-1" || shed[0].Class != "gold" {
		t.Fatalf("shed spans = %+v", shed)
	}
	// The rejection span carries the stage prefix it crossed: admit
	// then the semaphore wait it lost.
	if shed[0].StageDur("sem") == 0 && shed[0].StageDur("admit") == 0 {
		t.Fatalf("shed span has no admission stages: %+v", shed[0].Stages)
	}
	gold := getRequests(t, ts.URL, "?class=gold")
	if len(gold) != 2 {
		t.Fatalf("gold spans = %d, want 2 (ok + shed)", len(gold))
	}
	goldOK := getRequests(t, ts.URL, "?class=gold&outcome=ok")
	if len(goldOK) != 1 || goldOK[0].Outcome != "ok" {
		t.Fatalf("gold ok spans = %+v", goldOK)
	}

	// Bucket-429: a one-token class sheds its second request from the
	// admission stage, before the semaphore.
	s2, ts2 := newTestServer(t, Config{
		BatchMaxKeys: -1,
		QoS:          &qos.Config{Classes: []qos.ClassQoS{{Name: "default", Rate: 0.1, Burst: 1}}},
	})
	if resp, _ := postSortTraced(t, ts2.URL, "", "", keys); resp.StatusCode != http.StatusOK {
		t.Fatalf("bucket: first request status %d", resp.StatusCode)
	}
	resp, _ = postSortTraced(t, ts2.URL, "bucket-shed-1", "", keys)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("bucket-empty request: status %d, want 429", resp.StatusCode)
	}
	bshed := getRequests(t, ts2.URL, "?outcome=shed")
	if len(bshed) != 1 || bshed[0].Trace != "bucket-shed-1" {
		t.Fatalf("bucket shed spans = %+v", bshed)
	}
	if len(bshed[0].Stages) == 0 || bshed[0].Stages[0].Name != "admit" {
		t.Fatalf("bucket shed span stages = %+v", bshed[0].Stages)
	}
	_ = s2
}

// TestBurnPagesAndFlightDump is the seeded overload replay: with a
// floor-level SLO every served request burns budget, the monitor pages
// within the shrunken windows, /healthz says so, and exactly one
// flight dump (rate-limited by FlightGap) lands with spans, exemplars,
// burn state, metrics and the Perfetto companion.
func TestBurnPagesAndFlightDump(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		SLO:        time.Nanosecond,
		BurnShort:  200 * time.Millisecond,
		BurnLong:   400 * time.Millisecond,
		BurnMinBad: 5,
		FlightDir:  dir,
		FlightGap:  time.Hour,
	})
	for i := 0; i < 20; i++ {
		resp, _ := postSort(t, ts.URL, []int64{3, 1, 2})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if !s.Burn().Paging() {
		t.Fatal("burn monitor not paging after the overload replay")
	}
	var hz map[string]any
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if paging, _ := hz["slo_paging"].(bool); !paging {
		t.Fatalf("/healthz slo_paging = %v, want true (%v)", hz["slo_paging"], hz)
	}

	dumps, err := filepath.Glob(filepath.Join(dir, "flight-slo-burn-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Filter the perfetto companions out of the record glob.
	records := dumps[:0]
	for _, d := range dumps {
		if !strings.HasSuffix(d, ".perfetto.json") {
			records = append(records, d)
		}
	}
	if len(records) != 1 {
		t.Fatalf("flight records = %v, want exactly 1 (FlightGap must rate-limit)", records)
	}
	data, err := os.ReadFile(records[0])
	if err != nil {
		t.Fatal(err)
	}
	var rec obs.FlightRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Reason != "slo-burn" || len(rec.Spans) == 0 || rec.Burn == nil || len(rec.Metrics) == 0 {
		t.Fatalf("flight record incomplete: reason=%q spans=%d burn=%v metrics=%dB",
			rec.Reason, len(rec.Spans), rec.Burn != nil, len(rec.Metrics))
	}
	if !rec.Burn.Paging {
		t.Fatal("flight record snapshotted a non-paging burn state")
	}
	perfetto := strings.TrimSuffix(records[0], ".json") + ".perfetto.json"
	if _, err := os.Stat(perfetto); err != nil {
		t.Fatalf("perfetto companion missing: %v", err)
	}
	if s.Flight().Wrote() != 1 {
		t.Fatalf("flight wrote = %d, want 1", s.Flight().Wrote())
	}
}

// TestBurnSilentOnFaultlessRun: a healthy run under a generous SLO
// never pages and never dumps.
func TestBurnSilentOnFaultlessRun(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{SLO: 10 * time.Second, FlightDir: dir})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		resp, out := postSort(t, ts.URL, randKeys(rng, 40))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if len(out.Sorted) != 40 {
			t.Fatalf("request %d: %d keys back", i, len(out.Sorted))
		}
	}
	if s.Burn().Paging() {
		t.Fatal("burn monitor paging on a faultless run")
	}
	if snap := s.Burn().Snapshot(); snap.Pages != 0 || snap.Bad != 0 {
		t.Fatalf("burn snapshot on faultless run: %+v", snap)
	}
	if files, _ := os.ReadDir(dir); len(files) != 0 {
		t.Fatalf("flight dir not empty on a faultless run: %v", files)
	}
}

// TestMetricsPromFormat: ?format=prom renders the scrape surface.
func TestMetricsPromFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{SLO: 10 * time.Second, FlightDir: t.TempDir()})
	rng := rand.New(rand.NewSource(2))
	postSort(t, ts.URL, randKeys(rng, 2000))
	postSort(t, ts.URL, randKeys(rng, 20))

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := buf.String()
	for _, want := range []string{
		"# TYPE wfsort_requests_total counter",
		"wfsort_requests_total 2",
		`wfsort_class_requests_total{class="default"} 2`,
		`wfsort_stage_seconds_bucket{le="+Inf",stage="sort"}`,
		"wfsort_slo_paging 0",
		"wfsort_flight_dumps_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

// TestTraceOff: the comparator knob really turns the plane off — no
// trace header, no stages — while requests still serve and span
// accounting (outcomes) survives for the ops surface.
func TestTraceOff(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceOff: true})
	rng := rand.New(rand.NewSource(3))
	keys := randKeys(rng, 2000)
	resp, echoed := postSortTraced(t, ts.URL, "cli-1", "", keys)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if echoed != "" {
		t.Fatalf("TraceOff still echoed trace %q", echoed)
	}
	spans := getRequests(t, ts.URL, "")
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Trace != "" || len(spans[0].Stages) != 0 {
		t.Fatalf("TraceOff span still instrumented: %+v", spans[0])
	}
	if spans[0].Outcome != "ok" {
		t.Fatalf("outcome = %q", spans[0].Outcome)
	}
}

// TestStageHistogramsAccumulate: the server-wide stage summaries in
// /metrics cover each lifecycle stage that actually ran.
func TestStageHistogramsAccumulate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5; i++ {
		postSort(t, ts.URL, randKeys(rng, 3000))
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Stages map[string]struct {
			Count  int64   `json:"count"`
			P99Ms  float64 `json:"p99_ms"`
			MeanMs float64 `json:"mean_ms"`
		} `json:"stages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"admit", "sem", "decode", "queue", "sort", "encode"} {
		st, ok := m.Stages[stage]
		if !ok {
			t.Fatalf("stage %q missing from /metrics (have %v)", stage, m.Stages)
		}
		if st.Count != 5 {
			t.Fatalf("stage %q count = %d, want 5", stage, st.Count)
		}
	}
	if m.Stages["sort"].MeanMs <= 0 {
		t.Fatalf("sort stage mean = %v", m.Stages["sort"].MeanMs)
	}
}
