// Package server is the reusable sort service: an HTTP front end over
// the pooled wfsort.Sorter with bounded admission, small-request
// batching, per-request deadlines and graceful drain. cmd/sortd is the
// thin binary around it; the package exists so the whole serving path
// is testable in-process.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wfsort"
	"wfsort/internal/obs"
	"wfsort/internal/qos"
	"wfsort/internal/sizeclass"
	"wfsort/internal/wire"
)

// kv is the element the service sorts: a key plus the batch slot its
// request occupies. Ordering consults only the key, so a batch sort —
// stable, with each request's keys appearing in input order — hands
// every request back its own keys sorted.
type kv struct {
	k int64
	r int32
}

// Config sizes the service; zero values take the defaults noted.
type Config struct {
	// Workers is the sort parallelism per pooled team (default
	// GOMAXPROCS, via wfsort).
	Workers int
	// Options is appended to the pool configuration — variant, layout,
	// seed, fault planes (WithChurn/WithCrashes for soak and E22 runs).
	Options []wfsort.Option
	// PipelineDepth > 0 routes the pool's queued sorts through one
	// resident phase-pipelined crew of that depth (wfsort.WithPipeline)
	// instead of per-sort serial teams. 0 keeps serial teams.
	PipelineDepth int
	// MaxInFlight bounds admitted requests; excess get 429 (default 64).
	MaxInFlight int
	// MaxKeys rejects larger requests with 413 (default 1<<20).
	MaxKeys int
	// BatchMaxKeys routes requests of at most this many keys through
	// the batcher (default 256; 0 keeps the default, negative disables
	// batching).
	BatchMaxKeys int
	// BatchWindow is how long a batch waits for company after its first
	// request (default 500µs).
	BatchWindow time.Duration
	// BatchLimit flushes a batch once it holds this many keys (default
	// 4096).
	BatchLimit int
	// Timeout is the per-request deadline (default 5s).
	Timeout time.Duration
	// StuckAfter is the serving watchdog threshold: /healthz degrades
	// when the oldest in-flight request exceeds it (default 30s).
	StuckAfter time.Duration
	// SpanDepth sizes the /requests ring (default 256).
	SpanDepth int
	// ClassLimit caps how many distinct traffic classes (the
	// X-Sort-Class request header) get their own counter set before
	// newcomers fold into "other" (default 32).
	ClassLimit int
	// QoS enables the quality-of-service plane: per-class token-bucket
	// admission replaces the flat semaphore's verdicts (the semaphore
	// stays as a memory backstop), the pipeline queue is ordered by
	// priority with aging and deadline shedding, and unknown classes
	// are rejected with 400. Requests then select a class with
	// X-Sort-Class (missing header means "default", which must be
	// configured). Implies a pipelined pool: PipelineDepth 0 becomes
	// 64.
	QoS *qos.Config
	// SLO, when > 0, is the p99 latency objective the burn-rate monitor
	// watches: requests slower than this (or failed outright) burn the
	// error budget, and sustained burn over both windows pages — see
	// obs.Burn. 0 disables the monitor.
	SLO time.Duration
	// BurnShort/BurnLong override the monitor's 5m/1h windows (tests).
	BurnShort, BurnLong time.Duration
	// BurnMinBad overrides the monitor's minimum bad count before a
	// page may fire (tests).
	BurnMinBad int64
	// FlightDir, when set, arms the flight recorder: on an SLO page or
	// a watchdog stuck verdict, one atomic dump (spans + exemplars +
	// burn state + metrics + Perfetto trace) lands here, rate-limited
	// to one per FlightGap.
	FlightDir string
	// FlightGap is the minimum spacing between flight dumps (default
	// 1m).
	FlightGap time.Duration
	// TraceOff disables the request trace plane — trace IDs, stage
	// clocks, exemplar offers, per-stage histograms — leaving only the
	// pre-trace span log. It exists for the benchgate overhead A/B; a
	// production server keeps tracing on.
	TraceOff bool
}

func (c *Config) fill() {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	c.MaxKeys = sizeclass.Limit(c.MaxKeys, sizeclass.DefaultMaxKeys)
	if c.BatchMaxKeys == 0 {
		c.BatchMaxKeys = 256
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 500 * time.Microsecond
	}
	if c.BatchLimit == 0 {
		c.BatchLimit = 4096
	}
	if c.Timeout == 0 {
		c.Timeout = 5 * time.Second
	}
	if c.StuckAfter == 0 {
		c.StuckAfter = 30 * time.Second
	}
	if c.QoS != nil && c.PipelineDepth == 0 {
		// The scheduler lives on the pipeline's pending queue; without a
		// crew there is nothing to order.
		c.PipelineDepth = 64
	}
}

// Stats is the service's cumulative counter snapshot.
type Stats struct {
	Requests   int64 `json:"requests"`
	Shards     int64 `json:"shard_requests"`
	ShardOK    int64 `json:"shard_ok"`
	Batched    int64 `json:"batched"`
	Batches    int64 `json:"batches"`
	Rejected   int64 `json:"rejected_429"`
	TooLarge   int64 `json:"rejected_413"`
	Draining   int64 `json:"rejected_503"`
	Canceled   int64 `json:"canceled"`
	Errors     int64 `json:"errors"`
	InFlight   int64 `json:"in_flight"`
	OldestMs   int64 `json:"oldest_in_flight_ms"`
	Stuck      bool  `json:"stuck"`
	DrainingOn bool  `json:"draining"`
}

type batchEntry struct {
	keys []int64
	prio int
	done chan batchResult
}

type batchResult struct {
	sorted []int64
	err    error
	// Stage attribution for member requests' spans: when the flusher
	// ran (flushStart non-zero), the merged sort's queue wait and crew
	// wall plus its per-phase splits. A member abandoned by its
	// deadline before the flush sees the zero value.
	flushStart time.Time
	queueNs    int64
	sortWallNs int64
	phases     []obs.Stage
}

// Server is one sort service instance.
type Server struct {
	cfg     Config
	pool    *wfsort.Pool
	sorter  *wfsort.KeyedSorter[kv]
	direct  *wfsort.KeyedSorter[int64]
	spans   *obs.SpanLog
	classes *obs.ClassSet
	plane   *qos.Plane          // nil unless cfg.QoS is set
	burn    *obs.Burn           // nil unless cfg.SLO is set
	flight  *obs.FlightRecorder // nil unless cfg.FlightDir is set

	sem     chan struct{}   // admission tokens
	batchCh chan batchEntry // batcher inbox; capacity doubles as its queue bound
	flusher sync.WaitGroup

	reqID    atomic.Uint64
	traceSeq atomic.Uint64
	draining atomic.Bool
	inflight sync.WaitGroup

	// stageHists are server-wide per-stage latency records, indexed by
	// stageNames; flightBusy collapses concurrent flight-dump triggers
	// (and breaks the dump -> metrics -> watchdog -> dump recursion).
	stageHists [len(stageNames)]obs.AtomicHist
	flightBusy atomic.Bool

	requests, batched, batches    atomic.Int64
	rejected, tooLarge, drained   atomic.Int64
	canceled, errCount, inflightN atomic.Int64
	shardReqs, shardOK            atomic.Int64
	latBuckets                    [len(latBounds) + 1]atomic.Int64
	startMu                       sync.Mutex
	starts                        map[uint64]time.Time
}

// latBounds are the latency histogram upper bounds.
var latBounds = [...]time.Duration{
	time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond,
	100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second,
}

// New builds a service and its backing pool.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	classes := obs.NewClassSet(cfg.ClassLimit)
	opts := cfg.Options
	if cfg.Workers > 0 {
		opts = append([]wfsort.Option{wfsort.WithWorkers(cfg.Workers)}, opts...)
	}
	if cfg.PipelineDepth > 0 {
		opts = append(opts, wfsort.WithPipeline(cfg.PipelineDepth))
	}
	var plane *qos.Plane
	if cfg.QoS != nil {
		if err := cfg.QoS.Validate(); err != nil {
			return nil, fmt.Errorf("server: qos config: %w", err)
		}
		plane = qos.NewPlane(cfg.QoS)
		opts = append(opts, wfsort.WithQueuePolicy(qos.NewSched(cfg.QoS, classObserver{classes})))
	}
	pool, err := wfsort.NewPool(opts...)
	if err != nil {
		return nil, err
	}
	// Both sorters ride the keyed zero-copy path (stable, so the batch
	// demux by slot still works) and share one pool: the batcher sorts
	// kv pairs, the direct path sorts the request's keys in place with
	// no boxing at all.
	sorter, err := wfsort.NewKeyedSorter(func(e kv) uint64 { return wfsort.Int64Key(e.k) }, wfsort.WithPool(pool))
	if err != nil {
		pool.Close()
		return nil, err
	}
	direct, err := wfsort.NewKeyedSorter(wfsort.Int64Key, wfsort.WithPool(pool))
	if err != nil {
		pool.Close()
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		pool:    pool,
		sorter:  sorter,
		direct:  direct,
		spans:   obs.NewSpanLog(cfg.SpanDepth),
		classes: classes,
		plane:   plane,
		burn: obs.NewBurn(obs.BurnConfig{
			SLO:    cfg.SLO,
			Short:  cfg.BurnShort,
			Long:   cfg.BurnLong,
			MinBad: cfg.BurnMinBad,
		}),
		flight:  obs.NewFlightRecorder(cfg.FlightDir, cfg.FlightGap),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		batchCh: make(chan batchEntry, cfg.MaxInFlight),
		starts:  make(map[uint64]time.Time),
	}
	if cfg.BatchMaxKeys > 0 {
		s.flusher.Add(1)
		go s.runFlusher()
	}
	return s, nil
}

// Handler returns the service's full mux:
//
//	POST /sort       — {"keys":[...]} -> {"sorted":[...]}
//	POST /shard      — the cluster tier's shard surface: same request,
//	                   never batched, reply carries the sorted keys'
//	                   sum/xor ledger for the coordinator's cross-check
//	GET  /healthz    — liveness, drain state, watchdog + SLO verdicts
//	GET  /metrics    — Stats + pool counters + latency histograms
//	                   (?format=prom for Prometheus text exposition)
//	GET  /requests   — recent request spans, newest first
//	                   (?class= and ?outcome= filter)
//	GET  /trace/{id} — one request's span by trace ID
//	     /obs/       — the internal/obs live surface (expvar, pprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sort", s.handleSort)
	mux.HandleFunc("POST /shard", s.handleShard)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /requests", s.handleRequests)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.Handle("/obs/", http.StripPrefix("/obs", obs.Handler()))
	return mux
}

type sortRequest struct {
	Keys []int64 `json:"keys"`
}

type sortResponse struct {
	Sorted  []int64 `json:"sorted"`
	N       int     `json:"n"`
	Batched bool    `json:"batched,omitempty"`
}

// shardResponse is the /shard reply: the sorted keys plus their
// sum/xor multiset ledger, folded server-side so the cluster
// coordinator can cross-check its own aggregate of what it sent
// against the backend's aggregate of what it sorted.
type shardResponse struct {
	Sorted []int64 `json:"sorted"`
	N      int     `json:"n"`
	Sum    int64   `json:"sum"`
	Xor    int64   `json:"xor"`
}

// classObserver adapts the scheduler's decision stream onto the
// per-class counters. Calls arrive from the pipeline's dispatcher
// goroutine; everything touched is atomic.
type classObserver struct{ classes *obs.ClassSet }

func (o classObserver) JobDispatched(class string, waitNs int64) {
	o.classes.Get(class).ObserveQueueWait(waitNs)
}
func (o classObserver) JobAged(class string)            { o.classes.Get(class).Aged.Add(1) }
func (o classObserver) JobDeadlineDropped(class string) { o.classes.Get(class).DeadlineDrop.Add(1) }

// classOf extracts the request's traffic class from the X-Sort-Class
// header: "default" when absent, rejected (ok=false) when the value
// breaks the class-name syntax shared with loadgen specs and QoS
// configs. Bounding hostile names here keeps them out of map keys and
// metrics labels (the registry additionally caps cardinality).
func classOf(r *http.Request) (name string, ok bool) {
	c := r.Header.Get("X-Sort-Class")
	if c == "" {
		return "default", true
	}
	return c, qos.ValidClassName(c)
}

// retryAfterSecs renders a bucket retry hint as a Retry-After header
// value: whole seconds, rounded up, never below 1.
func retryAfterSecs(d time.Duration) string {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleSort(w http.ResponseWriter, r *http.Request) { s.serveSort(w, r, false) }

// handleShard is the cluster tier's backend surface: one shard of a
// coordinator's fan-out. Identical admission (class syntax, QoS
// bucket, semaphore, size limit) and deadline handling as /sort, but
// never batched — shards are the coordinator's own batching unit —
// and the reply carries the sorted ledger.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) { s.serveSort(w, r, true) }

func (s *Server) serveSort(w http.ResponseWriter, r *http.Request, shard bool) {
	start := time.Now()
	kind := "sort"
	if shard {
		kind = "shard"
	}
	traced := !s.cfg.TraceOff
	var trace string
	if traced {
		// Echo the trace ID in every response — including rejections —
		// so a client can always correlate its call with /trace/{id}.
		trace = s.traceOf(r)
		w.Header().Set("X-Trace-Id", trace)
	}
	sc := newStageClock(start, traced)

	name, okName := classOf(r)
	if !okName {
		cc := s.classes.Get(obs.Overflow)
		cc.Requests.Add(1)
		cc.Errors.Add(1)
		httpError(w, http.StatusBadRequest,
			"invalid X-Sort-Class: must be 1-64 chars with no whitespace or quotes")
		return
	}
	cc := s.classes.Get(name)
	cc.Requests.Add(1)
	if s.draining.Load() {
		s.drained.Add(1)
		cc.Shed.Add(1)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var qosClass *qos.ClassQoS
	if s.plane != nil {
		d := s.plane.Admit(name)
		if !d.Known {
			cc.Errors.Add(1)
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown class %q: not in the QoS config", name))
			return
		}
		if !d.OK {
			s.rejected.Add(1)
			cc.Shed.Add(1)
			sc.mark("admit")
			s.finishSpan(cc, &obs.Span{
				ID: s.reqID.Add(1), Kind: kind, Trace: trace, Class: name,
				Start: start.UnixNano(), Outcome: "shed",
			}, sc, start)
			w.Header().Set("Retry-After", retryAfterSecs(d.RetryAfter))
			httpError(w, http.StatusTooManyRequests, "rate limited: class bucket empty")
			return
		}
		cc.Admitted.Add(1)
		qosClass = d.Class
	}
	sc.mark("admit")
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		cc.Shed.Add(1)
		sc.mark("sem")
		s.finishSpan(cc, &obs.Span{
			ID: s.reqID.Add(1), Kind: kind, Trace: trace, Class: name,
			Start: start.UnixNano(), Outcome: "shed",
		}, sc, start)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "at capacity")
		return
	}
	defer func() { <-s.sem }()
	sc.mark("sem")

	// Codec negotiation: a wire Content-Type means a binary request
	// body; the reply is binary when the request was, or when the
	// client asked via Accept. JSON stays the default both ways.
	wireReq := wire.IsWire(r.Header.Get("Content-Type"))
	wireResp := wireReq || wire.IsWire(r.Header.Get("Accept"))
	var req sortRequest
	if wireReq {
		// The size limit is enforced from the 32-byte header, before any
		// payload allocation — an absurd promised N never costs memory.
		keys, _, err := wire.ReadBlock(r.Body, wire.KindRequest, s.cfg.MaxKeys)
		if err != nil {
			cc.Errors.Add(1)
			if errors.Is(err, wire.ErrTooLarge) {
				s.tooLarge.Add(1)
				httpError(w, http.StatusRequestEntityTooLarge, err.Error())
				return
			}
			httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
			return
		}
		req.Keys = keys
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		cc.Errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	n := len(req.Keys)
	if ok, msg := sizeclass.CheckLimit(n, s.cfg.MaxKeys); !ok {
		s.tooLarge.Add(1)
		cc.Errors.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, msg)
		return
	}
	sc.mark("decode")

	id := s.reqID.Add(1)
	s.requests.Add(1)
	if shard {
		s.shardReqs.Add(1)
	}
	s.inflight.Add(1)
	s.inflightN.Add(1)
	s.startMu.Lock()
	s.starts[id] = start
	s.startMu.Unlock()
	defer func() {
		s.startMu.Lock()
		delete(s.starts, id)
		s.startMu.Unlock()
		s.inflightN.Add(-1)
		s.inflight.Done()
		s.observeLatency(time.Since(start))
	}()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	prio := 0
	if qosClass != nil {
		// The class deadline is a queue deadline: the scheduler sheds
		// the job once it provably cannot be met, issuing the 504 from
		// the queue. cfg.Timeout stays the service-time backstop, so the
		// two planes never race each other for the same instant.
		prio = qosClass.Priority
		q := wfsort.JobQoS{Class: name, Priority: qosClass.Priority}
		if qosClass.DeadlineMs > 0 {
			q.Deadline = start.Add(time.Duration(qosClass.DeadlineMs * float64(time.Millisecond)))
		}
		ctx = wfsort.WithJobQoS(ctx, q)
	}
	var sink *wfsort.SortTrace
	if traced {
		sink = &wfsort.SortTrace{}
	}

	span := obs.Span{ID: id, Kind: kind, Trace: trace, Class: name, Start: start.UnixNano(), N: n, Outcome: "ok"}
	var sorted []int64
	var err error
	// Shards are never batched: the coordinator's scatter IS the
	// batching decision, and folding two coordinators' shards into one
	// arena would couple their failure domains.
	if !shard && s.cfg.BatchMaxKeys > 0 && n <= s.cfg.BatchMaxKeys {
		span.Batched = 1
		var res batchResult
		sorted, res, err = s.sortBatched(ctx, req.Keys, prio)
		if sc.on {
			// The batched segment decomposes as assembly wait (enqueue ->
			// flush), the flusher's queue+crew wall, and the remainder
			// (split/deliver plus scheduler slop) as merge.
			prev, seg := sc.take()
			if res.flushStart.IsZero() {
				// Canceled before the flusher picked the entry up.
				sc.push("batch", seg)
			} else {
				batchWait := clampNs(res.flushStart.Sub(prev).Nanoseconds(), seg)
				queue := clampNs(res.queueNs, seg-batchWait)
				sortNs := clampNs(res.sortWallNs-queue, seg-batchWait-queue)
				sc.push("batch", batchWait)
				sc.push("queue", queue)
				sc.push("sort", sortNs)
				sc.push("merge", seg-batchWait-queue-sortNs)
				span.Phases = res.phases
			}
		}
	} else {
		if sink != nil {
			ctx = wfsort.WithSortTrace(ctx, sink)
		}
		sorted, err = s.sortDirect(ctx, req.Keys)
		if sc.on {
			_, seg := sc.take()
			queue := clampNs(sink.QueueWaitNs, seg)
			sc.push("queue", queue)
			sc.push("sort", seg-queue)
			span.Phases = phasesToStages(sink.Phases)
		}
	}
	switch {
	case err == nil:
	case errors.Is(err, wfsort.ErrDeadlineShed):
		// The queue dropped the job before a crew slot was committed: a
		// 504 issued from the queue, never from a worker. Counted with
		// the deadline family so the client/server ledger still balances
		// (loadgen maps any 504 to its deadline outcome).
		s.canceled.Add(1)
		cc.Canceled.Add(1)
		span.Outcome = "shed"
		s.finishSpan(cc, &span, sc, start)
		httpError(w, http.StatusGatewayTimeout, "shed from queue: deadline unmeetable")
		return
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.canceled.Add(1)
		cc.Canceled.Add(1)
		span.Outcome = "canceled"
		s.finishSpan(cc, &span, sc, start)
		// 504 covers both: a closed client connection never reads it.
		httpError(w, http.StatusGatewayTimeout, err.Error())
		return
	default:
		s.errCount.Add(1)
		cc.Errors.Add(1)
		span.Outcome = "error"
		s.finishSpan(cc, &span, sc, start)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if shard {
		s.shardOK.Add(1)
	}
	switch {
	case wireResp && shard:
		// The block header's sum/xor IS the backend ledger echo the
		// coordinator cross-checks; no separate fields needed.
		w.Header().Set("Content-Type", wire.ContentType)
		wire.WriteBlock(w, wire.KindShardReply, sorted)
	case wireResp:
		w.Header().Set("Content-Type", wire.ContentType)
		w.Header().Set("X-Sort-Batched", strconv.FormatBool(span.Batched == 1))
		wire.WriteBlock(w, wire.KindReply, sorted)
	case shard:
		w.Header().Set("Content-Type", "application/json")
		sum, xor := wire.Fold(sorted)
		json.NewEncoder(w).Encode(shardResponse{Sorted: sorted, N: n, Sum: sum, Xor: xor})
	default:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sortResponse{Sorted: sorted, N: n, Batched: span.Batched == 1})
	}
	sc.mark("encode")
	cc.OK.Add(1)
	s.finishSpan(cc, &span, sc, start)
	cc.ObserveLatency(span.Duration.Nanoseconds())
}

// sortDirect runs one request as its own pooled sort, in place on the
// decoded key slice via the keyed zero-copy path: no kv boxing, no
// output copy — the request buffer goes in unsorted and comes out
// sorted (or untouched, when the sort is aborted).
func (s *Server) sortDirect(ctx context.Context, keys []int64) ([]int64, error) {
	if err := s.direct.SortContext(ctx, keys); err != nil {
		return nil, err
	}
	return keys, nil
}

// sortBatched enqueues the request for the flusher and waits for its
// share of the merged sort. A request abandoned by its deadline leaves
// the batch unharmed: the flusher completes and the result is dropped.
func (s *Server) sortBatched(ctx context.Context, keys []int64, prio int) ([]int64, batchResult, error) {
	e := batchEntry{keys: keys, prio: prio, done: make(chan batchResult, 1)}
	select {
	case s.batchCh <- e:
	case <-ctx.Done():
		return nil, batchResult{}, ctx.Err()
	}
	s.batched.Add(1)
	select {
	case res := <-e.done:
		return res.sorted, res, res.err
	case <-ctx.Done():
		return nil, batchResult{}, ctx.Err()
	}
}

// runFlusher is the batching loop: wait for a first entry, give it
// BatchWindow to attract company (or until BatchLimit keys), then sort
// the merged batch once and split the results.
func (s *Server) runFlusher() {
	defer s.flusher.Done()
	for {
		first, ok := <-s.batchCh
		if !ok {
			return
		}
		entries := []batchEntry{first}
		total := len(first.keys)
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for total < s.cfg.BatchLimit {
			select {
			case e, ok := <-s.batchCh:
				if !ok {
					break collect
				}
				entries = append(entries, e)
				total += len(e.keys)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.flushBatch(entries, total)
	}
}

func (s *Server) flushBatch(entries []batchEntry, total int) {
	start := time.Now()
	merged := make([]kv, 0, total)
	prio := entries[0].prio
	for ri, e := range entries {
		if e.prio < prio {
			prio = e.prio
		}
		for _, k := range e.keys {
			merged = append(merged, kv{k: k, r: int32(ri)})
		}
	}
	// The merged sort inherits the most urgent member's priority and no
	// deadline: a shed would fail every co-batched request, including
	// ones with time to spare.
	ctx := wfsort.WithJobQoS(context.Background(),
		wfsort.JobQoS{Class: "batch", Priority: prio})
	var sink *wfsort.SortTrace
	if !s.cfg.TraceOff {
		sink = &wfsort.SortTrace{}
		ctx = wfsort.WithSortTrace(ctx, sink)
	}
	sortStart := time.Now()
	err := s.sorter.SortContext(ctx, merged)
	meta := batchResult{flushStart: start, sortWallNs: time.Since(sortStart).Nanoseconds()}
	if sink != nil {
		meta.queueNs = sink.QueueWaitNs
		meta.phases = phasesToStages(sink.Phases)
	}
	if err == nil {
		outs := make([][]int64, len(entries))
		for ri, e := range entries {
			outs[ri] = make([]int64, 0, len(e.keys))
		}
		for _, e := range merged {
			outs[e.r] = append(outs[e.r], e.k)
		}
		for ri, e := range entries {
			res := meta
			res.sorted = outs[ri]
			e.done <- res
		}
	} else {
		for _, e := range entries {
			res := meta
			res.err = err
			e.done <- res
		}
	}
	s.batches.Add(1)
	span := obs.Span{
		ID:       s.reqID.Add(1),
		Kind:     "batch",
		Class:    "batch",
		Start:    start.UnixNano(),
		Duration: time.Since(start),
		N:        total,
		Batched:  len(entries),
		Outcome:  map[bool]string{true: "ok", false: "error"}[err == nil],
	}
	if sink != nil {
		queue := clampNs(meta.queueNs, meta.sortWallNs)
		span.Stages = []obs.Stage{
			{Name: "queue", DurNs: queue},
			{Name: "sort", DurNs: meta.sortWallNs - queue},
			{Name: "merge", DurNs: span.Duration.Nanoseconds() - meta.sortWallNs},
		}
		span.Phases = meta.phases
	}
	s.spans.Append(span)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	code := http.StatusOK
	if st.DrainingOn {
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	body := map[string]any{
		"ok":       !st.DrainingOn && !st.Stuck,
		"draining": st.DrainingOn,
		"stuck":    st.Stuck,
	}
	if s.burn != nil {
		body["slo_paging"] = s.burn.Paging()
	}
	json.NewEncoder(w).Encode(body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		s.writeProm(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.metricsMap())
}

// metricsMap assembles the /metrics JSON document; the flight recorder
// embeds the same map in its dumps.
func (s *Server) metricsMap() map[string]any {
	hist := make(map[string]int64, len(latBounds)+1)
	for i := range latBounds {
		hist["le_"+latBounds[i].String()] = s.latBuckets[i].Load()
	}
	hist["inf"] = s.latBuckets[len(latBounds)].Load()
	m := map[string]any{
		"server":     s.Stats(),
		"pool":       s.pool.Stats(),
		"latency_ms": hist,
		"classes":    s.classes.Snapshot(),
	}
	if st := s.stageSnapshot(); len(st) > 0 {
		m["stages"] = st
	}
	if s.plane != nil {
		m["qos"] = s.plane.Snapshot()
	}
	if s.burn != nil {
		m["slo"] = s.burn.Snapshot()
	}
	if s.flight != nil {
		m["flight"] = map[string]any{"dumps": s.flight.Wrote()}
	}
	return m
}

func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	n := 0
	fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n)
	spans := s.spans.Snapshot(n)
	class := r.URL.Query().Get("class")
	outcome := r.URL.Query().Get("outcome")
	if class != "" || outcome != "" {
		kept := spans[:0]
		for _, sp := range spans {
			if (class == "" || sp.Class == class) && (outcome == "" || sp.Outcome == outcome) {
				kept = append(kept, sp)
			}
		}
		spans = kept
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(spans)
}

// handleTrace serves one request's span by trace ID: the span log
// first (recent requests), then the exemplar store (slow requests the
// log already lapped), 404 when neither retains it.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sp, ok := s.spans.Find(id)
	if !ok {
		sp, ok = s.classes.FindExemplar(id)
	}
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("trace %q not retained", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(sp)
}

// Stats snapshots the service counters, including the serving
// watchdog's view of the oldest in-flight request.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:   s.requests.Load(),
		Shards:     s.shardReqs.Load(),
		ShardOK:    s.shardOK.Load(),
		Batched:    s.batched.Load(),
		Batches:    s.batches.Load(),
		Rejected:   s.rejected.Load(),
		TooLarge:   s.tooLarge.Load(),
		Draining:   s.drained.Load(),
		Canceled:   s.canceled.Load(),
		Errors:     s.errCount.Load(),
		InFlight:   s.inflightN.Load(),
		DrainingOn: s.draining.Load(),
	}
	s.startMu.Lock()
	var oldest time.Time
	for _, t := range s.starts {
		if oldest.IsZero() || t.Before(oldest) {
			oldest = t
		}
	}
	s.startMu.Unlock()
	if !oldest.IsZero() {
		age := time.Since(oldest)
		st.OldestMs = age.Milliseconds()
		st.Stuck = age > s.cfg.StuckAfter
	}
	if st.Stuck {
		// A stuck oldest request is a wait-freedom violation from the
		// serving layer's point of view: capture the scene. The recorder
		// rate-limits and the busy guard breaks the dump -> metrics ->
		// Stats recursion.
		s.tripFlight("watchdog")
	}
	return st
}

// Spans exposes the request span log (for sortd and tests).
func (s *Server) Spans() *obs.SpanLog { return s.spans }

// Classes exposes the per-class counter registry — the serving-side
// half of the load-test instrumentation seam: loadgen measures from
// the client's clock, these counters from the server's, and a capacity
// run can cross-check the two.
func (s *Server) Classes() *obs.ClassSet { return s.classes }

// PoolStats exposes the backing pool's counters.
func (s *Server) PoolStats() wfsort.PoolStats { return s.pool.Stats() }

// QoSPlane exposes the admission plane, nil when QoS is off (for sortd
// and tests).
func (s *Server) QoSPlane() *qos.Plane { return s.plane }

// Burn exposes the SLO burn-rate monitor, nil when cfg.SLO is unset.
func (s *Server) Burn() *obs.Burn { return s.burn }

// Flight exposes the flight recorder, nil when cfg.FlightDir is unset.
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

func (s *Server) observeLatency(d time.Duration) {
	i := sort.Search(len(latBounds), func(i int) bool { return d <= latBounds[i] })
	s.latBuckets[i].Add(1)
}

// Shutdown drains the service: new requests get 503, in-flight ones
// (including queued batch entries) finish, the batcher stops, the pool
// is released. It returns ctx.Err() if the drain outlives ctx, leaving
// the service draining but not torn down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.cfg.BatchMaxKeys > 0 {
		close(s.batchCh)
		s.flusher.Wait()
	}
	s.pool.Close()
	return nil
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
