package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsort"
	"wfsort/internal/qos"
)

// doSort posts keys under a traffic class and returns the status plus
// the raw response body (closed).
func doSort(t testing.TB, url, class string, keys []int64) (int, []byte, http.Header) {
	t.Helper()
	body, _ := json.Marshal(sortRequest{Keys: keys})
	req, err := http.NewRequest(http.MethodPost, url+"/sort", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if class != "" {
		req.Header.Set("X-Sort-Class", class)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp.Header
}

func sortedBody(t testing.TB, raw []byte, sent []int64) {
	t.Helper()
	var out sortResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unparseable 200 body %q: %v", raw, err)
	}
	if len(out.Sorted) != len(sent) {
		t.Fatalf("%d keys back for %d sent", len(out.Sorted), len(sent))
	}
	counts := map[int64]int{}
	for _, k := range sent {
		counts[k]++
	}
	for i, k := range out.Sorted {
		if i > 0 && out.Sorted[i-1] > k {
			t.Fatalf("unsorted at %d: %v", i, out.Sorted[:i+1])
		}
		counts[k]--
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("key %d multiplicity off by %d", k, c)
		}
	}
}

// TestQoSConfigRejectedAtNew: a bad QoS config fails construction with
// the qos package's typed error, before any pool is built.
func TestQoSConfigRejectedAtNew(t *testing.T) {
	_, err := New(Config{QoS: &qos.Config{}}) // no classes
	if err == nil {
		t.Fatal("empty QoS config accepted")
	}
	var ce *qos.ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *qos.ConfigError", err)
	}
}

// TestQoSClassGate covers the class-header contract with the plane on:
// malformed names 400, unconfigured names 400, configured names admit,
// and a missing header means "default" (configured here).
func TestQoSClassGate(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BatchMaxKeys: -1,
		QoS: &qos.Config{Classes: []qos.ClassQoS{
			{Name: "default", Rate: 1000, Burst: 100},
			{Name: "lat", Rate: 1000, Burst: 100, Priority: 1},
		}},
	})
	keys := []int64{3, 1, 2}

	for _, bad := range []string{"two words", "q\"uote", strings.Repeat("a", 65)} {
		code, raw, _ := doSort(t, ts.URL, bad, keys)
		if code != http.StatusBadRequest {
			t.Fatalf("class %q: status %d, want 400 (%s)", bad, code, raw)
		}
	}
	code, raw, _ := doSort(t, ts.URL, "ghost", keys)
	if code != http.StatusBadRequest || !bytes.Contains(raw, []byte("unknown class")) {
		t.Fatalf("unconfigured class: status %d body %s", code, raw)
	}
	for _, good := range []string{"", "lat", "default"} {
		code, raw, _ := doSort(t, ts.URL, good, keys)
		if code != http.StatusOK {
			t.Fatalf("class %q: status %d (%s)", good, code, raw)
		}
		sortedBody(t, raw, keys)
	}
	if got := s.Classes().Get("lat").Admitted.Load(); got != 1 {
		t.Fatalf("lat admitted = %d, want 1", got)
	}
	// default got the empty-header request and its own.
	if got := s.Classes().Get("default").Admitted.Load(); got != 2 {
		t.Fatalf("default admitted = %d, want 2", got)
	}
}

// TestQoSRateLimit429 drains a one-token bucket and checks the denial:
// 429, a Retry-After of at least one second, and shed accounting on
// both the server and class counters. /metrics must expose the plane.
func TestQoSRateLimit429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		BatchMaxKeys: -1,
		QoS: &qos.Config{Classes: []qos.ClassQoS{
			{Name: "default", Rate: 0.5, Burst: 1},
		}},
	})
	keys := []int64{2, 1}
	code, raw, _ := doSort(t, ts.URL, "", keys)
	if code != http.StatusOK {
		t.Fatalf("first request: status %d (%s)", code, raw)
	}
	code, raw, hdr := doSort(t, ts.URL, "", keys)
	if code != http.StatusTooManyRequests {
		t.Fatalf("bucket-empty request: status %d (%s)", code, raw)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	cc := s.Classes().Get("default")
	if cc.Admitted.Load() != 1 || cc.Shed.Load() != 1 {
		t.Fatalf("class counters admitted=%d shed=%d, want 1/1", cc.Admitted.Load(), cc.Shed.Load())
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		QoS map[string]qos.ClassSnapshot `json:"qos"`
	}
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	snap, ok := m.QoS["default"]
	if !ok {
		t.Fatalf("/metrics qos section missing the class: %+v", m.QoS)
	}
	if snap.Rate != 0.5 || snap.Burst != 1 {
		t.Fatalf("qos snapshot = %+v", snap)
	}
}

// TestQoSSemBackstopRetryAfter: with QoS off, the flat semaphore keeps
// rejecting — but its 429 now carries the Retry-After it always lacked.
func TestQoSSemBackstopRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	s.sem <- struct{}{}
	code, _, hdr := doSort(t, ts.URL, "", []int64{3, 1})
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if hdr.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", hdr.Get("Retry-After"))
	}
	<-s.sem
}

// TestQoSDeadlineShedE2E drives the queue-shed path over HTTP: a class
// with a 1ms deadline submits behind a wall of higher-priority bulk
// work, so the scheduler drops it from the queue — 504, the typed shed
// message, a DeadlineDrop tick, and no crew slot spent. The bulk work
// itself must all complete, proving the shed cost the crew nothing.
func TestQoSDeadlineShedE2E(t *testing.T) {
	bulkN := 150_000
	floods := 8
	if testing.Short() {
		bulkN = 60_000
	}
	s, ts := newTestServer(t, Config{
		PipelineDepth: 32,
		BatchMaxKeys:  -1,
		MaxInFlight:   64,
		Timeout:       60 * time.Second,
		QoS: &qos.Config{Classes: []qos.ClassQoS{
			{Name: "bulk", Rate: 100000, Burst: 1000, Priority: 0},
			{Name: "doomed", Rate: 100000, Burst: 1000, Priority: 8, DeadlineMs: 1},
		}},
	})
	rng := rand.New(rand.NewSource(11))
	bulk := randKeys(rng, bulkN)

	// A closed-loop flood keeps the crew saturated and the queue busy;
	// every bulk submit is also a fresh dispatcher round, so the doomed
	// job's expiry is noticed long before the wall drains.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var bulkOK atomic.Int64
	for i := 0; i < floods; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, raw, _ := doSort(t, ts.URL, "bulk", bulk); code != http.StatusOK {
					t.Errorf("bulk sort: status %d (%s)", code, raw)
					return
				}
				bulkOK.Add(1)
			}
		}()
	}
	// Wait until most of the flood is resident, then submit the doomed
	// job: deadline 1ms, priority 8 — it cannot win a pick before it
	// expires while bulk work is pending. A fast machine can drain the
	// whole queue between polls, so the submit retries until it lands
	// behind the wall; every non-shed attempt must still be a correct
	// 200.
	for deadline := time.Now().Add(10 * time.Second); s.Stats().InFlight < int64(floods)-1; {
		if time.Now().After(deadline) {
			t.Fatal("flood never became resident")
		}
		time.Sleep(time.Millisecond)
	}
	doomed := randKeys(rng, 2000)
	var sheds int64
	for attempt := 0; attempt < 10 && sheds == 0; attempt++ {
		code, raw, _ := doSort(t, ts.URL, "doomed", doomed)
		switch {
		case code == http.StatusGatewayTimeout && bytes.Contains(raw, []byte("shed")):
			sheds++
		case code == http.StatusOK:
			sortedBody(t, raw, doomed) // dispatched in time: must be correct
		default:
			t.Fatalf("doomed request: status %d body %s", code, raw)
		}
	}
	close(stop)
	wg.Wait()
	if sheds == 0 {
		t.Fatal("no attempt was shed: the queue deadline never fired")
	}
	if got := s.Classes().Get("doomed").DeadlineDrop.Load(); got != sheds {
		t.Fatalf("doomed DeadlineDrop = %d, want %d", got, sheds)
	}
	if bulkOK.Load() == 0 {
		t.Fatal("bulk made no progress")
	}
	if got := s.Stats().Canceled; got != sheds {
		t.Fatalf("canceled = %d, want exactly the shed requests (%d)", got, sheds)
	}
}

// jain is Jain's fairness index over per-client completion counts:
// 1 is perfectly fair, 1/n is one client taking everything.
func jain(xs []int64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += float64(x)
		sq += float64(x) * float64(x)
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// TestQoSStarvationFairnessSoak is the serving-layer starvation
// property test: a priority-0 flood saturates the crew while a
// low-priority trickle keeps arriving, workers churn (kill+respawn)
// inside every sort, and the claim is that aging still serves every
// single trickle request — zero trickle timeouts or errors, every body
// sorted — while the flood clients share capacity fairly among
// themselves (Jain index floor). Runs under -race in the CI qos leg.
func TestQoSStarvationFairnessSoak(t *testing.T) {
	duration := 4 * time.Second
	floodClients := 6
	floodN := 4000
	trickleN := 400
	if testing.Short() {
		duration = 1200 * time.Millisecond
		floodClients = 4
		floodN = 2000
	}
	s, ts := newTestServer(t, Config{
		PipelineDepth: 32,
		BatchMaxKeys:  -1,
		MaxInFlight:   256,
		Timeout:       30 * time.Second,
		Options:       []wfsort.Option{wfsort.WithChurn(2), wfsort.WithSeed(42)},
		QoS: &qos.Config{
			AgingMs: 25,
			Classes: []qos.ClassQoS{
				{Name: "flood", Rate: 1e6, Burst: 1000, Priority: 0},
				{Name: "trickle", Rate: 1e6, Burst: 1000, Priority: 4},
			},
		},
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	floodOK := make([]int64, floodClients)
	var floodOther atomic.Int64
	for c := 0; c < floodClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				keys := randKeys(rng, floodN)
				code, raw, _ := doSort(t, ts.URL, "flood", keys)
				switch code {
				case http.StatusOK:
					sortedBody(t, raw, keys)
					atomic.AddInt64(&floodOK[c], 1)
				case http.StatusTooManyRequests, http.StatusGatewayTimeout:
					floodOther.Add(1)
				default:
					t.Errorf("flood client %d: status %d (%s)", c, code, raw)
					return
				}
			}
		}(c)
	}

	// The trickle is open-loop: a request every 25ms regardless of how
	// the previous one fared, so queueing delay cannot mask starvation.
	var trickleSent, trickleOK atomic.Int64
	var maxWaitNs atomic.Int64
	var twg sync.WaitGroup
	rng := rand.New(rand.NewSource(7))
	trickleKeys := randKeys(rng, trickleN)
	ticker := time.NewTicker(25 * time.Millisecond)
	defer ticker.Stop()
trickle:
	for start := time.Now(); time.Since(start) < duration; {
		select {
		case <-ticker.C:
			trickleSent.Add(1)
			twg.Add(1)
			go func() {
				defer twg.Done()
				t0 := time.Now()
				code, raw, _ := doSort(t, ts.URL, "trickle", trickleKeys)
				if code != http.StatusOK {
					t.Errorf("trickle request: status %d (%s)", code, raw)
					return
				}
				sortedBody(t, raw, trickleKeys)
				trickleOK.Add(1)
				if w := time.Since(t0).Nanoseconds(); w > maxWaitNs.Load() {
					maxWaitNs.Store(w)
				}
			}()
		case <-time.After(duration):
			break trickle
		}
	}
	twg.Wait()
	close(stop)
	wg.Wait()

	if trickleSent.Load() == 0 {
		t.Fatal("no trickle traffic generated")
	}
	if trickleOK.Load() != trickleSent.Load() {
		t.Fatalf("trickle: %d of %d completed — low-priority work starved or errored",
			trickleOK.Load(), trickleSent.Load())
	}
	var totalFlood int64
	for c := range floodOK {
		totalFlood += atomic.LoadInt64(&floodOK[c])
	}
	if totalFlood == 0 {
		t.Fatal("flood made no progress at all")
	}
	if j := jain(floodOK); j < 0.5 {
		t.Fatalf("flood fairness collapsed: Jain index %.3f from %v", j, floodOK)
	}

	// The scheduler's own ledger agrees: the trickle class aged its way
	// to the crew and its queue-wait histogram is populated.
	tc := s.Classes().Get("trickle")
	if tc.Admitted.Load() != trickleSent.Load() {
		t.Fatalf("trickle admitted = %d of %d", tc.Admitted.Load(), trickleSent.Load())
	}
	if h := tc.QueueWaitHistogram(); h.Count == 0 {
		t.Fatal("trickle queue-wait histogram is empty — jobs never crossed the scheduler")
	}
	t.Logf("soak: flood ok=%v (Jain %.3f, %d backpressured), trickle %d/%d ok, max trickle latency %v",
		floodOK, jain(floodOK), floodOther.Load(), trickleOK.Load(), trickleSent.Load(),
		time.Duration(maxWaitNs.Load()))
}
