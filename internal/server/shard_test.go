package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postShard(t *testing.T, url string, keys []int64, hdr map[string]string) (*http.Response, shardResponse) {
	t.Helper()
	body, _ := json.Marshal(sortRequest{Keys: keys})
	req, err := http.NewRequest(http.MethodPost, url+"/shard", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out shardResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestShardEndpoint locks the /shard contract the cluster coordinator
// depends on: sorted body, correct sum/xor ledger, trace echo, and the
// shard_requests/shard_ok counters the soak's cross-check reads.
func TestShardEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, 3000)
	var sum, xor int64
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
		sum += keys[i]
		xor ^= keys[i]
	}
	resp, out := postShard(t, ts.URL, keys, map[string]string{"X-Trace-Id": "coord-1.s0.a0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != "coord-1.s0.a0" {
		t.Fatalf("trace echo %q", got)
	}
	checkSortedKeys(t, out.Sorted, keys)
	if out.N != len(keys) || out.Sum != sum || out.Xor != xor {
		t.Fatalf("ledger: n=%d sum=%d xor=%d, want n=%d sum=%d xor=%d",
			out.N, out.Sum, out.Xor, len(keys), sum, xor)
	}
	st := s.Stats()
	if st.Shards != 1 || st.ShardOK != 1 {
		t.Fatalf("shard counters: %+v", st)
	}
	if st.Requests != 1 {
		t.Fatalf("a shard is a request too: %+v", st)
	}
}

// TestShardNeverBatched certifies that /shard bypasses the batcher
// even for batch-size requests: the coordinator's scatter is the
// batching decision, and its shards must not be fused across sorts.
func TestShardNeverBatched(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchMaxKeys: 1 << 20})
	resp, out := postShard(t, ts.URL, []int64{5, 3, 9, 1}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	checkSortedKeys(t, out.Sorted, []int64{5, 3, 9, 1})
	if st := s.Stats(); st.Batched != 0 {
		t.Fatalf("shard went through the batcher: %+v", st)
	}

	// The same keys on /sort at this config DO batch — the bypass is
	// the shard path's, not a config accident.
	if _, sr := postSort(t, ts.URL, []int64{5, 3, 9, 1}); !sr.Batched {
		t.Fatal("control /sort request did not batch")
	}
}

// TestShardRejections locks that /shard shares /sort's admission
// surface: oversize 413, bad body 400, draining 503.
func TestShardRejections(t *testing.T) {
	// Built without the newTestServer helper: this test drives Shutdown
	// itself, and the helper's cleanup would drain a second time.
	s, err := New(Config{Workers: 2, MaxKeys: 100})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, _ := postShard(t, ts.URL, make([]int64, 101), nil); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize shard: %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/shard", "application/json", bytes.NewReader([]byte("{broken")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if resp, _ := postShard(t, ts.URL, []int64{1}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining shard: %d", resp.StatusCode)
	}
	if st := s.Stats(); st.ShardOK != 0 {
		t.Fatalf("rejections counted as shard successes: %+v", st)
	}
}
