package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"testing"

	"wfsort/internal/wire"
)

// postWire sends keys as a binary block to path and decodes the binary
// reply, returning the response for status/header checks.
func postWire(t *testing.T, url, path string, keys []int64) (*http.Response, []int64, wire.Header) {
	t.Helper()
	body := wire.AppendBlock(nil, wire.KindRequest, keys)
	resp, err := http.Post(url+path, wire.ContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp, nil, wire.Header{}
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsWire(ct) {
		t.Fatalf("binary request answered with Content-Type %q", ct)
	}
	wantKind := byte(wire.KindReply)
	if path == "/shard" {
		wantKind = wire.KindShardReply
	}
	sorted, h, err := wire.ReadBlock(resp.Body, wantKind, 0)
	if err != nil {
		t.Fatalf("decode %s reply: %v", path, err)
	}
	return resp, sorted, h
}

// TestWireSortRoundTrip drives both serving paths — direct large sorts
// and batched small ones — entirely over the binary codec.
func TestWireSortRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(41))

	large := randKeys(rng, 5000)
	resp, sorted, _ := postWire(t, ts.URL, "/sort", large)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("large binary sort: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Sort-Batched") != "false" {
		t.Fatalf("large binary sort batched=%q", resp.Header.Get("X-Sort-Batched"))
	}
	checkSortedKeys(t, sorted, large)

	small := randKeys(rng, 20)
	resp, sorted, _ = postWire(t, ts.URL, "/sort", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small binary sort: status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Sort-Batched") != "true" {
		t.Fatal("small binary request should ride the batcher")
	}
	checkSortedKeys(t, sorted, small)

	for _, keys := range [][]int64{{}, {42}, {5, 5, 5, 5}} {
		resp, sorted, _ := postWire(t, ts.URL, "/sort", keys)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("keys=%v: status %d", keys, resp.StatusCode)
		}
		checkSortedKeys(t, sorted, keys)
	}
}

// TestWireShardLedger checks the /shard binary reply: the block
// header's sum/xor IS the ledger the coordinator cross-checks, so it
// must equal the fold of the input keys.
func TestWireShardLedger(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(42))
	keys := randKeys(rng, 3000)
	wantSum, wantXor := wire.Fold(keys)

	resp, sorted, h := postWire(t, ts.URL, "/shard", keys)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	checkSortedKeys(t, sorted, keys)
	if h.Sum != wantSum || h.Xor != wantXor {
		t.Fatalf("shard header ledger (%d,%d), want (%d,%d)", h.Sum, h.Xor, wantSum, wantXor)
	}
	if h.N != len(keys) {
		t.Fatalf("shard header N=%d, want %d", h.N, len(keys))
	}
}

// TestWireAcceptNegotiation: a JSON request with Accept set to the
// wire type gets a binary reply; without it, JSON stays the default in
// both directions.
func TestWireAcceptNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	keys := []int64{9, 3, 7, 1, 5}
	body, _ := json.Marshal(sortRequest{Keys: keys})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/sort", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", wire.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !wire.IsWire(ct) {
		t.Fatalf("Accept-negotiated reply has Content-Type %q", ct)
	}
	sorted, _, err := wire.ReadBlock(resp.Body, wire.KindReply, 0)
	if err != nil {
		t.Fatal(err)
	}
	checkSortedKeys(t, sorted, keys)

	// No Accept: the JSON default is unchanged.
	resp2, out := postSort(t, ts.URL, keys)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("JSON default broken: status %d ct %q", resp2.StatusCode, resp2.Header.Get("Content-Type"))
	}
	checkSortedKeys(t, out.Sorted, keys)
}

// TestWireHostileBodies: malformed binary requests are 400s, an
// over-limit promised N is a 413 — rejected from the 32-byte header,
// before any payload allocation.
func TestWireHostileBodies(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxKeys: 1 << 12})

	good := wire.AppendBlock(nil, wire.KindRequest, []int64{3, 1, 2})

	badMagic := append([]byte(nil), good...)
	badMagic[0] = 'X'

	truncated := good[:len(good)-5]

	ledger := append([]byte(nil), good...)
	ledger[len(ledger)-1] ^= 0xFF // corrupt a key byte; header sum/xor no longer match

	wrongKind := wire.AppendBlock(nil, wire.KindReply, []int64{3, 1, 2})

	// A header promising 2^20 keys with no payload behind it: the limit
	// check must fire on the count alone.
	absurd := append([]byte(nil), good[:wire.HeaderLen]...)
	binary.LittleEndian.PutUint64(absurd[8:], 1<<20)

	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"bad-magic", badMagic, http.StatusBadRequest},
		{"truncated", truncated, http.StatusBadRequest},
		{"ledger-mismatch", ledger, http.StatusBadRequest},
		{"wrong-kind", wrongKind, http.StatusBadRequest},
		{"empty", nil, http.StatusBadRequest},
		{"over-limit", absurd, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/sort", wire.ContentType, bytes.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
	if s.tooLarge.Load() == 0 {
		t.Fatal("over-limit wire request did not bump the tooLarge counter")
	}
}

// TestWireMixedCodecTraffic interleaves JSON and binary clients on one
// pipelined server: negotiation is per-request state, so concurrent
// codecs must never bleed into each other's replies.
func TestWireMixedCodecTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, PipelineDepth: 2})
	var wg sync.WaitGroup
	fails := make([]string, 8)
	for g := range fails {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 6; i++ {
				keys := randKeys(rng, 500+rng.Intn(2000))
				var sorted []int64
				if g%2 == 0 {
					resp, got, _ := postWire(t, ts.URL, "/sort", keys)
					if resp.StatusCode != http.StatusOK {
						fails[g] = fmt.Sprintf("binary status %d", resp.StatusCode)
						return
					}
					sorted = got
				} else {
					resp, out := postSort(t, ts.URL, keys)
					if resp.StatusCode != http.StatusOK {
						fails[g] = fmt.Sprintf("json status %d", resp.StatusCode)
						return
					}
					sorted = out.Sorted
				}
				want := append([]int64(nil), keys...)
				sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
				if len(sorted) != len(want) {
					fails[g] = fmt.Sprintf("iter %d: %d keys back, sent %d", i, len(sorted), len(want))
					return
				}
				for j := range sorted {
					if sorted[j] != want[j] {
						fails[g] = fmt.Sprintf("iter %d key %d: got %d want %d", i, j, sorted[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for g, f := range fails {
		if f != "" {
			t.Fatalf("client %d: %s", g, f)
		}
	}
}
