// This file is the serving side of the request trace plane: stage
// clocks that partition a request's wall time into named segments,
// trace-ID minting/acceptance, per-stage server-wide histograms, the
// SLO burn-rate hookup, the flight-recorder trigger and the Prometheus
// text exposition of the whole metrics surface.

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"wfsort"
	"wfsort/internal/obs"
)

// stageNames is the full stage vocabulary, in lifecycle order. A
// request's span carries the subset it actually crossed; the
// server-wide stage histograms are indexed by this list.
var stageNames = [...]string{"admit", "sem", "decode", "batch", "queue", "sort", "merge", "encode"}

func stageIndex(name string) int {
	for i, n := range stageNames {
		if n == name {
			return i
		}
	}
	return -1
}

// stageClock measures a request's lifecycle as consecutive segments of
// one wall clock: each mark names the segment since the previous mark,
// so the recorded stages partition the elapsed time exactly — which is
// what makes the summed-vs-wall trace check meaningful. With tracing
// off the clock is inert (sc.on false) and every call is a flag test.
type stageClock struct {
	on     bool
	last   time.Time
	stages []obs.Stage
}

func newStageClock(start time.Time, on bool) *stageClock {
	return &stageClock{on: on, last: start}
}

// mark closes the current segment under the given name.
func (sc *stageClock) mark(name string) {
	if !sc.on {
		return
	}
	now := time.Now()
	sc.stages = append(sc.stages, obs.Stage{Name: name, DurNs: now.Sub(sc.last).Nanoseconds()})
	sc.last = now
}

// take closes the current segment without naming it, returning its
// start and length so the caller can split it (queue/sort/merge) via
// push. Only meaningful when sc.on.
func (sc *stageClock) take() (prev time.Time, segNs int64) {
	now := time.Now()
	prev = sc.last
	segNs = now.Sub(sc.last).Nanoseconds()
	sc.last = now
	return prev, segNs
}

// push appends an externally measured split of a taken segment.
func (sc *stageClock) push(name string, durNs int64) {
	if durNs < 0 {
		durNs = 0
	}
	sc.stages = append(sc.stages, obs.Stage{Name: name, DurNs: durNs})
}

// clampNs bounds v to [0, limit].
func clampNs(v, limit int64) int64 {
	if v < 0 {
		return 0
	}
	if v > limit {
		return limit
	}
	return v
}

// phasesToStages converts the sorter's phase splits to span stages.
func phasesToStages(ph []wfsort.PhaseDur) []obs.Stage {
	if len(ph) == 0 {
		return nil
	}
	out := make([]obs.Stage, len(ph))
	for i, p := range ph {
		out[i] = obs.Stage{Name: p.Name, DurNs: p.DurNs}
	}
	return out
}

// traceOf accepts the client's X-Trace-Id (bounded to the class-name
// syntax: 1-64 chars, no whitespace or quotes, so hostile IDs never
// reach logs or labels unescaped) or mints a server-local one.
func (s *Server) traceOf(r *http.Request) string {
	if t := r.Header.Get("X-Trace-Id"); t != "" && validTraceID(t) {
		return t
	}
	return fmt.Sprintf("t-%d", s.traceSeq.Add(1))
}

func validTraceID(t string) bool {
	if len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// finishSpan seals a request span — duration, stage partition — then
// feeds every consumer: the span log, the per-stage histograms, the
// class's tail-exemplar slots (ok spans only; rejections are fast and
// would never displace a tail exemplar anyway) and the burn monitor,
// tripping the flight recorder when the monitor pages.
func (s *Server) finishSpan(cc *obs.ClassCounters, span *obs.Span, sc *stageClock, start time.Time) {
	span.Duration = time.Since(start)
	if sc.on {
		span.Stages = sc.stages
		s.observeStages(sc.stages)
	}
	s.spans.Append(*span)
	if sc.on && span.Outcome == "ok" {
		sp := *span
		cc.Exemplars.Offer(&sp)
	}
	if s.burn != nil {
		if s.burn.Observe(span.Duration, span.Outcome == "ok") {
			s.tripFlight("slo-burn")
		}
	}
}

func (s *Server) observeStages(stages []obs.Stage) {
	for _, st := range stages {
		if i := stageIndex(st.Name); i >= 0 {
			s.stageHists[i].Observe(st.DurNs)
		}
	}
}

// stageSnapshot renders the per-stage histograms for /metrics JSON.
func (s *Server) stageSnapshot() map[string]map[string]any {
	out := map[string]map[string]any{}
	for i, name := range stageNames {
		h := s.stageHists[i].Snapshot()
		if h.Count == 0 {
			continue
		}
		out[name] = map[string]any{
			"count":   h.Count,
			"p50_ms":  float64(h.Quantile(0.50)) / 1e6,
			"p99_ms":  float64(h.Quantile(0.99)) / 1e6,
			"mean_ms": float64(h.Mean()) / 1e6,
		}
	}
	return out
}

// tripFlight captures one flight dump: recent spans, every class's
// exemplars, the burn state, the full metrics document and a Perfetto
// trace of the span window. The recorder rate-limits; the busy flag
// collapses concurrent triggers and breaks the recursion through
// metricsMap -> Stats -> watchdog -> tripFlight.
func (s *Server) tripFlight(reason string) {
	if s.flight == nil || !s.flight.Ready() {
		return
	}
	if !s.flightBusy.CompareAndSwap(false, true) {
		return
	}
	defer s.flightBusy.Store(false)
	spans := s.spans.Snapshot(0)
	exemplars := map[string][]obs.Span{}
	for name, cs := range s.classes.Snapshot() {
		if len(cs.Exemplars) > 0 {
			exemplars[name] = cs.Exemplars
		}
	}
	rec := obs.FlightRecord{
		Reason:    reason,
		Spans:     spans,
		Exemplars: exemplars,
	}
	if s.burn != nil {
		bs := s.burn.Snapshot()
		rec.Burn = &bs
	}
	rec.Metrics = marshalJSON(s.metricsMap())
	s.flight.Dump(rec, obs.NewTrace().AddSpans(spans))
}

// writeProm renders the metrics surface in the Prometheus text
// exposition format for /metrics?format=prom.
func (s *Server) writeProm(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	st := s.Stats()
	counter := func(name, help string, v int64) {
		p.Type(name, "counter", help)
		p.Sample(name, nil, float64(v))
	}
	counter("wfsort_requests_total", "Admitted sort requests.", st.Requests)
	counter("wfsort_batched_total", "Requests served through the batcher.", st.Batched)
	counter("wfsort_batches_total", "Batch flushes.", st.Batches)
	counter("wfsort_rejected_total", "429 rejections (bucket or semaphore).", st.Rejected)
	counter("wfsort_too_large_total", "413 rejections.", st.TooLarge)
	counter("wfsort_draining_total", "503 rejections while draining.", st.Draining)
	counter("wfsort_canceled_total", "Canceled or queue-shed requests (504).", st.Canceled)
	counter("wfsort_errors_total", "Internal errors (500).", st.Errors)
	p.Type("wfsort_in_flight", "gauge", "Requests currently in flight.")
	p.Sample("wfsort_in_flight", nil, float64(st.InFlight))
	p.Type("wfsort_stuck", "gauge", "Watchdog verdict: 1 when the oldest in-flight request exceeds StuckAfter.")
	p.Sample("wfsort_stuck", nil, b2f(st.Stuck))

	p.Type("wfsort_class_requests_total", "counter", "Requests per traffic class.")
	names := s.classes.Names()
	for _, name := range names {
		cc, ok := s.classes.Lookup(name)
		if !ok {
			continue
		}
		p.Sample("wfsort_class_requests_total", map[string]string{"class": name}, float64(cc.Requests.Load()))
	}
	p.Type("wfsort_class_latency_seconds", "histogram", "Request latency per class.")
	for _, name := range names {
		cc, ok := s.classes.Lookup(name)
		if !ok {
			continue
		}
		if h := cc.Histogram(); h.Count > 0 {
			p.HistogramNs("wfsort_class_latency_seconds", map[string]string{"class": name}, h)
		}
	}
	p.Type("wfsort_stage_seconds", "histogram", "Per-stage request latency attribution.")
	for i, name := range stageNames {
		if h := s.stageHists[i].Snapshot(); h.Count > 0 {
			p.HistogramNs("wfsort_stage_seconds", map[string]string{"stage": name}, h)
		}
	}
	if s.burn != nil {
		bs := s.burn.Snapshot()
		p.Type("wfsort_slo_short_burn", "gauge", "Short-window burn rate (bad fraction / budget).")
		p.Sample("wfsort_slo_short_burn", nil, bs.ShortBurn)
		p.Type("wfsort_slo_long_burn", "gauge", "Long-window burn rate (bad fraction / budget).")
		p.Sample("wfsort_slo_long_burn", nil, bs.LongBurn)
		p.Type("wfsort_slo_paging", "gauge", "1 while the burn monitor is paging.")
		p.Sample("wfsort_slo_paging", nil, b2f(bs.Paging))
		p.Type("wfsort_slo_pages_total", "counter", "Burn-monitor page transitions.")
		p.Sample("wfsort_slo_pages_total", nil, float64(bs.Pages))
	}
	if s.flight != nil {
		p.Type("wfsort_flight_dumps_total", "counter", "Flight-recorder dumps written.")
		p.Sample("wfsort_flight_dumps_total", nil, float64(s.flight.Wrote()))
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// marshalJSON renders v, swallowing the error: the flight record's
// metrics field is best-effort (the structures are all marshalable; a
// failure would only drop the embedded snapshot, not the dump).
func marshalJSON(v any) json.RawMessage {
	data, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return data
}
