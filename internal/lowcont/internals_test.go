package lowcont

import (
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

func TestAccessors(t *testing.T) {
	var a model.Arena
	s := New(&a, 100, 25)
	if s.N() != 100 || s.P() != 25 {
		t.Errorf("N/P = %d/%d", s.N(), s.P())
	}
	if s.Groups() != 5 {
		t.Errorf("Groups = %d, want floor(sqrt(25)) = 5", s.Groups())
	}
	if s.Dup() != 5 {
		t.Errorf("Dup = %d, want 5", s.Dup())
	}
	if s.FatNodes() != 3 {
		t.Errorf("FatNodes = %d, want 2^2-1 = 3", s.FatNodes())
	}
	if addr := s.WinnerRootAddr(); addr != s.winner.At(1) {
		t.Errorf("WinnerRootAddr = %d", addr)
	}
}

// TestFatElemFallback forces the write-most gap path: with the fat tree
// left completely empty, fatElem must serve every read from the
// winner's slice and still return the correct sample element.
func TestFatElemFallback(t *testing.T) {
	const n, p = 64, 16
	keys := randKeys(n, 3)
	var a model.Arena
	s := New(&a, n, p)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: 3, Less: lessFor(keys)})
	s.Seed(m.Memory())
	// Replace the program: sort normally, but with fillRounds = 0 so no
	// duplicate is ever written and every fat read takes the fallback.
	s.fillRounds = 0
	met, err := m.Run(s.Program())
	if err != nil {
		t.Fatal(err)
	}
	filled, _ := s.FatFilled(m.Memory())
	if filled != 0 {
		t.Fatalf("fat tree has %d filled slots despite fillRounds=0", filled)
	}
	want := wantRanks(keys)
	got := s.Places(m.Memory())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback-only sort: element %d placed %d, want %d", i+1, got[i], want[i])
		}
	}
	if met.MaxContention < 1 {
		t.Error("metrics empty")
	}
}

// TestLCPhasesFallbackOnly forces the deterministic escape of the
// low-contention phases 2-3 on every processor: correctness must not
// depend on the probabilistic path at all.
func TestLCPhasesFallbackOnly(t *testing.T) {
	const n, p = 48, 9
	keys := randKeys(n, 4)
	var a model.Arena
	s := New(&a, n, p)
	s.fallbackAfter = 0
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: 4, Less: lessFor(keys)})
	s.Seed(m.Memory())
	if _, err := m.Run(s.Program()); err != nil {
		t.Fatal(err)
	}
	want := wantRanks(keys)
	got := s.Places(m.Memory())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback-only phases: element %d placed %d, want %d", i+1, got[i], want[i])
		}
	}
}

// TestGlobalTreeIsSortedBST validates the glued tree itself, not just
// the ranks: the fat top, materialized sample pointers and CAS-inserted
// bottom must form one consistent BST over all n elements.
func TestGlobalTreeIsSortedBST(t *testing.T) {
	const n, p = 81, 81
	keys := randKeys(n, 5)
	s, m, _ := runLCSort(t, keys, p, 5, nil)
	w := int(m.Memory()[s.winner.At(1)]) - 1
	grp := &s.groups[w]
	r := s.sampleRank(s.inorderIndex(1), grp.size)
	root := grp.base + int(m.Memory()[grp.sorter.OutAddr(r-1)])
	if !s.table.TreeIsSortedBSTFrom(m.Memory(), root, lessFor(keys)) {
		t.Fatal("global pivot tree is not a sorted BST")
	}
}

// TestWinnerWaveWaitBounded checks the Fig. 9 wait loop is bounded by
// 2·K·logP idles per processor (wait-freedom of selectWinner).
func TestWinnerWaveWaitBounded(t *testing.T) {
	const n, p = 64, 64
	keys := randKeys(n, 6)
	var a model.Arena
	s := New(&a, n, p)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: 6, Less: lessFor(keys)})
	s.Seed(m.Memory())
	met, err := m.Run(s.Program())
	if err != nil {
		t.Fatal(err)
	}
	// Total idles across all processors: at most P * K * logP.
	bound := int64(p * waitUnit * 7)
	if met.Idles > bound {
		t.Errorf("idles = %d, want <= %d", met.Idles, bound)
	}
}

// TestSpaceIsLinear checks the paper's §1.1 space claim ("we use O(N)
// space as opposed to their O(N log N)"): the whole layout — group
// tables, winner tree, fat tree, global table, work assignment — must
// stay within a constant factor of N words as N grows.
func TestSpaceIsLinear(t *testing.T) {
	ratio := func(n, p int) float64 {
		var a model.Arena
		New(&a, n, p)
		return float64(a.Size()) / float64(n)
	}
	small := ratio(1024, 1024)
	large := ratio(65536, 65536)
	if large > small*1.5 {
		t.Errorf("space ratio grew from %.1f to %.1f words/element — not O(N)", small, large)
	}
	if large > 40 {
		t.Errorf("space ratio %.1f words/element is excessive", large)
	}
}
