package lowcont

import (
	"math"
	"sort"
	"testing"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

func lessFor(keys []int) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
}

func wantRanks(keys []int) []int {
	n := len(keys)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	less := lessFor(keys)
	sort.Slice(ids, func(a, b int) bool { return less(ids[a], ids[b]) })
	ranks := make([]int, n)
	for pos, id := range ids {
		ranks[id-1] = pos + 1
	}
	return ranks
}

func randKeys(n int, seed uint64) []int {
	rng := xrand.New(seed)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(4 * n)
	}
	return keys
}

func runLCSort(t *testing.T, keys []int, p int, seed uint64, sched pram.Scheduler) (*Sorter, *pram.Machine, *model.Metrics) {
	t.Helper()
	var a model.Arena
	s := New(&a, len(keys), p)
	m := pram.New(pram.Config{
		P: p, Mem: a.Size(), Seed: seed, Sched: sched, Less: lessFor(keys),
	})
	s.Seed(m.Memory())
	met, err := m.Run(s.Program())
	if err != nil {
		t.Fatalf("lc-sort(n=%d P=%d seed=%d): %v", len(keys), p, seed, err)
	}
	want := wantRanks(keys)
	got := s.Places(m.Memory())
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lc-sort(n=%d P=%d seed=%d): element %d placed %d, want %d",
				len(keys), p, seed, i+1, got[i], want[i])
		}
	}
	out := s.Output(m.Memory())
	for r := range out {
		if want[out[r]-1] != r+1 {
			t.Fatalf("shuffle: position %d holds element %d with rank %d", r, out[r], want[out[r]-1])
		}
	}
	return s, m, met
}

func TestLCSortSmallShapes(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{4, 4}, {5, 4}, {8, 4}, {9, 9}, {16, 4}, {16, 16},
		{25, 25}, {30, 9}, {64, 16}, {64, 64}, {100, 36},
	} {
		runLCSort(t, randKeys(tc.n, uint64(tc.n*7+tc.p)), tc.p, uint64(tc.n+tc.p), nil)
	}
}

func TestLCSortManySeeds(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		runLCSort(t, randKeys(60, seed), 16, seed, nil)
	}
}

func TestLCSortLarger(t *testing.T) {
	runLCSort(t, randKeys(512, 1), 256, 2, nil)
	runLCSort(t, randKeys(1024, 2), 64, 3, nil)
}

func TestLCSortSortedInput(t *testing.T) {
	n := 128
	asc := make([]int, n)
	desc := make([]int, n)
	for i := range asc {
		asc[i] = i
		desc[i] = n - i
	}
	runLCSort(t, asc, 16, 4, nil)
	runLCSort(t, desc, 16, 5, nil)
}

func TestLCSortDuplicateKeys(t *testing.T) {
	keys := make([]int, 90)
	for i := range keys {
		keys[i] = i % 3
	}
	runLCSort(t, keys, 25, 6, nil)
}

func TestLCSortSerializedSchedule(t *testing.T) {
	runLCSort(t, randKeys(40, 7), 9, 7, pram.RoundRobin(1))
}

func TestLCSortRandomSchedule(t *testing.T) {
	runLCSort(t, randKeys(64, 8), 16, 8, pram.RandomSubset(0.3))
}

func TestLCSortSurvivesCrashes(t *testing.T) {
	for trial := uint64(0); trial < 5; trial++ {
		const n, p = 80, 16
		crashes := pram.RandomCrashes(p, 0.6, 400, 50+trial)
		kept := crashes[:0]
		for _, c := range crashes {
			if c.PID != 0 {
				kept = append(kept, c)
			}
		}
		runLCSort(t, randKeys(n, trial), p, trial,
			pram.WithCrashes(pram.Synchronous(), kept))
	}
}

func TestLCSortCrashWholeGroups(t *testing.T) {
	// Kill every processor of two of the four groups early; survivors
	// must sort everything, including the dead groups' slices.
	const n, p = 64, 16 // G = 4, groups of 4 pids
	var crashes []pram.Crash
	for pid := 4; pid < 12; pid++ {
		crashes = append(crashes, pram.Crash{Step: 5, PID: pid})
	}
	runLCSort(t, randKeys(n, 9), p, 9, pram.WithCrashes(pram.Synchronous(), crashes))
}

func TestHeadlineContentionSqrtP(t *testing.T) {
	// The paper's §3 headline: contention drops from O(P) to
	// O(sqrt(P)). Compare the deterministic Section 2 sort with the
	// Section 3 sort at P = N and check the randomized variant stays
	// within a constant of sqrt(P) while the deterministic one scales
	// linearly.
	type row struct{ p, det, lc int }
	var rows []row
	for _, p := range []int{64, 256, 1024} {
		keys := randKeys(p, uint64(p))

		var aDet model.Arena
		det := core.NewSorter(&aDet, p, core.AllocWAT)
		mDet := pram.New(pram.Config{P: p, Mem: aDet.Size(), Seed: 1, Less: lessFor(keys)})
		det.Seed(mDet.Memory())
		metDet, err := mDet.Run(det.Program())
		if err != nil {
			t.Fatal(err)
		}

		_, _, metLC := runLCSort(t, keys, p, 1, nil)
		rows = append(rows, row{p, metDet.MaxContention, metLC.MaxContention})
	}
	for _, r := range rows {
		t.Logf("P=%4d  deterministic=%4d  lowcont=%4d  sqrt(P)=%.0f",
			r.p, r.det, r.lc, math.Sqrt(float64(r.p)))
		if float64(r.lc) > 8*math.Sqrt(float64(r.p)) {
			t.Errorf("P=%d: low-contention sort hit contention %d, want O(sqrt(P)) ≈ %.0f",
				r.p, r.lc, math.Sqrt(float64(r.p)))
		}
	}
	// The deterministic sort's contention must grow linearly with P
	// (every processor starts at the root), the randomized one must
	// grow strictly slower.
	last := rows[len(rows)-1]
	if last.det < last.p/2 {
		t.Errorf("deterministic contention %d unexpectedly low for P=%d", last.det, last.p)
	}
	if last.lc*4 > last.det {
		t.Errorf("low-contention sort (%d) not clearly below deterministic (%d) at P=%d",
			last.lc, last.det, last.p)
	}
}

func TestWinnerIsAFinishedGroup(t *testing.T) {
	// The elected winner must be a group whose slice was completely
	// sorted when its candidate was posted; validated indirectly by
	// checking the winner tree root holds a valid group id and that
	// that group's slice is in sorted order in its out region.
	keys := randKeys(64, 11)
	s, m, _ := runLCSort(t, keys, 16, 11, nil)
	w := int(m.Memory()[s.winner.At(1)]) - 1
	if w < 0 || w >= s.groupCount {
		t.Fatalf("winner root holds %d, not a group id", w+1)
	}
	grp := &s.groups[w]
	less := lessFor(keys)
	prev := 0
	for r := 0; r < grp.size; r++ {
		local := int(m.Memory()[grp.sorter.OutAddr(r)])
		global := grp.base + local
		if prev != 0 && !less(prev, global) {
			t.Fatalf("winner slice not sorted at rank %d", r+1)
		}
		prev = global
	}
}

func TestFatTreeMostlyFilled(t *testing.T) {
	// Write-most should fill the overwhelming majority of duplicate
	// slots in a faultless run (coupon collector: P log P writes over
	// <= P slots).
	s, m, _ := runLCSort(t, randKeys(256, 12), 256, 12, nil)
	filled := 0
	total := s.fatNodes * s.dup
	for i := 0; i < total; i++ {
		if m.Memory()[s.fat.At(i)] != model.Empty {
			filled++
		}
	}
	if float64(filled) < 0.95*float64(total) {
		t.Errorf("fat tree %d/%d filled, want >= 95%%", filled, total)
	}
}

func TestTreeDepthLogarithmic(t *testing.T) {
	// The §3 tree is rooted at the winner's median sample with fat
	// spreading; depth should be O(log N) w.h.p. on random input.
	for _, n := range []int{256, 1024} {
		s, m, _ := runLCSort(t, randKeys(n, uint64(n)), n, uint64(n), nil)
		d := s.Depth(m.Memory())
		logN := math.Log2(float64(n))
		if float64(d) > 8*logN {
			t.Errorf("n=%d: tree depth %d, want O(log N) ≈ %.0f", n, d, logN)
		}
	}
}

func TestGroupMappingInvariants(t *testing.T) {
	for _, tc := range []struct{ n, p int }{
		{4, 4}, {10, 5}, {100, 17}, {64, 64}, {1000, 99}, {4096, 4096},
	} {
		var a model.Arena
		s := New(&a, tc.n, tc.p)
		// Every pid maps to the group that owns it.
		for pid := 0; pid < tc.p; pid++ {
			g := s.groupOf(pid)
			grp := s.groups[g]
			if pid < grp.firstPID || pid >= grp.firstPID+grp.procs {
				t.Fatalf("n=%d p=%d: pid %d mapped to group %d [%d,%d)",
					tc.n, tc.p, pid, g, grp.firstPID, grp.firstPID+grp.procs)
			}
		}
		// Slices tile 1..n exactly.
		covered := 0
		for gi, grp := range s.groups {
			if grp.base != covered {
				t.Fatalf("n=%d p=%d: group %d base %d, want %d", tc.n, tc.p, gi, grp.base, covered)
			}
			if grp.size < 1 || grp.procs < 1 {
				t.Fatalf("n=%d p=%d: group %d empty (size=%d procs=%d)", tc.n, tc.p, gi, grp.size, grp.procs)
			}
			covered += grp.size
		}
		if covered != tc.n {
			t.Fatalf("n=%d p=%d: slices cover %d elements", tc.n, tc.p, covered)
		}
		// Sample ranks valid and strictly increasing for every slice
		// length in use.
		for _, grp := range s.groups {
			prev := 0
			for k := 1; k <= s.fatNodes; k++ {
				r := s.sampleRank(k, grp.size)
				if r <= prev || r > grp.size {
					t.Fatalf("n=%d p=%d size=%d: sampleRank(%d) = %d after %d",
						tc.n, tc.p, grp.size, k, r, prev)
				}
				if s.sampleIndexOfRank(r, grp.size) != k {
					t.Fatalf("sampleIndexOfRank(%d) != %d", r, k)
				}
				prev = r
			}
			// Non-sample ranks must map to 0.
			for r := 1; r <= grp.size; r++ {
				k := s.sampleIndexOfRank(r, grp.size)
				if k != 0 && s.sampleRank(k, grp.size) != r {
					t.Fatalf("sampleIndexOfRank(%d) = %d is wrong", r, k)
				}
			}
		}
	}
}

func TestInorderHeapBijection(t *testing.T) {
	for _, p := range []int{4, 16, 64, 256, 1024} {
		var a model.Arena
		s := New(&a, p, p)
		seen := make(map[int]bool)
		for h := 1; h <= s.fatNodes; h++ {
			k := s.inorderIndex(h)
			if k < 1 || k > s.fatNodes || seen[k] {
				t.Fatalf("p=%d: inorderIndex(%d) = %d invalid", p, h, k)
			}
			seen[k] = true
			if s.heapOfInorder(k) != h {
				t.Fatalf("p=%d: heapOfInorder(inorderIndex(%d)) = %d", p, h, s.heapOfInorder(k))
			}
		}
		// In-order indices must be BST-consistent: left subtree of h
		// has smaller in-order indices, right larger.
		var checkBST func(h, lo, hi int)
		checkBST = func(h, lo, hi int) {
			if h > s.fatNodes {
				return
			}
			k := s.inorderIndex(h)
			if k <= lo || k >= hi {
				t.Fatalf("p=%d: node %d in-order %d outside (%d,%d)", p, h, k, lo, hi)
			}
			checkBST(2*h, lo, k)
			checkBST(2*h+1, k, hi)
		}
		checkBST(1, 0, s.fatNodes+1)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 2}, {3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(n=%d, p=%d) did not panic", tc.n, tc.p)
				}
			}()
			var a model.Arena
			New(&a, tc.n, tc.p)
		}()
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	keys := randKeys(64, 13)
	_, m1, met1 := runLCSort(t, keys, 16, 21, nil)
	_, m2, met2 := runLCSort(t, keys, 16, 21, nil)
	if met1.Ops != met2.Ops || met1.Steps != met2.Steps {
		t.Errorf("same seed, different cost: ops %d/%d steps %d/%d",
			met1.Ops, met2.Ops, met1.Steps, met2.Steps)
	}
	for i, v := range m1.Memory() {
		if m2.Memory()[i] != v {
			t.Fatalf("memory diverged at %d", i)
		}
	}
}
