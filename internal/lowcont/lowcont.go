// Package lowcont implements the randomized, contention-reduced variant
// of the wait-free sort (Section 3 of the paper). The deterministic
// Section 2 algorithm suffers O(P) memory contention: at the start,
// every processor reads the root pivot's key and compare-and-swaps the
// root's child pointers. This variant reduces contention to O(sqrt(P))
// with high probability via four cooperating constructions:
//
//  1. Group split (§3.2): the P processors are divided into
//     G = floor(sqrt(P)) groups; group g sorts its own slice of the
//     input with the Section 2 algorithm. Root contention inside a
//     group is only O(sqrt(P)).
//  2. Winner selection (Fig. 9): the first group to finish is elected
//     through a binary tree that processors enter in randomized waves
//     (geometric coin-toss waits), giving O(log P) time and expected
//     O(log P) contention.
//  3. Fat tree + write-most (§3.2): sqrt(P) evenly spaced samples of
//     the winner's sorted slice become the top levels of the pivot
//     tree, each duplicated sqrt(P) times. Processors fill the
//     duplicates by writing log P uniformly random slots ("write
//     most"); readers that hit a still-empty duplicate fall back to
//     reading the winner's slice directly, which happens with
//     negligible probability.
//  4. Glue (§3.2 step 3): all N elements are inserted by the Fig. 4
//     loop, but the top log sqrt(P) comparison levels read random fat
//     duplicates, so no single word is read by more than about
//     P/sqrt(P) = sqrt(P) processors, and the CAS frontier below the
//     fat leaves splits the processors into groups of expected size
//     sqrt(P).
//
// Phases 2 and 3 (subtree sizes and ranks) then run in the
// low-contention style of §3.3: processors repeatedly probe uniformly
// random tree nodes and apply bounded local rules — sizes and DONE
// marks flow bottom-up, places and the final ALLDONE mark flow top-down
// — exactly the LC-WAT discipline of Figure 8. As in internal/lcwat, a
// processor that probes fruitlessly for Θ(log N) rounds falls back to
// one bounded deterministic pass so the implementation stays strictly
// wait-free under any schedule (the fallback fires with negligible
// probability in the synchronous executions the paper analyzes).
package lowcont

import (
	"fmt"
	"math"
	"math/bits"

	"wfsort/internal/core"
	"wfsort/internal/engine"
	"wfsort/internal/lcwat"
	"wfsort/internal/model"
)

// Word aliases the shared-memory word type.
type Word = model.Word

// waitUnit is the K constant of Fig. 9: the number of idle steps per
// wave of winner selection.
const waitUnit = 2

// group describes one processor group and its input slice.
type group struct {
	sorter   *core.Sorter // Section 2 sorter over the slice
	base     int          // slice covers global elements base+1..base+size
	size     int          // slice length
	firstPID int          // pids [firstPID, firstPID+procs) belong here
	procs    int
}

// Sorter runs the Section 3 sort for n elements on p processors.
// Requires 4 <= p <= n so that at least two groups form; callers with
// fewer processors should use the Section 2 sorter, whose contention
// is bounded by p anyway.
type Sorter struct {
	n, p       int
	groupCount int
	groups     []group

	winner    model.Region // winner-selection tree, heap of 2*winLeaves
	winLeaves int

	fat       model.Region // fatNodes * dup duplicate slots
	fatNodes  int          // F = 2^fatLevels − 1
	fatLevels int
	dup       int // duplicates per fat node (= G)

	table   *core.Sorter // global element table (no WATs)
	sumDone model.Region // phase-2 completion marks per element
	glue    *lcwat.Tree  // glue-phase work assignment (ceil(n/batch) jobs, §3.2 uses LC-WATs)
	shuf    *lcwat.Tree  // low-contention shuffle (ceil(n/batch) jobs)

	// batch is the number of elements claimed per glue/shuffle job
	// (>= 1). 1 is the paper-faithful one-element-per-job granularity the
	// simulator runs; larger batches amortize the LC-WAT probe traffic on
	// the native fast path, mirroring core's Tuning.Batch.
	batch int

	fillRounds    int
	fallbackAfter int

	// graph is the declared phase sequence (A:inner → … → G:shuffle)
	// that Sort executes through the engine scheduler.
	graph *engine.Graph
}

// New lays out the Section 3 sorter in the arena. The allocator decides
// physical placement: the simulator's dense model.Arena reproduces the
// paper's accounting, while the native padded arenas keep the winner
// tree, fat-tree duplicates and LC-WAT tops off each other's cache
// lines.
func New(a model.Allocator, n, p int) *Sorter {
	return NewTuned(a, n, p, 1)
}

// NewTuned is New with a batched work-claim granularity: the glue and
// shuffle LC-WATs cover ceil(n/batch) jobs of batch consecutive
// elements each, so workers touch the trees' contended nodes batch
// times less often — the same trade core.Tuning.Batch makes for the
// deterministic WATs. batch <= 1 reproduces New exactly (one element
// per job, the paper-faithful accounting the simulator goldens pin
// down); larger batches are only ever used by the native fast path.
func NewTuned(a model.Allocator, n, p, batch int) *Sorter {
	if p < 4 {
		panic("lowcont: need at least 4 processors (use core below that)")
	}
	if n < p {
		panic(fmt.Sprintf("lowcont: need n >= p, got n=%d p=%d", n, p))
	}
	if batch < 1 {
		batch = 1
	}
	g := int(math.Sqrt(float64(p)))
	fatLevels := max(1, bits.Len(uint(g))-1)
	s := &Sorter{
		n:             n,
		p:             p,
		groupCount:    g,
		winLeaves:     ceilPow2(p),
		fatNodes:      1<<fatLevels - 1,
		fatLevels:     fatLevels,
		dup:           g,
		batch:         batch,
		fillRounds:    bits.Len(uint(p)),
		fallbackAfter: 16 * (bits.Len(uint(n)) + 2),
	}
	s.groups = make([]group, g)
	for i := range s.groups {
		base := i * n / g
		size := (i+1)*n/g - base
		first := (i*p + g - 1) / g
		next := ((i+1)*p + g - 1) / g
		s.groups[i] = group{
			sorter:   core.NewSorterNamed(a, size, core.AllocRandomized, "grp."),
			base:     base,
			size:     size,
			firstPID: first,
			procs:    next - first,
		}
	}
	s.winner = a.Named("winner", 2*s.winLeaves)
	s.fat = a.Named("fat", s.fatNodes*s.dup)
	s.table = core.NewTableNamed(a, n, "glob.")
	s.sumDone = a.Named("glob.sumdone", n+1)
	s.glue = lcwat.NewNamed(a, "glue", ceilDiv(n, batch))
	s.shuf = lcwat.NewNamed(a, "shuffle", ceilDiv(n, batch))
	s.buildGraph()
	return s
}

// N returns the input size.
func (s *Sorter) N() int { return s.n }

// P returns the processor count the layout was built for.
func (s *Sorter) P() int { return s.p }

// Groups returns the number of processor groups (floor(sqrt(P))).
func (s *Sorter) Groups() int { return s.groupCount }

// FatNodes returns the number of distinct fat-tree pivots.
func (s *Sorter) FatNodes() int { return s.fatNodes }

// Dup returns the duplication factor of fat-tree pivots.
func (s *Sorter) Dup() int { return s.dup }

// WinnerRootAddr returns the shared-memory address of the
// winner-selection tree's root — the word every processor must
// eventually read or CAS. Experiment E15 hands it to the
// pram.HoldAddress adversary to realize the DHW Θ(P)-contention lower
// bound against this algorithm.
func (s *Sorter) WinnerRootAddr() int { return s.winner.At(1) }

// FatFilled counts, after a run, how many fat-tree duplicate slots the
// write-most phase actually filled (experiment E9 checks the w.h.p.
// claim that nearly all are).
func (s *Sorter) FatFilled(mem []Word) (filled, total int) {
	total = s.fatNodes * s.dup
	for i := 0; i < total; i++ {
		if mem[s.fat.At(i)] != model.Empty {
			filled++
		}
	}
	return filled, total
}

// Seed initializes work-assignment padding in the runtime's memory.
func (s *Sorter) Seed(mem []Word) {
	for i := range s.groups {
		s.groups[i].sorter.Seed(mem)
	}
	s.glue.Seed(mem)
	s.shuf.Seed(mem)
}

// Program returns the full Section 3 sort as a model.Program.
func (s *Sorter) Program() model.Program {
	return func(p model.Proc) { s.Sort(p) }
}

// groupOf maps a processor id to its group.
func (s *Sorter) groupOf(pid int) int { return pid * s.groupCount / s.p }

// Sort runs every phase on the calling processor by executing the
// declared phase graph. Each transition is individually gated (a
// processor moves on only once the global state it needs is complete),
// so crashes and delays never block survivors.
func (s *Sorter) Sort(p model.Proc) {
	s.graph.Run(p)
}

// Graph returns the sorter's declared phase graph. Runtimes that
// schedule at phase granularity (native.Pipeline) and the certification
// harness introspect it.
func (s *Sorter) Graph() *engine.Graph { return s.graph }

// lcState carries one execution's per-processor locals between phases:
// the elected winner group and the learned global root. A respawned
// worker re-enters the graph from phase A and re-derives both from
// shared memory.
type lcState struct {
	w    int // elected winner group (B:winner)
	root int // global root element, the winner's median sample (D:glue)
}

// buildGraph declares the §3 sort as an engine phase graph. The phase
// sequence, labels and bodies reproduce the seed's inline orchestration
// operation-for-operation; the inner §2 sorts embed as subgraphs over a
// prefixing model.SubProc, so their own phase labels ("A:1:build", …)
// carry through unchanged and the outer phase A stays label-free
// (Quiet), exactly as before.
func (s *Sorter) buildGraph() {
	g := engine.New("lowcont").WithState(func() any { return &lcState{} })
	g.Add(engine.Phase{
		Name:  "A:inner",
		Quiet: true,
		Body: engine.Embed(func(p model.Proc) (*engine.Graph, model.Proc) {
			grp := &s.groups[s.groupOf(p.ID())]
			return grp.sorter.Graph(), model.NewSubProc(p, p.ID()-grp.firstPID, grp.procs, grp.base, "A:")
		}),
		Done: func(mem []Word) bool {
			for i := range s.groups {
				if !s.groups[i].sorter.Graph().Done(mem) {
					return false
				}
			}
			return true
		},
	})
	g.Add(engine.Phase{
		Name: "B:winner",
		Body: func(p model.Proc, st any) {
			st.(*lcState).w = s.selectWinner(p, s.groupOf(p.ID()))
		},
		Done: func(mem []Word) bool { return mem[s.winner.At(1)] != model.Empty },
	})
	g.Add(engine.Phase{
		// The write-most fill is probabilistic — nearly all duplicates
		// are filled w.h.p., none are guaranteed — so the phase carries
		// no completion predicate.
		Name: "C:fill",
		Body: func(p model.Proc, st any) { s.fillFat(p, st.(*lcState).w) },
	})
	g.Add(engine.Phase{
		Name: "D:glue",
		Body: func(p model.Proc, st any) {
			ls := st.(*lcState)
			s.glue.Run(p, func(j int) { s.glueSpan(p, ls.w, j) })
			// Learn the global root (the winner's median sample) through
			// a random fat duplicate — every processor needs it, so
			// reading the winner's slice directly here would concentrate
			// P reads on one word. The read stays at the end of this
			// body so the op is attributed to phase D, as it always was.
			ls.root = s.fatElem(p, ls.w, 1)
		},
		Done: func(mem []Word) bool { return model.Doneish(mem[s.glue.RootAddr()]) },
	})
	g.Add(engine.Phase{
		Name: "E:sum",
		Body: func(p model.Proc, st any) { s.lcTreeSum(p, st.(*lcState).root) },
		Done: func(mem []Word) bool { sized, _ := s.table.Progress(mem); return sized == s.n },
	})
	g.Add(engine.Phase{
		Name: "F:place",
		Body: func(p model.Proc, st any) { s.lcFindPlace(p, st.(*lcState).root) },
		Done: func(mem []Word) bool { _, placed := s.table.Progress(mem); return placed == s.n },
	})
	g.Add(engine.Phase{
		Name: "G:shuffle",
		Body: func(p model.Proc, st any) { s.shuf.Run(p, s.shuffleSpan(p)) },
		Done: func(mem []Word) bool {
			for r := 0; r < s.n; r++ {
				if mem[s.table.OutAddr(r)] == model.Empty {
					return false
				}
			}
			return true
		},
	})
	s.graph = g
}

// glueSpan runs the glue insertion for every element of glue job j:
// elements j*batch+1 .. min((j+1)*batch, n). With batch == 1 job j
// covers exactly element j+1, the seed mapping.
func (s *Sorter) glueSpan(p model.Proc, w, j int) {
	lo := j*s.batch + 1
	hi := min(lo+s.batch-1, s.n)
	for e := lo; e <= hi; e++ {
		s.glueJob(p, w, e)
	}
}

// shuffleSpan returns the shuffle job body: publish the output slot of
// every element of job j, at the same batched granularity as glueSpan.
func (s *Sorter) shuffleSpan(p model.Proc) func(j int) {
	return func(j int) {
		lo := j*s.batch + 1
		hi := min(lo+s.batch-1, s.n)
		for elem := lo; elem <= hi; elem++ {
			r := p.Read(s.table.PlaceAddr(elem))
			p.Write(s.table.OutAddr(int(r)-1), Word(elem))
		}
	}
}

// Places extracts every element's final 1-based rank after a run.
func (s *Sorter) Places(mem []Word) []int { return s.table.Places(mem) }

// PlacesInto is Places without the allocation (see core.Sorter.PlacesInto).
func (s *Sorter) PlacesInto(mem []Word, dst []int) { s.table.PlacesInto(mem, dst) }

// Progress reports, host-side, how many elements have an installed
// subtree size and rank — the same certifier-facing counters the §2
// sorter surfaces (see core.Sorter.Progress).
func (s *Sorter) Progress(mem []Word) (sized, placed int) { return s.table.Progress(mem) }

// LiveProgress is Progress with atomic reads, safe to poll from the
// host while a native run is in flight (see core.Sorter.LiveProgress).
func (s *Sorter) LiveProgress(mem []Word) (sized, placed int) { return s.table.LiveProgress(mem) }

// Output extracts the element ids in sorted order after a run.
func (s *Sorter) Output(mem []Word) []int { return s.table.Output(mem) }

// Depth returns the built pivot tree's depth after a run. The root is
// the winner's median sample, so callers pass the run's memory.
func (s *Sorter) Depth(mem []Word) int {
	// Recover the winner from the selection tree root.
	w := int(mem[s.winner.At(1)]) - 1
	if w < 0 {
		return 0
	}
	grp := &s.groups[w]
	k := s.inorderIndex(1)
	r := s.sampleRank(k, grp.size)
	local := int(mem[grp.sorter.OutAddr(r-1)])
	return s.table.DepthFrom(mem, grp.base+local)
}

// --- winner selection (Fig. 9) ---

// selectWinner elects one finished group. candidate is the calling
// processor's (finished) group; the return value is the elected group.
// Processors delay themselves in randomized waves — a geometric coin
// run of length s yields a wait of K·(log P − s) steps, so about one
// processor enters immediately, two a beat later, and so on — which
// keeps the contention of the climb at O(log P) expected (Lemma 3.2).
func (s *Sorter) selectWinner(p model.Proc, candidate int) int {
	logP := bits.Len(uint(s.p - 1))
	run := p.Rand().Geometric(logP)
	for i := 0; i < waitUnit*(logP-run); i++ {
		p.Idle()
	}
	j := s.winLeaves + p.ID()%s.winLeaves
	v := p.Read(s.winner.At(j))
	for v == model.Empty && j != 1 {
		j /= 2
		v = p.Read(s.winner.At(j))
	}
	if j == 1 && v == model.Empty {
		p.CAS(s.winner.At(1), model.Empty, Word(candidate+1))
		v = p.Read(s.winner.At(1))
	}
	if 2*j+1 < s.winner.Len {
		p.Write(s.winner.At(2*j), v)
		p.Write(s.winner.At(2*j+1), v)
	}
	return int(v) - 1
}

// --- fat tree (§3.2) ---

// inorderIndex returns the 1-based in-order position of heap node h in
// the complete fat tree, i.e. which sample (by rank order) lives there.
func (s *Sorter) inorderIndex(h int) int {
	level := bits.Len(uint(h)) - 1
	pos := h - 1<<level
	return (2*pos + 1) << (s.fatLevels - 1 - level)
}

// heapOfInorder is the inverse of inorderIndex.
func (s *Sorter) heapOfInorder(k int) int {
	t := bits.TrailingZeros(uint(k))
	level := s.fatLevels - 1 - t
	pos := (k>>t - 1) / 2
	return 1<<level + pos
}

// sampleRank returns the rank (1-based, within the winner's slice of
// length size) of the k-th sample. Ranks are evenly spaced and strictly
// increasing because size >= fatNodes+1.
func (s *Sorter) sampleRank(k, size int) int {
	return k * size / (s.fatNodes + 1)
}

// sampleIndexOfRank reports which sample (1..fatNodes) has the given
// slice rank, or 0 if the rank is not a sample point.
func (s *Sorter) sampleIndexOfRank(r, size int) int {
	k := r * (s.fatNodes + 1) / size
	for c := k - 1; c <= k+1; c++ {
		if c >= 1 && c <= s.fatNodes && s.sampleRank(c, size) == r {
			return c
		}
	}
	return 0
}

// sampleDirect reads the global element id of fat node h straight from
// the winner's sorted slice (one shared read).
func (s *Sorter) sampleDirect(p model.Proc, w, h int) int {
	grp := &s.groups[w]
	r := s.sampleRank(s.inorderIndex(h), grp.size)
	local := int(p.Read(grp.sorter.OutAddr(r - 1)))
	return grp.base + local
}

// fatElem reads fat node h's element id through a uniformly random
// duplicate, falling back to the winner's slice for the (w.h.p. empty)
// set of unfilled duplicates. Spreading P readers over sqrt(P)
// duplicates is what caps read contention at sqrt(P).
func (s *Sorter) fatElem(p model.Proc, w, h int) int {
	c := p.Rand().Intn(s.dup)
	if v := p.Read(s.fat.At((h-1)*s.dup + c)); v != model.Empty {
		return int(v)
	}
	return s.sampleDirect(p, w, h)
}

// fillFat performs the write-most fill: log P rounds of writing a
// uniformly random duplicate slot with its node's sample id. Writes are
// idempotent, nobody waits for the table to be complete, and after all
// processors have taken their rounds every slot is filled w.h.p.
// (coupon collecting P·log P writes over at most P slots).
func (s *Sorter) fillFat(p model.Proc, w int) {
	rng := p.Rand()
	for r := 0; r < s.fillRounds; r++ {
		slot := rng.Intn(s.fatNodes * s.dup)
		e := s.sampleDirect(p, w, slot/s.dup+1)
		p.Write(s.fat.At(slot), Word(e))
	}
}

// --- glue phase (§3.2 step 3) ---

// glueJob processes one element of the glue work-assignment tree:
// sample elements have their fat-child pointers materialized (their
// position in the tree is fixed by the fat structure); every other
// element is inserted below the fat leaves by the Fig. 4 loop.
func (s *Sorter) glueJob(p model.Proc, w, e int) {
	grp := &s.groups[w]
	if e > grp.base && e <= grp.base+grp.size {
		local := e - grp.base
		r := int(p.Read(grp.sorter.PlaceAddr(local)))
		if k := s.sampleIndexOfRank(r, grp.size); k > 0 {
			h := s.heapOfInorder(k)
			if 2*h+1 <= s.fatNodes {
				// Internal fat node: children are the neighbouring
				// samples; write the real tree pointers so phases 2–3
				// can traverse them.
				small := s.sampleDirect(p, w, 2*h)
				big := s.sampleDirect(p, w, 2*h+1)
				p.Write(s.table.ChildAddr(core.Small, e), Word(small))
				p.Write(s.table.ChildAddr(core.Big, e), Word(big))
			}
			return
		}
	}
	s.fatInsert(p, w, e)
}

// fatInsert descends the fat levels arithmetically, reading one random
// duplicate per level, then continues with the ordinary CAS descent
// from the fat leaf it lands under.
func (s *Sorter) fatInsert(p model.Proc, w, e int) {
	h := 1
	for {
		fe := s.fatElem(p, w, h)
		next := 2 * h
		if !p.Less(e, fe) {
			next = 2*h + 1
		}
		if next > s.fatNodes {
			s.table.BuildTreeFrom(p, e, fe)
			return
		}
		h = next
	}
}

// --- low-contention phase 2 (§3.3) ---

// lcTreeSum computes all subtree sizes by random probing: sizes and
// DONE marks flow bottom-up; the root gets ALLDONE, which probing
// processors push back down one node at a time before quitting.
func (s *Sorter) lcTreeSum(p model.Proc, root int) {
	rng := p.Rand()
	unproductive := 0
	for {
		i := 1 + rng.Intn(s.n)
		switch v := p.Read(s.sumDone.At(i)); {
		case v == model.AllDone:
			s.pushMark(p, s.sumDone, i)
			return
		case v == model.Empty:
			l := p.Read(s.table.ChildAddr(core.Small, i))
			r := p.Read(s.table.ChildAddr(core.Big, i))
			ls, okL := model.ChildSum(p, l, s.sumDone.At, s.table.SizeAddr)
			rs, okR := model.ChildSum(p, r, s.sumDone.At, s.table.SizeAddr)
			if okL && okR {
				p.Write(s.table.SizeAddr(i), ls+rs+1)
				mark := model.Done
				if i == root {
					mark = model.AllDone
				}
				p.Write(s.sumDone.At(i), mark)
				unproductive = 0
			} else {
				unproductive++
			}
		default: // DONE
			unproductive++
		}
		if unproductive >= s.fallbackAfter {
			// Bounded deterministic escape: one Fig. 5 pass from the
			// root (crash-safe pruning on size>0), then release the
			// random probers.
			s.table.TreeSumFrom(p, root)
			p.Write(s.sumDone.At(root), model.AllDone)
			return
		}
	}
}

// pushMark copies an ALLDONE mark from node i to its present children
// (the quitting processor's parting gift, as in Fig. 8).
func (s *Sorter) pushMark(p model.Proc, marks model.Region, i int) {
	if l := p.Read(s.table.ChildAddr(core.Small, i)); l != model.Empty {
		p.Write(marks.At(int(l)), model.AllDone)
	}
	if r := p.Read(s.table.ChildAddr(core.Big, i)); r != model.Empty {
		p.Write(marks.At(int(r)), model.AllDone)
	}
}

// --- low-contention phase 3 (§3.3) ---

// placeMarks aliases the table's placeDone region; lcFindPlace needs
// region-style access for pushMark. The region comes straight from the
// table (not rebuilt from PlaceDoneAddr(0)) so that the addresses agree
// with the deterministic fallback even on non-contiguous padded arenas.
func (s *Sorter) placeMarks() model.Region {
	return s.table.PlaceDoneRegion()
}

// placeChild writes child c's rank if it is still unset, given its
// parent's rank components. sub is the number of elements smaller than
// c's whole subtree.
func (s *Sorter) placeChild(p model.Proc, c Word, sub Word) {
	if c == model.Empty {
		return
	}
	ci := int(c)
	if p.Read(s.table.PlaceAddr(ci)) != 0 {
		return
	}
	sm := model.SmallSubtreeSize(p, p.Read(s.table.ChildAddr(core.Small, ci)), s.table.SizeAddr)
	p.Write(s.table.PlaceAddr(ci), sub+sm+1)
}

// lcFindPlace assigns every element its rank by random probing: place
// values flow top-down from the root (whose rank is its small-subtree
// size plus one), DONE marks flow bottom-up, and the root's ALLDONE
// mark flows back down to release the probers — the three passes of
// §3.3.
func (s *Sorter) lcFindPlace(p model.Proc, root int) {
	marks := s.placeMarks()
	rng := p.Rand()
	unproductive := 0
	for {
		i := 1 + rng.Intn(s.n)
		switch v := p.Read(marks.At(i)); {
		case v == model.AllDone:
			s.pushMark(p, marks, i)
			return
		case model.Doneish(v):
			unproductive++
		default: // not yet complete
			pl := p.Read(s.table.PlaceAddr(i))
			if pl == 0 {
				if i == root {
					sm := model.SmallSubtreeSize(p, p.Read(s.table.ChildAddr(core.Small, root)), s.table.SizeAddr)
					p.Write(s.table.PlaceAddr(root), sm+1)
					unproductive = 0
				} else {
					unproductive++
				}
				break
			}
			// Rank known: push ranks to unplaced children, then mark
			// this node complete once both child subtrees are.
			l := p.Read(s.table.ChildAddr(core.Small, i))
			r := p.Read(s.table.ChildAddr(core.Big, i))
			sm := model.SmallSubtreeSize(p, l, s.table.SizeAddr)
			sub := pl - sm - 1
			s.placeChild(p, l, sub)
			s.placeChild(p, r, pl)
			lDone := l == model.Empty || model.Doneish(p.Read(marks.At(int(l))))
			rDone := r == model.Empty || model.Doneish(p.Read(marks.At(int(r))))
			if lDone && rDone {
				mark := model.Done
				if i == root {
					mark = model.AllDone
				}
				p.Write(marks.At(i), mark)
				unproductive = 0
			} else {
				unproductive++
			}
		}
		if unproductive >= s.fallbackAfter {
			s.table.FindPlaceFrom(p, root, 0)
			p.Write(marks.At(root), model.AllDone)
			return
		}
	}
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// ceilDiv returns ceil(a/b) for positive b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }
