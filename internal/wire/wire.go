// Package wire is the binary sort-payload codec shared by the serving
// tier (POST /sort and /shard negotiate it via Content-Type), the
// cluster tier's scatter/gather, and the streaming external sort's
// spill format. JSON remains the default and the compatibility
// surface; this codec exists for the hot paths where re-marshalling a
// million int64s as decimal strings is the dominant cost.
//
// A payload is one self-describing block:
//
//	offset size  field
//	0      4     magic "WFS1"
//	4      1     version (currently 1)
//	5      1     kind (request / reply / shard reply / spill chunk)
//	6      2     reserved, must be zero
//	8      8     N — key count, little-endian uint64
//	16     8     sum — int64 sum of the keys (wrapping), little-endian
//	24     8     xor — xor of the keys, little-endian
//	32     8·N   the keys, little-endian int64s
//
// The sum/xor pair is the same multiset ledger the cluster tier and
// loadgen verify with: it rides the header, so a receiver folds the
// ledger while streaming the payload and detects a corrupted, torn or
// foreign body without a second pass. Decoding is hostile-input safe
// by construction — the key count is validated against the caller's
// limit before a single key is allocated, every failure is a typed
// *Error wrapping one of the sentinel kinds, and nothing panics (the
// FuzzWire battery holds it to that).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Format constants.
const (
	// Version is the codec version written and accepted.
	Version = 1
	// HeaderLen is the fixed block header size in bytes.
	HeaderLen = 32
	// ContentType is the negotiation token: a POST /sort or /shard
	// request with this Content-Type carries a wire block instead of
	// JSON, and its response is a wire block too.
	ContentType = "application/x-wfsort"
)

// magic is the first four header bytes.
var magic = [4]byte{'W', 'F', 'S', '1'}

// Block kinds.
const (
	// KindRequest is a sort or shard request: the unsorted keys.
	KindRequest byte = 1
	// KindReply is a /sort response: the sorted keys.
	KindReply byte = 2
	// KindShardReply is a /shard response: the sorted keys, with the
	// header ledger doubling as the backend's sum/xor echo the cluster
	// coordinator cross-checks.
	KindShardReply byte = 3
	// KindChunk is one sorted chunk in a SortStream spill file.
	KindChunk byte = 4
)

// maxSaneKeys caps N even when the caller sets no limit: 8·N must not
// overflow and a header promising petabytes is hostile, not big.
const maxSaneKeys = 1 << 40

// Sentinel decode-failure kinds. Every error this package returns
// wraps exactly one of them, so callers classify with errors.Is and
// never parse messages.
var (
	// ErrMagic means the block does not start with the WFS1 magic —
	// wrong endpoint, wrong Content-Type, or line noise.
	ErrMagic = errors.New("wire: bad magic")
	// ErrVersion means an unknown codec version or reserved header
	// bits set: written by a future writer, or corrupted.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrKind means the block kind is not the one the caller expected
	// (e.g. a reply block arriving where a request must be).
	ErrKind = errors.New("wire: unexpected block kind")
	// ErrTooLarge means the header's key count exceeds the caller's
	// limit. It is detected before any payload is read or allocated,
	// so an absurd N costs the receiver 32 bytes, not gigabytes.
	ErrTooLarge = errors.New("wire: key count exceeds limit")
	// ErrTruncated means the stream ended inside the header or
	// payload.
	ErrTruncated = errors.New("wire: truncated block")
	// ErrLedger means the payload's folded sum/xor does not match the
	// header's — a torn, corrupted or foreign body.
	ErrLedger = errors.New("wire: ledger mismatch")
)

// Error is the codec's typed error: the sentinel kind plus detail.
type Error struct {
	Kind   error
	Detail string
}

func (e *Error) Error() string {
	if e.Detail == "" {
		return e.Kind.Error()
	}
	return e.Kind.Error() + ": " + e.Detail
}

func (e *Error) Unwrap() error { return e.Kind }

func errf(kind error, format string, args ...any) error {
	return &Error{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// Header is one decoded block header.
type Header struct {
	Kind     byte
	N        int
	Sum, Xor int64
}

// Fold returns the sum/xor multiset ledger of keys — the pair the
// header carries and the cluster tier's verification vocabulary.
func Fold(keys []int64) (sum, xor int64) {
	for _, k := range keys {
		sum += k
		xor ^= k
	}
	return sum, xor
}

// IsWire reports whether an HTTP Content-Type (or Accept) value
// selects this codec. Parameters after ";" are ignored.
func IsWire(contentType string) bool {
	for i := 0; i < len(contentType); i++ {
		if contentType[i] == ';' {
			contentType = contentType[:i]
			break
		}
	}
	for len(contentType) > 0 && contentType[len(contentType)-1] == ' ' {
		contentType = contentType[:len(contentType)-1]
	}
	return contentType == ContentType
}

// scratch pools the byte buffers encode and decode stream through, so
// steady-state serving pays no per-request codec allocation beyond the
// keys themselves.
var scratch = sync.Pool{
	New: func() any { b := make([]byte, 32*1024); return &b },
}

// putHeader encodes a header for n keys with the given ledger.
func putHeader(dst *[HeaderLen]byte, kind byte, n int, sum, xor int64) {
	copy(dst[0:4], magic[:])
	dst[4] = Version
	dst[5] = kind
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint64(dst[8:16], uint64(n))
	binary.LittleEndian.PutUint64(dst[16:24], uint64(sum))
	binary.LittleEndian.PutUint64(dst[24:32], uint64(xor))
}

// WriteBlock encodes one block — header plus keys — onto w, folding
// the ledger as it streams. Large payloads are written in bounded
// scratch-buffer chunks, never marshalled whole.
func WriteBlock(w io.Writer, kind byte, keys []int64) error {
	sum, xor := Fold(keys)
	var h [HeaderLen]byte
	putHeader(&h, kind, len(keys), sum, xor)
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	bp := scratch.Get().(*[]byte)
	defer scratch.Put(bp)
	buf := *bp
	per := len(buf) / 8
	for off := 0; off < len(keys); off += per {
		end := off + per
		if end > len(keys) {
			end = len(keys)
		}
		b := buf[:8*(end-off)]
		for i, k := range keys[off:end] {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(k))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// AppendBlock appends one encoded block to dst and returns it —
// the in-memory form of WriteBlock, for transports that want a []byte
// body up front.
func AppendBlock(dst []byte, kind byte, keys []int64) []byte {
	sum, xor := Fold(keys)
	var h [HeaderLen]byte
	putHeader(&h, kind, len(keys), sum, xor)
	dst = append(dst, h[:]...)
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(k))
	}
	return dst
}

// BlockLen is the encoded size of a block of n keys.
func BlockLen(n int) int { return HeaderLen + 8*n }

// Reader decodes one block from a stream: Header first (validating
// magic, version and the key-count limit before anything is
// allocated), then ReadKeys until io.EOF, folding and verifying the
// ledger on the way. It satisfies the KeySource shape the streaming
// merge and SortStream consume.
type Reader struct {
	r         io.Reader
	h         Header
	gotHeader bool
	remaining int
	sum, xor  int64
	verified  bool
}

// NewReader returns a block decoder over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Header reads and validates the block header. maxKeys bounds the
// promised key count (<= 0 means the absolute sanity cap only); an
// over-limit count fails here, before any payload allocation. Calling
// Header again returns the same decoded header.
func (d *Reader) Header(maxKeys int) (Header, error) {
	if d.gotHeader {
		return d.h, nil
	}
	var h [HeaderLen]byte
	if _, err := io.ReadFull(d.r, h[:]); err != nil {
		return Header{}, errf(ErrTruncated, "header: %v", err)
	}
	if [4]byte(h[0:4]) != magic {
		return Header{}, errf(ErrMagic, "got % x", h[0:4])
	}
	if h[4] != Version {
		return Header{}, errf(ErrVersion, "version %d", h[4])
	}
	if h[6] != 0 || h[7] != 0 {
		return Header{}, errf(ErrVersion, "reserved bits set")
	}
	if h[5] < KindRequest || h[5] > KindChunk {
		return Header{}, errf(ErrKind, "kind %d", h[5])
	}
	n := binary.LittleEndian.Uint64(h[8:16])
	limit := uint64(maxSaneKeys)
	if maxKeys > 0 && uint64(maxKeys) < limit {
		limit = uint64(maxKeys)
	}
	if n > limit {
		return Header{}, errf(ErrTooLarge, "n=%d exceeds the %d-key limit", n, limit)
	}
	d.h = Header{
		Kind: h[5],
		N:    int(n),
		Sum:  int64(binary.LittleEndian.Uint64(h[16:24])),
		Xor:  int64(binary.LittleEndian.Uint64(h[24:32])),
	}
	d.remaining = d.h.N
	d.gotHeader = true
	return d.h, nil
}

// ReadKeys fills buf with the next decoded keys and reports how many.
// After the last key it verifies the payload ledger against the
// header — a mismatch is an ErrLedger — and thereafter returns
// (0, io.EOF). Header must have been called first.
func (d *Reader) ReadKeys(buf []int64) (int, error) {
	if !d.gotHeader {
		return 0, errf(ErrTruncated, "ReadKeys before Header")
	}
	if d.remaining == 0 {
		if err := d.finish(); err != nil {
			return 0, err
		}
		return 0, io.EOF
	}
	want := len(buf)
	if want > d.remaining {
		want = d.remaining
	}
	if want == 0 {
		return 0, nil
	}
	bp := scratch.Get().(*[]byte)
	defer scratch.Put(bp)
	raw := *bp
	per := len(raw) / 8
	read := 0
	for read < want {
		c := want - read
		if c > per {
			c = per
		}
		b := raw[:8*c]
		if _, err := io.ReadFull(d.r, b); err != nil {
			return read, errf(ErrTruncated, "payload at key %d of %d: %v", d.h.N-d.remaining, d.h.N, err)
		}
		for i := 0; i < c; i++ {
			k := int64(binary.LittleEndian.Uint64(b[8*i:]))
			buf[read+i] = k
			d.sum += k
			d.xor ^= k
		}
		read += c
		d.remaining -= c
	}
	if d.remaining == 0 {
		if err := d.finish(); err != nil {
			return read, err
		}
	}
	return read, nil
}

// finish verifies the streamed ledger once, after the last key.
func (d *Reader) finish() error {
	if d.verified {
		return nil
	}
	if d.sum != d.h.Sum || d.xor != d.h.Xor {
		return errf(ErrLedger, "header sum=%d xor=%d, payload sum=%d xor=%d",
			d.h.Sum, d.h.Xor, d.sum, d.xor)
	}
	d.verified = true
	return nil
}

// ReadBlock decodes one whole block: header validation (wantKind, or 0
// to accept any kind; maxKeys as in Header), payload, ledger check.
// It returns the decoded keys and header.
func ReadBlock(r io.Reader, wantKind byte, maxKeys int) ([]int64, Header, error) {
	d := NewReader(r)
	h, err := d.Header(maxKeys)
	if err != nil {
		return nil, Header{}, err
	}
	if wantKind != 0 && h.Kind != wantKind {
		return nil, h, errf(ErrKind, "got kind %d, want %d", h.Kind, wantKind)
	}
	keys := make([]int64, h.N)
	for got := 0; got < h.N; {
		n, err := d.ReadKeys(keys[got:])
		got += n
		if err != nil {
			return nil, h, err
		}
	}
	if h.N == 0 {
		// Zero-key blocks still verify their (zero) ledger.
		if _, err := d.ReadKeys(nil); err != io.EOF {
			return nil, h, err
		}
	}
	return keys, h, nil
}
