package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"math/rand"
	"testing"
)

func testKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Uint64())
	}
	return keys
}

func TestRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 4096, 4097, 100000} {
		keys := testKeys(n, int64(n)+1)
		var buf bytes.Buffer
		if err := WriteBlock(&buf, KindRequest, keys); err != nil {
			t.Fatalf("n=%d: WriteBlock: %v", n, err)
		}
		if buf.Len() != BlockLen(n) {
			t.Fatalf("n=%d: encoded %d bytes, want %d", n, buf.Len(), BlockLen(n))
		}
		got, h, err := ReadBlock(&buf, KindRequest, 0)
		if err != nil {
			t.Fatalf("n=%d: ReadBlock: %v", n, err)
		}
		if h.Kind != KindRequest || h.N != n {
			t.Fatalf("n=%d: header %+v", n, h)
		}
		sum, xor := Fold(keys)
		if h.Sum != sum || h.Xor != xor {
			t.Fatalf("n=%d: header ledger (%d,%d), want (%d,%d)", n, h.Sum, h.Xor, sum, xor)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d keys", n, len(got))
		}
		for i := range got {
			if got[i] != keys[i] {
				t.Fatalf("n=%d: key %d = %d, want %d", n, i, got[i], keys[i])
			}
		}
	}
}

func TestAppendBlockMatchesWriteBlock(t *testing.T) {
	keys := testKeys(777, 7)
	var buf bytes.Buffer
	if err := WriteBlock(&buf, KindShardReply, keys); err != nil {
		t.Fatal(err)
	}
	app := AppendBlock(nil, KindShardReply, keys)
	if !bytes.Equal(buf.Bytes(), app) {
		t.Fatal("AppendBlock and WriteBlock disagree")
	}
}

func TestStreamingReader(t *testing.T) {
	keys := testKeys(10000, 99)
	body := AppendBlock(nil, KindChunk, keys)
	d := NewReader(bytes.NewReader(body))
	h, err := d.Header(0)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != len(keys) || h.Kind != KindChunk {
		t.Fatalf("header %+v", h)
	}
	// Re-calling Header is idempotent.
	if h2, err := d.Header(0); err != nil || h2 != h {
		t.Fatalf("second Header: %+v, %v", h2, err)
	}
	var got []int64
	buf := make([]int64, 333) // deliberately not a divisor of N
	for {
		n, err := d.ReadKeys(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("streamed %d keys, want %d", len(got), len(keys))
	}
	for i := range got {
		if got[i] != keys[i] {
			t.Fatalf("key %d mismatch", i)
		}
	}
	// Further reads stay EOF.
	if n, err := d.ReadKeys(buf); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF read: %d, %v", n, err)
	}
}

func TestReadKeysBeforeHeader(t *testing.T) {
	d := NewReader(bytes.NewReader(AppendBlock(nil, KindRequest, []int64{1})))
	if _, err := d.ReadKeys(make([]int64, 1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

func TestHostileInputs(t *testing.T) {
	good := AppendBlock(nil, KindRequest, testKeys(64, 3))
	cases := []struct {
		name string
		body []byte
		max  int
		want error
	}{
		{"empty", nil, 0, ErrTruncated},
		{"short header", good[:HeaderLen-1], 0, ErrTruncated},
		{"bad magic", append([]byte("NOPE"), good[4:]...), 0, ErrMagic},
		{"bad version", mut(good, 4, 9), 0, ErrVersion},
		{"reserved bits", mut(good, 6, 1), 0, ErrVersion},
		{"kind zero", mut(good, 5, 0), 0, ErrKind},
		{"kind high", mut(good, 5, 200), 0, ErrKind},
		{"truncated payload", good[:HeaderLen+8*10], 0, ErrTruncated},
		{"over caller limit", good, 63, ErrTooLarge},
		{"absurd n", absurdN(), 0, ErrTooLarge},
		{"ledger sum", mut(good, 16, good[16]+1), 0, ErrLedger},
		{"ledger xor", mut(good, 24, good[24]^0xff), 0, ErrLedger},
		{"flipped key", mut(good, HeaderLen+8, good[HeaderLen+8]^1), 0, ErrLedger},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ReadBlock(bytes.NewReader(c.body), KindRequest, c.max)
			if !errors.Is(err, c.want) {
				t.Fatalf("got %v, want %v", err, c.want)
			}
			var we *Error
			if !errors.As(err, &we) {
				t.Fatalf("error %v is not a *wire.Error", err)
			}
		})
	}
}

func mut(b []byte, i int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[i] = v
	return out
}

// absurdN is a header promising math.MaxUint64 keys with no payload:
// the decoder must refuse before allocating anything.
func absurdN() []byte {
	b := AppendBlock(nil, KindRequest, nil)
	binary.LittleEndian.PutUint64(b[8:16], math.MaxUint64)
	return b
}

func TestWrongKind(t *testing.T) {
	body := AppendBlock(nil, KindReply, []int64{1, 2, 3})
	if _, _, err := ReadBlock(bytes.NewReader(body), KindRequest, 0); !errors.Is(err, ErrKind) {
		t.Fatalf("got %v, want ErrKind", err)
	}
	// wantKind 0 accepts anything.
	if _, _, err := ReadBlock(bytes.NewReader(body), 0, 0); err != nil {
		t.Fatalf("any-kind read: %v", err)
	}
}

func TestIsWire(t *testing.T) {
	cases := map[string]bool{
		ContentType:                      true,
		ContentType + "; charset=utf-8":  true,
		ContentType + " ; q=1":           true,
		"application/json":               false,
		"":                               false,
		"application/x-wfsort-not-quite": false,
	}
	for ct, want := range cases {
		if got := IsWire(ct); got != want {
			t.Errorf("IsWire(%q) = %v, want %v", ct, got, want)
		}
	}
}

func TestLedgerOverflowWraps(t *testing.T) {
	// Sum wraps int64; the ledger must still round-trip.
	keys := []int64{math.MaxInt64, math.MaxInt64, 1, math.MinInt64}
	body := AppendBlock(nil, KindRequest, keys)
	got, _, err := ReadBlock(bytes.NewReader(body), KindRequest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("got %d keys", len(got))
	}
}

func TestZeroKeyBlock(t *testing.T) {
	body := AppendBlock(nil, KindReply, nil)
	if len(body) != HeaderLen {
		t.Fatalf("empty block is %d bytes", len(body))
	}
	got, h, err := ReadBlock(bytes.NewReader(body), KindReply, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 0 || len(got) != 0 {
		t.Fatalf("h=%+v len=%d", h, len(got))
	}
	// A zero-key block with a nonzero claimed ledger is corrupt.
	bad := mut(body, 16, 5)
	if _, _, err := ReadBlock(bytes.NewReader(bad), KindReply, 0); !errors.Is(err, ErrLedger) {
		t.Fatalf("got %v, want ErrLedger", err)
	}
}

func BenchmarkWriteBlock(b *testing.B) {
	keys := testKeys(1<<16, 1)
	var buf bytes.Buffer
	buf.Grow(BlockLen(len(keys)))
	b.SetBytes(int64(BlockLen(len(keys))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteBlock(&buf, KindRequest, keys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadBlock(b *testing.B) {
	body := AppendBlock(nil, KindRequest, testKeys(1<<16, 1))
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ReadBlock(bytes.NewReader(body), KindRequest, 0); err != nil {
			b.Fatal(err)
		}
	}
}
