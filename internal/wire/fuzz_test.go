package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWire drives the decoder with arbitrary bytes and holds the codec
// contract: decoding either succeeds with a payload whose re-encoding
// ledger matches the header, or fails with a typed *Error wrapping one
// of the sentinel kinds — and it NEVER panics or allocates payload
// space for a key count the limit forbids. Round-trip seeds come from
// the encoder, hostile seeds from the corpus under testdata/fuzz.
func FuzzWire(f *testing.F) {
	f.Add(AppendBlock(nil, KindRequest, []int64{3, 1, 2}), 0)
	f.Add(AppendBlock(nil, KindReply, nil), 16)
	f.Add(AppendBlock(nil, KindShardReply, []int64{-9, 9, 0, -9}), 4)
	f.Add(AppendBlock(nil, KindChunk, []int64{1 << 62, -(1 << 62)}), 2)
	f.Add([]byte("WFS1"), 0)
	f.Add([]byte{}, 0)

	f.Fuzz(func(t *testing.T, body []byte, maxKeys int) {
		if maxKeys < 0 {
			maxKeys = -maxKeys
		}
		// Cap the limit so a fuzz input can't legitimately ask us to
		// allocate gigabytes; the absurd-N defense is what's under test.
		if maxKeys == 0 || maxKeys > 1<<20 {
			maxKeys = 1 << 20
		}
		keys, h, err := ReadBlock(bytes.NewReader(body), 0, maxKeys)
		if err != nil {
			var we *Error
			if !errors.As(err, &we) {
				t.Fatalf("untyped decode error: %v", err)
			}
			sentinel := errors.Is(err, ErrMagic) || errors.Is(err, ErrVersion) ||
				errors.Is(err, ErrKind) || errors.Is(err, ErrTooLarge) ||
				errors.Is(err, ErrTruncated) || errors.Is(err, ErrLedger)
			if !sentinel {
				t.Fatalf("error %v wraps no sentinel", err)
			}
			return
		}
		// Success: the decode obeyed the limit, the ledger matches,
		// and re-encoding reproduces the original block bytes.
		if len(keys) != h.N || h.N > maxKeys {
			t.Fatalf("decoded %d keys, header N=%d, limit %d", len(keys), h.N, maxKeys)
		}
		sum, xor := Fold(keys)
		if sum != h.Sum || xor != h.Xor {
			t.Fatalf("accepted block with ledger mismatch: fold (%d,%d) header (%d,%d)",
				sum, xor, h.Sum, h.Xor)
		}
		re := AppendBlock(nil, h.Kind, keys)
		if !bytes.Equal(re, body[:BlockLen(h.N)]) {
			t.Fatal("re-encode does not reproduce the accepted block")
		}
		// The streaming reader agrees with the one-shot reader.
		d := NewReader(bytes.NewReader(body))
		if _, err := d.Header(maxKeys); err != nil {
			t.Fatalf("streaming header disagrees: %v", err)
		}
		buf := make([]int64, 7)
		var streamed int
		for {
			n, err := d.ReadKeys(buf)
			for i := 0; i < n; i++ {
				if buf[i] != keys[streamed+i] {
					t.Fatalf("streaming key %d disagrees", streamed+i)
				}
			}
			streamed += n
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("streaming read disagrees: %v", err)
			}
		}
		if streamed != h.N {
			t.Fatalf("streamed %d keys, want %d", streamed, h.N)
		}
	})
}
