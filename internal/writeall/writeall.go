// Package writeall poses the write-all problem of Kanellakis and
// Shvartsman (§2 of the paper): given an array of N cells and P
// fault-prone processors, fill every cell with 1. Write-all is the
// canonical kernel of wait-free cooperation — it is how the sort hands
// out insertions, output writes and simulation rounds — so the package
// exposes each allocation strategy as a uniformly-shaped solver for
// experiments and benchmarks to compare.
package writeall

import (
	"fmt"

	"wfsort/internal/lcwat"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/wat"
)

// Variant selects a work-allocation strategy.
type Variant int

// Write-all strategies.
const (
	// WAT uses the deterministic work-assignment tree (Fig. 1/2):
	// O(K + log N) time at P = N, but O(P) contention at the root.
	WAT Variant = iota
	// LCWAT uses random probing with ALLDONE dissemination (Fig. 8):
	// O(log P) time w.h.p. with O(log P / log log P) contention.
	LCWAT
	// Static assigns cell j to processor j mod P with no reassignment.
	// It is trivially wait-free but NOT fault-tolerant: a crashed
	// processor's cells are never written. It is the baseline that
	// shows why completion tracking is needed at all.
	Static
)

// String returns the variant's mnemonic.
func (v Variant) String() string {
	switch v {
	case WAT:
		return "wat"
	case LCWAT:
		return "lcwat"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Result reports one write-all run.
type Result struct {
	// Metrics is the simulator's cost accounting.
	Metrics *model.Metrics
	// Complete reports whether every cell was filled. Wait-free
	// fault-tolerant variants must always complete; Static does not
	// under crashes.
	Complete bool
	// Missing counts unfilled cells.
	Missing int
}

// Config describes one write-all run.
type Config struct {
	Variant Variant
	N, P    int
	Seed    uint64
	Sched   pram.Scheduler // nil = faultless synchronous
}

// Run solves one write-all instance on the simulator.
func Run(cfg Config) (Result, error) {
	if cfg.N < 1 || cfg.P < 1 {
		return Result{}, fmt.Errorf("writeall: bad size n=%d p=%d", cfg.N, cfg.P)
	}
	var a model.Arena
	var w *wat.WAT
	var lc *lcwat.Tree
	switch cfg.Variant {
	case WAT:
		w = wat.New(&a, cfg.N)
	case LCWAT:
		lc = lcwat.New(&a, cfg.N)
	case Static:
	default:
		return Result{}, fmt.Errorf("writeall: unknown variant %d", cfg.Variant)
	}
	out := a.Array(cfg.N)

	m := pram.New(pram.Config{P: cfg.P, Mem: a.Size(), Seed: cfg.Seed, Sched: cfg.Sched})
	if w != nil {
		w.Seed(m.Memory())
	}
	if lc != nil {
		lc.Seed(m.Memory())
	}
	fill := func(p model.Proc) func(j int) {
		return func(j int) { p.Write(out.At(j), 1) }
	}
	met, err := m.Run(func(p model.Proc) {
		switch cfg.Variant {
		case WAT:
			w.Run(p, fill(p))
		case LCWAT:
			lc.Run(p, fill(p))
		case Static:
			for j := p.ID(); j < cfg.N; j += cfg.P {
				p.Write(out.At(j), 1)
			}
		}
	})
	if err != nil {
		return Result{Metrics: met}, err
	}
	res := Result{Metrics: met, Complete: true}
	for j := 0; j < cfg.N; j++ {
		if m.Memory()[out.At(j)] != 1 {
			res.Complete = false
			res.Missing++
		}
	}
	return res, nil
}
