package writeall

import (
	"testing"

	"wfsort/internal/pram"
)

func TestAllVariantsCompleteFaultless(t *testing.T) {
	for _, v := range []Variant{WAT, LCWAT, Static} {
		for _, tc := range []struct{ n, p int }{{1, 1}, {16, 4}, {64, 64}, {100, 13}} {
			res, err := Run(Config{Variant: v, N: tc.n, P: tc.p, Seed: 5})
			if err != nil {
				t.Fatalf("%v n=%d p=%d: %v", v, tc.n, tc.p, err)
			}
			if !res.Complete {
				t.Errorf("%v n=%d p=%d: %d cells missing", v, tc.n, tc.p, res.Missing)
			}
		}
	}
}

func TestFaultTolerantVariantsSurviveCrashes(t *testing.T) {
	crashes := pram.RandomCrashes(16, 0.5, 60, 9)
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	for _, v := range []Variant{WAT, LCWAT} {
		res, err := Run(Config{
			Variant: v, N: 64, P: 16, Seed: 1,
			Sched: pram.WithCrashes(pram.Synchronous(), kept),
		})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !res.Complete {
			t.Errorf("%v: not complete under crashes (%d missing)", v, res.Missing)
		}
	}
}

func TestStaticLosesCellsUnderCrashes(t *testing.T) {
	res, err := Run(Config{
		Variant: Static, N: 64, P: 16, Seed: 1,
		Sched: pram.WithCrashes(pram.Synchronous(), []pram.Crash{{Step: 0, PID: 3}}),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Complete {
		t.Error("static write-all claimed completion despite a crash — it must lose cells")
	}
	if res.Missing == 0 {
		t.Error("static write-all reports zero missing cells under a crash")
	}
}

func TestVariantString(t *testing.T) {
	if WAT.String() != "wat" || LCWAT.String() != "lcwat" || Static.String() != "static" {
		t.Error("variant names wrong")
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := Run(Config{Variant: WAT, N: 0, P: 1}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(Config{Variant: Variant(99), N: 4, P: 1}); err == nil {
		t.Error("unknown variant accepted")
	}
}
