package harness

import (
	"errors"
	"fmt"
	"math"

	"wfsort/internal/baseline"
	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/pram"
)

// E10Failures is the wait-freedom demonstration: crash a growing
// fraction of the processors at random times and record which
// algorithms still sort. The paper's algorithm (both variants) and the
// transformation-based robust network must finish; the barrier
// algorithms must hang.
func E10Failures(o Options) (*Table, error) {
	n, p := 256, 64
	if o.Quick {
		n, p = 128, 16
	}
	t := &Table{
		ID:    "E10",
		Title: "sorting under fail-stop crashes",
		Claim: "wait-freedom: the sort completes correctly despite any processor crashes; barrier algorithms do not",
		Header: []string{
			"killed %", "algorithm", "outcome", "steps", "step inflation",
		},
	}
	// Hang detection threshold: far above any faultless completion
	// (the barrier algorithms finish in well under 100k steps at these
	// sizes) but small enough that demonstrating six hangs stays cheap.
	maxSteps := int64(300_000)
	if o.Quick {
		maxSteps = 120_000
	}

	type algo struct {
		name string
		run  func(keys []int, sched pram.Scheduler) (steps int64, correct bool, err error)
	}
	algos := []algo{
		{"wf-sort (det)", func(keys []int, sched pram.Scheduler) (int64, bool, error) {
			res, err := RunCoreSort(keys, p, core.AllocWAT, o.Seed, sched)
			if err != nil {
				return 0, false, err
			}
			return res.Metrics.Steps, res.Correct, nil
		}},
		{"wf-sort (lowcont)", func(keys []int, sched pram.Scheduler) (int64, bool, error) {
			res, err := RunLowContSort(keys, p, o.Seed, sched)
			if err != nil {
				return 0, false, err
			}
			return res.Metrics.Steps, res.Correct, nil
		}},
		{"bitonic+write-all", func(keys []int, sched pram.Scheduler) (int64, bool, error) {
			var a model.Arena
			s := baseline.NewBitonicRobust(&a, n)
			m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Sched: sched, Less: LessFor(keys), MaxSteps: maxSteps})
			s.Seed(m.Memory())
			met, err := m.Run(s.Program())
			if err != nil {
				return met.Steps, false, err
			}
			return met.Steps, orderMatches(s.Output(m.Memory()), keys), nil
		}},
		{"bitonic+barrier", func(keys []int, sched pram.Scheduler) (int64, bool, error) {
			var a model.Arena
			s := baseline.NewBitonicBarrier(&a, n, p)
			m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Sched: sched, Less: LessFor(keys), MaxSteps: maxSteps})
			s.Seed(m.Memory())
			met, err := m.Run(s.Program())
			if err != nil {
				return met.Steps, false, err
			}
			return met.Steps, orderMatches(s.Output(m.Memory()), keys), nil
		}},
		{"quicksort+barrier", func(keys []int, sched pram.Scheduler) (int64, bool, error) {
			var a model.Arena
			s := baseline.NewBarrierQuicksort(&a, n, p)
			m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Sched: sched, Less: LessFor(keys), MaxSteps: maxSteps})
			met, err := m.Run(s.Program())
			if err != nil {
				return met.Steps, false, err
			}
			return met.Steps, orderMatches(s.Output(m.Memory()), keys), nil
		}},
	}

	base := make(map[string]int64)
	for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
		keys := MakeKeys(InputRandom, n, o.Seed+uint64(100*frac))
		for _, alg := range algos {
			var sched pram.Scheduler
			if frac > 0 {
				sched = pram.WithCrashes(pram.Synchronous(),
					SurvivorCrashes(p, frac, 500, o.Seed+uint64(1000*frac)))
			}
			steps, correct, err := alg.run(keys, sched)
			outcome := "sorted"
			switch {
			case errors.Is(err, pram.ErrMaxSteps):
				outcome = "HUNG (MaxSteps)"
			case err != nil:
				outcome = "error: " + err.Error()
			case !correct:
				outcome = "WRONG OUTPUT"
			}
			inflation := "-"
			if frac == 0 {
				base[alg.name] = steps
			} else if b := base[alg.name]; b > 0 && outcome == "sorted" {
				inflation = fmtRatio(float64(steps) / float64(b))
			}
			t.AddRow(fmtPct(frac), alg.name, outcome, steps, inflation)
		}
	}
	t.Notef("wait-free algorithms finish at every kill rate with modest step inflation (survivors absorb the dead processors' work); barrier algorithms hang at the first crash")
	return t, nil
}

// E11VsSimulation compares the paper's sort against the §1.1
// transformation baseline: wait-freedom via per-step certified
// write-all costs O(log^3 N) where the paper's algorithm costs
// O(log N).
func E11VsSimulation(o Options) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "ours vs bitonic+write-all simulation, P = N",
		Claim: "§1: transformation-based wait-free sorting costs O(log^3 N); the paper's algorithm O(log N)",
		Header: []string{
			"N=P", "wf-sort steps", "simulated steps", "ratio", "log2(N)^2",
		},
	}
	var xs, ratios []float64
	for _, n := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, n, o.Seed+uint64(n))
		ours, err := RunCoreSort(keys, n, core.AllocWAT, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		var a model.Arena
		s := baseline.NewBitonicRobust(&a, n)
		m := pram.New(pram.Config{P: n, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			return nil, err
		}
		ratio := float64(met.Steps) / float64(ours.Metrics.Steps)
		logN := math.Log2(float64(n))
		t.AddRow(n, ours.Metrics.Steps, met.Steps, ratio, logN*logN)
		xs = append(xs, float64(n))
		ratios = append(ratios, ratio)
	}
	t.Notef("the step ratio grows with N like the predicted log^2 N gap (%+.2f per doubling)", FitLogSlope(xs, ratios))
	return t, nil
}

func orderMatches(got []int, keys []int) bool {
	want := WantRanks(keys)
	if len(got) != len(keys) {
		return false
	}
	for pos, id := range got {
		if id < 1 || id > len(keys) || want[id-1] != pos+1 {
			return false
		}
	}
	return true
}

func fmtPct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

func fmtRatio(f float64) string { return fmt.Sprintf("%.2fx", f) }
