package harness

import "math"

// FitPowerLaw fits y = c * x^e by least squares on log-log values and
// returns the exponent e and coefficient c. It is how experiments
// distinguish O(P) from O(sqrt(P)) contention (exponent ≈ 1 vs ≈ 0.5)
// and O(log N) from polynomial step growth. At least two points are
// required; points with non-positive coordinates are skipped.
func FitPowerLaw(xs, ys []float64) (exponent, coeff float64) {
	var n float64
	var sx, sy, sxx, sxy float64
	for i := range xs {
		if i >= len(ys) || xs[i] <= 0 || ys[i] <= 0 {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		n++
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	if n < 2 {
		return math.NaN(), math.NaN()
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN(), math.NaN()
	}
	exponent = (n*sxy - sx*sy) / den
	coeff = math.Exp((sy - exponent*sx) / n)
	return exponent, coeff
}

// FitLogSlope fits y = a + b*log2(x) and returns b — the per-doubling
// increment. Logarithmic-growth claims (steps = O(log N)) show a stable
// small b where linear growth would explode it.
func FitLogSlope(xs, ys []float64) float64 {
	var n, sx, sy, sxx, sxy float64
	for i := range xs {
		if i >= len(ys) || xs[i] <= 0 {
			continue
		}
		lx := math.Log2(xs[i])
		n++
		sx += lx
		sy += ys[i]
		sxx += lx * lx
		sxy += lx * ys[i]
	}
	if n < 2 {
		return math.NaN()
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}
