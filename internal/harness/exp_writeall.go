package harness

import (
	"math"

	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/wat"
	"wfsort/internal/writeall"
)

// E1NextElement measures the cost of a single next_element call
// (Lemma 2.1: wait-free, O(log N) operations). Two worst cases are
// probed: a descent through a fresh tree from the root's sibling, and a
// full climb after completing the last leaf of an otherwise-done tree.
func E1NextElement(o Options) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "single next_element cost vs tree size",
		Claim: "Lemma 2.1: next_element completes in O(log N) steps",
		Header: []string{
			"N", "log2(N)", "descent ops", "climb ops",
		},
	}
	var xs, descents, climbs []float64
	for _, n := range sizes(o, []int{16, 64, 256, 1024, 4096, 16384, 65536}, 1024) {
		// Full climb + full descent: the left half of the leaves is
		// done; completing its last leaf climbs to just below the root
		// and then descends the entire untouched right half.
		descentOps, err := nextElementCost(n, markHalfDone)
		if err != nil {
			return nil, err
		}
		// Full climb to the root: everything else is done; completing
		// the last leaf climbs all the way and returns NoWork.
		climbOps, err := nextElementCost(n, markAllButFirstDone)
		if err != nil {
			return nil, err
		}

		logN := math.Log2(float64(n))
		t.AddRow(n, logN, descentOps, climbOps)
		xs = append(xs, float64(n))
		descents = append(descents, float64(descentOps))
		climbs = append(climbs, float64(climbOps))
	}
	dSlope := FitLogSlope(xs, descents)
	cSlope := FitLogSlope(xs, climbs)
	t.Notef("ops per doubling of N: climb+descend %+.2f, climb %+.2f — O(log N) with small constants (Lemma 2.1)", dSlope, cSlope)
	return t, nil
}

// nextElementCost builds an n-leaf WAT, lets prepare mark completed
// regions host-side, and returns the operation count of one
// next_element call from the last marked leaf.
func nextElementCost(n int, prepare func(mem []model.Word, w *wat.WAT, n int) int) (int64, error) {
	var a model.Arena
	w := wat.New(&a, n)
	m := pram.New(pram.Config{P: 1, Mem: a.Size()})
	w.Seed(m.Memory())
	start := prepare(m.Memory(), w, n)
	met, err := m.Run(func(p model.Proc) {
		w.NextElement(p, start)
	})
	if err != nil {
		return 0, err
	}
	return met.Ops, nil
}

// markHalfDone marks leaves 0..n/2-1 (and their completed inner nodes)
// DONE and returns the last done leaf — the climb-then-descend worst
// case.
func markHalfDone(mem []model.Word, w *wat.WAT, n int) int {
	half := max(n/2, 1)
	for j := 0; j < half-1; j++ {
		mem[w.NodeAddr(w.LeafNode(j))] = model.Done
	}
	markCompletedInner(mem, w)
	return w.LeafNode(half - 1)
}

// markAllButFirstDone marks every leaf except leaf 0 DONE — the full
// climb worst case.
func markAllButFirstDone(mem []model.Word, w *wat.WAT, n int) int {
	for j := 1; j < n; j++ {
		mem[w.NodeAddr(w.LeafNode(j))] = model.Done
	}
	markCompletedInner(mem, w)
	return w.LeafNode(0)
}

func markCompletedInner(mem []model.Word, w *wat.WAT) {
	for node := w.Leaves() - 1; node >= 1; node-- {
		if mem[w.NodeAddr(2*node)] == model.Done && mem[w.NodeAddr(2*node+1)] == model.Done {
			mem[w.NodeAddr(node)] = model.Done
		}
	}
}

// E2WriteAll measures write-all completion with P = N for each
// allocation strategy (Lemma 2.3 for the WAT, Lemma 3.1 for the
// LC-WAT; the static strategy is the no-overhead floor).
func E2WriteAll(o Options) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "write-all completion steps, P = N",
		Claim: "Lemma 2.3: WAT completes in O(K + log N); Lemma 3.1: LC-WAT in O(log P) w.h.p.",
		Header: []string{
			"N=P", "static steps", "wat steps", "lcwat steps", "wat maxcont", "lcwat maxcont",
		},
	}
	var xs, watSteps, lcSteps []float64
	for _, n := range sizes(o, []int{16, 64, 256, 1024, 4096}, 1024) {
		row := make(map[writeall.Variant]writeall.Result)
		for _, v := range []writeall.Variant{writeall.Static, writeall.WAT, writeall.LCWAT} {
			res, err := writeall.Run(writeall.Config{Variant: v, N: n, P: n, Seed: o.Seed + uint64(n)})
			if err != nil {
				return nil, err
			}
			if !res.Complete {
				t.Notef("%v at N=%d left %d cells unwritten (BUG)", v, n, res.Missing)
			}
			row[v] = res
		}
		t.AddRow(n,
			row[writeall.Static].Metrics.Steps,
			row[writeall.WAT].Metrics.Steps,
			row[writeall.LCWAT].Metrics.Steps,
			row[writeall.WAT].Metrics.MaxContention,
			row[writeall.LCWAT].Metrics.MaxContention,
		)
		xs = append(xs, float64(n))
		watSteps = append(watSteps, float64(row[writeall.WAT].Metrics.Steps))
		lcSteps = append(lcSteps, float64(row[writeall.LCWAT].Metrics.Steps))
	}
	t.Notef("steps per doubling of N: wat %+.2f, lcwat %+.2f — both logarithmic growth",
		FitLogSlope(xs, watSteps), FitLogSlope(xs, lcSteps))
	t.Notef("wat contention equals P at the root; lcwat stays polylogarithmic — the §3.1 motivation")
	return t, nil
}
