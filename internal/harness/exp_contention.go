package harness

import (
	"math"

	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/writeall"
)

// E6Contention is the paper's §3 headline: maximum per-variable
// contention of the deterministic Section 2 sort grows like P while the
// randomized Section 3 sort stays at O(sqrt(P)).
func E6Contention(o Options) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "max contention of the full sort, P = N",
		Claim: "§3: deterministic sort suffers O(P) contention; the randomized variant O(sqrt(P)) w.h.p.",
		Header: []string{
			"P=N", "det contention", "lc contention", "sqrt(P)", "det stalls", "lc stalls",
		},
	}
	var ps, det, lc []float64
	for _, p := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, p, o.Seed+uint64(p))
		dres, err := RunCoreSort(keys, p, core.AllocWAT, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		lres, err := RunLowContSort(keys, p, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(p, dres.Metrics.MaxContention, lres.Metrics.MaxContention,
			math.Sqrt(float64(p)), dres.Metrics.Stalls, lres.Metrics.Stalls)
		ps = append(ps, float64(p))
		det = append(det, float64(dres.Metrics.MaxContention))
		lc = append(lc, float64(lres.Metrics.MaxContention))
	}
	de, _ := FitPowerLaw(ps, det)
	le, _ := FitPowerLaw(ps, lc)
	t.Notef("fitted contention exponents: deterministic P^%.2f (claim: 1.0), randomized P^%.2f (claim: 0.5)", de, le)
	return t, nil
}

// E7LCWAT isolates the low-contention work-assignment tree (Lemma 3.1:
// O(log P) time, O(log P / log log P) contention w.h.p. at P = N).
func E7LCWAT(o Options) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "LC-WAT write-all: time and contention, P = N",
		Claim: "Lemma 3.1: O(log P) time with O(log P / log log P) contention w.h.p.",
		Header: []string{
			"P=N", "steps", "log2(P)", "maxcont", "logP/loglogP",
		},
	}
	var ps, steps, conts []float64
	for _, p := range sizes(o, []int{64, 256, 1024, 4096, 16384}, 1024) {
		res, err := writeall.Run(writeall.Config{Variant: writeall.LCWAT, N: p, P: p, Seed: o.Seed + uint64(p)})
		if err != nil {
			return nil, err
		}
		logP := math.Log2(float64(p))
		t.AddRow(p, res.Metrics.Steps, logP, res.Metrics.MaxContention, logP/math.Log2(logP))
		ps = append(ps, float64(p))
		steps = append(steps, float64(res.Metrics.Steps))
		conts = append(conts, float64(res.Metrics.MaxContention))
	}
	se, _ := FitPowerLaw(ps, steps)
	ce, _ := FitPowerLaw(ps, conts)
	t.Notef("power-law exponents: steps P^%.2f, contention P^%.2f — both far below linear; growth is polylogarithmic", se, ce)
	return t, nil
}

// E8Winner measures the winner-selection phase of the Section 3 sort
// via per-phase metrics (Lemma 3.2: O(log P) time, expected O(log P)
// contention when arrivals span O(log P) steps).
func E8Winner(o Options) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "winner selection: phase-B steps and contention",
		Claim: "Lemma 3.2: selects a winner in O(log P) time with expected O(log P) contention",
		Header: []string{
			"P=N", "phase steps", "log2(P)", "phase maxcont", "phase ops/P",
		},
	}
	var ps, conts []float64
	for _, p := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, p, o.Seed+uint64(p))
		var a model.Arena
		s := lowcont.New(&a, p, p)
		m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			return nil, err
		}
		b := met.ByPhase["B:winner"]
		if b == nil {
			t.Notef("phase B missing at P=%d", p)
			continue
		}
		t.AddRow(p, b.Steps, math.Log2(float64(p)), b.MaxContention, float64(b.Ops)/float64(p))
		ps = append(ps, float64(p))
		conts = append(conts, float64(b.MaxContention))
	}
	ce, _ := FitPowerLaw(ps, conts)
	t.Notef("phase-B contention exponent P^%.2f — logarithmic-scale, not linear (phase steps include stragglers from slower groups)", ce)
	return t, nil
}

// E9WriteMost measures the fat-tree fill (§3.2: P·log P random writes
// over ≤ P slots fill every duplicate w.h.p. in O(log P) time with
// O(sqrt(P)) contention).
func E9WriteMost(o Options) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "write-most fat-tree fill",
		Claim: "§3.2: the fat tree fills w.h.p. in O(log P) time with O(sqrt(P)) contention",
		Header: []string{
			"P=N", "slots", "filled", "fill %", "phase steps", "phase maxcont", "sqrt(P)",
		},
	}
	for _, p := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, p, o.Seed+uint64(p))
		var a model.Arena
		s := lowcont.New(&a, p, p)
		m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			return nil, err
		}
		filled, total := s.FatFilled(m.Memory())
		c := met.ByPhase["C:fill"]
		t.AddRow(p, total, filled, 100*float64(filled)/float64(total),
			c.Steps, c.MaxContention, math.Sqrt(float64(p)))
	}
	t.Notef("unfilled slots are served by the deterministic read fallback; fill fraction approaches 100%% as P log P draws cover the slots")
	return t, nil
}
