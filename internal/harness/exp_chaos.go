package harness

import (
	"fmt"

	"wfsort/internal/chaos"
)

// E20Chaos is the native fault-injection sweep: every adversary policy
// against every arena layout on the real-goroutine runtime, certifying
// each run against the wait-freedom op ceiling, plus a cross-runtime
// differential (the same seeded crash schedule on the simulator and on
// every native layout must yield identical sorted output).
func E20Chaos(o Options) (*Table, error) {
	n, p := 4096, 8
	if o.Quick {
		n, p = 1024, 4
	}
	t := &Table{
		ID:    "E20",
		Title: fmt.Sprintf("chaos sweep on the native runtime (N=%d, P=%d)", n, p),
		Claim: "wait-freedom on real goroutines: under seeded kill/stall/respawn adversaries every layout sorts correctly and every processor stays under the certified op ceiling",
		Header: []string{
			"policy", "layout", "outcome", "killed", "respawns", "survivors", "max ops", "ceiling", "headroom",
		},
	}

	keys := MakeKeys(InputRandom, n, o.Seed)
	for _, pol := range chaos.Policies() {
		for _, l := range chaos.Layouts() {
			res, err := chaos.RunNative(chaos.BuildSpec(keys, p, l, o.Seed, pol))
			if err != nil {
				return nil, fmt.Errorf("policy %s layout %v: %w", pol.Name, l, err)
			}
			outcome := "certified"
			switch {
			case !res.Sorted:
				outcome = "WRONG OUTPUT"
			case !res.Certified:
				outcome = "OVER CEILING"
			}
			t.AddRow(pol.Name, res.Layout, outcome, res.Killed, res.Respawns,
				res.Survivors, res.MaxOps, res.Bound,
				fmtRatio(float64(res.Bound)/float64(res.MaxOps)))
		}
	}

	// Cross-runtime differential at the table's P.
	crashes := chaos.CrashQuorum(p, 0.5, int64(n), o.Seed+uint64(p))
	diff := "identical sorted output on pram and all native layouts"
	if err := chaos.Differential(keys, p, o.Seed, crashes); err != nil {
		diff = "MISMATCH: " + err.Error()
	}
	t.Notef("ceiling = paper O(N log N / P) bound at the wait-free worst case P=1, x measured constant; differential (%d crashes): %s", len(crashes), diff)
	return t, nil
}
