package harness

import (
	"wfsort/internal/baseline"
	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/pram"
)

// E14Universal measures the §1.1 strawman the paper argues against:
// sorting through a Herlihy-style universal construction. One insertion
// wins per O(N)-step copy period, so time is Θ(N²) regardless of P,
// versus the paper's O(N log N / P).
func E14Universal(o Options) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "universal-construction sorting object vs the paper's sort, P = N",
		Claim: "§1.1: generic wait-free constructions serialize the work — 'often only one process performs all pending work'",
		Header: []string{
			"N=P", "universal steps", "wf-sort steps", "ratio", "universal steps/N^2",
		},
	}
	var xs, ys []float64
	for _, n := range sizes(o, []int{16, 32, 64, 128}, 64) {
		keys := MakeKeys(InputRandom, n, o.Seed+uint64(n))
		var a model.Arena
		u := baseline.NewUniversal(&a, n, n)
		m := pram.New(pram.Config{P: n, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys)})
		met, err := m.Run(u.Program())
		if err != nil {
			return nil, err
		}
		ours, err := RunCoreSort(keys, n, core.AllocWAT, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, met.Steps, ours.Metrics.Steps,
			float64(met.Steps)/float64(ours.Metrics.Steps),
			float64(met.Steps)/float64(n*n))
		xs = append(xs, float64(n))
		ys = append(ys, float64(met.Steps))
	}
	e, _ := FitPowerLaw(xs, ys)
	t.Notef("universal-construction steps grow like N^%.2f (quadratic serialization); the specialized sort stays polylogarithmic", e)
	return t, nil
}

// E15Adversary demonstrates the Dwork–Herlihy–Waarts theorem the paper
// cites in §1.2 and revisits in §4: an omnipotent (operation-aware)
// scheduler can force Θ(P)-scale contention on any wait-free algorithm
// — the O(sqrt(P)) bound of §3 holds against oblivious schedulers only.
func E15Adversary(o Options) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "contention of the §3 sort under adversarial schedulers, P = N",
		Claim: "§4/[20]: an (algorithm-aware) adversary can always force O(P) contention; the O(sqrt(P)) bound holds for oblivious schedulers only",
		Header: []string{
			"P=N", "synchronous", "generic adversary", "targeted adversary", "P", "sorted?",
		},
	}
	for _, p := range sizes(o, []int{64, 256, 1024}, 256) {
		keys := MakeKeys(InputRandom, p, o.Seed+uint64(p))
		sync, err := RunLowContSort(keys, p, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		generic, err := RunLowContSort(keys, p, o.Seed, pram.NewContentionAdversary())
		if err != nil {
			return nil, err
		}
		// The targeted adversary needs the layout's winner-root
		// address, so build this run by hand.
		var a model.Arena
		s := lowcont.New(&a, p, p)
		m := pram.New(pram.Config{
			P: p, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys),
			Sched: pram.HoldAddress(s.WinnerRootAddr()),
		})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			return nil, err
		}
		targetedOK := ranksMatch(s.Places(m.Memory()), keys)
		t.AddRow(p, sync.Metrics.MaxContention, generic.Metrics.MaxContention,
			met.MaxContention, p, sync.Correct && generic.Correct && targetedOK)
	}
	t.Notef("a generic largest-pending-group adversary gains nothing — randomization deflects it; the algorithm-aware adversary (hold every operation on the winner-selection root until all processors pile onto it) realizes the full Θ(P) of [20]")
	return t, nil
}

// E16AsyncWork measures total work under increasingly asynchronous
// schedules — the open question of the paper's conclusion ("a detailed
// analysis of the work performed by the algorithm in the asynchronous
// case is still required"), answered empirically.
func E16AsyncWork(o Options) (*Table, error) {
	n := 1024
	p := 256
	if o.Quick {
		n, p = 256, 64
	}
	t := &Table{
		ID:    "E16",
		Title: "total work under asynchronous schedules",
		Claim: "§4 open question: how much extra work does asynchrony induce? (measured, not claimed)",
		Header: []string{
			"schedule", "variant", "total ops", "ops inflation", "max ops/proc", "sorted?",
		},
	}
	type sched struct {
		name string
		make func() pram.Scheduler
	}
	schedules := []sched{
		{"synchronous", func() pram.Scheduler { return nil }},
		{"random 50%", func() pram.Scheduler { return pram.RandomSubset(0.5) }},
		{"random 10%", func() pram.Scheduler { return pram.RandomSubset(0.1) }},
		{"round-robin(1)", func() pram.Scheduler { return pram.RoundRobin(1) }},
	}
	for _, variant := range []struct {
		name string
		run  func(keys []int, s pram.Scheduler) (SortResult, []int64, error)
	}{
		{"deterministic", func(keys []int, s pram.Scheduler) (SortResult, []int64, error) {
			var a model.Arena
			srt := core.NewSorter(&a, len(keys), core.AllocWAT)
			m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Sched: s, Less: LessFor(keys)})
			srt.Seed(m.Memory())
			met, err := m.Run(srt.Program())
			if err != nil {
				return SortResult{}, nil, err
			}
			return SortResult{Metrics: met, Correct: ranksMatch(srt.Places(m.Memory()), keys)}, m.OpsPerProc(), nil
		}},
		{"lowcontention", func(keys []int, s pram.Scheduler) (SortResult, []int64, error) {
			var a model.Arena
			srt := lowcont.New(&a, len(keys), p)
			m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: o.Seed, Sched: s, Less: LessFor(keys)})
			srt.Seed(m.Memory())
			met, err := m.Run(srt.Program())
			if err != nil {
				return SortResult{}, nil, err
			}
			return SortResult{Metrics: met, Correct: ranksMatch(srt.Places(m.Memory()), keys)}, m.OpsPerProc(), nil
		}},
	} {
		var base int64
		for _, s := range schedules {
			keys := MakeKeys(InputRandom, n, o.Seed)
			res, per, err := variant.run(keys, s.make())
			if err != nil {
				return nil, err
			}
			var maxOps int64
			for _, v := range per {
				if v > maxOps {
					maxOps = v
				}
			}
			inflation := "-"
			if s.name == "synchronous" {
				base = res.Metrics.Ops
			} else if base > 0 {
				inflation = fmtRatio(float64(res.Metrics.Ops) / float64(base))
			}
			t.AddRow(s.name, variant.name, res.Metrics.Ops, inflation, maxOps, res.Correct)
		}
	}
	t.Notef("work inflation stays within a small constant even fully serialized: the WAT hands each leaf to few processors, so asynchrony wastes little (the paper's conjecture holds empirically at N=%d, P=%d)", n, p)
	return t, nil
}

// E17QRQW re-evaluates both variants under the Queue-Read Queue-Write
// clock (Gibbons–Matias–Ramachandran, cited in §3), where a step costs
// its longest per-word access queue. Under this contention-sensitive
// clock the §3 variant's lower contention translates into real time.
func E17QRQW(o Options) (*Table, error) {
	t := &Table{
		ID:    "E17",
		Title: "QRQW-clock running time, P = N",
		Claim: "§3: contention dominates running time as N approaches P — the QRQW clock makes the O(sqrt(P)) variant pay off",
		Header: []string{
			"P=N", "det steps", "det qrqw", "lc steps", "lc qrqw", "qrqw ratio det/lc",
		},
	}
	var ps, ratios []float64
	for _, p := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, p, o.Seed+uint64(p))
		det, err := RunCoreSort(keys, p, core.AllocWAT, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		lc, err := RunLowContSort(keys, p, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		ratio := float64(det.Metrics.QRQWTime) / float64(lc.Metrics.QRQWTime)
		t.AddRow(p, det.Metrics.Steps, det.Metrics.QRQWTime,
			lc.Metrics.Steps, lc.Metrics.QRQWTime, ratio)
		ps = append(ps, float64(p))
		ratios = append(ratios, ratio)
	}
	t.Notef("the deterministic variant wins on raw steps but its hot words cost it under the QRQW clock; the gap widens with P (%+.2f per doubling)", FitLogSlope(ps, ratios))
	return t, nil
}
