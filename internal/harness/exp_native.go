package harness

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/native"
)

// E13Native runs the wait-free sort on real goroutines with
// sync/atomic shared memory — the paper's operating-system motivation
// realized — and compares wall time against the standard library's
// sequential sort. The point is not to beat a tuned sequential sort at
// small N (a PRAM-style algorithm does O(N log N) shared-memory
// operations); it is that the same wait-free code runs unchanged on
// real hardware, scales with workers, and tolerates thread reaping.
func E13Native(o Options) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "native goroutine runtime: wall time and kill tolerance",
		Claim: "§1: the sort runs with oblivious thread scheduling; threads can be reaped or spawned at will",
		Header: []string{
			"N", "workers", "wall time", "stdlib sort", "correct?", "killed",
		},
	}
	n := 200_000
	if o.Quick {
		n = 20_000
	}
	keys := MakeKeys(InputRandom, n, o.Seed)

	// Stdlib reference.
	ref := make([]int, n)
	copy(ref, keys)
	t0 := time.Now()
	sort.Ints(ref)
	stdElapsed := time.Since(t0)

	workersList := []int{1, 2, runtime.NumCPU()}
	for _, p := range workersList {
		rt, s, err := buildNative(keys, p, o.Seed)
		if err != nil {
			return nil, err
		}
		met, err := rt.Run(s.Program())
		if err != nil {
			return nil, err
		}
		correct := ranksMatch(s.Places(rt.Memory()), keys)
		t.AddRow(n, p, rt.Elapsed.Round(time.Millisecond).String(),
			stdElapsed.Round(time.Millisecond).String(), correct, met.Killed)
	}

	// Kill tolerance: reap half the workers mid-sort; survivors finish.
	p := max(runtime.NumCPU(), 4)
	rt, s, err := buildNative(keys, p, o.Seed)
	if err != nil {
		return nil, err
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		for pid := p / 2; pid < p; pid++ {
			rt.Kill(pid)
		}
	}()
	met, err := rt.Run(s.Program())
	if err != nil {
		return nil, err
	}
	correct := ranksMatch(s.Places(rt.Memory()), keys)
	t.AddRow(n, fmt.Sprintf("%d (reap %d)", p, p/2),
		rt.Elapsed.Round(time.Millisecond).String(),
		stdElapsed.Round(time.Millisecond).String(), correct, met.Killed)
	t.Notef("killed column counts reaped goroutines; correctness holds regardless — the wait-free guarantee on real hardware")
	t.Notef("wall times carry PRAM-algorithm constant factors (every pointer access is an atomic op); the comparison shows scaling and robustness, not a tuned sort race")
	return t, nil
}

func buildNative(keys []int, p int, seed uint64) (*native.Runtime, *core.Sorter, error) {
	var a model.Arena
	s := core.NewSorter(&a, len(keys), core.AllocRandomized)
	rt := native.New(native.Config{P: p, Mem: a.Size(), Seed: seed, Less: LessFor(keys)})
	s.Seed(rt.Memory())
	return rt, s, nil
}
