package harness

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFitPowerLawRecoversExponent(t *testing.T) {
	cases := []struct{ e, c float64 }{{1, 3}, {0.5, 2}, {2, 0.1}, {-1, 100}}
	for _, tc := range cases {
		var xs, ys []float64
		for _, x := range []float64{2, 4, 8, 16, 32, 64} {
			xs = append(xs, x)
			ys = append(ys, tc.c*math.Pow(x, tc.e))
		}
		e, c := FitPowerLaw(xs, ys)
		if math.Abs(e-tc.e) > 1e-9 || math.Abs(c-tc.c) > 1e-6 {
			t.Errorf("FitPowerLaw(e=%v,c=%v) = (%v, %v)", tc.e, tc.c, e, c)
		}
	}
}

func TestFitPowerLawDegenerate(t *testing.T) {
	if e, _ := FitPowerLaw([]float64{1}, []float64{1}); !math.IsNaN(e) {
		t.Error("single point should yield NaN")
	}
	if e, _ := FitPowerLaw([]float64{2, 2}, []float64{3, 5}); !math.IsNaN(e) {
		t.Error("vertical data should yield NaN")
	}
}

func TestFitLogSlope(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 5+3*math.Log2(x))
	}
	if b := FitLogSlope(xs, ys); math.Abs(b-3) > 1e-9 {
		t.Errorf("FitLogSlope = %v, want 3", b)
	}
}

func TestMakeKeysShapes(t *testing.T) {
	if k := MakeKeys(InputSorted, 5, 0); k[0] > k[4] {
		t.Error("sorted input not ascending")
	}
	if k := MakeKeys(InputReversed, 5, 0); k[0] < k[4] {
		t.Error("reversed input not descending")
	}
	distinct := map[int]bool{}
	for _, v := range MakeKeys(InputFewDistinct, 100, 1) {
		distinct[v] = true
	}
	if len(distinct) > 8 {
		t.Errorf("few-distinct input has %d values", len(distinct))
	}
}

func TestWantRanksIsPermutationAndOrder(t *testing.T) {
	keys := MakeKeys(InputRandom, 50, 7)
	ranks := WantRanks(keys)
	seen := make([]bool, len(ranks)+1)
	for _, r := range ranks {
		if r < 1 || r > len(ranks) || seen[r] {
			t.Fatalf("ranks not a permutation: %v", ranks)
		}
		seen[r] = true
	}
	inv := make([]int, len(ranks))
	for i, r := range ranks {
		inv[r-1] = i
	}
	less := LessFor(keys)
	for k := 1; k < len(inv); k++ {
		if !less(inv[k-1]+1, inv[k]+1) {
			t.Fatal("ranks do not respect the order")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "EX", Title: "demo", Claim: "c", Header: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.Notef("note %d", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "demo", "2.50", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.Markdown(&buf)
	if !strings.Contains(buf.String(), "| a | bb |") {
		t.Errorf("markdown header wrong:\n%s", buf.String())
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("E6"); err != nil {
		t.Errorf("E6 missing: %v", err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Error("E99 should not exist")
	}
}

// TestAllExperimentsQuick runs every experiment end to end in quick
// mode: tables must materialize with rows and no errors. This is the
// repository's continuous proof that the whole evaluation pipeline
// works.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds each")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Options{Quick: true, Seed: 1})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			var buf bytes.Buffer
			tab.Render(&buf)
			t.Logf("\n%s", buf.String())
			// Experiments embed their own verdicts; hard failures are
			// flagged in cell text with capitalized markers.
			for _, row := range tab.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "BUG") {
						t.Errorf("%s flagged: %v", e.ID, row)
					}
				}
			}
		})
	}
}
