package harness

import (
	"fmt"
	"sort"

	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

// InputKind selects an input arrangement for the sort experiments.
type InputKind int

// Input arrangements.
const (
	InputRandom InputKind = iota
	InputSorted
	InputReversed
	InputFewDistinct
)

// String returns the input kind's mnemonic.
func (k InputKind) String() string {
	switch k {
	case InputRandom:
		return "random"
	case InputSorted:
		return "sorted"
	case InputReversed:
		return "reversed"
	case InputFewDistinct:
		return "few-distinct"
	default:
		return fmt.Sprintf("input(%d)", int(k))
	}
}

// MakeKeys builds an input of the given kind and size.
func MakeKeys(kind InputKind, n int, seed uint64) []int {
	keys := make([]int, n)
	switch kind {
	case InputSorted:
		for i := range keys {
			keys[i] = i
		}
	case InputReversed:
		for i := range keys {
			keys[i] = n - i
		}
	case InputFewDistinct:
		rng := xrand.New(seed)
		for i := range keys {
			keys[i] = rng.Intn(8)
		}
	default:
		rng := xrand.New(seed)
		for i := range keys {
			keys[i] = rng.Intn(4 * n)
		}
	}
	return keys
}

// LessFor builds the strict total order over 1-based element ids for a
// key slice, ties broken by index (§2.2).
func LessFor(keys []int) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
}

// WantRanks computes each element's expected 1-based rank host-side.
func WantRanks(keys []int) []int {
	n := len(keys)
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	less := LessFor(keys)
	sort.Slice(ids, func(a, b int) bool { return less(ids[a], ids[b]) })
	ranks := make([]int, n)
	for pos, id := range ids {
		ranks[id-1] = pos + 1
	}
	return ranks
}

// SortResult is the outcome of one simulated sort run.
type SortResult struct {
	Metrics *model.Metrics
	// Correct reports whether every element received its true rank.
	Correct bool
	// Depth is the pivot tree's depth.
	Depth int
}

// RunCoreSort executes the Section 2 sort on the simulator and verifies
// the result.
func RunCoreSort(keys []int, p int, alloc core.Alloc, seed uint64, sched pram.Scheduler) (SortResult, error) {
	var a model.Arena
	s := core.NewSorter(&a, len(keys), alloc)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: seed, Sched: sched, Less: LessFor(keys)})
	s.Seed(m.Memory())
	met, err := m.Run(s.Program())
	if err != nil {
		return SortResult{Metrics: met}, err
	}
	return SortResult{
		Metrics: met,
		Correct: ranksMatch(s.Places(m.Memory()), keys),
		Depth:   s.Depth(m.Memory()),
	}, nil
}

// RunLowContSort executes the Section 3 sort on the simulator and
// verifies the result.
func RunLowContSort(keys []int, p int, seed uint64, sched pram.Scheduler) (SortResult, error) {
	var a model.Arena
	s := lowcont.New(&a, len(keys), p)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: seed, Sched: sched, Less: LessFor(keys)})
	s.Seed(m.Memory())
	met, err := m.Run(s.Program())
	if err != nil {
		return SortResult{Metrics: met}, err
	}
	return SortResult{
		Metrics: met,
		Correct: ranksMatch(s.Places(m.Memory()), keys),
		Depth:   s.Depth(m.Memory()),
	}, nil
}

func ranksMatch(got []int, keys []int) bool {
	want := WantRanks(keys)
	for i := range want {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// SurvivorCrashes builds a crash list that kills roughly frac of p
// processors inside the step window but always spares processor 0, so
// completion is possible.
func SurvivorCrashes(p int, frac float64, window int64, seed uint64) []pram.Crash {
	crashes := pram.RandomCrashes(p, frac, window, seed)
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	return kept
}
