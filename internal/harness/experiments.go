package harness

import "fmt"

// Options tunes experiment scale.
type Options struct {
	// Quick trims sweeps for CI; full runs are the published tables.
	Quick bool
	// Seed drives every random choice for exact reproducibility.
	Seed uint64
}

// Experiment is one reproducible table from EXPERIMENTS.md.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Table, error)
}

// All returns every experiment in publication order.
func All() []Experiment {
	return []Experiment{
		{"E1", "WAT next_element cost is O(log N)", E1NextElement},
		{"E2", "write-all completion time by strategy", E2WriteAll},
		{"E3", "build_tree work bound and correctness", E3BuildTree},
		{"E4", "phases 2-3 are O(N) work per processor", E4Phases23},
		{"E5", "sort time is O(N log N / P)", E5SortTime},
		{"E6", "contention: O(P) deterministic vs O(sqrt(P)) randomized", E6Contention},
		{"E7", "LC-WAT: O(log P) time, low contention", E7LCWAT},
		{"E8", "winner selection: O(log P) time and contention", E8Winner},
		{"E9", "write-most fills the fat tree w.h.p.", E9WriteMost},
		{"E10", "wait-freedom under crashes (vs baselines)", E10Failures},
		{"E11", "ours vs transformation-based wait-free sorting", E11VsSimulation},
		{"E12", "pivot-tree depth is O(log N) w.h.p.", E12TreeDepth},
		{"E13", "native goroutine runtime (real hardware)", E13Native},
		// Extensions beyond the paper's own claims: related results it
		// cites (E14, E15, E17) and its stated open question (E16).
		{"E14", "universal-construction baseline is quadratic", E14Universal},
		{"E15", "omnipotent adversary forces O(P) contention", E15Adversary},
		{"E16", "work inflation under asynchrony (paper's open question)", E16AsyncWork},
		{"E17", "QRQW-clock comparison", E17QRQW},
		{"E18", "CAS failure rate on real hardware", E18NativeCAS},
		{"E20", "chaos sweep: fault injection on the native runtime", E20Chaos},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: no experiment %q", id)
}

// sizes returns a geometric sweep capped for quick mode.
func sizes(o Options, full []int, quickMax int) []int {
	if !o.Quick {
		return full
	}
	var out []int
	for _, n := range full {
		if n <= quickMax {
			out = append(out, n)
		}
	}
	return out
}
