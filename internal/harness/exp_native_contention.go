package harness

import (
	"runtime"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/native"
)

// E18NativeCAS carries the contention story to real hardware. The
// simulator counts concurrent same-word accesses exactly; a real
// machine exposes contention indirectly, and the cleanest observable
// trace is the compare-and-swap failure rate — a CAS fails precisely
// when another worker touched the word in the race window. The
// deterministic sort funnels every worker's first insertions through
// the root's child words, so its failure rate should exceed the §3
// variant's, whose CAS frontier is pre-split into sqrt(P) groups.
func E18NativeCAS(o Options) (*Table, error) {
	n := 100_000
	if o.Quick {
		n = 20_000
	}
	// At least 4 workers so the §3 variant always participates; on
	// smaller hosts the goroutines are oversubscribed, which if
	// anything increases racing — fine for a failure-rate comparison.
	workers := max(runtime.NumCPU(), 4)
	t := &Table{
		ID:    "E18",
		Title: "CAS failure rate on real goroutines",
		Claim: "§3 (transferred to hardware): the pre-split CAS frontier of the randomized variant collides less than the deterministic single root",
		Header: []string{
			"N", "workers", "variant", "cas ops", "cas failures", "failure %", "wall time",
		},
	}
	keys := MakeKeys(InputRandom, n, o.Seed)
	type build func(a *model.Arena) (model.Program, func([]model.Word), func([]model.Word) []int)
	variants := []struct {
		name string
		mk   build
	}{
		{"deterministic", func(a *model.Arena) (model.Program, func([]model.Word), func([]model.Word) []int) {
			s := core.NewSorter(a, n, core.AllocRandomized)
			return s.Program(), s.Seed, s.Places
		}},
		{"lowcontention", func(a *model.Arena) (model.Program, func([]model.Word), func([]model.Word) []int) {
			s := lowcont.New(a, n, workers)
			return s.Program(), s.Seed, s.Places
		}},
	}
	for _, v := range variants {
		var a model.Arena
		prog, seedFn, places := v.mk(&a)
		rt := native.New(native.Config{
			P: workers, Mem: a.Size(), Seed: o.Seed,
			Less: LessFor(keys), CountOps: true,
		})
		seedFn(rt.Memory())
		met, err := rt.Run(prog)
		if err != nil {
			return nil, err
		}
		if !ranksMatch(places(rt.Memory()), keys) {
			t.Notef("%s produced WRONG ranks (BUG)", v.name)
		}
		failPct := 0.0
		if met.CASes > 0 {
			failPct = 100 * float64(met.CASFailures) / float64(met.CASes)
		}
		t.AddRow(n, workers, v.name, met.CASes, met.CASFailures, failPct,
			rt.Elapsed.Round(time.Millisecond).String())
	}
	t.Notef("failure rates are hardware- and load-dependent; the comparison between variants on the same host is the result")
	return t, nil
}
