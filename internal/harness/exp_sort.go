package harness

import (
	"math"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/pram"
)

// E3BuildTree measures phase 1 in isolation: correctness of the pivot
// tree under concurrency and the per-processor work bound (Lemma 2.4:
// a single insertion loops at most N−1 times; Lemma 2.5: the tree is a
// correct BST).
func E3BuildTree(o Options) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "phase-1 build_tree work, P = N, random input",
		Claim: "Lemma 2.4/2.5: each insertion is wait-free (≤ N−1 loops) and the tree is a sorted BST",
		Header: []string{
			"N=P", "max ops/proc", "total ops", "ops per element", "steps", "sorted?",
		},
	}
	for _, n := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, n, o.Seed+uint64(n))
		var a model.Arena
		s := core.NewSorter(&a, n, core.AllocWAT)
		m := pram.New(pram.Config{P: n, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(func(p model.Proc) {
			p.Phase("build")
			s.BuildPhase(p)
		})
		if err != nil {
			return nil, err
		}
		var maxOps int64
		for _, ops := range m.OpsPerProc() {
			if ops > maxOps {
				maxOps = ops
			}
		}
		t.AddRow(n, maxOps, met.Ops, float64(met.Ops)/float64(n), met.Steps,
			s.TreeIsSortedBST(m.Memory(), LessFor(keys)))
	}
	t.Notef("ops per element stays near 2·depth ≈ O(log N); the N−1 loop bound is a worst case never approached on random input")
	return t, nil
}

// E4Phases23 measures phases 2 and 3 in isolation (Lemma 2.6: both are
// wait-free and require O(N) operations).
func E4Phases23(o Options) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "phases 2-3 work, P = N, random input",
		Claim: "Lemma 2.6: tree_sum and find_place are wait-free, O(N) operations",
		Header: []string{
			"N=P", "sum ops", "place ops", "sum ops/N", "place ops/N", "max ops/proc",
		},
	}
	for _, n := range sizes(o, []int{64, 256, 1024, 4096}, 1024) {
		keys := MakeKeys(InputRandom, n, o.Seed+uint64(n))
		var a model.Arena
		s := core.NewSorter(&a, n, core.AllocWAT)
		m := pram.New(pram.Config{P: n, Mem: a.Size(), Seed: o.Seed, Less: LessFor(keys)})
		s.Seed(m.Memory())
		met, err := m.Run(s.Program())
		if err != nil {
			return nil, err
		}
		sum := met.ByPhase["2:sum"]
		place := met.ByPhase["3:place"]
		var maxOps int64
		for _, ops := range m.OpsPerProc() {
			if ops > maxOps {
				maxOps = ops
			}
		}
		t.AddRow(n, sum.Ops, place.Ops,
			float64(sum.Ops)/float64(n), float64(place.Ops)/float64(n), maxOps)
	}
	t.Notef("per-processor work is bounded; aggregate phase work grows linearly in N as Lemma 2.6 allows")
	return t, nil
}

// E5SortTime measures the full sort's running time: steps vs N at
// P = N (claim: O(log N)), and steps vs P at fixed N (claim:
// O(N log N / P)).
func E5SortTime(o Options) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "sort steps: N-sweep at P=N, then P-sweep at fixed N",
		Claim: "Lemmas 2.7/2.8: O(N log N / P) w.h.p., i.e. O(log N) when P = N",
		Header: []string{
			"N", "P", "steps", "steps/log2(N)", "total ops", "correct?",
		},
	}
	var xs, ys []float64
	for _, n := range sizes(o, []int{64, 256, 1024, 4096, 16384}, 1024) {
		keys := MakeKeys(InputRandom, n, o.Seed+uint64(n))
		res, err := RunCoreSort(keys, n, core.AllocWAT, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		logN := math.Log2(float64(n))
		t.AddRow(n, n, res.Metrics.Steps, float64(res.Metrics.Steps)/logN, res.Metrics.Ops, res.Correct)
		xs = append(xs, float64(n))
		ys = append(ys, float64(res.Metrics.Steps))
	}
	t.Notef("P=N sweep: steps grow %+.1f per doubling of N — logarithmic, not polynomial (power-law exponent %.2f)",
		FitLogSlope(xs, ys), expOf(xs, ys))

	nFix := 4096
	if o.Quick {
		nFix = 1024
	}
	keys := MakeKeys(InputRandom, nFix, o.Seed)
	var ps, steps []float64
	for _, p := range sizes(o, []int{1, 4, 16, 64, 256, 1024, 4096}, 1024) {
		if p > nFix {
			continue
		}
		res, err := RunCoreSort(keys, p, core.AllocWAT, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		logN := math.Log2(float64(nFix))
		t.AddRow(nFix, p, res.Metrics.Steps, float64(res.Metrics.Steps)/logN, res.Metrics.Ops, res.Correct)
		ps = append(ps, float64(p))
		steps = append(steps, float64(res.Metrics.Steps))
	}
	e, _ := FitPowerLaw(ps, steps)
	t.Notef("P-sweep at N=%d: steps ∝ P^%.2f — the O(N log N / P) speedup (ideal exponent −1)", nFix, e)
	return t, nil
}

// E12TreeDepth measures the pivot tree's depth for every combination of
// input order and phase-1 allocation (Lemma 2.8 and the §2.3
// randomized allocation: depth O(log N) w.h.p. — for any input order
// if allocation is randomized).
func E12TreeDepth(o Options) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "pivot-tree depth by input order, allocation and P",
		Claim: "Lemma 2.8/§2.3: depth O(log N) w.h.p.; randomized allocation removes the random-input assumption",
		Header: []string{
			"N", "P", "input", "alloc", "depth", "depth/log2(N)", "correct?",
		},
	}
	allocName := func(a core.Alloc) string {
		if a == core.AllocRandomized {
			return "randomized"
		}
		return "wat"
	}
	for _, n := range sizes(o, []int{256, 1024, 4096}, 1024) {
		logN := math.Log2(float64(n))
		for _, input := range []InputKind{InputRandom, InputSorted, InputReversed} {
			for _, alloc := range []core.Alloc{core.AllocWAT, core.AllocRandomized} {
				keys := MakeKeys(input, n, o.Seed+uint64(n))
				res, err := RunCoreSort(keys, n, alloc, o.Seed, nil)
				if err != nil {
					return nil, err
				}
				t.AddRow(n, n, input.String(), allocName(alloc), res.Depth,
					float64(res.Depth)/logN, res.Correct)
			}
		}
	}
	// The degenerate case the §2.3 randomization exists for: with few
	// processors, deterministic allocation inserts a sorted input in
	// index order, producing a path-shaped tree of depth ~N; randomized
	// allocation keeps it logarithmic.
	nPath := 1024
	if o.Quick {
		nPath = 256
	}
	logN := math.Log2(float64(nPath))
	keys := MakeKeys(InputSorted, nPath, o.Seed)
	for _, alloc := range []core.Alloc{core.AllocWAT, core.AllocRandomized} {
		res, err := RunCoreSort(keys, 1, alloc, o.Seed, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(nPath, 1, "sorted", allocName(alloc), res.Depth,
			float64(res.Depth)/logN, res.Correct)
	}
	t.Notef("at P = N, concurrent insertion already randomizes arrival order, so even deterministic allocation stays shallow; the true degenerate case is few processors + sorted input, where deterministic allocation builds a depth-N path (last two row pairs) and §2.3's randomized allocation restores O(log N)")
	return t, nil
}

func expOf(xs, ys []float64) float64 {
	e, _ := FitPowerLaw(xs, ys)
	return e
}
