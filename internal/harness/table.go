// Package harness regenerates the paper's evaluation. The paper is
// theoretical — its "results" are complexity and contention bounds
// (Lemmas 2.1–2.8, 3.1–3.3 and the §3 headline) rather than measured
// tables — so each experiment here turns one claimed bound into a
// measured table: sweep the relevant parameter, record steps / work /
// contention on the simulator, and check the growth shape against the
// claim. EXPERIMENTS.md records claim vs measurement for every
// experiment; cmd/experiments reprints them on demand.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's rendered result.
type Table struct {
	ID     string   // experiment id, e.g. "E6"
	Title  string   // short description
	Claim  string   // the paper's claim being tested
	Header []string // column names
	Rows   [][]string
	Notes  []string // shape fits, verdicts, caveats
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Notef appends a formatted note line.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as GitHub-flavored markdown (for
// EXPERIMENTS.md regeneration).
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "**Paper claim:** %s\n\n", t.Claim)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "> %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
