package pool

import (
	"sync"
	"testing"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/sizeclass"
)

func testConfig() Config {
	return Config{
		Build: func(capacity int) (Runner, model.Allocator, error) {
			var a model.Arena
			s := core.NewSorter(&a, capacity, core.AllocRandomized)
			return s, &a, nil
		},
	}
}

func mustPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestGetPutReuse: a returned context is handed back out, and the
// build counter stays flat across the reuse loop.
func TestGetPutReuse(t *testing.T) {
	p := mustPool(t, testConfig())
	c, err := p.Get(100)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity != sizeclass.MinClass {
		t.Fatalf("capacity = %d, want %d", c.Capacity, sizeclass.MinClass)
	}
	p.Put(c)
	for i := 0; i < 20; i++ {
		got, err := p.Get(1 + i*10)
		if err != nil {
			t.Fatal(err)
		}
		if got != c {
			t.Fatalf("iteration %d: got a different context", i)
		}
		p.Put(got)
	}
	st := p.Stats()
	if st.Builds != 1 {
		t.Fatalf("builds = %d, want 1", st.Builds)
	}
	if st.Gets != 21 || st.Hits != 20 {
		t.Fatalf("gets=%d hits=%d, want 21 and 20", st.Gets, st.Hits)
	}
}

// TestResetMatchesFresh: after an actual sort mutates the memory, a
// Put+Get round trip must hand back memory byte-identical to a fresh
// build — the zero-steady-state-allocation claim rests on this.
func TestResetMatchesFresh(t *testing.T) {
	p := mustPool(t, testConfig())
	c, err := p.Get(sizeclass.MinClass)
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]model.Word, len(c.Mem))
	copy(fresh, c.Mem)

	// Mutate the whole image as a completed (or abandoned) sort would.
	for i := range c.Mem {
		c.Mem[i] = model.Word(i + 7)
	}
	p.Put(c)
	c2, err := p.Get(sizeclass.MinClass)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c {
		t.Fatal("expected the pooled context back")
	}
	for i := range c2.Mem {
		if c2.Mem[i] != fresh[i] {
			t.Fatalf("mem[%d] = %d after reuse, fresh build has %d", i, c2.Mem[i], fresh[i])
		}
	}
}

// TestClassSelection: requests land in the smallest class that fits.
func TestClassSelection(t *testing.T) {
	p := mustPool(t, testConfig())
	cases := []struct{ n, want int }{
		{1, sizeclass.MinClass},
		{sizeclass.MinClass, sizeclass.MinClass},
		{sizeclass.MinClass + 1, 2 * sizeclass.MinClass},
		{3000, 4096},
		{4096, 4096},
		{4097, 8192},
	}
	for _, tc := range cases {
		c, err := p.Get(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Capacity != tc.want {
			t.Fatalf("Get(%d): capacity %d, want %d", tc.n, c.Capacity, tc.want)
		}
		p.Put(c)
	}
}

// TestOversize: beyond the largest class the pool builds exact-size
// one-offs and never retains them.
func TestOversize(t *testing.T) {
	p := mustPool(t, Config{
		Build: func(capacity int) (Runner, model.Allocator, error) {
			var a model.Arena
			// A flat allocation keeps the huge request cheap for the test.
			s := core.NewSorter(&a, capacity, core.AllocRandomized)
			return s, &a, nil
		},
	})
	n := sizeclass.MaxClass + 1
	c, err := p.Get(n)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity != n {
		t.Fatalf("oversize capacity = %d, want exact %d", c.Capacity, n)
	}
	p.Put(c)
	st := p.Stats()
	if st.Oversize != 1 || st.Trims != 1 {
		t.Fatalf("oversize=%d trims=%d, want 1 and 1", st.Oversize, st.Trims)
	}
	if p.Idle() != 0 {
		t.Fatalf("idle = %d after oversize Put, want 0", p.Idle())
	}
}

// TestPerClassIdleCap: Puts beyond the idle cap drop contexts.
func TestPerClassIdleCap(t *testing.T) {
	cfg := testConfig()
	cfg.PerClassIdle = 2
	p := mustPool(t, cfg)
	var ctxs []*Ctx
	for i := 0; i < 5; i++ {
		c, err := p.Get(10)
		if err != nil {
			t.Fatal(err)
		}
		ctxs = append(ctxs, c)
	}
	for _, c := range ctxs {
		p.Put(c)
	}
	if got := p.Idle(); got != 2 {
		t.Fatalf("idle = %d, want 2", got)
	}
	st := p.Stats()
	if st.Trims != 3 {
		t.Fatalf("trims = %d, want 3", st.Trims)
	}
}

// TestTrim empties every free list.
func TestTrim(t *testing.T) {
	cfg := testConfig()
	cfg.PerClassIdle = 8
	cfg.Shards = 4
	p := mustPool(t, cfg)
	var ctxs []*Ctx
	for i := 0; i < 6; i++ {
		c, err := p.Get(50)
		if err != nil {
			t.Fatal(err)
		}
		ctxs = append(ctxs, c)
	}
	for _, c := range ctxs {
		p.Put(c)
	}
	if p.Idle() == 0 {
		t.Fatal("expected idle contexts before Trim")
	}
	p.Trim()
	if got := p.Idle(); got != 0 {
		t.Fatalf("idle = %d after Trim, want 0", got)
	}
}

// TestMinCapacity: classes below the floor are dropped so every
// context can host the pool's full worker set.
func TestMinCapacity(t *testing.T) {
	cfg := testConfig()
	cfg.MinCapacity = 1000
	p := mustPool(t, cfg)
	if got := p.MinCapacity(); got != 1024 {
		t.Fatalf("MinCapacity = %d, want 1024", got)
	}
	c, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Capacity != 1024 {
		t.Fatalf("Get(3) capacity = %d, want 1024", c.Capacity)
	}

	cfg.MinCapacity = 2 * sizeclass.MaxClass
	if _, err := New(cfg); err == nil {
		t.Fatal("expected error when MinCapacity exceeds every class")
	}
}

// TestConcurrentGetPut shakes the sharded free lists under the race
// detector.
func TestConcurrentGetPut(t *testing.T) {
	cfg := testConfig()
	cfg.PerClassIdle = 4
	cfg.Shards = 4
	p := mustPool(t, cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, err := p.Get(1 + (g*50+i)%600)
				if err != nil {
					t.Error(err)
					return
				}
				c.Mem[0] = model.Word(g) // touch it
				p.Put(c)
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Gets != 400 || st.Puts != 400 {
		t.Fatalf("gets=%d puts=%d, want 400 each", st.Gets, st.Puts)
	}
	if st.Hits == 0 {
		t.Fatal("expected free-list hits under reuse")
	}
}
