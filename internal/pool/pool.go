// Package pool provides reusable sort contexts: size-classed arenas
// plus their immutable sorter layouts, kept on sharded free lists so
// steady-state sorts build no arenas and allocate nothing.
//
// A context owns everything a sort needs except the workers: the
// arena-sized memory image and the Runner that laid it out. Because
// every mutable word of sort state lives in that shared memory,
// clearing the memory and re-seeding reproduces a factory-fresh
// context exactly — reuse is a memset away, never a rebuild. The pool
// hands contexts out by size class (powers of two from
// sizeclass.MinClass to sizeclass.MaxClass), so a request for any
// n ≤ capacity reuses the same context; callers pad the tail with
// virtual elements that compare greater than every real one.
package pool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wfsort/internal/engine"
	"wfsort/internal/model"
	"wfsort/internal/sizeclass"
)

// Runner is the immutable sorter layout a context was built with. It
// is stateless between sorts: all mutable state lives in the context's
// memory, which Seed initializes from zero.
type Runner interface {
	// Seed writes the initial state (WAT seeds) into zeroed memory.
	Seed(mem []model.Word)
	// Program returns the per-worker sort program.
	Program() model.Program
	// PlacesInto reads the final 1-based ranks of elements 1..len(dst)
	// out of memory after a completed sort.
	PlacesInto(mem []model.Word, dst []int)
	// Graph returns the sorter's phase graph — the same program as
	// Program, in the declarative form the pipelined crew needs for
	// per-phase progress notifications and host-side introspection.
	Graph() *engine.Graph
}

// Ctx is one reusable sort context.
type Ctx struct {
	// Capacity is the context's element capacity; any n ≤ Capacity can
	// be sorted in it (pad elements n+1..Capacity compare greatest).
	Capacity int
	// Runner is the immutable layout for Capacity elements.
	Runner Runner
	// Mem is the arena image, len = arena.Size(), seeded and ready.
	Mem []model.Word
	// Places is scratch for reading ranks back, len = Capacity.
	Places []int

	class int // index into Pool.classes, -1 for oversize one-offs
}

// Reset restores the context to its just-built state: zero the memory,
// re-seed. After Reset the context is indistinguishable from a fresh
// build, because the sorter layout itself is immutable.
func (c *Ctx) Reset() {
	clear(c.Mem)
	c.Runner.Seed(c.Mem)
}

// Config builds a Pool.
type Config struct {
	// MinCapacity drops size classes smaller than this (a pool whose
	// sorts always involve w workers needs capacity ≥ w). 0 keeps all.
	MinCapacity int
	// PerClassIdle caps how many idle contexts each class retains
	// across all shards; further Puts drop the context. 0 means 1.
	PerClassIdle int
	// Shards spreads each class's free list to cut Put/Get contention.
	// 0 means 1.
	Shards int
	// Build constructs a runner and its arena for one size class.
	// Required.
	Build func(capacity int) (Runner, model.Allocator, error)
}

// Stats are cumulative pool counters.
type Stats struct {
	// Gets counts Get calls; Hits of them were served from a free list.
	Gets, Hits int64
	// Builds counts full context constructions (arena layout + seed) —
	// the expensive path. Steady state holds this flat.
	Builds int64
	// Oversize counts Gets beyond the largest class, served unpooled.
	Oversize int64
	// Puts counts returns; Trims of all drops (idle cap and Trim calls).
	Puts, Trims int64
}

type shard struct {
	mu   sync.Mutex
	free []*Ctx
	_    [40]byte // keep neighbouring shard locks off one cache line
}

type class struct {
	capacity int
	shards   []shard
	idle     atomic.Int64 // contexts currently on this class's free lists
}

// Pool is a size-classed store of reusable sort contexts. All methods
// are safe for concurrent use.
type Pool struct {
	classes      []class
	perClassIdle int
	build        func(capacity int) (Runner, model.Allocator, error)

	cursor atomic.Int64 // round-robin shard pick

	gets, hits, builds, oversize, puts, trims atomic.Int64
}

// New builds a pool over the shared size-class ladder.
func New(cfg Config) (*Pool, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("pool: Config.Build is required")
	}
	if cfg.PerClassIdle < 1 {
		cfg.PerClassIdle = 1
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	p := &Pool{perClassIdle: cfg.PerClassIdle, build: cfg.Build}
	for _, c := range sizeclass.Classes() {
		if c < cfg.MinCapacity {
			continue
		}
		p.classes = append(p.classes, class{capacity: c, shards: make([]shard, cfg.Shards)})
	}
	if len(p.classes) == 0 {
		return nil, fmt.Errorf("pool: MinCapacity %d leaves no size classes", cfg.MinCapacity)
	}
	return p, nil
}

// MinCapacity returns the smallest class capacity the pool serves.
func (p *Pool) MinCapacity() int { return p.classes[0].capacity }

// classFor returns the index of the smallest class with capacity ≥ n,
// or -1 when n exceeds the largest class.
func (p *Pool) classFor(n int) int {
	for i := range p.classes {
		if n <= p.classes[i].capacity {
			return i
		}
	}
	return -1
}

// Get returns a seeded, ready-to-sort context with Capacity ≥ n,
// reusing an idle one when the class has any. Contexts for n beyond
// the largest size class are built exactly-sized and never pooled;
// Put drops them.
func (p *Pool) Get(n int) (*Ctx, error) {
	if n < 1 {
		return nil, fmt.Errorf("pool: Get(%d)", n)
	}
	p.gets.Add(1)
	ci := p.classFor(n)
	if ci < 0 {
		p.oversize.Add(1)
		return p.buildCtx(n, -1)
	}
	cl := &p.classes[ci]
	if cl.idle.Load() > 0 {
		// Scan shards starting from the rotating cursor; the counter is
		// advisory, so a miss on every shard just falls through to build.
		start := int(p.cursor.Add(1))
		for k := 0; k < len(cl.shards); k++ {
			sh := &cl.shards[(start+k)%len(cl.shards)]
			sh.mu.Lock()
			if len(sh.free) > 0 {
				c := sh.free[len(sh.free)-1]
				sh.free = sh.free[:len(sh.free)-1]
				sh.mu.Unlock()
				cl.idle.Add(-1)
				p.hits.Add(1)
				return c, nil
			}
			sh.mu.Unlock()
		}
	}
	return p.buildCtx(cl.capacity, ci)
}

func (p *Pool) buildCtx(capacity, ci int) (*Ctx, error) {
	r, a, err := p.build(capacity)
	if err != nil {
		return nil, err
	}
	p.builds.Add(1)
	c := &Ctx{
		Capacity: capacity,
		Runner:   r,
		Mem:      make([]model.Word, a.Size()),
		Places:   make([]int, capacity),
		class:    ci,
	}
	r.Seed(c.Mem)
	return c, nil
}

// Put resets the context and returns it to its class's free list, or
// drops it when the class already holds PerClassIdle idle contexts
// (or the context is an oversize one-off). Contexts abandoned
// mid-sort are safe to Put: Reset rebuilds the pristine state.
func (p *Pool) Put(c *Ctx) {
	p.puts.Add(1)
	if c.class < 0 {
		p.trims.Add(1)
		return
	}
	cl := &p.classes[c.class]
	if cl.idle.Load() >= int64(p.perClassIdle) {
		p.trims.Add(1)
		return
	}
	c.Reset()
	sh := &cl.shards[int(p.cursor.Add(1))%len(cl.shards)]
	sh.mu.Lock()
	sh.free = append(sh.free, c)
	sh.mu.Unlock()
	cl.idle.Add(1)
}

// Trim drops every idle context, returning memory to the collector.
// The per-size high-water policy is PerClassIdle at Put time; Trim is
// the explicit floor-to-zero for quiet periods.
func (p *Pool) Trim() {
	for i := range p.classes {
		cl := &p.classes[i]
		for s := range cl.shards {
			sh := &cl.shards[s]
			sh.mu.Lock()
			n := len(sh.free)
			sh.free = nil
			sh.mu.Unlock()
			if n > 0 {
				cl.idle.Add(int64(-n))
				p.trims.Add(int64(n))
			}
		}
	}
}

// Idle reports the total idle contexts across all classes.
func (p *Pool) Idle() int {
	var n int64
	for i := range p.classes {
		n += p.classes[i].idle.Load()
	}
	return int(n)
}

// Stats returns a snapshot of the cumulative counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:     p.gets.Load(),
		Hits:     p.hits.Load(),
		Builds:   p.builds.Load(),
		Oversize: p.oversize.Load(),
		Puts:     p.puts.Load(),
		Trims:    p.trims.Load(),
	}
}
