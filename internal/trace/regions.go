package trace

import (
	"fmt"
	"io"
	"sort"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

// RegionStats aggregates traffic attributed to one labelled region.
type RegionStats struct {
	Name string
	// Ops counts shared-memory operations landing in the region.
	Ops int64
	// MaxContention is the largest number of same-step accesses to a
	// single word of the region.
	MaxContention int
	// Stalls is the Dwork-style stall count contributed by the region.
	Stalls int64
	// Words is the region's size (same-named regions are merged).
	Words int
}

// RegionProfile attributes per-word traffic to the named regions of an
// arena — the tool that answers "which structure is hot?". Install its
// Observer (or combine with a Recorder via Multi) on a pram.Config.
type RegionProfile struct {
	bounds []regionBound
	stats  map[string]*RegionStats
	order  []string
	counts map[int]int
	other  string
}

type regionBound struct {
	base, end int
	name      string
}

// NewRegionProfile builds a profile over the arena's labelled regions.
// Traffic to unlabelled addresses is attributed to "(unlabelled)".
func NewRegionProfile(regions []model.NamedRegion) *RegionProfile {
	p := &RegionProfile{
		stats:  make(map[string]*RegionStats),
		counts: make(map[int]int),
		other:  "(unlabelled)",
	}
	for _, r := range regions {
		if r.Len == 0 {
			continue
		}
		p.bounds = append(p.bounds, regionBound{base: r.Base, end: r.Base + r.Len, name: r.Name})
		st := p.stat(r.Name)
		st.Words += r.Len
	}
	sort.Slice(p.bounds, func(i, j int) bool { return p.bounds[i].base < p.bounds[j].base })
	return p
}

func (p *RegionProfile) stat(name string) *RegionStats {
	st, ok := p.stats[name]
	if !ok {
		st = &RegionStats{Name: name}
		p.stats[name] = st
		p.order = append(p.order, name)
	}
	return st
}

// nameOf resolves an address to its region label by binary search.
func (p *RegionProfile) nameOf(addr int) string {
	lo, hi := 0, len(p.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.bounds[mid].base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && addr < p.bounds[lo-1].end {
		return p.bounds[lo-1].name
	}
	return p.other
}

// Observer returns the callback to install as pram.Config.Observer.
func (p *RegionProfile) Observer() func(step int64, ops []pram.ExecutedOp) {
	return func(_ int64, ops []pram.ExecutedOp) {
		clear(p.counts)
		for _, op := range ops {
			if op.Kind == pram.OpIdle {
				continue
			}
			p.counts[op.Addr]++
			p.stat(p.nameOf(op.Addr)).Ops++
		}
		for addr, c := range p.counts {
			st := p.stat(p.nameOf(addr))
			if c > st.MaxContention {
				st.MaxContention = c
			}
			if c > 1 {
				st.Stalls += int64(c - 1)
			}
		}
	}
}

// Stats returns the per-region aggregates sorted by descending
// contention, then ops.
func (p *RegionProfile) Stats() []RegionStats {
	out := make([]RegionStats, 0, len(p.stats))
	for _, name := range p.order {
		out = append(out, *p.stats[name])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxContention != out[j].MaxContention {
			return out[i].MaxContention > out[j].MaxContention
		}
		return out[i].Ops > out[j].Ops
	})
	return out
}

// WriteTable renders the profile as an aligned text table.
func (p *RegionProfile) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-18s %10s %8s %12s %10s\n",
		"region", "words", "maxcont", "ops", "stalls"); err != nil {
		return err
	}
	for _, st := range p.Stats() {
		if st.Ops == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-18s %10d %8d %12d %10d\n",
			st.Name, st.Words, st.MaxContention, st.Ops, st.Stalls); err != nil {
			return err
		}
	}
	return nil
}

// Multi fans one pram Observer slot out to several observers.
func Multi(obs ...func(int64, []pram.ExecutedOp)) func(int64, []pram.ExecutedOp) {
	return func(step int64, ops []pram.ExecutedOp) {
		for _, o := range obs {
			o(step, ops)
		}
	}
}
