// Package trace records per-step time series from simulator runs and
// renders them as ASCII charts or CSV. The paper has no measured
// figures (it is a theory paper), so these series are this
// repository's figures: contention-over-time makes the difference
// between the O(P) deterministic sort and the O(sqrt(P)) randomized
// sort visible at a glance, and the phase timeline shows how the
// wait-free phases overlap across processors instead of being
// barrier-separated.
package trace

import (
	"fmt"
	"io"
	"strings"

	"wfsort/internal/pram"
)

// Sample is one machine step's aggregate.
type Sample struct {
	Step       int64
	Active     int    // operations executed this step
	Contention int    // max same-word accesses this step
	Phase      string // most common phase label this step
}

// Recorder collects samples via a pram.Config Observer.
type Recorder struct {
	samples []Sample
	counts  map[string]int
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{counts: make(map[string]int)}
}

// Observer returns the callback to install as pram.Config.Observer.
func (r *Recorder) Observer() func(step int64, ops []pram.ExecutedOp) {
	return func(step int64, ops []pram.ExecutedOp) {
		r.record(step, ops)
	}
}

func (r *Recorder) record(step int64, ops []pram.ExecutedOp) {
	clear(r.counts)
	addrs := make(map[int]int, len(ops))
	active := 0
	for _, op := range ops {
		active++
		r.counts[op.Phase]++
		if op.Kind != pram.OpIdle {
			addrs[op.Addr]++
		}
	}
	maxCont := 0
	for _, c := range addrs {
		if c > maxCont {
			maxCont = c
		}
	}
	phase, best := "", 0
	for name, c := range r.counts {
		if c > best || (c == best && name < phase) {
			phase, best = name, c
		}
	}
	r.samples = append(r.samples, Sample{
		Step: step, Active: active, Contention: maxCont, Phase: phase,
	})
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []Sample { return r.samples }

// WriteCSV emits the series as step,active,contention,phase rows.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,active,contention,phase"); err != nil {
		return err
	}
	for _, s := range r.samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%s\n", s.Step, s.Active, s.Contention, s.Phase); err != nil {
			return err
		}
	}
	return nil
}

// Metrics lists the series Chart can plot.
func Metrics() []string { return []string{"contention", "active"} }

// Chart renders a vertical-bar ASCII chart of one metric over time,
// downsampled to width columns and scaled to height rows. metric
// selects what is plotted (one of Metrics); an unrecognized metric is
// an error, not a silent fallback.
func (r *Recorder) Chart(w io.Writer, metric string, width, height int) error {
	if width < 1 || height < 1 {
		return fmt.Errorf("trace: chart needs positive dimensions, got %dx%d", width, height)
	}
	var pick func(s Sample) int
	switch metric {
	case "contention":
		pick = func(s Sample) int { return s.Contention }
	case "active":
		pick = func(s Sample) int { return s.Active }
	default:
		return fmt.Errorf("trace: unknown metric %q (valid: %s)", metric, strings.Join(Metrics(), ", "))
	}
	if len(r.samples) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	cols, phases := r.downsample(width, pick)
	maxV := 1
	for _, v := range cols {
		if v > maxV {
			maxV = v
		}
	}
	for row := height; row >= 1; row-- {
		threshold := float64(row-1) / float64(height) * float64(maxV)
		var b strings.Builder
		fmt.Fprintf(&b, "%6d |", int(threshold)+1)
		for _, v := range cols {
			if float64(v) > threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%6s +%s\n", "", strings.Repeat("-", len(cols)))
	// Phase ruler: mark the first column of each phase change.
	ruler := make([]byte, len(cols))
	for i := range ruler {
		ruler[i] = ' '
	}
	last := ""
	var marks []string
	for i, ph := range phases {
		if ph != last && ph != "" {
			ruler[i] = '^'
			marks = append(marks, fmt.Sprintf("col %d: %s", i, ph))
			last = ph
		}
	}
	fmt.Fprintf(w, "%6s  %s\n", "", string(ruler))
	for _, m := range marks {
		fmt.Fprintf(w, "%6s  %s\n", "", m)
	}
	fmt.Fprintf(w, "%6s  x: %d steps in %d columns, y: %s (max %d)\n",
		"", len(r.samples), len(cols), metric, maxV)
	return nil
}

// downsample buckets the samples into at most width columns, keeping
// the per-bucket maximum of the metric and the dominant phase.
func (r *Recorder) downsample(width int, pick func(Sample) int) (cols []int, phases []string) {
	n := len(r.samples)
	if width > n {
		width = n
	}
	cols = make([]int, width)
	phases = make([]string, width)
	for c := 0; c < width; c++ {
		lo, hi := c*n/width, (c+1)*n/width
		if hi == lo {
			hi = lo + 1
		}
		best := 0
		for _, s := range r.samples[lo:hi] {
			if v := pick(s); v > best {
				best = v
			}
		}
		cols[c] = best
		phases[c] = r.samples[lo].Phase
	}
	return cols, phases
}
