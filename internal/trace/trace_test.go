package trace

import (
	"bytes"
	"strings"
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

func record(t *testing.T) *Recorder {
	t.Helper()
	rec := NewRecorder()
	m := pram.New(pram.Config{P: 4, Mem: 2, Observer: rec.Observer()})
	_, err := m.Run(func(p model.Proc) {
		p.Phase("first")
		p.Read(0) // all 4 hit word 0: contention 4
		p.Phase("second")
		p.Write(1+p.ID()%1, 1) // all hit word 1
		p.Idle()
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestRecorderSamples(t *testing.T) {
	rec := record(t)
	samples := rec.Samples()
	if len(samples) != 3 {
		t.Fatalf("samples = %d, want 3", len(samples))
	}
	if samples[0].Contention != 4 || samples[0].Phase != "first" {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	if samples[1].Contention != 4 || samples[1].Phase != "second" {
		t.Errorf("sample 1 = %+v", samples[1])
	}
	if samples[2].Contention != 0 || samples[2].Active != 4 {
		t.Errorf("idle sample = %+v", samples[2])
	}
}

func TestWriteCSV(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines = %d, want 4 (header + 3)", len(lines))
	}
	if lines[0] != "step,active,contention,phase" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "first") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestChartRenders(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	if err := rec.Chart(&buf, "contention", 10, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "#") {
		t.Errorf("chart has no bars:\n%s", out)
	}
	if !strings.Contains(out, "first") || !strings.Contains(out, "second") {
		t.Errorf("chart missing phase marks:\n%s", out)
	}
}

func TestChartActiveMetric(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	if err := rec.Chart(&buf, "active", 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "y: active (max 4)") {
		t.Errorf("active metric not plotted:\n%s", buf.String())
	}
}

func TestChartEmptyAndBadDims(t *testing.T) {
	rec := NewRecorder()
	var buf bytes.Buffer
	if err := rec.Chart(&buf, "contention", 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Error("empty recorder should say so")
	}
	if err := rec.Chart(&buf, "contention", 0, 4); err == nil {
		t.Error("zero width accepted")
	}
}

// TestChartUnknownMetric pins the Chart contract: an unrecognized
// metric is an error naming the valid ones, never a silent fallback to
// contention.
func TestChartUnknownMetric(t *testing.T) {
	rec := record(t)
	var buf bytes.Buffer
	err := rec.Chart(&buf, "stepz", 10, 4)
	if err == nil {
		t.Fatal("unknown metric accepted")
	}
	for _, m := range Metrics() {
		if !strings.Contains(err.Error(), m) {
			t.Errorf("error %q should name valid metric %q", err, m)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("unknown metric should not chart anything, wrote:\n%s", buf.String())
	}
}

func TestDownsampleWiderThanSeries(t *testing.T) {
	rec := record(t)
	cols, phases := rec.downsample(100, func(s Sample) int { return s.Active })
	if len(cols) != 3 || len(phases) != 3 {
		t.Errorf("downsample should clamp to series length, got %d", len(cols))
	}
}
