package trace

import (
	"bytes"
	"strings"
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

func TestRegionProfileAttribution(t *testing.T) {
	var a model.Arena
	hot := a.Named("hot", 1)
	cold := a.Named("cold", 8)
	unl := a.Array(2) // unlabelled

	prof := NewRegionProfile(a.Regions())
	m := pram.New(pram.Config{P: 4, Mem: a.Size(), Observer: prof.Observer()})
	_, err := m.Run(func(p model.Proc) {
		p.Read(hot.At(0))           // 4 procs on one word: contention 4
		p.Write(cold.At(p.ID()), 1) // disjoint: contention 1
		p.Read(unl.At(0))           // unlabelled
		p.Idle()                    // must not be attributed anywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	stats := map[string]RegionStats{}
	for _, st := range prof.Stats() {
		stats[st.Name] = st
	}
	if st := stats["hot"]; st.MaxContention != 4 || st.Ops != 4 || st.Stalls != 3 {
		t.Errorf("hot = %+v", st)
	}
	if st := stats["cold"]; st.MaxContention != 1 || st.Ops != 4 || st.Words != 8 {
		t.Errorf("cold = %+v", st)
	}
	if st := stats["(unlabelled)"]; st.MaxContention != 4 || st.Ops != 4 {
		t.Errorf("unlabelled = %+v", st)
	}
}

func TestRegionProfileSortsByContention(t *testing.T) {
	var a model.Arena
	one := a.Named("one", 4)
	two := a.Named("two", 1)
	prof := NewRegionProfile(a.Regions())
	m := pram.New(pram.Config{P: 3, Mem: a.Size(), Observer: prof.Observer()})
	if _, err := m.Run(func(p model.Proc) {
		p.Write(one.At(p.ID()), 1) // contention 1
		p.Read(two.At(0))          // contention 3
	}); err != nil {
		t.Fatal(err)
	}
	stats := prof.Stats()
	if stats[0].Name != "two" {
		t.Errorf("hottest region = %q, want two", stats[0].Name)
	}
}

func TestRegionProfileTable(t *testing.T) {
	var a model.Arena
	r := a.Named("thing", 2)
	prof := NewRegionProfile(a.Regions())
	m := pram.New(pram.Config{P: 2, Mem: a.Size(), Observer: prof.Observer()})
	if _, err := m.Run(func(p model.Proc) {
		p.Write(r.At(p.ID()), 1)
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "thing") {
		t.Errorf("table missing region:\n%s", buf.String())
	}
}

func TestRegionNameOfBoundaries(t *testing.T) {
	var a model.Arena
	a.Array(3) // gap before the first named region
	r1 := a.Named("r1", 2)
	r2 := a.Named("r2", 2)
	prof := NewRegionProfile(a.Regions())
	cases := map[int]string{
		0:           "(unlabelled)",
		r1.At(0):    "r1",
		r1.At(1):    "r1",
		r2.At(0):    "r2",
		r2.At(1):    "r2",
		r2.Base + 2: "(unlabelled)",
	}
	for addr, want := range cases {
		if got := prof.nameOf(addr); got != want {
			t.Errorf("nameOf(%d) = %q, want %q", addr, got, want)
		}
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	calls := [2]int{}
	obs := Multi(
		func(int64, []pram.ExecutedOp) { calls[0]++ },
		func(int64, []pram.ExecutedOp) { calls[1]++ },
	)
	obs(1, nil)
	obs(2, nil)
	if calls != [2]int{2, 2} {
		t.Errorf("calls = %v", calls)
	}
}

func TestArenaNamedRegions(t *testing.T) {
	var a model.Arena
	a.Named("x", 3)
	a.Array(2)
	addr := a.NamedWord("y")
	regs := a.Regions()
	if len(regs) != 2 || regs[0].Name != "x" || regs[1].Name != "y" {
		t.Fatalf("regions = %+v", regs)
	}
	if regs[1].Base != addr || regs[1].Len != 1 {
		t.Errorf("named word region = %+v, addr %d", regs[1], addr)
	}
}
