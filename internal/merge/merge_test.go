package merge

import (
	"io"
	"math/rand"
	"sort"
	"testing"
)

func sortedRuns(rng *rand.Rand, k, maxLen int) ([][]int64, []int64) {
	runs := make([][]int64, k)
	var all []int64
	for i := range runs {
		n := rng.Intn(maxLen + 1)
		run := make([]int64, n)
		for j := range run {
			run[j] = int64(rng.Intn(64) - 32) // narrow range forces ties
		}
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
		runs[i] = run
		all = append(all, run...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return runs, all
}

func TestSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		runs, want := sortedRuns(rng, 1+rng.Intn(8), 50)
		got := Slices(runs, len(want))
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d keys, want %d", iter, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d: key %d = %d, want %d", iter, i, got[i], want[i])
			}
		}
	}
}

func TestSlicesTieBreakDeterminism(t *testing.T) {
	runs := [][]int64{{5, 5, 5}, {5, 5}, {5}}
	a := Slices(runs, 6)
	b := Slices(runs, 6)
	for i := range a {
		if a[i] != b[i] || a[i] != 5 {
			t.Fatal("tie merge not deterministic")
		}
	}
}

// sliceSource adapts a slice to Source, delivering in awkward
// increments to stress frame refills.
type sliceSource struct {
	keys []int64
	pos  int
	step int
}

func (s *sliceSource) ReadKeys(buf []int64) (int, error) {
	if s.pos >= len(s.keys) {
		return 0, io.EOF
	}
	n := s.step
	if n > len(buf) {
		n = len(buf)
	}
	if n > len(s.keys)-s.pos {
		n = len(s.keys) - s.pos
	}
	copy(buf, s.keys[s.pos:s.pos+n])
	s.pos += n
	if s.pos == len(s.keys) {
		return n, io.EOF
	}
	return n, nil
}

func TestStreamsMatchesSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		runs, want := sortedRuns(rng, 1+rng.Intn(6), 80)
		srcs := make([]Source, len(runs))
		for i, r := range runs {
			srcs[i] = &sliceSource{keys: r, step: 1 + rng.Intn(5)}
		}
		bufKeys := 1 + rng.Intn(17)
		var got []int64
		err := Streams(func(keys []int64) error {
			got = append(got, keys...)
			return nil
		}, srcs, bufKeys)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		ref := Slices(runs, len(want))
		if len(got) != len(ref) {
			t.Fatalf("iter %d: %d keys, want %d", iter, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("iter %d: streams diverges from slices at %d", iter, i)
			}
		}
	}
}

func TestStreamsEmptySources(t *testing.T) {
	srcs := []Source{&sliceSource{step: 1}, &sliceSource{step: 1}}
	calls := 0
	if err := Streams(func([]int64) error { calls++; return nil }, srcs, 8); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("dst called %d times for empty merge", calls)
	}
}

type failSource struct{}

func (failSource) ReadKeys([]int64) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestStreamsPropagatesSourceError(t *testing.T) {
	err := Streams(func([]int64) error { return nil }, []Source{failSource{}}, 4)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v", err)
	}
}

func TestStreamsPropagatesDstError(t *testing.T) {
	src := &sliceSource{keys: []int64{1, 2, 3}, step: 3}
	want := io.ErrClosedPipe
	err := Streams(func([]int64) error { return want }, []Source{src}, 2)
	if err != want {
		t.Fatalf("got %v", err)
	}
}
