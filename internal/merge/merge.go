// Package merge is the k-way merge shared by the cluster coordinator
// (reassembling sorted shard replies) and the streaming external sort
// (draining sorted spill chunks). Both consumers need the same two
// guarantees: ties break toward the lower source index, so a given set
// of sorted runs has exactly one merge output — the determinism the
// cluster kill-leg's byte-identical gate and the stream's golden tests
// rest on — and the streaming form touches only one buffered frame per
// source at a time, so coordinator/stream memory is bounded by buffer
// size, not input size.
package merge

import "io"

// head is one heap entry: the current key of a source plus its index.
type head struct {
	val int64
	src int
}

// heap is a binary min-heap of source heads ordered by (val, src).
type heap []head

func (h heap) less(a, b head) bool {
	return a.val < b.val || (a.val == b.val && a.src < b.src)
}

func (h *heap) push(x head) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !s.less(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h heap) siftDown() {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h.less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && h.less(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Slices merges sorted runs into one sorted slice of n keys (n sizes
// the output allocation; pass the total length). Ties break toward the
// lower run index.
func Slices(runs [][]int64, n int) []int64 {
	pos := make([]int, len(runs))
	var h heap
	for si, s := range runs {
		if len(s) > 0 {
			h.push(head{val: s[0], src: si})
		}
	}
	out := make([]int64, 0, n)
	for len(h) > 0 {
		top := h[0]
		out = append(out, top.val)
		pos[top.src]++
		if p := pos[top.src]; p < len(runs[top.src]) {
			h[0] = head{val: runs[top.src][p], src: top.src}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		h.siftDown()
	}
	return out
}

// Source is one sorted run delivered incrementally: ReadKeys fills buf
// with the next keys in order and returns io.EOF after the last one
// (either alongside the final keys or on the following call).
// wire.Reader satisfies it directly.
type Source interface {
	ReadKeys(buf []int64) (int, error)
}

// Streams merges sorted sources into dst, emitting output in frames of
// at most bufKeys keys. Each source holds one bufKeys-sized frame in
// memory at a time, so the merge runs in O(len(srcs)·bufKeys) space no
// matter how long the runs are. Ties break toward the lower source
// index, exactly as in Slices. A source that yields out-of-order keys
// corrupts no invariant here — the output just reflects it — ledger
// checks upstream own that detection.
func Streams(dst func(keys []int64) error, srcs []Source, bufKeys int) error {
	if bufKeys < 1 {
		bufKeys = 1
	}
	type frame struct {
		buf  []int64
		pos  int
		n    int
		done bool
	}
	frames := make([]frame, len(srcs))
	fill := func(i int) error {
		f := &frames[i]
		if f.done {
			f.n, f.pos = 0, 0
			return nil
		}
		n, err := srcs[i].ReadKeys(f.buf)
		f.n, f.pos = n, 0
		if err == io.EOF {
			f.done = true
			return nil
		}
		return err
	}
	var h heap
	for i := range frames {
		frames[i].buf = make([]int64, bufKeys)
		for frames[i].n == 0 && !frames[i].done {
			if err := fill(i); err != nil {
				return err
			}
		}
		if frames[i].n > 0 {
			h.push(head{val: frames[i].buf[0], src: i})
		}
	}
	out := make([]int64, 0, bufKeys)
	flush := func() error {
		if len(out) == 0 {
			return nil
		}
		err := dst(out)
		out = out[:0]
		return err
	}
	for len(h) > 0 {
		top := h[0]
		out = append(out, top.val)
		if len(out) == bufKeys {
			if err := flush(); err != nil {
				return err
			}
		}
		f := &frames[top.src]
		f.pos++
		for f.pos == f.n && !f.done {
			if err := fill(top.src); err != nil {
				return err
			}
		}
		if f.pos < f.n {
			h[0] = head{val: f.buf[f.pos], src: top.src}
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		h.siftDown()
	}
	return flush()
}
