package qos

import "wfsort/internal/native"

// Observer receives the scheduler's per-decision events. The serving
// layer adapts it onto the obs class counters; replay and tests may
// pass nil (no events) or their own recorder. Calls arrive from the
// pipeline's single dispatcher goroutine, in decision order.
type Observer interface {
	// JobDispatched fires when a job is picked for the crew, with its
	// queue wait.
	JobDispatched(class string, waitNs int64)
	// JobAged fires when the picked job won only through aging — a
	// strictly lower-priority tier was pending and lost.
	JobAged(class string)
	// JobDeadlineDropped fires when a queued job is shed because its
	// deadline can no longer be met.
	JobDeadlineDropped(class string)
}

// Sched is the priority/deadline queue policy for native.Pipeline:
//
//   - Strict priority tiers with aging: a job's effective tier is
//     Priority − waited/aging, unclamped, so every queued job
//     eventually outranks all fresh arrivals — no tier starves
//     (DESIGN §13 has the bound).
//   - Shortest-job-first inside a tier, by EstCost (the sizeclass
//     capacity the sort will run at), submission order breaking the
//     final tie.
//   - Deadline shedding with no false positives: a job is dropped
//     iff deadline − now < floor, so with the default floor of 0
//     only an already-expired deadline sheds, and a boundary job
//     (exactly floor remaining) is dispatched, never dropped.
//
// All decisions are pure integer functions of the pipeline clock, so
// a replayed schedule is byte-identical — see Replay.
type Sched struct {
	agingNs int64
	floorNs int64
	ob      Observer
}

// NewSched builds the queue policy for a validated config. ob may be
// nil.
func NewSched(cfg *Config, ob Observer) *Sched {
	return &Sched{agingNs: cfg.agingNs(), floorNs: cfg.floorNs(), ob: ob}
}

var _ native.QueuePolicy = (*Sched)(nil)

// Shed implements native.QueuePolicy: drop iff the deadline provably
// cannot be met (remaining < floor). Jobs without deadlines are never
// shed. The pipeline removes a shed job immediately, so the observer
// sees exactly one JobDeadlineDropped per dropped job.
func (s *Sched) Shed(now int64, j native.JobView) bool {
	if j.DeadlineNs == 0 || satSub(j.DeadlineNs, now) >= s.floorNs {
		return false
	}
	if s.ob != nil {
		s.ob.JobDeadlineDropped(j.Class)
	}
	return true
}

// Pick implements native.QueuePolicy: lowest effective tier wins;
// EstCost then Seq break ties.
func (s *Sched) Pick(now int64, pending []native.JobView) int {
	best, bestTier := 0, s.tier(now, pending[0])
	minRaw := pending[0].Priority
	for i := 1; i < len(pending); i++ {
		if p := pending[i].Priority; p < minRaw {
			minRaw = p
		}
		tier := s.tier(now, pending[i])
		if tier < bestTier || (tier == bestTier && better(pending[i], pending[best])) {
			best, bestTier = i, tier
		}
	}
	if s.ob != nil {
		win := pending[best]
		s.ob.JobDispatched(win.Class, satSub(now, win.QueuedNs))
		if win.Priority > minRaw {
			s.ob.JobAged(win.Class)
		}
	}
	return best
}

// tier is the job's effective priority: raw tier minus one per aging
// interval waited, deliberately unclamped below zero so aged jobs
// keep gaining ground on tier-0 floods.
func (s *Sched) tier(now int64, j native.JobView) int64 {
	waited := satSub(now, j.QueuedNs)
	if waited < 0 {
		waited = 0
	}
	return int64(j.Priority) - waited/s.agingNs
}

// better is the within-tier tie-break: shortest estimated job first,
// then submission order. EstCost 0 means unknown and sorts last among
// equals of its tier rather than jumping the queue.
func better(a, b native.JobView) bool {
	ca, cb := a.EstCost, b.EstCost
	if ca == 0 {
		ca = 1<<63 - 1
	}
	if cb == 0 {
		cb = 1<<63 - 1
	}
	if ca != cb {
		return ca < cb
	}
	return a.Seq < b.Seq
}
