package qos

import (
	"testing"
	"time"

	"wfsort/internal/loadgen"
	"wfsort/internal/native"
)

func schedFor(t testing.TB, agingMs, floorMs float64) *Sched {
	t.Helper()
	cfg := &Config{
		Classes: []ClassQoS{{Name: "x", Rate: 1, Burst: 1}},
		AgingMs: agingMs,
		FloorMs: floorMs,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("test config invalid: %v", err)
	}
	return NewSched(cfg, nil)
}

func jv(seq uint64, prio int, est int64, queuedNs int64) native.JobView {
	return native.JobView{Seq: seq, Class: "x", Priority: prio, EstCost: est, QueuedNs: queuedNs}
}

func TestSchedPriorityOrder(t *testing.T) {
	s := schedFor(t, 100, 0)
	pending := []native.JobView{jv(0, 5, 10, 0), jv(1, 2, 10, 0), jv(2, 8, 10, 0)}
	if got := s.Pick(0, pending); got != 1 {
		t.Fatalf("Pick = %d, want 1 (priority 2)", got)
	}
}

func TestSchedSJFWithinTier(t *testing.T) {
	s := schedFor(t, 100, 0)
	pending := []native.JobView{jv(0, 3, 4096, 0), jv(1, 3, 256, 0), jv(2, 3, 1024, 0)}
	if got := s.Pick(0, pending); got != 1 {
		t.Fatalf("Pick = %d, want 1 (smallest EstCost)", got)
	}
	// EstCost 0 means unknown: it must sort last in its tier, not first.
	pending = []native.JobView{jv(0, 3, 0, 0), jv(1, 3, 4096, 0)}
	if got := s.Pick(0, pending); got != 1 {
		t.Fatalf("Pick = %d, want 1 (known cost beats unknown)", got)
	}
	// Full tie: submission order.
	pending = []native.JobView{jv(7, 3, 512, 0), jv(4, 3, 512, 0)}
	if got := s.Pick(0, pending); got != 1 {
		t.Fatalf("Pick = %d, want 1 (lower Seq)", got)
	}
}

// TestSchedAgingPromotes walks the clock and watches a low-priority
// job overtake a perpetually-refreshed high-priority stream: at tier
// distance 5 with 100ms aging the crossover lands in (400ms, 600ms]
// (ties break toward the smaller job, which is the flood's).
func TestSchedAgingPromotes(t *testing.T) {
	s := schedFor(t, 100, 0)
	ms := int64(time.Millisecond)
	lo := jv(0, 5, 4096, 0)
	for _, tc := range []struct {
		nowMs int64
		want  int
	}{
		{0, 1},    // fresh: flood wins
		{400, 1},  // lo at tier 5-4=1, flood at 0: flood wins
		{500, 1},  // lo at tier 0, tie; flood's smaller EstCost wins
		{501, 1},  // still tier 0 vs 0
		{600, 0},  // lo at tier -1: aging wins outright
		{1200, 0}, // and keeps winning
	} {
		hi := jv(100, 0, 256, tc.nowMs*ms) // freshly arrived tier-0 job
		got := s.Pick(tc.nowMs*ms, []native.JobView{lo, hi})
		if got != tc.want {
			t.Fatalf("at %dms: Pick = %d, want %d", tc.nowMs, got, tc.want)
		}
	}
}

func TestSchedShedRule(t *testing.T) {
	ms := int64(time.Millisecond)
	for _, tc := range []struct {
		name    string
		floorMs float64
		dlNs    int64
		nowNs   int64
		want    bool
	}{
		{"no deadline never sheds", 0, 0, 1 << 60, false},
		{"future deadline kept", 0, 100 * ms, 50 * ms, false},
		{"boundary now==deadline kept", 0, 100 * ms, 100 * ms, false},
		{"expired sheds", 0, 100 * ms, 100*ms + 1, true},
		{"floor: remaining==floor kept", 10, 100 * ms, 90 * ms, false},
		{"floor: remaining just under sheds", 10, 100 * ms, 90*ms + 1, true},
		{"floor: ample remaining kept", 10, 100 * ms, 50 * ms, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := schedFor(t, 100, tc.floorMs)
			j := jv(0, 0, 256, 0)
			j.DeadlineNs = tc.dlNs
			if got := s.Shed(tc.nowNs, j); got != tc.want {
				t.Fatalf("Shed(now=%d, dl=%d, floor=%v) = %v, want %v",
					tc.nowNs, tc.dlNs, tc.floorMs, got, tc.want)
			}
		})
	}
}

type recObserver struct {
	dispatched []string
	waits      []int64
	aged       []string
	dropped    []string
}

func (r *recObserver) JobDispatched(class string, waitNs int64) {
	r.dispatched = append(r.dispatched, class)
	r.waits = append(r.waits, waitNs)
}
func (r *recObserver) JobAged(class string)            { r.aged = append(r.aged, class) }
func (r *recObserver) JobDeadlineDropped(class string) { r.dropped = append(r.dropped, class) }

func TestSchedObserverEvents(t *testing.T) {
	rec := &recObserver{}
	cfg := &Config{Classes: []ClassQoS{{Name: "x", Rate: 1, Burst: 1}}, AgingMs: 100}
	s := NewSched(cfg, rec)
	ms := int64(time.Millisecond)

	// A pick where aging decided: the old prio-5 job beats a fresh
	// prio-0 job, so JobAged must fire alongside JobDispatched.
	old := jv(0, 5, 256, 0)
	old.Class = "bulk"
	fresh := jv(1, 0, 256, 600*ms)
	fresh.Class = "lat"
	if got := s.Pick(600*ms, []native.JobView{old, fresh}); got != 0 {
		t.Fatalf("Pick = %d, want the aged job", got)
	}
	if len(rec.dispatched) != 1 || rec.dispatched[0] != "bulk" || rec.waits[0] != 600*ms {
		t.Fatalf("dispatched events = %v waits = %v", rec.dispatched, rec.waits)
	}
	if len(rec.aged) != 1 || rec.aged[0] != "bulk" {
		t.Fatalf("aged events = %v, want [bulk]", rec.aged)
	}

	// A pick the raw priorities already decided must not count as aged.
	a, b := jv(2, 0, 256, 0), jv(3, 3, 256, 0)
	s.Pick(1*ms, []native.JobView{a, b})
	if len(rec.aged) != 1 {
		t.Fatalf("aged fired on a raw-priority win: %v", rec.aged)
	}

	// Shed fires JobDeadlineDropped exactly when it sheds.
	d := jv(4, 0, 256, 0)
	d.Class = "lat"
	d.DeadlineNs = 1 * ms
	if !s.Shed(2*ms, d) || len(rec.dropped) != 1 || rec.dropped[0] != "lat" {
		t.Fatalf("dropped events = %v", rec.dropped)
	}
	if s.Shed(0, jv(5, 0, 256, 0)) || len(rec.dropped) != 1 {
		t.Fatalf("dropped fired without a shed: %v", rec.dropped)
	}
}

// starvationBound is the aging wait bound the starvation tests assert:
// crossover (prioDiff tiers at 5ms aging) plus the flood backlog
// accumulated before the crossover — the mean grows one service-ns per
// elapsed ns at 2x overload, widened 1.5x for Poisson fluctuation —
// plus slop for the in-flight job and within-tier ties. Under strict
// priority an early trickle job instead waits for the entire flood to
// drain (~2x horizon), an order of magnitude past this bound; see
// TestSchedStarvationBoundIsSharp.
func starvationBound(queuedAtNs int64) int64 {
	ms := int64(time.Millisecond)
	crossNs := 3 * 5 * ms
	backlogNs := queuedAtNs + crossNs
	return crossNs + backlogNs*3/2 + 50*ms
}

// TestSchedStarvationFreedom100Seeds is the acceptance-criteria
// starvation property at simulator scale: 100 different seeded
// workloads, each a 2x-overload high-priority flood with a
// low-priority trickle, replayed through the real Bucket/Sched code.
// Every trickle job must dispatch, and within the aging bound — the
// crossover delay plus the backlog accumulated before the crossover —
// never "when the flood ends". Without aging the early trickle jobs
// wait for the entire flood and the bound fails by an order of
// magnitude.
func TestSchedStarvationFreedom100Seeds(t *testing.T) {
	const (
		horizonMs = 200.0
		floodRate = 2000.0 // 2x the 1000/s service capacity below
		serviceNs = int64(time.Millisecond)
		agingMs   = 5.0
		prioDiff  = 3
	)
	for seed := uint64(0); seed < 100; seed++ {
		spec := &loadgen.Spec{
			Seed:      seed,
			HorizonMs: horizonMs,
			Classes: []loadgen.ClassSpec{
				{
					Name:    "flood",
					Arrival: loadgen.ArrivalSpec{Dist: "poisson", Rate: floodRate},
					Size:    loadgen.SizeSpec{Dist: "fixed", N: 128},
				},
				{
					Name:    "trickle",
					Arrival: loadgen.ArrivalSpec{Dist: "det", Rate: 50},
					Size:    loadgen.SizeSpec{Dist: "fixed", N: 128},
				},
			},
		}
		trace, err := loadgen.BuildTrace(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg := &Config{
			Classes: []ClassQoS{
				{Name: "flood", Rate: 2 * floodRate, Burst: 1000, Priority: 0},
				{Name: "trickle", Rate: 100, Burst: 100, Priority: prioDiff},
			},
			AgingMs: agingMs,
		}
		events, err := Replay(trace, cfg, serviceNs, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		admitted, dispatched := 0, 0
		for _, e := range events {
			if e.Class != "trickle" {
				continue
			}
			switch e.Kind {
			case "admit":
				admitted++
			case "dispatch":
				dispatched++
				queuedAt := e.AtNs - e.WaitNs
				bound := starvationBound(queuedAt)
				if e.WaitNs > bound {
					t.Fatalf("seed %d: trickle seq %d queued at %dms waited %dms > bound %dms",
						seed, e.Seq, queuedAt/int64(time.Millisecond),
						e.WaitNs/int64(time.Millisecond), bound/int64(time.Millisecond))
				}
			case "shed":
				t.Fatalf("seed %d: trickle seq %d shed without a deadline", seed, e.Seq)
			}
		}
		if admitted == 0 {
			t.Fatalf("seed %d: no trickle admitted — spec mis-built", seed)
		}
		if dispatched != admitted {
			t.Fatalf("seed %d: %d trickle admitted but %d dispatched — starvation",
				seed, admitted, dispatched)
		}
	}
}

// TestSchedStarvationBoundIsSharp re-runs one starvation workload with
// aging effectively disabled (one promotion per ~17 minutes) and
// checks the bound above actually fails — certifying the 100-seed test
// can detect the regression it exists for.
func TestSchedStarvationBoundIsSharp(t *testing.T) {
	spec := &loadgen.Spec{
		Seed:      7,
		HorizonMs: 200,
		Classes: []loadgen.ClassSpec{
			{Name: "flood", Arrival: loadgen.ArrivalSpec{Dist: "poisson", Rate: 2000}, Size: loadgen.SizeSpec{Dist: "fixed", N: 128}},
			{Name: "trickle", Arrival: loadgen.ArrivalSpec{Dist: "det", Rate: 50}, Size: loadgen.SizeSpec{Dist: "fixed", N: 128}},
		},
	}
	trace, err := loadgen.BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{
		Classes: []ClassQoS{
			{Name: "flood", Rate: 4000, Burst: 1000, Priority: 0},
			{Name: "trickle", Rate: 100, Burst: 100, Priority: 3},
		},
		AgingMs: maxAgingMs, // aging neutered: strict priority in practice
	}
	events, err := Replay(trace, cfg, int64(time.Millisecond), 0)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for _, e := range events {
		if e.Class != "trickle" || e.Kind != "dispatch" {
			continue
		}
		if e.WaitNs > starvationBound(e.AtNs-e.WaitNs) {
			violated = true
			break
		}
	}
	if !violated {
		t.Fatal("strict priority satisfied the aging bound — the starvation test asserts nothing")
	}
}

func BenchmarkSchedPick(b *testing.B) {
	s := schedFor(b, 100, 0)
	pending := make([]native.JobView, 64)
	for i := range pending {
		pending[i] = jv(uint64(i), i%8, int64(256<<(i%4)), int64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Pick(int64(i), pending)
	}
}

func BenchmarkBucketTake(b *testing.B) {
	bk := NewBucket(1e9, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bk.Take(int64(i), 1)
	}
}
