package qos

import (
	"fmt"
	"sort"
	"strings"

	"wfsort/internal/loadgen"
	"wfsort/internal/native"
	"wfsort/internal/sizeclass"
)

// Event is one decision in a replayed schedule.
type Event struct {
	// AtNs is the simulated instant of the decision.
	AtNs int64
	// Kind is admit, deny, reject, shed, or dispatch.
	Kind string
	// Seq indexes the trace's request list.
	Seq int
	// Class is the request's class name.
	Class string
	// WaitNs is the queue wait (dispatch events only).
	WaitNs int64
	// RetryNs is the bucket's retry hint (deny events only).
	RetryNs int64
}

// Replay runs a loadgen trace through the admission buckets and the
// queue policy against a simulated single-crew server whose service
// time is baseNs + perKeyNs·n, and returns every decision in order.
//
// The simulation shares the production decision code — the same
// Bucket.Take, Sched.Shed and Sched.Pick the server runs — driven by
// a virtual clock instead of a wall clock. Decisions are pure integer
// functions of their inputs, so two replays of one trace are
// byte-identical: the determinism golden pins the schedule itself,
// not just summary statistics.
func Replay(t *loadgen.Trace, cfg *Config, baseNs, perKeyNs int64) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buckets := make(map[string]*Bucket, len(cfg.Classes))
	for i := range cfg.Classes {
		c := &cfg.Classes[i]
		buckets[c.Name] = NewBucket(c.Rate, c.Burst)
	}
	sched := NewSched(cfg, nil)

	type arrival struct {
		seq  int
		atNs int64
		name string
		n    int
	}
	arr := make([]arrival, len(t.Reqs))
	for i, r := range t.Reqs {
		if r.Class < 0 || r.Class >= len(t.Spec.Classes) {
			return nil, cfgErrf("", "trace request %d names class index %d of %d", i, r.Class, len(t.Spec.Classes))
		}
		arr[i] = arrival{seq: i, atNs: r.AtNs, name: t.Spec.Classes[r.Class].Name, n: r.N}
	}
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].atNs < arr[j].atNs })

	var (
		events    []Event
		queue     []native.JobView
		sizes     = map[uint64]int{} // Seq -> key count, for service time
		busyUntil int64
		now       int64
		next      = 0
	)
	ingest := func(a arrival) {
		now = a.atNs
		c := cfg.Class(a.name)
		if c == nil {
			events = append(events, Event{AtNs: now, Kind: "reject", Seq: a.seq, Class: a.name})
			return
		}
		ok, retryNs := buckets[a.name].Take(now, 1)
		if !ok {
			events = append(events, Event{AtNs: now, Kind: "deny", Seq: a.seq, Class: a.name, RetryNs: retryNs})
			return
		}
		events = append(events, Event{AtNs: now, Kind: "admit", Seq: a.seq, Class: a.name})
		est := int64(a.n)
		if cap, ok := sizeclass.For(a.n); ok {
			est = int64(cap)
		}
		v := native.JobView{
			Seq:      uint64(a.seq),
			Class:    a.name,
			Priority: c.Priority,
			EstCost:  est,
			QueuedNs: now,
		}
		if c.DeadlineMs > 0 {
			v.DeadlineNs = now + int64(c.DeadlineMs*1e6)
		}
		sizes[v.Seq] = a.n
		queue = append(queue, v)
	}

	for next < len(arr) || len(queue) > 0 {
		if len(queue) == 0 {
			ingest(arr[next])
			next++
			continue
		}
		dispatchAt := busyUntil
		if now > dispatchAt {
			dispatchAt = now
		}
		if next < len(arr) && arr[next].atNs <= dispatchAt {
			ingest(arr[next])
			next++
			continue
		}
		now = dispatchAt
		// Shed pass, exactly as the pipeline dispatcher runs it: every
		// doomed job leaves the queue before Pick sees it.
		kept := queue[:0]
		for _, v := range queue {
			if sched.Shed(now, v) {
				events = append(events, Event{AtNs: now, Kind: "shed", Seq: int(v.Seq), Class: v.Class,
					WaitNs: now - v.QueuedNs})
			} else {
				kept = append(kept, v)
			}
		}
		queue = kept
		if len(queue) == 0 {
			continue
		}
		pick := sched.Pick(now, queue)
		v := queue[pick]
		queue = append(queue[:pick], queue[pick+1:]...)
		events = append(events, Event{AtNs: now, Kind: "dispatch", Seq: int(v.Seq), Class: v.Class,
			WaitNs: now - v.QueuedNs})
		busyUntil = now + baseNs + perKeyNs*int64(sizes[v.Seq])
	}
	return events, nil
}

// FormatEvents renders a schedule one decision per line — the golden
// file format.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "t=%-12d %-8s seq=%-4d class=%s", e.AtNs, e.Kind, e.Seq, e.Class)
		switch e.Kind {
		case "dispatch", "shed":
			fmt.Fprintf(&b, " wait=%d", e.WaitNs)
		case "deny":
			fmt.Fprintf(&b, " retry=%d", e.RetryNs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
