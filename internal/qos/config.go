package qos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"
)

// Limits on what a config may ask for. They bound resource commitments
// (one bucket per class) and keep every number in integer-nanosecond
// range; a config outside them is rejected with a *ConfigError, never
// clamped silently.
const (
	maxClasses    = 64
	maxRate       = 1e9 // tokens/second; 1 ns/token resolution floor
	maxBurst      = 1e6 // tokens
	maxPriority   = 16  // tiers 0 (most urgent) .. 16
	maxDeadlineMs = 1e7 // ~2.8 hours
	maxAgingMs    = 1e6 // ~17 minutes per tier promotion
	maxFloorMs    = 1e6

	// DefaultAgingMs is the per-tier aging interval when the config
	// leaves aging_ms at 0: a queued job gains one priority tier per
	// interval, which bounds every job's wait (see DESIGN §13).
	DefaultAgingMs = 100
)

// ClassQoS configures one traffic class: its admission bucket and the
// scheduling attributes every job it submits carries.
type ClassQoS struct {
	// Name keys the class; requests select it via X-Sort-Class. Same
	// syntax rule as loadgen class names: <= 64 chars, no whitespace
	// or quotes.
	Name string `json:"name"`
	// Rate is the admission refill in requests/second.
	Rate float64 `json:"rate"`
	// Burst is the bucket depth in requests, >= 1.
	Burst int `json:"burst"`
	// Priority is the strict-priority tier, 0 (most urgent) .. 16.
	Priority int `json:"priority"`
	// DeadlineMs, when > 0, caps each request's queue+service time;
	// the scheduler sheds a queued job once the deadline cannot be
	// met. 0 means no deadline.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
}

// Config is the QoS plane's whole configuration.
type Config struct {
	// Classes lists every known traffic class. Requests naming any
	// other class are rejected (400), not folded into an overflow
	// bucket — admission control over an open class namespace would
	// be no admission control at all.
	Classes []ClassQoS `json:"classes"`
	// AgingMs is the starvation-prevention interval: a queued job's
	// effective priority improves one tier per AgingMs waited.
	// 0 means DefaultAgingMs.
	AgingMs float64 `json:"aging_ms,omitempty"`
	// FloorMs is the minimum feasible service floor for deadline
	// shedding: a queued job is shed once deadline − now < FloorMs.
	// 0 (the default) sheds only already-expired deadlines — the
	// conservative rule with provably no false positives.
	FloorMs float64 `json:"floor_ms,omitempty"`
}

// ConfigError is the typed error every config parsing or validation
// failure returns, naming the first offending field.
type ConfigError struct {
	Field string
	Msg   string
}

func (e *ConfigError) Error() string {
	if e.Field == "" {
		return "qos config: " + e.Msg
	}
	return "qos config: " + e.Field + ": " + e.Msg
}

func cfgErrf(field, format string, args ...any) *ConfigError {
	return &ConfigError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// ParseConfig decodes and validates a JSON config. Every failure mode
// — malformed JSON included — returns a *ConfigError; it never panics.
func ParseConfig(b []byte) (*Config, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return nil, cfgErrf("", "invalid JSON: %v", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || trailing != nil {
		return nil, cfgErrf("", "trailing data after config object")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks every limit and cross-field rule, returning a
// *ConfigError naming the first offending field.
func (c *Config) Validate() error {
	if len(c.Classes) == 0 {
		return cfgErrf("classes", "at least one class is required")
	}
	if len(c.Classes) > maxClasses {
		return cfgErrf("classes", "%d classes exceeds the %d limit", len(c.Classes), maxClasses)
	}
	seen := make(map[string]bool, len(c.Classes))
	for i := range c.Classes {
		if err := c.Classes[i].validate(fmt.Sprintf("classes[%d]", i)); err != nil {
			return err
		}
		if seen[c.Classes[i].Name] {
			return cfgErrf(fmt.Sprintf("classes[%d].name", i), "duplicate class name %q", c.Classes[i].Name)
		}
		seen[c.Classes[i].Name] = true
	}
	if !finite(c.AgingMs) || c.AgingMs < 0 {
		return cfgErrf("aging_ms", "must be finite and >= 0, got %v", c.AgingMs)
	}
	if c.AgingMs > maxAgingMs {
		return cfgErrf("aging_ms", "%v exceeds the %v ms limit", c.AgingMs, float64(maxAgingMs))
	}
	if !finite(c.FloorMs) || c.FloorMs < 0 {
		return cfgErrf("floor_ms", "must be finite and >= 0, got %v", c.FloorMs)
	}
	if c.FloorMs > maxFloorMs {
		return cfgErrf("floor_ms", "%v exceeds the %v ms limit", c.FloorMs, float64(maxFloorMs))
	}
	return nil
}

func (q *ClassQoS) validate(field string) error {
	if q.Name == "" {
		return cfgErrf(field+".name", "must be non-empty")
	}
	if !ValidClassName(q.Name) {
		return cfgErrf(field+".name", "must be <= 64 chars with no whitespace or quotes")
	}
	if !finite(q.Rate) || q.Rate <= 0 {
		return cfgErrf(field+".rate", "must be finite and > 0, got %v", q.Rate)
	}
	if q.Rate > maxRate {
		return cfgErrf(field+".rate", "%v exceeds the %v/s limit", q.Rate, float64(maxRate))
	}
	if q.Burst < 1 {
		return cfgErrf(field+".burst", "must be >= 1, got %d", q.Burst)
	}
	if q.Burst > maxBurst {
		return cfgErrf(field+".burst", "%d exceeds the %v limit", q.Burst, float64(maxBurst))
	}
	if q.Priority < 0 || q.Priority > maxPriority {
		return cfgErrf(field+".priority", "must be in [0, %d], got %d", maxPriority, q.Priority)
	}
	if !finite(q.DeadlineMs) || q.DeadlineMs < 0 {
		return cfgErrf(field+".deadline_ms", "must be finite and >= 0, got %v", q.DeadlineMs)
	}
	if q.DeadlineMs > maxDeadlineMs {
		return cfgErrf(field+".deadline_ms", "%v exceeds the %v ms limit", q.DeadlineMs, float64(maxDeadlineMs))
	}
	return nil
}

// ValidClassName reports whether name satisfies the class-name syntax
// shared with loadgen specs: non-empty, <= 64 chars, no whitespace or
// quotes. The server rejects any X-Sort-Class value outside it with a
// 400 before the name reaches a map key or a metrics label.
func ValidClassName(name string) bool {
	return name != "" && len(name) <= 64 && !strings.ContainsAny(name, " \t\n\r\"")
}

// Class returns the config for name, or nil when unknown.
func (c *Config) Class(name string) *ClassQoS {
	for i := range c.Classes {
		if c.Classes[i].Name == name {
			return &c.Classes[i]
		}
	}
	return nil
}

// agingNs is the effective aging interval in nanoseconds.
func (c *Config) agingNs() int64 {
	ms := c.AgingMs
	if ms == 0 {
		ms = DefaultAgingMs
	}
	return int64(ms * float64(time.Millisecond))
}

// floorNs is the effective shed floor in nanoseconds.
func (c *Config) floorNs() int64 {
	return int64(c.FloorMs * float64(time.Millisecond))
}

func finite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
