package qos

import "time"

// Plane is the admission side of the QoS plane: one token bucket per
// configured class, sharing a single monotonic clock. The serving
// layer asks Admit once per request, before any memory is committed.
type Plane struct {
	cfg     *Config
	start   time.Time
	classes map[string]*planeClass
}

type planeClass struct {
	cfg    *ClassQoS
	bucket *Bucket
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Known is false when the class is not configured: reject the
	// request (400), don't count it against any bucket.
	Known bool
	// OK is true when a token was taken and the request may proceed.
	OK bool
	// RetryAfter, on a denied-but-known decision, is how long until
	// the class's bucket would admit this request absent competing
	// traffic — the Retry-After header, rounded up by the caller.
	RetryAfter time.Duration
	// Class is the admitted or denied class's config (nil when
	// !Known): the caller derives the job's priority and deadline
	// from it.
	Class *ClassQoS
}

// NewPlane builds the per-class buckets for a validated config.
func NewPlane(cfg *Config) *Plane {
	p := &Plane{
		cfg:     cfg,
		start:   time.Now(),
		classes: make(map[string]*planeClass, len(cfg.Classes)),
	}
	for i := range cfg.Classes {
		cc := &cfg.Classes[i]
		p.classes[cc.Name] = &planeClass{cfg: cc, bucket: NewBucket(cc.Rate, cc.Burst)}
	}
	return p
}

// Now is the plane's monotonic clock: nanoseconds since creation.
func (p *Plane) Now() int64 { return time.Since(p.start).Nanoseconds() }

// Admit runs the token-bucket admission check for class. Wait-free on
// the steady path: one bucket CAS, zero allocations.
func (p *Plane) Admit(class string) Decision {
	pc, ok := p.classes[class]
	if !ok {
		return Decision{}
	}
	admitted, retryNs := pc.bucket.Take(p.Now(), 1)
	d := Decision{Known: true, OK: admitted, Class: pc.cfg}
	if !admitted {
		d.RetryAfter = time.Duration(retryNs)
	}
	return d
}

// ClassSnapshot is one class's admission state for /metrics.
type ClassSnapshot struct {
	Rate     float64 `json:"rate"`
	Burst    int     `json:"burst"`
	Priority int     `json:"priority"`
	Deadline float64 `json:"deadline_ms,omitempty"`
	Tokens   int64   `json:"tokens"`
}

// Snapshot reports every class's configuration and current token
// count, keyed by class name.
func (p *Plane) Snapshot() map[string]ClassSnapshot {
	now := p.Now()
	out := make(map[string]ClassSnapshot, len(p.classes))
	for name, pc := range p.classes {
		out[name] = ClassSnapshot{
			Rate:     pc.cfg.Rate,
			Burst:    pc.cfg.Burst,
			Priority: pc.cfg.Priority,
			Deadline: pc.cfg.DeadlineMs,
			Tokens:   pc.bucket.Tokens(now),
		}
	}
	return out
}
