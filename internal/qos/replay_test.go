package qos

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wfsort/internal/loadgen"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens from current behavior")

// goldenSpec/goldenCfg produce a schedule that exercises every event
// kind: admits, bucket denials (tight lat bucket), deadline sheds
// (short bulk deadline under backlog), priority reordering, and a
// rejected unknown class.
func goldenSpec() *loadgen.Spec {
	return &loadgen.Spec{
		Seed:      7,
		HorizonMs: 120,
		Classes: []loadgen.ClassSpec{
			{Name: "lat", Arrival: loadgen.ArrivalSpec{Dist: "poisson", Rate: 300}, Size: loadgen.SizeSpec{Dist: "fixed", N: 128}},
			{Name: "bulk", Arrival: loadgen.ArrivalSpec{Dist: "det", Rate: 100}, Size: loadgen.SizeSpec{Dist: "uniform", Min: 512, Max: 2048}},
			{Name: "ghost", Arrival: loadgen.ArrivalSpec{Dist: "det", Rate: 25}, Size: loadgen.SizeSpec{Dist: "fixed", N: 64}},
		},
	}
}

func goldenCfg() *Config {
	return &Config{
		Classes: []ClassQoS{
			{Name: "lat", Rate: 200, Burst: 5, Priority: 0},
			{Name: "bulk", Rate: 150, Burst: 20, Priority: 3, DeadlineMs: 40},
		},
		AgingMs: 10,
	}
}

func goldenEvents(t *testing.T) []Event {
	t.Helper()
	trace, err := loadgen.BuildTrace(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	events, err := Replay(trace, goldenCfg(), int64(2*time.Millisecond), int64(4*time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestReplayDeterministic is the scheduling determinism certificate:
// two independent replays of one recorded trace — fresh buckets, fresh
// scheduler — produce byte-identical admission/shed/dispatch schedules.
func TestReplayDeterministic(t *testing.T) {
	a := FormatEvents(goldenEvents(t))
	b := FormatEvents(goldenEvents(t))
	if a != b {
		t.Fatal("two replays of the same trace diverged")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
}

// TestReplayGoldenFile pins the schedule bytes to a checked-in golden,
// extending the PR 6 trace goldens one layer up: not just the same
// arrivals, the same decisions about them.
func TestReplayGoldenFile(t *testing.T) {
	got := []byte(FormatEvents(goldenEvents(t)))
	path := filepath.Join("testdata", "replay_qos.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("schedule diverged from %s (%d vs %d bytes) — rerun with -update only if the scheduling change is intentional",
			path, len(got), len(want))
	}
}

// TestReplayEventMix asserts the golden workload actually exercises
// every decision kind, so the golden can't silently degenerate into an
// admit-and-dispatch-only transcript.
func TestReplayEventMix(t *testing.T) {
	kinds := map[string]int{}
	for _, e := range goldenEvents(t) {
		kinds[e.Kind]++
	}
	for _, kind := range []string{"admit", "deny", "dispatch", "shed", "reject"} {
		if kinds[kind] == 0 {
			t.Errorf("golden schedule has no %q events: %v", kind, kinds)
		}
	}
	// The ghost class is not configured: every one of its arrivals is a
	// reject, and none may leak into the queue.
	for _, e := range goldenEvents(t) {
		if e.Class == "ghost" && e.Kind != "reject" {
			t.Fatalf("unknown class produced a %s event", e.Kind)
		}
	}
}

// TestReplayLedger cross-checks conservation: every admitted request
// either dispatches or sheds, exactly once.
func TestReplayLedger(t *testing.T) {
	seen := map[int]string{}
	for _, e := range goldenEvents(t) {
		switch e.Kind {
		case "admit":
			if prev, dup := seen[e.Seq]; dup {
				t.Fatalf("seq %d admitted after %s", e.Seq, prev)
			}
			seen[e.Seq] = "admit"
		case "dispatch", "shed":
			if seen[e.Seq] != "admit" {
				t.Fatalf("seq %d %s without a pending admit (state %q)", e.Seq, e.Kind, seen[e.Seq])
			}
			seen[e.Seq] = e.Kind
		}
	}
	for seq, state := range seen {
		if state == "admit" {
			t.Fatalf("seq %d admitted but never dispatched or shed", seq)
		}
	}
}

func TestReplayRejectsBadConfig(t *testing.T) {
	trace, err := loadgen.BuildTrace(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(trace, &Config{}, 1, 0); err == nil {
		t.Fatal("invalid config accepted")
	}
}
