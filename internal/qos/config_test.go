package qos

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

const validConfig = `{
  "classes": [
    {"name": "lat", "rate": 200, "burst": 50, "priority": 0, "deadline_ms": 100},
    {"name": "bulk", "rate": 50, "burst": 10, "priority": 3}
  ],
  "aging_ms": 50
}`

func TestParseConfigValid(t *testing.T) {
	cfg, err := ParseConfig([]byte(validConfig))
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if len(cfg.Classes) != 2 {
		t.Fatalf("parsed %d classes, want 2", len(cfg.Classes))
	}
	if c := cfg.Class("lat"); c == nil || c.Priority != 0 || c.DeadlineMs != 100 {
		t.Fatalf("lat class = %+v", c)
	}
	if cfg.Class("nope") != nil {
		t.Fatal("unknown class lookup returned non-nil")
	}
	if got := cfg.agingNs(); got != int64(50*time.Millisecond) {
		t.Fatalf("agingNs = %d, want 50ms", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := &Config{Classes: []ClassQoS{{Name: "a", Rate: 1, Burst: 1}}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("minimal config rejected: %v", err)
	}
	if got := cfg.agingNs(); got != int64(DefaultAgingMs*time.Millisecond) {
		t.Fatalf("default agingNs = %d, want %dms", got, int64(DefaultAgingMs))
	}
	if got := cfg.floorNs(); got != 0 {
		t.Fatalf("default floorNs = %d, want 0", got)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := []struct {
		name  string
		json  string
		field string // required prefix of ConfigError.Field ("" = any)
	}{
		{"empty object", `{}`, "classes"},
		{"no classes", `{"classes": []}`, "classes"},
		{"bad json", `{"classes": [`, ""},
		{"trailing data", `{"classes":[{"name":"a","rate":1,"burst":1}]} {"x":1}`, ""},
		{"unknown field", `{"classes":[{"name":"a","rate":1,"burst":1}], "bogus": 1}`, ""},
		{"unknown class field", `{"classes":[{"name":"a","rate":1,"burst":1,"weight":2}]}`, ""},
		{"empty name", `{"classes":[{"name":"","rate":1,"burst":1}]}`, "classes[0].name"},
		{"long name", `{"classes":[{"name":"` + strings.Repeat("x", 65) + `","rate":1,"burst":1}]}`, "classes[0].name"},
		{"name with space", `{"classes":[{"name":"a b","rate":1,"burst":1}]}`, "classes[0].name"},
		{"duplicate name", `{"classes":[{"name":"a","rate":1,"burst":1},{"name":"a","rate":2,"burst":1}]}`, "classes[1].name"},
		{"zero rate", `{"classes":[{"name":"a","rate":0,"burst":1}]}`, "classes[0].rate"},
		{"negative rate", `{"classes":[{"name":"a","rate":-1,"burst":1}]}`, "classes[0].rate"},
		{"huge rate", `{"classes":[{"name":"a","rate":1e12,"burst":1}]}`, "classes[0].rate"},
		{"zero burst", `{"classes":[{"name":"a","rate":1,"burst":0}]}`, "classes[0].burst"},
		{"huge burst", `{"classes":[{"name":"a","rate":1,"burst":10000000}]}`, "classes[0].burst"},
		{"negative priority", `{"classes":[{"name":"a","rate":1,"burst":1,"priority":-1}]}`, "classes[0].priority"},
		{"huge priority", `{"classes":[{"name":"a","rate":1,"burst":1,"priority":17}]}`, "classes[0].priority"},
		{"negative deadline", `{"classes":[{"name":"a","rate":1,"burst":1,"deadline_ms":-5}]}`, "classes[0].deadline_ms"},
		{"huge deadline", `{"classes":[{"name":"a","rate":1,"burst":1,"deadline_ms":1e9}]}`, "classes[0].deadline_ms"},
		{"negative aging", `{"classes":[{"name":"a","rate":1,"burst":1}], "aging_ms": -1}`, "aging_ms"},
		{"huge aging", `{"classes":[{"name":"a","rate":1,"burst":1}], "aging_ms": 1e9}`, "aging_ms"},
		{"negative floor", `{"classes":[{"name":"a","rate":1,"burst":1}], "floor_ms": -1}`, "floor_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseConfig([]byte(tc.json))
			if err == nil {
				t.Fatal("accepted")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T, want *ConfigError: %v", err, err)
			}
			if tc.field != "" && !strings.HasPrefix(ce.Field, tc.field) {
				t.Fatalf("error names field %q, want prefix %q (%v)", ce.Field, tc.field, ce)
			}
		})
	}
}

func TestValidClassName(t *testing.T) {
	for name, want := range map[string]bool{
		"lat":                   true,
		"bulk-v2":               true,
		strings.Repeat("x", 64): true,
		"":                      false,
		strings.Repeat("x", 65): false,
		"a b":                   false,
		"a\tb":                  false,
		"a\nb":                  false,
		`a"b`:                   false,
	} {
		if got := ValidClassName(name); got != want {
			t.Errorf("ValidClassName(%q) = %v, want %v", name, got, want)
		}
	}
}

// FuzzQoSConfig mirrors FuzzWorkloadSpec: ParseConfig must never
// panic, every rejection must be a typed *ConfigError, and every
// accepted config must survive a marshal/re-parse round trip.
func FuzzQoSConfig(f *testing.F) {
	f.Add([]byte(validConfig))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"classes":[{"name":"a","rate":1,"burst":1}]}`))
	f.Add([]byte(`{"classes":[{"name":"a","rate":1e308,"burst":99}]}`))
	f.Add([]byte(`{"classes":[{"name":"a","rate":1,"burst":1,"priority":16,"deadline_ms":1}],"aging_ms":0.5,"floor_ms":2}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`nul`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection is %T, want *ConfigError: %v", err, err)
			}
			return
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		if _, err := ParseConfig(out); err != nil {
			t.Fatalf("accepted config does not re-parse: %v\n%s", err, out)
		}
	})
}
