package qos

import (
	"math"
	"sync"
	"testing"
)

func TestBucketStartsFull(t *testing.T) {
	b := NewBucket(100, 5) // 10ms/token
	for i := 0; i < 5; i++ {
		if ok, _ := b.Take(0, 1); !ok {
			t.Fatalf("take %d of burst 5 denied", i)
		}
	}
	ok, retry := b.Take(0, 1)
	if ok {
		t.Fatal("6th take admitted past burst 5")
	}
	if want := int64(10_000_000); retry != want {
		t.Fatalf("retry hint = %d ns, want %d (one token period)", retry, want)
	}
}

// TestBucketRetryHintIsExact drains the bucket, then verifies the
// denied Take's hint is tight: one nanosecond early still denies, the
// hinted instant admits.
func TestBucketRetryHintIsExact(t *testing.T) {
	b := NewBucket(1000, 3) // 1ms/token
	now := int64(5_000_000)
	for i := 0; i < 3; i++ {
		if ok, _ := b.Take(now, 1); !ok {
			t.Fatalf("burst take %d denied", i)
		}
	}
	ok, retry := b.Take(now, 1)
	if ok || retry <= 0 {
		t.Fatalf("expected denial with positive hint, got ok=%v retry=%d", ok, retry)
	}
	if ok, _ := b.Take(now+retry-1, 1); ok {
		t.Fatal("admitted one ns before the hinted instant")
	}
	if ok, _ := b.Take(now+retry, 1); !ok {
		t.Fatal("denied at the hinted instant")
	}
}

func TestBucketBurstZeroDeniesAll(t *testing.T) {
	b := NewBucket(1000, 0)
	for _, now := range []int64{0, 1, 1e9, 1e15} {
		if ok, retry := b.Take(now, 1); ok || retry <= 0 {
			t.Fatalf("burst=0 at now=%d: ok=%v retry=%d, want denial with positive hint", now, ok, retry)
		}
	}
}

func TestBucketBadRateDeniesAll(t *testing.T) {
	for _, rate := range []float64{0, -5, math.NaN(), math.Inf(-1)} {
		b := NewBucket(rate, 5)
		if ok, _ := b.Take(0, 1); ok {
			t.Fatalf("rate=%v admitted", rate)
		}
		if ok, _ := b.Take(1e18, 1); ok {
			t.Fatalf("rate=%v admitted after an epoch of refill", rate)
		}
	}
}

func TestBucketNTokens(t *testing.T) {
	b := NewBucket(1000, 10)
	if ok, _ := b.Take(0, 7); !ok {
		t.Fatal("n=7 of burst 10 denied")
	}
	if ok, _ := b.Take(0, 4); ok {
		t.Fatal("n=4 with 3 left admitted")
	}
	if ok, _ := b.Take(0, 3); !ok {
		t.Fatal("n=3 with 3 left denied")
	}
	if ok, _ := b.Take(0, 0); !ok {
		t.Fatal("n=0 must be a free admit")
	}
}

// TestBucketOverflowNearMax parks the virtual-time word near the int64
// edge and verifies arithmetic saturates instead of wrapping: the
// bucket degrades to denial with a sane positive hint, never to a
// sign-flipped free-for-all.
func TestBucketOverflowNearMax(t *testing.T) {
	b := NewBucket(1, 1) // 1s/token
	b.vt.v.Store(math.MaxInt64 - 10)
	ok, retry := b.Take(1e9, 1)
	if ok {
		t.Fatal("admitted with vt at the int64 edge")
	}
	if retry <= 0 {
		t.Fatalf("retry hint wrapped: %d", retry)
	}
	if vt := b.vt.v.Load(); vt != math.MaxInt64-10 {
		t.Fatalf("denied Take moved vt: %d", vt)
	}

	// A huge n saturates need instead of wrapping it into a free admit.
	b2 := NewBucket(1e-3, 1000) // 1000s/token
	ok, retry = b2.Take(0, math.MaxInt32)
	if ok || retry <= 0 {
		t.Fatalf("huge n: ok=%v retry=%d, want saturated denial", ok, retry)
	}
}

// TestBucketClockMonotonicity feeds a stalled and then a regressing
// clock: a frozen now admits exactly the burst, and a backwards step
// never panics, never frees extra budget, and keeps hints positive.
func TestBucketClockMonotonicity(t *testing.T) {
	b := NewBucket(10, 4) // 100ms/token
	now := int64(1e9)
	admits := 0
	for i := 0; i < 20; i++ {
		if ok, _ := b.Take(now, 1); ok {
			admits++
		}
	}
	if admits != 4 {
		t.Fatalf("frozen clock admitted %d, want exactly burst 4", admits)
	}
	for _, back := range []int64{now - 1, now / 2, 0} {
		if ok, retry := b.Take(back, 1); ok || retry <= 0 {
			t.Fatalf("regressed clock to %d: ok=%v retry=%d", back, ok, retry)
		}
	}
	// The clock recovering still refills at the configured rate.
	if ok, _ := b.Take(now+100_000_000, 1); !ok {
		t.Fatal("denied after one full token period")
	}
}

func TestBucketSteadyRate(t *testing.T) {
	b := NewBucket(1e6, 1) // 1µs/token
	for k := int64(0); k < 1000; k++ {
		if ok, _ := b.Take(k*1000, 1); !ok {
			t.Fatalf("on-rate take %d denied", k)
		}
	}
	if ok, _ := b.Take(999*1000+500, 1); ok {
		t.Fatal("half-period take admitted: bucket is over-refilling")
	}
}

// TestBucketConcurrentTake hammers one bucket from many goroutines at
// a frozen instant: exactly burst tokens may be admitted in total, no
// matter the interleaving. Run under -race this is also the data-race
// certificate for the single-word CAS design.
func TestBucketConcurrentTake(t *testing.T) {
	const (
		workers = 8
		perG    = 500
		burst   = 100
	)
	b := NewBucket(1000, burst)
	var wg sync.WaitGroup
	admitted := make([]int, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if ok, _ := b.Take(0, 1); ok {
					admitted[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	if total != burst {
		t.Fatalf("concurrent takes admitted %d, want exactly burst %d", total, burst)
	}
}

func TestBucketTokens(t *testing.T) {
	b := NewBucket(1000, 10)
	if got := b.Tokens(0); got != 10 {
		t.Fatalf("fresh bucket reports %d tokens, want 10", got)
	}
	b.Take(0, 4)
	if got := b.Tokens(0); got != 6 {
		t.Fatalf("after taking 4: %d tokens, want 6", got)
	}
	if got := b.Tokens(2_000_000); got != 8 {
		t.Fatalf("after 2ms refill: %d tokens, want 8", got)
	}
	if got := b.Tokens(1e12); got != 10 {
		t.Fatalf("long idle: %d tokens, want burst 10", got)
	}
}
