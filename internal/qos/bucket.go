// Package qos is the serving stack's quality-of-service plane:
// token-bucket admission control per traffic class, a priority/
// deadline-aware queue policy for the native Pipeline, and a
// deterministic replay simulator that certifies scheduling decisions
// byte-for-byte.
//
// Everything in this package computes on int64 nanoseconds from a
// caller-supplied monotonic clock. No floats touch a decision after
// construction, so identical inputs produce identical admit/shed/
// dispatch sequences on every platform — the property the golden
// replay tests pin down.
package qos

import (
	"math"
	"sync/atomic"
)

// paddedAtomicInt64 keeps each bucket's state word on its own cache
// line so per-class buckets in one Plane don't false-share.
type paddedAtomicInt64 struct {
	v atomic.Int64
	_ [7]int64
}

// Bucket is a GCRA token bucket: one atomic int64 of state, zero
// allocations per Take, safe for concurrent use. The word is the
// bucket's virtual time vt — the instant by which all admitted work is
// "paid for". A request needs n·nsPerTok nanoseconds of budget;
// capacity is burst·nsPerTok nanoseconds (the bucket starts full).
//
// Take admits iff max(vt, now−burstNs) + need ≤ now; on admission vt
// advances by need from that floor, so an idle bucket refills toward
// full but never beyond. With burst = 0 the bucket admits nothing —
// a deliberate deny-all, not an error.
type Bucket struct {
	nsPerTok int64
	burstNs  int64
	vt       paddedAtomicInt64
}

// NewBucket returns a bucket refilling at rate tokens/second holding
// at most burst tokens, initially full. rate is clamped to (0, 1e9]
// tokens/second — finer than 1 ns/token is not representable — and a
// non-positive or NaN rate denies everything, like burst = 0.
func NewBucket(rate float64, burst int) *Bucket {
	b := &Bucket{}
	if !(rate > 0) { // NaN-safe
		b.nsPerTok = math.MaxInt64
		burst = 0 // a token would never finish refilling: deny-all
	} else if rate >= 1e9 {
		b.nsPerTok = 1
	} else {
		b.nsPerTok = int64(1e9/rate + 0.5)
		if b.nsPerTok < 1 {
			b.nsPerTok = 1
		}
	}
	if burst < 0 {
		burst = 0
	}
	b.burstNs = satMul(int64(burst), b.nsPerTok)
	b.vt.v.Store(satNeg(b.burstNs))
	return b
}

// Take attempts to remove n tokens at monotonic instant now (ns).
// It returns ok = true on admission. On denial, retryNs is how long
// after now the same Take would succeed — the Retry-After hint —
// assuming no competing traffic; it is always > 0.
//
// now must come from a monotonic clock. A stalled or repeated now is
// safe (vt only moves forward); a regressing now merely under-refills.
func (b *Bucket) Take(now int64, n int) (ok bool, retryNs int64) {
	if n <= 0 {
		return true, 0
	}
	need := satMul(int64(n), b.nsPerTok)
	for {
		vt := b.vt.v.Load()
		eff := vt
		if m := satSub(now, b.burstNs); eff < m {
			eff = m
		}
		avail := satSub(now, eff)
		if avail < need {
			return false, satSub(need, avail)
		}
		if b.vt.v.CompareAndSwap(vt, satAdd(eff, need)) {
			return true, 0
		}
	}
}

// Tokens reports the whole tokens available at instant now — a
// metrics convenience, not a reservation.
func (b *Bucket) Tokens(now int64) int64 {
	vt := b.vt.v.Load()
	eff := vt
	if m := satSub(now, b.burstNs); eff < m {
		eff = m
	}
	avail := satSub(now, eff)
	if avail <= 0 {
		return 0
	}
	return avail / b.nsPerTok
}

// satAdd, satSub, satMul and satNeg are int64 arithmetic that pin at
// the extremes instead of wrapping: a bucket configured near the
// representable edge degrades to deny/allow-forever rather than
// flipping sign.
func satAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

func satSub(a, b int64) int64 {
	if b == math.MinInt64 {
		if a >= 0 {
			return math.MaxInt64
		}
		return satAdd(satAdd(a, math.MaxInt64), 1)
	}
	return satAdd(a, -b)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

func satNeg(a int64) int64 {
	if a == math.MinInt64 {
		return math.MaxInt64
	}
	return -a
}
