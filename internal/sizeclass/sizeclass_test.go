package sizeclass

import "testing"

// TestClassBoundaries locks the size-class ladder: the pooled layer's
// contexts are keyed by these capacities, so silently shifting a
// boundary would invalidate every checked-in serving baseline.
func TestClassBoundaries(t *testing.T) {
	classes := Classes()
	if classes[0] != MinClass {
		t.Fatalf("first class = %d, want MinClass %d", classes[0], MinClass)
	}
	if classes[len(classes)-1] != MaxClass {
		t.Fatalf("last class = %d, want MaxClass %d", classes[len(classes)-1], MaxClass)
	}
	for i := 1; i < len(classes); i++ {
		if classes[i] != 2*classes[i-1] {
			t.Fatalf("classes[%d] = %d, want double of %d", i, classes[i], classes[i-1])
		}
	}

	cases := []struct {
		n, capacity int
		ok          bool
	}{
		{0, MinClass, true},
		{1, MinClass, true},
		{MinClass - 1, MinClass, true},
		{MinClass, MinClass, true},
		{MinClass + 1, 2 * MinClass, true},
		{2*MinClass - 1, 2 * MinClass, true},
		{2 * MinClass, 2 * MinClass, true},
		{MaxClass - 1, MaxClass, true},
		{MaxClass, MaxClass, true},
		{MaxClass + 1, 0, false},
	}
	for _, c := range cases {
		capacity, ok := For(c.n)
		if capacity != c.capacity || ok != c.ok {
			t.Errorf("For(%d) = (%d, %v), want (%d, %v)", c.n, capacity, ok, c.capacity, c.ok)
		}
	}
}

// TestBatchBoundaries locks the work-claim granularity at its three
// regimes: clamped to 1 for small inputs, proportional in the middle,
// capped at 128 for large ones. Both the one-shot sort and the pooled
// contexts call this exact function, which is the point.
func TestBatchBoundaries(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{1, 1, 1},
		{3, 1, 1},         // n/(4w) < 1 clamps up
		{4, 1, 1},         // exactly 1
		{8, 1, 2},         // proportional
		{512, 1, 128},     // exactly at cap
		{513, 1, 128},     // capped
		{1 << 20, 8, 128}, // capped at scale
		{1024, 8, 32},     // proportional at P=8
		{4096, 64, 16},    // proportional at P=64
		{100, 64, 1},      // many workers, little work
	}
	for _, c := range cases {
		if got := Batch(c.n, c.workers); got != c.want {
			t.Errorf("Batch(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestLimitAndCheckLimit locks the one shared 413 rule: zero config
// means the surface default, and every path emits the same message.
func TestLimitAndCheckLimit(t *testing.T) {
	if got := Limit(0, DefaultMaxKeys); got != DefaultMaxKeys {
		t.Fatalf("Limit(0) = %d", got)
	}
	if got := Limit(-5, DefaultCoordinatorMaxKeys); got != DefaultCoordinatorMaxKeys {
		t.Fatalf("Limit(-5) = %d", got)
	}
	if got := Limit(42, DefaultMaxKeys); got != 42 {
		t.Fatalf("Limit(42) = %d", got)
	}
	if DefaultCoordinatorMaxKeys <= DefaultMaxKeys {
		t.Fatal("coordinator default must exceed the backend default")
	}
	if ok, msg := CheckLimit(10, 10); !ok || msg != "" {
		t.Fatalf("CheckLimit(10,10) = %v %q", ok, msg)
	}
	ok, msg := CheckLimit(11, 10)
	if ok {
		t.Fatal("CheckLimit(11,10) accepted")
	}
	if msg != "n=11 exceeds the 10-key limit" {
		t.Fatalf("413 message drifted: %q", msg)
	}
}
