// Package sizeclass centralizes the sizing policy shared by the
// one-shot sort path (wfsort.Sort) and the pooled serving layer
// (internal/pool, wfsort.Sorter). Before this package existed the
// work-claim batch size lived in the root package and every consumer
// of "how big should the arena be" invented its own answer; pooling
// makes the sizing load-bearing (a pooled context's capacity decides
// which requests it can serve), so there is exactly one copy of the
// rules and a unit test pins the class boundaries.
package sizeclass

import "fmt"

const (
	// MinClass is the smallest pooled arena capacity. Below it the
	// fixed costs of a parallel sort dwarf the work, so tiny inputs
	// take the fresh (exact-size) path instead of occupying a pooled
	// context built for MinClass elements.
	MinClass = 256

	// MaxClass is the largest pooled arena capacity. Inputs above it
	// get an exact-size context that is built for the request and
	// released afterwards; retaining multi-gigabyte arenas on a free
	// list is how serving processes quietly eat their hosts.
	MaxClass = 1 << 20

	// FreshCutoff is the input size below which the pooled path
	// delegates to the one-shot sort: the padding overhead of rounding
	// a tiny input up to MinClass exceeds the cost of just building a
	// tiny arena.
	FreshCutoff = 64

	// DefaultMaxKeys is the default request size limit for a single
	// sort backend (internal/server): one MaxClass arena. Requests
	// above a surface's limit are rejected with 413 via CheckLimit, so
	// every serving path — JSON, binary wire, /sort and /shard — shares
	// one sizing rule instead of per-handler constants.
	DefaultMaxKeys = MaxClass

	// DefaultCoordinatorMaxKeys is the default request size limit for
	// the cluster coordinator (internal/cluster): four backend arenas.
	// The coordinator exists to take sorts bigger than one backend's
	// limit, and expresses that headroom in the same MaxClass unit.
	DefaultCoordinatorMaxKeys = 4 * MaxClass
)

// Classes returns every pooled capacity, ascending: powers of two from
// MinClass to MaxClass. Power-of-two growth bounds the padding a
// request pays at under 2x its own size while keeping the class count
// (and therefore idle-arena memory) logarithmic.
func Classes() []int {
	var out []int
	for c := MinClass; c <= MaxClass; c *= 2 {
		out = append(out, c)
	}
	return out
}

// For returns the smallest pooled capacity that fits n, with ok=false
// when n exceeds MaxClass (the caller should build an exact-size
// context and not pool it).
func For(n int) (capacity int, ok bool) {
	if n > MaxClass {
		return 0, false
	}
	c := MinClass
	for c < n {
		c *= 2
	}
	return c, true
}

// Limit resolves a configured request cap: the configured value when
// positive, the surface's fallback otherwise. Serving configs call it
// from fill() so "zero means the shared default" is one rule, not one
// per handler.
func Limit(configured, fallback int) int {
	if configured > 0 {
		return configured
	}
	return fallback
}

// CheckLimit reports whether a request of n keys fits the limit, and
// when it does not, the canonical 413 message every surface returns
// (and tests match against). internal/wire's ErrTooLarge detail uses
// the same wording, so a binary rejection reads identically.
func CheckLimit(n, limit int) (ok bool, msg string) {
	if n <= limit {
		return true, ""
	}
	return false, fmt.Sprintf("n=%d exceeds the %d-key limit", n, limit)
}

// Batch picks the work-claim granularity for the contention-sharded
// fast path: large enough to amortize next_element traffic, small
// enough that every worker still sees at least a few blocks to claim.
// Wait-freedom never depends on the choice — a block is just a bigger
// idempotent job.
func Batch(n, workers int) int {
	b := n / (4 * workers)
	if b > 128 {
		b = 128
	}
	if b < 1 {
		b = 1
	}
	return b
}
