package pram

import (
	"testing"
	"testing/quick"

	"wfsort/internal/model"
)

// TestLinearizability replays every executed operation, in the exact
// order the machine applied them, against a sequential model of memory,
// and checks each observed result matches. This validates the
// simulator's core semantic contract — operations within a step apply
// sequentially in scheduler order (arbitrary CRCW with linearizable
// CAS) — over random programs and random schedules.
func TestLinearizability(t *testing.T) {
	type result struct {
		op  ExecutedOp
		seq int
	}
	run := func(seed uint64, p, words, opsPer int, sched Scheduler) bool {
		var history []ExecutedOp
		m := New(Config{
			P: p, Mem: words, Seed: seed, Sched: sched,
			Observer: func(_ int64, ops []ExecutedOp) {
				history = append(history, ops...)
			},
		})
		_, err := m.Run(func(pr model.Proc) {
			rng := pr.Rand()
			for i := 0; i < opsPer; i++ {
				a := rng.Intn(words)
				switch rng.Intn(3) {
				case 0:
					pr.Read(a)
				case 1:
					pr.Write(a, model.Word(rng.Intn(100)))
				default:
					pr.CAS(a, model.Word(rng.Intn(4)), model.Word(rng.Intn(100)))
				}
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		// Sequential replay.
		mem := make([]model.Word, words)
		for i, op := range history {
			switch op.Kind {
			case OpRead:
				if mem[op.Addr] != op.Value {
					t.Fatalf("history[%d]: read(%d) observed %d, replay has %d",
						i, op.Addr, op.Value, mem[op.Addr])
				}
			case OpWrite:
				mem[op.Addr] = op.Value
			case OpCAS:
				// ExecutedOp records the post-op value and success.
				if op.OK {
					mem[op.Addr] = op.Value
				}
				if mem[op.Addr] != op.Value {
					t.Fatalf("history[%d]: cas(%d) observed post-value %d, replay has %d",
						i, op.Addr, op.Value, mem[op.Addr])
				}
			}
		}
		// Final memory must match the replay.
		for a := 0; a < words; a++ {
			if m.Memory()[a] != mem[a] {
				t.Fatalf("final mem[%d] = %d, replay has %d", a, m.Memory()[a], mem[a])
			}
		}
		return true
	}

	scheds := []func() Scheduler{
		func() Scheduler { return Synchronous() },
		func() Scheduler { return PriorityOrder() },
		func() Scheduler { return RandomSubset(0.4) },
		func() Scheduler { return RoundRobin(3) },
		func() Scheduler { return NewContentionAdversary() },
	}
	f := func(seed uint64, schedPick uint8) bool {
		return run(seed, 8, 4, 30, scheds[int(schedPick)%len(scheds)]())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	_ = result{}
}

// TestCASPostValueSemantics pins down what ExecutedOp records for CAS:
// the post-operation value of the word and the success flag.
func TestCASPostValueSemantics(t *testing.T) {
	var history []ExecutedOp
	m := New(Config{
		P: 1, Mem: 1, Sched: PriorityOrder(),
		Observer: func(_ int64, ops []ExecutedOp) { history = append(history, ops...) },
	})
	_, err := m.Run(func(pr model.Proc) {
		if !pr.CAS(0, 0, 5) {
			t.Error("first CAS should succeed")
		}
		if pr.CAS(0, 0, 9) {
			t.Error("second CAS should fail")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 {
		t.Fatalf("history = %d ops", len(history))
	}
	if !history[0].OK || history[0].Value != 5 {
		t.Errorf("first CAS recorded %+v", history[0])
	}
	if history[1].OK || history[1].Value != 5 {
		t.Errorf("second CAS recorded %+v", history[1])
	}
}
