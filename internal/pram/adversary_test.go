package pram

import (
	"testing"

	"wfsort/internal/model"
)

// TestQRQWTimeEqualsStepsWithoutCollisions checks the QRQW clock
// degenerates to the step count when all accesses are disjoint.
func TestQRQWTimeEqualsStepsWithoutCollisions(t *testing.T) {
	const p, rounds = 8, 4
	m := New(Config{P: p, Mem: p})
	met, err := m.Run(func(pr model.Proc) {
		for r := 0; r < rounds; r++ {
			pr.Write(pr.ID(), 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.QRQWTime != met.Steps {
		t.Errorf("QRQW time %d != steps %d despite disjoint accesses", met.QRQWTime, met.Steps)
	}
}

// TestQRQWTimeChargesQueues checks a fully colliding step costs P.
func TestQRQWTimeChargesQueues(t *testing.T) {
	const p = 16
	m := New(Config{P: p, Mem: 1})
	met, err := m.Run(func(pr model.Proc) {
		pr.Read(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Steps != 1 || met.QRQWTime != p {
		t.Errorf("steps=%d qrqw=%d, want 1 and %d", met.Steps, met.QRQWTime, p)
	}
}

// TestContentionAdversaryForcesCollisions runs a program where each
// processor writes its own cell and then a shared cell; the adversary
// must align the shared-cell writes into one step of contention P.
func TestContentionAdversaryForcesCollisions(t *testing.T) {
	const p = 16
	m := New(Config{P: p, Mem: p + 1, Sched: NewContentionAdversary()})
	met, err := m.Run(func(pr model.Proc) {
		pr.Write(pr.ID(), 1) // private
		pr.Write(p, 1)       // shared hot word
		pr.Write(pr.ID(), 2) // private again
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.MaxContention != p {
		t.Errorf("adversary achieved contention %d, want %d", met.MaxContention, p)
	}
	// All work must still complete: wait-freedom is about progress, and
	// the adversary always releases someone.
	for i := 0; i < p; i++ {
		if m.Memory()[i] != 2 {
			t.Errorf("processor %d did not finish", i)
		}
	}
}

// TestContentionAdversaryNeverStalls runs a collision-free program: the
// adversary must release processors anyway.
func TestContentionAdversaryNeverStalls(t *testing.T) {
	const p = 8
	m := New(Config{P: p, Mem: p, Sched: NewContentionAdversary(), MaxSteps: 100000})
	_, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 10; i++ {
			pr.Write(pr.ID(), model.Word(i))
			pr.Idle()
		}
	})
	if err != nil {
		t.Fatalf("collision-free program did not finish: %v", err)
	}
}

// TestHoldAddressAccumulatesAndDetonates runs a program where every
// processor does private work of different lengths before touching a
// shared word; the adversary must hold the early arrivals until ALL
// processors pend on the shared word, yielding contention exactly P.
func TestHoldAddressAccumulatesAndDetonates(t *testing.T) {
	const p = 32
	const shared = p
	m := New(Config{P: p, Mem: p + 1, Sched: HoldAddress(shared)})
	met, err := m.Run(func(pr model.Proc) {
		// Staggered private work: processors arrive at the shared word
		// at very different times.
		for i := 0; i <= pr.ID(); i++ {
			pr.Write(pr.ID(), model.Word(i))
		}
		pr.Write(shared, 1)
		pr.Write(pr.ID(), 99)
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.MaxContention != p {
		t.Errorf("targeted adversary achieved contention %d, want exactly %d", met.MaxContention, p)
	}
	for i := 0; i < p; i++ {
		if m.Memory()[i] != 99 {
			t.Errorf("processor %d did not finish", i)
		}
	}
}

// TestHoldAddressNoTouchStillTerminates: a program that never touches
// the held address must run unimpeded.
func TestHoldAddressNoTouchStillTerminates(t *testing.T) {
	m := New(Config{P: 4, Mem: 5, Sched: HoldAddress(4)})
	met, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 10; i++ {
			pr.Write(pr.ID(), model.Word(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Steps != 10 {
		t.Errorf("steps = %d, want 10 (no holding of unrelated ops)", met.Steps)
	}
}

// TestContentionAdversaryOnRandomizedProgram demonstrates the
// Dwork–Herlihy–Waarts theorem in miniature: even when processors pick
// random targets (low contention under a fair scheduler), the adversary
// groups same-target processors together and drives contention well
// above the oblivious level.
func TestContentionAdversaryOnRandomizedProgram(t *testing.T) {
	const p, words, roundsPer = 64, 8, 16
	prog := func(pr model.Proc) {
		for i := 0; i < roundsPer; i++ {
			pr.Write(pr.Rand().Intn(words), 1)
		}
	}
	fair := New(Config{P: p, Mem: words, Seed: 3})
	metFair, err := fair.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	adv := New(Config{P: p, Mem: words, Seed: 3, Sched: NewContentionAdversary()})
	metAdv, err := adv.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if metAdv.MaxContention <= metFair.MaxContention {
		t.Errorf("adversary contention %d not above fair %d", metAdv.MaxContention, metFair.MaxContention)
	}
}
