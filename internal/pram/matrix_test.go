package pram

import (
	"sort"
	"testing"

	"wfsort/internal/core"
	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

// TestSortScheduleMatrix runs the full Section 2 sort under every
// scheduler the simulator offers, across several seeds, and checks two
// properties per cell:
//
//   - correctness: the computed ranks equal the true stable ranking no
//     matter how adversarial the schedule is (wait-freedom means the
//     schedule can change costs, never results);
//   - determinism: re-running the same (scheduler, seed) cell from a
//     fresh scheduler instance reproduces the step count and operation
//     count exactly — the property the golden tests and EXPERIMENTS.md
//     tables rest on.
func TestSortScheduleMatrix(t *testing.T) {
	const (
		n = 96
		p = 16
	)
	schedulers := []struct {
		name string
		make func(seed uint64) Scheduler
	}{
		{"synchronous", func(uint64) Scheduler { return Synchronous() }},
		{"priority", func(uint64) Scheduler { return PriorityOrder() }},
		{"roundrobin1", func(uint64) Scheduler { return RoundRobin(1) }},
		{"roundrobin3", func(uint64) Scheduler { return RoundRobin(3) }},
		{"randomsubset", func(uint64) Scheduler { return RandomSubset(0.5) }},
		{"contention", func(uint64) Scheduler { return NewContentionAdversary() }},
		{"crashes", func(seed uint64) Scheduler {
			// Crash a third of the processors mid-run. Processor 0 is
			// kept alive as in the E10 experiment so at least one
			// worker always survives to finish the sort.
			crashes := RandomCrashes(p, 0.33, 600, seed)
			kept := crashes[:0]
			for _, c := range crashes {
				if c.PID != 0 {
					kept = append(kept, c)
				}
			}
			return WithCrashes(Synchronous(), kept)
		}},
	}
	for _, alloc := range []core.Alloc{core.AllocWAT, core.AllocRandomized} {
		for _, sc := range schedulers {
			for seed := uint64(1); seed <= 3; seed++ {
				name := allocName(alloc) + "/" + sc.name + "/seed" + string(rune('0'+seed))
				t.Run(name, func(t *testing.T) {
					keys := matrixKeys(n, seed)
					want := trueRanks(keys)
					first := runMatrixCell(t, alloc, sc.make(seed), keys, p, seed)
					second := runMatrixCell(t, alloc, sc.make(seed), keys, p, seed)
					for i := range want {
						if first.ranks[i] != want[i] {
							t.Fatalf("element %d: rank %d, want %d", i+1, first.ranks[i], want[i])
						}
					}
					if first.steps != second.steps || first.ops != second.ops {
						t.Fatalf("nondeterministic cell: run1 steps=%d ops=%d, run2 steps=%d ops=%d",
							first.steps, first.ops, second.steps, second.ops)
					}
				})
			}
		}
	}
}

func allocName(a core.Alloc) string {
	if a == core.AllocWAT {
		return "det"
	}
	return "rand"
}

func matrixKeys(n int, seed uint64) []int {
	rng := xrand.New(seed * 1021)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(n / 3) // duplicates exercise the stable tie-break
	}
	return keys
}

// trueRanks computes each element's expected 1-based rank under the
// sort's (key, index) ordering.
func trueRanks(keys []int) []int {
	ids := make([]int, len(keys))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool { return keys[ids[a]] < keys[ids[b]] })
	ranks := make([]int, len(keys))
	for pos, i := range ids {
		ranks[i] = pos + 1
	}
	return ranks
}

type matrixRun struct {
	ranks []int
	steps int64
	ops   int64
}

func runMatrixCell(t *testing.T, alloc core.Alloc, sched Scheduler, keys []int, p int, seed uint64) matrixRun {
	t.Helper()
	n := len(keys)
	less := func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
	var a model.Arena
	s := core.NewSorter(&a, n, alloc)
	m := New(Config{P: p, Mem: a.Size(), Seed: seed, Sched: sched, Less: less})
	s.Seed(m.Memory())
	met, err := m.Run(s.Program())
	if err != nil {
		t.Fatal(err)
	}
	return matrixRun{ranks: s.Places(m.Memory()), steps: met.Steps, ops: met.Ops}
}
