// Package pram implements a deterministic simulator for the machine
// model of the paper: a CRCW PRAM with compare-and-swap, explicit time
// steps, exact per-variable contention accounting, adversarial
// scheduling and crash (fail-stop) injection.
//
// # Execution model
//
// Every processor runs a model.Program on its own goroutine, but
// progress is centrally clocked: each shared-memory operation (Read,
// Write, CAS, Idle) blocks until the machine grants it a step. One
// machine step proceeds as follows:
//
//  1. Every live, unblocked processor has posted exactly one pending
//     operation (the machine waits for stragglers, so steps are true
//     barriers).
//  2. The Scheduler picks an ordered subset of the ready processors to
//     execute this step, and may crash others.
//  3. The chosen operations are applied to memory sequentially in the
//     scheduler's order, each observing the effects of earlier
//     operations within the step. This realizes arbitrary-CRCW write
//     semantics and gives CAS its natural one-winner-per-location
//     behaviour.
//  4. Contention is recorded: for every address touched this step, the
//     number of operations touching it. The run's MaxContention is the
//     paper's contention measure (§1.2).
//
// Crashed processors unwind via a model.Killed panic recovered at the
// Program boundary; wait-free algorithms must complete regardless, and
// non-wait-free baselines are caught by MaxSteps.
//
// Local computation between shared-memory operations is free, matching
// the PRAM convention of counting memory accesses as the unit of time.
package pram

import (
	"errors"
	"fmt"

	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

// Word aliases the shared-memory word type.
type Word = model.Word

// ErrMaxSteps is returned (wrapped) when a run exceeds Config.MaxSteps.
// Non-wait-free algorithms hit it when processors crash; tests use it to
// demonstrate exactly that.
var ErrMaxSteps = errors.New("pram: exceeded MaxSteps without terminating")

// ErrStalled is returned when the scheduler refuses to run or kill any
// ready processor, which would freeze the machine forever.
var ErrStalled = errors.New("pram: scheduler selected no processors")

// DefaultMaxSteps bounds runs that do not set Config.MaxSteps.
const DefaultMaxSteps = 1 << 26

// Config describes a machine.
type Config struct {
	// P is the number of processors (>= 1).
	P int
	// Mem is the shared-memory size in words (model.Arena.Size()).
	Mem int
	// Seed determines every random choice: per-processor RNG streams
	// and any randomness inside the scheduler.
	Seed uint64
	// Sched decides which processors advance each step. nil means
	// Synchronous(): the paper's faultless "normal execution".
	Sched Scheduler
	// Less is the input order consulted by Proc.Less. nil means ordering
	// element indices by index value (useful for structural tests).
	Less func(i, j int) bool
	// MaxSteps aborts runaway executions; 0 means DefaultMaxSteps.
	MaxSteps int64
	// Observer, when non-nil, is invoked after every step with the
	// operations that executed. It must not retain the slice.
	Observer func(step int64, execed []ExecutedOp)
}

// ExecutedOp describes one operation applied during a step, for
// observers and trace tooling.
type ExecutedOp struct {
	PID   int
	Kind  OpKind
	Addr  int
	Value Word // value written (writes), value read (reads), or post-op value (CAS)
	OK    bool // CAS success
	Phase string
}

// OpKind enumerates shared-memory operation kinds.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota + 1
	OpWrite
	OpCAS
	OpIdle
)

// String returns the mnemonic for the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpIdle:
		return "idle"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

type op struct {
	kind OpKind
	addr int
	v    Word // write value / CAS new
	old  Word // CAS expected
}

type postMsg struct {
	pid      int
	exit     bool
	panicked any
}

type resumeMsg struct {
	val    Word
	ok     bool
	killed bool
}

type procState struct {
	ctx    *procCtx
	op     op
	phase  string
	resume chan resumeMsg
	ready  bool // has a posted, unexecuted op
	alive  bool
	ops    int64
}

// Machine is a configured simulator. Create with New, run one Program
// with Run, then inspect memory. A Machine is single-use.
type Machine struct {
	cfg    Config
	mem    []Word
	procs  []procState
	posted chan postMsg
	ran    bool

	metrics    model.Metrics
	opsPerProc []int64
	schedRng   *xrand.Rand

	// step scratch
	accesses map[int]int
	phases   map[string]bool
	execed   []ExecutedOp
	pending  []PendingOp
}

// New builds a machine. It panics on nonsensical configuration (these
// are programming errors, not runtime conditions).
func New(cfg Config) *Machine {
	if cfg.P < 1 {
		panic("pram: Config.P must be >= 1")
	}
	if cfg.Mem < 0 {
		panic("pram: negative Config.Mem")
	}
	if cfg.Sched == nil {
		cfg.Sched = Synchronous()
	}
	if cfg.Less == nil {
		cfg.Less = func(i, j int) bool { return i < j }
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = DefaultMaxSteps
	}
	return &Machine{
		cfg:      cfg,
		mem:      make([]Word, cfg.Mem),
		posted:   make(chan postMsg, cfg.P),
		accesses: make(map[int]int),
		phases:   make(map[string]bool),
	}
}

// Memory returns the shared memory. Callers may read it freely before
// Run (to set inputs) and after Run returns; accessing it during a run
// is a race by construction.
func (m *Machine) Memory() []Word { return m.mem }

// OpsPerProc returns, after Run, the number of operations each
// processor executed — the quantity bounded by the paper's wait-freedom
// lemmas.
func (m *Machine) OpsPerProc() []int64 { return m.opsPerProc }

// Run executes prog on all P processors until every processor returns
// (or is crashed), and returns the run's metrics. It is an error to call
// Run twice.
func (m *Machine) Run(prog model.Program) (*model.Metrics, error) {
	if m.ran {
		return nil, errors.New("pram: Machine.Run called twice")
	}
	m.ran = true

	root := xrand.New(m.cfg.Seed)
	m.schedRng = root.Fork(^uint64(0))
	m.metrics.P = m.cfg.P
	m.procs = make([]procState, m.cfg.P)
	for i := range m.procs {
		m.procs[i] = procState{
			ctx: &procCtx{
				m:   m,
				id:  i,
				rng: root.Fork(uint64(i)),
			},
			resume: make(chan resumeMsg, 1),
			alive:  true,
		}
		m.procs[i].ctx.state = &m.procs[i]
	}
	for i := range m.procs {
		go m.runProc(&m.procs[i], prog)
	}

	err := m.loop()

	m.opsPerProc = make([]int64, m.cfg.P)
	for i := range m.procs {
		m.opsPerProc[i] = m.procs[i].ops
	}
	return &m.metrics, err
}

func (m *Machine) runProc(ps *procState, prog model.Program) {
	defer func() {
		msg := postMsg{pid: ps.ctx.id, exit: true}
		if r := recover(); r != nil {
			if _, ok := r.(model.Killed); !ok {
				msg.panicked = r
			}
		}
		m.posted <- msg
	}()
	prog(ps.ctx)
}

// loop is the central clock. Invariant at the top of each iteration:
// every live processor either has a ready (posted, unexecuted) op or is
// about to post one; `waiting` counts the latter.
func (m *Machine) loop() error {
	live := m.cfg.P
	waiting := m.cfg.P // procs we expect a post (or exit) from
	var progErr error
	ready := make([]int, 0, m.cfg.P)

	for live > 0 {
		// Collect posts until every live processor is accounted for.
		for waiting > 0 {
			msg := <-m.posted
			waiting--
			if msg.exit {
				st := &m.procs[msg.pid]
				st.alive = false
				st.ready = false
				live--
				if msg.panicked != nil && progErr == nil {
					progErr = fmt.Errorf("pram: processor %d panicked: %v", msg.pid, msg.panicked)
				}
			} else {
				m.procs[msg.pid].ready = true
			}
		}
		if live == 0 {
			break
		}
		if progErr != nil {
			// Abort: crash everything still alive so goroutines unwind.
			for i := range m.procs {
				st := &m.procs[i]
				if st.alive && st.ready {
					st.ready = false
					waiting++
					st.resume <- resumeMsg{killed: true}
				}
			}
			for waiting > 0 {
				msg := <-m.posted
				waiting--
				if msg.exit {
					live--
				} else {
					// The processor posted another op before seeing the
					// kill; kill it again.
					waiting++
					m.procs[msg.pid].resume <- resumeMsg{killed: true}
				}
			}
			return progErr
		}

		ready = ready[:0]
		for i := range m.procs {
			if m.procs[i].alive && m.procs[i].ready {
				ready = append(ready, i)
			}
		}

		var dec Decision
		if oas, ok := m.cfg.Sched.(OpAwareScheduler); ok {
			m.pending = m.pending[:0]
			for _, pid := range ready {
				o := m.procs[pid].op
				m.pending = append(m.pending, PendingOp{PID: pid, Kind: o.kind, Addr: o.addr})
			}
			dec = oas.NextOps(m.metrics.Steps, m.pending, m.schedRng)
		} else {
			dec = m.cfg.Sched.Next(m.metrics.Steps, ready, m.schedRng)
		}
		if len(dec.Run) == 0 && len(dec.Kill) == 0 {
			m.abort(&waiting, &live)
			return fmt.Errorf("%w at step %d with %d ready", ErrStalled, m.metrics.Steps, len(ready))
		}

		for _, pid := range dec.Kill {
			st := &m.procs[pid]
			if !st.alive || !st.ready {
				continue
			}
			st.ready = false
			st.resume <- resumeMsg{killed: true}
			waiting++
			m.metrics.Killed++
		}

		executed := m.execStep(dec.Run)
		waiting += executed
		if executed > 0 {
			m.metrics.Steps++
			if m.metrics.Steps > m.cfg.MaxSteps {
				m.abort(&waiting, &live)
				return fmt.Errorf("%w (MaxSteps=%d)", ErrMaxSteps, m.cfg.MaxSteps)
			}
		}
	}
	// A panic can arrive together with the final exit, after the abort
	// path is no longer reachable; still report it.
	return progErr
}

// abort crashes every remaining processor so their goroutines exit.
func (m *Machine) abort(waiting, live *int) {
	for i := range m.procs {
		st := &m.procs[i]
		if st.alive && st.ready {
			st.ready = false
			*waiting++
			st.resume <- resumeMsg{killed: true}
		}
	}
	for *waiting > 0 {
		msg := <-m.posted
		*waiting--
		if msg.exit {
			*live--
		} else {
			*waiting++
			m.procs[msg.pid].resume <- resumeMsg{killed: true}
		}
	}
}

// execStep applies the selected processors' ops in order and resumes
// them. It returns how many processors were resumed.
func (m *Machine) execStep(run []int) int {
	clear(m.accesses)
	clear(m.phases)
	m.execed = m.execed[:0]

	resumed := 0
	for _, pid := range run {
		st := &m.procs[pid]
		if !st.alive || !st.ready {
			continue
		}
		st.ready = false
		resumed++
		o := st.op
		res := resumeMsg{}
		switch o.kind {
		case OpRead:
			res.val = m.mem[o.addr]
			m.metrics.Reads++
			m.accesses[o.addr]++
		case OpWrite:
			m.mem[o.addr] = o.v
			m.metrics.Writes++
			m.accesses[o.addr]++
		case OpCAS:
			if m.mem[o.addr] == o.old {
				m.mem[o.addr] = o.v
				res.ok = true
			} else {
				m.metrics.CASFailures++
			}
			res.val = m.mem[o.addr]
			m.metrics.CASes++
			m.accesses[o.addr]++
		case OpIdle:
			m.metrics.Idles++
		}
		st.ops++
		m.metrics.Ops++
		pm := m.metrics.RecordPhase(st.phase)
		pm.Ops++
		m.phases[st.phase] = true
		if m.cfg.Observer != nil {
			val := res.val
			if o.kind == OpWrite {
				val = o.v
			}
			m.execed = append(m.execed, ExecutedOp{
				PID: pid, Kind: o.kind, Addr: o.addr, Value: val, OK: res.ok, Phase: st.phase,
			})
		}
		st.resume <- res
	}

	// Contention accounting for this step.
	stepMax := 0
	for _, n := range m.accesses {
		if n > stepMax {
			stepMax = n
		}
		if n > 1 {
			m.metrics.Stalls += int64(n - 1)
		}
	}
	if stepMax > m.metrics.MaxContention {
		m.metrics.MaxContention = stepMax
	}
	// QRQW accounting (Gibbons–Matias–Ramachandran, cited in §3): a
	// step's duration is the longest per-word access queue it creates.
	m.metrics.QRQWTime += int64(max(stepMax, 1))
	// Phase attribution is per-step: the step-wide contention maximum is
	// charged to every phase with an operation in this step. Phases of
	// distinct processors rarely overlap in time, so this is exact in
	// practice and conservative otherwise.
	for name := range m.phases {
		pm := m.metrics.ByPhase[name]
		pm.Steps++
		if stepMax > pm.MaxContention {
			pm.MaxContention = stepMax
		}
		if stepMax > 1 {
			pm.Stalls += int64(stepMax - 1)
		}
	}
	if m.cfg.Observer != nil {
		m.cfg.Observer(m.metrics.Steps, m.execed)
	}
	return resumed
}
