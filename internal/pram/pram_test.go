package pram

import (
	"errors"
	"testing"
	"testing/quick"

	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

func TestWriteThenReadSingleProc(t *testing.T) {
	m := New(Config{P: 1, Mem: 4})
	met, err := m.Run(func(p model.Proc) {
		p.Write(2, 42)
		if got := p.Read(2); got != 42 {
			t.Errorf("read back %d, want 42", got)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Steps != 2 || met.Ops != 2 || met.Reads != 1 || met.Writes != 1 {
		t.Errorf("metrics %+v, want 2 steps, 1 read, 1 write", met)
	}
	if m.Memory()[2] != 42 {
		t.Errorf("memory[2] = %d, want 42", m.Memory()[2])
	}
}

func TestSynchronousStepsCountRounds(t *testing.T) {
	const p, rounds = 8, 5
	m := New(Config{P: p, Mem: p * rounds})
	met, err := m.Run(func(pr model.Proc) {
		for r := 0; r < rounds; r++ {
			pr.Write(r*p+pr.ID(), model.Word(pr.ID()))
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Steps != rounds {
		t.Errorf("steps = %d, want %d (all processors advance each step)", met.Steps, rounds)
	}
	if met.Ops != p*rounds {
		t.Errorf("ops = %d, want %d", met.Ops, p*rounds)
	}
	if met.MaxContention != 1 {
		t.Errorf("max contention = %d, want 1 for disjoint addresses", met.MaxContention)
	}
}

func TestCASExactlyOneWinnerPerStep(t *testing.T) {
	const p = 64
	for seed := uint64(0); seed < 10; seed++ {
		m := New(Config{P: p, Mem: 1 + p, Seed: seed})
		_, err := m.Run(func(pr model.Proc) {
			won := pr.CAS(0, model.Empty, model.Word(pr.ID()+1))
			if won {
				pr.Write(1+pr.ID(), 1)
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		mem := m.Memory()
		winners := 0
		var winner int
		for i := 0; i < p; i++ {
			if mem[1+i] == 1 {
				winners++
				winner = i
			}
		}
		if winners != 1 {
			t.Fatalf("seed %d: %d CAS winners, want exactly 1", seed, winners)
		}
		if mem[0] != model.Word(winner+1) {
			t.Errorf("seed %d: mem[0] = %d, winner id+1 = %d", seed, mem[0], winner+1)
		}
	}
}

func TestCASContentionIsP(t *testing.T) {
	const p = 32
	m := New(Config{P: p, Mem: 1})
	met, err := m.Run(func(pr model.Proc) {
		pr.CAS(0, model.Empty, 7)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.MaxContention != p {
		t.Errorf("max contention = %d, want %d when all processors hit one word", met.MaxContention, p)
	}
	if met.Stalls != p-1 {
		t.Errorf("stalls = %d, want %d", met.Stalls, p-1)
	}
}

func TestArbitraryCRCWWriteOneValueSurvives(t *testing.T) {
	const p = 16
	seen := make(map[model.Word]bool)
	for seed := uint64(0); seed < 40; seed++ {
		m := New(Config{P: p, Mem: 1, Seed: seed})
		if _, err := m.Run(func(pr model.Proc) {
			pr.Write(0, model.Word(pr.ID()+1))
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		v := m.Memory()[0]
		if v < 1 || v > p {
			t.Fatalf("surviving value %d not written by any processor", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Errorf("arbitrary CRCW resolution looks deterministic: only %v survived over 40 seeds", seen)
	}
}

func TestPriorityOrderIsDeterministic(t *testing.T) {
	run := func() model.Word {
		m := New(Config{P: 8, Mem: 1, Sched: PriorityOrder()})
		if _, err := m.Run(func(pr model.Proc) {
			pr.Write(0, model.Word(pr.ID()+1))
		}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return m.Memory()[0]
	}
	// Sequential application in pid order means the highest pid's write
	// lands last and survives.
	for i := 0; i < 5; i++ {
		if got := run(); got != 8 {
			t.Fatalf("priority order survivor = %d, want 8", got)
		}
	}
}

func TestCrashedProcessorStopsAndOthersFinish(t *testing.T) {
	const p = 8
	crashes := []Crash{{Step: 3, PID: 0}, {Step: 3, PID: 1}}
	m := New(Config{P: p, Mem: p, Sched: WithCrashes(Synchronous(), crashes)})
	met, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 100; i++ {
			pr.Write(pr.ID(), model.Word(i))
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Killed != 2 {
		t.Errorf("killed = %d, want 2", met.Killed)
	}
	mem := m.Memory()
	for pid := 2; pid < p; pid++ {
		if mem[pid] != 99 {
			t.Errorf("survivor %d wrote %d, want 99", pid, mem[pid])
		}
	}
	for pid := 0; pid < 2; pid++ {
		if mem[pid] >= 99 {
			t.Errorf("crashed processor %d finished (wrote %d)", pid, mem[pid])
		}
	}
}

func TestMaxStepsDetectsNonTermination(t *testing.T) {
	m := New(Config{P: 2, Mem: 1, MaxSteps: 1000})
	_, err := m.Run(func(pr model.Proc) {
		if pr.ID() == 0 {
			return
		}
		for pr.Read(0) == model.Empty { // never written: spins forever
		}
	})
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("err = %v, want ErrMaxSteps", err)
	}
}

func TestProgramPanicIsReportedNotSwallowed(t *testing.T) {
	m := New(Config{P: 4, Mem: 1})
	_, err := m.Run(func(pr model.Proc) {
		pr.Read(0)
		if pr.ID() == 2 {
			panic("boom")
		}
		for i := 0; i < 10; i++ {
			pr.Read(0)
		}
	})
	if err == nil || !contains2(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic propagated", err)
	}
}

func contains2(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestRoundRobinSerializesAndCompletes(t *testing.T) {
	const p = 5
	m := New(Config{P: p, Mem: 1, Sched: RoundRobin(1)})
	met, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 10; i++ {
			pr.Write(0, model.Word(pr.ID()))
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.MaxContention != 1 {
		t.Errorf("max contention = %d, want 1 under serialization", met.MaxContention)
	}
	if met.Steps != p*10 {
		t.Errorf("steps = %d, want %d", met.Steps, p*10)
	}
}

func TestRandomSubsetCompletes(t *testing.T) {
	const p = 16
	m := New(Config{P: p, Mem: p, Sched: RandomSubset(0.3), Seed: 7})
	_, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 20; i++ {
			pr.Write(pr.ID(), model.Word(i))
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for pid := 0; pid < p; pid++ {
		if m.Memory()[pid] != 19 {
			t.Errorf("proc %d final write %d, want 19", pid, m.Memory()[pid])
		}
	}
}

func TestIdleCostsStepTouchesNoMemory(t *testing.T) {
	m := New(Config{P: 2, Mem: 1})
	met, err := m.Run(func(pr model.Proc) {
		pr.Idle()
		pr.Idle()
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if met.Idles != 4 || met.MaxContention != 0 {
		t.Errorf("idles=%d maxcont=%d, want 4 and 0", met.Idles, met.MaxContention)
	}
}

func TestPhaseAttribution(t *testing.T) {
	m := New(Config{P: 2, Mem: 2})
	met, err := m.Run(func(pr model.Proc) {
		pr.Phase("a")
		pr.Read(0)
		pr.Phase("b")
		pr.Write(1, 1)
		pr.Write(1, 2)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a, b := met.ByPhase["a"], met.ByPhase["b"]
	if a == nil || b == nil {
		t.Fatalf("phases missing: %v", met.PhaseNames())
	}
	if a.Ops != 2 || b.Ops != 4 {
		t.Errorf("phase ops a=%d b=%d, want 2 and 4", a.Ops, b.Ops)
	}
	if names := met.PhaseNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("phase order %v, want [a b]", names)
	}
}

func TestOpsPerProcBoundedUnderCrashes(t *testing.T) {
	const p = 8
	m := New(Config{P: p, Mem: p,
		Sched: WithCrashes(Synchronous(), []Crash{{Step: 2, PID: 3}})})
	_, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 7; i++ {
			pr.Write(pr.ID(), 1)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	per := m.OpsPerProc()
	if per[3] >= 7 {
		t.Errorf("crashed proc executed %d ops, want < 7", per[3])
	}
	for pid, n := range per {
		if pid != 3 && n != 7 {
			t.Errorf("proc %d ops = %d, want 7", pid, n)
		}
	}
}

// TestReadsSeeEarlierWritesInSameStepOrNot documents arbitrary-CRCW
// semantics: a same-step read may observe either the pre-step value or a
// same-step write, depending on scheduler order — but never anything
// else.
func TestReadsSeeValidValuesUnderConcurrency(t *testing.T) {
	check := func(seed uint64) bool {
		m := New(Config{P: 4, Mem: 2, Seed: seed})
		_, err := m.Run(func(pr model.Proc) {
			if pr.ID()%2 == 0 {
				pr.Write(0, 5)
			} else {
				v := pr.Read(0)
				pr.Write(1, v) // record an observation (arbitrary CRCW keeps one)
			}
		})
		if err != nil {
			return false
		}
		obs := m.Memory()[1]
		return obs == 0 || obs == 5
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerStallIsAnError(t *testing.T) {
	stall := SchedulerFunc(func(_ int64, _ []int, _ *xrand.Rand) Decision {
		return Decision{}
	})
	m := New(Config{P: 2, Mem: 1, Sched: stall})
	_, err := m.Run(func(pr model.Proc) { pr.Read(0) })
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestDeterminismSameSeedSameMetrics(t *testing.T) {
	run := func(seed uint64) (int64, model.Word) {
		m := New(Config{P: 16, Mem: 4, Seed: seed})
		met, err := m.Run(func(pr model.Proc) {
			for i := 0; i < 8; i++ {
				a := pr.Rand().Intn(4)
				if !pr.CAS(a, model.Empty, model.Word(pr.ID()+1)) {
					pr.Read(a)
				}
			}
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return met.Ops, m.Memory()[0]
	}
	ops1, v1 := run(99)
	ops2, v2 := run(99)
	if ops1 != ops2 || v1 != v2 {
		t.Errorf("same seed diverged: ops %d vs %d, mem %d vs %d", ops1, ops2, v1, v2)
	}
}
