package pram

import (
	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

// Decision is a scheduler's choice for one step. Run is the ordered list
// of processors that execute (a subset of the ready set; the order is
// the sequence in which their operations apply, i.e. the arbiter of
// concurrent-write and CAS races). Kill lists processors to crash; a
// crashed processor never runs again, modeling the paper's fail/delay
// adversary.
type Decision struct {
	Run  []int
	Kill []int
}

// Scheduler chooses which ready processors advance at every step. The
// ready slice is owned by the machine: schedulers must not retain it,
// but may return it (or a reslice of it) as Decision.Run. rng is a
// stream reserved for the scheduler, derived from the machine seed.
type Scheduler interface {
	Next(step int64, ready []int, rng *xrand.Rand) Decision
}

// PendingOp is what an op-aware adversary may inspect about a ready
// processor: which operation it has posted and where.
type PendingOp struct {
	PID  int
	Kind OpKind
	Addr int
}

// OpAwareScheduler is an optional stronger interface: a scheduler that
// also sees every ready processor's pending operation. This is the full
// adversary of Dwork, Herlihy and Waarts ("Contention in Shared Memory
// Algorithms"), which the paper cites for the theorem that an
// omnipotent scheduler can force Θ(P) variable-contention on ANY
// wait-free algorithm — experiment E15 demonstrates it against this
// repository's sorts. When a Scheduler implements OpAwareScheduler the
// machine calls NextOps instead of Next.
type OpAwareScheduler interface {
	Scheduler
	NextOps(step int64, pending []PendingOp, rng *xrand.Rand) Decision
}

// SchedulerFunc adapts a function to the Scheduler interface — the hook
// for hand-written adversaries in tests.
type SchedulerFunc func(step int64, ready []int, rng *xrand.Rand) Decision

// Next implements Scheduler.
func (f SchedulerFunc) Next(step int64, ready []int, rng *xrand.Rand) Decision {
	return f(step, ready, rng)
}

type synchronous struct {
	shuffle bool
	scratch []int
}

// Synchronous returns the faultless PRAM schedule: every ready processor
// runs every step, with the within-step order shuffled uniformly. The
// shuffle makes concurrent CAS and write races "arbitrary" rather than
// biased toward low processor ids.
func Synchronous() Scheduler { return &synchronous{shuffle: true} }

// PriorityOrder returns the deterministic priority-CRCW schedule: every
// ready processor runs every step and ties resolve toward the lowest
// processor id. Useful for reproducing exact executions in tests.
func PriorityOrder() Scheduler { return &synchronous{} }

func (s *synchronous) Next(_ int64, ready []int, rng *xrand.Rand) Decision {
	if !s.shuffle {
		return Decision{Run: ready}
	}
	s.scratch = append(s.scratch[:0], ready...)
	for i := len(s.scratch) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		s.scratch[i], s.scratch[j] = s.scratch[j], s.scratch[i]
	}
	return Decision{Run: s.scratch}
}

type randomSubset struct {
	prob    float64
	scratch []int
}

// RandomSubset returns an asynchrony model: each ready processor runs
// in a given step with probability prob, independently; if the draw
// selects nobody, one random processor runs (so the machine always makes
// progress, as any real scheduler eventually does).
func RandomSubset(prob float64) Scheduler {
	if prob <= 0 || prob > 1 {
		panic("pram: RandomSubset prob must be in (0,1]")
	}
	return &randomSubset{prob: prob}
}

func (s *randomSubset) Next(_ int64, ready []int, rng *xrand.Rand) Decision {
	s.scratch = s.scratch[:0]
	for _, pid := range ready {
		if rng.Float64() < s.prob {
			s.scratch = append(s.scratch, pid)
		}
	}
	if len(s.scratch) == 0 && len(ready) > 0 {
		s.scratch = append(s.scratch, ready[rng.Intn(len(ready))])
	}
	for i := len(s.scratch) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		s.scratch[i], s.scratch[j] = s.scratch[j], s.scratch[i]
	}
	return Decision{Run: s.scratch}
}

type roundRobin struct {
	k       int
	next    int
	scratch []int
}

// RoundRobin returns an extreme-asynchrony schedule: exactly
// min(k, ready) processors run per step, rotating through processor ids.
// RoundRobin(1) serializes the whole computation, the strongest
// fairness-free test of wait-freedom short of crashes.
func RoundRobin(k int) Scheduler {
	if k < 1 {
		panic("pram: RoundRobin k must be >= 1")
	}
	return &roundRobin{k: k}
}

func (s *roundRobin) Next(_ int64, ready []int, _ *xrand.Rand) Decision {
	if len(ready) <= s.k {
		return Decision{Run: ready}
	}
	s.scratch = s.scratch[:0]
	// Pick the next k ready pids in cyclic order starting from s.next.
	start := 0
	for i, pid := range ready {
		if pid >= s.next {
			start = i
			break
		}
	}
	for i := 0; i < s.k; i++ {
		pid := ready[(start+i)%len(ready)]
		s.scratch = append(s.scratch, pid)
	}
	s.next = s.scratch[len(s.scratch)-1] + 1
	return Decision{Run: s.scratch}
}

// ContentionAdversary is a patient Dwork–Herlihy–Waarts-style
// adversary. Each step it picks a target word — the address with the
// most pending operations — and HOLDS that group back while releasing
// everyone else, so processors keep advancing until they too pend on
// the target. The accumulated group is released only when no other
// processor can make progress (everyone non-idle pends on the target),
// detonating one maximally contended step. Idle operations always run
// (they touch no word and holding them gains nothing).
//
// Against the deterministic sort this simply deepens the natural O(P)
// pile-up; against the randomized §3 sort it demonstrates the paper's
// §4 remark that in the asynchronous case an omnipotent adversary can
// always push contention above the oblivious-scheduler O(sqrt(P))
// bound — the DHW theorem says Θ(P) is always reachable in principle;
// this practical adversary realizes a large fraction of it (experiment
// E15 reports the measured inflation).
type ContentionAdversary struct {
	groups map[int][]int
	buf    []int
}

// NewContentionAdversary returns a fresh adversary.
func NewContentionAdversary() *ContentionAdversary {
	return &ContentionAdversary{groups: make(map[int][]int)}
}

// Next implements Scheduler (used only if the machine ignores op
// awareness): run everyone.
func (s *ContentionAdversary) Next(_ int64, ready []int, _ *xrand.Rand) Decision {
	return Decision{Run: ready}
}

// NextOps implements OpAwareScheduler.
func (s *ContentionAdversary) NextOps(_ int64, pending []PendingOp, _ *xrand.Rand) Decision {
	for a := range s.groups {
		delete(s.groups, a)
	}
	s.buf = s.buf[:0]
	idles := 0
	for _, op := range pending {
		if op.Kind == OpIdle {
			s.buf = append(s.buf, op.PID)
			idles++
			continue
		}
		s.groups[op.Addr] = append(s.groups[op.Addr], op.PID)
	}
	bestAddr, bestLen := -1, 0
	for a, g := range s.groups {
		if len(g) > bestLen || (len(g) == bestLen && a < bestAddr) {
			bestAddr, bestLen = a, len(g)
		}
	}
	released := idles
	for a, g := range s.groups {
		if a == bestAddr {
			continue // hold the target group back so it keeps growing
		}
		s.buf = append(s.buf, g...)
		released += len(g)
	}
	if released == 0 {
		// Everyone pends on the target: detonate the collision.
		return Decision{Run: s.groups[bestAddr]}
	}
	return Decision{Run: s.buf}
}

// holdAddress is the algorithm-aware adversary implied by the DHW
// theorem: it knows one address that every processor must eventually
// operate on (for the §3 sort: the winner-selection root) and holds
// every operation on it until no other processor can make progress —
// at which point all accumulated operations detonate in one maximally
// contended step. Because the held word never changes, processors keep
// piling onto it instead of being deflected by its updates.
type holdAddress struct {
	addr int
	buf  []int
}

// HoldAddress returns an op-aware adversary that accumulates every
// operation on addr and releases them together only when nothing else
// can run. Progress is never blocked: some processor always runs.
func HoldAddress(addr int) Scheduler {
	return &holdAddress{addr: addr}
}

// Next implements Scheduler: run everyone (not used by the machine,
// which prefers NextOps).
func (s *holdAddress) Next(_ int64, ready []int, _ *xrand.Rand) Decision {
	return Decision{Run: ready}
}

// NextOps implements OpAwareScheduler.
func (s *holdAddress) NextOps(_ int64, pending []PendingOp, _ *xrand.Rand) Decision {
	s.buf = s.buf[:0]
	held := 0
	for _, op := range pending {
		if op.Kind != OpIdle && op.Addr == s.addr {
			held++
			continue
		}
		s.buf = append(s.buf, op.PID)
	}
	if len(s.buf) > 0 {
		return Decision{Run: s.buf}
	}
	// Everyone pends on the held word: detonate.
	for _, op := range pending {
		s.buf = append(s.buf, op.PID)
	}
	return Decision{Run: s.buf}
}

// Crash describes one scheduled processor crash. The spec type lives in
// model so the same crash schedules drive both runtimes: here Step is a
// machine step; internal/native reads it as the processor's operation
// ordinal (see model.Crash).
type Crash = model.Crash

type withCrashes struct {
	inner   Scheduler
	crashes []Crash
	killed  map[int]bool
	kills   []int
	runBuf  []int
}

// WithCrashes wraps a scheduler with fail-stop injection: each listed
// processor is crashed at the first step >= its Step at which it is
// ready. Crashed processors are permanently removed, exactly the
// failure model under which wait-freedom is defined.
func WithCrashes(inner Scheduler, crashes []Crash) Scheduler {
	cs := make([]Crash, len(crashes))
	copy(cs, crashes)
	return &withCrashes{inner: inner, crashes: cs, killed: make(map[int]bool)}
}

// RandomCrashes builds a crash list killing each processor in [0, p)
// with probability frac, at a uniform step in [0, window). The run seed
// is deliberately not reused: pass any fixed seed for reproducibility.
func RandomCrashes(p int, frac float64, window int64, seed uint64) []Crash {
	return model.RandomCrashes(p, frac, window, seed)
}

func (s *withCrashes) Next(step int64, ready []int, rng *xrand.Rand) Decision {
	s.kills = s.kills[:0]
	for _, c := range s.crashes {
		if !s.killed[c.PID] && step >= c.Step && contains(ready, c.PID) {
			s.killed[c.PID] = true
			s.kills = append(s.kills, c.PID)
		}
	}
	if len(s.kills) > 0 {
		// Remove the freshly killed processors from the ready set seen
		// by the inner scheduler.
		s.runBuf = s.runBuf[:0]
		for _, pid := range ready {
			if !contains(s.kills, pid) {
				s.runBuf = append(s.runBuf, pid)
			}
		}
		ready = s.runBuf
	}
	if len(ready) == 0 {
		// Everyone left ready this step is being killed; run nobody but
		// still report the kills so the machine can make progress.
		return Decision{Kill: s.kills}
	}
	dec := s.inner.Next(step, ready, rng)
	dec.Kill = s.kills
	return dec
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
