package pram

import (
	"testing"

	"wfsort/internal/model"
)

// BenchmarkMachineThroughput measures raw simulator speed: operations
// per second through the post/execute/resume cycle. It bounds how big
// an experiment the harness can afford.
func BenchmarkMachineThroughput(b *testing.B) {
	for _, p := range []int{1, 16, 256} {
		b.Run(itoa(p)+"procs", func(b *testing.B) {
			const opsPerProc = 64
			rounds := b.N/(p*opsPerProc) + 1
			b.ResetTimer()
			total := int64(0)
			for r := 0; r < rounds; r++ {
				m := New(Config{P: p, Mem: p})
				met, err := m.Run(func(pr model.Proc) {
					for i := 0; i < opsPerProc; i++ {
						pr.Write(pr.ID(), model.Word(i))
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				total += met.Ops
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "simops/s")
		})
	}
}

// BenchmarkContendedCAS measures the step loop under full contention
// (every processor hits the same word).
func BenchmarkContendedCAS(b *testing.B) {
	const p = 64
	rounds := b.N/p + 1
	for r := 0; r < rounds; r++ {
		m := New(Config{P: p, Mem: 1})
		if _, err := m.Run(func(pr model.Proc) {
			pr.CAS(0, 0, model.Word(pr.ID()+1))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
