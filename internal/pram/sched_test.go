package pram

import (
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

func TestRandomCrashesRespectsFraction(t *testing.T) {
	const p = 1000
	crashes := RandomCrashes(p, 0.5, 100, 7)
	if len(crashes) < p/3 || len(crashes) > 2*p/3 {
		t.Errorf("crashes = %d of %d at frac 0.5", len(crashes), p)
	}
	for _, c := range crashes {
		if c.Step < 0 || c.Step >= 100 {
			t.Errorf("crash step %d outside window", c.Step)
		}
		if c.PID < 0 || c.PID >= p {
			t.Errorf("crash pid %d out of range", c.PID)
		}
	}
}

func TestRandomCrashesZeroWindow(t *testing.T) {
	for _, c := range RandomCrashes(10, 1, 0, 1) {
		if c.Step != 0 {
			t.Errorf("window 0 should pin crashes to step 0, got %d", c.Step)
		}
	}
}

func TestRandomCrashesDeterministic(t *testing.T) {
	a := RandomCrashes(50, 0.4, 100, 3)
	b := RandomCrashes(50, 0.4, 100, 3)
	if len(a) != len(b) {
		t.Fatal("same seed, different crash count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different crashes")
		}
	}
}

func TestWithCrashesKillsEveryListedProcessor(t *testing.T) {
	const p = 6
	var crashes []Crash
	for pid := 1; pid < p; pid++ {
		crashes = append(crashes, Crash{Step: int64(pid), PID: pid})
	}
	m := New(Config{P: p, Mem: p, Sched: WithCrashes(Synchronous(), crashes)})
	met, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 50; i++ {
			pr.Write(pr.ID(), model.Word(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Killed != p-1 {
		t.Errorf("killed = %d, want %d", met.Killed, p-1)
	}
}

func TestWithCrashesKillingEveryReadyProcStillProgresses(t *testing.T) {
	// All processors are crashed at step 0: the machine must terminate
	// cleanly with nothing accomplished rather than stall.
	const p = 3
	var crashes []Crash
	for pid := 0; pid < p; pid++ {
		crashes = append(crashes, Crash{Step: 0, PID: pid})
	}
	m := New(Config{P: p, Mem: p, Sched: WithCrashes(Synchronous(), crashes)})
	met, err := m.Run(func(pr model.Proc) {
		pr.Write(pr.ID(), 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if met.Killed != p {
		t.Errorf("killed = %d, want %d", met.Killed, p)
	}
	for i := 0; i < p; i++ {
		if m.Memory()[i] != 0 {
			t.Errorf("crashed processor %d wrote memory", i)
		}
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Under RoundRobin(1) with equal-length programs, every processor
	// must execute the same number of ops.
	const p = 4
	m := New(Config{P: p, Mem: p, Sched: RoundRobin(1)})
	_, err := m.Run(func(pr model.Proc) {
		for i := 0; i < 9; i++ {
			pr.Write(pr.ID(), model.Word(i))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid, ops := range m.OpsPerProc() {
		if ops != 9 {
			t.Errorf("proc %d ops = %d, want 9", pid, ops)
		}
	}
}

func TestRoundRobinRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RoundRobin(0) accepted")
		}
	}()
	RoundRobin(0)
}

func TestRandomSubsetRejectsBadProb(t *testing.T) {
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomSubset(%v) accepted", bad)
				}
			}()
			RandomSubset(bad)
		}()
	}
}

func TestSchedulerFuncAdapter(t *testing.T) {
	called := false
	s := SchedulerFunc(func(step int64, ready []int, _ *xrand.Rand) Decision {
		called = true
		return Decision{Run: ready}
	})
	m := New(Config{P: 2, Mem: 1, Sched: s})
	if _, err := m.Run(func(pr model.Proc) { pr.Read(0) }); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("adapter never invoked")
	}
}

func TestSynchronousShuffleUsesAllProcs(t *testing.T) {
	s := Synchronous()
	rng := xrand.New(1)
	ready := []int{0, 1, 2, 3, 4}
	dec := s.Next(0, ready, rng)
	if len(dec.Run) != len(ready) {
		t.Fatalf("synchronous ran %d of %d", len(dec.Run), len(ready))
	}
	seen := map[int]bool{}
	for _, pid := range dec.Run {
		seen[pid] = true
	}
	if len(seen) != len(ready) {
		t.Errorf("run set has duplicates: %v", dec.Run)
	}
}

func TestOpKindString(t *testing.T) {
	cases := map[OpKind]string{OpRead: "read", OpWrite: "write", OpCAS: "cas", OpIdle: "idle", OpKind(9): "opkind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
