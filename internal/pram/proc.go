package pram

import (
	"fmt"

	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

// procCtx implements model.Proc for one simulated processor. All methods
// must be called from the processor's own goroutine (the one running the
// Program); the machine enforces the step discipline via the
// post/resume handshake.
type procCtx struct {
	m     *Machine
	state *procState
	id    int
	rng   *xrand.Rand
}

var _ model.Proc = (*procCtx)(nil)

func (p *procCtx) ID() int       { return p.id }
func (p *procCtx) NumProcs() int { return p.m.cfg.P }

func (p *procCtx) Read(a int) Word {
	p.checkAddr(a)
	return p.do(op{kind: OpRead, addr: a}).val
}

func (p *procCtx) Write(a int, v Word) {
	p.checkAddr(a)
	p.do(op{kind: OpWrite, addr: a, v: v})
}

func (p *procCtx) CAS(a int, old, new Word) bool {
	p.checkAddr(a)
	return p.do(op{kind: OpCAS, addr: a, old: old, v: new}).ok
}

func (p *procCtx) Idle() {
	p.do(op{kind: OpIdle})
}

func (p *procCtx) Less(i, j int) bool {
	if i == j {
		return false
	}
	return p.m.cfg.Less(i, j)
}

func (p *procCtx) Rand() *model.Rng { return p.rng }

func (p *procCtx) Phase(name string) { p.state.phase = name }

func (p *procCtx) checkAddr(a int) {
	if a < 0 || a >= len(p.m.mem) {
		panic(fmt.Sprintf("pram: processor %d accessed address %d outside memory of %d words",
			p.id, a, len(p.m.mem)))
	}
}

// do posts the operation and blocks until the machine executes it. If
// the scheduler crashed this processor, do panics with model.Killed,
// which the Program-boundary wrapper recovers.
func (p *procCtx) do(o op) resumeMsg {
	p.state.op = o
	p.m.posted <- postMsg{pid: p.id}
	msg := <-p.state.resume
	if msg.killed {
		panic(model.Killed{PID: p.id})
	}
	return msg
}
