package loadgen

import (
	"errors"
	"math"
	"strings"
	"testing"
)

const validSpec = `{
  "seed": 7, "horizon_ms": 1000,
  "classes": [
    {"name": "small", "arrival": {"dist": "poisson", "rate": 200},
     "size": {"dist": "fixed", "n": 64}, "keyspace": 100},
    {"name": "bulk", "arrival": {"dist": "gamma", "rate": 20, "shape": 0.5},
     "size": {"dist": "uniform", "min": 1000, "max": 8000}}
  ],
  "bursts": [{"start_ms": 200, "dur_ms": 100, "mult": 3}]
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Classes) != 2 || s.Classes[0].Name != "small" || s.Classes[1].Arrival.Shape != 0.5 {
		t.Fatalf("spec mis-parsed: %+v", s)
	}
	if got := s.TotalRate(); got != 220 {
		t.Fatalf("TotalRate = %v, want 220", got)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, body, wantField string
	}{
		{"empty", ``, ""},
		{"not json", `{{{`, ""},
		{"trailing garbage", validSpec + `{"more": 1}`, ""},
		{"unknown field", `{"horizon_ms": 1, "classes": [], "bogus": true}`, ""},
		{"no classes", `{"horizon_ms": 1000, "classes": []}`, "classes"},
		{"zero horizon", `{"horizon_ms": 0, "classes": []}`, "horizon_ms"},
		{"negative horizon", `{"horizon_ms": -5, "classes": []}`, "horizon_ms"},
		{"huge horizon", `{"horizon_ms": 1e12, "classes": []}`, "horizon_ms"},
		{"negative rate", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "poisson", "rate": -1},
			 "size": {"dist": "fixed", "n": 4}}]}`, "classes[0].arrival.rate"},
		{"zero rate", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 0},
			 "size": {"dist": "fixed", "n": 4}}]}`, "classes[0].arrival.rate"},
		{"absurd rate", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1e18},
			 "size": {"dist": "fixed", "n": 4}}]}`, "classes[0].arrival.rate"},
		{"unknown dist", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "pareto", "rate": 1},
			 "size": {"dist": "fixed", "n": 4}}]}`, "classes[0].arrival.dist"},
		{"shape on poisson", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "poisson", "rate": 1, "shape": 2},
			 "size": {"dist": "fixed", "n": 4}}]}`, "classes[0].arrival.shape"},
		{"negative shape", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "weibull", "rate": 1, "shape": -1},
			 "size": {"dist": "fixed", "n": 4}}]}`, "classes[0].arrival.shape"},
		{"zero size", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1},
			 "size": {"dist": "fixed", "n": 0}}]}`, "classes[0].size.n"},
		{"inverted uniform", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1},
			 "size": {"dist": "uniform", "min": 10, "max": 5}}]}`, "classes[0].size"},
		{"dup names", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1}, "size": {"dist": "fixed", "n": 4}},
			{"name": "a", "arrival": {"dist": "det", "rate": 1}, "size": {"dist": "fixed", "n": 4}}]}`,
			"classes[1].name"},
		{"nan rate", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1e999},
			 "size": {"dist": "fixed", "n": 4}}]}`, ""},
		{"burst zero mult", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1}, "size": {"dist": "fixed", "n": 4}}],
			"bursts": [{"start_ms": 0, "dur_ms": 10, "mult": 0}]}`, "bursts[0].mult"},
		{"negative keyspace", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1},
			 "size": {"dist": "fixed", "n": 4}, "keyspace": -2}]}`, "classes[0].keyspace"},
		{"negative weight", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1},
			 "size": {"dist": "fixed", "n": 4}, "weight": -0.5}]}`, "classes[0].weight"},
		{"huge weight", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1},
			 "size": {"dist": "fixed", "n": 4}, "weight": 1e7}]}`, "classes[0].weight"},
		{"nan weight", `{"horizon_ms": 100, "classes": [
			{"name": "a", "arrival": {"dist": "det", "rate": 1},
			 "size": {"dist": "fixed", "n": 4}, "weight": 1e999}]}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.body))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *SpecError", err)
			}
			if tc.wantField != "" && se.Field != tc.wantField {
				t.Fatalf("error field %q, want %q (err: %v)", se.Field, tc.wantField, err)
			}
		})
	}
}

func TestScaledIsDeepAndProportional(t *testing.T) {
	s, err := ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	d := s.Scaled(2.5)
	if d.Classes[0].Arrival.Rate != 500 || d.Classes[1].Arrival.Rate != 50 {
		t.Fatalf("scaled rates wrong: %v, %v", d.Classes[0].Arrival.Rate, d.Classes[1].Arrival.Rate)
	}
	if s.Classes[0].Arrival.Rate != 200 {
		t.Fatal("Scaled mutated the original")
	}
	d.Classes[0].Name = "mutated"
	if s.Classes[0].Name != "small" {
		t.Fatal("Scaled aliases the original's class slice")
	}
}

func TestScaledToTotalSplitsByWeight(t *testing.T) {
	s, err := ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}

	// Unset weights count as 1 each: an even split.
	d, err := s.ScaledToTotal(300)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes[0].Arrival.Rate != 150 || d.Classes[1].Arrival.Rate != 150 {
		t.Fatalf("even split rates: %v, %v", d.Classes[0].Arrival.Rate, d.Classes[1].Arrival.Rate)
	}
	if got := d.TotalRate(); got != 300 {
		t.Fatalf("TotalRate after rescale = %v, want 300", got)
	}
	if s.Classes[0].Arrival.Rate != 200 || s.Classes[1].Arrival.Rate != 20 {
		t.Fatal("ScaledToTotal mutated the original")
	}
	d.Classes[0].Name = "mutated"
	if s.Classes[0].Name != "small" {
		t.Fatal("ScaledToTotal aliases the original's class slice")
	}

	// Explicit weights split proportionally; a zero weight still
	// counts as 1, so 3-vs-unset is a 3:1 split.
	s.Classes[0].Weight = 3
	d, err = s.ScaledToTotal(400)
	if err != nil {
		t.Fatal(err)
	}
	if d.Classes[0].Arrival.Rate != 300 || d.Classes[1].Arrival.Rate != 100 {
		t.Fatalf("3:1 split rates: %v, %v", d.Classes[0].Arrival.Rate, d.Classes[1].Arrival.Rate)
	}

	// Distribution shape rides along untouched.
	if d.Classes[1].Arrival.Dist != DistGamma || d.Classes[1].Arrival.Shape != 0.5 {
		t.Fatalf("arrival shape changed: %+v", d.Classes[1].Arrival)
	}
}

func TestScaledToTotalRejects(t *testing.T) {
	s, err := ParseSpec([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []float64{0, -5, math.Inf(1), math.NaN()} {
		if _, err := s.ScaledToTotal(total); err == nil {
			t.Fatalf("total %v accepted", total)
		}
	}
	// A rescaled per-class rate past the limit is a *SpecError naming
	// the class, not a silently clamped schedule.
	_, err = s.ScaledToTotal(3e7)
	var se *SpecError
	if !errors.As(err, &se) || !strings.Contains(se.Field, "arrival.rate") {
		t.Fatalf("overdriven rescale: err = %v", err)
	}
}

func TestSpecErrorMessageNamesField(t *testing.T) {
	err := specErrf("classes[3].size.n", "must be positive")
	if !strings.Contains(err.Error(), "classes[3].size.n") {
		t.Fatalf("error %q does not name the field", err.Error())
	}
}
