package loadgen

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func capBase() *Spec {
	return &Spec{
		Seed: 5, HorizonMs: 120,
		Classes: []ClassSpec{{
			Name:    "c",
			Arrival: ArrivalSpec{Dist: DistDet, Rate: 100},
			Size:    SizeSpec{Dist: SizeFixed, N: 8},
		}},
	}
}

// rateSensitiveTarget models a server with a capacity cliff: a fixed
// base service time while concurrency stays under a threshold, a
// large penalty beyond it — which is what open-loop overload does to
// a real server. Under Little's law, in-flight ≈ rate × 5ms, so the
// cliff sits near rate = threshold/5ms.
type rateSensitiveTarget struct {
	inflight  atomic.Int64
	threshold int64
}

func (t *rateSensitiveTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	n := t.inflight.Add(1)
	defer t.inflight.Add(-1)
	if n > t.threshold {
		time.Sleep(50 * time.Millisecond)
	} else {
		time.Sleep(5 * time.Millisecond)
	}
	out := append([]int64(nil), keys...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, http.StatusOK, nil
}

func TestSweepFindsKnee(t *testing.T) {
	cfg := CapacityConfig{
		Base:  capBase(),
		Rates: []float64{100, 200, 400, 800, 1600, 3200, 6400, 12800},
		SLOMs: 20,
		NewTarget: func() (Target, func(), error) {
			return &rateSensitiveTarget{threshold: 16}, func() {}, nil
		},
	}
	rep, err := SweepCapacity(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.KneeRPS == 0 {
		t.Fatalf("no knee found: %+v", rep.Points)
	}
	if rep.KneeRPS >= 12800 {
		t.Fatal("the cliff target should fail before the top rate")
	}
	// The sweep stops at the first failing point, and every point up to
	// the knee passed.
	for i, p := range rep.Points {
		if i < len(rep.Points)-1 && !p.Pass {
			t.Fatalf("non-terminal point failed: %+v", p)
		}
	}
	if last := rep.Points[len(rep.Points)-1]; last.Pass {
		t.Fatal("sweep should have ended on a failing point")
	}
}

func TestFindKneeRefines(t *testing.T) {
	rep, err := FindKnee(context.Background(), KneeConfig{
		CapacityConfig: CapacityConfig{
			Base:  capBase(),
			SLOMs: 20,
			NewTarget: func() (Target, func(), error) {
				return &rateSensitiveTarget{threshold: 16}, func() {}, nil
			},
		},
		Start:  100,
		Max:    25600,
		Refine: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.KneeRPS == 0 {
		t.Fatal("refined search found no knee")
	}
	// The refinement stage evaluated off-ladder rates strictly inside
	// the coarse bracket (unless the knee sat exactly on the ladder's
	// last passing point and refinement's first probe failed — even
	// then at least one off-ladder point exists).
	offLadder := 0
	for _, p := range rep.Points {
		onLadder := false
		for r := 100.0; r <= 25600; r *= 2 {
			if p.OfferedRPS == r {
				onLadder = true
			}
		}
		if !onLadder {
			offLadder++
			if !(p.OfferedRPS > rep.Points[0].OfferedRPS) {
				t.Fatalf("refined point %v below the bracket", p.OfferedRPS)
			}
		}
	}
	if offLadder == 0 {
		t.Fatalf("no refined points evaluated: %+v", rep.Points)
	}
}

func TestJudgePointFailureReasons(t *testing.T) {
	cfg := CapacityConfig{SLOMs: 10, MaxShedFrac: 0.05}
	mk := func(mut func(*ClassReport)) *Report {
		tot := ClassReport{Requests: 100, OK: 100, P99Ms: 5, AchievedRPS: 100}
		mut(&tot)
		return &Report{Totals: tot, Classes: []ClassReport{tot}}
	}
	cases := []struct {
		name string
		rep  *Report
		pass bool
		why  string
	}{
		{"pass", mk(func(*ClassReport) {}), true, ""},
		{"unsorted", mk(func(c *ClassReport) { c.Unsorted = 1 }), false, "unsorted"},
		{"errors", mk(func(c *ClassReport) { c.Errors = 2 }), false, "errors"},
		{"slo", mk(func(c *ClassReport) { c.P99Ms = 50 }), false, "p99"},
		{"shed", mk(func(c *ClassReport) { c.Shed = 20; c.Requests = 120 }), false, "shed"},
		{"starved", mk(func(c *ClassReport) { c.OK = 0; c.Requests = 0 }), false, "no completions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pt := judgePoint(100, tc.rep, cfg)
			if pt.Pass != tc.pass {
				t.Fatalf("pass = %v (why %q), want %v", pt.Pass, pt.Why, tc.pass)
			}
			if !strings.Contains(pt.Why, tc.why) {
				t.Fatalf("why %q does not mention %q", pt.Why, tc.why)
			}
		})
	}
}

func TestJudgePointClassSLO(t *testing.T) {
	cfg := CapacityConfig{SLOMs: 100, MaxShedFrac: 0.05}
	tot := ClassReport{Requests: 10, OK: 10, P99Ms: 5}
	slow := ClassReport{Name: "gold", Requests: 5, OK: 5, P99Ms: 8, SLOMs: 2}
	pt := judgePoint(50, &Report{Totals: tot, Classes: []ClassReport{slow}}, cfg)
	if pt.Pass || !strings.Contains(pt.Why, "gold") {
		t.Fatalf("per-class SLO breach not caught: pass=%v why=%q", pt.Pass, pt.Why)
	}
}
