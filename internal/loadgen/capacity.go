package loadgen

import (
	"context"
	"fmt"
	"io"
	"math"
)

// CapacityConfig drives a capacity sweep: the same workload shape is
// offered at increasing aggregate rates until p99 crosses the SLO,
// and the knee — the highest offered rate that still met it — is the
// server's certified capacity.
type CapacityConfig struct {
	// Base is the workload shape. Its class rates define the traffic
	// mix; each sweep point scales them so the aggregate offered rate
	// hits the point's target.
	Base *Spec
	// Rates are the aggregate offered rates (req/s) to test,
	// ascending. The sweep stops at the first failing point.
	Rates []float64
	// SLOMs is the p99 latency SLO in milliseconds a point must meet,
	// measured over the totals row. A class with its own SLOMs is
	// additionally held to it.
	SLOMs float64
	// MaxShedFrac is the tolerated shed+deadline fraction per point
	// (default 0.05). Backpressure is legitimate; a point that sheds
	// more than this is past the knee even if survivors are fast.
	MaxShedFrac float64
	// NewTarget builds a fresh target per point (a new in-process
	// server, or a reconnect to a live one) so queue debt from an
	// overloaded point cannot bleed into the next. The returned
	// closer tears the point's target down; both may be nil-free.
	NewTarget func() (Target, func(), error)
	// Log, when non-nil, receives one progress line per point.
	Log io.Writer
}

// CapacityPoint is one sweep point's verdict.
type CapacityPoint struct {
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	P999Ms      float64 `json:"p999_ms"`
	ShedFrac    float64 `json:"shed_frac"`
	Errors      int     `json:"errors"`
	Unsorted    int     `json:"unsorted"`
	Fairness    float64 `json:"fairness"`
	Pass        bool    `json:"pass"`
	// Why names the first gate the point failed ("" when it passed).
	Why string `json:"why,omitempty"`
}

// CapacityReport is a completed sweep: every evaluated point plus the
// knee. KneeRPS is 0 when no point met the SLO.
type CapacityReport struct {
	SLOMs       float64         `json:"slo_ms"`
	MaxShedFrac float64         `json:"max_shed_frac"`
	KneeRPS     float64         `json:"knee_rps"`
	KneeOKRPS   float64         `json:"knee_ok_rps"`
	Points      []CapacityPoint `json:"points"`
	// KneeStages is the server-attributed per-stage latency breakdown
	// at the knee (the last passing point), fetched from targets that
	// implement StageReporter; nil otherwise. It answers "where does a
	// request's time go at capacity" from the server's own clock.
	KneeStages map[string]StageSummary `json:"knee_stages,omitempty"`
}

// SweepCapacity runs the sweep. Correctness failures (unsorted
// responses, transport errors) fail the point regardless of latency —
// a fast wrong answer is not capacity.
func SweepCapacity(ctx context.Context, cfg CapacityConfig) (*CapacityReport, error) {
	if cfg.Base == nil || len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("capacity: need a base spec and at least one rate")
	}
	if cfg.SLOMs <= 0 {
		return nil, fmt.Errorf("capacity: need an SLO > 0, got %v", cfg.SLOMs)
	}
	if cfg.MaxShedFrac == 0 {
		cfg.MaxShedFrac = 0.05
	}
	baseRate := cfg.Base.TotalRate()
	rep := &CapacityReport{SLOMs: cfg.SLOMs, MaxShedFrac: cfg.MaxShedFrac}
	for _, rate := range cfg.Rates {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		trace, err := BuildTrace(cfg.Base.Scaled(rate / baseRate))
		if err != nil {
			return nil, fmt.Errorf("capacity: building trace at %.0f req/s: %w", rate, err)
		}
		target, closeTarget, err := cfg.NewTarget()
		if err != nil {
			return nil, fmt.Errorf("capacity: target at %.0f req/s: %w", rate, err)
		}
		res := Run(ctx, trace, target)
		report := BuildReport(res)
		pt := judgePoint(rate, report, cfg)
		if pt.Pass {
			// Each passing point overwrites the breakdown, so the report
			// keeps the one measured at the knee itself. Fetch before the
			// target closes: an in-process server tears down with it.
			if sr, ok := target.(StageReporter); ok {
				if stages, err := sr.Stages(); err == nil && len(stages) > 0 {
					rep.KneeStages = stages
				}
			}
		}
		closeTarget()
		rep.Points = append(rep.Points, pt)
		if cfg.Log != nil {
			verdict := "PASS"
			if !pt.Pass {
				verdict = "FAIL (" + pt.Why + ")"
			}
			fmt.Fprintf(cfg.Log, "capacity %8.1f req/s offered: p99 %7.2f ms, ok/s %8.1f, shed %4.1f%%  %s\n",
				pt.OfferedRPS, pt.P99Ms, pt.AchievedRPS, 100*pt.ShedFrac, verdict)
		}
		if !pt.Pass {
			break // past the knee; higher rates only get worse
		}
		rep.KneeRPS, rep.KneeOKRPS = pt.OfferedRPS, pt.AchievedRPS
	}
	return rep, nil
}

// KneeConfig drives FindKnee, the two-stage capacity search.
type KneeConfig struct {
	CapacityConfig
	// Start is the first offered rate; the coarse stage doubles from
	// it until a point fails or Max is passed.
	Start, Max float64
	// Refine is how many intermediate points to test between the last
	// passing and first failing coarse rates (default 5, giving ~12%
	// knee resolution on a doubling bracket; 0 keeps the coarse knee).
	Refine int
}

// FindKnee brackets the knee with a doubling ladder from Start, then
// refines geometrically inside the bracket. The returned report holds
// every evaluated point (coarse then refined, each stage ascending)
// and the highest offered rate that met the SLO.
func FindKnee(ctx context.Context, cfg KneeConfig) (*CapacityReport, error) {
	if cfg.Start <= 0 || cfg.Max < cfg.Start {
		return nil, fmt.Errorf("capacity: need 0 < Start <= Max, got [%v, %v]", cfg.Start, cfg.Max)
	}
	if cfg.Refine == 0 {
		cfg.Refine = 5
	}
	var coarse []float64
	for r := cfg.Start; r <= cfg.Max; r *= 2 {
		coarse = append(coarse, r)
	}
	cfg.Rates = coarse
	rep, err := SweepCapacity(ctx, cfg.CapacityConfig)
	if err != nil {
		return nil, err
	}
	last := rep.Points[len(rep.Points)-1]
	if rep.KneeRPS == 0 || last.Pass || cfg.Refine < 1 {
		// Failed at Start, or never failed up to Max: no bracket.
		return rep, nil
	}
	lo, hi := rep.KneeRPS, last.OfferedRPS
	var fine []float64
	for i := 1; i <= cfg.Refine; i++ {
		fine = append(fine, lo*math.Pow(hi/lo, float64(i)/float64(cfg.Refine+1)))
	}
	cfg.Rates = fine
	ref, err := SweepCapacity(ctx, cfg.CapacityConfig)
	if err != nil {
		return nil, err
	}
	rep.Points = append(rep.Points, ref.Points...)
	if ref.KneeRPS > rep.KneeRPS {
		rep.KneeRPS, rep.KneeOKRPS = ref.KneeRPS, ref.KneeOKRPS
		if ref.KneeStages != nil {
			rep.KneeStages = ref.KneeStages
		}
	}
	return rep, nil
}

func judgePoint(rate float64, r *Report, cfg CapacityConfig) CapacityPoint {
	t := r.Totals
	pt := CapacityPoint{
		OfferedRPS:  rate,
		AchievedRPS: t.AchievedRPS,
		P50Ms:       t.P50Ms,
		P99Ms:       t.P99Ms,
		P999Ms:      t.P999Ms,
		Errors:      t.Errors,
		Unsorted:    t.Unsorted,
		Fairness:    t.Fairness,
	}
	if t.Requests > 0 {
		pt.ShedFrac = float64(t.Shed+t.Deadline) / float64(t.Requests)
	}
	switch {
	case t.Unsorted > 0:
		pt.Why = fmt.Sprintf("%d unsorted responses", t.Unsorted)
	case t.Errors > 0:
		pt.Why = fmt.Sprintf("%d errors", t.Errors)
	case t.OK == 0:
		pt.Why = "no completions"
	case pt.ShedFrac > cfg.MaxShedFrac:
		pt.Why = fmt.Sprintf("shed %.1f%% > %.1f%%", 100*pt.ShedFrac, 100*cfg.MaxShedFrac)
	case t.P99Ms > cfg.SLOMs:
		pt.Why = fmt.Sprintf("p99 %.2f ms > SLO %.2f ms", t.P99Ms, cfg.SLOMs)
	default:
		if pt.Why = classSLOBreach(r, cfg.SLOMs); pt.Why == "" {
			pt.Pass = true
		}
	}
	return pt
}

// classSLOBreach checks per-class SLO overrides (ClassSpec.SLOMs,
// carried onto the report), returning a failure reason or "".
func classSLOBreach(r *Report, defaultSLO float64) string {
	for _, c := range r.Classes {
		slo := c.SLOMs
		if slo == 0 {
			slo = defaultSLO
		}
		if c.OK > 0 && c.P99Ms > slo {
			return fmt.Sprintf("class %s p99 %.2f ms > SLO %.2f ms", c.Name, c.P99Ms, slo)
		}
	}
	return ""
}
