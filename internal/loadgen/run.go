package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Outcome classifies one issued request's fate.
type Outcome int

const (
	// OutcomeOK is a 200 whose body verified (right length, sorted,
	// same key multiset by sum/xor aggregate).
	OutcomeOK Outcome = iota
	// OutcomeShed is documented backpressure: 429 (at capacity) or
	// 503 (draining).
	OutcomeShed
	// OutcomeDeadline is a 504 — admitted but aborted by the server's
	// per-request deadline.
	OutcomeDeadline
	// OutcomeError is a transport failure or unexpected status.
	OutcomeError
	// OutcomeUnsorted is a 200 whose body failed verification — the
	// one outcome that is never acceptable at any load.
	OutcomeUnsorted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeShed:
		return "shed"
	case OutcomeDeadline:
		return "deadline"
	case OutcomeError:
		return "error"
	case OutcomeUnsorted:
		return "unsorted"
	}
	return "unknown"
}

// ReqResult is one issued request's record.
type ReqResult struct {
	Class, Client int
	// PlannedNs is the trace's issue offset; IssuedNs the measured one.
	// Their difference is generator lag, reported so an overloaded
	// client machine can't masquerade as server latency.
	PlannedNs, IssuedNs int64
	LatencyNs           int64
	Status              int
	Outcome             Outcome
	// TraceID is the end-to-end trace ID this request was stamped with
	// ("lg-<index>"); /trace/{id} on the server resolves it to the
	// server-attributed span.
	TraceID string
}

// RunResult is a completed run: one ReqResult per issued request, in
// trace order, plus the measured wall time.
type RunResult struct {
	Trace   *Trace
	Results []ReqResult
	WallNs  int64
}

// Run executes the trace open-loop against target: each request fires
// at its planned offset from run start whether or not earlier ones
// have answered, from its own goroutine. Cancel ctx to stop issuing
// early; already-issued requests still complete and are recorded
// (their contexts are not canceled — tearing down in-flight work is
// the server's drain path, not the generator's job).
func Run(ctx context.Context, t *Trace, target Target) *RunResult {
	results := make([]ReqResult, len(t.Reqs))
	issued := 0
	var wg sync.WaitGroup
	start := time.Now()
	for i := range t.Reqs {
		r := &t.Reqs[i]
		if d := time.Duration(r.AtNs) - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		issued++
		wg.Add(1)
		go func(i int, r *PlannedReq) {
			defer wg.Done()
			results[i] = issueOne(t, i, r, target, start)
		}(i, r)
	}
	wg.Wait()
	return &RunResult{Trace: t, Results: results[:issued], WallNs: time.Since(start).Nanoseconds()}
}

func issueOne(t *Trace, i int, r *PlannedReq, target Target, start time.Time) ReqResult {
	c := &t.Spec.Classes[r.Class]
	keys := r.Keys(c.KeySpace)
	var sentSum, sentXor int64
	for _, k := range keys {
		sentSum += k
		sentXor ^= k
	}
	// Every request is stamped with a deterministic trace ID so a run's
	// records cross-reference the server's /trace surface directly.
	traceID := fmt.Sprintf("lg-%d", i)
	ctx := WithTraceID(context.Background(), traceID)
	issuedAt := time.Since(start)
	sorted, status, err := target.Sort(ctx, c.Name, keys)
	lat := time.Since(start) - issuedAt
	res := ReqResult{
		Class:     r.Class,
		Client:    r.Client,
		PlannedNs: r.AtNs,
		IssuedNs:  issuedAt.Nanoseconds(),
		LatencyNs: lat.Nanoseconds(),
		Status:    status,
		TraceID:   traceID,
	}
	switch {
	case err != nil:
		res.Outcome = OutcomeError
	case status == 200:
		res.Outcome = verifySorted(keys, sorted, sentSum, sentXor)
	case status == 429 || status == 503:
		res.Outcome = OutcomeShed
	case status == 504:
		res.Outcome = OutcomeDeadline
	default:
		res.Outcome = OutcomeError
	}
	return res
}

// verifySorted checks length, non-decreasing order and the sum/xor
// multiset aggregate — O(n), no allocation, cheap enough to keep on
// during capacity sweeps where a per-request map would perturb the
// measurement.
func verifySorted(sent, got []int64, sentSum, sentXor int64) Outcome {
	if len(got) != len(sent) {
		return OutcomeUnsorted
	}
	var gotSum, gotXor int64
	for i, k := range got {
		if i > 0 && got[i-1] > k {
			return OutcomeUnsorted
		}
		gotSum += k
		gotXor ^= k
	}
	if gotSum != sentSum || gotXor != sentXor {
		return OutcomeUnsorted
	}
	return OutcomeOK
}
