package loadgen

import (
	"math"
	"math/rand"
	"testing"
)

// TestSamplerMeans checks every distribution's empirical mean gap
// lands near 1/rate — the invariant that makes "rate" mean the same
// thing across shapes.
func TestSamplerMeans(t *testing.T) {
	const rate = 50.0
	const n = 200_000
	specs := []ArrivalSpec{
		{Dist: DistDet, Rate: rate},
		{Dist: DistPoisson, Rate: rate},
		{Dist: DistGamma, Rate: rate, Shape: 0.5},
		{Dist: DistGamma, Rate: rate, Shape: 4},
		{Dist: DistWeibull, Rate: rate, Shape: 0.7},
		{Dist: DistWeibull, Rate: rate, Shape: 2},
	}
	for _, a := range specs {
		t.Run(a.Dist+"-shape", func(t *testing.T) {
			gap := newSampler(a)
			rng := rand.New(rand.NewSource(1))
			var sum float64
			for i := 0; i < n; i++ {
				g := gap(rng)
				if g < 0 || math.IsNaN(g) || math.IsInf(g, 0) {
					t.Fatalf("%s shape %v: bad gap %v", a.Dist, a.Shape, g)
				}
				sum += g
			}
			mean := sum / n
			want := 1 / a.Rate
			if mean < want*0.95 || mean > want*1.05 {
				t.Fatalf("%s shape %v: mean gap %v, want ~%v", a.Dist, a.Shape, mean, want)
			}
		})
	}
}

// TestSamplerDeterministic pins the seeded streams: the same seed must
// produce the same gap sequence (the replay guarantee's foundation).
func TestSamplerDeterministic(t *testing.T) {
	for _, a := range []ArrivalSpec{
		{Dist: DistPoisson, Rate: 10},
		{Dist: DistGamma, Rate: 10, Shape: 0.3},
		{Dist: DistWeibull, Rate: 10, Shape: 1.5},
	} {
		g1, g2 := newSampler(a), newSampler(a)
		r1, r2 := rand.New(rand.NewSource(99)), rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			if a1, a2 := g1(r1), g2(r2); a1 != a2 {
				t.Fatalf("%s: draw %d diverged: %v vs %v", a.Dist, i, a1, a2)
			}
		}
	}
}

func TestGammaSampleSmallShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		if g := gammaSample(rng, 0.1); g < 0 || math.IsNaN(g) {
			t.Fatalf("gammaSample(0.1) = %v", g)
		}
	}
}

func TestBurstMult(t *testing.T) {
	bursts := []BurstSpec{
		{StartMs: 100, DurMs: 50, Mult: 3},
		{StartMs: 120, DurMs: 100, Mult: 2},
	}
	cases := []struct {
		t, want float64
	}{
		{0, 1}, {99.9, 1}, {100, 3}, {119, 3}, {130, 6}, {150, 2}, {219, 2}, {220, 1},
	}
	for _, c := range cases {
		if got := burstMult(bursts, c.t); got != c.want {
			t.Fatalf("burstMult(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

// TestBurstRaisesCount checks a burst phase actually densifies the
// schedule inside its window.
func TestBurstRaisesCount(t *testing.T) {
	base := &Spec{
		Seed: 1, HorizonMs: 1000,
		Classes: []ClassSpec{{
			Name:    "a",
			Arrival: ArrivalSpec{Dist: DistDet, Rate: 100},
			Size:    SizeSpec{Dist: SizeFixed, N: 8},
		}},
		Bursts: []BurstSpec{{StartMs: 400, DurMs: 200, Mult: 4}},
	}
	tr, err := BuildTrace(base)
	if err != nil {
		t.Fatal(err)
	}
	in, out := 0, 0
	for _, r := range tr.Reqs {
		ms := float64(r.AtNs) / 1e6
		if ms >= 400 && ms < 600 {
			in++
		} else {
			out++
		}
	}
	// 200ms at 400/s ≈ 80 in-burst; 800ms at 100/s ≈ 80 outside.
	if in < 60 || float64(in) < 2.5*float64(out)/4 {
		t.Fatalf("burst window got %d requests vs %d outside — multiplier not applied", in, out)
	}
}
