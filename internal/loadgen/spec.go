// Package loadgen is the open-loop workload engine for the serving
// stack: declarative workload specs (interarrival process, size and
// duplicate mix, burst phases, virtual clients per class), fully
// seeded schedule generation with trace record/replay, an issue engine
// that drives any Target (the live HTTP service or internal/server's
// handler in-process), per-class latency/fairness reports, and a
// capacity sweep that finds the offered-load knee where p99 crosses an
// SLO.
//
// Open-loop means the generator never waits for a response before
// issuing the next request: issue instants come from the spec's
// interarrival process alone, so a slow server accumulates in-flight
// work exactly as real independent clients would pile on — the regime
// where closed-loop benchmarks flatter the server most.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"
)

// SpecError is the typed error every spec parsing or validation
// failure surfaces as. Field names the offending spec location in
// dotted form ("classes[2].arrival.rate").
type SpecError struct {
	Field string
	Msg   string
}

func (e *SpecError) Error() string {
	if e.Field == "" {
		return "workload spec: " + e.Msg
	}
	return "workload spec: " + e.Field + ": " + e.Msg
}

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Arrival distribution names accepted by ArrivalSpec.Dist.
const (
	DistDet     = "det"     // deterministic: every gap exactly 1/rate
	DistPoisson = "poisson" // exponential gaps (memoryless)
	DistGamma   = "gamma"   // gamma gaps, Shape k (k=1 is poisson)
	DistWeibull = "weibull" // weibull gaps, Shape k (k<1 is bursty)
)

// ArrivalSpec declares a class's interarrival process.
type ArrivalSpec struct {
	// Dist is one of det, poisson, gamma, weibull.
	Dist string `json:"dist"`
	// Rate is the mean offered rate in requests/second.
	Rate float64 `json:"rate"`
	// Shape is the gamma/weibull shape parameter (default 1; must be
	// absent or 0 for det and poisson, where it has no meaning).
	Shape float64 `json:"shape,omitempty"`
}

// Size distribution names accepted by SizeSpec.Dist.
const (
	SizeFixed   = "fixed"
	SizeUniform = "uniform"
)

// SizeSpec declares a class's request-size (key count) distribution.
type SizeSpec struct {
	// Dist is fixed or uniform.
	Dist string `json:"dist"`
	// N is the fixed size (fixed only).
	N int `json:"n,omitempty"`
	// Min and Max bound the uniform size, inclusive (uniform only).
	Min int `json:"min,omitempty"`
	Max int `json:"max,omitempty"`
}

// ClassSpec is one traffic class: its own arrival process, size and
// duplicate mix, client fan-out and SLO.
type ClassSpec struct {
	// Name labels the class in reports and in the X-Sort-Class header.
	Name string `json:"name"`
	// Arrival is the class's interarrival process.
	Arrival ArrivalSpec `json:"arrival"`
	// Size is the class's request-size distribution.
	Size SizeSpec `json:"size"`
	// KeySpace controls the duplicate (stability) mix: 0 sends a
	// distinct permutation, k > 0 draws keys from [0, k) — small
	// keyspaces mean heavy duplicates, the regime that stresses the
	// stable-sort and batching demux paths.
	KeySpace int `json:"keyspace,omitempty"`
	// Clients is the number of virtual clients the class's requests
	// round-robin over (default 4). The Jain fairness index is computed
	// over per-client completions.
	Clients int `json:"clients,omitempty"`
	// SLOMs is the class's p99 latency SLO in milliseconds (default
	// inherited from the capacity sweep's global SLO; informational in
	// plain runs).
	SLOMs float64 `json:"slo_ms,omitempty"`
	// Weight is the class's share when the spec is rescaled to an
	// aggregate offered rate (ScaledToTotal / loadgen -total-rate): the
	// class receives total * Weight / sum-of-weights. 0 counts as 1, so
	// an unweighted spec splits evenly.
	Weight float64 `json:"weight,omitempty"`
}

// BurstSpec multiplies every class's offered rate by Mult during
// [StartMs, StartMs+DurMs) of the run.
type BurstSpec struct {
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
	Mult    float64 `json:"mult"`
}

// Spec is a complete workload description. A Spec plus a seed
// determines the full request schedule byte-for-byte.
type Spec struct {
	// Seed fixes every randomized choice (interarrival gaps, sizes,
	// key contents). Two runs of the same spec are identical.
	Seed uint64 `json:"seed"`
	// HorizonMs is the schedule length in milliseconds.
	HorizonMs float64 `json:"horizon_ms"`
	// MaxRequests caps the total planned requests across classes
	// (default 1e6); generation stops at whichever of horizon or cap
	// comes first.
	MaxRequests int `json:"max_requests,omitempty"`
	// Classes are the traffic classes (at least one).
	Classes []ClassSpec `json:"classes"`
	// Bursts are optional rate-multiplier phases.
	Bursts []BurstSpec `json:"bursts,omitempty"`
}

// specLimits bound absurd inputs: a spec is a test input, and the
// fuzzer will find every overflow a missing bound allows.
const (
	maxHorizonMs   = 10 * 60 * 1000 // 10 minutes
	maxRate        = 1e7            // req/s per class
	maxSize        = 1 << 22        // keys per request
	maxClasses     = 64
	maxBursts      = 64
	maxClients     = 1 << 16
	maxMult        = 1e4
	maxShape       = 1e4
	maxWeight      = 1e6
	hardMaxPlanned = 4 << 20 // absolute cap on planned requests
)

// ParseSpec decodes and validates a workload spec. Every failure —
// malformed JSON included — returns a *SpecError; it never panics.
func ParseSpec(b []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, specErrf("", "invalid JSON: %v", err)
	}
	// Trailing garbage after the spec object is a malformed spec, not
	// an extended one.
	if dec.More() {
		return nil, specErrf("", "trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks the spec's semantic constraints, returning a
// *SpecError naming the first offending field.
func (s *Spec) Validate() error {
	if !isFinite(s.HorizonMs) || s.HorizonMs <= 0 {
		return specErrf("horizon_ms", "must be a finite duration > 0, got %v", s.HorizonMs)
	}
	if s.HorizonMs > maxHorizonMs {
		return specErrf("horizon_ms", "%v exceeds the %d ms limit", s.HorizonMs, maxHorizonMs)
	}
	if s.MaxRequests < 0 {
		return specErrf("max_requests", "must be >= 0, got %d", s.MaxRequests)
	}
	if s.MaxRequests > hardMaxPlanned {
		return specErrf("max_requests", "%d exceeds the %d cap", s.MaxRequests, hardMaxPlanned)
	}
	if len(s.Classes) == 0 {
		return specErrf("classes", "at least one class is required")
	}
	if len(s.Classes) > maxClasses {
		return specErrf("classes", "%d classes exceeds the %d limit", len(s.Classes), maxClasses)
	}
	names := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		if err := s.Classes[i].validate(fmt.Sprintf("classes[%d]", i)); err != nil {
			return err
		}
		if names[s.Classes[i].Name] {
			return specErrf(fmt.Sprintf("classes[%d].name", i), "duplicate class name %q", s.Classes[i].Name)
		}
		names[s.Classes[i].Name] = true
	}
	if len(s.Bursts) > maxBursts {
		return specErrf("bursts", "%d bursts exceeds the %d limit", len(s.Bursts), maxBursts)
	}
	for i, b := range s.Bursts {
		f := fmt.Sprintf("bursts[%d]", i)
		if !isFinite(b.StartMs) || b.StartMs < 0 {
			return specErrf(f+".start_ms", "must be finite and >= 0, got %v", b.StartMs)
		}
		if !isFinite(b.DurMs) || b.DurMs <= 0 {
			return specErrf(f+".dur_ms", "must be finite and > 0, got %v", b.DurMs)
		}
		if !isFinite(b.Mult) || b.Mult <= 0 || b.Mult > maxMult {
			return specErrf(f+".mult", "must be in (0, %v], got %v", float64(maxMult), b.Mult)
		}
	}
	return nil
}

func (c *ClassSpec) validate(field string) error {
	if c.Name == "" {
		return specErrf(field+".name", "must be non-empty")
	}
	if len(c.Name) > 64 || strings.ContainsAny(c.Name, " \t\n\r\"") {
		return specErrf(field+".name", "must be <= 64 chars with no whitespace or quotes")
	}
	a := c.Arrival
	switch a.Dist {
	case DistDet, DistPoisson:
		if a.Shape != 0 {
			return specErrf(field+".arrival.shape", "has no meaning for %q", a.Dist)
		}
	case DistGamma, DistWeibull:
		if !isFinite(a.Shape) || a.Shape < 0 || a.Shape > maxShape {
			return specErrf(field+".arrival.shape", "must be in [0, %v], got %v", float64(maxShape), a.Shape)
		}
	case "":
		return specErrf(field+".arrival.dist", "is required (det, poisson, gamma, weibull)")
	default:
		return specErrf(field+".arrival.dist", "unknown distribution %q (want det, poisson, gamma, weibull)", a.Dist)
	}
	if !isFinite(a.Rate) || a.Rate <= 0 {
		return specErrf(field+".arrival.rate", "must be finite and > 0, got %v", a.Rate)
	}
	if a.Rate > maxRate {
		return specErrf(field+".arrival.rate", "%v exceeds the %v req/s limit", a.Rate, float64(maxRate))
	}
	sz := c.Size
	switch sz.Dist {
	case SizeFixed:
		if sz.N <= 0 || sz.N > maxSize {
			return specErrf(field+".size.n", "must be in [1, %d], got %d", maxSize, sz.N)
		}
		if sz.Min != 0 || sz.Max != 0 {
			return specErrf(field+".size", "min/max have no meaning for fixed")
		}
	case SizeUniform:
		if sz.Min <= 0 || sz.Max < sz.Min || sz.Max > maxSize {
			return specErrf(field+".size", "need 1 <= min <= max <= %d, got [%d, %d]", maxSize, sz.Min, sz.Max)
		}
		if sz.N != 0 {
			return specErrf(field+".size.n", "has no meaning for uniform")
		}
	case "":
		return specErrf(field+".size.dist", "is required (fixed, uniform)")
	default:
		return specErrf(field+".size.dist", "unknown distribution %q (want fixed, uniform)", sz.Dist)
	}
	if c.KeySpace < 0 {
		return specErrf(field+".keyspace", "must be >= 0, got %d", c.KeySpace)
	}
	if c.Clients < 0 || c.Clients > maxClients {
		return specErrf(field+".clients", "must be in [0, %d], got %d", maxClients, c.Clients)
	}
	if !isFinite(c.SLOMs) || c.SLOMs < 0 {
		return specErrf(field+".slo_ms", "must be finite and >= 0, got %v", c.SLOMs)
	}
	if !isFinite(c.Weight) || c.Weight < 0 || c.Weight > maxWeight {
		return specErrf(field+".weight", "must be in [0, %v], got %v", float64(maxWeight), c.Weight)
	}
	return nil
}

// clients returns the class's virtual-client fan-out with the default
// applied.
func (c *ClassSpec) clients() int {
	if c.Clients <= 0 {
		return 4
	}
	return c.Clients
}

// Horizon returns the schedule length as a duration.
func (s *Spec) Horizon() time.Duration {
	return time.Duration(s.HorizonMs * float64(time.Millisecond))
}

// maxRequests returns the planned-request cap with defaults and the
// hard ceiling applied.
func (s *Spec) maxRequests() int {
	m := s.MaxRequests
	if m == 0 {
		m = 1 << 20
	}
	return min(m, hardMaxPlanned)
}

// Scaled returns a copy of the spec with every class's rate multiplied
// by f — the capacity sweep's lever. The copy is deep enough that
// mutating it never aliases the original.
func (s *Spec) Scaled(f float64) *Spec {
	out := *s
	out.Classes = append([]ClassSpec(nil), s.Classes...)
	out.Bursts = append([]BurstSpec(nil), s.Bursts...)
	for i := range out.Classes {
		out.Classes[i].Arrival.Rate *= f
	}
	return &out
}

// TotalRate is the spec's aggregate mean offered rate in req/s
// (bursts excluded).
func (s *Spec) TotalRate() float64 {
	var r float64
	for _, c := range s.Classes {
		r += c.Arrival.Rate
	}
	return r
}

// weight is the class's rescaling share with the default applied.
func (c *ClassSpec) weight() float64 {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// ScaledToTotal returns a copy whose class rates are redistributed to
// sum to total req/s, split by each class's Weight (unset weights
// count as 1). Arrival distributions and shapes are untouched — only
// the rates move, so a single -total-rate knob sweeps a fixed traffic
// mix across offered loads.
func (s *Spec) ScaledToTotal(total float64) (*Spec, error) {
	if !isFinite(total) || total <= 0 {
		return nil, specErrf("total_rate", "must be finite and > 0, got %v", total)
	}
	var sum float64
	for i := range s.Classes {
		sum += s.Classes[i].weight()
	}
	out := *s
	out.Classes = append([]ClassSpec(nil), s.Classes...)
	out.Bursts = append([]BurstSpec(nil), s.Bursts...)
	for i := range out.Classes {
		r := total * out.Classes[i].weight() / sum
		if r > maxRate {
			return nil, specErrf(fmt.Sprintf("classes[%d].arrival.rate", i),
				"rescaled rate %v exceeds the %v req/s limit", r, float64(maxRate))
		}
		out.Classes[i].Arrival.Rate = r
	}
	return &out, nil
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
