package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
)

// PlannedReq is one scheduled request: when it fires, what it carries.
// Together with the spec it came from, a PlannedReq reproduces its
// request body byte-for-byte: keys are regenerated from KeySeed, not
// stored, so traces stay small enough to check in.
type PlannedReq struct {
	// Class indexes the spec's Classes.
	Class int `json:"class"`
	// Client is the virtual client within the class issuing it.
	Client int `json:"client"`
	// AtNs is the planned issue instant as an offset from run start.
	AtNs int64 `json:"at_ns"`
	// N is the key count.
	N int `json:"n"`
	// KeySeed regenerates the keys (with the class's KeySpace).
	KeySeed int64 `json:"key_seed"`
}

// Trace is a fully materialized schedule: the spec that produced it
// plus every planned request in issue order. Saving and re-loading a
// trace replays the identical workload — same instants, same sizes,
// same key contents.
type Trace struct {
	Spec Spec         `json:"spec"`
	Reqs []PlannedReq `json:"reqs"`
}

// BuildTrace expands a validated spec into its schedule. Each class
// draws gaps from its own seeded stream (seed ⊕ class index), so
// adding a class never perturbs another's schedule; burst phases
// shrink the in-phase gaps by the phase multiplier. The merged
// schedule is sorted by issue instant with (class, client) as the
// tie-break, which makes the order total and the trace deterministic.
func BuildTrace(s *Spec) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	horizonNs := s.Horizon().Nanoseconds()
	reqCap := s.maxRequests()
	var reqs []PlannedReq
	for ci := range s.Classes {
		c := &s.Classes[ci]
		rng := rand.New(rand.NewSource(int64(s.Seed ^ 0x9e3779b97f4a7c15*uint64(ci+1))))
		gap := newSampler(c.Arrival)
		clients := c.clients()
		var tNs int64
		for i := 0; ; i++ {
			g := gap(rng) * 1e9 // seconds -> ns
			if m := burstMult(s.Bursts, float64(tNs)/1e6); m != 1 {
				g /= m
			}
			// Degenerate but validatable parameters (e.g. a weibull shape
			// tiny enough that the mean-normalizing scale underflows) can
			// yield NaN gaps; clamp rather than let int64(NaN) poison the
			// clock. Inf (or any gap past the horizon) just ends the class.
			if math.IsNaN(g) {
				g = 0
			}
			if g < 1 {
				g = 1 // a zero gap would freeze the clock on degenerate draws
			}
			if g >= float64(horizonNs-tNs) {
				break
			}
			tNs += int64(g)
			reqs = append(reqs, PlannedReq{
				Class:   ci,
				Client:  i % clients,
				AtNs:    tNs,
				N:       sampleSize(rng, c.Size),
				KeySeed: rng.Int63(),
			})
			if len(reqs) > reqCap {
				return nil, specErrf("", "schedule exceeds the %d-request cap (rate*horizon too large)", reqCap)
			}
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].AtNs != reqs[j].AtNs {
			return reqs[i].AtNs < reqs[j].AtNs
		}
		if reqs[i].Class != reqs[j].Class {
			return reqs[i].Class < reqs[j].Class
		}
		return reqs[i].Client < reqs[j].Client
	})
	return &Trace{Spec: *s, Reqs: reqs}, nil
}

func sampleSize(rng *rand.Rand, s SizeSpec) int {
	switch s.Dist {
	case SizeFixed:
		return s.N
	case SizeUniform:
		return s.Min + rng.Intn(s.Max-s.Min+1)
	default:
		panic("loadgen: unvalidated size dist " + s.Dist)
	}
}

// Keys regenerates the request's key payload. KeySpace == 0 sends a
// distinct permutation of 0..n-1; k > 0 draws from [0, k), so small
// keyspaces stress the duplicate/stability paths.
func (r PlannedReq) Keys(keySpace int) []int64 {
	rng := rand.New(rand.NewSource(r.KeySeed))
	keys := make([]int64, r.N)
	if keySpace == 0 {
		for i, v := range rng.Perm(r.N) {
			keys[i] = int64(v)
		}
		return keys
	}
	for i := range keys {
		keys[i] = int64(rng.Intn(keySpace))
	}
	return keys
}

// Marshal renders the trace as indented JSON, the byte-stable form the
// replay golden test pins down.
func (t *Trace) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// SaveTrace writes the trace to path.
func SaveTrace(path string, t *Trace) error {
	b, err := t.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadTrace reads and re-validates a recorded trace.
func LoadTrace(path string) (*Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := t.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i, r := range t.Reqs {
		if r.Class < 0 || r.Class >= len(t.Spec.Classes) {
			return nil, fmt.Errorf("%s: reqs[%d]: class %d out of range", path, i, r.Class)
		}
		if r.N < 1 || r.N > maxSize {
			return nil, fmt.Errorf("%s: reqs[%d]: n %d out of range", path, i, r.N)
		}
		if r.AtNs < 0 {
			return nil, fmt.Errorf("%s: reqs[%d]: negative issue offset", path, i)
		}
	}
	return &t, nil
}
