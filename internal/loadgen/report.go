package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ClassReport aggregates one class's results (or, for Totals, the
// whole run's).
type ClassReport struct {
	Name     string `json:"name"`
	Requests int    `json:"requests"`
	OK       int    `json:"ok"`
	Shed     int    `json:"shed"`
	Deadline int    `json:"deadline"`
	Errors   int    `json:"errors"`
	Unsorted int    `json:"unsorted"`
	// Latency quantiles over OK requests, milliseconds, exact
	// (computed from the full sample, not a bucketed histogram).
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	// Fairness is the Jain index (Σx)²/(n·Σx²) over per-virtual-client
	// completion counts: 1.0 when every client got equal service,
	// 1/clients when one client got everything. An empty class (no
	// completions at all) reports 1 — uniform starvation is, strictly,
	// fair.
	Fairness float64 `json:"fairness"`
	// OfferedRPS is the planned rate, AchievedRPS the completed-OK
	// rate, both over the run's wall time.
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	// MaxLagMs is the worst generator lag (actual minus planned issue
	// instant): client-side scheduling debt, not server latency.
	MaxLagMs float64 `json:"max_lag_ms"`
	// SLOMs is the class's own p99 SLO carried from the spec (0 when
	// the class inherits the sweep's global SLO).
	SLOMs float64 `json:"slo_ms,omitempty"`
}

// Report is a full run's aggregation, JSON-ready.
type Report struct {
	HorizonMs float64       `json:"horizon_ms"`
	WallMs    float64       `json:"wall_ms"`
	Seed      uint64        `json:"seed"`
	Classes   []ClassReport `json:"classes"`
	Totals    ClassReport   `json:"totals"`
}

// BuildReport aggregates a run into per-class and total reports.
func BuildReport(rr *RunResult) *Report {
	t := rr.Trace
	wallSec := float64(rr.WallNs) / 1e9
	rep := &Report{
		HorizonMs: t.Spec.HorizonMs,
		WallMs:    float64(rr.WallNs) / 1e6,
		Seed:      t.Spec.Seed,
	}
	perClass := make([][]ReqResult, len(t.Spec.Classes))
	for _, r := range rr.Results {
		perClass[r.Class] = append(perClass[r.Class], r)
	}
	for ci, c := range t.Spec.Classes {
		cr := aggregate(c.Name, perClass[ci], c.clients(), wallSec)
		cr.OfferedRPS = c.Arrival.Rate
		cr.SLOMs = c.SLOMs
		rep.Classes = append(rep.Classes, cr)
	}
	// The totals row's fairness domain is (class, client) pairs:
	// remap each class's client ids past the previous classes' so two
	// classes' client 0 don't share a bucket.
	offsets := make([]int, len(t.Spec.Classes))
	n := 0
	for i := range t.Spec.Classes {
		offsets[i] = n
		n += t.Spec.Classes[i].clients()
	}
	remapped := make([]ReqResult, len(rr.Results))
	for i, r := range rr.Results {
		r.Client += offsets[r.Class]
		remapped[i] = r
	}
	tot := aggregate("total", remapped, totalClients(&t.Spec), wallSec)
	tot.OfferedRPS = t.Spec.TotalRate()
	rep.Totals = tot
	return rep
}

// totalClients gives the totals row a fairness domain: clients are
// numbered per class, so the cross-class domain is (class, client)
// pairs, realized by offsetting each class's client ids.
func totalClients(s *Spec) int {
	n := 0
	for i := range s.Classes {
		n += s.Classes[i].clients()
	}
	return n
}

func aggregate(name string, results []ReqResult, clients int, wallSec float64) ClassReport {
	cr := ClassReport{Name: name, Requests: len(results), Fairness: 1}
	if clients < 1 {
		clients = 1
	}
	perClient := make([]float64, clients)
	var lats []int64
	var sum float64
	for _, r := range results {
		switch r.Outcome {
		case OutcomeOK:
			cr.OK++
			perClient[r.Client%clients]++
			lats = append(lats, r.LatencyNs)
			sum += float64(r.LatencyNs)
		case OutcomeShed:
			cr.Shed++
		case OutcomeDeadline:
			cr.Deadline++
		case OutcomeUnsorted:
			cr.Unsorted++
		default:
			cr.Errors++
		}
		if lag := float64(r.IssuedNs-r.PlannedNs) / 1e6; lag > cr.MaxLagMs {
			cr.MaxLagMs = lag
		}
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		cr.P50Ms = float64(quantileNs(lats, 0.50)) / 1e6
		cr.P99Ms = float64(quantileNs(lats, 0.99)) / 1e6
		cr.P999Ms = float64(quantileNs(lats, 0.999)) / 1e6
		cr.MeanMs = sum / float64(len(lats)) / 1e6
		cr.MaxMs = float64(lats[len(lats)-1]) / 1e6
		cr.Fairness = jain(perClient)
	}
	if wallSec > 0 {
		cr.AchievedRPS = float64(cr.OK) / wallSec
	}
	return cr
}

// quantileNs is the nearest-rank quantile of an ascending sample.
func quantileNs(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// jain is Jain's fairness index over per-client allocations: 1 for a
// uniform split, 1/n for a single winner; all-zero allocations report
// 1 (see ClassReport.Fairness).
func jain(x []float64) float64 {
	var s, sq float64
	for _, v := range x {
		s += v
		sq += v * v
	}
	if sq == 0 {
		return 1
	}
	return s * s / (float64(len(x)) * sq)
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() []byte {
	b, _ := json.MarshalIndent(r, "", "  ")
	return append(b, '\n')
}

// Table renders the report as an aligned human table, one row per
// class plus the totals row.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %6s %6s %5s %5s %9s %9s %9s %7s %9s\n",
		"class", "offered", "ok/s", "ok", "shed", "dl", "err",
		"p50(ms)", "p99(ms)", "p999(ms)", "jain", "maxlag(ms)")
	row := func(c ClassReport) {
		fmt.Fprintf(&b, "%-12s %8.1f %8.1f %6d %6d %5d %5d %9.2f %9.2f %9.2f %7.3f %9.2f\n",
			c.Name, c.OfferedRPS, c.AchievedRPS, c.OK, c.Shed, c.Deadline,
			c.Errors+c.Unsorted, c.P50Ms, c.P99Ms, c.P999Ms, c.Fairness, c.MaxLagMs)
	}
	for _, c := range r.Classes {
		row(c)
	}
	row(r.Totals)
	return b.String()
}
