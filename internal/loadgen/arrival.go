package loadgen

import (
	"math"
	"math/rand"
)

// sampler draws interarrival gaps in seconds for one class. Samplers
// are deterministic functions of their rand.Rand, so a seeded stream
// reproduces the same gap sequence on every host.
type sampler func(rng *rand.Rand) float64

// newSampler builds the gap sampler for an already-validated arrival
// spec. All four distributions share mean 1/rate, so the offered load
// matches the spec's rate regardless of shape; the shape only moves
// the variance (gamma k<1 and weibull k<1 are burstier than poisson,
// k>1 smoother).
func newSampler(a ArrivalSpec) sampler {
	mean := 1 / a.Rate
	switch a.Dist {
	case DistDet:
		return func(*rand.Rand) float64 { return mean }
	case DistPoisson:
		return func(rng *rand.Rand) float64 { return rng.ExpFloat64() * mean }
	case DistGamma:
		k := a.Shape
		if k == 0 {
			k = 1
		}
		// Gap ~ Gamma(k, theta) with k*theta = mean.
		theta := mean / k
		return func(rng *rand.Rand) float64 { return gammaSample(rng, k) * theta }
	case DistWeibull:
		k := a.Shape
		if k == 0 {
			k = 1
		}
		// Scale lambda so the mean lambda*Gamma(1+1/k) equals 1/rate.
		lambda := mean / math.Gamma(1+1/k)
		inv := 1 / k
		return func(rng *rand.Rand) float64 {
			// Inverse transform; 1-U keeps U=0 (possible) out of the log.
			return lambda * math.Pow(-math.Log(1-rng.Float64()), inv)
		}
	default:
		// Validate rejects everything else; a fallthrough here is a bug.
		panic("loadgen: unvalidated arrival dist " + a.Dist)
	}
}

// gammaSample draws from Gamma(shape k, scale 1) with the
// Marsaglia–Tsang squeeze for k >= 1 and the Ahrens–Dieter boost
// U^(1/k) * Gamma(k+1) for k < 1.
func gammaSample(rng *rand.Rand, k float64) float64 {
	if k < 1 {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return gammaSample(rng, k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// burstMult returns the rate multiplier in effect at offset t (in
// milliseconds) under the spec's burst phases. Overlapping bursts
// compound.
func burstMult(bursts []BurstSpec, tMs float64) float64 {
	m := 1.0
	for _, b := range bursts {
		if tMs >= b.StartMs && tMs < b.StartMs+b.DurMs {
			m *= b.Mult
		}
	}
	return m
}
