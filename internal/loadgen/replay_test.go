package loadgen

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"wfsort/internal/model"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata goldens from current behavior")

// replaySpec is the seeded workload the replay guarantees are pinned
// on: ~200 planned requests across two classes, all four knobs in
// play (poisson + gamma arrivals, fixed + uniform sizes, duplicates,
// a burst).
func replaySpec() *Spec {
	return &Spec{
		Seed:      7,
		HorizonMs: 1000,
		Classes: []ClassSpec{
			{
				Name:     "small",
				Arrival:  ArrivalSpec{Dist: DistPoisson, Rate: 150},
				Size:     SizeSpec{Dist: SizeFixed, N: 32},
				KeySpace: 50,
				Clients:  3,
			},
			{
				Name:    "bulk",
				Arrival: ArrivalSpec{Dist: DistGamma, Rate: 50, Shape: 0.5},
				Size:    SizeSpec{Dist: SizeUniform, Min: 100, Max: 400},
			},
		},
		Bursts: []BurstSpec{{StartMs: 500, DurMs: 200, Mult: 2}},
	}
}

// TestReplayDeterministic is the replay golden: building the same
// seeded trace twice yields identical per-request issue timestamps
// (and sizes and key seeds), and the aggregate histograms over the
// two schedules are identical bucket for bucket.
func TestReplayDeterministic(t *testing.T) {
	t1, err := BuildTrace(replaySpec())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := BuildTrace(replaySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Reqs) < 150 || len(t1.Reqs) > 300 {
		t.Fatalf("replay spec planned %d requests, want ~200", len(t1.Reqs))
	}
	if !reflect.DeepEqual(t1.Reqs, t2.Reqs) {
		t.Fatal("two builds of the same seeded spec diverged")
	}
	for i := range t1.Reqs {
		if t1.Reqs[i].AtNs != t2.Reqs[i].AtNs {
			t.Fatalf("issue timestamp %d diverged: %d vs %d", i, t1.Reqs[i].AtNs, t2.Reqs[i].AtNs)
		}
	}
	h1, h2 := scheduleHistograms(t1), scheduleHistograms(t2)
	for k := range h1 {
		if !reflect.DeepEqual(h1[k], h2[k]) {
			t.Fatalf("aggregate %s histogram diverged between identical schedules", k)
		}
	}
	// Key payloads replay byte-for-byte too.
	for i := 0; i < 10; i++ {
		k1 := t1.Reqs[i].Keys(t1.Spec.Classes[t1.Reqs[i].Class].KeySpace)
		k2 := t2.Reqs[i].Keys(t2.Spec.Classes[t2.Reqs[i].Class].KeySpace)
		if !reflect.DeepEqual(k1, k2) {
			t.Fatalf("request %d keys diverged on replay", i)
		}
	}
}

// scheduleHistograms aggregates a schedule into its interarrival and
// size histograms — the distributional fingerprint replay must
// preserve exactly.
func scheduleHistograms(tr *Trace) map[string]*model.Histogram {
	gaps, sizes := &model.Histogram{}, &model.Histogram{}
	for i, r := range tr.Reqs {
		if i > 0 {
			gaps.Observe(r.AtNs - tr.Reqs[i-1].AtNs)
		}
		sizes.Observe(int64(r.N))
	}
	return map[string]*model.Histogram{"interarrival": gaps, "size": sizes}
}

// TestReplayGoldenFile pins the trace bytes to a checked-in golden:
// any change to the schedule generator that moves an issue timestamp
// shows up as a diff here, not as an unexplained latency shift in a
// capacity run.
func TestReplayGoldenFile(t *testing.T) {
	tr, err := BuildTrace(replaySpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_seed7.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace bytes diverged from %s (%d vs %d bytes) — rerun with -update only if the schedule change is intentional",
			path, len(got), len(want))
	}
}

// TestTraceSaveLoadRoundTrip checks a recorded trace survives the file
// system byte-for-byte: load → re-marshal → identical bytes.
func TestTraceSaveLoadRoundTrip(t *testing.T) {
	tr, err := BuildTrace(replaySpec())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := tr.Marshal()
	b2, _ := back.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Fatal("trace did not round-trip byte-identically")
	}
}

func TestLoadTraceRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not json":    `{{{`,
		"bad spec":    `{"spec": {"horizon_ms": 0, "classes": []}, "reqs": []}`,
		"class range": `{"spec": {"horizon_ms": 10, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":4}}]}, "reqs": [{"class": 5, "at_ns": 1, "n": 4}]}`,
		"negative at": `{"spec": {"horizon_ms": 10, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":4}}]}, "reqs": [{"class": 0, "at_ns": -1, "n": 4}]}`,
		"zero-size":   `{"spec": {"horizon_ms": 10, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":4}}]}, "reqs": [{"class": 0, "at_ns": 1, "n": 0}]}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(dir, "t.json")
			if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadTrace(p); err == nil {
				t.Fatal("corrupt trace loaded without error")
			}
		})
	}
}
