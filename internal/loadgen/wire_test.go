package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"testing"

	"wfsort/internal/wire"
)

// codecHandler is a minimal /sort handler speaking both dialects: it
// records each request's Content-Type and answers in kind.
func codecHandler(record func(contentType string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ct := r.Header.Get("Content-Type")
		record(ct)
		var keys []int64
		if wire.IsWire(ct) {
			var err error
			keys, _, err = wire.ReadBlock(r.Body, wire.KindRequest, 0)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			w.Header().Set("Content-Type", wire.ContentType)
			wire.WriteBlock(w, wire.KindReply, keys)
			return
		}
		var in sortRequestBody
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sort.Slice(in.Keys, func(i, j int) bool { return in.Keys[i] < in.Keys[j] })
		json.NewEncoder(w).Encode(sortResponseBody{Sorted: in.Keys})
	})
}

// TestHandlerTargetWire: with Wire on, the target sends binary blocks
// and decodes binary replies; with it off, JSON both ways. The decode
// keys off the reply's Content-Type, so either answer works.
func TestHandlerTargetWire(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	h := codecHandler(func(ct string) {
		mu.Lock()
		seen = append(seen, ct)
		mu.Unlock()
	})
	for _, wireOn := range []bool{true, false} {
		target := &HandlerTarget{Handler: h, Wire: wireOn}
		sorted, status, err := target.Sort(context.Background(), "c", []int64{9, -2, 5})
		if err != nil || status != http.StatusOK {
			t.Fatalf("wire=%v: status %d err %v", wireOn, status, err)
		}
		if len(sorted) != 3 || sorted[0] != -2 || sorted[2] != 9 {
			t.Fatalf("wire=%v: sorted = %v", wireOn, sorted)
		}
	}
	if len(seen) != 2 || !wire.IsWire(seen[0]) || wire.IsWire(seen[1]) {
		t.Fatalf("request content types %v: want [binary, json]", seen)
	}
}

// TestHandlerTargetWireAgainstJSONServer: a Wire target talking to a
// JSON-only server still decodes the reply — codec negotiation must
// degrade, not break, when the far side ignores the binary dialect.
func TestHandlerTargetWireAgainstJSONServer(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Ignores the request codec entirely and answers fixed JSON.
		json.NewEncoder(w).Encode(sortResponseBody{Sorted: []int64{1, 2, 3}})
	})
	target := &HandlerTarget{Handler: h, Wire: true}
	sorted, status, err := target.Sort(context.Background(), "c", []int64{3, 2, 1})
	if err != nil || status != http.StatusOK {
		t.Fatalf("status %d err %v", status, err)
	}
	if len(sorted) != 3 || sorted[0] != 1 {
		t.Fatalf("sorted = %v", sorted)
	}
}
