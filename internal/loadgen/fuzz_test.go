package loadgen

import (
	"errors"
	"testing"
)

// FuzzWorkloadSpec feeds the spec parser arbitrary bytes: it must
// never panic, and every rejection must be a typed *SpecError (the
// contract that keeps cmd/loadgen's error reporting structured).
// Accepted specs must additionally survive BuildTrace without
// panicking — parsing is the only trust boundary.
func FuzzWorkloadSpec(f *testing.F) {
	seeds := []string{
		validSpec,
		``,
		`{}`,
		`null`,
		`[1,2,3]`,
		`{"horizon_ms": 1000, "classes": []}`,
		`{"horizon_ms": 1e308, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":4}}]}`,
		`{"horizon_ms": 100, "classes": [{"name":"a","arrival":{"dist":"poisson","rate":-3},"size":{"dist":"fixed","n":4}}]}`,
		`{"horizon_ms": 100, "classes": [{"name":"a","arrival":{"dist":"gamma","rate":1,"shape":1e99},"size":{"dist":"fixed","n":4}}]}`,
		`{"horizon_ms": 100, "classes": [{"name":"a","arrival":{"dist":"weibull","rate":1,"shape":0.0001},"size":{"dist":"fixed","n":4}}]}`,
		`{"horizon_ms": 100, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"uniform","min":-5,"max":-1}}]}`,
		`{"horizon_ms": 100, "max_requests": -1, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":4}}]}`,
		`{"horizon_ms": 599999, "classes": [{"name":"a","arrival":{"dist":"det","rate":9999999},"size":{"dist":"fixed","n":4194304}}]}`,
		`{"horizon_ms": 100, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":4}}], "bursts":[{"start_ms":0,"dur_ms":1e308,"mult":1e308}]}`,
		`{"seed": 18446744073709551615, "horizon_ms": 1, "classes": [{"name":"a","arrival":{"dist":"det","rate":1},"size":{"dist":"fixed","n":1}}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("ParseSpec error is not a *SpecError: %T %v", err, err)
			}
			return
		}
		// A spec the parser accepted must be generable. Cap the work so
		// the fuzzer explores structure, not CPU: shrink to a schedule
		// preview rather than materializing minutes of traffic.
		preview := *s
		preview.MaxRequests = 10_000
		if preview.HorizonMs > 1000 {
			preview.HorizonMs = 1000
		}
		tr, err := BuildTrace(&preview)
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("BuildTrace error is not a *SpecError: %T %v", err, err)
			}
			return
		}
		for i, r := range tr.Reqs {
			if r.AtNs < 0 || r.N < 1 {
				t.Fatalf("planned request %d invalid: %+v", i, r)
			}
			if i > 0 && tr.Reqs[i-1].AtNs > r.AtNs {
				t.Fatalf("schedule not sorted at %d", i)
			}
		}
	})
}
