package loadgen

import (
	"math"
	"strings"
	"testing"
)

func TestQuantileNs(t *testing.T) {
	lat := make([]int64, 1000)
	for i := range lat {
		lat[i] = int64(i + 1) // 1..1000, sorted
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 1}, {0.5, 500}, {0.99, 990}, {0.999, 999}, {1, 1000},
	}
	for _, c := range cases {
		if got := quantileNs(lat, c.q); got != c.want {
			t.Fatalf("quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if quantileNs(nil, 0.5) != 0 {
		t.Fatal("empty sample must report 0")
	}
}

func TestJain(t *testing.T) {
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{10, 10, 10, 10}, 1},
		{[]float64{40, 0, 0, 0}, 0.25},
		{[]float64{0, 0}, 1}, // uniform starvation: no unfairness evidence
		{[]float64{30, 10}, (40.0 * 40) / (2 * (900 + 100))},
	}
	for _, c := range cases {
		if got := jain(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("jain(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestBuildReportAggregates(t *testing.T) {
	tr := quickTrace(t, 200, 100)
	results := make([]ReqResult, 0, len(tr.Reqs))
	for i := range tr.Reqs {
		r := ReqResult{
			Class:     0,
			Client:    tr.Reqs[i].Client,
			PlannedNs: tr.Reqs[i].AtNs,
			IssuedNs:  tr.Reqs[i].AtNs + 1000,
			LatencyNs: int64((i + 1)) * 1_000_000, // 1ms, 2ms, ...
			Status:    200,
			Outcome:   OutcomeOK,
		}
		if i%5 == 0 {
			r.Outcome = OutcomeShed
			r.Status = 429
		}
		results = append(results, r)
	}
	rep := BuildReport(&RunResult{Trace: tr, Results: results, WallNs: int64(100 * 1e6)})
	tot := rep.Totals
	if tot.Requests != len(results) || tot.Shed == 0 || tot.OK+tot.Shed != tot.Requests {
		t.Fatalf("counts off: %+v", tot)
	}
	if tot.P50Ms <= 0 || tot.P99Ms < tot.P50Ms || tot.P999Ms < tot.P99Ms || tot.MaxMs < tot.P999Ms {
		t.Fatalf("quantiles not monotone: %+v", tot)
	}
	if tot.AchievedRPS != float64(tot.OK)/0.1 {
		t.Fatalf("achieved rps %v for %d ok in 100ms", tot.AchievedRPS, tot.OK)
	}
	if tot.MaxLagMs != 0.001 {
		t.Fatalf("max lag %v ms, want 0.001", tot.MaxLagMs)
	}
	if len(rep.Classes) != 1 || rep.Classes[0].OK != tot.OK {
		t.Fatalf("class rows off: %+v", rep.Classes)
	}
}

func TestReportRenders(t *testing.T) {
	tr := quickTrace(t, 200, 100)
	rep := BuildReport(&RunResult{Trace: tr, Results: []ReqResult{
		{Outcome: OutcomeOK, LatencyNs: 1e6, Status: 200},
	}, WallNs: 1e8})
	tab := rep.Table()
	if !strings.Contains(tab, "c") || !strings.Contains(tab, "total") || !strings.Contains(tab, "p99") {
		t.Fatalf("table missing rows:\n%s", tab)
	}
	js := string(rep.JSON())
	for _, want := range []string{`"p99_ms"`, `"fairness"`, `"totals"`} {
		if !strings.Contains(js, want) {
			t.Fatalf("JSON missing %s:\n%s", want, js)
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		OutcomeOK: "ok", OutcomeShed: "shed", OutcomeDeadline: "deadline",
		OutcomeError: "error", OutcomeUnsorted: "unsorted", Outcome(99): "unknown",
	} {
		if o.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", o, o, want)
		}
	}
}
