package loadgen

import (
	"context"
	"net/http"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// fakeTarget answers every request by actually sorting (or corrupting)
// the keys, with a configurable status schedule — the pure-logic twin
// of a real server.
type fakeTarget struct {
	calls   atomic.Int64
	status  func(call int64) int
	corrupt bool
	delay   time.Duration
}

func (f *fakeTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	call := f.calls.Add(1)
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	st := http.StatusOK
	if f.status != nil {
		st = f.status(call)
	}
	if st != http.StatusOK {
		return nil, st, nil
	}
	out := append([]int64(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	if f.corrupt && len(out) > 0 {
		out[0]++
	}
	return out, st, nil
}

func quickTrace(t *testing.T, rate float64, horizonMs float64) *Trace {
	t.Helper()
	tr, err := BuildTrace(&Spec{
		Seed: 3, HorizonMs: horizonMs,
		Classes: []ClassSpec{{
			Name:     "c",
			Arrival:  ArrivalSpec{Dist: DistDet, Rate: rate},
			Size:     SizeSpec{Dist: SizeFixed, N: 16},
			KeySpace: 8,
			Clients:  2,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunAllOK(t *testing.T) {
	tr := quickTrace(t, 500, 200)
	ft := &fakeTarget{}
	res := Run(context.Background(), tr, ft)
	if len(res.Results) != len(tr.Reqs) {
		t.Fatalf("issued %d of %d", len(res.Results), len(tr.Reqs))
	}
	rep := BuildReport(res)
	if rep.Totals.OK != len(tr.Reqs) || rep.Totals.Errors+rep.Totals.Unsorted+rep.Totals.Shed != 0 {
		t.Fatalf("totals: %+v", rep.Totals)
	}
	if rep.Totals.Fairness < 0.99 {
		t.Fatalf("round-robin clients must be perfectly fair, got %v", rep.Totals.Fairness)
	}
	// Open-loop issue instants track the plan.
	for _, r := range res.Results {
		if r.IssuedNs < r.PlannedNs {
			t.Fatalf("request issued %dns before its plan", r.PlannedNs-r.IssuedNs)
		}
	}
}

func TestRunDetectsCorruption(t *testing.T) {
	tr := quickTrace(t, 300, 100)
	res := Run(context.Background(), tr, &fakeTarget{corrupt: true})
	rep := BuildReport(res)
	if rep.Totals.Unsorted == 0 {
		t.Fatal("corrupted bodies not detected")
	}
	if rep.Totals.OK != 0 {
		t.Fatalf("corrupted bodies counted OK: %+v", rep.Totals)
	}
}

func TestRunClassifiesStatuses(t *testing.T) {
	tr := quickTrace(t, 400, 100)
	ft := &fakeTarget{status: func(call int64) int {
		switch call % 4 {
		case 0:
			return http.StatusTooManyRequests
		case 1:
			return http.StatusServiceUnavailable
		case 2:
			return http.StatusGatewayTimeout
		default:
			return http.StatusOK
		}
	}}
	rep := BuildReport(Run(context.Background(), tr, ft))
	n := len(tr.Reqs)
	if rep.Totals.OK+rep.Totals.Shed+rep.Totals.Deadline != n || rep.Totals.Shed == 0 || rep.Totals.Deadline == 0 {
		t.Fatalf("classification off: %+v (n=%d)", rep.Totals, n)
	}
}

func TestRunCancelStopsIssuing(t *testing.T) {
	tr := quickTrace(t, 100, 10_000) // 1000 planned over 10s
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res := Run(ctx, tr, &fakeTarget{})
	if len(res.Results) >= len(tr.Reqs)/2 {
		t.Fatalf("cancel did not stop the generator: %d of %d issued", len(res.Results), len(tr.Reqs))
	}
}

func TestVerifySorted(t *testing.T) {
	sum := func(k []int64) (s, x int64) {
		for _, v := range k {
			s += v
			x ^= v
		}
		return
	}
	sent := []int64{3, 1, 2, 2}
	s, x := sum(sent)
	if got := verifySorted(sent, []int64{1, 2, 2, 3}, s, x); got != OutcomeOK {
		t.Fatalf("valid response judged %v", got)
	}
	if got := verifySorted(sent, []int64{1, 2, 3, 2}, s, x); got != OutcomeUnsorted {
		t.Fatal("out-of-order response passed")
	}
	if got := verifySorted(sent, []int64{1, 2, 3}, s, x); got != OutcomeUnsorted {
		t.Fatal("short response passed")
	}
	// Same order, different multiset (sum-preserving swap caught by xor).
	if got := verifySorted(sent, []int64{1, 1, 3, 3}, s, x); got != OutcomeUnsorted {
		t.Fatal("multiset change passed")
	}
}
