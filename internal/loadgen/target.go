package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
)

// ClassHeader carries the request's traffic class to the server, which
// keys its per-class counters on it.
const ClassHeader = "X-Sort-Class"

// Target is the seam the issue engine fires requests through. Sort
// posts one request and returns the sorted keys (nil unless the status
// is 200) plus the HTTP status code. Transport-level failures return
// an error; application-level rejections (429/503/504/...) are a
// status, not an error — the runner classifies them.
//
// Implementations must be safe for concurrent use: the open-loop
// engine issues from many goroutines at once.
type Target interface {
	Sort(ctx context.Context, class string, keys []int64) (sorted []int64, status int, err error)
}

type sortRequestBody struct {
	Keys []int64 `json:"keys"`
}

type sortResponseBody struct {
	Sorted []int64 `json:"sorted"`
}

// HTTPTarget drives a live sort service over the network.
type HTTPTarget struct {
	// URL is the service base ("http://host:port"); /sort is appended.
	URL string
	// Client is the HTTP client (default http.DefaultClient). Give it
	// a generous Timeout: the open-loop engine must never block on a
	// slow response, and per-request deadlines belong to the server.
	Client *http.Client
}

func (t *HTTPTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	body, err := json.Marshal(sortRequestBody{Keys: keys})
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+"/sort", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ClassHeader, class)
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, nil
	}
	var out sortResponseBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("decoding response: %w", err)
	}
	return out.Sorted, resp.StatusCode, nil
}

// HandlerTarget drives an http.Handler in-process — no sockets, no
// real HTTP stack — which is what makes race-detector runs of the full
// serving path cheap. internal/server's Handler() plugs in directly.
type HandlerTarget struct {
	Handler http.Handler
}

func (t *HandlerTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	body, err := json.Marshal(sortRequestBody{Keys: keys})
	if err != nil {
		return nil, 0, err
	}
	req := httptest.NewRequest(http.MethodPost, "/sort", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ClassHeader, class)
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, rec.Code, nil
	}
	var out sortResponseBody
	if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
		return nil, rec.Code, fmt.Errorf("decoding response: %w", err)
	}
	return out.Sorted, rec.Code, nil
}
