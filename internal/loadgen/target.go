package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"

	"wfsort/internal/wire"
)

// ClassHeader carries the request's traffic class to the server, which
// keys its per-class counters on it.
const ClassHeader = "X-Sort-Class"

// TraceHeader carries the request's end-to-end trace ID; the server
// accepts it, stamps the request's span with it, and echoes it back.
const TraceHeader = "X-Trace-Id"

// traceKey carries a trace ID through a context (see WithTraceID).
type traceKey struct{}

// WithTraceID returns a context that makes the bundled Targets stamp
// the request with the given trace ID. A context value rather than a
// Sort parameter: the Target seam predates the trace plane, and every
// fake in the tests would otherwise need a signature change.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom extracts the trace ID installed by WithTraceID, if any.
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// Target is the seam the issue engine fires requests through. Sort
// posts one request and returns the sorted keys (nil unless the status
// is 200) plus the HTTP status code. Transport-level failures return
// an error; application-level rejections (429/503/504/...) are a
// status, not an error — the runner classifies them.
//
// Implementations must be safe for concurrent use: the open-loop
// engine issues from many goroutines at once.
type Target interface {
	Sort(ctx context.Context, class string, keys []int64) (sorted []int64, status int, err error)
}

type sortRequestBody struct {
	Keys []int64 `json:"keys"`
}

type sortResponseBody struct {
	Sorted []int64 `json:"sorted"`
}

// encodeSortBody builds one /sort request body in the chosen codec.
func encodeSortBody(wireOn bool, keys []int64) ([]byte, string, error) {
	if wireOn {
		return wire.AppendBlock(nil, wire.KindRequest, keys), wire.ContentType, nil
	}
	body, err := json.Marshal(sortRequestBody{Keys: keys})
	return body, "application/json", err
}

// decodeSortBody decodes a 200 /sort reply by its Content-Type, so a
// wire-negotiated run and a JSON run share the rest of the engine.
func decodeSortBody(contentType string, body io.Reader) ([]int64, error) {
	if wire.IsWire(contentType) {
		sorted, _, err := wire.ReadBlock(body, wire.KindReply, 0)
		if err != nil {
			return nil, fmt.Errorf("decoding response: %w", err)
		}
		return sorted, nil
	}
	var out sortResponseBody
	if err := json.NewDecoder(body).Decode(&out); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return out.Sorted, nil
}

// StageSummary is one serving stage's latency summary as the server
// attributes it (the "stages" block of /metrics).
type StageSummary struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// StageReporter is an optional Target capability: after a run, the
// server-side per-stage latency attribution, keyed by stage name. The
// capacity sweep uses it to report where a request's time went at the
// knee — a breakdown measured on the server's clock, complementing the
// client-measured totals.
type StageReporter interface {
	Stages() (map[string]StageSummary, error)
}

// metricsStages is the slice of /metrics both bundled targets decode.
type metricsStages struct {
	Stages map[string]StageSummary `json:"stages"`
}

// HTTPTarget drives a live sort service over the network.
type HTTPTarget struct {
	// URL is the service base ("http://host:port"); /sort is appended.
	URL string
	// Client is the HTTP client (default http.DefaultClient). Give it
	// a generous Timeout: the open-loop engine must never block on a
	// slow response, and per-request deadlines belong to the server.
	Client *http.Client
	// Wire switches requests and replies to the binary codec, so load
	// runs can measure the serving stack under either dialect.
	Wire bool
}

func (t *HTTPTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	body, contentType, err := encodeSortBody(t.Wire, keys)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.URL+"/sort", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ClassHeader, class)
	if id := TraceIDFrom(ctx); id != "" {
		req.Header.Set(TraceHeader, id)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, nil
	}
	sorted, err := decodeSortBody(resp.Header.Get("Content-Type"), resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return sorted, resp.StatusCode, nil
}

// Stages fetches the server's per-stage latency attribution from
// /metrics.
func (t *HTTPTarget) Stages() (map[string]StageSummary, error) {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(t.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	var m metricsStages
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m.Stages, nil
}

// HandlerTarget drives an http.Handler in-process — no sockets, no
// real HTTP stack — which is what makes race-detector runs of the full
// serving path cheap. internal/server's Handler() plugs in directly.
type HandlerTarget struct {
	Handler http.Handler
	// Wire switches requests and replies to the binary codec, as on
	// HTTPTarget.
	Wire bool
}

func (t *HandlerTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	body, contentType, err := encodeSortBody(t.Wire, keys)
	if err != nil {
		return nil, 0, err
	}
	req := httptest.NewRequest(http.MethodPost, "/sort", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ClassHeader, class)
	if id := TraceIDFrom(ctx); id != "" {
		req.Header.Set(TraceHeader, id)
	}
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, rec.Code, nil
	}
	sorted, err := decodeSortBody(rec.Header().Get("Content-Type"), rec.Body)
	if err != nil {
		return nil, rec.Code, err
	}
	return sorted, rec.Code, nil
}

// FuncTarget adapts a plain function — typically a cluster
// coordinator's Sort, bypassing even its HTTP front end — to the
// Target seam. A non-nil error counts as a transport failure; to model
// an application-level rejection return (nil, status, nil).
type FuncTarget func(ctx context.Context, class string, keys []int64) ([]int64, int, error)

func (f FuncTarget) Sort(ctx context.Context, class string, keys []int64) ([]int64, int, error) {
	return f(ctx, class, keys)
}

// Stages fetches the per-stage attribution from the in-process
// handler's /metrics.
func (t *HandlerTarget) Stages() (map[string]StageSummary, error) {
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", rec.Code)
	}
	var m metricsStages
	if err := json.NewDecoder(rec.Body).Decode(&m); err != nil {
		return nil, err
	}
	return m.Stages, nil
}
