package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"
)

// sortingHandler is a minimal /sort handler that records the trace
// header of every request it serves.
func sortingHandler(record func(traceID string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		record(r.Header.Get(TraceHeader))
		var in sortRequestBody
		if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		sort.Slice(in.Keys, func(i, j int) bool { return in.Keys[i] < in.Keys[j] })
		json.NewEncoder(w).Encode(sortResponseBody{Sorted: in.Keys})
	})
}

// TestTraceIDContextSeam: WithTraceID round-trips, and both bundled
// targets stamp the header from it.
func TestTraceIDContextSeam(t *testing.T) {
	ctx := WithTraceID(context.Background(), "lg-42")
	if got := TraceIDFrom(ctx); got != "lg-42" {
		t.Fatalf("TraceIDFrom = %q", got)
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("bare context trace ID = %q, want empty", got)
	}

	var mu sync.Mutex
	var seen []string
	h := sortingHandler(func(id string) {
		mu.Lock()
		seen = append(seen, id)
		mu.Unlock()
	})
	target := &HandlerTarget{Handler: h}
	sorted, status, err := target.Sort(ctx, "c", []int64{3, 1, 2})
	if err != nil || status != http.StatusOK {
		t.Fatalf("sort: status %d err %v", status, err)
	}
	if len(sorted) != 3 || sorted[0] != 1 {
		t.Fatalf("sorted = %v", sorted)
	}
	if len(seen) != 1 || seen[0] != "lg-42" {
		t.Fatalf("handler saw trace headers %v, want [lg-42]", seen)
	}
	// Without the context value, no header is sent.
	if _, _, err := target.Sort(context.Background(), "c", []int64{1}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[1] != "" {
		t.Fatalf("header-less request stamped %q", seen[1])
	}
}

// TestRunStampsTraceIDs: the open-loop engine stamps every request
// deterministically ("lg-<index>") and records the ID on its result,
// so a run's records cross-reference the server's /trace surface.
func TestRunStampsTraceIDs(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	h := sortingHandler(func(id string) {
		mu.Lock()
		seen[id] = true
		mu.Unlock()
	})
	tr := quickTrace(t, 200, 100)
	res := Run(context.Background(), tr, &HandlerTarget{Handler: h})
	if len(res.Results) == 0 {
		t.Fatal("no requests issued")
	}
	for i, r := range res.Results {
		want := fmt.Sprintf("lg-%d", i)
		if r.TraceID != want {
			t.Fatalf("result %d: trace ID %q, want %q", i, r.TraceID, want)
		}
		if !seen[want] {
			t.Fatalf("server never saw trace ID %q", want)
		}
		if r.Outcome != OutcomeOK {
			t.Fatalf("result %d: outcome %v", i, r.Outcome)
		}
	}
}

// TestHandlerTargetStages: the StageReporter capability decodes the
// server's /metrics stage block.
func TestHandlerTargetStages(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `{"stages":{"sort":{"count":3,"p50_ms":1,"p99_ms":2.5,"mean_ms":1.2}}}`)
	})
	st, err := (&HandlerTarget{Handler: h}).Stages()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := st["sort"]
	if !ok {
		t.Fatalf("stages = %v", st)
	}
	if got.Count != 3 || got.P99Ms != 2.5 || got.MeanMs != 1.2 {
		t.Fatalf("sort stage = %+v", got)
	}
}
