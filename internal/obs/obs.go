package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"wfsort/internal/model"
)

// Config sizes the observability plane. The zero value picks the
// defaults below; a zero Watchdog disables the progress watchdog.
type Config struct {
	// RingCap is the event capacity of each incarnation's ring
	// (default 4096). A full ring overwrites its oldest events and
	// counts the drops.
	RingCap int
	// SnapshotEvery is the op-ordinal snapshot period (default 1024):
	// every that many operations the incarnation records an EvSnapshot
	// and publishes its ordinal to the watchdog.
	SnapshotEvery int64
	// Watchdog is the progress-poll interval; 0 disables the watchdog.
	Watchdog time.Duration
	// StallIntervals is how many consecutive polls a live processor's
	// ordinal may sit still before the watchdog flags a violation
	// (default 3).
	StallIntervals int
}

func (c Config) withDefaults() Config {
	if c.RingCap <= 0 {
		c.RingCap = 4096
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1024
	}
	if c.StallIntervals <= 0 {
		c.StallIntervals = 3
	}
	return c
}

// Violation is one watchdog finding: a live processor whose op ordinal
// did not advance for Stuck time. On a wait-free algorithm under a
// fault-free scheduler this cannot happen while work remains, so a
// violation means either an injected fault (a blocked/stalled
// processor, which is the watchdog working as intended) or a genuine
// progress bug.
type Violation struct {
	PID   int           `json:"pid"`
	Op    int64         `json:"op"`    // the ordinal it is stuck at
	Stuck time.Duration `json:"stuck"` // how long it sat still when flagged
}

// pidCell is the per-processor state shared between incarnations, the
// watchdog and the live endpoint. Written with atomics because readers
// (watchdog, /metrics) run concurrently with the owning goroutine.
type pidCell struct {
	op   atomic.Int64 // latest published op ordinal
	live atomic.Int32 // running incarnations (0 or 1; transiently 2 during respawn)
	_    [6]int64     // keep cells off each other's cache lines
}

// Observer is the observability plane for one native run. Create with
// New, pass as native.Config.Observer; like the runtime it drives at
// most one run. All exported read methods are safe during the run; the
// trace/metrics exports want the run finished (Runtime.Run returning
// is the synchronization point).
type Observer struct {
	cfg   Config
	start time.Time

	mu         sync.Mutex
	procs      []*ProcObs // every incarnation, in spawn order
	cells      []pidCell
	violations []Violation
	progress   func() (sized, placed int)
	stop       chan struct{}
	stopped    sync.WaitGroup
	started    bool
	finished   atomic.Bool
}

// New builds an observer.
func New(cfg Config) *Observer {
	return &Observer{cfg: cfg.withDefaults(), start: time.Now()}
}

// now is the observer's monotonic clock: nanoseconds since New.
func (o *Observer) now() int64 { return int64(time.Since(o.start)) }

// SetProgress installs a live progress probe — typically a closure over
// core.Sorter.LiveProgress or lowcont.Sorter.LiveProgress and the
// runtime's memory — surfaced by the /metrics endpoint. The probe is
// called from the serving goroutine concurrently with the run, so it
// must only use atomic reads.
func (o *Observer) SetProgress(f func() (sized, placed int)) {
	o.mu.Lock()
	o.progress = f
	o.mu.Unlock()
}

// RunStart is called by the native runtime as Run begins. It sizes the
// per-processor cells and starts the watchdog, if configured.
func (o *Observer) RunStart(p int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		panic("obs: Observer reused across runs; create one per run")
	}
	o.started = true
	o.cells = make([]pidCell, p)
	if o.cfg.Watchdog > 0 {
		o.stop = make(chan struct{})
		o.stopped.Add(1)
		go o.watch()
	}
}

// RunEnd is called by the native runtime after every goroutine has
// returned; it stops the watchdog.
func (o *Observer) RunEnd() {
	o.finished.Store(true)
	o.mu.Lock()
	stop := o.stop
	o.stop = nil
	o.mu.Unlock()
	if stop != nil {
		close(stop)
		o.stopped.Wait()
	}
}

// watch polls every live processor's published op ordinal and records a
// Violation when one sits still for StallIntervals consecutive polls.
func (o *Observer) watch() {
	defer o.stopped.Done()
	ticker := time.NewTicker(o.cfg.Watchdog)
	defer ticker.Stop()
	last := make([]int64, len(o.cells))
	still := make([]int, len(o.cells))
	flagged := make([]bool, len(o.cells))
	o.mu.Lock()
	stop := o.stop
	o.mu.Unlock()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		for pid := range o.cells {
			c := &o.cells[pid]
			if c.live.Load() == 0 {
				still[pid] = 0
				continue
			}
			cur := c.op.Load()
			if cur != last[pid] {
				last[pid] = cur
				still[pid] = 0
				flagged[pid] = false
				continue
			}
			still[pid]++
			if still[pid] >= o.cfg.StallIntervals && !flagged[pid] {
				flagged[pid] = true
				v := Violation{PID: pid, Op: cur,
					Stuck: time.Duration(still[pid]) * o.cfg.Watchdog}
				o.mu.Lock()
				o.violations = append(o.violations, v)
				o.mu.Unlock()
			}
		}
	}
}

// Violations returns the watchdog findings so far (safe during the
// run).
func (o *Observer) Violations() []Violation {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]Violation(nil), o.violations...)
}

// phaseSpan is one incarnation's stay in one phase.
type phaseSpan struct {
	name           string
	startTS, endTS int64
	startOp, endOp int64
}

// ProcObs records one processor incarnation. All methods except the
// observer-side readers are called only from the owning goroutine —
// that single-writer discipline is what keeps the hot path wait-free.
type ProcObs struct {
	ob    *Observer
	pid   int
	inc   int // incarnation ordinal for this pid (0 = initial)
	cell  *pidCell
	ring  *ring
	every int64
	next  int64 // next snapshot ordinal

	curPhase string
	phTS     int64
	phOp     int64
	spans    []phaseSpan
	killed   bool
	endTS    int64
	endOp    int64
	ended    bool
}

// StartIncarnation opens recording for pid's next incarnation, which
// resumes at op ordinal startOp. Called by the native runtime under its
// own lock (spawns of a pid are serialized).
func (o *Observer) StartIncarnation(pid int, startOp int64) *ProcObs {
	o.mu.Lock()
	inc := 0
	for _, p := range o.procs {
		if p.pid == pid {
			inc++
		}
	}
	po := &ProcObs{
		ob:    o,
		pid:   pid,
		inc:   inc,
		cell:  &o.cells[pid],
		ring:  newRing(o.cfg.RingCap),
		every: o.cfg.SnapshotEvery,
		next:  startOp + o.cfg.SnapshotEvery,
	}
	o.procs = append(o.procs, po)
	o.mu.Unlock()
	po.cell.op.Store(startOp)
	po.cell.live.Add(1)
	po.ring.append(Event{TS: o.now(), Op: startOp, Kind: EvSpawn})
	return po
}

// Op is the per-operation hook: bounded work, and on all but every
// SnapshotEvery-th call just one compare and return.
func (po *ProcObs) Op(op int64) {
	if op < po.next {
		return
	}
	po.next = op + po.every
	po.cell.op.Store(op)
	po.ring.append(Event{TS: po.ob.now(), Op: op, Kind: EvSnapshot})
}

// Phase records a phase transition at op ordinal op.
func (po *ProcObs) Phase(name string, op int64) {
	ts := po.ob.now()
	po.closePhase(ts, op)
	po.curPhase, po.phTS, po.phOp = name, ts, op
	po.cell.op.Store(op)
	po.ring.append(Event{TS: ts, Op: op, Kind: EvPhase, Phase: name})
}

func (po *ProcObs) closePhase(ts, op int64) {
	if po.curPhase == "" {
		return
	}
	po.spans = append(po.spans, phaseSpan{
		name: po.curPhase, startTS: po.phTS, endTS: ts, startOp: po.phOp, endOp: op,
	})
	po.curPhase = ""
}

// CASFail records a failed compare-and-swap on address addr — the
// native runtime's observable trace of memory contention.
func (po *ProcObs) CASFail(op int64, addr int) {
	po.ring.append(Event{TS: po.ob.now(), Op: op, Arg: int64(addr), Kind: EvCASFail})
}

// Stall records an adversary-injected stall of the given yields
// (-1 for an indefinite block).
func (po *ProcObs) Stall(op int64, yields int) {
	po.ring.append(Event{TS: po.ob.now(), Op: op, Arg: int64(yields), Kind: EvStall})
}

// Kill records the incarnation's death landing.
func (po *ProcObs) Kill(op int64) {
	po.killed = true
	po.ring.append(Event{TS: po.ob.now(), Op: op, Kind: EvKill})
}

// End closes the incarnation (program returned or kill unwound) at op
// ordinal op. Called from the goroutine's unwind path, before any
// respawn of the same pid starts.
func (po *ProcObs) End(op int64) {
	ts := po.ob.now()
	po.closePhase(ts, op)
	po.endTS, po.endOp, po.ended = ts, op, true
	po.ring.append(Event{TS: ts, Op: op, Kind: EvEnd})
	po.cell.op.Store(op)
	po.cell.live.Add(-1)
}

// Events returns the incarnation's retained ring events oldest-first.
// Call after the run (or after this incarnation ended).
func (po *ProcObs) Events() []Event { return po.ring.events() }

// Dropped returns how many ring events were overwritten.
func (po *ProcObs) Dropped() uint64 { return po.ring.dropped() }

// PID and Incarnation identify the track.
func (po *ProcObs) PID() int         { return po.pid }
func (po *ProcObs) Incarnation() int { return po.inc }

// incarnations snapshots the recorded procs.
func (o *Observer) incarnations() []*ProcObs {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]*ProcObs(nil), o.procs...)
}

// Incarnations returns every recorded incarnation in spawn order. The
// per-incarnation data (events, spans) is safe to read once the run has
// finished.
func (o *Observer) Incarnations() []*ProcObs { return o.incarnations() }

// MergeInto folds the observer's per-phase measurements into a run's
// metrics: per-phase Ops from op-ordinal deltas and per-phase Latency
// histograms, one observation per (incarnation, phase) span. The native
// runtime calls it at the end of Run.
func (o *Observer) MergeInto(m *model.Metrics) {
	for _, po := range o.incarnations() {
		for _, sp := range po.spans {
			pm := m.RecordPhase(sp.name)
			pm.Ops += sp.endOp - sp.startOp
			if pm.Latency == nil {
				pm.Latency = &model.Histogram{}
			}
			pm.Latency.Observe(sp.endTS - sp.startTS)
		}
	}
}

// Snapshot is the live state served by /metrics and expvar.
type Snapshot struct {
	P          int         `json:"p"`
	Ops        []int64     `json:"ops_per_proc"`
	Live       []bool      `json:"live"`
	Events     uint64      `json:"events"`
	Dropped    uint64      `json:"dropped"`
	Violations []Violation `json:"violations,omitempty"`
	Sized      int         `json:"sized"`
	Placed     int         `json:"placed"`
	Finished   bool        `json:"finished"`
}

// Snapshot assembles the live state: per-processor published op
// ordinals and liveness, ring totals, watchdog violations and, when a
// progress probe is installed, the sorter's sized/placed counters. Safe
// to call at any time from any goroutine.
func (o *Observer) Snapshot() Snapshot {
	o.mu.Lock()
	procs := append([]*ProcObs(nil), o.procs...)
	progress := o.progress
	violations := append([]Violation(nil), o.violations...)
	p := len(o.cells)
	o.mu.Unlock()

	s := Snapshot{
		P: p, Ops: make([]int64, p), Live: make([]bool, p),
		Violations: violations, Sized: -1, Placed: -1,
		Finished: o.finished.Load(),
	}
	for pid := 0; pid < p; pid++ {
		s.Ops[pid] = o.cells[pid].op.Load()
		s.Live[pid] = o.cells[pid].live.Load() > 0
	}
	for _, po := range procs {
		s.Events += po.ring.total()
		s.Dropped += po.ring.dropped()
	}
	if progress != nil {
		s.Sized, s.Placed = progress()
	}
	return s
}
