package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"wfsort/internal/model"
)

// AtomicHist is the wait-free twin of model.Histogram: the same log2
// buckets, every update one atomic add, so the serving path records
// without locks and snapshots reuse model's quantile math.
type AtomicHist struct {
	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one nanosecond sample.
func (h *AtomicHist) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Snapshot copies the record into a model.Histogram for quantile
// estimates. The copy is not atomic across buckets — concurrent
// writers may land between loads — which is fine for a metrics
// surface.
func (h *AtomicHist) Snapshot() *model.Histogram {
	out := &model.Histogram{}
	for b := range h.buckets {
		out.Buckets[b] = h.buckets[b].Load()
	}
	out.Count = h.count.Load()
	out.Sum = h.sum.Load()
	return out
}

// ClassCounters is one traffic class's serving-side record: outcome
// counts, QoS-plane decision counts, and atomic latency + queue-wait
// histograms. Every update is a single atomic add, so recording on
// the serving path stays wait-free like the rest of the plane.
type ClassCounters struct {
	Requests atomic.Int64
	OK       atomic.Int64
	Shed     atomic.Int64 // 429 + 503
	Canceled atomic.Int64 // 504
	Errors   atomic.Int64

	// QoS-plane decisions (zero unless the QoS plane is enabled).
	Admitted     atomic.Int64 // token-bucket admissions
	Aged         atomic.Int64 // dispatches won through aging
	DeadlineDrop atomic.Int64 // queued jobs shed, deadline unmeetable

	// Exemplars retains the class's top-K slowest requests with their
	// full stage breakdowns — the tail exemplars surfaced by /metrics
	// next to the histogram buckets they fell into.
	Exemplars Exemplars

	latency AtomicHist
	qwait   AtomicHist
}

// ObserveLatency records one request latency in nanoseconds.
func (c *ClassCounters) ObserveLatency(ns int64) { c.latency.Observe(ns) }

// ObserveQueueWait records one pipeline queue wait in nanoseconds.
func (c *ClassCounters) ObserveQueueWait(ns int64) { c.qwait.Observe(ns) }

// Histogram snapshots the latency record.
func (c *ClassCounters) Histogram() *model.Histogram { return c.latency.Snapshot() }

// QueueWaitHistogram snapshots the queue-wait record.
func (c *ClassCounters) QueueWaitHistogram() *model.Histogram { return c.qwait.Snapshot() }

// ClassStats is one class's JSON-ready snapshot.
type ClassStats struct {
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Canceled int64   `json:"canceled"`
	Errors   int64   `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`

	// QoS-plane fields, omitted while idle so pre-QoS scrapes keep
	// their shape.
	Admitted     int64   `json:"admitted,omitempty"`
	Aged         int64   `json:"aged,omitempty"`
	DeadlineDrop int64   `json:"deadline_dropped,omitempty"`
	QWaitP50Ms   float64 `json:"qwait_p50_ms,omitempty"`
	QWaitP99Ms   float64 `json:"qwait_p99_ms,omitempty"`

	// Exemplars is the class's retained slow tail (slowest first),
	// each with its trace ID and stage breakdown.
	Exemplars []Span `json:"exemplars,omitempty"`
}

// ClassSet is a registry of per-class counters keyed by class name.
// The hot path (Get on a known class) is lock-free: one atomic map
// load and a read-only lookup. Inserting a new class copies the map
// under a mutex — rare by construction, since class cardinality is
// capped: once Limit distinct names exist, unknown names all land on
// the "other" class rather than letting a client mint unbounded
// counter sets.
type ClassSet struct {
	limit int
	m     atomic.Pointer[map[string]*ClassCounters]
	mu    sync.Mutex
}

// Overflow is the class name absorbing registrations past the limit.
const Overflow = "other"

// NewClassSet builds a registry capped at limit classes (limit < 1
// means 32). The overflow class counts against the cap.
func NewClassSet(limit int) *ClassSet {
	if limit < 1 {
		limit = 32
	}
	s := &ClassSet{limit: limit}
	empty := map[string]*ClassCounters{}
	s.m.Store(&empty)
	return s
}

// Get returns the counters for name, creating them on first sight
// (or the overflow class's once the cap is hit).
func (s *ClassSet) Get(name string) *ClassCounters {
	if name == "" {
		name = "default"
	}
	m := *s.m.Load()
	if c, ok := m[name]; ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m = *s.m.Load()
	if c, ok := m[name]; ok {
		return c
	}
	if len(m) >= s.limit {
		name = Overflow
		if c, ok := m[name]; ok {
			return c
		}
	}
	next := make(map[string]*ClassCounters, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	c := &ClassCounters{}
	next[name] = c
	s.m.Store(&next)
	return c
}

// Names returns the registered class names, sorted — the iteration
// order deterministic renderers (the Prometheus encoder) need.
func (s *ClassSet) Names() []string {
	m := *s.m.Load()
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the counters for name without creating them.
func (s *ClassSet) Lookup(name string) (*ClassCounters, bool) {
	c, ok := (*s.m.Load())[name]
	return c, ok
}

// FindExemplar scans every class's exemplar slots for a span carrying
// the given trace ID — the /trace fallback for slow requests whose
// span-log slot was already lapped.
func (s *ClassSet) FindExemplar(traceID string) (Span, bool) {
	if traceID == "" {
		return Span{}, false
	}
	m := *s.m.Load()
	for _, c := range m {
		for _, sp := range c.Exemplars.Snapshot() {
			if sp.Trace == traceID {
				return sp, true
			}
		}
	}
	return Span{}, false
}

// Snapshot renders every class's current stats, JSON-ready.
func (s *ClassSet) Snapshot() map[string]ClassStats {
	m := *s.m.Load()
	out := make(map[string]ClassStats, len(m))
	for name, c := range m {
		h := c.Histogram()
		st := ClassStats{
			Requests:     c.Requests.Load(),
			OK:           c.OK.Load(),
			Shed:         c.Shed.Load(),
			Canceled:     c.Canceled.Load(),
			Errors:       c.Errors.Load(),
			P50Ms:        float64(h.Quantile(0.50)) / 1e6,
			P99Ms:        float64(h.Quantile(0.99)) / 1e6,
			MeanMs:       float64(h.Mean()) / 1e6,
			Admitted:     c.Admitted.Load(),
			Aged:         c.Aged.Load(),
			DeadlineDrop: c.DeadlineDrop.Load(),
		}
		if qh := c.QueueWaitHistogram(); qh.Count > 0 {
			st.QWaitP50Ms = float64(qh.Quantile(0.50)) / 1e6
			st.QWaitP99Ms = float64(qh.Quantile(0.99)) / 1e6
		}
		st.Exemplars = c.Exemplars.Snapshot()
		out[name] = st
	}
	return out
}
