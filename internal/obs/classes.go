package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"wfsort/internal/model"
)

// ClassCounters is one traffic class's serving-side record: outcome
// counts plus an atomic log2-bucketed latency histogram (the atomic
// twin of model.Histogram — same buckets, so snapshots reuse its
// quantile math). Every update is a single atomic add, so recording
// on the serving path stays wait-free like the rest of the plane.
type ClassCounters struct {
	Requests atomic.Int64
	OK       atomic.Int64
	Shed     atomic.Int64 // 429 + 503
	Canceled atomic.Int64 // 504
	Errors   atomic.Int64

	buckets [64]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// ObserveLatency records one request latency in nanoseconds.
func (c *ClassCounters) ObserveLatency(ns int64) {
	if ns < 0 {
		ns = 0
	}
	c.buckets[bits.Len64(uint64(ns))].Add(1)
	c.count.Add(1)
	c.sum.Add(ns)
}

// Histogram snapshots the latency record into a model.Histogram for
// quantile estimates. The snapshot is not atomic across buckets —
// concurrent writers may land between loads — which is fine for a
// metrics surface.
func (c *ClassCounters) Histogram() *model.Histogram {
	h := &model.Histogram{}
	for b := range c.buckets {
		h.Buckets[b] = c.buckets[b].Load()
	}
	h.Count = c.count.Load()
	h.Sum = c.sum.Load()
	return h
}

// ClassStats is one class's JSON-ready snapshot.
type ClassStats struct {
	Requests int64   `json:"requests"`
	OK       int64   `json:"ok"`
	Shed     int64   `json:"shed"`
	Canceled int64   `json:"canceled"`
	Errors   int64   `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// ClassSet is a registry of per-class counters keyed by class name.
// The hot path (Get on a known class) is lock-free: one atomic map
// load and a read-only lookup. Inserting a new class copies the map
// under a mutex — rare by construction, since class cardinality is
// capped: once Limit distinct names exist, unknown names all land on
// the "other" class rather than letting a client mint unbounded
// counter sets.
type ClassSet struct {
	limit int
	m     atomic.Pointer[map[string]*ClassCounters]
	mu    sync.Mutex
}

// Overflow is the class name absorbing registrations past the limit.
const Overflow = "other"

// NewClassSet builds a registry capped at limit classes (limit < 1
// means 32). The overflow class counts against the cap.
func NewClassSet(limit int) *ClassSet {
	if limit < 1 {
		limit = 32
	}
	s := &ClassSet{limit: limit}
	empty := map[string]*ClassCounters{}
	s.m.Store(&empty)
	return s
}

// Get returns the counters for name, creating them on first sight
// (or the overflow class's once the cap is hit).
func (s *ClassSet) Get(name string) *ClassCounters {
	if name == "" {
		name = "default"
	}
	m := *s.m.Load()
	if c, ok := m[name]; ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m = *s.m.Load()
	if c, ok := m[name]; ok {
		return c
	}
	if len(m) >= s.limit {
		name = Overflow
		if c, ok := m[name]; ok {
			return c
		}
	}
	next := make(map[string]*ClassCounters, len(m)+1)
	for k, v := range m {
		next[k] = v
	}
	c := &ClassCounters{}
	next[name] = c
	s.m.Store(&next)
	return c
}

// Snapshot renders every class's current stats, JSON-ready.
func (s *ClassSet) Snapshot() map[string]ClassStats {
	m := *s.m.Load()
	out := make(map[string]ClassStats, len(m))
	for name, c := range m {
		h := c.Histogram()
		out[name] = ClassStats{
			Requests: c.Requests.Load(),
			OK:       c.OK.Load(),
			Shed:     c.Shed.Load(),
			Canceled: c.Canceled.Load(),
			Errors:   c.Errors.Load(),
			P50Ms:    float64(h.Quantile(0.50)) / 1e6,
			P99Ms:    float64(h.Quantile(0.99)) / 1e6,
			MeanMs:   float64(h.Mean()) / 1e6,
		}
	}
	return out
}
