// Package obs is the wait-free observability plane for the native
// runtime. The simulator (internal/pram + internal/trace) gets exact
// step and contention accounting for free from its global clock; real
// goroutines have no such clock, so this package records what actually
// happened — phase transitions, CAS failures, kills, stalls, respawns
// and periodic op-ordinal snapshots, each with a nanosecond timestamp —
// without ever compromising the property being observed:
//
//   - every processor incarnation writes into its own fixed-capacity
//     event ring: single writer, plain stores into preallocated memory,
//     no locks, no CAS loops, no allocation on the hot path. An
//     instrumented operation is a bounded number of private writes, so
//     instrumentation preserves wait-freedom by construction (DESIGN
//     §9);
//   - a ring that fills up overwrites its oldest events and counts the
//     drops — the newest events are the ones a postmortem needs;
//   - on top of the rings: a Chrome/Perfetto trace exporter (one track
//     per incarnation), per-phase latency histograms merged into
//     model.Metrics, an expvar + pprof live endpoint, and a progress
//     watchdog that flags any live processor whose op ordinal stops
//     advancing — a runtime wait-freedom violation detector
//     complementing internal/chaos's offline op-ceiling certification.
//
// Everything is opt-in: native.Config.Observer is nil by default and
// the hot-path hook is a single pointer nil-check (gated by
// cmd/benchgate).
package obs

import "sync/atomic"

// EventKind enumerates what an Event records.
type EventKind uint8

// Event kinds.
const (
	// EvSpawn opens an incarnation: Op is the ordinal it resumes from
	// (0 for the initial fleet, the predecessor's death ordinal for
	// respawns).
	EvSpawn EventKind = iota
	// EvPhase is a phase transition; Event.Phase names the new phase.
	EvPhase
	// EvCASFail is a failed compare-and-swap; Arg is the address.
	EvCASFail
	// EvStall is an adversary-injected stall; Arg is the yield count
	// (-1 for an indefinite block).
	EvStall
	// EvKill is the processor's death landing (kill flag or adversary).
	EvKill
	// EvSnapshot is a periodic op-ordinal checkpoint (Config
	// SnapshotEvery); it also publishes the ordinal to the watchdog.
	EvSnapshot
	// EvEnd closes an incarnation: the program returned or the kill
	// unwound.
	EvEnd
)

// String returns the kind's mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvSpawn:
		return "spawn"
	case EvPhase:
		return "phase"
	case EvCASFail:
		return "cas-fail"
	case EvStall:
		return "stall"
	case EvKill:
		return "kill"
	case EvSnapshot:
		return "snapshot"
	case EvEnd:
		return "end"
	default:
		return "event(?)"
	}
}

// Event is one entry in an incarnation's ring.
type Event struct {
	// TS is nanoseconds since the observer was created (monotonic).
	TS int64
	// Op is the processor's cumulative operation ordinal at the event.
	Op int64
	// Arg is kind-specific: CAS address, stall yields.
	Arg int64
	// Kind says what happened.
	Kind EventKind
	// Phase is the phase name for EvPhase (constant strings from the
	// algorithm; storing the header is allocation-free).
	Phase string
}

// ring is a fixed-capacity single-writer event buffer. The owning
// goroutine appends with plain stores into preallocated memory; only
// the append count is atomic, so the live endpoint can read totals
// mid-run. Event contents are read only after the incarnation finished
// (the runtime's WaitGroup provides the happens-before edge).
type ring struct {
	buf []Event
	n   atomic.Uint64 // total appends ever
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]Event, capacity)}
}

// append records an event, overwriting the oldest once full. Bounded
// work, no allocation, no CAS: safe on the wait-free hot path.
func (r *ring) append(e Event) {
	n := r.n.Load() // single writer; the load is of our own last store
	r.buf[n%uint64(len(r.buf))] = e
	r.n.Store(n + 1)
}

// events returns the retained events oldest-first.
func (r *ring) events() []Event {
	n := r.n.Load()
	if n <= uint64(len(r.buf)) {
		return r.buf[:n]
	}
	out := make([]Event, 0, len(r.buf))
	start := n % uint64(len(r.buf))
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out
}

// dropped returns how many events were overwritten.
func (r *ring) dropped() uint64 {
	n := r.n.Load()
	if n <= uint64(len(r.buf)) {
		return 0
	}
	return n - uint64(len(r.buf))
}

// total returns how many events were ever appended.
func (r *ring) total() uint64 { return r.n.Load() }
