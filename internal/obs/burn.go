package obs

import (
	"sync/atomic"
	"time"
)

// BurnConfig sizes the multi-window SLO burn-rate monitor.
type BurnConfig struct {
	// SLO is the p99 latency target: a request slower than this, or
	// one that failed outright (rejected, errored, deadline-killed),
	// counts against the error budget. Required (> 0).
	SLO time.Duration
	// Budget is the tolerated bad fraction — the error budget the burn
	// rate is measured against. Default 0.01 (a 99% objective).
	Budget float64
	// Short and Long are the two observation windows (defaults 5m and
	// 1h). Both must agree before the monitor pages: the short window
	// makes the page fast, the long one keeps a transient blip from
	// firing it.
	Short, Long time.Duration
	// ShortBurn and LongBurn are the paging thresholds as multiples of
	// Budget (defaults 14.4 and 6 — the classic fast-burn pair: 14.4x
	// over 5m spends a 30-day budget in ~2 days).
	ShortBurn, LongBurn float64
	// MinBad is the minimum bad count inside the short window before a
	// page may fire, so a single slow request on an idle server cannot
	// page (default 10).
	MinBad int64
	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
}

func (c BurnConfig) withDefaults() BurnConfig {
	if c.Budget <= 0 {
		c.Budget = 0.01
	}
	if c.Short <= 0 {
		c.Short = 5 * time.Minute
	}
	if c.Long <= 0 {
		c.Long = time.Hour
	}
	if c.Long < c.Short {
		c.Long = c.Short
	}
	if c.ShortBurn <= 0 {
		c.ShortBurn = 14.4
	}
	if c.LongBurn <= 0 {
		c.LongBurn = 6
	}
	if c.MinBad <= 0 {
		c.MinBad = 10
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// burnBucket is one time slice of the sliding windows. epoch is the
// absolute bucket index the counts belong to; a writer arriving in a
// later epoch CASes it forward and zeroes the counts. The reset is not
// atomic with the counts — a racing reader or writer can misattribute
// a handful of observations across the boundary — which shifts a
// window edge by at most one bucket, well inside a monitor's
// tolerance.
type burnBucket struct {
	epoch atomic.Int64
	good  atomic.Int64
	bad   atomic.Int64
	_     [5]int64 // keep neighbors off one cache line
}

// Burn is the multi-window SLO burn-rate monitor. Observe is wait-free
// (a few atomic adds); the paging verdict compares the short- and
// long-window bad fractions against the error budget and latches a
// page while both exceed their thresholds.
type Burn struct {
	cfg       BurnConfig
	start     time.Time
	bucketNs  int64
	buckets   []burnBucket
	paging    atomic.Bool
	pages     atomic.Int64 // page transitions (off -> on)
	totalGood atomic.Int64
	totalBad  atomic.Int64
}

// NewBurn builds a monitor; returns nil when cfg.SLO <= 0 (monitor
// off), so callers can wire `if burn != nil` directly.
func NewBurn(cfg BurnConfig) *Burn {
	if cfg.SLO <= 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	// Slice the short window into >= 5 buckets so its edge moves
	// smoothly; the long window reuses the same granularity.
	bucketNs := cfg.Short.Nanoseconds() / 5
	if bucketNs < int64(10*time.Millisecond) {
		bucketNs = int64(10 * time.Millisecond)
	}
	n := int(cfg.Long.Nanoseconds()/bucketNs) + 2
	b := &Burn{cfg: cfg, start: cfg.Now(), bucketNs: bucketNs, buckets: make([]burnBucket, n)}
	return b
}

func (b *Burn) epochNow() int64 {
	return b.cfg.Now().Sub(b.start).Nanoseconds() / b.bucketNs
}

// Observe records one request outcome: ok=false or latency above the
// SLO is a bad event. It returns true when the observation left the
// monitor in (or moved it into) the paging state — the caller's cue to
// trip the flight recorder. Only bad observations can start a page, so
// the verdict scan (a bounded read over the window buckets) runs on
// the unhappy path alone.
func (b *Burn) Observe(latency time.Duration, ok bool) bool {
	bad := !ok || latency > b.cfg.SLO
	e := b.epochNow()
	bk := &b.buckets[e%int64(len(b.buckets))]
	if old := bk.epoch.Load(); old != e {
		if bk.epoch.CompareAndSwap(old, e) {
			bk.good.Store(0)
			bk.bad.Store(0)
		}
	}
	if bad {
		bk.bad.Add(1)
		b.totalBad.Add(1)
		paging := b.verdict(e)
		if paging && !b.paging.Swap(true) {
			b.pages.Add(1)
		}
		return paging
	}
	bk.good.Add(1)
	b.totalGood.Add(1)
	return false
}

// window sums the buckets covering the trailing window of the given
// width ending at epoch e.
func (b *Burn) window(e int64, width time.Duration) (good, bad int64) {
	n := width.Nanoseconds() / b.bucketNs
	if n < 1 {
		n = 1
	}
	if n > int64(len(b.buckets)) {
		n = int64(len(b.buckets))
	}
	for i := int64(0); i < n; i++ {
		ep := e - i
		if ep < 0 {
			break
		}
		bk := &b.buckets[ep%int64(len(b.buckets))]
		if bk.epoch.Load() != ep {
			continue // bucket recycled or never written
		}
		good += bk.good.Load()
		bad += bk.bad.Load()
	}
	return good, bad
}

func badFrac(good, bad int64) float64 {
	if good+bad == 0 {
		return 0
	}
	return float64(bad) / float64(good+bad)
}

// verdict computes the paging condition at epoch e and maintains the
// latch: a page clears only when the short window drops back under its
// threshold.
func (b *Burn) verdict(e int64) bool {
	gs, bs := b.window(e, b.cfg.Short)
	gl, bl := b.window(e, b.cfg.Long)
	shortBurn := badFrac(gs, bs) / b.cfg.Budget
	longBurn := badFrac(gl, bl) / b.cfg.Budget
	if b.paging.Load() {
		if shortBurn < b.cfg.ShortBurn {
			b.paging.Store(false)
			return false
		}
		return true
	}
	return bs >= b.cfg.MinBad && shortBurn >= b.cfg.ShortBurn && longBurn >= b.cfg.LongBurn
}

// Paging reports whether the monitor is currently in the paging state.
func (b *Burn) Paging() bool { return b.paging.Load() }

// BurnSnapshot is the monitor's JSON-ready state.
type BurnSnapshot struct {
	SLOMs        float64 `json:"slo_ms"`
	Budget       float64 `json:"budget"`
	ShortBadFrac float64 `json:"short_bad_frac"`
	LongBadFrac  float64 `json:"long_bad_frac"`
	ShortBurn    float64 `json:"short_burn"` // bad frac / budget
	LongBurn     float64 `json:"long_burn"`
	Paging       bool    `json:"paging"`
	Pages        int64   `json:"pages"` // off->on transitions
	Good         int64   `json:"good"`  // lifetime totals
	Bad          int64   `json:"bad"`
}

// Snapshot renders the current windows. Safe from any goroutine.
func (b *Burn) Snapshot() BurnSnapshot {
	e := b.epochNow()
	gs, bs := b.window(e, b.cfg.Short)
	gl, bl := b.window(e, b.cfg.Long)
	return BurnSnapshot{
		SLOMs:        float64(b.cfg.SLO) / 1e6,
		Budget:       b.cfg.Budget,
		ShortBadFrac: badFrac(gs, bs),
		LongBadFrac:  badFrac(gl, bl),
		ShortBurn:    badFrac(gs, bs) / b.cfg.Budget,
		LongBurn:     badFrac(gl, bl) / b.cfg.Budget,
		Paging:       b.paging.Load(),
		Pages:        b.pages.Load(),
		Good:         b.totalGood.Load(),
		Bad:          b.totalBad.Load(),
	}
}
