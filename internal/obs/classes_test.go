package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestClassSetGetAndSnapshot(t *testing.T) {
	s := NewClassSet(0) // default limit
	a := s.Get("a")
	if s.Get("a") != a {
		t.Fatal("Get is not stable for a known class")
	}
	if s.Get("") != s.Get("default") {
		t.Fatal("empty class name must alias default")
	}
	a.Requests.Add(3)
	a.OK.Add(2)
	a.Shed.Add(1)
	a.ObserveLatency(1_500_000) // 1.5ms
	a.ObserveLatency(3_000_000)

	snap := s.Snapshot()
	st, ok := snap["a"]
	if !ok {
		t.Fatalf("snapshot missing class a: %v", snap)
	}
	if st.Requests != 3 || st.OK != 2 || st.Shed != 1 {
		t.Fatalf("counter snapshot off: %+v", st)
	}
	if st.P50Ms <= 0 || st.MeanMs <= 0 {
		t.Fatalf("latency snapshot off: %+v", st)
	}
}

func TestClassSetOverflowCap(t *testing.T) {
	s := NewClassSet(3)
	s.Get("a")
	s.Get("b")
	s.Get("c")
	// Cap hit: every unknown name lands on the shared overflow class.
	d := s.Get("d")
	if d != s.Get("e") || d != s.Get(Overflow) {
		t.Fatal("past the cap, unknown classes must share the overflow counters")
	}
	// Known classes still resolve to their own counters.
	if s.Get("a") == d {
		t.Fatal("known class lost its counters after overflow")
	}
	snap := s.Snapshot()
	if _, ok := snap[Overflow]; !ok {
		t.Fatalf("snapshot missing overflow class: %v", snap)
	}
	if _, ok := snap["d"]; ok {
		t.Fatal("overflowed name minted its own class")
	}
}

func TestClassSetConcurrent(t *testing.T) {
	s := NewClassSet(8)
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 20 distinct names against a cap of 8: insertion,
				// lock-free lookup, and overflow all race here.
				c := s.Get(fmt.Sprintf("class-%d", (g+i)%20))
				c.Requests.Add(1)
				c.OK.Add(1)
				c.ObserveLatency(int64(i) * 1000)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, st := range s.Snapshot() {
		total += st.Requests
	}
	if total != goroutines*perG {
		t.Fatalf("requests lost under concurrency: %d of %d", total, goroutines*perG)
	}
}

func TestClassCountersHistogram(t *testing.T) {
	var c ClassCounters
	c.ObserveLatency(-5) // clamped, not a panic
	for i := 0; i < 100; i++ {
		c.ObserveLatency(1 << 20) // ~1ms
	}
	h := c.Histogram()
	if h.Count != 101 {
		t.Fatalf("count %d, want 101", h.Count)
	}
	q := h.Quantile(0.5)
	if q < 1<<19 || q > 1<<22 {
		t.Fatalf("p50 %d outside the 1ms bucket", q)
	}
}
