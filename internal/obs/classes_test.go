package obs

import (
	"fmt"
	"sync"
	"testing"

	"wfsort/internal/model"
)

func TestClassSetGetAndSnapshot(t *testing.T) {
	s := NewClassSet(0) // default limit
	a := s.Get("a")
	if s.Get("a") != a {
		t.Fatal("Get is not stable for a known class")
	}
	if s.Get("") != s.Get("default") {
		t.Fatal("empty class name must alias default")
	}
	a.Requests.Add(3)
	a.OK.Add(2)
	a.Shed.Add(1)
	a.ObserveLatency(1_500_000) // 1.5ms
	a.ObserveLatency(3_000_000)

	snap := s.Snapshot()
	st, ok := snap["a"]
	if !ok {
		t.Fatalf("snapshot missing class a: %v", snap)
	}
	if st.Requests != 3 || st.OK != 2 || st.Shed != 1 {
		t.Fatalf("counter snapshot off: %+v", st)
	}
	if st.P50Ms <= 0 || st.MeanMs <= 0 {
		t.Fatalf("latency snapshot off: %+v", st)
	}
}

func TestClassSetOverflowCap(t *testing.T) {
	s := NewClassSet(3)
	s.Get("a")
	s.Get("b")
	s.Get("c")
	// Cap hit: every unknown name lands on the shared overflow class.
	d := s.Get("d")
	if d != s.Get("e") || d != s.Get(Overflow) {
		t.Fatal("past the cap, unknown classes must share the overflow counters")
	}
	// Known classes still resolve to their own counters.
	if s.Get("a") == d {
		t.Fatal("known class lost its counters after overflow")
	}
	snap := s.Snapshot()
	if _, ok := snap[Overflow]; !ok {
		t.Fatalf("snapshot missing overflow class: %v", snap)
	}
	if _, ok := snap["d"]; ok {
		t.Fatal("overflowed name minted its own class")
	}
}

func TestClassSetConcurrent(t *testing.T) {
	s := NewClassSet(8)
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// 20 distinct names against a cap of 8: insertion,
				// lock-free lookup, and overflow all race here.
				c := s.Get(fmt.Sprintf("class-%d", (g+i)%20))
				c.Requests.Add(1)
				c.OK.Add(1)
				c.ObserveLatency(int64(i) * 1000)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, st := range s.Snapshot() {
		total += st.Requests
	}
	if total != goroutines*perG {
		t.Fatalf("requests lost under concurrency: %d of %d", total, goroutines*perG)
	}
}

func TestClassCountersHistogram(t *testing.T) {
	var c ClassCounters
	c.ObserveLatency(-5) // clamped, not a panic
	for i := 0; i < 100; i++ {
		c.ObserveLatency(1 << 20) // ~1ms
	}
	h := c.Histogram()
	if h.Count != 101 {
		t.Fatalf("count %d, want 101", h.Count)
	}
	q := h.Quantile(0.5)
	if q < 1<<19 || q > 1<<22 {
		t.Fatalf("p50 %d outside the 1ms bucket", q)
	}
}

// TestClassCountersQoS exercises the QoS-plane additions: decision
// counters and the queue-wait histogram, including their snapshot
// rendering and omission while idle.
func TestClassCountersQoS(t *testing.T) {
	s := NewClassSet(8)
	c := s.Get("lat")
	c.Admitted.Add(5)
	c.Aged.Add(2)
	c.DeadlineDrop.Add(1)
	for i := 0; i < 100; i++ {
		c.ObserveQueueWait(int64(i) * 1e6)
	}
	st := s.Snapshot()["lat"]
	if st.Admitted != 5 || st.Aged != 2 || st.DeadlineDrop != 1 {
		t.Fatalf("qos counters = %+v", st)
	}
	if st.QWaitP50Ms <= 0 || st.QWaitP99Ms < st.QWaitP50Ms {
		t.Fatalf("queue-wait quantiles p50=%v p99=%v", st.QWaitP50Ms, st.QWaitP99Ms)
	}
	h := c.QueueWaitHistogram()
	if h.Count != 100 {
		t.Fatalf("queue-wait count = %d, want 100", h.Count)
	}
	// A class that never touched the QoS plane renders without the
	// optional fields.
	idle := s.Get("plain")
	idle.ObserveLatency(1e6)
	st = s.Snapshot()["plain"]
	if st.Admitted != 0 || st.QWaitP50Ms != 0 || st.QWaitP99Ms != 0 {
		t.Fatalf("idle class leaked qos fields: %+v", st)
	}
}

// TestAtomicHistMatchesModel pins AtomicHist to its model.Histogram
// twin: identical samples, identical quantiles.
func TestAtomicHistMatchesModel(t *testing.T) {
	var ah AtomicHist
	var mh model.Histogram
	for i := int64(1); i <= 1000; i++ {
		ns := i * i * 1000
		ah.Observe(ns)
		mh.Observe(ns)
	}
	got := ah.Snapshot()
	if got.Count != mh.Count || got.Sum != mh.Sum {
		t.Fatalf("count/sum diverged: %d/%d vs %d/%d", got.Count, got.Sum, mh.Count, mh.Sum)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got.Quantile(q) != mh.Quantile(q) {
			t.Fatalf("quantile %v diverged: %d vs %d", q, got.Quantile(q), mh.Quantile(q))
		}
	}
}
