package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"wfsort/internal/trace"
)

// TraceEvent is one entry of the Chrome trace-event format, the JSON
// that ui.perfetto.dev and chrome://tracing load directly. Only the
// fields this exporter uses are declared; timestamps (Ts, Dur) are
// microseconds.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level JSON object Perfetto loads.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Trace process ids: native incarnations under one process, simulator
// samples under another, serving-layer request spans under a third, so
// a combined export renders as separate process groups in the same
// viewer.
const (
	tracePIDNative = 1
	tracePIDSim    = 2
	tracePIDServe  = 3
)

// serveTracks is how many display tracks serving spans spread across,
// so overlapping concurrent requests don't render stacked on one row.
const serveTracks = 8

// simStepMicros is the display width of one simulated machine step.
// The simulator has no wall clock — steps are its time unit — so the
// exporter renders one step as one microsecond.
const simStepMicros = 1.0

// Trace builds one Perfetto JSON file from native observer data and/or
// simulator trace samples, so both runtimes render in the same viewer.
type Trace struct {
	events []TraceEvent
}

// NewTrace returns an empty trace builder.
func NewTrace() *Trace { return &Trace{} }

func micros(ns int64) float64 { return float64(ns) / 1e3 }

// tid returns the stable track id for an incarnation: processors keep
// their order, respawned incarnations get adjacent tracks.
func tid(pid, inc int) int { return pid*100 + inc }

// AddObserver renders every incarnation the observer recorded as one
// track: phase spans as complete ("X") slices, ring events (CAS
// failures, stalls, kills, snapshots) as instants, plus thread-name
// metadata. Call after the run finished.
func (t *Trace) AddObserver(o *Observer) *Trace {
	for _, po := range o.Incarnations() {
		track := tid(po.pid, po.inc)
		name := fmt.Sprintf("proc %d", po.pid)
		if po.inc > 0 {
			name = fmt.Sprintf("proc %d (respawn %d)", po.pid, po.inc)
		}
		t.events = append(t.events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePIDNative, TID: track,
			Args: map[string]any{"name": name},
		})

		var evs []TraceEvent
		for _, sp := range po.spans {
			evs = append(evs, TraceEvent{
				Name: sp.name, Ph: "X", Cat: "phase",
				Ts: micros(sp.startTS), Dur: micros(sp.endTS - sp.startTS),
				PID: tracePIDNative, TID: track,
				Args: map[string]any{"start_op": sp.startOp, "end_op": sp.endOp},
			})
		}
		for _, e := range po.Events() {
			switch e.Kind {
			case EvPhase:
				// Rendered as spans above.
				continue
			case EvSnapshot:
				evs = append(evs, TraceEvent{
					Name: fmt.Sprintf("ops p%d", po.pid), Ph: "C",
					Ts: micros(e.TS), PID: tracePIDNative, TID: track,
					Args: map[string]any{"ops": e.Op},
				})
			default:
				args := map[string]any{"op": e.Op}
				if e.Kind == EvCASFail {
					args["addr"] = e.Arg
				}
				if e.Kind == EvStall {
					args["yields"] = e.Arg
				}
				evs = append(evs, TraceEvent{
					Name: e.Kind.String(), Ph: "i", S: "t", Cat: "event",
					Ts: micros(e.TS), PID: tracePIDNative, TID: track,
					Args: args,
				})
			}
		}
		// Keep each track's timeline monotonic: spans were appended
		// before instants, so interleave them by timestamp.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
		t.events = append(t.events, evs...)

		if dropped := po.Dropped(); dropped > 0 {
			t.events = append(t.events, TraceEvent{
				Name: "ring overflow", Ph: "i", S: "t", Cat: "event",
				Ts: micros(po.endTS), PID: tracePIDNative, TID: track,
				Args: map[string]any{"dropped": dropped},
			})
		}
	}
	return t
}

// AddSimSamples renders a simulator run's per-step series (see
// internal/trace.Recorder) in the same file: active-processor and
// contention counters plus dominant-phase spans on one simulator
// track, one microsecond per machine step.
func (t *Trace) AddSimSamples(samples []trace.Sample) *Trace {
	if len(samples) == 0 {
		return t
	}
	t.events = append(t.events, TraceEvent{
		Name: "thread_name", Ph: "M", PID: tracePIDSim, TID: 1,
		Args: map[string]any{"name": "simulator (dominant phase)"},
	})
	var evs []TraceEvent
	spanStart, spanPhase := float64(samples[0].Step)*simStepMicros, samples[0].Phase
	flush := func(end float64) {
		if spanPhase != "" && end > spanStart {
			evs = append(evs, TraceEvent{
				Name: spanPhase, Ph: "X", Cat: "phase",
				Ts: spanStart, Dur: end - spanStart, PID: tracePIDSim, TID: 1,
			})
		}
	}
	for _, s := range samples {
		ts := float64(s.Step) * simStepMicros
		if s.Phase != spanPhase {
			flush(ts)
			spanStart, spanPhase = ts, s.Phase
		}
		evs = append(evs, TraceEvent{
			Name: "active", Ph: "C", Ts: ts, PID: tracePIDSim, TID: 1,
			Args: map[string]any{"procs": s.Active},
		}, TraceEvent{
			Name: "contention", Ph: "C", Ts: ts, PID: tracePIDSim, TID: 1,
			Args: map[string]any{"max_same_word": s.Contention},
		})
	}
	flush(float64(samples[len(samples)-1].Step+1) * simStepMicros)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	t.events = append(t.events, evs...)
	return t
}

// AddSpans renders serving-layer request spans — the flight recorder's
// request window — as one process group: each request a complete ("X")
// slice carrying its trace ID and outcome, its stage segments nested
// inside as sub-slices at their cumulative offsets. Timestamps rebase
// to the earliest span so the export starts near zero regardless of
// wall-clock epoch.
func (t *Trace) AddSpans(spans []Span) *Trace {
	if len(spans) == 0 {
		return t
	}
	base := spans[0].Start
	for _, s := range spans {
		if s.Start < base {
			base = s.Start
		}
	}
	for tr := 0; tr < serveTracks; tr++ {
		t.events = append(t.events, TraceEvent{
			Name: "thread_name", Ph: "M", PID: tracePIDServe, TID: tr,
			Args: map[string]any{"name": fmt.Sprintf("requests %d", tr)},
		})
	}
	var evs []TraceEvent
	for i, s := range spans {
		track := i % serveTracks
		name := s.Kind
		if s.Trace != "" {
			name = s.Kind + " " + s.Trace
		}
		evs = append(evs, TraceEvent{
			Name: name, Ph: "X", Cat: "request",
			Ts: micros(s.Start - base), Dur: micros(int64(s.Duration)),
			PID: tracePIDServe, TID: track,
			Args: map[string]any{
				"trace": s.Trace, "class": s.Class, "outcome": s.Outcome, "n": s.N,
			},
		})
		off := s.Start - base
		for _, st := range s.Stages {
			if st.DurNs > 0 {
				evs = append(evs, TraceEvent{
					Name: st.Name, Ph: "X", Cat: "stage",
					Ts: micros(off), Dur: micros(st.DurNs),
					PID: tracePIDServe, TID: track,
				})
			}
			off += st.DurNs
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	t.events = append(t.events, evs...)
	return t
}

// Write emits the trace as Chrome trace-event JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(TraceFile{TraceEvents: t.events, DisplayTimeUnit: "ms"})
}

// WriteTrace is the one-call export for a finished native run: the
// observer's incarnations as Perfetto JSON.
func (o *Observer) WriteTrace(w io.Writer) error {
	return NewTrace().AddObserver(o).Write(w)
}
