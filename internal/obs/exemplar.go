package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// ExemplarK is how many tail exemplars each class retains.
const ExemplarK = 4

// exemplarMaxAge bounds how long an exemplar may pin its slot: an
// incumbent older than this loses to any newer span regardless of
// duration, so one slow cold-start request cannot freeze the set
// forever and the store tracks the *current* tail.
const exemplarMaxAge = 5 * time.Minute

// Exemplars is a lock-free top-K-slowest sampler: K slots, each an
// atomic span pointer. Offer scans for the weakest slot (smallest
// duration, or an aged-out incumbent) and installs the candidate with
// one CAS; a failed CAS means a concurrent Offer won the slot, and the
// candidate is simply dropped. The sampler is racy by design — a lost
// update only means a concurrent span (usually a slower one) kept the
// slot — which is the price of a strictly bounded, wait-free hot path:
// one scan, at most one CAS, no retry loop.
type Exemplars struct {
	slots [ExemplarK]atomic.Pointer[Span]
}

// Offer proposes a completed span for the exemplar set. The span must
// not be mutated afterwards (the store keeps the pointer).
func (e *Exemplars) Offer(s *Span) {
	staleBefore := s.Start - int64(exemplarMaxAge)
	victim := -1
	var incumbent *Span
	for i := range e.slots {
		cur := e.slots[i].Load()
		if cur == nil || cur.Start < staleBefore {
			victim, incumbent = i, cur
			break
		}
		if victim < 0 || cur.Duration < incumbent.Duration {
			victim, incumbent = i, cur
		}
	}
	if incumbent != nil && incumbent.Start >= staleBefore && s.Duration <= incumbent.Duration {
		return
	}
	e.slots[victim].CompareAndSwap(incumbent, s)
}

// Snapshot returns the retained exemplars, slowest first.
func (e *Exemplars) Snapshot() []Span {
	out := make([]Span, 0, ExemplarK)
	for i := range e.slots {
		if s := e.slots[i].Load(); s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}
