package obs

import "testing"

func TestRingUnderCapacity(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 5; i++ {
		r.append(Event{Op: int64(i)})
	}
	evs := r.events()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for i, e := range evs {
		if e.Op != int64(i) {
			t.Errorf("event %d has op %d, want %d", i, e.Op, i)
		}
	}
	if d := r.dropped(); d != 0 {
		t.Errorf("dropped = %d, want 0", d)
	}
	if n := r.total(); n != 5 {
		t.Errorf("total = %d, want 5", n)
	}
}

// TestRingOverflowKeepsNewest is the ring's contract: once full it
// overwrites its oldest events, keeps the newest in order and counts
// exactly how many were lost.
func TestRingOverflowKeepsNewest(t *testing.T) {
	r := newRing(4)
	const appended = 11
	for i := 0; i < appended; i++ {
		r.append(Event{Op: int64(i)})
	}
	evs := r.events()
	if len(evs) != 4 {
		t.Fatalf("got %d retained events, want 4", len(evs))
	}
	for i, e := range evs {
		want := int64(appended - 4 + i) // the 4 newest, oldest-first
		if e.Op != want {
			t.Errorf("event %d has op %d, want %d", i, e.Op, want)
		}
	}
	if d := r.dropped(); d != appended-4 {
		t.Errorf("dropped = %d, want %d", d, appended-4)
	}
	if n := r.total(); n != appended {
		t.Errorf("total = %d, want %d", n, appended)
	}
}

func TestRingExactlyFull(t *testing.T) {
	r := newRing(3)
	for i := 0; i < 3; i++ {
		r.append(Event{Op: int64(i)})
	}
	if d := r.dropped(); d != 0 {
		t.Errorf("a full-but-not-wrapped ring reports %d dropped, want 0", d)
	}
	if evs := r.events(); len(evs) != 3 || evs[0].Op != 0 || evs[2].Op != 2 {
		t.Errorf("events = %v", evs)
	}
}
