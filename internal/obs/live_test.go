package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestHandlerMetricsIdleAndLive(t *testing.T) {
	h := Handler()

	// Clear any observer a sibling test published.
	current.Store(nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var idle map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &idle); err != nil {
		t.Fatalf("idle /metrics not JSON: %v", err)
	}
	if idle["idle"] != true {
		t.Errorf("idle body = %v", idle)
	}

	o := New(Config{})
	o.RunStart(3)
	Publish(o)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("live /metrics not JSON: %v", err)
	}
	if snap.P != 3 {
		t.Errorf("snapshot P = %d, want 3", snap.P)
	}
	o.RunEnd()

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/vars status %d", rec.Code)
	}
	// Publish registered the expvar; it must render the snapshot too.
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["wfsort.obs"]; !ok {
		t.Error("wfsort.obs expvar missing after Publish")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/ status %d", rec.Code)
	}
}
