package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// FlightRecord is one flight-recorder dump: everything a post-incident
// reader needs in a single JSON file — why the dump fired, the recent
// span window, the retained tail exemplars, the burn-monitor state and
// the server's full metrics snapshot at the moment of the trigger. The
// Perfetto trace, when one is attached, is written alongside as
// <stem>.perfetto.json so it loads directly in ui.perfetto.dev.
type FlightRecord struct {
	// Reason names the trigger: "slo-burn" or "watchdog".
	Reason string `json:"reason"`
	// UnixNano is the trigger time.
	UnixNano int64 `json:"unix_nano"`
	// Spans is the recent request window, newest first.
	Spans []Span `json:"spans,omitempty"`
	// Exemplars is every class's retained slow tail.
	Exemplars map[string][]Span `json:"exemplars,omitempty"`
	// Burn is the burn monitor's windows at trigger time.
	Burn *BurnSnapshot `json:"burn,omitempty"`
	// Metrics is the server's /metrics JSON at trigger time, embedded
	// verbatim.
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// FlightRecorder writes rate-limited incident dumps. Dump is safe to
// call from the serving path's unhappy tail: the rate limit is one CAS
// on the last-dump timestamp, so concurrent triggers collapse to one
// writer and the rest return immediately.
type FlightRecorder struct {
	dir    string
	minGap time.Duration
	lastNs atomic.Int64 // unix-nano of the last accepted dump
	wrote  atomic.Int64 // dumps written (for tests / metrics)
	now    func() time.Time
}

// NewFlightRecorder builds a recorder dumping into dir, at most one
// dump per minGap (minGap <= 0 means 1 minute). Returns nil when dir
// is empty — the recorder off-switch — so callers wire `if fr != nil`.
func NewFlightRecorder(dir string, minGap time.Duration) *FlightRecorder {
	if dir == "" {
		return nil
	}
	if minGap <= 0 {
		minGap = time.Minute
	}
	return &FlightRecorder{dir: dir, minGap: minGap, now: time.Now}
}

// Wrote reports how many dumps this recorder has written.
func (f *FlightRecorder) Wrote() int64 { return f.wrote.Load() }

// Ready reports whether a Dump called now would pass the rate limit —
// the cheap pre-check that lets triggers skip assembling a record the
// recorder would swallow anyway.
func (f *FlightRecorder) Ready() bool {
	last := f.lastNs.Load()
	return last == 0 || f.now().UnixNano()-last >= f.minGap.Nanoseconds()
}

// Dump writes rec (plus, when non-nil, the Perfetto trace) to the
// flight directory. Returns the record path when a dump was written,
// "" when the rate limit swallowed it, and an error only for I/O
// failures. Each file lands atomically: written to a temp name in the
// same directory, then renamed into place, so a reader never sees a
// torn dump.
func (f *FlightRecorder) Dump(rec FlightRecord, trace *Trace) (string, error) {
	now := f.now().UnixNano()
	last := f.lastNs.Load()
	if last != 0 && now-last < f.minGap.Nanoseconds() {
		return "", nil
	}
	if !f.lastNs.CompareAndSwap(last, now) {
		return "", nil // concurrent trigger won the slot
	}
	if rec.UnixNano == 0 {
		rec.UnixNano = now
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return "", err
	}
	stem := fmt.Sprintf("flight-%s-%d", rec.Reason, now)
	path := filepath.Join(f.dir, stem+".json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", err
	}
	if err := atomicWrite(path, data); err != nil {
		return "", err
	}
	if trace != nil {
		var buf []byte
		w := &appendWriter{buf: &buf}
		if err := trace.Write(w); err == nil {
			// A failed trace write keeps the record: the JSON dump is
			// the primary artifact.
			_ = atomicWrite(filepath.Join(f.dir, stem+".perfetto.json"), buf)
		}
	}
	f.wrote.Add(1)
	return path, nil
}

type appendWriter struct{ buf *[]byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	*a.buf = append(*a.buf, p...)
	return len(p), nil
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
