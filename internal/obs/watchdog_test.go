package obs_test

import (
	"sort"
	"testing"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/harness"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/obs"
)

// TestWatchdogFlagsPermanentStall injects a permanent stall
// (Plan.BlockAt) into a native run and checks the watchdog flags the
// blocked processor while it is still live. The monitor kills the
// blocked pid once the violation is recorded so the run can complete —
// which is also the operational loop the watchdog exists for.
func TestWatchdogFlagsPermanentStall(t *testing.T) {
	const n, p = 256, 4
	keys := harness.MakeKeys(harness.InputRandom, n, 1)
	var a model.Arena
	s := core.NewSorter(&a, n, core.AllocRandomized)

	// 3 x 10ms of stillness flags a stall. The healthy workers finish
	// the whole sort well before the first poll, so only the blocked
	// processor can be live-and-still; a tighter interval would risk
	// flagging a healthy goroutine the OS descheduled on a loaded CI
	// machine.
	ob := obs.New(obs.Config{
		SnapshotEvery:  16,
		Watchdog:       10 * time.Millisecond,
		StallIntervals: 3,
	})
	pl := native.NewPlan().BlockAt(1, 50)
	rt := native.New(native.Config{
		P: p, Mem: a.Size(), Seed: 1, Less: harness.LessFor(keys),
		CountOps: true, Adversary: pl, Observer: ob,
	})
	s.Seed(rt.Memory())

	go func() {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if len(ob.Violations()) > 0 {
				rt.Kill(1)
				return
			}
			time.Sleep(time.Millisecond)
		}
		rt.Kill(1) // unwedge the run even if the watchdog never fired
	}()

	if _, err := rt.Run(s.Program()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	vs := ob.Violations()
	if len(vs) == 0 {
		t.Fatal("watchdog never flagged the blocked processor")
	}
	for _, v := range vs {
		if v.PID != 1 {
			t.Errorf("violation on pid %d, want only pid 1: %+v", v.PID, v)
		}
		if v.Stuck <= 0 {
			t.Errorf("violation with non-positive stuck duration: %+v", v)
		}
	}
	// The survivors must still have finished the sort.
	ranks := s.Places(rt.Memory())
	out := make([]int, n)
	for i, r := range ranks {
		out[r-1] = keys[i]
	}
	if !sort.IntsAreSorted(out) {
		t.Error("survivors did not finish the sort")
	}
}

// TestWatchdogSilentOnFaultlessRun runs clean with the watchdog armed:
// no violations may appear, or the detector is useless noise.
func TestWatchdogSilentOnFaultlessRun(t *testing.T) {
	const n, p = 2048, 4
	keys := harness.MakeKeys(harness.InputRandom, n, 2)
	var a model.Arena
	s := core.NewSorter(&a, n, core.AllocRandomized)

	ob := obs.New(obs.Config{
		SnapshotEvery:  16,
		Watchdog:       20 * time.Millisecond,
		StallIntervals: 5,
	})
	rt := native.New(native.Config{
		P: p, Mem: a.Size(), Seed: 2, Less: harness.LessFor(keys), Observer: ob,
	})
	s.Seed(rt.Memory())
	if _, err := rt.Run(s.Program()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if vs := ob.Violations(); len(vs) != 0 {
		t.Fatalf("faultless run produced violations: %+v", vs)
	}
	snap := ob.Snapshot()
	if !snap.Finished || snap.Events == 0 {
		t.Errorf("snapshot after run: %+v", snap)
	}
}
