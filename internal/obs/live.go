package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// current is the observer the live endpoint reports on. Runs are
// sequential from a process's point of view (one sort at a time per
// published observer), so a single slot is enough; campaign drivers
// like cmd/stress re-Publish per run and the endpoint follows.
var current atomic.Pointer[Observer]

var publishOnce sync.Once

// Publish makes o the observer the live endpoint and the "wfsort.obs"
// expvar report on. The expvar registration happens once per process
// (expvar panics on duplicate names); later calls just swap the
// observer.
func Publish(o *Observer) {
	current.Store(o)
	publishOnce.Do(func() {
		expvar.Publish("wfsort.obs", expvar.Func(func() any {
			if cur := current.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
}

// Handler serves the live observability surface:
//
//	/metrics      — the published observer's Snapshot as JSON
//	/debug/vars   — expvar (includes wfsort.obs once Publish ran)
//	/debug/pprof/ — the standard pprof profiles
//
// Profiles and counters stay available while a sort is running; that
// is the point.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if cur := current.Load(); cur != nil {
			enc.Encode(cur.Snapshot())
			return
		}
		enc.Encode(map[string]any{"idle": true})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve runs the live endpoint on ln until the listener closes. Run it
// in its own goroutine alongside the sort.
func Serve(ln net.Listener) error {
	return http.Serve(ln, Handler())
}
