package obs

import (
	"strings"
	"testing"

	"wfsort/internal/model"
)

func TestMergeIntoFillsPhaseLatency(t *testing.T) {
	o := driveObserver(t)
	var m model.Metrics
	o.MergeInto(&m)

	build := m.ByPhase["1:build"]
	if build == nil {
		t.Fatal("phase 1:build missing from merged metrics")
	}
	// Three incarnations spent time in 1:build (p0, p1, p1 respawn).
	if build.Latency == nil || build.Latency.Count != 3 {
		t.Fatalf("1:build latency = %+v, want 3 observations", build.Latency)
	}
	// p0: ops 0->40; p1: 0->5; p1 respawn: 5->30.
	if build.Ops != 40+5+25 {
		t.Errorf("1:build ops = %d, want 70", build.Ops)
	}
	sum := m.ByPhase["2:sum"]
	if sum == nil || sum.Latency == nil || sum.Latency.Count != 1 {
		t.Fatalf("2:sum latency = %+v, want 1 observation", sum)
	}
	if !strings.Contains(m.String(), "p50=") || !strings.Contains(m.String(), "p99=") {
		t.Errorf("Metrics.String should render latency quantiles:\n%s", m.String())
	}
}

func TestSnapshotLiveCounters(t *testing.T) {
	o := New(Config{SnapshotEvery: 4})
	o.RunStart(2)
	po := o.StartIncarnation(0, 0)
	for op := int64(1); op <= 10; op++ {
		po.Op(op)
	}

	s := o.Snapshot()
	if s.P != 2 {
		t.Fatalf("P = %d, want 2", s.P)
	}
	if !s.Live[0] || s.Live[1] {
		t.Errorf("live = %v, want [true false]", s.Live)
	}
	if s.Ops[0] == 0 {
		t.Error("snapshot should see pid 0's published op ordinal")
	}
	if s.Sized != -1 || s.Placed != -1 {
		t.Errorf("without a probe sized/placed = %d/%d, want -1/-1", s.Sized, s.Placed)
	}
	if s.Finished {
		t.Error("run not finished yet")
	}

	o.SetProgress(func() (int, int) { return 7, 3 })
	po.End(10)
	o.RunEnd()
	s = o.Snapshot()
	if s.Sized != 7 || s.Placed != 3 {
		t.Errorf("probe ignored: sized/placed = %d/%d", s.Sized, s.Placed)
	}
	if s.Live[0] {
		t.Error("ended incarnation still live")
	}
	if !s.Finished {
		t.Error("finished flag not set after RunEnd")
	}
	if s.Events == 0 {
		t.Error("snapshot should count ring events")
	}
}

func TestObserverRejectsReuse(t *testing.T) {
	o := New(Config{})
	o.RunStart(1)
	o.RunEnd()
	defer func() {
		if recover() == nil {
			t.Fatal("second RunStart should panic")
		}
	}()
	o.RunStart(1)
}
