package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"wfsort/internal/trace"
)

// driveObserver plays a small two-processor run (with one respawn and
// one CAS failure) through the observer exactly the way the native
// runtime would.
func driveObserver(t *testing.T) *Observer {
	t.Helper()
	o := New(Config{RingCap: 64, SnapshotEvery: 8})
	o.RunStart(2)

	p0 := o.StartIncarnation(0, 0)
	p0.Phase("1:build", 0)
	for op := int64(1); op <= 40; op++ {
		p0.Op(op)
	}
	p0.CASFail(17, 123)
	p0.Phase("2:sum", 40)
	p0.End(60)

	p1 := o.StartIncarnation(1, 0)
	p1.Phase("1:build", 0)
	p1.Kill(5)
	p1.End(5)
	p1b := o.StartIncarnation(1, 5)
	p1b.Phase("1:build", 5)
	p1b.End(30)

	o.RunEnd()
	return o
}

// TestPerfettoRoundTrip exports a trace and reloads it through
// encoding/json, checking the shape Perfetto needs: a traceEvents
// array, per-track monotonic timestamps, named respawn tracks and the
// CAS-failure instant.
func TestPerfettoRoundTrip(t *testing.T) {
	o := driveObserver(t)
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}

	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export does not round-trip through encoding/json: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	// Per-track timestamps must be monotonic non-decreasing, or the
	// viewer renders overlapping garbage.
	lastTs := map[int]float64{}
	names := map[string]bool{}
	for _, e := range tf.TraceEvents {
		names[e.Name] = true
		if e.Ph == "M" {
			continue
		}
		if ts, ok := lastTs[e.TID]; ok && e.Ts < ts {
			t.Fatalf("track %d not monotonic: %f after %f (%s)", e.TID, e.Ts, ts, e.Name)
		}
		lastTs[e.TID] = e.Ts
	}

	for _, want := range []string{"1:build", "2:sum", "cas-fail", "kill", "spawn"} {
		if !names[want] {
			t.Errorf("export missing %q events; have %v", want, names)
		}
	}
	if !strings.Contains(buf.String(), "proc 1 (respawn 1)") {
		t.Error("respawned incarnation should get its own named track")
	}
	// The respawn must be a distinct track from the first incarnation.
	if tid(1, 0) == tid(1, 1) {
		t.Error("incarnations of one pid must not share a track id")
	}
}

func TestPerfettoSimSamples(t *testing.T) {
	samples := []trace.Sample{
		{Step: 0, Active: 4, Contention: 2, Phase: "1:build"},
		{Step: 1, Active: 4, Contention: 3, Phase: "1:build"},
		{Step: 2, Active: 2, Contention: 1, Phase: "2:sum"},
	}
	var buf bytes.Buffer
	if err := NewTrace().AddSimSamples(samples).Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	var spans, counters int
	var last float64
	for _, e := range tf.TraceEvents {
		if e.PID != tracePIDSim {
			t.Errorf("sim event on pid %d, want %d", e.PID, tracePIDSim)
		}
		switch e.Ph {
		case "X":
			spans++
		case "C":
			counters++
		case "M":
			continue
		}
		if e.Ts < last {
			t.Fatalf("sim track not monotonic: %f after %f", e.Ts, last)
		}
		last = e.Ts
	}
	if spans != 2 {
		t.Errorf("got %d phase spans, want 2 (build, sum)", spans)
	}
	if counters != 2*len(samples) {
		t.Errorf("got %d counter events, want %d", counters, 2*len(samples))
	}
}

func TestPerfettoMarksRingOverflow(t *testing.T) {
	o := New(Config{RingCap: 4, SnapshotEvery: 1})
	o.RunStart(1)
	po := o.StartIncarnation(0, 0)
	for op := int64(1); op <= 32; op++ {
		po.Op(op)
	}
	po.End(32)
	o.RunEnd()

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ring overflow") {
		t.Error("overflowed ring should surface a 'ring overflow' instant")
	}
}
