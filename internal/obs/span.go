package obs

import (
	"sync/atomic"
	"time"
)

// Stage is one named segment of a request's lifecycle — bucket
// admission, semaphore wait, queue wait, batch assembly, crew
// execution, encode. A span's stages partition its wall duration, so
// summing them recovers (to scheduling slop) the request's total; the
// trace tests pin the two within 5%.
type Stage struct {
	Name  string `json:"name"`
	DurNs int64  `json:"dur_ns"`
}

// Span is one completed request-level unit of work — a served sort, a
// batch flush, a rejected request — as recorded by a SpanLog. Where
// the Observer's event rings cover one sort's interior (per-worker,
// per-incarnation), spans cover the serving layer above it: one record
// per request, cheap enough to keep always-on.
type Span struct {
	// ID is the serving layer's request or batch identifier.
	ID uint64 `json:"id"`
	// Trace is the request's end-to-end trace ID: minted by the
	// server, or accepted from the client's X-Trace-Id header and
	// echoed back. Empty on spans predating the trace plane (batch
	// flushes carry their own).
	Trace string `json:"trace,omitempty"`
	// Kind tags the unit ("sort", "batch", ...).
	Kind string `json:"kind"`
	// Class is the request's traffic class (X-Sort-Class; "default"
	// when absent).
	Class string `json:"class,omitempty"`
	// Start is the wall-clock start time, UnixNano.
	Start int64 `json:"start_unix_nano"`
	// Duration is the span's wall-clock duration.
	Duration time.Duration `json:"duration_ns"`
	// N is the element count sorted (for batches, the merged total; 0
	// on requests rejected before their body was read).
	N int `json:"n"`
	// Capacity is the pooled context capacity that served it (0 when
	// the fresh path ran).
	Capacity int `json:"capacity,omitempty"`
	// Batched is how many client requests the span carried (1 for an
	// unbatched sort).
	Batched int `json:"batched,omitempty"`
	// Outcome is "ok", "canceled", "shed" (backpressure: queue-shed
	// 504s and 429/503 rejections) or "error".
	Outcome string `json:"outcome"`
	// Stages is the request's stage-latency attribution, in lifecycle
	// order; their sum approximates Duration (see Stage).
	Stages []Stage `json:"stages,omitempty"`
	// Phases is the crew-execution phase aggregate (the engine's phase
	// labels), a breakdown *of* the "sort" stage — not part of the
	// Stages partition. Pipelined crews only.
	Phases []Stage `json:"phases,omitempty"`
}

// StageDur returns the named stage's duration, or 0 when absent.
func (s *Span) StageDur(name string) int64 {
	for _, st := range s.Stages {
		if st.Name == name {
			return st.DurNs
		}
	}
	return 0
}

// SpanLog is a fixed-size concurrent ring of recent Spans. Append is
// wait-free — one atomic fetch-add to claim a sequence number and one
// atomic pointer store to publish — so it never adds a wait point to
// the serving path; Snapshot returns the most recent spans, newest
// first. The log is a diagnosis surface, not an audit trail: under
// wrap, old spans are overwritten silently.
type SpanLog struct {
	slots []atomic.Pointer[stampedSpan]
	next  atomic.Uint64 // total appended; slot = (next-1) % len
}

// stampedSpan pairs a span with the 1-based append number that wrote
// it, so Snapshot can tell a slot overwritten by a lapped writer from
// the span it expected there.
type stampedSpan struct {
	seq  uint64
	span Span
}

// NewSpanLog returns a ring holding the last n spans (n < 1 means 256).
func NewSpanLog(n int) *SpanLog {
	if n < 1 {
		n = 256
	}
	return &SpanLog{slots: make([]atomic.Pointer[stampedSpan], n)}
}

// Append records one span.
func (l *SpanLog) Append(s Span) {
	seq := l.next.Add(1)
	l.slots[(seq-1)%uint64(len(l.slots))].Store(&stampedSpan{seq: seq, span: s})
}

// Len reports how many spans were ever appended.
func (l *SpanLog) Len() uint64 { return l.next.Load() }

// Snapshot returns up to max recent spans, newest first (max < 1 means
// the ring's full depth). Spans whose slot was claimed but not yet
// published, or already lapped by a newer writer, are skipped.
func (l *SpanLog) Snapshot(max int) []Span {
	depth := len(l.slots)
	if max < 1 || max > depth {
		max = depth
	}
	newest := l.next.Load()
	out := make([]Span, 0, max)
	for i := 0; i < depth && len(out) < max; i++ {
		seq := newest - uint64(i)
		if seq == 0 {
			break
		}
		st := l.slots[(seq-1)%uint64(len(l.slots))].Load()
		if st == nil || st.seq != seq {
			continue
		}
		out = append(out, st.span)
	}
	return out
}

// Find returns the newest retained span carrying the given trace ID.
// The scan is bounded by the ring depth; a span already lapped is
// simply gone (ok=false) — /trace callers fall back to the exemplar
// store, which retains the slow tail longer.
func (l *SpanLog) Find(traceID string) (Span, bool) {
	if traceID == "" {
		return Span{}, false
	}
	depth := len(l.slots)
	newest := l.next.Load()
	for i := 0; i < depth; i++ {
		seq := newest - uint64(i)
		if seq == 0 {
			break
		}
		st := l.slots[(seq-1)%uint64(len(l.slots))].Load()
		if st == nil || st.seq != seq {
			continue
		}
		if st.span.Trace == traceID {
			return st.span, true
		}
	}
	return Span{}, false
}
