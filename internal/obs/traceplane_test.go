package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wfsort/internal/model"
)

// TestExemplarsTopK: offered single-threaded, the sampler retains
// exactly the K slowest spans regardless of arrival order.
func TestExemplarsTopK(t *testing.T) {
	var e Exemplars
	now := time.Now().UnixNano()
	for _, ms := range []int{3, 9, 1, 7, 5, 10, 2, 8, 4, 6} {
		e.Offer(&Span{ID: uint64(ms), Start: now, Duration: time.Duration(ms) * time.Millisecond})
	}
	got := e.Snapshot()
	if len(got) != ExemplarK {
		t.Fatalf("retained %d exemplars, want %d", len(got), ExemplarK)
	}
	want := []time.Duration{10, 9, 8, 7}
	for i, sp := range got {
		if sp.Duration != want[i]*time.Millisecond {
			t.Fatalf("slot %d: duration %v, want %vms", i, sp.Duration, want[i])
		}
	}
}

// TestExemplarsAgeOut: a stale incumbent loses its slot to any newer
// span, even a faster one, so the set tracks the current tail.
func TestExemplarsAgeOut(t *testing.T) {
	var e Exemplars
	old := time.Now().UnixNano()
	for i := 0; i < ExemplarK; i++ {
		e.Offer(&Span{ID: uint64(i), Start: old, Duration: time.Hour})
	}
	fresh := &Span{ID: 99, Start: old + int64(6*time.Minute), Duration: time.Millisecond}
	e.Offer(fresh)
	for _, sp := range e.Snapshot() {
		if sp.ID == 99 {
			return
		}
	}
	t.Fatal("fresh span did not displace a stale incumbent")
}

// TestBurnPagesAndClears drives the monitor through a full incident on
// a fake clock: silent while healthy, silent below MinBad, paging under
// a bad flood, cleared once the short window recovers.
func TestBurnPagesAndClears(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBurn(BurnConfig{
		SLO: 10 * time.Millisecond, Short: time.Second, Long: 2 * time.Second,
		MinBad: 5, Now: func() time.Time { return now },
	})
	if b == nil {
		t.Fatal("NewBurn returned nil for a positive SLO")
	}
	for i := 0; i < 100; i++ {
		if b.Observe(time.Millisecond, true) {
			t.Fatal("paged on a healthy request")
		}
	}
	// Four slow requests: above the SLO but below MinBad.
	for i := 0; i < 4; i++ {
		if b.Observe(50*time.Millisecond, true) {
			t.Fatal("paged below MinBad")
		}
	}
	if b.Paging() {
		t.Fatal("paging without a flood")
	}
	paged := false
	for i := 0; i < 50; i++ {
		paged = b.Observe(0, false) || paged
	}
	if !paged || !b.Paging() {
		t.Fatalf("bad flood did not page (returned %v, Paging %v)", paged, b.Paging())
	}
	snap := b.Snapshot()
	if snap.Pages != 1 {
		t.Fatalf("pages = %d, want 1", snap.Pages)
	}
	if snap.ShortBurn < b.cfg.ShortBurn || snap.LongBurn < b.cfg.LongBurn {
		t.Fatalf("burn rates %v/%v below paging thresholds while paging", snap.ShortBurn, snap.LongBurn)
	}
	// Recover: both windows slide past the flood, traffic goes healthy.
	now = now.Add(3 * time.Second)
	for i := 0; i < 200; i++ {
		b.Observe(time.Millisecond, true)
	}
	if b.Observe(50*time.Millisecond, true) {
		t.Fatal("one slow request re-paged after recovery")
	}
	if b.Paging() {
		t.Fatal("page latch did not clear once the short window recovered")
	}
	if got := b.Snapshot().Pages; got != 1 {
		t.Fatalf("pages after recovery = %d, want 1", got)
	}
}

// TestBurnOffSwitch: no SLO, no monitor.
func TestBurnOffSwitch(t *testing.T) {
	if b := NewBurn(BurnConfig{}); b != nil {
		t.Fatal("NewBurn without an SLO should return nil")
	}
}

// TestFlightRecorderDumpAndRateLimit: one dump lands atomically with
// its Perfetto companion, the rate limit swallows the next, and the
// limit releases after minGap.
func TestFlightRecorderDumpAndRateLimit(t *testing.T) {
	if fr := NewFlightRecorder("", time.Minute); fr != nil {
		t.Fatal("empty dir should disarm the recorder")
	}
	dir := t.TempDir()
	f := NewFlightRecorder(dir, time.Minute)
	now := time.Unix(5000, 0)
	f.now = func() time.Time { return now }

	if !f.Ready() {
		t.Fatal("fresh recorder not Ready")
	}
	spans := []Span{{ID: 1, Trace: "t-1", Kind: "sort", Outcome: "ok",
		Start: now.UnixNano(), Duration: time.Millisecond,
		Stages: []Stage{{Name: "sort", DurNs: 1e6}}}}
	rec := FlightRecord{Reason: "slo-burn", Spans: spans, Exemplars: map[string][]Span{"default": spans}}
	path, err := f.Dump(rec, NewTrace().AddSpans(spans))
	if err != nil {
		t.Fatal(err)
	}
	if path == "" || f.Wrote() != 1 {
		t.Fatalf("first dump: path %q, wrote %d", path, f.Wrote())
	}
	var back FlightRecord
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if back.Reason != "slo-burn" || len(back.Spans) != 1 || back.UnixNano == 0 {
		t.Fatalf("round-tripped record: %+v", back)
	}
	perfetto := strings.TrimSuffix(path, ".json") + ".perfetto.json"
	if _, err := os.Stat(perfetto); err != nil {
		t.Fatalf("perfetto companion missing: %v", err)
	}
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
		t.Fatalf("temp files left behind: %v", tmp)
	}

	if f.Ready() {
		t.Fatal("Ready immediately after a dump")
	}
	if p, err := f.Dump(rec, nil); err != nil || p != "" {
		t.Fatalf("rate limit let a dump through: path %q err %v", p, err)
	}
	now = now.Add(2 * time.Minute)
	if !f.Ready() {
		t.Fatal("not Ready after the gap elapsed")
	}
	if p, err := f.Dump(rec, nil); err != nil || p == "" {
		t.Fatalf("post-gap dump: path %q err %v", p, err)
	}
	if f.Wrote() != 2 {
		t.Fatalf("wrote = %d, want 2", f.Wrote())
	}
}

// TestPromWriterFormat pins the exposition details a scraper depends
// on: sorted+escaped labels, integer rendering, cumulative histogram
// buckets ending at +Inf.
func TestPromWriterFormat(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Type("m", "counter", "a counter")
	p.Sample("m", map[string]string{"b": "2", "a": `x"y`}, 3)
	p.Sample("m2", nil, 1.5)
	var h model.Histogram
	h.Observe(1500)
	h.Observe(1500)
	h.Observe(3_000_000)
	p.Type("h", "histogram", "a histogram")
	p.HistogramNs("h", map[string]string{"l": "v"}, &h)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE m counter\n",
		"m{a=\"x\\\"y\",b=\"2\"} 3\n", // keys sorted, quote escaped, integral rendered as int
		"m2 1.5\n",
		`h_bucket{l="v",le="+Inf"} 3` + "\n",
		`h_count{l="v"} 3` + "\n",
		`h_sum{l="v"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Cumulative: the occupied bucket lines must be non-decreasing and
	// end below the +Inf count.
	if !strings.Contains(out, `h_bucket{l="v",le="`) {
		t.Fatalf("no bounded buckets emitted:\n%s", out)
	}
}

// TestSpanLogLappedWriterRace hammers a tiny ring from concurrent
// writers while a reader snapshots continuously: every observed span
// must be internally consistent (never torn across a lapped slot) and
// no snapshot may contain the same span twice. Run under -race this
// also certifies the publication discipline.
func TestSpanLogLappedWriterRace(t *testing.T) {
	l := NewSpanLog(16)
	const writers = 4
	const perWriter = 3000

	selfConsistent := func(sp Span) bool {
		return sp.Trace == fmt.Sprintf("t-%d", sp.ID) && sp.N == int(sp.ID%1000) && sp.Kind == "sort"
	}

	var snapErr atomic.Pointer[string]
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			spans := l.Snapshot(0)
			seen := make(map[uint64]bool, len(spans))
			for _, sp := range spans {
				if !selfConsistent(sp) {
					msg := fmt.Sprintf("torn span: %+v", sp)
					snapErr.Store(&msg)
					return
				}
				if seen[sp.ID] {
					msg := fmt.Sprintf("duplicate span id %d in one snapshot", sp.ID)
					snapErr.Store(&msg)
					return
				}
				seen[sp.ID] = true
			}
		}
	}()

	var wg sync.WaitGroup
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(wid*perWriter + i + 1)
				l.Append(Span{ID: id, Trace: fmt.Sprintf("t-%d", id), N: int(id % 1000), Kind: "sort"})
			}
		}(wid)
	}
	wg.Wait()
	close(stop)
	<-readerDone
	if msg := snapErr.Load(); msg != nil {
		t.Fatal(*msg)
	}

	// Quiescent: a fresh append is findable by trace ID, and the ring
	// serves exactly its depth.
	l.Append(Span{ID: 1 << 40, Trace: "needle", Kind: "sort", N: 0})
	sp, ok := l.Find("needle")
	if !ok || sp.ID != 1<<40 {
		t.Fatalf("Find(needle) = %+v, %v", sp, ok)
	}
	if got := len(l.Snapshot(0)); got != 16 {
		t.Fatalf("snapshot depth %d, want 16", got)
	}
	if _, ok := l.Find("t-1"); ok {
		t.Fatal("a long-lapped span should be gone")
	}
}

// TestPerfettoAddSpans: serving spans render as slices with their
// stage sub-slices and survive a JSON round trip.
func TestPerfettoAddSpans(t *testing.T) {
	base := time.Now().UnixNano()
	spans := []Span{
		{ID: 1, Trace: "a", Kind: "sort", Class: "default", Outcome: "ok",
			Start: base, Duration: 3 * time.Millisecond,
			Stages: []Stage{{Name: "queue", DurNs: 1e6}, {Name: "sort", DurNs: 2e6}}},
		{ID: 2, Trace: "b", Kind: "sort", Class: "bulk", Outcome: "shed",
			Start: base + 1e6, Duration: time.Millisecond},
	}
	var buf bytes.Buffer
	if err := NewTrace().AddSpans(spans).Write(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Events []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto doc is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.Events {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"sort a", "sort b", "queue", "sort"} {
		if !names[want] {
			t.Fatalf("trace missing slice %q (have %v)", want, names)
		}
	}
}
