package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wfsort/internal/model"
)

// PromWriter renders the serving plane's counters and histograms in
// the Prometheus text exposition format (version 0.0.4), so the same
// numbers `/metrics` serves as JSON scrape straight into any
// Prometheus-compatible collector without a client library. Output is
// deterministic: metrics render in the order written, labels sort by
// key, and series within a metric sort by their rendered label string.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// promLabels renders a label map as `{k="v",...}` with keys sorted;
// empty maps render as the empty string. Label values escape the three
// characters the format reserves.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		fmt.Fprintf(&b, `%s="%s"`, k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// Type emits the # HELP / # TYPE header for a metric. Call once per
// metric name, before its samples.
func (p *PromWriter) Type(name, kind, help string) {
	p.printf("# HELP %s %s\n", name, help)
	p.printf("# TYPE %s %s\n", name, kind)
}

// Sample emits one sample line.
func (p *PromWriter) Sample(name string, labels map[string]string, value float64) {
	p.printf("%s%s %s\n", name, promLabels(labels), formatPromValue(value))
}

func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// HistogramNs emits a model.Histogram (log2-nanosecond buckets) as a
// Prometheus histogram in seconds: cumulative `_bucket` series with
// `le` at each power-of-two boundary that holds observations, then
// `_sum` and `_count`. Emitting only occupied boundaries (plus +Inf)
// keeps a 64-bucket record from bloating the exposition; cumulative
// counts stay exact.
func (p *PromWriter) HistogramNs(name string, labels map[string]string, h *model.Histogram) {
	base := promLabels(labels)
	// Reuse the label set with `le` appended, preserving sort order by
	// rebuilding from the map.
	withLE := func(le string) string {
		m := make(map[string]string, len(labels)+1)
		for k, v := range labels {
			m[k] = v
		}
		m["le"] = le
		return promLabels(m)
	}
	var cum int64
	for b, c := range h.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		// Bucket b holds durations < 2^b ns.
		bound := float64(int64(1)<<uint(b)) / 1e9
		p.printf("%s_bucket%s %d\n", name, withLE(fmt.Sprintf("%g", bound)), cum)
	}
	p.printf("%s_bucket%s %d\n", name, withLE("+Inf"), h.Count)
	p.printf("%s_sum%s %g\n", name, base, float64(h.Sum)/1e9)
	p.printf("%s_count%s %d\n", name, base, h.Count)
}
