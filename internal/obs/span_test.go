package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSpanLogOrderAndWrap(t *testing.T) {
	l := NewSpanLog(4)
	for i := 1; i <= 6; i++ {
		l.Append(Span{ID: uint64(i), Kind: "sort", Duration: time.Duration(i), Outcome: "ok"})
	}
	got := l.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	for i, want := range []uint64{6, 5, 4, 3} {
		if got[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d (newest first)", i, got[i].ID, want)
		}
	}
	if l.Len() != 6 {
		t.Fatalf("Len = %d, want 6", l.Len())
	}
}

func TestSpanLogPartial(t *testing.T) {
	l := NewSpanLog(8)
	l.Append(Span{ID: 1})
	l.Append(Span{ID: 2})
	got := l.Snapshot(5)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Fatalf("snapshot = %+v, want IDs [2 1]", got)
	}
	if got := l.Snapshot(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("snapshot(1) = %+v, want ID 2 only", got)
	}
}

// TestSpanLogConcurrent hammers Append and Snapshot together; every
// returned span must be internally consistent (ID == N, the writers'
// invariant), proving torn reads are discarded.
func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := uint64(w*1_000_000 + i)
				l.Append(Span{ID: id, N: int(id), Outcome: "ok"})
			}
		}(w)
	}
	deadline := time.After(50 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
		}
		for _, s := range l.Snapshot(0) {
			if uint64(s.N) != s.ID {
				t.Fatalf("torn span surfaced: ID=%d N=%d", s.ID, s.N)
			}
		}
	}
}
