package wat

import (
	"math"
	"testing"
	"testing/quick"

	"wfsort/internal/model"
	"wfsort/internal/pram"
)

// runWriteAll executes the skeleton algorithm over `jobs` cells with P
// processors under the given scheduler and returns (machine, metrics).
func runWriteAll(t *testing.T, jobs, p int, seed uint64, sched pram.Scheduler) (*pram.Machine, *model.Metrics) {
	t.Helper()
	var a model.Arena
	w := New(&a, jobs)
	out := a.Array(jobs)
	m := pram.New(pram.Config{P: p, Mem: a.Size(), Seed: seed, Sched: sched})
	w.Seed(m.Memory())
	met, err := m.Run(func(pr model.Proc) {
		w.Run(pr, func(j int) {
			pr.Write(out.At(j), 1)
		})
	})
	if err != nil {
		t.Fatalf("Run(jobs=%d P=%d): %v", jobs, p, err)
	}
	for j := 0; j < jobs; j++ {
		if m.Memory()[out.At(j)] != 1 {
			t.Fatalf("jobs=%d P=%d: cell %d not written", jobs, p, j)
		}
	}
	return m, met
}

func TestWriteAllSingleProcessor(t *testing.T) {
	runWriteAll(t, 13, 1, 0, nil)
}

func TestWriteAllManyShapes(t *testing.T) {
	for _, tc := range []struct{ jobs, p int }{
		{1, 1}, {1, 4}, {2, 2}, {3, 2}, {7, 7}, {8, 8}, {9, 4},
		{16, 16}, {33, 8}, {64, 64}, {100, 10}, {128, 3}, {255, 256},
	} {
		runWriteAll(t, tc.jobs, tc.p, uint64(tc.jobs*1000+tc.p), nil)
	}
}

func TestWriteAllSerializedSchedule(t *testing.T) {
	runWriteAll(t, 32, 8, 1, pram.RoundRobin(1))
}

func TestWriteAllRandomSchedule(t *testing.T) {
	runWriteAll(t, 64, 16, 2, pram.RandomSubset(0.25))
}

func TestWriteAllSurvivesCrashes(t *testing.T) {
	// Kill most processors early; the survivors must still cover all
	// leaves — the essence of wait-freedom.
	const jobs, p = 64, 16
	crashes := pram.RandomCrashes(p, 0.75, 50, 99)
	if len(crashes) == 0 {
		t.Fatal("test needs at least one crash")
	}
	// Never kill everyone: keep pid 0 alive.
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	runWriteAll(t, jobs, p, 3, pram.WithCrashes(pram.Synchronous(), kept))
}

func TestLemma23StepsLogarithmic(t *testing.T) {
	// With P = N and O(1) jobs, completion should take O(log N) steps.
	// Check that steps grow like c·log N, not like N.
	prev := int64(0)
	for _, n := range []int{16, 64, 256, 1024} {
		_, met := runWriteAll(t, n, n, uint64(n), nil)
		logN := int64(math.Log2(float64(n)))
		if met.Steps > 8*logN+16 {
			t.Errorf("N=P=%d: steps = %d, want O(log N) ≈ %d", n, met.Steps, logN)
		}
		if met.Steps < prev {
			// Steps should be monotone-ish in N; not a strict law, just
			// a sanity check against pathological behaviour.
			t.Logf("steps decreased: N=%d steps=%d prev=%d", n, met.Steps, prev)
		}
		prev = met.Steps
	}
}

func TestLemma21NextElementOpsLogarithmic(t *testing.T) {
	// A single next_element call from a leaf of an otherwise-empty tree
	// must finish within O(log N) operations (Lemma 2.1). The worst
	// case for the descent is a fresh tree; for the climb, a tree whose
	// other half is fully DONE.
	for _, n := range []int{4, 16, 64, 256, 1024, 4096} {
		var a model.Arena
		w := New(&a, n)
		m := pram.New(pram.Config{P: 1, Mem: a.Size()})
		w.Seed(m.Memory())
		met, err := m.Run(func(pr model.Proc) {
			i := w.LeafNode(0)
			w.NextElement(pr, i)
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		logN := math.Log2(float64(n))
		if float64(met.Ops) > 4*logN+8 {
			t.Errorf("n=%d: next_element used %d ops, want O(log N) ≈ %.0f", n, met.Ops, logN)
		}
	}
}

func TestNextElementFromLastLeafClimbsToRoot(t *testing.T) {
	// Complete every leaf but one sequentially; the final call must
	// return NoWork.
	const n = 8
	var a model.Arena
	w := New(&a, n)
	m := pram.New(pram.Config{P: 1, Mem: a.Size()})
	w.Seed(m.Memory())
	_, err := m.Run(func(pr model.Proc) {
		visited := 0
		i := w.LeafNode(0)
		for i != NoWork {
			if w.JobOf(i) >= 0 {
				visited++
			}
			i = w.NextElement(pr, i)
		}
		if visited != n {
			t.Errorf("visited %d leaves, want %d", visited, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSeedMarksPaddingOnly(t *testing.T) {
	var a model.Arena
	w := New(&a, 5) // leaves = 8, padding jobs 5..7
	mem := make([]model.Word, a.Size())
	w.Seed(mem)
	for j := 0; j < 5; j++ {
		if mem[w.tree.At(w.LeafNode(j))] != model.Empty {
			t.Errorf("real leaf %d pre-marked", j)
		}
	}
	for n := w.leaves + 5; n < 2*w.leaves; n++ {
		if mem[w.tree.At(n)] != model.Done {
			t.Errorf("padding leaf node %d not pre-marked", n)
		}
	}
	// Parent of leaves 6,7 covers only padding: must be DONE.
	if mem[w.tree.At((w.leaves+6)/2)] != model.Done {
		t.Error("padding-only inner node not pre-marked")
	}
	// Parent of leaves 4,5 covers a real job: must be EMPTY.
	if mem[w.tree.At((w.leaves+4)/2)] != model.Empty {
		t.Error("mixed inner node wrongly pre-marked")
	}
}

func TestSingleJobTree(t *testing.T) {
	var a model.Arena
	w := New(&a, 1)
	m := pram.New(pram.Config{P: 3, Mem: a.Size() + 1})
	out := a.Size()
	w.Seed(m.Memory())
	_, err := m.Run(func(pr model.Proc) {
		w.Run(pr, func(j int) { pr.Write(out, 1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Memory()[out] != 1 {
		t.Error("single job not executed")
	}
}

func TestJobOfAndLeafNodeRoundTrip(t *testing.T) {
	f := func(jobs8 uint8, j8 uint8) bool {
		jobs := int(jobs8)%200 + 1
		j := int(j8) % jobs
		var a model.Arena
		w := New(&a, jobs)
		return w.JobOf(w.LeafNode(j)) == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInitialLeafSpread(t *testing.T) {
	var a model.Arena
	const jobs, p = 64, 8
	w := New(&a, jobs)
	seen := make(map[int]bool)
	for pid := 0; pid < p; pid++ {
		leaf := w.InitialLeaf(pid, p)
		if seen[leaf] {
			t.Errorf("pid %d starts at an already-assigned leaf %d", pid, leaf)
		}
		seen[leaf] = true
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 7: 8, 8: 8, 9: 16, 1000: 1024}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestAccessors(t *testing.T) {
	var a model.Arena
	w := New(&a, 5)
	if w.Jobs() != 5 {
		t.Errorf("Jobs = %d", w.Jobs())
	}
	if w.Leaves() != 8 {
		t.Errorf("Leaves = %d, want 8", w.Leaves())
	}
	if w.Depth() != 3 {
		t.Errorf("Depth = %d, want 3", w.Depth())
	}
	if !w.IsLeaf(w.LeafNode(0)) || w.IsLeaf(1) {
		t.Error("IsLeaf wrong")
	}
	if w.JobOf(1) != -1 {
		t.Error("JobOf(inner) should be -1")
	}
	if w.JobOf(w.Leaves()+7) != -1 {
		t.Error("JobOf(padding) should be -1")
	}
}

func TestLeafNodeRejectsOutOfRange(t *testing.T) {
	var a model.Arena
	w := New(&a, 4)
	for _, bad := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LeafNode(%d) did not panic", bad)
				}
			}()
			w.LeafNode(bad)
		}()
	}
}
