// Package wat implements Work Assignment Trees — the deterministic
// work-allocation structure of the paper's Figure 1 (the next_element
// routine, after Algorithm X of Buss, Kanellakis, Ragde and Shvartsman)
// and the skeleton wait-free algorithm of Figure 2 built on it.
//
// A WAT is a complete binary tree whose leaves are jobs and whose inner
// nodes summarize completion of their subtrees. A processor that
// finishes a leaf marks it DONE and climbs until it finds an incomplete
// sibling subtree, then descends into it to claim more work. Lemma 2.1:
// one next_element call is wait-free and takes O(log N) operations.
// Lemma 2.3: with P = N processors on a faultless synchronous PRAM the
// skeleton algorithm completes in O(K + log N) steps for O(K)-step
// jobs.
//
// The same leaf may be executed by several processors (a processor can
// descend to a leaf just before another finishes it), so job functions
// must be idempotent — every use in this repository is.
package wat

import (
	"math/bits"

	"wfsort/internal/model"
)

// NoWork is returned by NextElement when the whole tree is complete.
const NoWork = 0

// WAT is a work-assignment tree over a fixed number of jobs. Nodes are
// stored as a 1-indexed binary heap in shared memory: node 1 is the
// root, node n's children are 2n and 2n+1, and the leaves are nodes
// [leaves, 2·leaves). Jobs beyond the requested count (padding up to a
// power of two) are pre-marked DONE by Seed.
type WAT struct {
	tree   model.Region
	leaves int // power of two
	jobs   int
}

// New lays out a WAT for the given number of jobs (>= 1) in the arena.
// Call Seed on the runtime's memory before running programs that use
// the tree. The allocator decides physical placement: the simulator's
// dense model.Arena keeps the heap contiguous, while the padded native
// arenas give the contended top nodes their own cache lines.
func New(a model.Allocator, jobs int) *WAT {
	return NewNamed(a, "wat", jobs)
}

// NewNamed is New with a region label for contention profiles.
func NewNamed(a model.Allocator, name string, jobs int) *WAT {
	if jobs < 1 {
		panic("wat: jobs must be >= 1")
	}
	leaves := ceilPow2(jobs)
	return &WAT{
		tree:   a.Named(name, 2*leaves),
		leaves: leaves,
		jobs:   jobs,
	}
}

// Jobs returns the number of real jobs tracked by the tree.
func (w *WAT) Jobs() int { return w.jobs }

// Leaves returns the (power-of-two) leaf count including padding.
func (w *WAT) Leaves() int { return w.leaves }

// Depth returns the tree depth (root = depth 0; leaves at Depth).
func (w *WAT) Depth() int { return bits.TrailingZeros(uint(w.leaves)) }

// Seed pre-marks padding leaves, and inner nodes whose whole subtree is
// padding, as DONE in the runtime's memory. It must run before the
// machine does (initialization is free, matching the paper's assumption
// of an initialized work array).
func (w *WAT) Seed(mem []model.Word) {
	if w.jobs == w.leaves {
		return
	}
	for n := 2*w.leaves - 1; n >= 1; n-- {
		if w.isLeafNode(n) {
			if n-w.leaves >= w.jobs {
				mem[w.tree.At(n)] = model.Done
			}
		} else if mem[w.tree.At(2*n)] == model.Done && mem[w.tree.At(2*n+1)] == model.Done {
			mem[w.tree.At(n)] = model.Done
		}
	}
}

// NodeAddr returns the shared-memory address of tree node n, for
// callers (like the randomized phase-1 allocation of §2.3) that probe
// and mark nodes directly.
func (w *WAT) NodeAddr(n int) int { return w.tree.At(n) }

// LeafNode returns the tree node holding job j (0-based).
func (w *WAT) LeafNode(j int) int {
	if j < 0 || j >= w.jobs {
		panic("wat: job index out of range")
	}
	return w.leaves + j
}

// JobOf returns the job index of a leaf node, or -1 for padding or
// inner nodes.
func (w *WAT) JobOf(node int) int {
	if !w.isLeafNode(node) {
		return -1
	}
	j := node - w.leaves
	if j >= w.jobs {
		return -1
	}
	return j
}

// IsLeaf reports whether node is a leaf of the tree.
func (w *WAT) IsLeaf(node int) bool { return w.isLeafNode(node) }

func (w *WAT) isLeafNode(n int) bool { return n >= w.leaves }

// InitialLeaf returns the paper's starting assignment for a processor:
// leaf number jobs·pid/P, spreading processors evenly across the jobs.
func (w *WAT) InitialLeaf(pid, numProcs int) int {
	return w.LeafNode(w.jobs * pid / numProcs)
}

// NextElement is the routine of Figure 1. It marks node i DONE, climbs
// while sibling subtrees are complete, and descends into the first
// incomplete sibling it finds. It returns the next node to work on — a
// leaf normally, an inner node whose completion information is stale
// (the caller should simply pass it back in), or NoWork when the root
// has been marked DONE.
//
// The routine is wait-free: the climb and the descent each move
// monotonically through a tree of depth log N (Lemma 2.1).
func (w *WAT) NextElement(p model.Proc, i int) int {
	t := w.tree
	p.Write(t.At(i), model.Done)
	if i == 1 {
		// Single-node tree: the root is the only leaf.
		return NoWork
	}
	for {
		s := sibling(i)
		if p.Read(t.At(s)) == model.Done {
			par := i / 2
			p.Write(t.At(par), model.Done)
			i = par
			if par == 1 {
				return NoWork
			}
			continue
		}
		i = s
		break
	}
	for !w.isLeafNode(i) {
		l, r := 2*i, 2*i+1
		if p.Read(t.At(l)) != model.Done {
			i = l
		} else if p.Read(t.At(r)) != model.Done {
			i = r
		} else {
			// Both children DONE but the node is not: its information
			// is outdated. Return it so the caller re-enters and the
			// climb marks it (the paper's "special case").
			return i
		}
	}
	return i
}

// Run is the skeleton wait-free algorithm of Figure 2: the processor
// starts at its evenly-spaced leaf and executes job functions until the
// whole tree is DONE. job may be invoked more than once per index
// (concurrently with other processors) and must be idempotent.
func (w *WAT) Run(p model.Proc, job func(j int)) {
	var i int
	if p.NumProcs() <= w.jobs {
		i = w.InitialLeaf(p.ID(), p.NumProcs())
	} else {
		// More processors than jobs: wrap around so every processor
		// starts at a valid leaf.
		i = w.LeafNode(p.ID() % w.jobs)
	}
	for i != NoWork {
		if j := w.JobOf(i); j >= 0 {
			job(j)
		}
		i = w.NextElement(p, i)
	}
}

func sibling(n int) int { return n ^ 1 }

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
