package model

import "testing"

// stubProc records calls; only the methods SubProc overrides matter.
type stubProc struct {
	Proc
	lessCalls  [][2]int
	phaseCalls []string
}

func (s *stubProc) ID() int           { return 99 }
func (s *stubProc) NumProcs() int     { return 100 }
func (s *stubProc) Phase(name string) { s.phaseCalls = append(s.phaseCalls, name) }
func (s *stubProc) Less(i, j int) bool {
	s.lessCalls = append(s.lessCalls, [2]int{i, j})
	return i < j
}

func TestSubProcRemapping(t *testing.T) {
	inner := &stubProc{}
	sub := NewSubProc(inner, 3, 8, 20, "grp:")
	if sub.ID() != 3 {
		t.Errorf("ID = %d, want 3 (not the inner 99)", sub.ID())
	}
	if sub.NumProcs() != 8 {
		t.Errorf("NumProcs = %d, want 8", sub.NumProcs())
	}
	// Local elements 1 and 5 map to global 21 and 25.
	if !sub.Less(1, 5) {
		t.Error("Less(1,5) should hold for increasing global ids")
	}
	if got := inner.lessCalls[0]; got != [2]int{21, 25} {
		t.Errorf("inner Less called with %v, want [21 25]", got)
	}
	sub.Phase("build")
	if inner.phaseCalls[0] != "grp:build" {
		t.Errorf("Phase forwarded as %q", inner.phaseCalls[0])
	}
}

func TestSubProcRejectsBadID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range sub id accepted")
		}
	}()
	NewSubProc(&stubProc{}, 8, 8, 0, "")
}
