package model

import (
	"fmt"
	"sort"
	"strings"
)

// PhaseMetrics aggregates measurements attributed to one Phase label.
type PhaseMetrics struct {
	// Ops is the number of shared-memory operations (including Idle)
	// executed under this label.
	Ops int64
	// Steps is the number of machine steps during which at least one
	// operation carried this label.
	Steps int64
	// MaxContention is the maximum number of same-step accesses to a
	// single memory word by operations under this label.
	MaxContention int
	// Stalls is the Dwork–Herlihy–Waarts total-stall count: for every
	// step and address, accesses-1, summed.
	Stalls int64
	// Latency is the wall-clock time incarnations spent in this phase,
	// one observation per (incarnation, phase) span, log-bucketed. Only
	// the native runtime fills it, and only when an observer
	// (internal/obs) is installed; it is nil on simulator runs, where
	// Steps is the exact clock and wall time is meaningless.
	Latency *Histogram
}

// Metrics reports what a run cost. Which fields are filled depends on
// the runtime:
//
//   - The simulator (internal/pram) has a global clock and sees every
//     access, so it fills everything except the native-only fields:
//     Steps, QRQWTime, exact MaxContention and Stalls, and per-phase
//     Ops/Steps/MaxContention/Stalls. Respawns, InjectedStalls and
//     per-phase Latency stay zero/nil (its crash model is permanent
//     fail-stop and its delay model is the scheduler, not wall time).
//   - The native runtime (internal/native) has no global clock: Steps,
//     QRQWTime, MaxContention and Stalls stay zero. With CountOps it
//     fills Ops, CASes and CASFailures (the CAS-failure ratio is the
//     hardware contention signal), plus Killed/Respawns/InjectedStalls
//     from the fault plane. With an observer installed (internal/obs)
//     it additionally fills ByPhase: per-phase Ops from op-ordinal
//     deltas and per-phase Latency histograms, summarized as p50/p99
//     by String.
type Metrics struct {
	// P is the number of processors the run started with.
	P int
	// Steps is the number of machine steps until the last live
	// processor returned.
	Steps int64
	// Ops is the total number of shared-memory operations executed.
	Ops int64
	// Reads, Writes, CASes, Idles break Ops down by kind.
	Reads, Writes, CASes, Idles int64
	// CASFailures counts failed compare-and-swaps. On real hardware
	// (internal/native) a failed CAS is the observable trace of memory
	// contention, so the ratio CASFailures/CASes is the native
	// counterpart of the simulator's exact contention measure.
	CASFailures int64
	// MaxContention is the paper's contention measure (§1.2): the
	// maximum number of operations addressing a single memory word in a
	// single step, over the whole run.
	MaxContention int
	// Stalls is the Dwork-style total-stall count over the run.
	Stalls int64
	// QRQWTime is the run's duration under the Queue-Read Queue-Write
	// cost model (each step costs its maximum per-word access queue
	// length) — the contention-sensitive clock of Gibbons, Matias and
	// Ramachandran that §3 of the paper refers to. Equal to Steps when
	// no word is ever accessed twice in a step.
	QRQWTime int64
	// Killed is the number of processors crashed by the scheduler (both
	// runtimes) or by an injected fault plan (native).
	Killed int
	// Respawns is the number of killed processors revived with a fresh
	// incarnation (native runtime only).
	Respawns int
	// InjectedStalls counts adversary-injected stalls (native runtime
	// only; the simulator models delay through its schedulers instead).
	InjectedStalls int64
	// ByPhase attributes cost to Phase labels, in first-seen order.
	ByPhase map[string]*PhaseMetrics

	phaseOrder []string
}

// PhaseNames returns phase labels in order of first appearance.
func (m *Metrics) PhaseNames() []string {
	if m.phaseOrder != nil {
		return m.phaseOrder
	}
	names := make([]string, 0, len(m.ByPhase))
	for name := range m.ByPhase {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RecordPhase notes that a phase label was observed; runtimes call it to
// preserve first-seen ordering.
func (m *Metrics) RecordPhase(name string) *PhaseMetrics {
	if m.ByPhase == nil {
		m.ByPhase = make(map[string]*PhaseMetrics)
	}
	pm, ok := m.ByPhase[name]
	if !ok {
		pm = &PhaseMetrics{}
		m.ByPhase[name] = pm
		m.phaseOrder = append(m.phaseOrder, name)
	}
	return pm
}

// String renders a compact human-readable summary.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P=%d steps=%d qrqw=%d ops=%d (r=%d w=%d cas=%d idle=%d) maxcont=%d stalls=%d killed=%d",
		m.P, m.Steps, m.QRQWTime, m.Ops, m.Reads, m.Writes, m.CASes, m.Idles, m.MaxContention, m.Stalls, m.Killed)
	if m.Respawns > 0 || m.InjectedStalls > 0 {
		fmt.Fprintf(&b, " respawns=%d injstalls=%d", m.Respawns, m.InjectedStalls)
	}
	for _, name := range m.PhaseNames() {
		pm := m.ByPhase[name]
		fmt.Fprintf(&b, "\n  phase %-12s ops=%-10d steps=%-8d maxcont=%-6d stalls=%d",
			name, pm.Ops, pm.Steps, pm.MaxContention, pm.Stalls)
		if pm.Latency != nil && pm.Latency.Count > 0 {
			fmt.Fprintf(&b, " %s", pm.Latency.Summary())
		}
	}
	return b.String()
}
