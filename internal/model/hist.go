package model

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// histBuckets is the number of log2 latency buckets: bucket b holds
// observations with bits.Len64(ns) == b, i.e. durations in
// [2^(b-1), 2^b) nanoseconds, so the range covers sub-nanosecond
// through ~292 years without configuration.
const histBuckets = 64

// Histogram is a log-bucketed latency histogram: fixed size, no
// allocation after creation, mergeable across workers and runs. The
// native observability plane records one per (phase, incarnation) and
// merges them into Metrics.ByPhase; quantiles are therefore estimates
// with at most 2x resolution error (the bucket width), which is the
// right fidelity for wall-clock phase latencies on a preemptive
// scheduler.
type Histogram struct {
	// Buckets[b] counts observations with bits.Len64(ns) == b.
	Buckets [histBuckets]int64
	// Count is the total number of observations.
	Count int64
	// Sum is the exact sum of all observed values in nanoseconds.
	Sum int64
}

// Observe records one duration in nanoseconds; negative values clamp
// to zero.
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.Buckets[bits.Len64(uint64(ns))]++
	h.Count++
	h.Sum += ns
}

// Merge folds o into h. A nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for b := range o.Buckets {
		h.Buckets[b] += o.Buckets[b]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Quantile returns an upper-bound estimate (the top of the holding
// bucket) of the q-th quantile in nanoseconds, for q in [0, 1]. A
// histogram with no observations returns 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(h.Count-1))
	var seen int64
	for b, c := range h.Buckets {
		seen += c
		if c > 0 && seen > rank {
			if b == 0 {
				return 0
			}
			if b >= 63 {
				return math.MaxInt64
			}
			return int64(1)<<uint(b) - 1
		}
	}
	return math.MaxInt64
}

// Mean returns the exact mean in nanoseconds (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Summary renders "p50=… p99=…" with human time units, the form
// Metrics.String embeds per phase.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("p50=%v p99=%v",
		time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(h.Quantile(0.99)).Round(time.Microsecond))
}
