package model

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	// 90 fast observations, 10 slow: p50 lands in the fast bucket, p99
	// in the slow one. Quantiles are upper bucket bounds (2^b - 1).
	for i := 0; i < 90; i++ {
		h.Observe(1000) // bucket 10: [512, 1024)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1_000_000) // bucket 20
	}
	if h.Count != 100 || h.Sum != 90*1000+10*1_000_000 {
		t.Fatalf("count/sum = %d/%d", h.Count, h.Sum)
	}
	if got := h.Quantile(0.50); got != (1<<10)-1 {
		t.Errorf("p50 = %d, want %d", got, (1<<10)-1)
	}
	if got := h.Quantile(0.99); got != (1<<20)-1 {
		t.Errorf("p99 = %d, want %d", got, (1<<20)-1)
	}
	if got := h.Mean(); got != (90*1000+10*1_000_000)/100 {
		t.Errorf("mean = %d", got)
	}
}

func TestHistogramMergeAndClamp(t *testing.T) {
	var a, b Histogram
	a.Observe(100)
	b.Observe(-5) // clamps to 0: bucket 0
	b.Observe(200)
	a.Merge(&b)
	a.Merge(nil) // no-op
	if a.Count != 3 || a.Sum != 300 {
		t.Fatalf("after merge count/sum = %d/%d, want 3/300", a.Count, a.Sum)
	}
	if a.Buckets[0] != 1 {
		t.Errorf("clamped observation should land in bucket 0")
	}
	if got := a.Quantile(0); got != 0 {
		t.Errorf("q0 = %d, want 0 (bucket 0 upper bound)", got)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Errorf("top-bucket quantile = %d, want MaxInt64", got)
	}
	if !strings.Contains(h.Summary(), "p50=") {
		t.Errorf("summary = %q", h.Summary())
	}
}

func TestMetricsStringIncludesLatency(t *testing.T) {
	var m Metrics
	pm := m.RecordPhase("1:build")
	pm.Ops = 42
	pm.Latency = &Histogram{}
	pm.Latency.Observe(1500)
	if s := m.String(); !strings.Contains(s, "p50=") {
		t.Errorf("Metrics.String should include phase latency: %s", s)
	}
	// A phase without latency (simulator) must render without it.
	m2 := Metrics{}
	m2.RecordPhase("1:build").Ops = 42
	if s := m2.String(); strings.Contains(s, "p50=") {
		t.Errorf("simulator metrics must not render latency: %s", s)
	}
}
