package model

// Completion-scan helpers shared by the §2 and §3 sorts. Both variants
// gate phase transitions on the same mark vocabulary — Done for a
// complete subtree, AllDone for global completion (Fig. 8) — and both
// derive ranks from the same "size of the small subtree hanging off a
// child pointer" read. These helpers keep that logic in one place, next
// to the Done/AllDone constants they interpret; each preserves the
// exact shared-memory operation sequence of the loops it was factored
// from, which is what keeps the simulator goldens byte-identical.

// Doneish reports whether a completion mark means "subtree complete":
// both Done and AllDone count (the ALLDONE push-down of §3.3 may
// overwrite a plain DONE).
func Doneish(v Word) bool { return v == Done || v == AllDone }

// ChildSum returns (size, true) when the subtree hanging off child
// pointer c is completely summed, judged by its bottom-up completion
// mark; absent children count as size 0. One mark read, then — only
// when the mark is doneish — one size read: the §3.3 probing rule for
// phase 2.
func ChildSum(p Proc, c Word, markAddr, sizeAddr func(i int) int) (Word, bool) {
	if c == Empty {
		return 0, true
	}
	if !Doneish(p.Read(markAddr(int(c)))) {
		return 0, false
	}
	return p.Read(sizeAddr(int(c))), true
}

// SmallSubtreeSize reads the size of the subtree hanging off child
// pointer c, with absent children contributing 0 — the quantity every
// find_place derivation (Fig. 6 and the §3.3 probing variant alike)
// adds to a parent's rank components. Exactly one size read when the
// child exists, none otherwise.
func SmallSubtreeSize(p Proc, c Word, sizeAddr func(i int) int) Word {
	if c == Empty {
		return 0
	}
	return p.Read(sizeAddr(int(c)))
}
