package model

// SubProc presents a processor to an algorithm as a member of a smaller
// machine: a contiguous group of processors working on a slice of the
// input. The §3.2 sort splits P processors into sqrt(P) groups, each
// running the Section 2 sort on its own slice; wrapping the processor
// lets that inner sort run completely unchanged.
//
// ID and NumProcs are remapped to the group-local view, Less is
// remapped so local element ids 1..len address input elements
// base+1..base+len, and Phase is prefixed so metrics distinguish inner
// phases from outer ones.
type SubProc struct {
	Proc
	subID       int
	subP        int
	base        int
	phasePrefix string
}

// NewSubProc wraps p as processor subID of a subP-processor machine
// whose element i is the parent machine's element base+i. phasePrefix
// is prepended to Phase labels.
func NewSubProc(p Proc, subID, subP, base int, phasePrefix string) *SubProc {
	if subID < 0 || subID >= subP {
		panic("model: SubProc id out of range")
	}
	return &SubProc{Proc: p, subID: subID, subP: subP, base: base, phasePrefix: phasePrefix}
}

// ID returns the group-local processor id.
func (s *SubProc) ID() int { return s.subID }

// NumProcs returns the group size.
func (s *SubProc) NumProcs() int { return s.subP }

// Less remaps local element ids onto the parent machine's input.
func (s *SubProc) Less(i, j int) bool { return s.Proc.Less(s.base+i, s.base+j) }

// Phase prefixes the label with the group's prefix.
func (s *SubProc) Phase(name string) { s.Proc.Phase(s.phasePrefix + name) }
