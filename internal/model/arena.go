package model

import (
	"fmt"

	"wfsort/internal/xrand"
)

// Rng is the deterministic per-processor random stream type.
type Rng = xrand.Rand

// Region is a range of shared-memory words, used to give structure
// (arrays, trees, record fields) to the flat address space. The zero
// value is an empty region.
//
// A region is normally contiguous. Allocators that lay memory out for
// real hardware (internal/native) may set Hot > 0: the first Hot words
// are then spread LineWords apart so that each lives on its own cache
// line, and the remaining Len-Hot words follow contiguously. Hot is a
// physical-layout concern only; logical indices are unchanged. The
// simulator's Arena always produces Hot = 0, so simulated addresses
// (and therefore step counts and contention) never depend on layout.
type Region struct {
	Base int // first word
	Len  int // number of logical words
	Hot  int // words of cache-line-padded prefix (0 = fully contiguous)
}

// LineWords is the number of words assumed per hardware cache line
// (64 bytes / 8-byte words). Padded layouts space hot words this far
// apart.
const LineWords = 8

// At returns the address of the i-th word of the region. It panics on
// out-of-range access: on a PRAM a stray address silently corrupts some
// other structure, so bounds violations are programming errors we want
// loudly at the fault site.
func (r Region) At(i int) int {
	if i < 0 || i >= r.Len {
		panic(fmt.Sprintf("model: region access %d out of [0,%d)", i, r.Len))
	}
	if i < r.Hot {
		return r.Base + i*LineWords
	}
	return r.Base + r.Hot*LineWords + (i - r.Hot)
}

// Extent returns the number of physical words the region occupies,
// including padding introduced by a hot prefix.
func (r Region) Extent() int {
	if r.Hot == 0 {
		return r.Len
	}
	return r.Len + (LineWords-1)*r.Hot
}

// NamedRegion is a region annotated with the structure it implements,
// for contention-attribution tooling (internal/trace).
type NamedRegion struct {
	Name string
	Region
}

// Allocator is the layout-time interface shared by every shared-memory
// arena. Algorithm constructors take an Allocator so the same layout
// code can target either the simulator's dense Arena (addresses are a
// pure function of allocation order — the basis of every golden-metric
// test) or a hardware-aware arena such as internal/native's padded
// layouts, which align structures to cache lines and give hot words a
// padded prefix. *Arena implements Allocator.
type Allocator interface {
	// Array reserves n words and returns the region.
	Array(n int) Region
	// Named reserves n words under a label; the label shows up in
	// per-region contention profiles and drives hardware layout rules.
	Named(name string, n int) Region
	// Word reserves a single word and returns its address.
	Word() int
	// NamedWord reserves a single labelled word and returns its address.
	NamedWord(name string) int
	// Regions returns every labelled region, in allocation order.
	Regions() []NamedRegion
	// Size returns the number of physical words reserved so far; pass it
	// to the runtime as the memory size.
	Size() int
}

// Arena hands out non-overlapping regions of shared memory. Lay out all
// structures with a single Arena before a run, then size the machine
// with Size. The zero value allocates from address 0.
type Arena struct {
	next  int
	named []NamedRegion
}

var _ Allocator = (*Arena)(nil)

// Array reserves n words and returns the region.
func (a *Arena) Array(n int) Region {
	if n < 0 {
		panic("model: negative array size")
	}
	r := Region{Base: a.next, Len: n}
	a.next += n
	return r
}

// Named reserves n words under a label; the label shows up in
// per-region contention profiles. Layout code uses it for every
// structure whose traffic is worth attributing.
func (a *Arena) Named(name string, n int) Region {
	r := a.Array(n)
	a.named = append(a.named, NamedRegion{Name: name, Region: r})
	return r
}

// Word reserves a single word and returns its address.
func (a *Arena) Word() int {
	addr := a.next
	a.next++
	return addr
}

// NamedWord reserves a single labelled word and returns its address.
func (a *Arena) NamedWord(name string) int {
	return a.Named(name, 1).Base
}

// Regions returns every labelled region, in allocation order. The
// returned slice is shared; callers must not modify it.
func (a *Arena) Regions() []NamedRegion { return a.named }

// Size returns the number of words reserved so far; pass it to the
// runtime as the memory size.
func (a *Arena) Size() int { return a.next }
