package model

import (
	"fmt"

	"wfsort/internal/xrand"
)

// Rng is the deterministic per-processor random stream type.
type Rng = xrand.Rand

// Region is a contiguous range of shared-memory words, used to give
// structure (arrays, trees, record fields) to the flat address space.
// The zero value is an empty region.
type Region struct {
	Base int // first word
	Len  int // number of words
}

// At returns the address of the i-th word of the region. It panics on
// out-of-range access: on a PRAM a stray address silently corrupts some
// other structure, so bounds violations are programming errors we want
// loudly at the fault site.
func (r Region) At(i int) int {
	if i < 0 || i >= r.Len {
		panic(fmt.Sprintf("model: region access %d out of [0,%d)", i, r.Len))
	}
	return r.Base + i
}

// NamedRegion is a region annotated with the structure it implements,
// for contention-attribution tooling (internal/trace).
type NamedRegion struct {
	Name string
	Region
}

// Arena hands out non-overlapping regions of shared memory. Lay out all
// structures with a single Arena before a run, then size the machine
// with Size. The zero value allocates from address 0.
type Arena struct {
	next  int
	named []NamedRegion
}

// Array reserves n words and returns the region.
func (a *Arena) Array(n int) Region {
	if n < 0 {
		panic("model: negative array size")
	}
	r := Region{Base: a.next, Len: n}
	a.next += n
	return r
}

// Named reserves n words under a label; the label shows up in
// per-region contention profiles. Layout code uses it for every
// structure whose traffic is worth attributing.
func (a *Arena) Named(name string, n int) Region {
	r := a.Array(n)
	a.named = append(a.named, NamedRegion{Name: name, Region: r})
	return r
}

// Word reserves a single word and returns its address.
func (a *Arena) Word() int {
	addr := a.next
	a.next++
	return addr
}

// NamedWord reserves a single labelled word and returns its address.
func (a *Arena) NamedWord(name string) int {
	return a.Named(name, 1).Base
}

// Regions returns every labelled region, in allocation order. The
// returned slice is shared; callers must not modify it.
func (a *Arena) Regions() []NamedRegion { return a.named }

// Size returns the number of words reserved so far; pass it to the
// runtime as the memory size.
func (a *Arena) Size() int { return a.next }
