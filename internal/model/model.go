// Package model defines the abstract machine against which every
// algorithm in this repository is written: a set of P processors sharing
// a flat word-addressed memory, in the style of a CRCW PRAM extended
// with compare-and-swap.
//
// Algorithms are expressed as a Program — ordinary Go code parameterized
// by a Proc. Two runtimes implement Proc: the deterministic simulator in
// internal/pram (exact step counts, contention accounting, adversarial
// scheduling, crash injection) and the real-goroutine runtime in
// internal/native (sync/atomic shared memory). Writing against Proc once
// lets the same algorithm be measured on the paper's machine model and
// shipped as a practical parallel sort.
package model

// Word is the unit of shared memory. All shared state manipulated by the
// algorithms (tree pointers, sizes, ranks, work-assignment markers) is
// stored as words; element keys never enter shared memory — comparisons
// go through Proc.Less on the immutable input.
type Word = int64

// Sentinel word values. Element and node indices are 1-based throughout
// so that the zero value of memory reads as Empty.
const (
	// Empty marks an unset pointer or an unclaimed slot (zero value).
	Empty Word = 0
	// Done marks a completed leaf or subtree in work-assignment trees.
	Done Word = -1
	// AllDone marks global completion in low-contention WATs (Fig. 8).
	AllDone Word = -2
)

// Proc is one processor's view of the machine. Each shared-memory
// operation costs one time step on the simulated backend. Methods are
// only safe to call from the goroutine running the Program.
type Proc interface {
	// ID returns this processor's id in [0, NumProcs()).
	ID() int
	// NumProcs returns P, the number of processors in the run.
	NumProcs() int

	// Read returns the current value of memory word a.
	Read(a int) Word
	// Write stores v into memory word a.
	Write(a int, v Word)
	// CAS atomically replaces the value of word a with new if it equals
	// old, reporting whether the swap happened.
	CAS(a int, old, new Word) bool
	// Idle consumes one time step without touching memory. The paper's
	// winner-selection routine (Fig. 9) uses timed waits; Idle models
	// them faithfully on the simulator and is a yield hint natively.
	Idle()

	// Less reports the input ordering between element indices i and j
	// (1-based). It is a local operation on the immutable input and
	// costs no shared-memory step. Runtimes guarantee it is a strict
	// total order (ties broken by index).
	Less(i, j int) bool

	// Rand returns this processor's private deterministic RNG stream.
	Rand() *Rng

	// Phase labels subsequent operations for metrics attribution. It is
	// free (costs no step) and purely observational.
	Phase(name string)
}

// Program is the code run by every processor. The run completes when all
// live processors have returned. A processor killed by the scheduler
// unwinds out of the Program via panic; programs must not recover it
// (runtimes catch it at the boundary).
type Program func(p Proc)

// Killed is the panic value delivered to a processor that has been
// crashed by the scheduler. Runtimes recover it at the Program boundary;
// algorithm code must let it propagate.
type Killed struct{ PID int }
