package model

import (
	"wfsort/internal/xrand"
)

// Crash schedules one processor's fail-stop. The spec vocabulary is
// shared by both runtimes; only the clock differs:
//
//   - On the simulator (internal/pram) Step is a machine step: the
//     processor is killed at the first step >= Step at which it is
//     ready, and never runs again.
//   - On the native runtime (internal/native) there is no global clock,
//     so Step is the processor's own operation ordinal: the processor
//     is killed in place of its Step-th shared-memory operation
//     (ordinals count from 1; Step 0 kills at the first operation).
//
// Per-processor operation counts are the quantity the paper's
// wait-freedom lemmas bound, which makes them the natural native
// analogue of simulator steps: the same []Crash drives a crash quorum
// on either runtime, deterministically.
type Crash struct {
	Step int64 // machine step (pram) / per-processor op ordinal (native)
	PID  int
}

// RandomCrashes builds a crash list killing each processor in [0, p)
// with probability frac, at a uniform step in [0, window). The run seed
// is deliberately not reused: pass any fixed seed for reproducibility.
func RandomCrashes(p int, frac float64, window int64, seed uint64) []Crash {
	rng := xrand.New(seed)
	var out []Crash
	for pid := 0; pid < p; pid++ {
		if rng.Float64() < frac {
			step := int64(0)
			if window > 0 {
				step = rng.Int63() % window
			}
			out = append(out, Crash{Step: step, PID: pid})
		}
	}
	return out
}

// FaultAction enumerates what an Adversary may do to a processor at one
// operation.
type FaultAction int

// Fault actions.
const (
	// FaultNone lets the operation proceed.
	FaultNone FaultAction = iota
	// FaultKill crashes the processor in place of the operation: the
	// Program unwinds via a Killed panic, exactly as a simulator crash
	// or a native Kill landing.
	FaultKill
	// FaultStall delays the processor before the operation executes —
	// the paper's fail/delay adversary's other half. A stalled
	// processor holds no locks (there are none) and blocks nobody;
	// wait-freedom demands the rest of the fleet is unaffected.
	FaultStall
	// FaultBlock parks the processor indefinitely in place of the
	// operation: it stops advancing but stays live until killed. This
	// is the limit case of FaultStall — the "arbitrarily delayed"
	// processor of the paper's fail/delay model — and the fault the
	// observability plane's progress watchdog (internal/obs) exists to
	// detect. The run only completes after the blocked processor is
	// killed (native Runtime.Kill), since Run waits for every
	// goroutine.
	FaultBlock
)

// String returns the action's mnemonic.
func (a FaultAction) String() string {
	switch a {
	case FaultNone:
		return "none"
	case FaultKill:
		return "kill"
	case FaultStall:
		return "stall"
	case FaultBlock:
		return "block"
	default:
		return "faultaction(?)"
	}
}

// Fault is an Adversary's verdict for one operation.
type Fault struct {
	Action FaultAction
	// StallOps is the stall length for FaultStall, in scheduler-yield
	// units (the native runtime calls runtime.Gosched this many times).
	StallOps int
}

// Adversary is a fault-injection policy for the native runtime: it is
// consulted before every shared-memory operation with the processor's
// cumulative operation ordinal (1-based, carried across respawned
// incarnations) and decides whether the operation proceeds, stalls, or
// becomes the processor's death. Implementations are called
// concurrently from different processors' goroutines but always
// sequentially for any single pid, so per-pid state needs no locking.
//
// Deterministic, op-count-driven adversaries (internal/native's Plan)
// make native failure interleavings reproducible at exact points in
// each processor's execution — the hardware counterpart of the
// simulator's crash schedules.
type Adversary interface {
	Strike(pid int, op int64) Fault
}
