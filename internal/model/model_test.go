package model

import (
	"testing"
)

func TestArenaRegionsDisjoint(t *testing.T) {
	var a Arena
	r1 := a.Array(10)
	w := a.Word()
	r2 := a.Array(5)
	if r1.Base != 0 || r1.Len != 10 {
		t.Errorf("r1 = %+v", r1)
	}
	if w != 10 {
		t.Errorf("word addr = %d, want 10", w)
	}
	if r2.Base != 11 || r2.Len != 5 {
		t.Errorf("r2 = %+v", r2)
	}
	if a.Size() != 16 {
		t.Errorf("size = %d, want 16", a.Size())
	}
}

func TestRegionAtBounds(t *testing.T) {
	var a Arena
	r := a.Array(3)
	if r.At(0) != 0 || r.At(2) != 2 {
		t.Error("At miscomputed")
	}
	for _, bad := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", bad)
				}
			}()
			r.At(bad)
		}()
	}
}

func TestArenaNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Array(-1) did not panic")
		}
	}()
	var a Arena
	a.Array(-1)
}

func TestMetricsPhaseOrdering(t *testing.T) {
	var m Metrics
	m.RecordPhase("z")
	m.RecordPhase("a")
	m.RecordPhase("z")
	got := m.PhaseNames()
	if len(got) != 2 || got[0] != "z" || got[1] != "a" {
		t.Errorf("PhaseNames = %v, want [z a] (first-seen order)", got)
	}
}

func TestMetricsString(t *testing.T) {
	var m Metrics
	m.P = 4
	m.RecordPhase("build").Ops = 7
	s := m.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
