// Package chaos is the wait-freedom certification harness for the
// native runtime. The paper's headline guarantee — every surviving
// processor completes the sort in bounded steps no matter which
// processors crash and when — is exercised in the simulator by
// adversarial schedulers and crash schedules; this package carries the
// same discipline to real goroutines:
//
//   - seeded, deterministic fault schedules (native.Plan) drive kills,
//     stalls and respawns at exact per-processor operation ordinals;
//   - after every run the certifier checks the sorted output AND a
//     per-processor operation ceiling derived from the paper's
//     O(N log N / P) bound, scaled by a measured constant — turning
//     "survivors finish in bounded time" into an asserted property;
//   - differential runs push the same model.Crash specs through
//     internal/pram and internal/native (across every arena layout) and
//     require identical sorted output.
//
// cmd/chaos sweeps adversary policies x P x layouts and emits a JSON
// report; the CI chaos-smoke job runs a small sweep under -race.
package chaos

import (
	"cmp"
	"fmt"
	"math/bits"
	"os"
	"sort"
	"time"

	"wfsort/internal/core"
	"wfsort/internal/lowcont"
	"wfsort/internal/model"
	"wfsort/internal/native"
	"wfsort/internal/obs"
	"wfsort/internal/pram"
	"wfsort/internal/xrand"
)

// Layout selects the native arena layout, mirroring the public
// wfsort.Layout values (this package cannot import the root package).
type Layout int

// Native arena layouts, fastest first.
const (
	LayoutSharded Layout = iota
	LayoutPadded
	LayoutFlat
)

// String returns the layout's mnemonic.
func (l Layout) String() string {
	switch l {
	case LayoutSharded:
		return "sharded"
	case LayoutPadded:
		return "padded"
	case LayoutFlat:
		return "flat"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// Layouts lists every native arena layout.
func Layouts() []Layout { return []Layout{LayoutSharded, LayoutPadded, LayoutFlat} }

// ArenaFor mirrors the root package's layout -> (allocator, tuning)
// mapping (wfsort.nativeArena); keep the two in sync. Exported so the
// native-runtime CLIs (cmd/trace, cmd/stress) build the same arenas
// the sweep certifies.
func ArenaFor(n, workers int, l Layout) (model.Allocator, core.Tuning) {
	switch l {
	case LayoutFlat:
		return &model.Arena{}, core.Tuning{}
	case LayoutPadded:
		return native.NewArena(native.Padded), core.Tuning{}
	default: // LayoutSharded
		batch := n / (4 * workers)
		if batch > 128 {
			batch = 128
		}
		if batch < 1 {
			batch = 1
		}
		return native.NewArena(native.Padded), core.Tuning{
			Batch:       batch,
			SkipKeyRead: true,
			Shards:      min(workers, 8),
			HostShuffle: true,
		}
	}
}

// Stall schedules one injected delay: Yields scheduler yields before
// processor PID's Op-th operation.
type Stall struct {
	PID    int
	Op     int64
	Yields int
}

// Spec describes one chaos run.
type Spec struct {
	// Keys is the input; ties break by index (the sort is stable).
	Keys []int
	// P is the worker count.
	P int
	// Layout is the native arena layout (ignored by RunPram).
	Layout Layout
	// Seed drives the algorithm's random choices.
	Seed uint64
	// Crashes is the shared crash schedule: op ordinals on native,
	// machine steps on the simulator. At least one processor must be
	// spared or the sort cannot complete (see CrashQuorum).
	Crashes []model.Crash
	// Revives allows each crashed processor that many respawns (native
	// only; the simulator's crash model is permanent fail-stop).
	Revives int
	// Stalls are injected delays (native only).
	Stalls []Stall
	// LowCont runs the §3 low-contention variant instead of the §2
	// randomized sort (needs P >= 4 and N >= P; layout tuning does not
	// apply — the §3 machinery has its own contention story).
	LowCont bool
	// TraceOut, when non-empty, attaches an internal/obs observer to
	// the native run and, if the run fails to sort or certify, writes a
	// Perfetto JSON postmortem trace to this path (Result.TracePath
	// reports where).
	TraceOut string
}

// CrashQuorum builds a seeded crash schedule killing roughly frac of p
// processors inside the window but always sparing processor 0, so
// completion is possible. The same schedule drives both runtimes.
func CrashQuorum(p int, frac float64, window int64, seed uint64) []model.Crash {
	crashes := model.RandomCrashes(p, frac, window, seed)
	kept := crashes[:0]
	for _, c := range crashes {
		if c.PID != 0 {
			kept = append(kept, c)
		}
	}
	return kept
}

// Massacre builds a crash schedule killing every processor except 0 at
// staggered op ordinals — the harshest quorum wait-freedom permits.
func Massacre(p int, window int64) []model.Crash {
	var out []model.Crash
	for pid := 1; pid < p; pid++ {
		step := int64(1)
		if window > 1 {
			step = 1 + (int64(pid)*2654435761)%(window-1)
		}
		out = append(out, model.Crash{Step: step, PID: pid})
	}
	return out
}

// StallStorm builds a deterministic stall schedule: every processor is
// delayed `count` times at stride-spaced ordinals.
func StallStorm(p, count int, stride int64, yields int) []Stall {
	var out []Stall
	for pid := 0; pid < p; pid++ {
		for k := 1; k <= count; k++ {
			out = append(out, Stall{PID: pid, Op: int64(k)*stride + int64(pid), Yields: yields})
		}
	}
	return out
}

// boundScale is the measured constant scaling the paper-derived op
// ceiling (see Bound). Calibrated against the cmd/chaos sweep on the
// reference machine (N in {1k..64k}, P in {2..16}, every policy and
// layout): observed per-processor maxima — including lone survivors
// absorbing the whole sort after a massacre — sit below 0.36x the
// ceiling, leaving ~3x headroom for scheduler variance and CAS-retry
// inflation before certification fails.
const boundScale = 12

// Bound returns the certified per-processor operation ceiling for a
// sort of n elements: the paper's O(N log N / P) running time evaluated
// at P = 1, plus the O(N) phase-2/3 traversal term, scaled by the
// measured constant boundScale.
//
// P = 1 is the evaluation wait-freedom itself picks. The /P form of
// the bound assumes a synchronous scheduler that advances every
// survivor equally; the defining promise of wait-freedom is bounded
// completion WITHOUT that assumption — an arbitrarily unfair scheduler
// (the simulator's RoundRobin(1), or the Go scheduler under CPU
// oversubscription) may leave a single processor to absorb the entire
// remaining sort even while other workers are technically alive, and
// chaos sweeps observe exactly that concentration. The solo ceiling is
// the per-processor bound that actually holds under any schedule, so
// it is what certification asserts; sweep reports carry the measured
// survivor counts and max/bound ratios so the concentration stays
// visible.
func Bound(n int) int64 {
	logN := int64(bits.Len(uint(n)))
	return boundScale * (int64(n)*logN + int64(n) + 256)
}

// Result reports one certified chaos run.
type Result struct {
	Policy    string  `json:"policy"`
	Variant   string  `json:"variant"`
	Layout    string  `json:"layout"`
	N         int     `json:"n"`
	P         int     `json:"p"`
	Seed      uint64  `json:"seed"`
	Sorted    bool    `json:"sorted"`
	Killed    int     `json:"killed"`
	Respawns  int     `json:"respawns"`
	Survivors int     `json:"survivors"`
	Stalls    int64   `json:"injected_stalls"`
	MaxOps    int64   `json:"max_ops"`
	Bound     int64   `json:"bound"`
	Certified bool    `json:"certified"`
	Sized     int     `json:"sized"`
	Placed    int     `json:"placed"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
	TracePath string  `json:"trace,omitempty"`
}

// OK reports whether the run sorted correctly and certified within the
// op ceiling.
func (r Result) OK() bool { return r.Error == "" && r.Sorted && r.Certified }

// plan compiles a spec's fault schedule into a native adversary; nil
// when the spec injects no faults.
func (s Spec) plan() *native.Plan {
	if len(s.Crashes) == 0 && len(s.Stalls) == 0 {
		return nil
	}
	pl := native.NewPlan().AddCrashes(s.Crashes)
	for _, st := range s.Stalls {
		pl.StallAt(st.PID, st.Op, st.Yields)
	}
	if s.Revives > 0 {
		for _, c := range s.Crashes {
			pl.Revive(c.PID, s.Revives)
		}
	}
	return pl
}

// lessFor builds the strict total order over 1-based element ids, ties
// broken by index.
func lessFor(keys []int) func(i, j int) bool {
	return func(i, j int) bool {
		a, b := keys[i-1], keys[j-1]
		if a != b {
			return a < b
		}
		return i < j
	}
}

// SortedRef returns the host-side reference: keys stably sorted.
func SortedRef(keys []int) []int {
	ref := make([]int, len(keys))
	copy(ref, keys)
	sort.SliceStable(ref, func(a, b int) bool { return ref[a] < ref[b] })
	return ref
}

// outputOf scatters keys by their 1-based places; an invalid
// permutation (the trail of an unfinished run) returns an error.
func outputOf(keys []int, places []int) ([]int, error) {
	out := make([]int, len(keys))
	seen := make([]bool, len(keys))
	for i, r := range places {
		if r < 1 || r > len(keys) || seen[r-1] {
			return nil, fmt.Errorf("places is not a permutation: element %d has rank %d", i+1, r)
		}
		seen[r-1] = true
		out[r-1] = keys[i]
	}
	return out, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunNative executes one spec on the native runtime and certifies it.
// The returned error covers harness-level failures (a panic escaping
// the program); sort or certification failures are reported in the
// Result so sweeps keep going. With Spec.TraceOut set, a failing run
// additionally leaves a Perfetto postmortem trace behind.
func RunNative(spec Spec) (res Result, err error) {
	n := len(spec.Keys)
	res = Result{
		Layout: spec.Layout.String(), Variant: "randomized",
		N: n, P: spec.P, Seed: spec.Seed,
	}
	if spec.LowCont {
		res.Variant = "lowcontention"
		res.Layout = "dense"
	}

	var (
		alloc    model.Allocator
		prog     model.Program
		seedFn   func([]model.Word)
		places   func([]model.Word) []int
		progress func([]model.Word) (int, int)
	)
	if spec.LowCont {
		a := &model.Arena{}
		s := lowcont.New(a, n, spec.P)
		alloc, prog, seedFn, places, progress = a, s.Program(), s.Seed, s.Places, s.Progress
	} else {
		a, tun := ArenaFor(n, spec.P, spec.Layout)
		s := core.NewSorterTuned(a, n, core.AllocRandomized, tun)
		alloc, prog, seedFn, places, progress = a, s.Program(), s.Seed, s.Places, s.Progress
	}

	var observer *obs.Observer
	if spec.TraceOut != "" {
		observer = obs.New(obs.Config{})
	}
	rt := native.New(native.Config{
		P: spec.P, Mem: alloc.Size(), Seed: spec.Seed,
		Less: lessFor(spec.Keys), CountOps: true,
		Adversary: adversaryOrNil(spec.plan()),
		Observer:  observer,
	})
	seedFn(rt.Memory())
	t0 := time.Now()
	met, err := rt.Run(prog)
	res.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	defer func() {
		// Postmortem: a run that failed to sort or certify dumps its
		// per-incarnation event rings as a Perfetto trace, so the exact
		// schedule that broke certification can be inspected in a
		// viewer rather than reconstructed from counters.
		if observer == nil || res.OK() {
			return
		}
		f, ferr := os.Create(spec.TraceOut)
		if ferr != nil {
			return
		}
		defer f.Close()
		if observer.WriteTrace(f) == nil {
			res.TracePath = spec.TraceOut
		}
	}()
	if err != nil {
		res.Error = err.Error()
		return res, err
	}

	res.Killed = met.Killed
	res.Respawns = met.Respawns
	res.Stalls = met.InjectedStalls
	res.Survivors = spec.P - met.Killed + met.Respawns
	res.Sized, res.Placed = progress(rt.Memory())

	out, perr := outputOf(spec.Keys, places(rt.Memory()))
	res.Sorted = perr == nil && equalInts(out, SortedRef(spec.Keys))
	if perr != nil {
		res.Error = perr.Error()
	}

	res.Bound = Bound(n)
	res.MaxOps = 0
	for _, ops := range rt.OpsPerProc() {
		if ops > res.MaxOps {
			res.MaxOps = ops
		}
	}
	res.Certified = res.MaxOps <= res.Bound
	return res, nil
}

// PipelinedSpec scales the pipelined chaos battery: Jobs sorts of N
// keys stream through one phase-pipelined crew of P workers with queue
// depth Depth, and every even-numbered job is struck by a seeded crash
// quorum killing roughly Frac of the workers (pid 0 spared, no
// revival).
type PipelinedSpec struct {
	N, P, Depth, Jobs int
	Seed              uint64
	Frac              float64
}

// RunPipelined is the serving-regime counterpart of RunNative: it
// certifies wait-freedom across job boundaries, not just within one
// sort. All jobs are submitted up front so they genuinely overlap, then
// each is certified independently — sorted output, per-processor op
// ceiling (PipeRun.OpsPerProc against Bound), and every completion
// predicate of the job's phase graph satisfied. The struck jobs prove
// kills stay job-local (each job owns its kill flags); the faultless
// jobs between them prove the crew is back at full strength without a
// goroutine ever respawning; and the stream completing at all proves
// the admission gate does not deadlock on permanently dead workers.
func RunPipelined(spec PipelinedSpec) ([]Result, error) {
	if spec.Depth < 1 {
		spec.Depth = 1
	}
	if spec.Jobs < 1 {
		spec.Jobs = 1
	}
	pl := native.NewPipeline(spec.P, spec.Depth, true)
	defer pl.Close()

	type flight struct {
		run  *native.PipeRun
		s    *core.Sorter
		mem  []model.Word
		keys []int
	}
	flights := make([]flight, 0, spec.Jobs)
	for j := 0; j < spec.Jobs; j++ {
		keys := randKeys(spec.N, spec.Seed+uint64(j)*0x9e37)
		a := &model.Arena{}
		s := core.NewSorter(a, spec.N, core.AllocRandomized)
		mem := make([]model.Word, a.Size())
		s.Seed(mem)
		job := native.PipeJob{
			Graph: s.Graph(), Mem: mem, Less: lessFor(keys),
			Seed: spec.Seed + uint64(j),
		}
		if j%2 == 0 && spec.Frac > 0 {
			crashes := CrashQuorum(spec.P, spec.Frac, int64(spec.N), spec.Seed+uint64(13*j+7))
			if len(crashes) > 0 {
				job.Adversary = native.NewPlan().AddCrashes(crashes)
			}
		}
		flights = append(flights, flight{run: pl.Submit(job), s: s, mem: mem, keys: keys})
	}

	results := make([]Result, 0, spec.Jobs)
	for j, f := range flights {
		res := Result{
			Policy: "pipelined-crash-half", Variant: "randomized", Layout: "dense",
			N: spec.N, P: spec.P, Seed: spec.Seed + uint64(j),
		}
		met, werr := f.run.Wait()
		if werr != nil {
			res.Error = werr.Error()
			results = append(results, res)
			return results, werr
		}
		res.ElapsedMS = float64(f.run.Elapsed.Microseconds()) / 1000
		res.Killed = met.Killed
		res.Respawns = met.Respawns
		res.Stalls = met.InjectedStalls
		res.Survivors = spec.P - met.Killed + met.Respawns
		res.Sized, res.Placed = f.s.Progress(f.mem)

		out, perr := outputOf(f.keys, f.s.Places(f.mem))
		res.Sorted = perr == nil && equalInts(out, SortedRef(f.keys))
		if perr != nil {
			res.Error = perr.Error()
		}
		if name := f.s.Graph().FirstUndone(f.mem); name != "" && res.Error == "" {
			res.Error = fmt.Sprintf("phase %q predicate unsatisfied after completion", name)
			res.Sorted = false
		}

		res.Bound = Bound(spec.N)
		for _, ops := range f.run.OpsPerProc() {
			if ops > res.MaxOps {
				res.MaxOps = ops
			}
		}
		res.Certified = res.MaxOps <= res.Bound
		results = append(results, res)
	}
	return results, nil
}

// adversaryOrNil avoids wrapping a nil *Plan in a non-nil interface.
func adversaryOrNil(pl *native.Plan) model.Adversary {
	if pl == nil {
		return nil
	}
	return pl
}

// RunPram executes the spec's crash schedule on the simulator (Crash
// Step read as a machine step, the dense paper layout) and returns the
// sorted output.
func RunPram(spec Spec) ([]int, *model.Metrics, error) {
	n := len(spec.Keys)
	var a model.Arena
	var prog model.Program
	var places func([]model.Word) []int
	var seedFn func([]model.Word)
	if spec.LowCont {
		s := lowcont.New(&a, n, spec.P)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	} else {
		s := core.NewSorter(&a, n, core.AllocRandomized)
		prog, seedFn, places = s.Program(), s.Seed, s.Places
	}
	var sched pram.Scheduler
	if len(spec.Crashes) > 0 {
		sched = pram.WithCrashes(pram.Synchronous(), spec.Crashes)
	}
	m := pram.New(pram.Config{
		P: spec.P, Mem: a.Size(), Seed: spec.Seed,
		Sched: sched, Less: lessFor(spec.Keys),
	})
	seedFn(m.Memory())
	met, err := m.Run(prog)
	if err != nil {
		return nil, met, err
	}
	out, perr := outputOf(spec.Keys, places(m.Memory()))
	if perr != nil {
		return nil, met, perr
	}
	return out, met, nil
}

// Differential runs one seeded crash schedule through the simulator and
// through the native runtime on every arena layout, and errors unless
// all four sorted outputs are identical and correct — the cross-runtime
// consistency check behind the repo's central claim.
func Differential(keys []int, p int, seed uint64, crashes []model.Crash) error {
	ref := SortedRef(keys)
	spec := Spec{Keys: keys, P: p, Seed: seed, Crashes: crashes}

	simOut, _, err := RunPram(spec)
	if err != nil {
		return fmt.Errorf("pram run: %w", err)
	}
	if !equalInts(simOut, ref) {
		return fmt.Errorf("pram output differs from the stable-sorted reference")
	}
	for _, l := range Layouts() {
		spec.Layout = l
		res, err := RunNative(spec)
		if err != nil {
			return fmt.Errorf("native %v run: %w", l, err)
		}
		if !res.Sorted {
			return fmt.Errorf("native %v output differs from the reference (%s)", l, res.Error)
		}
		if !res.Certified {
			return fmt.Errorf("native %v exceeded the op ceiling: max ops %d > bound %d (survivors %d)",
				l, res.MaxOps, res.Bound, res.Survivors)
		}
	}
	return nil
}

// Policy is one named adversary configuration of the sweep.
type Policy struct {
	Name string
	// Frac kills roughly this fraction of processors (sparing pid 0).
	Frac float64
	// AllButOne kills every processor except 0, overriding Frac.
	AllButOne bool
	// Revives respawns each crashed processor this many times.
	Revives int
	// StallStorm injects the deterministic stall schedule.
	StallStorm bool
}

// Policies returns the sweep's adversary configurations.
func Policies() []Policy {
	return []Policy{
		{Name: "faultless"},
		{Name: "crash-half", Frac: 0.5},
		{Name: "crash-all-but-one", AllButOne: true},
		{Name: "crash-revive", Frac: 0.5, Revives: 1},
		{Name: "stall-storm", StallStorm: true},
	}
}

// BuildSpec instantiates a policy for one (keys, P, layout, seed) cell.
// The crash window is the input size in per-processor ops (native) or
// machine steps (pram) — early enough that kills land mid-run.
func BuildSpec(keys []int, p int, l Layout, seed uint64, pol Policy) Spec {
	window := int64(len(keys))
	spec := Spec{Keys: keys, P: p, Layout: l, Seed: seed, Revives: pol.Revives}
	switch {
	case pol.AllButOne:
		spec.Crashes = Massacre(p, window)
	case pol.Frac > 0:
		spec.Crashes = CrashQuorum(p, pol.Frac, window, seed+0x9e37)
	}
	if pol.StallStorm {
		spec.Stalls = StallStorm(p, 8, max64(window/16, 8), 64)
	}
	return spec
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SweepOptions scales the chaos sweep.
type SweepOptions struct {
	N     int
	Ps    []int
	Seed  uint64
	Quick bool
	// TraceOut, when non-empty, captures the first failing run's
	// Perfetto postmortem trace at this path (Report.TracePath).
	TraceOut string
}

// Report is the sweep's JSON-serializable outcome.
type Report struct {
	N            int      `json:"n"`
	Seed         uint64   `json:"seed"`
	Runs         []Result `json:"runs"`
	Differential []string `json:"differential"`
	Failures     []string `json:"failures"`
	OK           bool     `json:"ok"`
	TracePath    string   `json:"trace,omitempty"`
}

// Sweep runs every adversary policy x P x layout cell plus one
// differential check per P, certifying each run. It only returns an
// error for harness-level failures; sort/certification failures are
// collected in Report.Failures.
func Sweep(o SweepOptions) (*Report, error) {
	if o.N == 0 {
		o.N = 4096
		if o.Quick {
			o.N = 1024
		}
	}
	if len(o.Ps) == 0 {
		o.Ps = []int{2, 4, 8}
		if o.Quick {
			o.Ps = []int{2, 8}
		}
	}
	rep := &Report{N: o.N, Seed: o.Seed}
	keys := randKeys(o.N, o.Seed)
	for _, pol := range Policies() {
		for _, p := range o.Ps {
			for _, l := range Layouts() {
				spec := BuildSpec(keys, p, l, o.Seed, pol)
				if rep.TracePath == "" {
					// Until a failure is captured, observe every run so
					// the first one to fail leaves its postmortem.
					spec.TraceOut = o.TraceOut
				}
				res, err := RunNative(spec)
				if err != nil {
					return rep, fmt.Errorf("policy %s p=%d layout=%v: %w", pol.Name, p, l, err)
				}
				res.Policy = pol.Name
				rep.Runs = append(rep.Runs, res)
				rep.TracePath = cmp.Or(rep.TracePath, res.TracePath)
				if !res.OK() {
					rep.Failures = append(rep.Failures, fmt.Sprintf(
						"policy %s p=%d layout=%v: sorted=%v certified=%v (max ops %d / bound %d) %s",
						pol.Name, p, l, res.Sorted, res.Certified, res.MaxOps, res.Bound, res.Error))
				}
			}
		}
	}
	// Cross-runtime differential, one seeded crash quorum per P.
	for _, p := range o.Ps {
		crashes := CrashQuorum(p, 0.5, int64(o.N), o.Seed+uint64(p))
		label := fmt.Sprintf("p=%d crashes=%d", p, len(crashes))
		if err := Differential(keys, p, o.Seed, crashes); err != nil {
			rep.Failures = append(rep.Failures, fmt.Sprintf("differential %s: %v", label, err))
		} else {
			rep.Differential = append(rep.Differential, label+": identical output on pram and all native layouts")
		}
	}
	// Phase-pipelined battery per P: crash-half striking alternate jobs
	// of an overlapped stream on one resident crew.
	jobs := 4
	if o.Quick {
		jobs = 3
	}
	for _, p := range o.Ps {
		prs, err := RunPipelined(PipelinedSpec{
			N: o.N, P: p, Depth: 2, Jobs: jobs,
			Seed: o.Seed + uint64(p)*101, Frac: 0.5,
		})
		if err != nil {
			return rep, fmt.Errorf("pipelined p=%d: %w", p, err)
		}
		for j, res := range prs {
			rep.Runs = append(rep.Runs, res)
			if !res.OK() {
				rep.Failures = append(rep.Failures, fmt.Sprintf(
					"pipelined p=%d job=%d: sorted=%v certified=%v (max ops %d / bound %d) %s",
					p, j, res.Sorted, res.Certified, res.MaxOps, res.Bound, res.Error))
			}
		}
	}
	rep.OK = len(rep.Failures) == 0
	return rep, nil
}

func randKeys(n int, seed uint64) []int {
	rng := xrand.New(seed)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(4 * n)
	}
	return keys
}
