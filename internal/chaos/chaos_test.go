package chaos

import (
	"strings"
	"testing"

	"wfsort/internal/model"
)

// TestDifferentialCrashSchedule is the cross-runtime acceptance check:
// the same seeded crash schedule pushed through the simulator and the
// native runtime on every arena layout yields identical, correct sorted
// output at P in {2, 4, 8}.
func TestDifferentialCrashSchedule(t *testing.T) {
	keys := randKeys(1024, 0xd1ff)
	for _, p := range []int{2, 4, 8} {
		crashes := CrashQuorum(p, 0.5, int64(len(keys)), 0xc0de+uint64(p))
		if err := Differential(keys, p, 42, crashes); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

// TestDifferentialFaultless covers the no-crash baseline of the same
// cross-runtime check.
func TestDifferentialFaultless(t *testing.T) {
	keys := randKeys(512, 7)
	for _, p := range []int{2, 4} {
		if err := Differential(keys, p, 1, nil); err != nil {
			t.Errorf("p=%d: %v", p, err)
		}
	}
}

// TestMassacreCertifies kills every processor but one on each layout;
// the lone mandated survivor must still finish under the op ceiling.
func TestMassacreCertifies(t *testing.T) {
	keys := randKeys(1024, 3)
	for _, l := range Layouts() {
		spec := Spec{Keys: keys, P: 4, Layout: l, Seed: 9, Crashes: Massacre(4, 256)}
		res, err := RunNative(spec)
		if err != nil {
			t.Fatalf("layout %v: %v", l, err)
		}
		if !res.Sorted {
			t.Errorf("layout %v: output not sorted (%s)", l, res.Error)
		}
		if !res.Certified {
			t.Errorf("layout %v: max ops %d exceeds bound %d", l, res.MaxOps, res.Bound)
		}
		if res.Killed == 0 {
			t.Errorf("layout %v: massacre landed no kills", l)
		}
		if res.Sized != len(keys) || res.Placed != len(keys) {
			t.Errorf("layout %v: progress sized=%d placed=%d, want %d", l, res.Sized, res.Placed, len(keys))
		}
	}
}

// TestRunPipelinedCrashHalf is the pipelined acceptance battery: a
// stream of overlapped jobs on one crew, half the workers crashed in
// alternate jobs, every job sorted and certified.
func TestRunPipelinedCrashHalf(t *testing.T) {
	results, err := RunPipelined(PipelinedSpec{
		N: 1024, P: 4, Depth: 2, Jobs: 5, Seed: 21, Frac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results, want 5", len(results))
	}
	kills := 0
	for j, res := range results {
		if !res.OK() {
			t.Errorf("job %d: sorted=%v certified=%v (max ops %d / bound %d) %s",
				j, res.Sorted, res.Certified, res.MaxOps, res.Bound, res.Error)
		}
		if j%2 == 1 && res.Killed != 0 {
			t.Errorf("faultless job %d saw %d kills — faults leaked across jobs", j, res.Killed)
		}
		kills += res.Killed
	}
	if kills == 0 {
		t.Fatal("crash-half plans landed no kills")
	}
}

// TestReviveAndStallPolicies exercises the respawning and stalling
// adversaries end to end via BuildSpec.
func TestReviveAndStallPolicies(t *testing.T) {
	keys := randKeys(1024, 11)
	revive := BuildSpec(keys, 4, LayoutPadded, 5, Policy{Name: "crash-revive", Frac: 0.5, Revives: 1})
	res, err := RunNative(revive)
	if err != nil {
		t.Fatalf("crash-revive: %v", err)
	}
	if !res.OK() {
		t.Errorf("crash-revive not OK: sorted=%v certified=%v err=%q", res.Sorted, res.Certified, res.Error)
	}
	if res.Killed > 0 && res.Respawns == 0 {
		t.Errorf("crash-revive: %d kills landed but no respawns", res.Killed)
	}

	storm := BuildSpec(keys, 4, LayoutFlat, 5, Policy{Name: "stall-storm", StallStorm: true})
	res, err = RunNative(storm)
	if err != nil {
		t.Fatalf("stall-storm: %v", err)
	}
	if !res.OK() {
		t.Errorf("stall-storm not OK: sorted=%v certified=%v err=%q", res.Sorted, res.Certified, res.Error)
	}
	if res.Stalls == 0 {
		t.Errorf("stall-storm injected no stalls")
	}
}

// TestLowContentionVariant runs the §3 sort under a crash quorum.
func TestLowContentionVariant(t *testing.T) {
	keys := randKeys(512, 13)
	spec := Spec{
		Keys: keys, P: 4, Seed: 17, LowCont: true,
		Crashes: CrashQuorum(4, 0.5, 256, 99),
	}
	res, err := RunNative(spec)
	if err != nil {
		t.Fatalf("RunNative: %v", err)
	}
	if !res.OK() {
		t.Errorf("lowcont not OK: sorted=%v certified=%v err=%q", res.Sorted, res.Certified, res.Error)
	}
	if res.Variant != "lowcontention" {
		t.Errorf("variant = %q, want lowcontention", res.Variant)
	}
}

func TestCrashQuorumSparesProcessorZero(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		for _, c := range CrashQuorum(8, 1.0, 100, seed) {
			if c.PID == 0 {
				t.Fatalf("seed %d: quorum kills processor 0", seed)
			}
		}
	}
}

func TestMassacreShape(t *testing.T) {
	crashes := Massacre(8, 64)
	if len(crashes) != 7 {
		t.Fatalf("massacre of 8 schedules %d kills, want 7", len(crashes))
	}
	seen := map[int]bool{}
	for _, c := range crashes {
		if c.PID == 0 {
			t.Errorf("massacre kills processor 0")
		}
		if c.Step < 1 || c.Step >= 64 {
			t.Errorf("pid %d: step %d outside window [1, 64)", c.PID, c.Step)
		}
		seen[c.PID] = true
	}
	if len(seen) != 7 {
		t.Errorf("massacre targets %d distinct pids, want 7", len(seen))
	}
}

func TestOutputOfValidatesPermutation(t *testing.T) {
	keys := []int{30, 10, 20}
	out, err := outputOf(keys, []int{3, 1, 2})
	if err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if !equalInts(out, []int{10, 20, 30}) {
		t.Errorf("out = %v, want [10 20 30]", out)
	}
	for _, bad := range [][]int{
		{1, 1, 2}, // duplicate rank
		{0, 1, 2}, // rank below 1
		{1, 2, 4}, // rank above n
	} {
		if _, err := outputOf(keys, bad); err == nil {
			t.Errorf("places %v accepted, want permutation error", bad)
		}
	}
}

func TestBoundMonotonic(t *testing.T) {
	if Bound(1024) >= Bound(4096) {
		t.Errorf("bound not monotonic in n: %d vs %d", Bound(1024), Bound(4096))
	}
	if Bound(0) <= 0 {
		t.Errorf("bound for n=0 is %d, want positive (constant term)", Bound(0))
	}
}

// TestSweepQuick runs the small sweep the CI smoke job uses and
// requires a clean report.
func TestSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	rep, err := Sweep(SweepOptions{N: 512, Ps: []int{2, 4}, Seed: 21})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if !rep.OK {
		t.Fatalf("sweep failures:\n%s", strings.Join(rep.Failures, "\n"))
	}
	// policy x P x layout cells, plus the pipelined battery's 4 jobs per P.
	wantRuns := len(Policies())*2*len(Layouts()) + 2*4
	if len(rep.Runs) != wantRuns {
		t.Errorf("sweep produced %d runs, want %d", len(rep.Runs), wantRuns)
	}
	if len(rep.Differential) != 2 {
		t.Errorf("sweep ran %d differentials, want 2", len(rep.Differential))
	}
	for _, r := range rep.Runs {
		if r.Policy == "" {
			t.Errorf("run missing policy label: %+v", r)
		}
	}
}

// TestSpecPlanNilWhenFaultless pins the nil-adversary fast path: a
// faultless spec must hand the runtime a nil interface, not a typed nil.
func TestSpecPlanNilWhenFaultless(t *testing.T) {
	if pl := (Spec{}).plan(); pl != nil {
		t.Errorf("faultless spec compiled a plan")
	}
	if adv := adversaryOrNil(nil); adv != nil {
		t.Errorf("adversaryOrNil(nil) is a non-nil interface")
	}
	spec := Spec{Crashes: []model.Crash{{Step: 1, PID: 1}}}
	if spec.plan() == nil {
		t.Errorf("crashing spec compiled no plan")
	}
}
