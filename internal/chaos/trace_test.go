package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"wfsort/internal/model"
	"wfsort/internal/xrand"
)

func traceKeys(n int) []int {
	rng := xrand.New(11)
	keys := make([]int, n)
	for i := range keys {
		keys[i] = rng.Intn(4 * n)
	}
	return keys
}

// TestRunNativeWritesFailureTrace kills every processor — including
// pid 0, so the sort cannot complete — and checks the postmortem
// Perfetto trace lands at Spec.TraceOut and parses as JSON.
func TestRunNativeWritesFailureTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fail.json")
	const p = 4
	var crashes []model.Crash
	for pid := 0; pid < p; pid++ {
		crashes = append(crashes, model.Crash{PID: pid, Step: int64(10 + pid)})
	}
	res, err := RunNative(Spec{
		Keys: traceKeys(256), P: p, Seed: 5,
		Crashes: crashes, TraceOut: path,
	})
	if err != nil {
		t.Fatalf("RunNative: %v", err)
	}
	if res.OK() {
		t.Fatal("killing every processor should fail certification")
	}
	if res.TracePath != path {
		t.Fatalf("TracePath = %q, want %q", res.TracePath, path)
	}
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("trace file: %v", rerr)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if jerr := json.Unmarshal(b, &tf); jerr != nil {
		t.Fatalf("trace is not valid JSON: %v", jerr)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}

// TestRunNativeNoTraceOnCleanRun arms TraceOut on a faultless run: no
// file may be written — the trace is a failure postmortem, not a log.
func TestRunNativeNoTraceOnCleanRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "clean.json")
	res, err := RunNative(Spec{Keys: traceKeys(256), P: 4, Seed: 6, TraceOut: path})
	if err != nil {
		t.Fatalf("RunNative: %v", err)
	}
	if !res.OK() {
		t.Fatalf("clean run failed: %+v", res)
	}
	if res.TracePath != "" {
		t.Errorf("TracePath = %q on a clean run", res.TracePath)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Errorf("trace file written on a clean run (stat err = %v)", serr)
	}
}
