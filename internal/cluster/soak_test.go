package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wfsort"
	"wfsort/internal/loadgen"
	"wfsort/internal/server"
)

// TestClusterSoak is the cluster's endurance leg, run under -race by
// `make soak` and CI: open-loop load from internal/loadgen against the
// coordinator's full serving surface while (1) every backend's own
// fault plane churns workers inside each sort and (2) a chaos
// goroutine kills and revives whole backends, always keeping at least
// two of the three alive. Every 200 must verify (loadgen checks
// length, order and the sum/xor ledger); 429/503/504 are legitimate
// backpressure; and after the drain, the coordinator's per-backend
// accepted-shard counters are cross-checked against each backend
// server's own shard_ok ledger — the two sides of the certification
// seam must agree on exactly how much work was accepted.
func TestClusterSoak(t *testing.T) {
	horizonMs, rate := 8_000.0, 60.0
	if testing.Short() {
		horizonMs, rate = 1_500.0, 40.0
	}

	// Three churning backends behind kill switches.
	const nBackends = 3
	servers := make([]*server.Server, nBackends)
	kills := make([]*KillSwitch, nBackends)
	fleet := make([]Transport, nBackends)
	for i := range fleet {
		srv, err := server.New(server.Config{
			Workers:     2,
			MaxInFlight: 32,
			TraceOff:    true,
			Options:     []wfsort.Option{wfsort.WithChurn(1), wfsort.WithSeed(uint64(100 + i))},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
		servers[i] = srv
		kills[i] = &KillSwitch{T: &HandlerBackend{Handler: srv.Handler(), Label: fmt.Sprintf("b%d", i)}}
		fleet[i] = kills[i]
	}

	c, err := New(Config{
		Backends:   fleet,
		Policy:     &LeastLoaded{},
		ShardKeys:  2048,
		CoolDown:   50 * time.Millisecond,
		ProbeEvery: 100 * time.Millisecond,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	handler, drain := NewHandler(c, HandlerConfig{MaxInFlight: 64, Timeout: 30 * time.Second})

	// Backend churn: one backend down at a time, killed and revived on
	// a jittered beat — at least two of three always alive.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		rng := rand.New(rand.NewSource(9))
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			case <-time.After(time.Duration(50+rng.Intn(100)) * time.Millisecond):
			}
			victim := kills[i%nBackends]
			victim.Kill()
			select {
			case <-stopChurn:
				victim.Revive()
				return
			case <-time.After(time.Duration(30+rng.Intn(70)) * time.Millisecond):
			}
			victim.Revive()
		}
	}()

	// Open-loop load: multi-shard sorts (4x ShardKeys and up) plus a
	// duplicate-heavy small class, from loadgen's planned trace.
	spec := &loadgen.Spec{
		Seed:      77,
		HorizonMs: horizonMs,
		Classes: []loadgen.ClassSpec{
			{
				Name:    "default",
				Arrival: loadgen.ArrivalSpec{Dist: loadgen.DistPoisson, Rate: rate},
				Size:    loadgen.SizeSpec{Dist: loadgen.SizeUniform, Min: 4_000, Max: 12_000},
				Clients: 6,
			},
			{
				Name:     "small",
				Arrival:  loadgen.ArrivalSpec{Dist: loadgen.DistPoisson, Rate: rate / 2},
				Size:     loadgen.SizeSpec{Dist: loadgen.SizeUniform, Min: 100, Max: 3_000},
				KeySpace: 64, // heavy duplicates: the tie-spreading regime
				Clients:  4,
			},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	trace, err := loadgen.BuildTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := loadgen.Run(context.Background(), trace, &loadgen.HandlerTarget{Handler: handler})

	close(stopChurn)
	churnWG.Wait()

	var ok, shed, deadline, errs, unsorted int
	for _, r := range res.Results {
		switch r.Outcome {
		case loadgen.OutcomeOK:
			ok++
		case loadgen.OutcomeShed:
			shed++
		case loadgen.OutcomeDeadline:
			deadline++
		case loadgen.OutcomeUnsorted:
			unsorted++
		default:
			errs++
		}
	}
	t.Logf("soak: %d issued, %d ok, %d shed, %d deadline, %d error, %d unsorted",
		len(res.Results), ok, shed, deadline, errs, unsorted)
	if unsorted != 0 {
		t.Fatalf("%d responses failed client-side verification", unsorted)
	}
	if ok == 0 {
		t.Fatal("no request succeeded under churn")
	}
	st := c.Stats()
	if st.Redispatches == 0 {
		t.Error("churn produced no redispatches — the chaos leg did not bite")
	}
	if st.LedgerFailures != 0 {
		t.Fatalf("%d coordinator ledger failures", st.LedgerFailures)
	}

	// Drain before the cross-check so no shard is still in flight.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Coordinator-vs-backend ledger cross-check: every shard the
	// coordinator accepted was a backend /shard success, so each
	// backend's own shard_ok counter must be at least the coordinator's
	// accepted count for it (a backend may have sorted a shard whose
	// sort was later abandoned client-side, never the reverse), and
	// with zero abandoned sorts the two sides must agree exactly.
	st = c.Stats()
	for i, srv := range servers {
		coordOK := st.Backends[i].ShardsOK
		backendOK := srv.Stats().ShardOK
		if backendOK < coordOK {
			t.Errorf("backend %d: server shard_ok=%d < coordinator accepted=%d — accepted work the backend never did",
				i, backendOK, coordOK)
		}
		if st.SortErrors == 0 && backendOK != coordOK {
			t.Errorf("backend %d: server shard_ok=%d != coordinator accepted=%d with no failed sorts",
				i, backendOK, coordOK)
		}
		t.Logf("backend %d: coordinator accepted %d, server shard_ok %d, downs %d",
			i, coordOK, backendOK, st.Backends[i].Downs)
	}
}
