package cluster

import (
	"errors"
	"fmt"
)

// Sentinel failure kinds. Every error the coordinator returns wraps
// exactly one of them (plus any transport cause), so callers classify
// with errors.Is and never parse message strings; the fuzz battery
// holds the coordinator to "typed errors only, no panics".
var (
	// ErrNoBackends is returned by New for an empty backend list.
	ErrNoBackends = errors.New("cluster: no backends configured")
	// ErrAllDown means every backend was out of rotation for longer
	// than the shard's failure budget tolerated.
	ErrAllDown = errors.New("cluster: all backends down")
	// ErrExhausted means a shard burned its whole redispatch or
	// backpressure budget without an accepted reply.
	ErrExhausted = errors.New("cluster: shard attempts exhausted")
	// ErrMalformed means a backend's 200 reply failed verification:
	// undecodable body, wrong length, unsorted, or a ledger that does
	// not match what was sent. Such a reply is never returned to the
	// caller — it is a redispatch trigger.
	ErrMalformed = errors.New("cluster: malformed backend reply")
	// ErrLedger means the assembled output's sum/xor/count ledger did
	// not match the input's. It is the one error that indicates a
	// coordinator-side bug (lost or duplicated elements across
	// retries), so it is never retried and never silenced.
	ErrLedger = errors.New("cluster: output ledger mismatch")
	// ErrTraceEcho means a backend echoed a different X-Trace-Id than
	// the shard was stamped with — a confused or hostile backend whose
	// reply cannot be trusted to answer this request.
	ErrTraceEcho = errors.New("cluster: backend echoed a foreign trace id")
	// ErrBackendStatus means a backend answered with a non-retryable
	// client-error status (400/413/...): the request itself is at
	// fault and redispatch cannot help.
	ErrBackendStatus = errors.New("cluster: backend rejected the shard")
	// ErrKilled is what a tripped KillSwitch returns — the modeled
	// fail-stop of a backend host.
	ErrKilled = errors.New("cluster: backend killed")
	// ErrDraining is returned for sorts issued after BeginDrain.
	ErrDraining = errors.New("cluster: coordinator draining")
)

// Error is the coordinator's typed error: which sentinel kind, which
// shard and backend, which attempt, and the wrapped cause.
type Error struct {
	Kind    error // one of the sentinels above
	Backend string
	Shard   int
	Attempt int
	Err     error // optional transport-level cause
}

func (e *Error) Error() string {
	msg := fmt.Sprintf("%v (shard %d, attempt %d", e.Kind, e.Shard, e.Attempt)
	if e.Backend != "" {
		msg += ", backend " + e.Backend
	}
	msg += ")"
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes both the sentinel kind and the cause to errors.Is/As.
func (e *Error) Unwrap() []error {
	if e.Err != nil {
		return []error{e.Kind, e.Err}
	}
	return []error{e.Kind}
}

func shardErr(kind error, backend string, shard, attempt int, cause error) *Error {
	return &Error{Kind: kind, Backend: backend, Shard: shard, Attempt: attempt, Err: cause}
}
