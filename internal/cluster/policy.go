// Routing policies: which backend gets the next shard. The interface
// mirrors the qos.Sched shape — a pure Pick over a snapshot of
// candidates, so policies are trivially testable and replayable — and
// the coordinator clamps whatever a policy returns, so a buggy policy
// can misroute but never crash the fan-out.

package cluster

import (
	"fmt"
	"sync/atomic"

	"wfsort/internal/sizeclass"
)

// DispatchView is what a policy sees about the shard being routed.
type DispatchView struct {
	// Shard is the shard index within its sort (0-based).
	Shard int
	// Keys is the shard's key count.
	Keys int
	// Attempt is 0 for the first dispatch, >0 for redispatches — a
	// policy may deliberately avoid the backend that just failed, but
	// the coordinator already filters unhealthy ones out.
	Attempt int
}

// BackendView is one healthy candidate's state at pick time.
type BackendView struct {
	// Index identifies the backend in the coordinator's Backends list.
	Index int
	// Outstanding is the coordinator's own count of in-flight shard
	// requests to this backend — always current, no probe needed.
	Outstanding int64
	// ProbedInFlight is the backend-reported in_flight gauge from the
	// last health probe (covers load from other clients of the same
	// backend); -1 when no probe has completed yet.
	ProbedInFlight int64
}

// Policy picks the backend for one dispatch from the healthy
// candidates (len(healthy) >= 1, sorted by Index). Pick must return an
// index into healthy; out-of-range picks are clamped. Implementations
// must be safe for concurrent use.
type Policy interface {
	Pick(d DispatchView, healthy []BackendView) int
}

// RoundRobin spreads dispatches evenly in arrival order — the default:
// with equal-size shards and equal backends it is both balanced and
// deterministic.
type RoundRobin struct{ n atomic.Uint64 }

func (p *RoundRobin) Pick(d DispatchView, healthy []BackendView) int {
	return int((p.n.Add(1) - 1) % uint64(len(healthy)))
}

// LeastLoaded picks the backend with the fewest outstanding shard
// requests, counting the coordinator's own in-flight dispatches plus
// the backend-reported gauge from the last probe when one exists; ties
// break round-robin so an idle fleet still spreads.
type LeastLoaded struct{ rr RoundRobin }

func (p *LeastLoaded) Pick(d DispatchView, healthy []BackendView) int {
	load := func(b BackendView) int64 {
		l := b.Outstanding
		if b.ProbedInFlight > 0 {
			l += b.ProbedInFlight
		}
		return l
	}
	best, min := -1, int64(0)
	ties := 0
	for i, b := range healthy {
		l := load(b)
		switch {
		case best < 0 || l < min:
			best, min, ties = i, l, 1
		case l == min:
			ties++
		}
	}
	if ties > 1 {
		k := p.rr.Pick(d, healthy) % ties
		for i, b := range healthy {
			if load(b) == min {
				if k == 0 {
					return i
				}
				k--
			}
		}
	}
	return best
}

// SizeAffinity routes shards of the same arena size class to the same
// backend, so each backend's context pool stays warm for a narrow
// class mix instead of every pool holding every class. Falls back to
// spreading by shard index when the fleet shrinks below the class
// fan-out.
type SizeAffinity struct{}

func (SizeAffinity) Pick(d DispatchView, healthy []BackendView) int {
	class, ok := sizeclass.For(d.Keys)
	if !ok {
		class = d.Keys
	}
	// Hash the class capacity, not the raw size, so every shard inside
	// one class lands on the same backend.
	h := uint64(class) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(len(healthy)))
}

// ParsePolicy maps a policy name (the -policy flag) to its
// implementation: "round-robin", "least-loaded" or "size-affinity".
func ParsePolicy(name string) (Policy, error) {
	switch name {
	case "", "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return &LeastLoaded{}, nil
	case "size-affinity":
		return SizeAffinity{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (round-robin | least-loaded | size-affinity)", name)
}
