// This file is the sample-sort math: seeded splitter sampling,
// duplicate-spreading partition and the k-way merge that reassembles
// the shard replies. "A Randomised Approach to Distributed Sorting"
// grounds the shape: draw a seeded oversample, cut it at even
// quantiles, scatter key ranges, merge sorted runs on the way back.

package cluster

import (
	"math/rand"
	"sort"

	"wfsort/internal/merge"
)

// shardCount is how many shards n keys split into under a per-shard
// cap: the unit of backend work is a bounded shard (a backend rejects
// requests above its MaxKeys with 413), so the shard count grows with
// the input, not with the backend count.
func shardCount(n, shardKeys int) int {
	if n <= shardKeys {
		return 1
	}
	return (n + shardKeys - 1) / shardKeys
}

// drawSplitters samples keys with replacement (oversample per shard,
// seeded — the same input and seed always cut identically), sorts the
// sample and returns the k−1 even-quantile cut points.
func drawSplitters(keys []int64, k, oversample int, seed uint64) []int64 {
	n := len(keys)
	m := k * oversample
	if m > n {
		m = n
	}
	rng := rand.New(rand.NewSource(int64(seed) ^ int64(n)<<1))
	sample := make([]int64, m)
	for i := range sample {
		sample[i] = keys[rng.Intn(n)]
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	split := make([]int64, k-1)
	for i := 1; i < k; i++ {
		split[i-1] = sample[i*m/k]
	}
	return split
}

// partition scatters keys into len(split)+1 shards: shard i takes the
// range (split[i−1], split[i]]. A key equal to a run of splitters has
// more than one legal shard — every shard whose cut point equals the
// key plus the one after the run — and is spread round-robin across
// that range. The spreading is what keeps duplicate-heavy inputs
// balanced: an all-equal input samples all-equal splitters, every key
// becomes eligible everywhere, and the shards come out even instead of
// one shard taking the whole input. Globally sorted output does not
// depend on it (the merge compares real keys), only the balance bound
// does (DESIGN §15).
func partition(keys []int64, split []int64) [][]int64 {
	k := len(split) + 1
	shards := make([][]int64, k)
	want := (len(keys) + k - 1) / k
	for i := range shards {
		shards[i] = make([]int64, 0, want+want/4)
	}
	spread := 0
	for _, key := range keys {
		lo := sort.Search(len(split), func(i int) bool { return split[i] >= key })
		hi := sort.Search(len(split), func(i int) bool { return split[i] > key })
		idx := lo
		if hi > lo {
			idx = lo + spread%(hi-lo+1)
			spread++
		}
		shards[idx] = append(shards[idx], key)
	}
	return shards
}

// kmerge merges sorted shards into one sorted slice of n keys; ties
// break toward the lower shard index, so a given partition has exactly
// one merge output — the determinism the kill-leg's byte-identical
// gate rests on. The heap itself lives in internal/merge, shared with
// the streaming external sort's spill drain.
func kmerge(shards [][]int64, n int) []int64 {
	return merge.Slices(shards, n)
}

// ledger is the sum/xor multiset aggregate shared with loadgen's
// response verification: cheap to fold, order-independent, and a lost
// or duplicated element across shard retries moves at least one of the
// two words with overwhelming probability.
type ledger struct {
	count    int
	sum, xor int64
}

func foldLedger(keys []int64) ledger {
	l := ledger{count: len(keys)}
	for _, k := range keys {
		l.sum += k
		l.xor ^= k
	}
	return l
}
