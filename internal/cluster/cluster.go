// Package cluster is the distributed sort tier: a sample-sort
// coordinator that spreads one large sort across N sortd backends.
//
// One sortd instance is bounded by one host; the coordinator is the
// piece that turns a fleet of them into one service. A sort arrives,
// the coordinator draws seeded splitters from a sample of the input,
// scatters bounded key-range shards to backends over the existing
// HTTP/QoS surface (X-Sort-Class, deadlines and X-Trace-Id all
// propagate, so the request trace plane spans the fan-out), each
// backend runs its shard through the pooled wait-free sorter, and the
// sorted runs are k-way merged on the way back.
//
// Failure handling leans on the property the wait-free core already
// gives each node: a sort is a pure function of its input, so a shard
// may be re-executed anywhere, any number of times, without
// coordination. The coordinator therefore retries backpressure
// (429/503) with bounded backoff and redispatches hard failures —
// backend kill, timeout, malformed reply — to a surviving backend,
// and a sum/xor multiset ledger (loadgen's verification vocabulary)
// certifies per shard and per sort that no element was lost or
// duplicated across those retries. Routing is policy-pluggable
// (round-robin, least-loaded, size-affinity) behind the qos.Sched-
// shaped Policy interface, with passive health (a failed backend
// leaves rotation for CoolDown) plus an optional active prober.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the coordinator; zero values take the defaults noted.
type Config struct {
	// Backends is the fleet, in fixed index order. Required.
	Backends []Transport
	// Policy routes dispatches (default: round-robin).
	Policy Policy
	// ShardKeys caps each shard's key count (default 1<<16). The shard
	// is the unit of backend work: the count grows with the input, so
	// a single coordinator request may fan out to many more shards
	// than backends.
	ShardKeys int
	// Oversample is the splitter sample size per shard (default 32):
	// k shards sample k*Oversample keys. More sample, tighter balance.
	Oversample int
	// Seed fixes the splitter sample (default 1). The same input and
	// seed always cut — and therefore merge — identically.
	Seed uint64
	// MaxRedispatch is the per-shard hard-failure budget: the number
	// of failed attempts (kill, timeout, malformed, 5xx) tolerated
	// before the sort fails with ErrExhausted (default
	// 2*len(Backends)+2).
	MaxRedispatch int
	// MaxBackpressure is the per-shard 429 retry budget (default 256).
	MaxBackpressure int
	// Backoff is the first backpressure retry delay; it doubles per
	// consecutive 429 up to MaxBackoff (defaults 2ms, 250ms).
	Backoff, MaxBackoff time.Duration
	// CoolDown is how long a failed backend stays out of rotation
	// before it is tried again (default 500ms).
	CoolDown time.Duration
	// ShardTimeout bounds one shard attempt (default 10s); the
	// caller's context deadline still bounds the whole sort.
	ShardTimeout time.Duration
	// ProbeEvery enables the active health prober at that interval
	// (0 = passive health only). The prober revives a down backend as
	// soon as /healthz answers ok and refreshes the load gauge the
	// least-loaded policy reads.
	ProbeEvery time.Duration
}

func (c *Config) fill() {
	if c.Policy == nil {
		c.Policy = &RoundRobin{}
	}
	if c.ShardKeys <= 0 {
		c.ShardKeys = 1 << 16
	}
	if c.Oversample <= 0 {
		c.Oversample = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxRedispatch <= 0 {
		c.MaxRedispatch = 2*len(c.Backends) + 2
	}
	if c.MaxBackpressure <= 0 {
		c.MaxBackpressure = 256
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.CoolDown <= 0 {
		c.CoolDown = 500 * time.Millisecond
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Second
	}
}

// backend is the coordinator's per-backend bookkeeping. All fields are
// atomics: dispatch goroutines, the prober and metrics readers touch
// them concurrently.
type backend struct {
	t              Transport
	downUntil      atomic.Int64 // unix ns; 0 = up
	outstanding    atomic.Int64
	shardsOK       atomic.Int64
	shardErrs      atomic.Int64
	downs          atomic.Int64
	probedInFlight atomic.Int64 // -1 until the first probe lands
	probedShardOK  atomic.Int64
}

func (b *backend) up(now int64) bool { return b.downUntil.Load() <= now }

// markDown takes the backend out of rotation for coolDown, counting
// the up->down transition once.
func (b *backend) markDown(coolDown time.Duration) {
	now := time.Now().UnixNano()
	if b.downUntil.Swap(now+coolDown.Nanoseconds()) <= now {
		b.downs.Add(1)
	}
}

// BackendStats is one backend's public counter snapshot.
type BackendStats struct {
	Name           string `json:"name"`
	Healthy        bool   `json:"healthy"`
	Outstanding    int64  `json:"outstanding"`
	ShardsOK       int64  `json:"shards_ok"`
	ShardErrors    int64  `json:"shard_errors"`
	Downs          int64  `json:"downs"`
	ProbedInFlight int64  `json:"probed_in_flight"`
	ProbedShardOK  int64  `json:"probed_shard_ok"`
}

// Stats is the coordinator's cumulative counter snapshot. The serving
// counters (Requests..Errors) are filled by the HTTP handler; direct
// Sort callers see them at zero.
type Stats struct {
	Sorts               int64          `json:"sorts"`
	SortsOK             int64          `json:"sorts_ok"`
	SortErrors          int64          `json:"sort_errors"`
	ShardsDispatched    int64          `json:"shards_dispatched"`
	Redispatches        int64          `json:"redispatches"`
	BackpressureRetries int64          `json:"backpressure_retries"`
	LedgerFailures      int64          `json:"ledger_failures"`
	Requests            int64          `json:"requests"`
	Rejected            int64          `json:"rejected_429"`
	TooLarge            int64          `json:"rejected_413"`
	Drained             int64          `json:"rejected_503"`
	Canceled            int64          `json:"canceled"`
	Errors              int64          `json:"errors"`
	Draining            bool           `json:"draining"`
	Backends            []BackendStats `json:"backends"`
}

// Coordinator is one cluster-sort instance over a fixed backend fleet.
type Coordinator struct {
	cfg      Config
	backends []*backend
	traceSeq atomic.Uint64
	draining atomic.Bool
	stop     chan struct{}
	prober   sync.WaitGroup

	sorts, sortsOK, sortErrors atomic.Int64
	shardsDispatched           atomic.Int64
	redispatches, bpRetries    atomic.Int64
	ledgerFailures             atomic.Int64
	requests, rejected         atomic.Int64
	tooLarge, drained          atomic.Int64
	canceled, errCount         atomic.Int64
}

// New builds a coordinator and, when cfg.ProbeEvery > 0, starts its
// health prober (stop it with Close).
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, ErrNoBackends
	}
	cfg.fill()
	c := &Coordinator{cfg: cfg, stop: make(chan struct{})}
	for _, t := range cfg.Backends {
		b := &backend{t: t}
		b.probedInFlight.Store(-1)
		c.backends = append(c.backends, b)
	}
	if cfg.ProbeEvery > 0 {
		c.prober.Add(1)
		go c.runProber()
	}
	return c, nil
}

// Close stops the prober; in-flight sorts are unaffected.
func (c *Coordinator) Close() {
	close(c.stop)
	c.prober.Wait()
}

// BeginDrain makes subsequent sorts fail with ErrDraining (the handler
// maps it to 503); in-flight ones finish.
func (c *Coordinator) BeginDrain() { c.draining.Store(true) }

// Sort runs one cluster sort: split keys into bounded shards along
// sampled splitters, scatter them to backends under class/trace/
// deadline propagation, verify and merge the replies. The input slice
// is not modified. Every error is a *Error wrapping one of the
// package sentinels (or the context's error when the caller's
// deadline fired first).
func (c *Coordinator) Sort(ctx context.Context, class, traceID string, keys []int64) ([]int64, error) {
	if c.draining.Load() {
		return nil, shardErr(ErrDraining, "", -1, 0, nil)
	}
	c.sorts.Add(1)
	out, err := c.sort(ctx, class, traceID, keys)
	if err != nil {
		c.sortErrors.Add(1)
		return nil, err
	}
	c.sortsOK.Add(1)
	return out, nil
}

func (c *Coordinator) sort(ctx context.Context, class, traceID string, keys []int64) ([]int64, error) {
	n := len(keys)
	if n == 0 {
		return []int64{}, nil
	}
	if traceID == "" || !validTraceID(traceID) {
		traceID = fmt.Sprintf("c-%d", c.traceSeq.Add(1))
	}
	total := foldLedger(keys)

	k := shardCount(n, c.cfg.ShardKeys)
	var shards [][]int64
	if k == 1 {
		shards = [][]int64{keys}
	} else {
		shards = partition(keys, drawSplitters(keys, k, c.cfg.Oversample, c.cfg.Seed))
	}

	// Scatter. The first failure cancels the remaining dispatches —
	// their shards would be thrown away anyway.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sorted := make([][]int64, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, shard := range shards {
		if len(shard) == 0 {
			sorted[si] = nil
			continue
		}
		wg.Add(1)
		go func(si int, shard []int64) {
			defer wg.Done()
			out, err := c.sortShard(sctx, class, traceID, si, shard)
			if err != nil {
				errs[si] = err
				cancel()
				return
			}
			sorted[si] = out
		}(si, shard)
	}
	wg.Wait()
	for si := range errs {
		if errs[si] != nil {
			// Prefer a real failure over a cancellation it caused.
			if ctx.Err() == nil {
				for sj := range errs {
					if errs[sj] != nil && !isCtxErr(errs[sj]) {
						return nil, errs[sj]
					}
				}
			}
			return nil, errs[si]
		}
	}

	var out []int64
	if len(shards) == 1 {
		out = sorted[0]
	} else {
		out = kmerge(sorted, n)
	}
	if got := foldLedger(out); got != total {
		c.ledgerFailures.Add(1)
		return nil, shardErr(ErrLedger, "", -1, 0,
			fmt.Errorf("sent count=%d sum=%d xor=%d, merged count=%d sum=%d xor=%d",
				total.count, total.sum, total.xor, got.count, got.sum, got.xor))
	}
	return out, nil
}

// isCtxErr reports whether err is (or wraps) a context error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// sortShard runs one shard to acceptance or budget exhaustion:
// backpressure retries with doubling backoff, hard failures mark the
// backend down and redispatch via the policy, and every accepted reply
// has passed length, sortedness, trace-echo and sum/xor ledger checks
// against what was sent.
func (c *Coordinator) sortShard(ctx context.Context, class, traceID string, si int, keys []int64) ([]int64, error) {
	sent := foldLedger(keys)
	fails, bp := 0, 0
	backoff := c.cfg.Backoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, shardErr(err, "", si, attempt, lastErr)
		}
		b, allDown := c.pick(si, len(keys), attempt)
		if allDown && fails > c.cfg.MaxRedispatch {
			return nil, shardErr(ErrAllDown, "", si, attempt, lastErr)
		}
		tid := shardTraceID(traceID, si, attempt)
		tctx, tcancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
		c.shardsDispatched.Add(1)
		b.outstanding.Add(1)
		reply, err := b.t.SortShard(tctx, ShardRequest{Class: class, TraceID: tid, Keys: keys})
		b.outstanding.Add(-1)
		tcancel()

		fail := func(cause error) {
			b.shardErrs.Add(1)
			b.markDown(c.cfg.CoolDown)
			lastErr = fmt.Errorf("backend %s: %w", b.t.Name(), cause)
			fails++
			c.redispatches.Add(1)
		}

		switch {
		case err != nil:
			if ctx.Err() != nil {
				// The caller's deadline, not the backend's fault.
				return nil, shardErr(ctx.Err(), b.t.Name(), si, attempt, err)
			}
			fail(err)
		case reply.Status == 200:
			if verr := verifyShardReply(keys, sent, tid, reply); verr != nil {
				fail(verr)
			} else {
				b.shardsOK.Add(1)
				return reply.Sorted, nil
			}
		case reply.Status == 429:
			bp++
			if bp > c.cfg.MaxBackpressure {
				return nil, shardErr(ErrExhausted, b.t.Name(), si, attempt,
					fmt.Errorf("%d consecutive backpressure rejections", bp))
			}
			c.bpRetries.Add(1)
			if !sleepCtx(ctx, backoff) {
				return nil, shardErr(ctx.Err(), b.t.Name(), si, attempt, nil)
			}
			if backoff *= 2; backoff > c.cfg.MaxBackoff {
				backoff = c.cfg.MaxBackoff
			}
			continue
		case reply.Status >= 500:
			// Draining (503), crashed (500) or deadline-shed (504): the
			// backend is not taking this shard; move on without it.
			fail(fmt.Errorf("backend status %d", reply.Status))
		default:
			// 400/413/...: the shard itself was rejected; another
			// backend would reject it the same way.
			return nil, shardErr(ErrBackendStatus, b.t.Name(), si, attempt,
				fmt.Errorf("status %d", reply.Status))
		}
		if fails > c.cfg.MaxRedispatch {
			return nil, shardErr(ErrExhausted, b.t.Name(), si, attempt, lastErr)
		}
		// A fresh consecutive-backpressure run starts after a failure.
		bp, backoff = 0, c.cfg.Backoff
	}
}

// verifyShardReply is the acceptance check every 200 passes before its
// keys may enter the merge: exact trace echo (a foreign echo means the
// reply answers some other request), exact length, sortedness, and the
// sum/xor ledger — both against the coordinator's own fold of what it
// sent and against the backend's fold of what it sorted. A duplicate
// or stale shard reply fails the ledger here; it cannot silently pass.
func verifyShardReply(sentKeys []int64, sent ledger, tid string, r *ShardReply) error {
	if r.TraceEcho != "" && r.TraceEcho != tid {
		return ErrTraceEcho
	}
	if len(r.Sorted) != len(sentKeys) || r.N != len(sentKeys) {
		return ErrMalformed
	}
	var sum, xor int64
	for i, k := range r.Sorted {
		if i > 0 && r.Sorted[i-1] > k {
			return ErrMalformed
		}
		sum += k
		xor ^= k
	}
	if sum != sent.sum || xor != sent.xor || r.Sum != sent.sum || r.Xor != sent.xor {
		return ErrMalformed
	}
	return nil
}

// pick snapshots the rotation and routes via the policy. With every
// backend cooling down it falls back to the full fleet (allDown true):
// a dead backend fails fast and the budget in sortShard bounds the
// damage, while a merely cooling one may well serve.
func (c *Coordinator) pick(si, nkeys, attempt int) (*backend, bool) {
	now := time.Now().UnixNano()
	views := make([]BackendView, 0, len(c.backends))
	for i, b := range c.backends {
		if b.up(now) {
			views = append(views, BackendView{
				Index:          i,
				Outstanding:    b.outstanding.Load(),
				ProbedInFlight: b.probedInFlight.Load(),
			})
		}
	}
	allDown := len(views) == 0
	if allDown {
		for i, b := range c.backends {
			views = append(views, BackendView{
				Index:          i,
				Outstanding:    b.outstanding.Load(),
				ProbedInFlight: b.probedInFlight.Load(),
			})
		}
	}
	idx := c.cfg.Policy.Pick(DispatchView{Shard: si, Keys: nkeys, Attempt: attempt}, views)
	if idx < 0 || idx >= len(views) {
		idx = 0
	}
	return c.backends[views[idx].Index], allDown
}

// shardTraceID derives the per-shard trace ID: the caller's ID
// (truncated so the suffix always fits the 64-char trace syntax) plus
// shard and attempt, e.g. "lg-17.s2.a0" — resolvable on the backend's
// /trace/{id} surface, which is what lets the trace plane follow one
// request across the whole fan-out, retries included.
func shardTraceID(base string, si, attempt int) string {
	const maxBase = 44
	if len(base) > maxBase {
		base = base[:maxBase]
	}
	return fmt.Sprintf("%s.s%d.a%d", base, si, attempt)
}

// runProber polls every backend at cfg.ProbeEvery: a healthy answer
// refreshes the least-loaded gauge and lifts any cooldown early; a
// failed or unhealthy one starts (or extends) the cooldown.
func (c *Coordinator) runProber() {
	defer c.prober.Done()
	t := time.NewTicker(c.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, b := range c.backends {
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeEvery)
			p, err := b.t.Probe(ctx)
			cancel()
			if err != nil || !p.Healthy || p.Draining {
				b.markDown(c.cfg.CoolDown)
				continue
			}
			b.probedInFlight.Store(p.InFlight)
			b.probedShardOK.Store(p.ShardOK)
			b.downUntil.Store(0)
		}
	}
}

// ProbeNow runs one synchronous probe sweep (tests and the sortc
// banner use it; the background prober does the same thing on a
// ticker).
func (c *Coordinator) ProbeNow(ctx context.Context) {
	for _, b := range c.backends {
		p, err := b.t.Probe(ctx)
		if err != nil || !p.Healthy || p.Draining {
			b.markDown(c.cfg.CoolDown)
			continue
		}
		b.probedInFlight.Store(p.InFlight)
		b.probedShardOK.Store(p.ShardOK)
		b.downUntil.Store(0)
	}
}

// Stats snapshots every counter.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Sorts:               c.sorts.Load(),
		SortsOK:             c.sortsOK.Load(),
		SortErrors:          c.sortErrors.Load(),
		ShardsDispatched:    c.shardsDispatched.Load(),
		Redispatches:        c.redispatches.Load(),
		BackpressureRetries: c.bpRetries.Load(),
		LedgerFailures:      c.ledgerFailures.Load(),
		Requests:            c.requests.Load(),
		Rejected:            c.rejected.Load(),
		TooLarge:            c.tooLarge.Load(),
		Drained:             c.drained.Load(),
		Canceled:            c.canceled.Load(),
		Errors:              c.errCount.Load(),
		Draining:            c.draining.Load(),
	}
	now := time.Now().UnixNano()
	for _, b := range c.backends {
		st.Backends = append(st.Backends, BackendStats{
			Name:           b.t.Name(),
			Healthy:        b.up(now),
			Outstanding:    b.outstanding.Load(),
			ShardsOK:       b.shardsOK.Load(),
			ShardErrors:    b.shardErrs.Load(),
			Downs:          b.downs.Load(),
			ProbedInFlight: b.probedInFlight.Load(),
			ProbedShardOK:  b.probedShardOK.Load(),
		})
	}
	return st
}

// sleepCtx sleeps d or until ctx is done; false means ctx fired.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
