// The coordinator's serving surface: the same POST /sort contract as
// sortd (so loadgen, the capacity sweep and every existing client
// drive a cluster unchanged), plus cluster-shaped /healthz and
// /metrics. cmd/sortc is the thin binary around it.

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"wfsort/internal/qos"
	"wfsort/internal/sizeclass"
)

// HandlerConfig sizes the coordinator's HTTP front end; zero values
// take the defaults noted.
type HandlerConfig struct {
	// MaxInFlight bounds admitted requests; excess get 429 (default 64).
	MaxInFlight int
	// MaxKeys rejects larger requests with 413 (default
	// sizeclass.DefaultCoordinatorMaxKeys — the coordinator exists to
	// take sorts bigger than one backend's request limit).
	MaxKeys int
	// Timeout is the per-request deadline (default 60s), propagated to
	// every shard dispatch.
	Timeout time.Duration
}

func (hc *HandlerConfig) fill() {
	if hc.MaxInFlight == 0 {
		hc.MaxInFlight = 64
	}
	hc.MaxKeys = sizeclass.Limit(hc.MaxKeys, sizeclass.DefaultCoordinatorMaxKeys)
	if hc.Timeout == 0 {
		hc.Timeout = 60 * time.Second
	}
}

type handler struct {
	c   *Coordinator
	cfg HandlerConfig
	sem chan struct{}
	wg  sync.WaitGroup
}

type sortRequestWire struct {
	Keys []int64 `json:"keys"`
}

type sortResponseWire struct {
	Sorted []int64 `json:"sorted"`
	N      int     `json:"n"`
	Shards int     `json:"shards"`
}

func (h *handler) handleSort(w http.ResponseWriter, r *http.Request) {
	c := h.c
	c.requests.Add(1)
	trace := r.Header.Get(TraceHeader)
	if trace != "" && validTraceID(trace) {
		w.Header().Set(TraceHeader, trace)
	} else {
		trace = fmt.Sprintf("c-%d", c.traceSeq.Add(1))
		w.Header().Set(TraceHeader, trace)
	}
	class := r.Header.Get(ClassHeader)
	if class == "" {
		class = "default"
	} else if !qos.ValidClassName(class) {
		c.errCount.Add(1)
		httpError(w, http.StatusBadRequest,
			"invalid X-Sort-Class: must be 1-64 chars with no whitespace or quotes")
		return
	}
	if c.draining.Load() {
		c.drained.Add(1)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case h.sem <- struct{}{}:
	default:
		c.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "at capacity")
		return
	}
	defer func() { <-h.sem }()

	var req sortRequestWire
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		c.errCount.Add(1)
		httpError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	if ok, msg := sizeclass.CheckLimit(len(req.Keys), h.cfg.MaxKeys); !ok {
		c.tooLarge.Add(1)
		httpError(w, http.StatusRequestEntityTooLarge, msg)
		return
	}

	h.wg.Add(1)
	defer h.wg.Done()
	ctx, cancel := context.WithTimeout(r.Context(), h.cfg.Timeout)
	defer cancel()
	sorted, err := c.Sort(ctx, class, trace, req.Keys)
	switch {
	case err == nil:
	case isCtxErr(err):
		c.canceled.Add(1)
		httpError(w, http.StatusGatewayTimeout, err.Error())
		return
	case errors.Is(err, ErrDraining):
		c.drained.Add(1)
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	default:
		// Upstream trouble — dead fleet, exhausted retries, a reply
		// that failed verification: the cluster's fault, not the
		// client's.
		c.errCount.Add(1)
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sortResponseWire{
		Sorted: sorted,
		N:      len(sorted),
		Shards: shardCount(len(req.Keys), c.cfg.ShardKeys),
	})
}

func (h *handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := h.c.Stats()
	healthy := 0
	for _, b := range st.Backends {
		if b.Healthy {
			healthy++
		}
	}
	ok := healthy > 0 && !st.Draining
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ok":       ok,
		"draining": st.Draining,
		"backends": len(st.Backends),
		"healthy":  healthy,
	})
}

func (h *handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]any{"coordinator": h.c.Stats()})
}

// Drain begins the drain and waits (bounded by ctx) for in-flight
// handler requests to finish.
func (h *handler) drain(ctx context.Context) error {
	h.c.BeginDrain()
	done := make(chan struct{})
	go func() {
		h.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NewHandler builds the coordinator's serving surface:
//
//	POST /sort     — {"keys":[...]} -> {"sorted":[...],"n":N,"shards":K}
//	GET  /healthz  — ok iff at least one backend is in rotation
//	GET  /metrics  — coordinator + per-backend counters
//
// The returned drain func flips the coordinator to draining (new
// sorts get 503) and waits, bounded by ctx, for in-flight requests to
// finish.
func NewHandler(c *Coordinator, cfg HandlerConfig) (http.Handler, func(context.Context) error) {
	cfg.fill()
	h := &handler{c: c, cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sort", h.handleSort)
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /metrics", h.handleMetrics)
	return mux, h.drain
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// validTraceID bounds client trace IDs to the syntax the backends
// accept (internal/server applies the same rule), so a hostile ID is
// re-minted here instead of echoing through the fan-out.
func validTraceID(t string) bool {
	if t == "" || len(t) > 64 {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}
