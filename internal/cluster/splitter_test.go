package cluster

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

// distributions are the adversarial inputs the splitter-quality
// property test sweeps: the shapes that break naive range partitioning.
var distributions = []struct {
	name string
	gen  func(n int, rng *rand.Rand) []int64
}{
	{"uniform", func(n int, rng *rand.Rand) []int64 {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = rng.Int63()
		}
		return keys
	}},
	{"all-equal", func(n int, rng *rand.Rand) []int64 {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = 42
		}
		return keys
	}},
	{"pre-sorted", func(n int, rng *rand.Rand) []int64 {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i)
		}
		return keys
	}},
	{"reverse-sorted", func(n int, rng *rand.Rand) []int64 {
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(n - i)
		}
		return keys
	}},
	{"zipf", func(n int, rng *rand.Rand) []int64 {
		z := rand.NewZipf(rng, 1.3, 1, 1<<16)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(z.Uint64())
		}
		return keys
	}},
	{"duplicates-heavy", func(n int, rng *rand.Rand) []int64 {
		// 8 distinct values over the whole input: every splitter run
		// collides and the tie-spreading has to do all the work.
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(8)) * 1000
		}
		return keys
	}},
}

// TestSplitterBalance is the splitter-quality property test: across
// adversarial distributions, no shard may exceed 2x its fair share.
//
// The bound: with Oversample=32 samples per shard, classical sample-
// sort analysis puts the max shard below ~2x the mean with high
// probability for distinct keys, and the tie-spreading partition
// restores the same bound for duplicate-heavy inputs (a key eligible
// for an r-shard run is dealt round-robin across it, so a value
// carrying m duplicates adds at most ceil(m/r) keys per shard). The 2x
// factor is asserted here and documented in DESIGN §15.
func TestSplitterBalance(t *testing.T) {
	const n, k = 100_000, 16
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			keys := dist.gen(n, rand.New(rand.NewSource(1)))
			split := drawSplitters(keys, k, 32, 1)
			if !sort.SliceIsSorted(split, func(i, j int) bool { return split[i] < split[j] }) {
				t.Fatal("splitters not sorted")
			}
			shards := partition(keys, split)
			if len(shards) != k {
				t.Fatalf("got %d shards, want %d", len(shards), k)
			}
			total, max := 0, 0
			for _, s := range shards {
				total += len(s)
				if len(s) > max {
					max = len(s)
				}
			}
			if total != n {
				t.Fatalf("partition lost keys: %d of %d", total, n)
			}
			fair := n / k
			if max > 2*fair {
				t.Errorf("max shard %d keys > 2x fair share %d (imbalance %.2fx)",
					max, fair, float64(max)/float64(fair))
			}
		})
	}
}

// TestPartitionRangesDisjoint locks the range property the merge's
// determinism rests on: shard i's keys are all <= shard j's for i < j
// up to splitter equality — concretely, each shard's max is no greater
// than the next shard's min unless the boundary value is a splitter
// duplicate spread across both.
func TestPartitionRangesDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	keys := make([]int64, 10_000)
	for i := range keys {
		keys[i] = rng.Int63n(1000) // plenty of duplicates
	}
	split := drawSplitters(keys, 8, 32, 1)
	for c, s := range partition(keys, split) {
		for _, key := range s {
			// Every key respects its shard's splitter fences: its shard
			// index must lie in the eligibility range [lo, hi] — a single
			// slot for distinct keys, widened only by splitter duplicates.
			lo := sort.Search(len(split), func(j int) bool { return split[j] >= key })
			hi := sort.Search(len(split), func(j int) bool { return split[j] > key })
			if c < lo || c > hi {
				t.Fatalf("key %d landed in shard %d, outside its eligible range [%d,%d]", key, c, lo, hi)
			}
		}
	}
}

// TestSortDeterministicAndStable locks the two output properties the
// kill-leg gate and the docs promise: (1) the same input and seed
// produce byte-identical output run to run, and (2) the output equals
// the stable reference sort — trivially true for plain int64 keys
// (equal keys are indistinguishable), asserted anyway so a future
// keyed-record extension cannot silently regress it.
func TestSortDeterministicAndStable(t *testing.T) {
	for _, dist := range distributions {
		t.Run(dist.name, func(t *testing.T) {
			keys := dist.gen(20_000, rand.New(rand.NewSource(5)))
			ref := append([]int64(nil), keys...)
			sort.SliceStable(ref, func(i, j int) bool { return ref[i] < ref[j] })

			var prev []byte
			for run := 0; run < 3; run++ {
				split := drawSplitters(keys, 8, 32, 9)
				shards := partition(keys, split)
				for _, s := range shards {
					sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
				}
				out := kmerge(shards, len(keys))
				for i := range ref {
					if out[i] != ref[i] {
						t.Fatalf("run %d: out[%d] = %d, want %d (stable reference)", run, i, out[i], ref[i])
					}
				}
				raw := make([]byte, 8*len(out))
				for i, v := range out {
					binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
				}
				if prev != nil && !bytes.Equal(prev, raw) {
					t.Fatalf("run %d: output differs from run %d", run, run-1)
				}
				prev = raw
			}
		})
	}
}

// TestShardCount locks the shard arithmetic at its edges.
func TestShardCount(t *testing.T) {
	for _, tc := range []struct{ n, cap, want int }{
		{0, 100, 1}, {1, 100, 1}, {100, 100, 1}, {101, 100, 2}, {1000, 100, 10}, {1001, 100, 11},
	} {
		if got := shardCount(tc.n, tc.cap); got != tc.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", tc.n, tc.cap, got, tc.want)
		}
	}
}

// TestKmergeEmptyAndSingle locks the merge's degenerate cases.
func TestKmergeEmptyAndSingle(t *testing.T) {
	if out := kmerge(nil, 0); len(out) != 0 {
		t.Fatalf("merge of nothing = %v", out)
	}
	if out := kmerge([][]int64{{}, {1, 2}, {}, {0}}, 3); len(out) != 3 || out[0] != 0 || out[2] != 2 {
		t.Fatalf("merge with empty shards = %v", out)
	}
}

// TestFoldLedger locks the ledger fold the whole certification chain
// rests on.
func TestFoldLedger(t *testing.T) {
	l := foldLedger([]int64{1, 2, 3})
	if l.count != 3 || l.sum != 6 || l.xor != 0 {
		t.Fatalf("ledger = %+v", l)
	}
	// Order-independent: a permutation folds identically.
	if foldLedger([]int64{3, 1, 2}) != l {
		t.Fatal("ledger is order-dependent")
	}
	// A duplicated element moves it.
	if foldLedger([]int64{1, 2, 3, 3}) == l {
		t.Fatal("ledger blind to duplication")
	}
}
