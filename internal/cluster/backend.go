// This file is the coordinator's backend seam: the Transport interface
// one sortd backend is driven through, with an HTTP implementation for
// live fleets, an in-process handler implementation for tests and
// gates (no sockets, race-detector friendly), and the KillSwitch
// fail-stop wrapper the chaos legs use to take a backend down
// deterministically mid-sort.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"time"

	"wfsort/internal/wire"
)

// Header names shared with internal/server and internal/loadgen.
const (
	ClassHeader = "X-Sort-Class"
	TraceHeader = "X-Trace-Id"
)

// ShardRequest is one shard dispatch: the key range plus the QoS
// identity the coordinator propagates across the fan-out — the
// caller's traffic class, the per-shard trace ID (derived from the
// caller's, so the PR 8 trace plane spans the whole scatter), and the
// deadline, which rides the context.
type ShardRequest struct {
	Class   string
	TraceID string
	Keys    []int64
}

// ShardReply is a backend's answer as the transport saw it. Status is
// the HTTP status; Sorted/N/Sum/Xor are the decoded body on 200 (the
// /shard endpoint echoes the sorted keys' sum/xor ledger so the
// coordinator can cross-check its own fold against the backend's).
// TraceEcho is the X-Trace-Id header the backend sent back.
type ShardReply struct {
	Status     int
	Sorted     []int64
	N          int
	Sum, Xor   int64
	TraceEcho  string
	RetryAfter time.Duration // backpressure hint on 429, 0 if absent
}

// Probe is one health-probe result: liveness from /healthz plus the
// load and ledger counters from /metrics that feed the least-loaded
// policy and the soak's coordinator-vs-backend cross-check.
type Probe struct {
	Healthy  bool
	Draining bool
	InFlight int64
	ShardOK  int64
}

// Transport drives one backend. Implementations must be safe for
// concurrent use: the coordinator scatters shards from many
// goroutines. SortShard returns an error only for transport-level
// failures (connection refused, timeout, undecodable body); an
// application-level rejection is a ShardReply with a non-200 status.
type Transport interface {
	SortShard(ctx context.Context, req ShardRequest) (*ShardReply, error)
	Probe(ctx context.Context) (Probe, error)
	Name() string
}

type shardRequestBody struct {
	Keys []int64 `json:"keys"`
}

type shardReplyBody struct {
	Sorted []int64 `json:"sorted"`
	N      int     `json:"n"`
	Sum    int64   `json:"sum"`
	Xor    int64   `json:"xor"`
}

type healthzBody struct {
	OK bool `json:"ok"`
}

type metricsServerBody struct {
	Server struct {
		InFlight int64 `json:"in_flight"`
		ShardOK  int64 `json:"shard_ok"`
		Draining bool  `json:"draining"`
	} `json:"server"`
}

// encodeShard builds one shard request body in the chosen codec. The
// binary block carries the keys' sum/xor in its header, so a wire
// backend gets the coordinator's ledger for free.
func encodeShard(wireOn bool, keys []int64) ([]byte, string, error) {
	if wireOn {
		return wire.AppendBlock(nil, wire.KindRequest, keys), wire.ContentType, nil
	}
	body, err := json.Marshal(shardRequestBody{Keys: keys})
	return body, "application/json", err
}

// decodeShard fills reply from a 200 body, keyed off the response
// Content-Type rather than what was requested: the sorted keys and the
// backend's sum/xor ledger land in the same fields either way (a wire
// reply's ledger rides the block header). Decoding a binary reply also
// verifies the header ledger against the payload — transport-level
// corruption fails here, before the coordinator's own cross-check.
func decodeShard(contentType string, body io.Reader, reply *ShardReply) error {
	if wire.IsWire(contentType) {
		sorted, h, err := wire.ReadBlock(body, wire.KindShardReply, 0)
		if err != nil {
			return fmt.Errorf("decoding shard reply: %w", err)
		}
		reply.Sorted, reply.N, reply.Sum, reply.Xor = sorted, h.N, h.Sum, h.Xor
		return nil
	}
	var out shardReplyBody
	if err := json.NewDecoder(body).Decode(&out); err != nil {
		return fmt.Errorf("decoding shard reply: %w", err)
	}
	reply.Sorted, reply.N, reply.Sum, reply.Xor = out.Sorted, out.N, out.Sum, out.Xor
	return nil
}

// HTTPBackend drives a live sortd instance over the network.
type HTTPBackend struct {
	// URL is the backend base ("http://host:port"); /shard, /healthz
	// and /metrics are appended.
	URL string
	// Client is the HTTP client (default http.DefaultClient). Per-shard
	// deadlines ride the request context, so the client's own Timeout
	// should be generous or absent.
	Client *http.Client
	// Wire switches shard dispatch to the binary codec: requests go out
	// as wire blocks and the backend answers in kind. Probes stay JSON.
	Wire bool
}

func (b *HTTPBackend) Name() string { return b.URL }

func (b *HTTPBackend) client() *http.Client {
	if b.Client != nil {
		return b.Client
	}
	return http.DefaultClient
}

func (b *HTTPBackend) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	body, contentType, err := encodeShard(b.Wire, sr.Keys)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.URL+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ClassHeader, sr.Class)
	req.Header.Set(TraceHeader, sr.TraceID)
	resp, err := b.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply := &ShardReply{Status: resp.StatusCode, TraceEcho: resp.Header.Get(TraceHeader)}
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		reply.RetryAfter = time.Duration(s) * time.Second
	}
	if resp.StatusCode != http.StatusOK {
		return reply, nil
	}
	if err := decodeShard(resp.Header.Get("Content-Type"), resp.Body, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

func (b *HTTPBackend) Probe(ctx context.Context) (Probe, error) {
	var p Probe
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/healthz", nil)
	if err != nil {
		return p, err
	}
	hresp, err := b.client().Do(hreq)
	if err != nil {
		return p, err
	}
	var hb healthzBody
	err = json.NewDecoder(hresp.Body).Decode(&hb)
	hresp.Body.Close()
	if err != nil {
		return p, fmt.Errorf("decoding healthz: %w", err)
	}
	p.Healthy = hb.OK
	mreq, err := http.NewRequestWithContext(ctx, http.MethodGet, b.URL+"/metrics", nil)
	if err != nil {
		return p, err
	}
	mresp, err := b.client().Do(mreq)
	if err != nil {
		return p, err
	}
	var mb metricsServerBody
	err = json.NewDecoder(mresp.Body).Decode(&mb)
	mresp.Body.Close()
	if err != nil {
		return p, fmt.Errorf("decoding metrics: %w", err)
	}
	p.InFlight = mb.Server.InFlight
	p.ShardOK = mb.Server.ShardOK
	p.Draining = mb.Server.Draining
	return p, nil
}

// HandlerBackend drives a backend's http.Handler in-process — the
// transport the cluster test harness, the soak and the benchgate
// -cluster gate run on, so the whole fan-out is exercised under the
// race detector without sockets. internal/server's Handler() plugs in
// directly.
type HandlerBackend struct {
	Handler http.Handler
	// Label names the backend in stats and errors (default "handler").
	Label string
	// Wire switches shard dispatch to the binary codec, as on
	// HTTPBackend — the gates compare codecs over this seam.
	Wire bool
}

func (b *HandlerBackend) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "handler"
}

func (b *HandlerBackend) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	body, contentType, err := encodeShard(b.Wire, sr.Keys)
	if err != nil {
		return nil, err
	}
	req := httptest.NewRequest(http.MethodPost, "/shard", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(ClassHeader, sr.Class)
	req.Header.Set(TraceHeader, sr.TraceID)
	rec := httptest.NewRecorder()
	b.Handler.ServeHTTP(rec, req)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reply := &ShardReply{Status: rec.Code, TraceEcho: rec.Header().Get(TraceHeader)}
	if s, err := strconv.Atoi(rec.Header().Get("Retry-After")); err == nil && s > 0 {
		reply.RetryAfter = time.Duration(s) * time.Second
	}
	if rec.Code != http.StatusOK {
		return reply, nil
	}
	if err := decodeShard(rec.Header().Get("Content-Type"), rec.Body, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

func (b *HandlerBackend) Probe(ctx context.Context) (Probe, error) {
	var p Probe
	hrec := httptest.NewRecorder()
	b.Handler.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil).WithContext(ctx))
	var hb healthzBody
	if err := json.NewDecoder(hrec.Body).Decode(&hb); err != nil {
		return p, fmt.Errorf("decoding healthz: %w", err)
	}
	p.Healthy = hb.OK
	mrec := httptest.NewRecorder()
	b.Handler.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil).WithContext(ctx))
	var mb metricsServerBody
	if err := json.NewDecoder(mrec.Body).Decode(&mb); err != nil {
		return p, fmt.Errorf("decoding metrics: %w", err)
	}
	p.InFlight = mb.Server.InFlight
	p.ShardOK = mb.Server.ShardOK
	p.Draining = mb.Server.Draining
	return p, nil
}

// KillSwitch wraps a Transport with a deterministic fail-stop: after
// Kill (or after KillAfter(n) further shard requests), every call
// fails with ErrKilled until Revive. It models a backend host dying
// mid-fan-out — the chaos leg the redispatch machinery is certified
// against — with the same determinism the fault plane gives worker
// kills: the nth shard request is the last one served, every run.
type KillSwitch struct {
	T Transport
	// killed: 1 while dead. killAt: the SortShard ordinal (1-based)
	// that first fails, 0 = no scheduled kill. calls: served ordinal.
	killed  atomic.Bool
	killAt  atomic.Int64
	calls   atomic.Int64
	refused atomic.Int64
}

// Kill takes the backend down immediately.
func (k *KillSwitch) Kill() { k.killed.Store(true) }

// Revive brings it back (and clears any scheduled kill).
func (k *KillSwitch) Revive() {
	k.killAt.Store(0)
	k.killed.Store(false)
}

// KillAfter schedules the fail-stop: the backend serves n more shard
// requests, then dies.
func (k *KillSwitch) KillAfter(n int) { k.killAt.Store(k.calls.Load() + int64(n) + 1) }

// Refused reports how many calls the dead backend turned away.
func (k *KillSwitch) Refused() int64 { return k.refused.Load() }

func (k *KillSwitch) Name() string { return k.T.Name() }

func (k *KillSwitch) down() bool {
	if k.killed.Load() {
		return true
	}
	if at := k.killAt.Load(); at > 0 && k.calls.Load() >= at {
		k.killed.Store(true)
		return true
	}
	return false
}

func (k *KillSwitch) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	k.calls.Add(1)
	if k.down() {
		k.refused.Add(1)
		return nil, ErrKilled
	}
	return k.T.SortShard(ctx, sr)
}

func (k *KillSwitch) Probe(ctx context.Context) (Probe, error) {
	if k.down() {
		return Probe{}, ErrKilled
	}
	return k.T.Probe(ctx)
}
