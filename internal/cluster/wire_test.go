package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"wfsort/internal/server"
	"wfsort/internal/wire"
)

// newWireFleet is newFleet with the binary codec switched on: every
// shard scatters as a wire block and every reply's ledger rides the
// block header.
func newWireFleet(t *testing.T, n int) []Transport {
	t.Helper()
	fleet := make([]Transport, n)
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{Workers: 2, TraceOff: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		fleet[i] = &HandlerBackend{Handler: srv.Handler(), Label: fmt.Sprintf("w%d", i), Wire: true}
	}
	return fleet
}

// TestClusterWireScatter is the binary end-to-end: a multi-shard sort
// scattered and gathered entirely over the wire codec, with the same
// order, ledger and accounting guarantees as the JSON path.
func TestClusterWireScatter(t *testing.T) {
	c, err := New(Config{Backends: newWireFleet(t, 3), ShardKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(10_000, 51)
	wantSum, wantXor := wire.Fold(keys)
	out, err := c.Sort(context.Background(), "default", "t-wire", keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, out, sortedRef(keys))
	if gotSum, gotXor := wire.Fold(out); gotSum != wantSum || gotXor != wantXor {
		t.Fatalf("output ledger (%d,%d), want (%d,%d)", gotSum, gotXor, wantSum, wantXor)
	}
	st := c.Stats()
	if st.SortsOK != 1 || st.SortErrors != 0 || st.LedgerFailures != 0 || st.Redispatches != 0 {
		t.Fatalf("binary scatter not clean: %+v", st)
	}
	if want := int64(shardCount(len(keys), 1024)); st.ShardsDispatched != want {
		t.Fatalf("shards dispatched = %d, want %d", st.ShardsDispatched, want)
	}
}

// TestClusterWireMixedFleet runs wire and JSON backends side by side
// in one fleet: codec choice is per-backend, and the coordinator's
// ledger cross-check holds regardless of which decoded the reply.
func TestClusterWireMixedFleet(t *testing.T) {
	fleet := append(newWireFleet(t, 2), newFleet(t, 2)...)
	c, err := New(Config{Backends: fleet, ShardKeys: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for iter := 0; iter < 3; iter++ {
		keys := randKeys(6_000, int64(60+iter))
		out, err := c.Sort(context.Background(), "default", fmt.Sprintf("t-mixed-%d", iter), keys)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		assertSorted(t, out, sortedRef(keys))
	}
	st := c.Stats()
	if st.LedgerFailures != 0 || st.SortErrors != 0 {
		t.Fatalf("mixed-codec fleet not clean: %+v", st)
	}
	// Round-robin must have touched both codecs.
	for i, b := range st.Backends {
		if b.ShardsOK == 0 {
			t.Fatalf("backend %d (%s) never served a shard", i, fleet[i].Name())
		}
	}
}

// keyTamperTransport swaps two distinct sorted keys for their sum and
// zero — same sum, different xor — after transport decode, modeling a
// backend that loses keys while keeping the reply well-formed. The
// coordinator's own fold must catch it; the wire decode cannot, since
// the tamper happens above the codec.
type keyTamperTransport struct{ inner Transport }

func (tt *keyTamperTransport) Name() string { return "tamper" }
func (tt *keyTamperTransport) Probe(ctx context.Context) (Probe, error) {
	return tt.inner.Probe(ctx)
}
func (tt *keyTamperTransport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	r, err := tt.inner.SortShard(ctx, sr)
	if r != nil && r.Status == 200 && len(r.Sorted) >= 2 {
		a, b := r.Sorted[0], r.Sorted[1]
		if a != b {
			r.Sorted[0], r.Sorted[1] = 0, a+b
			r.Sum, r.Xor = wire.Fold(r.Sorted)
		}
	}
	return r, err
}

// TestClusterWireLedgerTamper certifies the gather-side cross-check
// survives the codec migration: a tampered wire reply fails
// verifyShardReply (the per-shard ledger/sortedness acceptance) and
// the shard is redispatched to an honest backend.
func TestClusterWireLedgerTamper(t *testing.T) {
	fleet := newWireFleet(t, 3)
	fleet[1] = &keyTamperTransport{inner: fleet[1]}
	c, err := New(Config{Backends: fleet, ShardKeys: 1024, CoolDown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(8_000, 77)
	out, err := c.Sort(context.Background(), "default", "t-tamper", keys)
	if err != nil {
		t.Fatalf("sort did not route around the tamperer: %v", err)
	}
	assertSorted(t, out, sortedRef(keys))
	st := c.Stats()
	if st.Backends[1].ShardErrors == 0 || st.Redispatches == 0 {
		t.Fatalf("tampered wire replies not rejected and redispatched: %+v", st)
	}
}
