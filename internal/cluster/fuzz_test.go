package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// honestTransport is a correct in-memory backend: sorts what it is
// sent, folds the ledger, echoes the trace. The fuzz fleet pairs it
// with a hostile peer so a sort always has somewhere correct to land.
type honestTransport struct {
	name  string
	calls atomic.Int64
}

func (h *honestTransport) Name() string { return h.name }
func (h *honestTransport) Probe(ctx context.Context) (Probe, error) {
	return Probe{Healthy: true, ShardOK: h.calls.Load()}, nil
}
func (h *honestTransport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	h.calls.Add(1)
	out := append([]int64(nil), sr.Keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	var sum, xor int64
	for _, k := range out {
		sum += k
		xor ^= k
	}
	return &ShardReply{Status: 200, Sorted: out, N: len(out), Sum: sum, Xor: xor, TraceEcho: sr.TraceID}, nil
}

// hostileTransport misbehaves per a fuzz-chosen script: each shard
// call consumes one behavior byte. Every behavior is either an honest
// reply or one of the corruptions the acceptance check must catch —
// truncated or padded bodies, unsorted keys, wrong ledgers, duplicate
// (stale) replies, foreign trace echoes, surprise statuses, transport
// errors.
type hostileTransport struct {
	honest honestTransport
	script []byte
	pos    atomic.Int64
	last   atomic.Pointer[ShardReply] // previous reply, replayed as a "duplicate"
}

func (h *hostileTransport) Name() string { return "hostile" }
func (h *hostileTransport) Probe(ctx context.Context) (Probe, error) {
	return Probe{Healthy: true}, nil
}

func (h *hostileTransport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	var b byte
	if len(h.script) > 0 {
		b = h.script[int(h.pos.Add(1)-1)%len(h.script)]
	}
	reply, _ := h.honest.SortShard(ctx, sr)
	switch b % 12 {
	case 0: // honest
	case 1: // truncated body
		if len(reply.Sorted) > 0 {
			reply.Sorted = reply.Sorted[:len(reply.Sorted)-1]
		}
	case 2: // padded body
		reply.Sorted = append(reply.Sorted, 1<<40)
	case 3: // unsorted
		if len(reply.Sorted) > 1 {
			reply.Sorted[0], reply.Sorted[len(reply.Sorted)-1] = reply.Sorted[len(reply.Sorted)-1], reply.Sorted[0]
		}
	case 4: // wrong echoed ledger
		reply.Sum++
	case 5: // corrupted keys behind a matching self-ledger
		if len(reply.Sorted) > 0 {
			reply.Sorted[0]--
			reply.Sum--
		}
	case 6: // wrong N
		reply.N++
	case 7: // hostile trace echo
		reply.TraceEcho = "x\n<script>"
	case 8: // duplicate (stale) reply: answer with a previous shard's body
		if prev := h.last.Load(); prev != nil {
			return prev, nil
		}
	case 9: // surprise 5xx
		return &ShardReply{Status: 500 + int(b)%4, TraceEcho: sr.TraceID}, nil
	case 10: // backpressure
		return &ShardReply{Status: 429, TraceEcho: sr.TraceID}, nil
	case 11: // transport error
		return nil, errors.New("connection reset by fuzz")
	}
	h.last.Store(reply)
	return reply, nil
}

// FuzzCluster holds the coordinator to its contract under a hostile
// backend: for any input keys, any caller-supplied trace ID and any
// misbehavior script, Sort either returns the exact multiset sorted or
// a typed *cluster.Error — never a panic, never silently wrong data.
func FuzzCluster(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0}, "t-1")
	f.Add([]byte{255, 0, 255, 0, 9, 9}, []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, "")
	f.Add(bytes.Repeat([]byte{7}, 300), []byte{8, 8, 8, 4}, "x\nhostile\x00id")
	f.Add([]byte{}, []byte{11, 11, 11, 11, 11}, "deep.dot.id:with-long-suffix-0123456789012345678901234567890123456789")

	f.Fuzz(func(t *testing.T, keyData, script []byte, traceID string) {
		// Keys from the raw bytes, 8 per key, capped well above the
		// shard size so multi-shard fan-outs are exercised.
		n := len(keyData) / 8
		if n > 512 {
			n = 512
		}
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(binary.LittleEndian.Uint64(keyData[8*i:]))
		}

		hostile := &hostileTransport{script: script}
		c, err := New(Config{
			Backends:        []Transport{hostile, &honestTransport{name: "honest"}},
			ShardKeys:       64,
			MaxRedispatch:   6,
			MaxBackpressure: 4,
			Backoff:         time.Microsecond,
			MaxBackoff:      10 * time.Microsecond,
			CoolDown:        time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		out, err := c.Sort(ctx, "default", traceID, keys)

		if err != nil {
			// Typed errors only: the envelope must be *Error and its kind
			// one of the package sentinels (or the caller's deadline).
			var ce *Error
			if !errors.As(err, &ce) {
				t.Fatalf("untyped error: %T %v", err, err)
			}
			switch {
			case errors.Is(err, ErrAllDown), errors.Is(err, ErrExhausted),
				errors.Is(err, ErrLedger), errors.Is(err, ErrBackendStatus),
				errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			default:
				t.Fatalf("error kind outside the taxonomy: %v", err)
			}
			return
		}
		// Correct-or-error: an accepted result is the exact sorted
		// multiset, regardless of what the hostile backend answered.
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(out) != len(want) {
			t.Fatalf("len = %d, want %d", len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("out[%d] = %d, want %d", i, out[i], want[i])
			}
		}
		// The ledger can never have silently passed a corruption: every
		// accepted shard was verified, so hostile acceptances imply the
		// replies were honest-equivalent.
		if st := c.Stats(); st.LedgerFailures != 0 {
			t.Fatalf("ledger failure on a successful sort: %+v", st)
		}
	})
}
