package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wfsort/internal/server"
)

// newFleet boots n in-process sortd backends (internal/server behind
// HandlerBackend — the full serving path, no sockets) and returns the
// transports. Each backend is drained at cleanup.
func newFleet(t *testing.T, n int) []Transport {
	t.Helper()
	fleet := make([]Transport, n)
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Config{Workers: 2, TraceOff: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		})
		fleet[i] = &HandlerBackend{Handler: srv.Handler(), Label: fmt.Sprintf("b%d", i)}
	}
	return fleet
}

func randKeys(n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 30)
	}
	return keys
}

func sortedRef(keys []int64) []int64 {
	ref := append([]int64(nil), keys...)
	sort.Slice(ref, func(i, j int) bool { return ref[i] < ref[j] })
	return ref
}

func assertSorted(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func keyBytes(keys []int64) []byte {
	raw := make([]byte, 8*len(keys))
	for i, v := range keys {
		binary.LittleEndian.PutUint64(raw[8*i:], uint64(v))
	}
	return raw
}

// TestClusterSortBasic pushes a multi-shard sort through a 3-backend
// fleet and certifies output order, the ledger, and the dispatch
// accounting.
func TestClusterSortBasic(t *testing.T) {
	c, err := New(Config{Backends: newFleet(t, 3), ShardKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(10_000, 11)
	out, err := c.Sort(context.Background(), "default", "t-basic", keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, out, sortedRef(keys))
	st := c.Stats()
	if st.SortsOK != 1 || st.SortErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if want := int64(shardCount(len(keys), 1024)); st.ShardsDispatched != want {
		t.Fatalf("shards dispatched = %d, want %d", st.ShardsDispatched, want)
	}
	var ok int64
	for _, b := range st.Backends {
		ok += b.ShardsOK
	}
	if ok != st.ShardsDispatched {
		t.Fatalf("backend shard OKs %d != dispatched %d", ok, st.ShardsDispatched)
	}
	if st.Redispatches != 0 || st.LedgerFailures != 0 {
		t.Fatalf("faultless run counted faults: %+v", st)
	}
}

// TestClusterSortSmallAndEmpty locks the degenerate paths: an empty
// sort and a single-shard (no splitter) sort.
func TestClusterSortSmallAndEmpty(t *testing.T) {
	c, err := New(Config{Backends: newFleet(t, 2), ShardKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if out, err := c.Sort(context.Background(), "default", "", nil); err != nil || len(out) != 0 {
		t.Fatalf("empty sort: %v, %v", out, err)
	}
	keys := randKeys(100, 2)
	out, err := c.Sort(context.Background(), "default", "", keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, out, sortedRef(keys))
}

// TestClusterBackendKillMidSort is the chaos leg: one backend serves
// two shard requests then fail-stops mid-fan-out. The sort must
// complete via redispatch, count its redispatches, and produce output
// byte-identical to the faultless run — the determinism the benchgate
// kill leg certifies.
func TestClusterBackendKillMidSort(t *testing.T) {
	keys := randKeys(20_000, 13)

	// Faultless reference run.
	cRef, err := New(Config{Backends: newFleet(t, 3), ShardKeys: 1024, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer cRef.Close()
	ref, err := cRef.Sort(context.Background(), "default", "t-ref", keys)
	if err != nil {
		t.Fatal(err)
	}

	// Kill run: backend 0 dies after serving 2 shard requests.
	fleet := newFleet(t, 3)
	ks := &KillSwitch{T: fleet[0]}
	fleet[0] = ks
	ks.KillAfter(2)
	c, err := New(Config{Backends: fleet, ShardKeys: 1024, Seed: 7, CoolDown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Sort(context.Background(), "default", "t-kill", keys)
	if err != nil {
		t.Fatalf("sort did not survive the kill: %v", err)
	}
	assertSorted(t, out, sortedRef(keys))
	if !bytes.Equal(keyBytes(out), keyBytes(ref)) {
		t.Fatal("kill-leg output differs from the faultless run")
	}
	st := c.Stats()
	if st.Redispatches == 0 {
		t.Fatal("kill leg recorded no redispatches")
	}
	if ks.Refused() == 0 {
		t.Fatal("kill switch never tripped")
	}
	if st.Backends[0].Downs == 0 || st.Backends[0].ShardErrors == 0 {
		t.Fatalf("killed backend not marked down: %+v", st.Backends[0])
	}
}

// slowTransport delays every shard call; with a short ShardTimeout the
// coordinator must give up on it and redispatch.
type slowTransport struct {
	Transport
	delay time.Duration
}

func (s *slowTransport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.Transport.SortShard(ctx, sr)
}

// TestClusterSlowBackend routes around a backend whose every reply
// exceeds the per-shard timeout.
func TestClusterSlowBackend(t *testing.T) {
	fleet := newFleet(t, 3)
	fleet[1] = &slowTransport{Transport: fleet[1], delay: 5 * time.Second}
	c, err := New(Config{
		Backends:     fleet,
		ShardKeys:    1024,
		ShardTimeout: 100 * time.Millisecond,
		CoolDown:     10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(8_000, 17)
	start := time.Now()
	out, err := c.Sort(context.Background(), "default", "t-slow", keys)
	if err != nil {
		t.Fatalf("sort did not survive the slow backend: %v", err)
	}
	assertSorted(t, out, sortedRef(keys))
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("took %v: the slow backend was waited on, not routed around", el)
	}
	st := c.Stats()
	if st.Backends[1].ShardErrors == 0 {
		t.Fatal("slow backend's timeouts not counted")
	}
}

// malformedTransport answers 200 with a corrupted body: right trace,
// wrong keys. The coordinator must reject it on the ledger and
// redispatch — a malformed reply is never returned to the caller.
type malformedTransport struct {
	name  string
	calls atomic.Int64
}

func (m *malformedTransport) Name() string { return m.name }
func (m *malformedTransport) Probe(ctx context.Context) (Probe, error) {
	return Probe{Healthy: true}, nil
}
func (m *malformedTransport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	m.calls.Add(1)
	bad := append([]int64(nil), sr.Keys...)
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	if len(bad) > 0 {
		bad[0]++ // sorted, right length, wrong multiset
	}
	var sum, xor int64
	for _, k := range bad {
		sum += k
		xor ^= k
	}
	return &ShardReply{Status: 200, Sorted: bad, N: len(bad), Sum: sum, Xor: xor, TraceEcho: sr.TraceID}, nil
}

// TestClusterMalformedReply certifies the acceptance check: a backend
// returning corrupted 200s is detected by the ledger, marked down and
// routed around.
func TestClusterMalformedReply(t *testing.T) {
	fleet := newFleet(t, 3)
	mal := &malformedTransport{name: "liar"}
	fleet[2] = mal
	c, err := New(Config{Backends: fleet, ShardKeys: 1024, CoolDown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(8_000, 19)
	out, err := c.Sort(context.Background(), "default", "t-mal", keys)
	if err != nil {
		t.Fatalf("sort did not survive the malformed backend: %v", err)
	}
	assertSorted(t, out, sortedRef(keys))
	st := c.Stats()
	if mal.calls.Load() == 0 {
		t.Skip("policy never routed to the malformed backend") // cannot happen with round-robin
	}
	if st.Backends[2].ShardErrors == 0 || st.Redispatches == 0 {
		t.Fatalf("malformed replies not counted as failures: %+v", st)
	}
}

// traceLiarTransport answers correctly but echoes a foreign trace ID —
// a reply that cannot be trusted to answer this request.
type traceLiarTransport struct{ inner Transport }

func (l *traceLiarTransport) Name() string { return "trace-liar" }
func (l *traceLiarTransport) Probe(ctx context.Context) (Probe, error) {
	return l.inner.Probe(ctx)
}
func (l *traceLiarTransport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	r, err := l.inner.SortShard(ctx, sr)
	if r != nil {
		r.TraceEcho = "someone-else"
	}
	return r, err
}

// TestClusterForeignTraceEcho certifies that a hostile trace echo is a
// hard failure, not an accepted reply.
func TestClusterForeignTraceEcho(t *testing.T) {
	fleet := newFleet(t, 2)
	fleet[0] = &traceLiarTransport{inner: fleet[0]}
	c, err := New(Config{Backends: fleet, ShardKeys: 1024, CoolDown: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(4_000, 23)
	out, err := c.Sort(context.Background(), "default", "t-echo", keys)
	if err != nil {
		t.Fatalf("sort did not route around the trace liar: %v", err)
	}
	assertSorted(t, out, sortedRef(keys))
	if st := c.Stats(); st.Backends[0].ShardErrors == 0 {
		t.Fatal("foreign trace echoes not counted as failures")
	}
}

// TestClusterAllBackendsDown locks the typed failure when the whole
// fleet is dead: a bounded number of attempts, then ErrAllDown (or
// ErrExhausted) through the *Error envelope.
func TestClusterAllBackendsDown(t *testing.T) {
	fleet := newFleet(t, 2)
	for i := range fleet {
		ks := &KillSwitch{T: fleet[i]}
		ks.Kill()
		fleet[i] = ks
	}
	c, err := New(Config{Backends: fleet, ShardKeys: 1024, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Sort(context.Background(), "default", "t-down", randKeys(3_000, 29))
	if err == nil {
		t.Fatal("sort succeeded against a dead fleet")
	}
	var ce *Error
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *cluster.Error: %v", err)
	}
	if !errors.Is(err, ErrAllDown) && !errors.Is(err, ErrExhausted) {
		t.Fatalf("error kind = %v, want ErrAllDown or ErrExhausted", err)
	}
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("cause chain lost the kill: %v", err)
	}
	if st := c.Stats(); st.SortErrors != 1 {
		t.Fatalf("sort errors = %d, want 1", st.SortErrors)
	}
}

// status429Transport rejects n calls with 429, then delegates.
type status429Transport struct {
	inner Transport
	left  atomic.Int64
}

func (s *status429Transport) Name() string                             { return s.inner.Name() }
func (s *status429Transport) Probe(ctx context.Context) (Probe, error) { return s.inner.Probe(ctx) }
func (s *status429Transport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	if s.left.Add(-1) >= 0 {
		return &ShardReply{Status: 429, TraceEcho: sr.TraceID}, nil
	}
	return s.inner.SortShard(ctx, sr)
}

// TestClusterBackpressureRetry certifies the 429 path: retried with
// backoff against the same rotation, counted, and NOT treated as a
// backend failure.
func TestClusterBackpressureRetry(t *testing.T) {
	fleet := newFleet(t, 1)
	bp := &status429Transport{inner: fleet[0]}
	bp.left.Store(3)
	c, err := New(Config{Backends: []Transport{bp}, ShardKeys: 8192, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	keys := randKeys(2_000, 31)
	out, err := c.Sort(context.Background(), "default", "t-bp", keys)
	if err != nil {
		t.Fatal(err)
	}
	assertSorted(t, out, sortedRef(keys))
	st := c.Stats()
	if st.BackpressureRetries != 3 {
		t.Fatalf("backpressure retries = %d, want 3", st.BackpressureRetries)
	}
	if st.Redispatches != 0 || st.Backends[0].Downs != 0 {
		t.Fatalf("backpressure wrongly counted as failure: %+v", st)
	}
}

// status400Transport rejects every call with 400 — a request-shaped
// problem no redispatch can fix.
type status400Transport struct{}

func (status400Transport) Name() string                             { return "reject" }
func (status400Transport) Probe(ctx context.Context) (Probe, error) { return Probe{Healthy: true}, nil }
func (status400Transport) SortShard(ctx context.Context, sr ShardRequest) (*ShardReply, error) {
	return &ShardReply{Status: 400, TraceEcho: sr.TraceID}, nil
}

// TestClusterNonRetryableStatus locks the taxonomy: 4xx other than 429
// fails the sort immediately with ErrBackendStatus, no retry storm.
func TestClusterNonRetryableStatus(t *testing.T) {
	c, err := New(Config{Backends: []Transport{status400Transport{}}, ShardKeys: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Sort(context.Background(), "default", "t-400", randKeys(1_000, 37))
	if !errors.Is(err, ErrBackendStatus) {
		t.Fatalf("err = %v, want ErrBackendStatus", err)
	}
	if st := c.Stats(); st.ShardsDispatched != 1 {
		t.Fatalf("dispatched %d times, want exactly 1 (non-retryable)", st.ShardsDispatched)
	}
}

// TestClusterDeadlinePropagates certifies that the caller's context
// deadline bounds the whole fan-out and surfaces as a context error.
func TestClusterDeadlinePropagates(t *testing.T) {
	fleet := newFleet(t, 2)
	for i := range fleet {
		fleet[i] = &slowTransport{Transport: fleet[i], delay: 10 * time.Second}
	}
	c, err := New(Config{Backends: fleet, ShardKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err = c.Sort(ctx, "default", "t-dl", randKeys(4_000, 41))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestClusterDraining locks the drain contract at the coordinator API.
func TestClusterDraining(t *testing.T) {
	c, err := New(Config{Backends: newFleet(t, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.BeginDrain()
	if _, err := c.Sort(context.Background(), "default", "", []int64{2, 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
}

// TestNewRejectsEmptyFleet locks the constructor contract.
func TestNewRejectsEmptyFleet(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoBackends) {
		t.Fatalf("err = %v, want ErrNoBackends", err)
	}
}

// TestPolicies locks each routing policy's shape on a fixed snapshot.
func TestPolicies(t *testing.T) {
	views := []BackendView{
		{Index: 0, Outstanding: 5, ProbedInFlight: -1},
		{Index: 1, Outstanding: 0, ProbedInFlight: 2},
		{Index: 2, Outstanding: 1, ProbedInFlight: -1},
	}
	d := DispatchView{Shard: 0, Keys: 1000}

	rr := &RoundRobin{}
	seen := map[int]int{}
	for i := 0; i < 6; i++ {
		seen[rr.Pick(d, views)]++
	}
	if len(seen) != 3 || seen[0] != 2 {
		t.Fatalf("round-robin spread = %v", seen)
	}

	ll := &LeastLoaded{}
	if got := ll.Pick(d, views); got != 2 {
		// 0 carries 5, 1 carries 0+2, 2 carries 1.
		t.Fatalf("least-loaded picked %d, want 2", got)
	}

	sa := SizeAffinity{}
	first := sa.Pick(d, views)
	for i := 0; i < 5; i++ {
		if got := sa.Pick(DispatchView{Shard: i, Keys: 1000}, views); got != first {
			t.Fatalf("size-affinity not sticky for equal sizes: %d vs %d", got, first)
		}
	}

	for _, name := range []string{"", "round-robin", "least-loaded", "size-affinity"} {
		if _, err := ParsePolicy(name); err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestClusterProber certifies the active prober: a killed backend
// leaves rotation on probe failure and re-enters once revived.
func TestClusterProber(t *testing.T) {
	fleet := newFleet(t, 2)
	ks := &KillSwitch{T: fleet[0]}
	fleet[0] = ks
	c, err := New(Config{
		Backends:   fleet,
		ProbeEvery: 20 * time.Millisecond,
		CoolDown:   40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ks.Kill()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Backends[0].Healthy && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Stats().Backends[0].Healthy {
		t.Fatal("prober never took the killed backend out of rotation")
	}

	ks.Revive()
	for !c.Stats().Backends[0].Healthy && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if !c.Stats().Backends[0].Healthy {
		t.Fatal("prober never revived the backend")
	}
	if c.Stats().Backends[0].ProbedInFlight < 0 {
		t.Fatal("probe gauge never refreshed")
	}
}

// --- handler surface ---

func newHandler(t *testing.T, backends int, hc HandlerConfig) (http.Handler, *Coordinator) {
	t.Helper()
	c, err := New(Config{Backends: newFleet(t, backends), ShardKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h, _ := NewHandler(c, hc)
	return h, c
}

func postSort(h http.Handler, keys []int64, hdr map[string]string) *httptest.ResponseRecorder {
	body, _ := json.Marshal(map[string]any{"keys": keys})
	req := httptest.NewRequest(http.MethodPost, "/sort", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHandlerSort locks the coordinator's /sort contract: sorted body,
// shard count, trace echo for a valid ID and a minted one otherwise.
func TestHandlerSort(t *testing.T) {
	h, _ := newHandler(t, 2, HandlerConfig{})
	keys := randKeys(3_000, 43)
	rec := postSort(h, keys, map[string]string{TraceHeader: "client-7"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(TraceHeader); got != "client-7" {
		t.Fatalf("trace echo %q", got)
	}
	var out struct {
		Sorted []int64 `json:"sorted"`
		N      int     `json:"n"`
		Shards int     `json:"shards"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.N != len(keys) || out.Shards != shardCount(len(keys), 1024) {
		t.Fatalf("n=%d shards=%d", out.N, out.Shards)
	}
	assertSorted(t, out.Sorted, sortedRef(keys))

	// A hostile trace ID is re-minted, not echoed.
	rec = postSort(h, []int64{3, 1}, map[string]string{TraceHeader: "bad id\nwith newline"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Header().Get(TraceHeader); got == "" || strings.ContainsAny(got, " \n") {
		t.Fatalf("hostile trace not re-minted: %q", got)
	}
}

// TestHandlerRejections locks the 4xx/5xx surface: bad class 400, bad
// body 400, oversize 413, draining 503, at-capacity 429.
func TestHandlerRejections(t *testing.T) {
	h, c := newHandler(t, 1, HandlerConfig{MaxKeys: 100, MaxInFlight: 1})

	if rec := postSort(h, []int64{1}, map[string]string{ClassHeader: "bad class"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad class: %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "/sort", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rec.Code)
	}
	if rec := postSort(h, make([]int64, 101), nil); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize: %d", rec.Code)
	}

	c.BeginDrain()
	if rec := postSort(h, []int64{1}, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining: %d", rec.Code)
	}
	st := c.Stats()
	if st.Errors == 0 || st.TooLarge != 1 || st.Drained != 1 {
		t.Fatalf("handler counters: %+v", st)
	}
}

// TestHandlerHealthzMetrics locks the observability surface.
func TestHandlerHealthzMetrics(t *testing.T) {
	h, c := newHandler(t, 2, HandlerConfig{})
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	rec := get("/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	var hz struct {
		OK       bool `json:"ok"`
		Backends int  `json:"backends"`
		Healthy  int  `json:"healthy"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil || !hz.OK || hz.Backends != 2 || hz.Healthy != 2 {
		t.Fatalf("healthz body: %s (err %v)", rec.Body.String(), err)
	}

	rec = get("/metrics")
	var m struct {
		Coordinator Stats `json:"coordinator"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil || len(m.Coordinator.Backends) != 2 {
		t.Fatalf("metrics body: %s (err %v)", rec.Body.String(), err)
	}

	// Draining flips healthz to 503.
	c.BeginDrain()
	if rec := get("/healthz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d", rec.Code)
	}
}

// TestHandlerDrain locks NewHandler's drain func: it flips the
// coordinator and returns once in-flight requests are gone.
func TestHandlerDrain(t *testing.T) {
	c, err := New(Config{Backends: newFleet(t, 1), ShardKeys: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, drain := NewHandler(c, HandlerConfig{})
	if rec := postSort(h, []int64{2, 1, 3}, nil); rec.Code != http.StatusOK {
		t.Fatalf("pre-drain sort: %d", rec.Code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rec := postSort(h, []int64{1}, nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain sort: %d", rec.Code)
	}
}
