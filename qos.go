package wfsort

import (
	"context"
	"fmt"

	"wfsort/internal/native"
)

// QueuePolicy re-exports the pipeline's pluggable queue order: Shed
// decides which queued jobs are dropped as unmeetable, Pick chooses
// the next job to dispatch. Install one on a pipelined pool with
// WithQueuePolicy; internal/qos provides the production
// priority/deadline scheduler. A nil policy is strict FIFO.
type QueuePolicy = native.QueuePolicy

// JobView re-exports the scheduler-visible snapshot of one queued job.
type JobView = native.JobView

// JobQoS re-exports the quality-of-service envelope a request may
// attach to a pooled sort via WithJobQoS. The zero value — no class,
// tier 0, no deadline — is exactly the pre-QoS behavior.
type JobQoS = native.JobQoS

// ErrDeadlineShed re-exports the error a pooled SortContext returns
// when the installed QueuePolicy dropped the queued sort because its
// deadline could not be met: no worker touched it and no partial work
// was recorded. The serving layer maps it to a 504 issued from the
// queue.
var ErrDeadlineShed = native.ErrDeadlineShed

// WithQueuePolicy installs a queue policy on the pool's pipelined
// crew, replacing FIFO dispatch of queued sorts. Requires WithPipeline
// — a serial pool has no queue to order — and applies to NewPool/
// NewSorter only.
func WithQueuePolicy(qp QueuePolicy) Option {
	return func(c *config) {
		c.queuePolicy = qp
		c.explicit |= setQueuePolicy
	}
}

// jobQoSKey carries a JobQoS through a context.
type jobQoSKey struct{}

// WithJobQoS returns a context carrying the QoS envelope for one
// pooled SortContext call: the class label, priority tier, cost
// estimate and deadline the pipeline's queue policy schedules by.
// Sorts small enough for the fresh-sort cutoff, and pools without a
// pipeline, ignore it.
func WithJobQoS(ctx context.Context, q JobQoS) context.Context {
	return context.WithValue(ctx, jobQoSKey{}, q)
}

// jobQoSFrom extracts the envelope installed by WithJobQoS, if any.
func jobQoSFrom(ctx context.Context) (JobQoS, bool) {
	q, ok := ctx.Value(jobQoSKey{}).(JobQoS)
	return q, ok
}

// validateQueuePolicy is the shared NewPool/NewSorter check.
func validateQueuePolicy(c config) error {
	if c.explicit&setQueuePolicy == 0 {
		return nil
	}
	if c.queuePolicy == nil {
		return fmt.Errorf("wfsort: WithQueuePolicy requires a non-nil policy")
	}
	if c.explicit&setPipeline == 0 {
		return fmt.Errorf("wfsort: WithQueuePolicy requires WithPipeline (a serial pool has no queue to order)")
	}
	return nil
}
