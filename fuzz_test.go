package wfsort_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"wfsort"
	"wfsort/internal/chaos"
	"wfsort/internal/qos"
	"wfsort/internal/server"
)

// FuzzSort feeds arbitrary byte strings through the full native sort
// pipeline with fuzzer-chosen worker counts, variants, arena layouts
// and seeds, checking two explicit invariants: the output is sorted,
// and it is a permutation of the input (equal to the stdlib's sort of
// the same multiset). When the fuzzer picks a nonzero kill fraction,
// the same keys additionally run through the chaos harness under a
// seeded crash quorum: the survivors' output must still match the
// stable-sorted reference and certify under the wait-freedom op
// ceiling.
func FuzzSort(f *testing.F) {
	f.Add([]byte("hello world"), uint8(4), uint8(0), uint8(0), uint64(0), uint8(0), uint64(0))
	f.Add([]byte{0, 0, 0, 0}, uint8(1), uint8(1), uint8(1), uint64(7), uint8(0), uint64(2))
	f.Add([]byte{255, 1, 128, 1, 255, 0}, uint8(9), uint8(2), uint8(2), uint64(3), uint8(3), uint64(5))
	f.Add([]byte{}, uint8(3), uint8(0), uint8(2), uint64(1), uint8(1), uint64(9))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(6), uint8(1), uint8(0), uint64(5), uint8(4), uint64(11))
	f.Add(bytes.Repeat([]byte{42}, 64), uint8(8), uint8(1), uint8(0), uint64(6), uint8(7), uint64(13))
	f.Fuzz(func(t *testing.T, raw []byte, workers, variant, layout uint8, seed uint64, killFrac uint8, faultSeed uint64) {
		data := make([]int, len(raw))
		for i, b := range raw {
			data[i] = int(b)
		}
		want := make([]int, len(data))
		copy(want, data)
		sort.Ints(want)

		p := int(workers)%32 + 1
		v := wfsort.Variant(variant % 3)
		l := wfsort.Layout(layout % 3)
		err := wfsort.Sort(data, wfsort.WithWorkers(p), wfsort.WithVariant(v),
			wfsort.WithLayout(l), wfsort.WithSeed(seed))
		if err != nil {
			t.Fatalf("Sort(p=%d v=%v l=%v): %v", p, v, l, err)
		}
		if !sort.IntsAreSorted(data) {
			t.Fatalf("p=%d v=%v l=%v input=%v: output not sorted: %v", p, v, l, raw, data)
		}
		for i := range want {
			if data[i] != want[i] {
				t.Fatalf("p=%d v=%v l=%v input=%v: position %d = %d, want %d (not a permutation)",
					p, v, l, raw, i, data[i], want[i])
			}
		}

		// Fault-injected replay: crash roughly killFrac/8 of the workers
		// (sparing processor 0) at seeded op ordinals and re-sort the
		// same keys on the native runtime via the chaos certifier.
		if frac := float64(killFrac%8) / 8; frac > 0 && len(raw) > 0 {
			keys := make([]int, len(raw))
			if len(keys) > 512 {
				keys = keys[:512] // keep the crash replay cheap
			}
			for i := range keys {
				keys[i] = int(raw[i])
			}
			cp := int(workers)%8 + 2
			window := int64(len(keys) + 1)
			spec := chaos.Spec{
				Keys: keys, P: cp, Layout: chaos.Layout(layout % 3), Seed: seed,
				Crashes: chaos.CrashQuorum(cp, frac, window, faultSeed),
			}
			res, err := chaos.RunNative(spec)
			if err != nil {
				t.Fatalf("chaos replay(p=%d l=%v frac=%.2f): %v", cp, spec.Layout, frac, err)
			}
			if !res.Sorted {
				t.Fatalf("chaos replay(p=%d l=%v frac=%.2f keys=%v): output not sorted (%s)",
					cp, spec.Layout, frac, keys, res.Error)
			}
			if !res.Certified {
				t.Fatalf("chaos replay(p=%d l=%v frac=%.2f): max ops %d over ceiling %d",
					cp, spec.Layout, frac, res.MaxOps, res.Bound)
			}
		}
	})
}

// FuzzSimulate drives the simulator with fuzzer-chosen keys, workers,
// variants and seeds, checking ranks always form the true ranking.
func FuzzSimulate(f *testing.F) {
	f.Add([]byte{5, 3, 8}, uint8(2), uint8(0), uint64(1))
	f.Add([]byte{1, 1, 1, 1, 1}, uint8(5), uint8(2), uint64(9))
	f.Add(bytes.Repeat([]byte{7}, 40), uint8(16), uint8(1), uint64(3))
	f.Fuzz(func(t *testing.T, raw []byte, workers uint8, variant uint8, seed uint64) {
		if len(raw) > 256 {
			raw = raw[:256] // keep simulation cheap
		}
		keys := make([]int, len(raw))
		for i, b := range raw {
			keys[i] = int(b)
		}
		p := int(workers)%64 + 1
		v := wfsort.Variant(variant % 3)
		res, err := wfsort.Simulate(keys,
			wfsort.WithWorkers(p), wfsort.WithVariant(v), wfsort.WithSeed(seed))
		if err != nil {
			t.Fatalf("Simulate(p=%d v=%v): %v", p, v, err)
		}
		if len(keys) == 0 {
			return
		}
		// Verify ranks: stable ranking by (key, index).
		ids := make([]int, len(keys))
		for i := range ids {
			ids[i] = i
		}
		sort.SliceStable(ids, func(a, b int) bool { return keys[ids[a]] < keys[ids[b]] })
		for pos, i := range ids {
			if res.Ranks[i] != pos+1 {
				t.Fatalf("p=%d v=%v keys=%v: element %d rank %d, want %d",
					p, v, keys, i+1, res.Ranks[i], pos+1)
			}
		}
	})
}

// fuzzSrv is the process-wide sort service under fuzz: one server per
// fuzz worker process, exercised through its Handler without a network
// listener. The small MaxKeys makes the 413 path reachable by
// fuzzer-grown bodies.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *server.Server
	fuzzSrvErr  error
)

func fuzzServer() (*server.Server, error) {
	fuzzSrvOnce.Do(func() {
		fuzzSrv, fuzzSrvErr = server.New(server.Config{
			Workers:      2,
			MaxInFlight:  4,
			MaxKeys:      2048,
			BatchMaxKeys: 64,
			BatchWindow:  200 * time.Microsecond,
			Timeout:      2 * time.Second,
		})
	})
	return fuzzSrv, fuzzSrvErr
}

// FuzzServer throws arbitrary bodies at the sort endpoint — malformed
// JSON, wrong shapes, zero and huge key counts, duplicate-heavy keys —
// plus mid-request cancellations and fuzzer-chosen X-Sort-Class header
// values, and checks the service's contract: no panic, only documented
// status codes, a malformed class name always answers 400, every 429
// carries a Retry-After, and every 200 carries a stable sort of
// exactly the keys posted.
func FuzzServer(f *testing.F) {
	f.Add([]byte(`{"keys":[3,1,2]}`), uint8(0), uint16(0), "")
	f.Add([]byte(`{"keys":[]}`), uint8(0), uint16(0), "lat")
	f.Add([]byte(`{"keys":[5,5,5,5,5,5,5,5]}`), uint8(0), uint16(0), "two words")
	f.Add([]byte(`{`), uint8(0), uint16(0), `qu"ote`)
	f.Add([]byte(`null`), uint8(0), uint16(0), strings.Repeat("x", 65))
	f.Add([]byte(`{"keys":"nope"}`), uint8(0), uint16(0), "ok-class")
	f.Add([]byte(`{"keys":[1e999]}`), uint8(0), uint16(0), "")
	f.Add([]byte(`{"keys":null,"pad":"x"}`), uint8(0), uint16(0), "p1")
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint8(1), uint16(40), "bulk")
	f.Add(bytes.Repeat([]byte{1, 200}, 300), uint8(1), uint16(0), "")
	f.Add([]byte{1, 2, 3}, uint8(2), uint16(10), "\tlead")
	f.Fuzz(func(t *testing.T, raw []byte, mode uint8, cancelAfterUS uint16, class string) {
		srv, err := fuzzServer()
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()

		var body []byte
		var keys []int64
		switch mode % 3 {
		case 0: // raw body verbatim: the malformed-input plane
			body = raw
		default: // well-formed request built from the bytes
			keys = make([]int64, len(raw))
			for i, b := range raw {
				keys[i] = int64(int8(b)) // signed: negatives and duplicates
			}
			body, _ = json.Marshal(map[string]any{"keys": keys})
		}

		ctx := context.Background()
		var cancel context.CancelFunc
		if mode%3 == 2 { // mid-request cancellation
			ctx, cancel = context.WithCancel(ctx)
			go func(d time.Duration) {
				time.Sleep(d)
				cancel()
			}(time.Duration(cancelAfterUS) * time.Microsecond)
			defer cancel()
		}

		req := httptest.NewRequest("POST", "/sort", bytes.NewReader(body)).WithContext(ctx)
		if class != "" {
			req.Header.Set("X-Sort-Class", class)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req) // must not panic, whatever the body

		badClass := class != "" && !qos.ValidClassName(class)
		switch rec.Code {
		case http.StatusOK:
			if badClass {
				t.Fatalf("malformed class %q was served a 200", class)
			}
		case http.StatusBadRequest, http.StatusRequestEntityTooLarge,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return
		case http.StatusTooManyRequests:
			if rec.Header().Get("Retry-After") == "" {
				t.Fatal("429 without a Retry-After header")
			}
			return
		default:
			t.Fatalf("undocumented status %d for body %q class %q", rec.Code, body, class)
		}
		if keys == nil {
			// A raw body that happened to parse: decode it the same way
			// the server does so the multiset check below still applies.
			var req sortRequestShape
			if json.Unmarshal(body, &req) != nil {
				return
			}
			keys = req.Keys
		}
		var resp struct {
			Sorted []int64 `json:"sorted"`
			N      int     `json:"n"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("unparseable 200 body %q: %v", rec.Body.Bytes(), err)
		}
		if resp.N != len(keys) || len(resp.Sorted) != len(keys) {
			t.Fatalf("200 for %d keys returned n=%d len=%d", len(keys), resp.N, len(resp.Sorted))
		}
		want := append([]int64(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if resp.Sorted[i] != want[i] {
				t.Fatalf("sorted[%d] = %d, want %d (keys %v)", i, resp.Sorted[i], want[i], keys)
			}
		}
	})
}

// sortRequestShape mirrors the server's request schema for the
// fuzzer's own decoding.
type sortRequestShape struct {
	Keys []int64 `json:"keys"`
}

// fuzzReuseSorter is the process-wide pooled sorter under fuzz: state
// leaking from one sort into the next is exactly what this fuzzer
// hunts, so every exec shares it.
var (
	fuzzSorterOnce sync.Once
	fuzzSorter     *wfsort.Sorter[int]
	fuzzSorterErr  error
)

// FuzzSorterReuse drives one shared pooled Sorter with back-to-back
// sorts of fuzzer-chosen sizes (crossing the fresh cutoff and class
// boundaries via the replication factor) and verifies each result
// independently: any residue a sort leaves in a pooled context shows
// up as a wrong answer on a later, differently-sized sort.
func FuzzSorterReuse(f *testing.F) {
	f.Add([]byte{3, 1, 2}, uint16(1))
	f.Add([]byte{255, 0, 128}, uint16(200))
	f.Add(bytes.Repeat([]byte{7}, 50), uint16(11))
	f.Add([]byte{9, 8, 7, 6, 5}, uint16(900))
	f.Add([]byte{}, uint16(5))
	f.Fuzz(func(t *testing.T, raw []byte, rep uint16) {
		fuzzSorterOnce.Do(func() {
			fuzzSorter, fuzzSorterErr = wfsort.NewSorter[int](wfsort.WithWorkers(4))
		})
		if fuzzSorterErr != nil {
			t.Fatal(fuzzSorterErr)
		}
		// Replicate the seed bytes to reach real pool classes (and odd
		// sizes that exercise virtual padding), capped to keep execs fast.
		n := len(raw) * (int(rep)%40 + 1)
		if n > 5000 {
			n = 5000
		}
		data := make([]int, n)
		for i := range data {
			data[i] = int(int8(raw[i%len(raw)])) + i%3 // mild value churn per copy
		}
		want := append([]int(nil), data...)
		sort.Ints(want)

		for round := 0; round < 2; round++ { // twice: reuse the context just filled
			got := append([]int(nil), data...)
			if err := fuzzSorter.Sort(got); err != nil {
				t.Fatalf("round %d (n=%d): %v", round, n, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d (n=%d): position %d = %d, want %d", round, n, i, got[i], want[i])
				}
			}
		}
	})
}
